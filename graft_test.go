package graft

import (
	"errors"
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/pregel"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < 6; i++ {
		g.AddVertex(VertexID(i), nil)
	}
	for i := 1; i < 6; i++ {
		if err := g.AddUndirectedEdge(VertexID(i-1), VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRunWithoutDebugging(t *testing.T) {
	g := smallGraph(t)
	res, err := RunAlgorithm(g, algorithms.NewConnectedComponents(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobID != "" || res.Captures != 0 {
		t.Errorf("undebugged run has debug artifacts: %+v", res)
	}
	if res.Stats == nil || res.Stats.Reason != pregel.ReasonConverged {
		t.Errorf("stats = %+v", res.Stats)
	}
	if got := g.Vertex(5).Value().(*pregel.LongValue).Get(); got != 0 {
		t.Errorf("CC label = %d", got)
	}
}

func TestRunValidation(t *testing.T) {
	g := smallGraph(t)
	dc := &DebugConfig{CaptureIDs: []VertexID{1}}
	if _, err := Run(g, algorithms.NewConnectedComponents().Compute,
		RunOptions{Debug: dc}); err == nil {
		t.Error("missing Store accepted")
	}
	if _, err := Run(g, algorithms.NewConnectedComponents().Compute,
		RunOptions{Debug: dc, Store: NewStore(NewMemFS(), "t")}); err == nil {
		t.Error("missing JobID accepted")
	}
}

func TestRunWithDebuggingEndToEnd(t *testing.T) {
	g := smallGraph(t)
	fs := NewMemFS()
	store := NewStore(fs, "traces")
	res, err := RunAlgorithm(g, algorithms.NewConnectedComponents(), RunOptions{
		JobID:     "facade-test",
		Algorithm: "cc",
		Store:     store,
		Debug: &DebugConfig{
			CaptureIDs:        []VertexID{3},
			CaptureNeighbors:  true,
			CaptureExceptions: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Captures == 0 || res.JobID != "facade-test" {
		t.Fatalf("result = %+v", res)
	}
	db, err := store.OpenReader("facade-test")
	if err != nil {
		t.Fatal(err)
	}
	ids := db.CapturedVertexIDs()
	if len(ids) != 3 { // 3 and its neighbors 2, 4
		t.Fatalf("captured %v", ids)
	}
	if db.JobMeta().Algorithm != "cc" {
		t.Errorf("algorithm = %q", db.JobMeta().Algorithm)
	}
}

func TestRunAlgorithmWiresMasterAndAggregators(t *testing.T) {
	g := graphgen.RegularBipartite(60, 3)
	store := NewStore(NewMemFS(), "traces")
	res, err := RunAlgorithm(g, algorithms.NewGraphColoring(1), RunOptions{
		JobID: "gc-facade",
		Store: store,
		Debug: &DebugConfig{CaptureIDs: []VertexID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reason != pregel.ReasonConverged {
		t.Fatalf("GC did not converge: %v", res.Stats.Reason)
	}
	db, err := store.OpenReader("gc-facade")
	if err != nil {
		t.Fatal(err)
	}
	// Master captures prove the master was wired and instrumented.
	if db.MasterAt(0) == nil {
		t.Error("no master capture")
	}
	if _, ok := db.MetaAt(1).Aggregated["phase"]; !ok {
		t.Error("phase aggregator missing: aggregators not registered")
	}
}

func TestRunReturnsResultOnComputeFailure(t *testing.T) {
	g := smallGraph(t)
	store := NewStore(NewMemFS(), "traces")
	boom := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 4 {
			return errors.New("kaput")
		}
		v.VoteToHalt()
		return nil
	})
	res, err := Run(g, boom, RunOptions{
		JobID: "fail-test",
		Store: store,
		Debug: &DebugConfig{CaptureExceptions: true},
	})
	if err == nil {
		t.Fatal("expected job failure")
	}
	if res == nil || res.Captures != 1 {
		t.Fatalf("failure result = %+v", res)
	}
	db, err := store.OpenReader("fail-test")
	if err != nil {
		t.Fatal(err)
	}
	c := db.Capture(0, 4)
	if c == nil || c.Exception == nil || c.Exception.Message != "kaput" {
		t.Fatalf("capture = %+v", c)
	}
	if db.JobResult() == nil || !strings.Contains(db.JobResult().Error, "kaput") {
		t.Errorf("job.done = %+v", db.JobResult())
	}
}

func TestEngineOverridesWin(t *testing.T) {
	g := smallGraph(t)
	// An explicit MaxSupersteps overrides the algorithm's suggestion.
	res, err := RunAlgorithm(g, algorithms.NewRandomWalk(1, 50), RunOptions{
		Engine: EngineConfig{MaxSupersteps: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", res.Stats.Supersteps)
	}
}

func TestValueConstructorsReexported(t *testing.T) {
	if NewLong(5).Get() != 5 || NewText("x").Get() != "x" ||
		NewDouble(1.5).Get() != 1.5 || NewShort(-2).Get() != -2 ||
		NewInt(7).Get() != 7 || !NewBool(true).Get() {
		t.Error("constructor values wrong")
	}
	if Nil().String() != "nil" {
		t.Error("Nil")
	}
	if ValueString(nil) != "∅" || ValueString(NewLong(3)) != "3" {
		t.Error("ValueString")
	}
}
