package graft

// The acceptance test for the resilient storage path: a multi-superstep
// job runs with seeded faults injected into its checkpoint file system,
// its trace file system AND a datanode of the simulated DFS underneath
// both, plus one worker crash. The job must complete with at least one
// checkpoint recovery and at least one absorbed retry, produce exactly
// the vertex values of a fault-free run, leave a trace that replays
// cleanly — and do all of it identically on every run of the same seed.

import (
	"testing"
	"time"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

type chaosOutcome struct {
	stats    *pregel.Stats
	values   map[pregel.VertexID]pregel.Value
	store    *trace.Store
	jobID    string
	captures int64
}

// runChaosJob executes connected components over a seeded social graph
// with the full fault stack enabled.
func runChaosJob(t *testing.T, seed int64) *chaosOutcome {
	t.Helper()
	const crashAt = 3

	g := graphgen.SocialGraph(800, 4, seed)
	alg := algorithms.NewConnectedComponents()

	cluster := dfs.NewCluster(4, 2, 8<<10)
	plan := func(s int64) faults.Plan {
		return faults.Plan{
			Seed:         s,
			P:            map[faults.Op]float64{faults.OpWrite: 0.5, faults.OpCreate: 0.25, faults.OpClose: 0.25},
			MaxPerPathOp: 2,
			ShortWrites:  true,
		}
	}
	noSleep := func(time.Duration) {}
	ckptFS := faults.NewRetryFS(faults.NewFaultFS(cluster, plan(seed)), seed)
	ckptFS.Sleep = noSleep
	tracePrimary := faults.NewRetryFS(faults.NewFaultFS(cluster, plan(seed+1)), seed+1)
	tracePrimary.Sleep = noSleep
	traceFS := faults.NewFallbackFS(tracePrimary, dfs.NewMemFS())
	store := trace.NewStore(traceFS, "chaos")

	jobID := "chaos-acceptance"
	session, err := core.Attach(store, core.Options{
		JobID:      jobID,
		Algorithm:  alg.Name,
		NumWorkers: 4,
	}, g, core.DebugConfig{
		CaptureIDs:        []pregel.VertexID{1, 2, 3, 4, 5},
		CaptureExceptions: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	crashed := false
	job := pregel.NewJob(g, session.Instrument(alg.Compute), pregel.Config{
		NumWorkers:       4,
		Combiner:         alg.Combiner,
		Master:           session.InstrumentMaster(alg.Master),
		MaxSupersteps:    alg.MaxSupersteps,
		Listener:         session,
		CheckpointEvery:  2,
		CheckpointFS:     ckptFS,
		CheckpointPrefix: "ckpt/",
		FailureAt: func(superstep int) bool {
			if superstep == crashAt && !crashed {
				crashed = true
				cluster.Kill(0) // the crash takes a datanode down with it
				return true
			}
			if crashed && superstep > crashAt && !cluster.Node(0).Alive() {
				cluster.Revive(0)
			}
			return false
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatalf("chaos job failed: %v", err)
	}
	if !crashed {
		t.Fatal("worker crash was never injected")
	}

	values := map[pregel.VertexID]pregel.Value{}
	g.Each(func(v *pregel.Vertex) { values[v.ID()] = pregel.CloneValue(v.Value()) })
	return &chaosOutcome{stats: stats, values: values, store: store, jobID: jobID, captures: session.Captures()}
}

func TestChaosJobSurvivesAndMatchesFaultFreeRun(t *testing.T) {
	const seed = 42

	// Fault-free reference on healthy storage.
	ref := graphgen.SocialGraph(800, 4, seed)
	alg := algorithms.NewConnectedComponents()
	if _, err := pregel.NewJob(ref, alg.Compute, pregel.Config{
		NumWorkers: 4, Combiner: alg.Combiner, Master: alg.Master, MaxSupersteps: alg.MaxSupersteps,
	}).Run(); err != nil {
		t.Fatal(err)
	}

	out := runChaosJob(t, seed)

	// The job was actually abused and actually recovered.
	if out.stats.Recoveries < 1 {
		t.Errorf("recoveries = %d, want >= 1", out.stats.Recoveries)
	}
	if out.stats.Faults.Injected < 1 {
		t.Errorf("injected faults = %d, want >= 1", out.stats.Faults.Injected)
	}
	if out.stats.Faults.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (stats: %s)", out.stats.Faults.Retries, out.stats.Faults)
	}

	// Its output is byte-for-byte the fault-free answer.
	diffs := 0
	ref.Each(func(v *pregel.Vertex) {
		got, ok := out.values[v.ID()]
		if !ok || !pregel.ValuesEqual(v.Value(), got) {
			diffs++
		}
	})
	if diffs != 0 {
		t.Errorf("%d vertex values differ from the fault-free run", diffs)
	}

	// The trace survived the storage abuse and replays cleanly: every
	// captured compute call re-executes to exactly the captured outcome.
	db, err := out.store.OpenReader(out.jobID)
	if err != nil {
		t.Fatalf("trace unreadable after chaos: %v", err)
	}
	if db.TotalCaptures() == 0 {
		t.Fatal("no captures in the chaos trace")
	}
	replayed := 0
	for _, superstep := range db.Supersteps() {
		for _, c := range db.CapturesAt(superstep) {
			o, err := repro.Replay(db, superstep, c.ID, alg.Compute)
			if err != nil {
				t.Fatalf("replay superstep %d vertex %d: %v", superstep, c.ID, err)
			}
			if fid := repro.Fidelity(c, o); len(fid) != 0 {
				t.Errorf("replay superstep %d vertex %d diverged: %v", superstep, c.ID, fid)
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	res, done, err := out.store.ReadResult(out.jobID)
	if err != nil || !done {
		t.Fatalf("job result missing after chaos: done=%v err=%v", done, err)
	}
	if res.Captures != out.captures {
		t.Errorf("result records %d captures, session counted %d", res.Captures, out.captures)
	}
}

func TestChaosJobIsDeterministic(t *testing.T) {
	const seed = 42
	a := runChaosJob(t, seed)
	b := runChaosJob(t, seed)

	if a.stats.Faults != b.stats.Faults {
		t.Errorf("fault stats differ across identical runs:\n%s\nvs\n%s", a.stats.Faults, b.stats.Faults)
	}
	if a.stats.Recoveries != b.stats.Recoveries || a.stats.Supersteps != b.stats.Supersteps {
		t.Errorf("run shape differs: %d/%d recoveries, %d/%d supersteps",
			a.stats.Recoveries, b.stats.Recoveries, a.stats.Supersteps, b.stats.Supersteps)
	}
	if len(a.values) != len(b.values) {
		t.Fatalf("vertex counts differ: %d vs %d", len(a.values), len(b.values))
	}
	for id, av := range a.values {
		if !pregel.ValuesEqual(av, b.values[id]) {
			t.Fatalf("vertex %d differs across identical runs: %s vs %s",
				id, pregel.ValueString(av), pregel.ValueString(b.values[id]))
		}
	}
	if a.captures != b.captures {
		t.Errorf("captures differ: %d vs %d", a.captures, b.captures)
	}
}

// TestChaosTraceDegradesToSecondary drives the trace primary into
// persistent failure and verifies Graft records the degradation in the
// job result instead of aborting the job.
func TestChaosTraceDegradesToSecondary(t *testing.T) {
	g := graphgen.SocialGraph(200, 4, 7)
	alg := algorithms.NewConnectedComponents()

	// Primary fails every create, forever: everything must land on the
	// secondary.
	primary := faults.NewFaultFS(dfs.NewMemFS(), faults.Plan{P: map[faults.Op]float64{faults.OpCreate: 1}})
	fallback := faults.NewFallbackFS(primary, dfs.NewMemFS())
	store := trace.NewStore(fallback, "degraded")

	res, err := Run(g, alg.Compute, RunOptions{
		JobID:     "degraded-job",
		Algorithm: alg.Name,
		Store:     store,
		Debug:     &DebugConfig{CaptureIDs: []pregel.VertexID{1, 2, 3}, CaptureExceptions: true},
		Engine: pregel.Config{
			NumWorkers: 2, Combiner: alg.Combiner, Master: alg.Master, MaxSupersteps: alg.MaxSupersteps,
		},
	})
	if err != nil {
		t.Fatalf("job should survive total primary failure: %v", err)
	}
	if res.Stats.Faults.Fallbacks == 0 {
		t.Error("no fallbacks counted despite a dead primary")
	}
	jr, done, err := store.ReadResult("degraded-job")
	if err != nil || !done {
		t.Fatalf("job result unreadable: done=%v err=%v", done, err)
	}
	if len(jr.StorageDegraded) == 0 {
		t.Error("job result does not record the degraded paths")
	}
	db, err := store.OpenReader("degraded-job")
	if err != nil {
		t.Fatalf("degraded trace unreadable: %v", err)
	}
	if db.TotalCaptures() == 0 {
		t.Error("degraded trace lost its captures")
	}
	for _, superstep := range db.Supersteps() {
		for _, c := range db.CapturesAt(superstep) {
			o, err := repro.Replay(db, superstep, c.ID, alg.Compute)
			if err != nil {
				t.Fatalf("replay from degraded trace: %v", err)
			}
			if fid := repro.Fidelity(c, o); len(fid) != 0 {
				t.Errorf("degraded-trace replay diverged at superstep %d vertex %d: %v", superstep, c.ID, fid)
			}
		}
	}
}
