package graft

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks
// the landmarks of its scenario narrative, so the paper's three demo
// scenarios stay reproducible.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"quickstart", []string{
			"connected components finished",
			"captured contexts of vertex 2",
			"divergences: 0",
			"generated reproduction test",
		}},
		{"coloring", []string{
			"BUG VISIBLE",
			"entered the MIS at superstep",
			"diffs vs capture: []",
			"generated reproduction test",
		}},
		{"randomwalk", []string{
			"M=RED",
			"sent -",
			"replay fidelity diffs: []",
			"any red M box: false",
		}},
		{"matching", []string{
			"reason=max-supersteps",
			"ROOT CAUSE",
			"asymmetric weights",
			"converged",
		}},
		{"guitour", []string{
			"GUI listening",
			"node-link view",
			"reproduce endpoint returned",
		}},
		{"constraints", []string{
			"incoming-message constraint:",
			"adjacency constraint:",
			"-test suite covering every captured superstep",
		}},
		{"faulttolerance", []string{
			"simulated worker crash",
			"labels differing from the undisturbed run: 0",
			"under-replicated now: 0",
		}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goBin, "run", "./examples/"+c.dir)
			cmd.Dir = repoRoot(t)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q\n%s", want, out)
				}
			}
		})
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(wd)
}
