// Command graft-bench regenerates the paper's evaluation artifacts:
// Tables 1-3 and the Figure 8 overhead experiment, plus a chaos sweep
// that reruns the workloads under deterministic storage-fault
// injection.
//
//	graft-bench -table 1
//	graft-bench -table 2
//	graft-bench -table 3
//	graft-bench -fig 8 -scale 0.0005 -reps 5 -workers 8
//	graft-bench -chaos -scale 0.0005 -workers 8 -seed 42
//	graft-bench -metrics -scale 0.0005 -reps 5 -out BENCH_metrics.json
//	graft-bench -profiler -scale 0.0005 -reps 5 -out BENCH_profiler.json
//	graft-bench -capture -scale 0.0005 -reps 5 -out BENCH_capture.json
//	graft-bench -engine -scale 0.0002 -reps 5 -out BENCH_engine.json
//	graft-bench -dfs -reps 5 -out BENCH_dfs.json
//	graft-bench -recovery -scale 0.0002 -reps 5 -out BENCH_recovery.json
//	graft-bench -serve -scale 0.0002 -reps 5 -out BENCH_serve.json
//	graft-bench -subgraph -scale 0.0002 -reps 5 -out BENCH_subgraph.json
//	graft-bench -partition -scale 0.0002 -reps 5 -out BENCH_partition.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graft/internal/graphgen"
	"graft/internal/harness"
	"graft/internal/pregel"
	"graft/internal/servebench"
)

func main() {
	table := flag.Int("table", 0, "print a paper table (1, 2 or 3)")
	fig := flag.Int("fig", 0, "run a paper figure (8, alias 7)")
	chaos := flag.Bool("chaos", false, "run the workloads under deterministic storage-fault injection")
	metricsBench := flag.Bool("metrics", false, "measure the telemetry layer's own overhead and phase breakdowns")
	profilerBench := flag.Bool("profiler", false, "measure the profiler layer's overhead (traffic matrices + anomaly detectors) and check the traffic invariant")
	captureBench := flag.Bool("capture", false, "compare the async capture pipeline against synchronous trace writes")
	engineBench := flag.Bool("engine", false, "compare the lock-free lane message plane against the mutex-sharded plane")
	dfsBench := flag.Bool("dfs", false, "compare the pipelined streaming DFS data path against the seed serial path")
	recoveryBench := flag.Bool("recovery", false, "compare log-based confined recovery against full checkpoint restart")
	serveBench := flag.Bool("serve", false, "compare N debugged jobs run back to back against the same jobs sharing a concurrent session")
	subgraphBench := flag.Bool("subgraph", false, "compare subgraph-centric compute against the vertex-centric baseline on traversal workloads")
	partitionBench := flag.Bool("partition", false, "compare the streaming locality placer against hash partitioning on communication and convergence")
	out := flag.String("out", "", "output file for the -metrics / -capture / -engine report (default BENCH_<kind>.json)")
	faultP := flag.Float64("fault-p", 0.3, "per-operation fault probability for -chaos")
	chaosRecovery := flag.String("chaos-recovery", "log", "how the -chaos crash recovers: log (confined replay) or checkpoint (full restart)")
	scale := flag.Float64("scale", 0.0002, "dataset scale against paper sizes")
	reps := flag.Int("reps", 5, "repetitions per cell (the paper used 5)")
	workers := flag.Int("workers", 8, "worker goroutines per job")
	seed := flag.Int64("seed", 42, "random seed")
	check := flag.Bool("check", true, "verify the Figure 8 shape claims")
	flag.Parse()

	switch {
	case *table == 1:
		harness.PrintDatasetTable(os.Stdout, "Table 1: Graph datasets for demonstration (synthetic stand-ins at scale "+
			fmt.Sprintf("%g", *scale)+")", graphgen.Table1Datasets(*scale, *seed))
	case *table == 2:
		harness.PrintDatasetTable(os.Stdout, "Table 2: Graph datasets for performance experiments (synthetic stand-ins at scale "+
			fmt.Sprintf("%g", *scale)+")", graphgen.Table2Datasets(*scale, *seed))
	case *table == 3:
		harness.PrintConfigTable(os.Stdout, harness.StandardConfigs(*seed))
	case *fig == 7 || *fig == 8:
		workloads := harness.StandardWorkloads(*scale, *seed, *workers)
		configs := harness.StandardConfigs(*seed)
		fmt.Printf("Figure 8: Graft's performance overhead (scale %g, %d reps, %d workers)\n",
			*scale, *reps, *workers)
		ms, err := harness.RunFig8(workloads, configs, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintFig8(os.Stdout, ms)
		if *check {
			problems := harness.CheckFig8Shape(ms, 0.08)
			if len(problems) == 0 {
				fmt.Println("\nshape check: OK (debug configs cost >= baseline; DC-full most expensive)")
			} else {
				fmt.Println("\nshape check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
			}
		}
	case *metricsBench:
		workloads := harness.StandardWorkloads(*scale, *seed, *workers)
		configs := harness.StandardConfigs(*seed)
		debug := configs[len(configs)-1] // DC-full: the worst-case capture load
		if *out == "" {
			*out = "BENCH_metrics.json"
		}
		fmt.Printf("Metrics overhead: telemetry on vs off, phase breakdown under %s (scale %g, %d reps, %d workers)\n",
			debug.Name, *scale, *reps, *workers)
		ms, err := harness.RunMetricsBench(workloads, debug, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintMetricsBench(os.Stdout, ms)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteMetricsBenchJSON(f, ms); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckMetricsOverhead(ms, 0.05)
			if len(problems) == 0 {
				fmt.Println("overhead check: OK (telemetry costs < 5% on every workload)")
			} else {
				fmt.Println("overhead check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
			}
		}
	case *profilerBench:
		workloads := harness.StandardWorkloads(*scale, *seed, *workers)
		if *out == "" {
			*out = "BENCH_profiler.json"
		}
		fmt.Printf("Profiler overhead: traffic capture + anomaly detection on vs off (scale %g, %d reps, %d workers)\n",
			*scale, *reps, *workers)
		ps, err := harness.RunProfilerBench(workloads, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintProfilerBench(os.Stdout, ps)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteProfilerBenchJSON(f, ps); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckProfilerBench(ps, 0.05)
			if len(problems) == 0 {
				fmt.Println("profiler check: OK (overhead < 5% on every workload; traffic matrices balance)")
			} else {
				fmt.Println("profiler check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *captureBench:
		workloads := harness.StandardWorkloads(*scale, *seed, *workers)
		// all-active maximizes the capture write load, which is the part
		// of the debug cost the sync/async comparison is about.
		debug := harness.AllActiveConfig()
		if *out == "" {
			*out = "BENCH_capture.json"
		}
		fmt.Printf("Capture pipeline: undebugged vs sync sink vs async pipeline under %s (scale %g, %d reps, %d workers, store latency %v/op)\n",
			debug.Name, *scale, *reps, *workers, harness.CaptureStoreLatency)
		cs, err := harness.RunCaptureBench(workloads, debug, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintCaptureBench(os.Stdout, cs)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteCaptureBenchJSON(f, cs); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckCaptureBench(cs)
			if len(problems) == 0 {
				fmt.Println("capture check: OK (async beats sync at equal capture counts; lazy lookups read <= 1 segment)")
			} else {
				fmt.Println("capture check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
			}
		}
	case *engineBench:
		workloads := harness.EngineWorkloads(*scale, *seed, *workers)
		if *out == "" {
			*out = "BENCH_engine.json"
		}
		fmt.Printf("Message plane: mutex-sharded vs lock-free lanes, combiner on/off, skewed vs uniform graphs (scale %g, %d reps, %d workers)\n",
			*scale, *reps, *workers)
		es, err := harness.RunEngineBench(workloads, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintEngineBench(os.Stdout, es)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteEngineBenchJSON(f, es); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckEngineBench(es)
			if len(problems) == 0 {
				fmt.Println("engine check: OK (lane plane beats mutex plane on combiner-enabled PageRank)")
			} else {
				fmt.Println("engine check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
			}
		}
	case *dfsBench:
		if *out == "" {
			*out = "BENCH_dfs.json"
		}
		fmt.Printf("DFS data path: seed serial vs pipelined streaming (%d nodes, replication %d, %d writers, %d reps, node delay %v/op)\n",
			harness.DFSBenchNodes, harness.DFSBenchReplication, harness.DFSBenchWriters, *reps, harness.DFSBenchNodeDelay)
		rows, err := harness.RunDFSBench(harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintDFSBench(os.Stdout, rows)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteDFSBenchJSON(f, rows); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckDFSBench(rows)
			if len(problems) == 0 {
				fmt.Println("dfs check: OK (pipelined streaming path beats seed serial path on every workload)")
			} else {
				fmt.Println("dfs check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *recoveryBench:
		workloads := harness.RecoveryWorkloads(*scale, *seed, *workers)
		if *out == "" {
			*out = "BENCH_recovery.json"
		}
		fmt.Printf("Recovery: confined log replay vs full checkpoint restart, early vs late failures (scale %g, %d reps, %d workers, checkpoint every %d)\n",
			*scale, *reps, *workers, harness.RecoveryBenchCheckpointEvery)
		rs, err := harness.RunRecoveryBench(workloads, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintRecoveryBench(os.Stdout, rs)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteRecoveryBenchJSON(f, rs); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckRecoveryBench(rs)
			if len(problems) == 0 {
				fmt.Println("recovery check: OK (values match in both modes; confined replay beats restart on late failures)")
			} else {
				fmt.Println("recovery check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *serveBench:
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		fmt.Printf("Serving mode: %d debugged PageRank jobs, sequential session vs %d concurrent slots (scale %g, %d reps, %d worker(s)/job, store latency %v/op)\n",
			servebench.ServeBenchJobs, servebench.ServeBenchJobs, *scale, *reps, servebench.ServeBenchWorkers, servebench.ServeBenchStoreLatency)
		row, err := servebench.RunServeBench(*scale, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		servebench.PrintServeBench(os.Stdout, row)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := servebench.WriteServeBenchJSON(f, row); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := servebench.CheckServeBench(row)
			if len(problems) == 0 {
				fmt.Println("serve check: OK (concurrent session >= 1.3x aggregate throughput; digests unchanged)")
			} else {
				fmt.Println("serve check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *subgraphBench:
		workloads := harness.SubgraphWorkloads(*scale, *seed, *workers)
		if *out == "" {
			*out = "BENCH_subgraph.json"
		}
		fmt.Printf("Compute mode: vertex-centric vs subgraph-centric on traversal workloads (scale %g, %d reps, %d workers)\n",
			*scale, *reps, *workers)
		ss, err := harness.RunSubgraphBench(workloads, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintSubgraphBench(os.Stdout, ss)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WriteSubgraphBenchJSON(f, ss); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckSubgraphBench(ss)
			if len(problems) == 0 {
				fmt.Println("subgraph check: OK (digests match; subgraph mode collapses supersteps and wall clock; CC-bp <= 10%)")
			} else {
				fmt.Println("subgraph check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *partitionBench:
		workloads := harness.PartitionWorkloads(*scale, *seed, *workers)
		if *out == "" {
			*out = "BENCH_partition.json"
		}
		fmt.Printf("Placement: hash partitioning vs streaming locality placer (scale %g, %d reps, %d workers)\n",
			*scale, *reps, *workers)
		ps, err := harness.RunPartitionBench(workloads, harness.Options{
			Reps: *reps, Seed: *seed, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintPartitionBench(os.Stdout, ps)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := harness.WritePartitionBenchJSON(f, ps); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *out)
		if *check {
			problems := harness.CheckPartitionBench(ps)
			if len(problems) == 0 {
				fmt.Println("partition check: OK (digests match; locality cuts >= 30% of cross-partition traffic on CC-web; BFS-chain collapses supersteps)")
			} else {
				fmt.Println("partition check deviations:")
				for _, p := range problems {
					fmt.Println("  -", p)
				}
				os.Exit(1)
			}
		}
	case *chaos:
		workloads := harness.StandardWorkloads(*scale, *seed, *workers)
		var mode pregel.RecoveryMode
		switch *chaosRecovery {
		case "log":
			mode = pregel.RecoveryLog
		case "checkpoint":
			mode = pregel.RecoveryCheckpoint
		default:
			log.Fatalf("graft-bench: unknown -chaos-recovery %q (log, checkpoint)", *chaosRecovery)
		}
		fmt.Printf("Chaos sweep: workloads under seeded storage faults (scale %g, %d workers, seed %d, p=%g, recovery=%s)\n",
			*scale, *workers, *seed, *faultP, mode)
		ms, err := harness.RunChaos(workloads, harness.ChaosOptions{
			Seed: *seed, FaultP: *faultP, Recovery: mode, Progress: os.Stderr,
		})
		if err != nil {
			log.Fatalf("graft-bench: %v", err)
		}
		fmt.Println()
		harness.PrintChaos(os.Stdout, ms)
		for _, m := range ms {
			if !m.Match {
				log.Fatalf("graft-bench: %s diverged from its fault-free run", m.Workload)
			}
		}
		fmt.Println("\nchaos check: OK (all workloads match their fault-free runs)")
	default:
		flag.Usage()
		os.Exit(2)
	}
}
