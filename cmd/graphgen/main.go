// Command graphgen emits the synthetic datasets as adjacency-list
// text files, for feeding graft run or external tools.
//
//	graphgen -kind web -n 10000 -deg 8 -o web.adjlist
//	graphgen -kind social -n 5000 -corrupt 0.02 -cycle -o epinions-bad.adjlist
//	graphgen -kind bipartite -n 20000 -deg 3 -o bp.adjlist
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graft/internal/graphgen"
	"graft/internal/graphio"
	"graft/internal/pregel"
)

func main() {
	kind := flag.String("kind", "web", "graph kind: web, social, bipartite")
	n := flag.Int("n", 1000, "number of vertices")
	deg := flag.Int("deg", 6, "average (web/social) or exact (bipartite) degree")
	seed := flag.Int64("seed", 42, "random seed")
	corrupt := flag.Float64("corrupt", 0, "fraction of undirected weighted edges to make asymmetric (§4.3)")
	cycle := flag.Bool("cycle", false, "plant a rotated preference cycle (guarantees MWM livelock)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *pregel.Graph
	switch *kind {
	case "web":
		g = graphgen.WebGraph(*n, *deg, *seed)
	case "social":
		g = graphgen.SocialGraph(*n, *deg, *seed)
	case "bipartite":
		g = graphgen.RegularBipartite(*n, *deg)
	default:
		log.Fatalf("graphgen: unknown kind %q", *kind)
	}
	if *corrupt > 0 {
		c := graphgen.CorruptWeights(g, *corrupt, *seed+1)
		fmt.Fprintf(os.Stderr, "corrupted %d symmetric edge pairs\n", c)
	}
	if *cycle {
		ids := graphgen.PlantPreferenceCycle(g)
		fmt.Fprintf(os.Stderr, "planted preference cycle on vertices %v\n", ids)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("graphgen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.WriteAdjacency(w, g); err != nil {
		log.Fatalf("graphgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d vertices, %d directed edges\n", *kind, g.NumVertices(), g.NumEdges())
}
