// Command graft runs vertex-centric algorithms under the Graft
// debugger and inspects the resulting traces.
//
// Subcommands:
//
//	graft run   -alg gc -dataset bipartite-1M-3M -scale 0.001 -debug DC-full -trace-dir ./traces
//	graft jobs  -trace-dir ./traces
//	graft show  -trace-dir ./traces -job <id> [-superstep N]
//	graft repro -trace-dir ./traces -job <id> -superstep N -vertex V [-assert]
//	graft repro -trace-dir ./traces -job <id> -superstep N -master
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"graft/internal/algorithms"
	"graft/internal/anomaly"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/graphgen"
	"graft/internal/graphio"
	"graft/internal/harness"
	"graft/internal/metrics"
	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "repro":
		err = cmdRepro(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "trace-check":
		err = cmdTraceCheck(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graft:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: graft <run|serve|jobs|show|repro|diff|trace-check> [flags]
run         executes an algorithm under the Graft debugger
serve       runs the multi-job daemon: submit/cancel jobs over HTTP, GUI included
jobs        lists traced jobs
show        dumps the captures of a job
repro       generates a context-reproduction Go test
diff        compares the captures of two jobs (e.g. buggy vs fixed)
trace-check verifies a trace: lazy indexed reads vs the eager full load`)
}

func openStore(dir string) (*trace.Store, error) {
	fs, err := dfs.NewLocalFS(dir)
	if err != nil {
		return nil, err
	}
	return trace.NewStore(fs, ""), nil
}

// buildAlgorithm resolves the -alg flag.
func buildAlgorithm(name string, seed int64, supersteps int) (*algorithms.Algorithm, error) {
	return algorithms.ByName(name, seed, supersteps)
}

// buildGraph resolves -dataset: a Table 1/2 name (scaled) or a local
// adjacency-list file.
func buildGraph(dataset string, scale float64, seed int64) (*pregel.Graph, error) {
	all := append(graphgen.Table1Datasets(scale, seed), graphgen.Table2Datasets(scale, seed)...)
	if ds, err := graphgen.FindDataset(all, dataset); err == nil {
		return ds.Build(), nil
	}
	f, err := os.Open(dataset)
	if err != nil {
		return nil, fmt.Errorf("dataset %q is neither a known name nor a readable file: %w", dataset, err)
	}
	defer f.Close()
	return graphio.ReadAdjacency(f)
}

// buildDebugConfig resolves -debug: a Table 3 preset name, "fig2",
// "all-active", or "none".
func buildDebugConfig(preset string, seed int64) (*core.DebugConfig, error) {
	if preset == "" || preset == "none" {
		return nil, nil
	}
	if preset == "fig2" {
		dc := core.Fig2Config(seed)
		return &dc, nil
	}
	if preset == "all-active" {
		return &core.DebugConfig{CaptureAllActive: true, CaptureExceptions: true}, nil
	}
	for _, c := range harness.StandardConfigs(seed) {
		if c.Name == preset && c.Make != nil {
			dc := c.Make()
			return &dc, nil
		}
	}
	return nil, fmt.Errorf("unknown debug preset %q (DC-sp, DC-sp+nbr, DC-msg, DC-vv, DC-full, fig2, all-active, none)", preset)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	alg := fs.String("alg", "cc", "algorithm to run")
	mode := fs.String("mode", "vertex", "compute mode: vertex (classic, per-vertex) or subgraph (per connected component of a partition)")
	dataset := fs.String("dataset", "soc-Epinions", "dataset name (Table 1/2) or adjacency-list file")
	scale := fs.Float64("scale", 0.01, "dataset scale factor against the paper sizes")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 4, "worker goroutines")
	supersteps := fs.Int("supersteps", 10, "superstep budget for fixed-length algorithms")
	debug := fs.String("debug", "DC-sp", "debug preset or none")
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	jobID := fs.String("job", "", "job ID (default: <alg>-<timestamp>)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "checkpoint before every Nth superstep (0 disables)")
	crashAt := fs.Int("crash-at", -1, "simulate a worker crash after this superstep (requires -checkpoint-every)")
	crashPartition := fs.Int("crash-partition", -1, "with -crash-at, fail only this partition instead of the whole job (-2: seeded pick)")
	recovery := fs.String("recovery", "checkpoint", "recovery mode for injected failures: checkpoint (full restart) or log (confined replay from sender-side outbox logs)")
	msgLogDir := fs.String("msg-log-dir", "", "directory prefix for the -recovery=log outbox logs (in-memory, like checkpoints)")
	checkpointRetain := fs.Int("checkpoint-retain", 0, "checkpoints retention GC keeps (0: default 2, negative: keep all)")
	chaos := fs.Float64("chaos", 0, "per-operation storage fault probability injected into the checkpoint FS")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for fault injection and retry jitter (default: -seed)")
	metricsAddr := fs.String("metrics-addr", "", "serve live /metrics and /debug/vars on this address (e.g. :8090)")
	metricsOut := fs.String("metrics-out", "", "stream metrics events to this file as JSON Lines")
	metricsLinger := fs.Duration("metrics-linger", 0, "keep the -metrics-addr server alive this long after the job ends")
	pprofOn := fs.Bool("pprof", false, "also mount net/http/pprof on -metrics-addr")
	noMetrics := fs.Bool("no-metrics", false, "disable per-superstep telemetry collection")
	segmentSize := fs.Int("segment-size", trace.DefaultSegmentSize, "trace segment size in bytes before sealing")
	backpressure := fs.String("backpressure", "block", "capture queue policy when full: block or drop")
	queueCap := fs.Int("capture-queue", trace.DefaultQueueCapacity, "per-worker capture queue depth")
	syncCapture := fs.Bool("sync-capture", false, "write trace records inline instead of through the async pipeline")
	msgPlane := fs.String("msg-plane", "lanes", "message plane: lanes (lock-free per-sender lanes) or mutex (sharded locks)")
	msgBatch := fs.Int("msg-batch", 0, "messages buffered per destination partition before flushing (0: default 1024)")
	partitioner := fs.String("partitioner", "hash", "vertex placement: hash (stateless modulo) or locality (streaming neighbor-affinity placer)")
	rebalanceSkew := fs.Float64("rebalance-skew", 0, "migrate hot vertices off stragglers when compute/message skew exceeds this ratio (0 disables)")
	rebalanceObjective := fs.String("rebalance-objective", "skew", "what the rebalancer optimizes: skew (straggler load) or edgecut (cross-partition traffic)")
	rebalanceMaxMoves := fs.Int("rebalance-max-moves", 0, "cap on vertices migrated per rebalance (0: default 1024)")
	anomalyWindow := fs.Int("anomaly-window", 0, "sliding window in supersteps for the anomaly detectors (0: default 8, negative: disable detection and traffic-matrix capture)")
	anomalyOut := fs.String("anomaly-out", "", "write detected anomaly events to this file as JSON Lines")
	fs.Parse(args)

	var plane pregel.PlaneMode
	switch *msgPlane {
	case "lanes":
		plane = pregel.PlaneLanes
	case "mutex":
		plane = pregel.PlaneMutex
	default:
		return fmt.Errorf("unknown -msg-plane %q (lanes, mutex)", *msgPlane)
	}
	var placer pregel.PartitionerMode
	switch *partitioner {
	case "hash":
		placer = pregel.PartitionHash
	case "locality":
		placer = pregel.PartitionLocality
	default:
		return fmt.Errorf("unknown -partitioner %q (hash, locality)", *partitioner)
	}
	var objective pregel.RebalanceObjective
	switch *rebalanceObjective {
	case "skew":
		objective = pregel.ObjectiveSkew
	case "edgecut":
		objective = pregel.ObjectiveEdgeCut
	default:
		return fmt.Errorf("unknown -rebalance-objective %q (skew, edgecut)", *rebalanceObjective)
	}

	a, err := buildAlgorithm(*alg, *seed, *supersteps)
	if err != nil {
		return err
	}
	var computeMode pregel.ComputeMode
	switch *mode {
	case "vertex":
	case "subgraph":
		if !a.SupportsSubgraph() {
			return fmt.Errorf("algorithm %q has no subgraph-mode port (available in -mode subgraph: %s)",
				a.Name, strings.Join(algorithms.SubgraphNames(), ", "))
		}
		computeMode = pregel.ModeSubgraph
	default:
		return fmt.Errorf("unknown -mode %q (vertex, subgraph)", *mode)
	}
	g, err := buildGraph(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d vertices, %d directed edges\n", *dataset, g.NumVertices(), g.NumEdges())

	dc, err := buildDebugConfig(*debug, *seed)
	if err != nil {
		return err
	}
	id := *jobID
	if id == "" {
		id = fmt.Sprintf("%s-%d", a.Name, time.Now().UnixNano())
	}
	engCfg := pregel.Config{
		NumWorkers:         *workers,
		ComputeMode:        computeMode,
		Combiner:           a.Combiner,
		Master:             a.Master,
		MaxSupersteps:      a.MaxSupersteps,
		DisableMetrics:     *noMetrics,
		MessagePlane:       plane,
		MsgFlushBatch:      *msgBatch,
		Partitioner:        placer,
		RebalanceSkew:      *rebalanceSkew,
		RebalanceObjective: objective,
		RebalanceMaxMoves:  *rebalanceMaxMoves,
		AnomalyWindow:      *anomalyWindow,
	}
	if *anomalyOut != "" && (*noMetrics || *anomalyWindow < 0) {
		return fmt.Errorf("-anomaly-out needs the anomaly layer (drop -no-metrics and use a non-negative -anomaly-window)")
	}

	var reg *metrics.Registry
	if !*noMetrics {
		reg = metrics.NewRegistry(id, a.Name)
	}
	if *metricsOut != "" {
		if reg == nil {
			return fmt.Errorf("-metrics-out needs telemetry (drop -no-metrics)")
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		sink := metrics.NewJSONLSink(f)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "graft: metrics-out:", err)
			}
		}()
		reg.SetSink(sink)
	}
	if *metricsAddr != "" {
		if reg == nil {
			return fmt.Errorf("-metrics-addr needs telemetry (drop -no-metrics)")
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, metrics.NewMux(reg, metrics.MuxOptions{Pprof: *pprofOn})) }()
		fmt.Printf("metrics: http://%s/metrics (and /debug/vars)\n", ln.Addr())
	}
	if *checkpointEvery > 0 {
		if *chaosSeed == 0 {
			*chaosSeed = *seed
		}
		var ckptFS dfs.FileSystem = dfs.NewMemFS()
		if *chaos > 0 {
			// Seeded faults on checkpoint writes, absorbed by bounded
			// retries — the run exercises the resilient storage path and
			// reports what it survived in the resilience line below.
			plan := faults.Plan{
				Seed:         *chaosSeed,
				P:            map[faults.Op]float64{faults.OpWrite: *chaos, faults.OpCreate: *chaos / 2, faults.OpClose: *chaos / 2},
				MaxPerPathOp: 2,
				ShortWrites:  true,
			}
			ckptFS = faults.NewRetryFS(faults.NewFaultFS(ckptFS, plan), *chaosSeed)
			if p, ok := ckptFS.(pregel.FaultStatsProvider); ok && reg != nil {
				// Live /metrics exposes the chaos counters mid-run, before
				// the engine folds them into the final Stats.
				reg.AddFaultSource(p)
			}
		}
		engCfg.CheckpointEvery = *checkpointEvery
		engCfg.CheckpointFS = ckptFS
		engCfg.CheckpointPrefix = "ckpt/"
		engCfg.CheckpointRetain = *checkpointRetain
		switch *recovery {
		case "checkpoint":
		case "log":
			engCfg.Recovery = pregel.RecoveryLog
			engCfg.MsgLogFS = dfs.NewMemFS()
			engCfg.MsgLogPrefix = *msgLogDir
		default:
			return fmt.Errorf("unknown -recovery %q (checkpoint, log)", *recovery)
		}
		if *crashAt >= 0 {
			if *crashPartition != -1 {
				victim := *crashPartition
				if victim == -2 {
					victim = faults.PickPartition(*chaosSeed, *workers)
					fmt.Printf("crash: seeded victim partition %d of %d\n", victim, *workers)
				}
				engCfg.PartitionFailureAt = faults.FailPartitionAt(*crashAt, victim)
			} else {
				crashed := false
				engCfg.FailureAt = func(superstep int) bool {
					if superstep == *crashAt && !crashed {
						crashed = true
						return true
					}
					return false
				}
			}
		}
	} else if *recovery != "checkpoint" {
		return fmt.Errorf("-recovery=%s requires -checkpoint-every (confined replay rolls the failed partitions back to a checkpoint)", *recovery)
	}
	comp := a.Compute
	scomp := a.Subgraph

	traceOpts := []trace.Option{
		trace.WithSegmentSize(*segmentSize),
		trace.WithQueueCapacity(*queueCap),
	}
	switch *backpressure {
	case "block":
		traceOpts = append(traceOpts, trace.WithBackpressure(trace.Block))
	case "drop":
		traceOpts = append(traceOpts, trace.WithBackpressure(trace.Drop))
	default:
		return fmt.Errorf("run: -backpressure must be block or drop, got %q", *backpressure)
	}
	if *syncCapture {
		traceOpts = append(traceOpts, trace.WithSynchronous())
	}

	var session *core.Graft
	var store *trace.Store
	if dc != nil {
		store, err = openStore(*traceDir)
		if err != nil {
			return err
		}
		metaMode := ""
		if computeMode == pregel.ModeSubgraph {
			metaMode = "subgraph"
		}
		session, err = core.Attach(store, core.Options{
			JobID:       id,
			Algorithm:   a.Name,
			Description: fmt.Sprintf("dataset=%s scale=%g debug=%s mode=%s", *dataset, *scale, *debug, *mode),
			NumWorkers:  *workers,
			Trace:       traceOpts,
			ComputeMode: metaMode,
		}, g, *dc)
		if err != nil {
			return err
		}
		if computeMode == pregel.ModeSubgraph {
			scomp = session.InstrumentSubgraph(scomp)
		} else {
			comp = session.Instrument(comp)
		}
		engCfg.Master = session.InstrumentMaster(engCfg.Master)
		engCfg.Listener = session
		if reg != nil {
			session.Chain(reg)
			reg.AddFaultSource(session)
		}
		fmt.Printf("debugging with %s, traces under %s/%s\n", *debug, *traceDir, id)
	} else if reg != nil {
		engCfg.Listener = reg
	}

	var job *pregel.Job
	if computeMode == pregel.ModeSubgraph {
		job = pregel.NewSubgraphJob(g, scomp, engCfg)
	} else {
		job = pregel.NewJob(g, comp, engCfg)
	}
	for _, spec := range a.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	stats, runErr := job.Run()
	if reg != nil && store != nil {
		// Persist next to the trace so the GUI dashboard renders this
		// run after the process exits.
		if err := metrics.WriteJobMetrics(store.FS, store.MetricsPath(id), reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "graft: writing job.metrics:", err)
		}
	}
	if *anomalyOut != "" && stats != nil {
		if err := writeAnomalyJSONL(*anomalyOut, stats.Anomalies); err != nil {
			fmt.Fprintln(os.Stderr, "graft: anomaly-out:", err)
		}
	}
	if runErr != nil {
		fmt.Printf("job FAILED: %v\n", runErr)
		if session != nil {
			fmt.Printf("the failing context was captured (%d captures); inspect with graft show / graft-gui\n", session.Captures())
		}
		linger(*metricsAddr, *metricsLinger)
		return nil // the failure is the expected outcome of exception scenarios
	}
	fmt.Printf("finished: %s\n", stats.String())
	if computeMode == pregel.ModeSubgraph {
		var subs, iters int64
		for _, ss := range stats.PerSuperstep {
			subs += ss.SubgraphsComputed
			iters += ss.InternalIterations
		}
		fmt.Printf("subgraph mode: %d subgraph computations, %d internal iterations across %d supersteps\n",
			subs, iters, stats.Supersteps)
	}
	if compute, barrier, capture := stats.PhaseTotals(); compute > 0 {
		fmt.Printf("phases: compute=%v barrier=%v capture=%v max-compute-skew=%.2f\n",
			compute.Round(time.Millisecond), barrier.Round(time.Millisecond),
			capture.Round(time.Millisecond), stats.MaxComputeSkew())
	}
	if stats.Recoveries > 0 || stats.Faults.Any() {
		fmt.Printf("resilience: recoveries=%d %s\n", stats.Recoveries, stats.Faults)
		for _, ev := range stats.RecoveryEvents {
			fmt.Printf("  recovery @%d: mode=%s partitions=%v from-ckpt=%d steps-replayed=%d msgs-replayed=%d took=%v\n",
				ev.Superstep, ev.Mode, ev.Partitions, ev.CheckpointSuperstep,
				ev.SuperstepsReplayed, ev.MessagesReplayed, ev.Duration.Round(time.Microsecond))
		}
	}
	if stats.MessagesLogged > 0 {
		fmt.Printf("outbox log: %d messages logged (%d bytes)\n", stats.MessagesLogged, stats.BytesLogged)
	}
	if stats.Rebalances > 0 {
		fmt.Printf("rebalancer: %d migrations moved %d vertices (objective: %s)\n",
			stats.Rebalances, stats.VerticesMigrated, objective)
	}
	if len(stats.PartitionSizes) > 0 {
		fmt.Printf("placement: partitioner=%s sizes=%v edge-cut=%d local-msgs=%.1f%%\n",
			stats.Partitioner, stats.PartitionSizes, stats.EdgeCut, stats.LocalMessageRatio()*100)
	}
	if len(stats.Anomalies) > 0 {
		fmt.Printf("anomalies: %d events (%s)\n", len(stats.Anomalies), anomalySummary(stats.Anomalies))
	}
	if session != nil {
		fmt.Printf("captures: %d (limit hit: %v)\n", session.Captures(), session.LimitHit())
		if n := session.DroppedRecords(); n > 0 {
			fmt.Printf("capture pipeline dropped %d records under backpressure\n", n)
		}
	}
	linger(*metricsAddr, *metricsLinger)
	return nil
}

// anomalySummary rolls an event feed up into "kind: n" pairs, sorted
// by kind, for the run summary line.
func anomalySummary(evs []anomaly.Event) string {
	counts := map[string]int{}
	for _, ev := range evs {
		counts[string(ev.Kind)]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s: %d", k, counts[k])
	}
	return strings.Join(parts, ", ")
}

// writeAnomalyJSONL writes one JSON object per detected anomaly event,
// in emission order — the -anomaly-out feed alert pipelines tail.
func writeAnomalyJSONL(path string, evs []anomaly.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// linger keeps the process alive after the job so scrapers can still
// read the final /metrics state of short runs (the CI smoke test
// curls a job that finishes in milliseconds).
func linger(addr string, d time.Duration) {
	if addr == "" || d <= 0 {
		return
	}
	fmt.Printf("metrics: serving for another %v\n", d)
	time.Sleep(d)
}

func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	fs.Parse(args)
	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	ids, err := store.ListJobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		meta, err := store.ReadMeta(id)
		if err != nil {
			continue
		}
		status := "running"
		captures := int64(0)
		if res, done, _ := store.ReadResult(id); done {
			status = res.Reason
			if res.Error != "" {
				status = "failed"
			}
			captures = res.Captures
		}
		fmt.Printf("%-32s %-10s %8dv %10de %4dw captures=%d %s\n",
			id, meta.Algorithm, meta.NumVertices, meta.NumEdges, meta.NumWorkers, captures, status)
	}
	if len(ids) == 0 {
		fmt.Println("no traced jobs")
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	jobID := fs.String("job", "", "job ID")
	superstep := fs.Int("superstep", -1, "superstep to show (-1 = all)")
	violations := fs.Bool("violations", false, "show only violations and exceptions")
	fs.Parse(args)
	if *jobID == "" {
		return fmt.Errorf("show: -job required")
	}
	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	db, err := store.OpenReader(*jobID)
	if err != nil {
		return err
	}
	// Placement summary from the persisted job metrics, when the run
	// recorded them (older traces and -no-metrics runs have none).
	if jm, err := metrics.ReadJobMetrics(store.FS, store.MetricsPath(*jobID)); err == nil && jm.Partitioner != "" {
		fmt.Printf("placement: partitioner=%s edge-cut=%d local-msgs=%.1f%% vertices/worker=%v\n",
			jm.Partitioner, jm.EdgeCut, jm.Totals.LocalMessageRatio(jm.TrafficTotal())*100, jm.PartitionSizes)
	}
	steps := db.Supersteps()
	if *superstep >= 0 {
		steps = []int{*superstep}
	}
	for _, s := range steps {
		meta := db.MetaAt(s)
		if meta == nil {
			continue
		}
		st := db.StatusAt(s)
		fmt.Printf("superstep %d: %d vertices, %d edges, M=%s V=%s E=%s\n",
			s, meta.NumVertices, meta.NumEdges, redGreen(st.MessageViolation),
			redGreen(st.VertexViolation), redGreen(st.Exception))
		if *violations {
			for _, row := range db.ViolationsAt(s) {
				fmt.Printf("  VIOLATION vertex %d: %s %s (-> %d)\n", row.VertexID, row.Kind, row.Detail, row.DstID)
			}
			continue
		}
		for _, c := range db.CapturesAt(s) {
			fmt.Printf("  vertex %-8d [%s] %s -> %s  in=%d out=%d halted=%v\n",
				c.ID, c.Reasons, pregel.ValueString(c.ValueBefore), pregel.ValueString(c.ValueAfter),
				len(c.Incoming), len(c.Outgoing), c.HaltedAfter)
			if c.Exception != nil {
				fmt.Printf("    EXCEPTION: %s\n", strings.Split(c.Exception.Message, "\n")[0])
			}
		}
		for _, sc := range db.SubgraphsAt(s) {
			fmt.Printf("  subgraph %-6d members=%d iters=%d sent=%d halted=%v digest=%.12s\n",
				sc.ID, len(sc.Members), sc.Iterations, sc.MessagesSent, sc.HaltedAfter, sc.Digest)
		}
	}
	return nil
}

func redGreen(red bool) string {
	if red {
		return "RED"
	}
	return "green"
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	jobA := fs.String("a", "", "first job ID")
	jobB := fs.String("b", "", "second job ID")
	max := fs.Int("max", 20, "maximum divergences to print")
	fs.Parse(args)
	if *jobA == "" || *jobB == "" {
		return fmt.Errorf("diff: -a and -b required")
	}
	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	dbA, err := store.OpenReader(*jobA)
	if err != nil {
		return err
	}
	dbB, err := store.OpenReader(*jobB)
	if err != nil {
		return err
	}
	diff := trace.DiffJobs(dbA, dbB)
	if len(diff.OnlyA) > 0 {
		fmt.Printf("captured only in %s: %v\n", *jobA, diff.OnlyA)
	}
	if len(diff.OnlyB) > 0 {
		fmt.Printf("captured only in %s: %v\n", *jobB, diff.OnlyB)
	}
	if len(diff.StatusDiffs) > 0 {
		fmt.Printf("M/V/E status differs at supersteps: %v\n", diff.StatusDiffs)
	}
	if len(diff.Divergences) == 0 {
		fmt.Println("no divergences among commonly captured vertices")
		return nil
	}
	fmt.Printf("%d divergences; first at superstep %d vertex %d:\n",
		len(diff.Divergences), diff.FirstDivergence().Superstep, diff.FirstDivergence().ID)
	for i, d := range diff.Divergences {
		if i == *max {
			fmt.Printf("  ... and %d more\n", len(diff.Divergences)-*max)
			break
		}
		fmt.Printf("  superstep %3d vertex %-8d %v: %s=%s vs %s=%s\n",
			d.Superstep, d.ID, d.Fields,
			*jobA, pregel.ValueString(d.A.ValueAfter),
			*jobB, pregel.ValueString(d.B.ValueAfter))
	}
	return nil
}

func cmdRepro(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	jobID := fs.String("job", "", "job ID")
	superstep := fs.Int("superstep", 0, "superstep")
	vertex := fs.Int64("vertex", -1, "vertex to reproduce")
	master := fs.Bool("master", false, "reproduce the master context instead")
	suite := fs.Bool("suite", false, "generate one test per captured superstep of the vertex")
	comp := fs.String("comp", "", "Go expression for the computation (else a TODO placeholder)")
	imports := fs.String("imports", "", "comma-separated extra imports for -comp")
	assert := fs.Bool("assert", false, "add assertions from the captured outcome")
	fs.Parse(args)
	if *jobID == "" {
		return fmt.Errorf("repro: -job required")
	}
	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	db, err := store.OpenReader(*jobID)
	if err != nil {
		return err
	}
	spec := repro.GenSpec{Assert: *assert}
	if *imports != "" {
		spec.ExtraImports = strings.Split(*imports, ",")
	}
	var code string
	switch {
	case *master:
		spec.MasterExpr = *comp
		code, err = repro.GenerateMasterTest(db, *superstep, spec)
	case *suite:
		if *vertex < 0 {
			return fmt.Errorf("repro: -vertex required with -suite")
		}
		spec.ComputationExpr = *comp
		code, err = repro.GenerateVertexSuite(db, pregel.VertexID(*vertex), spec)
	default:
		if *vertex < 0 {
			return fmt.Errorf("repro: -vertex required (or -master)")
		}
		if db.JobMeta().ComputeMode == "subgraph" {
			// The trace manifest says the job ran subgraph-centric, so the
			// matching harness reproduces the whole component containing
			// the vertex, member by member.
			spec.SubgraphExpr = *comp
			code, err = repro.GenerateSubgraphTest(db, *superstep, pregel.VertexID(*vertex), spec)
		} else {
			spec.ComputationExpr = *comp
			code, err = repro.GenerateVertexTest(db, *superstep, pregel.VertexID(*vertex), spec)
		}
	}
	if err != nil {
		return err
	}
	fmt.Print(code)
	return nil
}

// cmdTraceCheck cross-checks the two read paths over one trace: the
// lazy indexed Reader must serve exactly the view the eager LoadDB
// builds, and a cold single-vertex lookup must touch at most one
// segment per lane. CI runs this after the capture-smoke job.
func cmdTraceCheck(args []string) error {
	fs := flag.NewFlagSet("trace-check", flag.ExitOnError)
	traceDir := fs.String("trace-dir", "graft-traces", "trace directory")
	jobID := fs.String("job", "", "job ID")
	fs.Parse(args)
	if *jobID == "" {
		return fmt.Errorf("trace-check: -job required")
	}
	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	lazy, err := store.OpenReader(*jobID)
	if err != nil {
		return err
	}
	eager, err := store.LoadDB(*jobID)
	if err != nil {
		return err
	}

	if l, e := lazy.MaxSuperstep(), eager.MaxSuperstep(); l != e {
		return fmt.Errorf("trace-check: max superstep: lazy=%d eager=%d", l, e)
	}
	if l, e := lazy.TotalCaptures(), eager.TotalCaptures(); l != e {
		return fmt.Errorf("trace-check: total captures: lazy=%d eager=%d", l, e)
	}
	diff := trace.DiffJobs(lazy, eager)
	if n := len(diff.OnlyA) + len(diff.OnlyB); n > 0 {
		return fmt.Errorf("trace-check: %d vertices captured in only one view (lazy-only %v, eager-only %v)",
			n, diff.OnlyA, diff.OnlyB)
	}
	if len(diff.StatusDiffs) > 0 {
		return fmt.Errorf("trace-check: M/V/E status differs at supersteps %v", diff.StatusDiffs)
	}
	if len(diff.Divergences) > 0 {
		d := diff.FirstDivergence()
		return fmt.Errorf("trace-check: %d capture divergences between lazy and eager views; first at superstep %d vertex %d (%v)",
			len(diff.Divergences), d.Superstep, d.ID, d.Fields)
	}
	if err := lazy.Err(); err != nil {
		return fmt.Errorf("trace-check: lazy reader: %w", err)
	}

	// Cold lookup cost: reopen so the segment cache is empty, fetch one
	// captured vertex, and count the segment files actually read.
	ids := eager.CapturedVertexIDs()
	steps := eager.Supersteps()
	if len(ids) > 0 && len(steps) > 0 {
		id, step := ids[len(ids)/2], -1
		for _, s := range steps {
			if eager.Capture(s, id) != nil {
				step = s
				break
			}
		}
		if step >= 0 {
			cold, err := store.OpenReader(*jobID)
			if err != nil {
				return err
			}
			if cold.Capture(step, id) == nil {
				return fmt.Errorf("trace-check: cold lookup of vertex %d at superstep %d returned nothing", id, step)
			}
			if n := cold.SegmentReads(); n > 1 {
				return fmt.Errorf("trace-check: cold single-vertex lookup read %d segments, want at most 1", n)
			}
			fmt.Printf("cold lookup: vertex %d @ superstep %d served from %d segment read(s)\n",
				id, step, cold.SegmentReads())
		}
	}
	fmt.Printf("trace-check ok: %s — %d supersteps, %d captures, lazy view matches eager load\n",
		*jobID, len(steps), eager.TotalCaptures())
	return nil
}
