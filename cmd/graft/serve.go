package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graft"
	"graft/internal/serve"
)

// cmdServe runs the multi-job daemon: one graft.Session over a shared
// trace store, jobs submitted and canceled over HTTP, the GUI mounted
// on the same address.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	traceDir := fs.String("trace-dir", "graft-traces", "shared trace directory (one subdirectory per job)")
	maxConcurrent := fs.Int("max-concurrent", 4, "jobs running superstep loops at once")
	maxPending := fs.Int("max-pending", 0, "queued-job admission limit (0: 4x max-concurrent)")
	maxWorkersPerJob := fs.Int("max-workers-per-job", 0, "per-job NumWorkers cap (0: uncapped)")
	workersTotal := fs.Int("workers-total", 0, "global worker-goroutine budget across all jobs (0: uncapped)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := openStore(*traceDir)
	if err != nil {
		return err
	}
	session, err := graft.NewSession(graft.SessionConfig{
		Store:             store,
		MaxConcurrentJobs: *maxConcurrent,
		MaxPendingJobs:    *maxPending,
		MaxWorkersPerJob:  *maxWorkersPerJob,
		MaxTotalWorkers:   *workersTotal,
	})
	if err != nil {
		return err
	}
	daemon, err := serve.New(session)
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: daemon.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Printf("graft serve: listening on http://%s (traces under %s, max %d concurrent jobs)\n",
		*addr, *traceDir, *maxConcurrent)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		daemon.Close()
		return err
	case s := <-sig:
		fmt.Printf("graft serve: %v, shutting down\n", s)
	}

	// Cancel every unfinished job (their engines stop at the next
	// barrier, traces stay readable), then drain the HTTP server.
	daemon.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-errCh
}
