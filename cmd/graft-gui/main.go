// Command graft-gui serves the Graft browser GUI (paper §3.2) over a
// local trace directory: node-link, tabular, and violations &
// exceptions views, superstep stepping, reproduce-context buttons and
// the offline graph builder.
//
//	graft-gui -trace-dir ./graft-traces -addr :8320
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/gui"
	"graft/internal/repro"
	"graft/internal/trace"
)

func main() {
	traceDir := flag.String("trace-dir", "graft-traces", "trace directory written by graft run")
	addr := flag.String("addr", "127.0.0.1:8320", "listen address")
	flag.Parse()

	fs, err := dfs.NewLocalFS(*traceDir)
	if err != nil {
		log.Fatalf("graft-gui: %v", err)
	}
	srv := gui.NewServer(trace.NewStore(fs, ""))
	registerBuiltinSpecs(srv)

	fmt.Printf("Graft GUI on http://%s (traces from %s)\n", *addr, *traceDir)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// registerBuiltinSpecs wires reproduce-context code generation for the
// algorithms shipped in this repository, so the generated tests call
// the right constructors. (Seeds are command-line conventions: the
// cmd/graft default is 42.)
func registerBuiltinSpecs(srv *gui.Server) {
	algImports := []string{"graft/internal/algorithms"}
	specs := map[string]repro.GenSpec{
		"gc":       {ComputationExpr: "algorithms.NewGraphColoring(42).Compute", MasterExpr: "algorithms.NewGraphColoring(42).Master"},
		"gc-buggy": {ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute", MasterExpr: "algorithms.NewBuggyGraphColoring(42).Master"},
		"rw":       {ComputationExpr: "algorithms.NewRandomWalk(42, 10).Compute"},
		"rw16":     {ComputationExpr: "algorithms.NewRandomWalk16(42, 10).Compute"},
		"mwm":      {ComputationExpr: "algorithms.NewMaximumWeightMatching(1000).Compute"},
		"cc":       {ComputationExpr: "algorithms.NewConnectedComponents().Compute"},
		"pagerank": {ComputationExpr: "algorithms.NewPageRank(10, 0.85).Compute"},
		"sssp":     {ComputationExpr: "algorithms.NewSSSP(0).Compute"},
	}
	for name, spec := range specs {
		spec.ExtraImports = algImports
		spec.Assert = true
		srv.RegisterReproSpec(name, spec)
	}
	// Live computations for the replay-check view (same seeds).
	srv.RegisterComputation("gc", algorithms.NewGraphColoring(42).Compute)
	srv.RegisterComputation("gc-buggy", algorithms.NewBuggyGraphColoring(42).Compute)
	srv.RegisterComputation("rw", algorithms.NewRandomWalk(42, 10).Compute)
	srv.RegisterComputation("rw16", algorithms.NewRandomWalk16(42, 10).Compute)
	srv.RegisterComputation("mwm", algorithms.NewMaximumWeightMatching(1000).Compute)
	srv.RegisterComputation("cc", algorithms.NewConnectedComponents().Compute)
	srv.RegisterComputation("pagerank", algorithms.NewPageRank(10, 0.85).Compute)
	srv.RegisterComputation("sssp", algorithms.NewSSSP(0).Compute)
	srv.RegisterComputation("lpa", algorithms.NewLabelPropagation(100).Compute)
	srv.RegisterComputation("triangles", algorithms.NewTriangleCount().Compute)
	srv.RegisterComputation("kcore", algorithms.NewKCore(3).Compute)
}
