// Package graft is a Go reproduction of Graft, the capture /
// visualize / reproduce debugger for Apache Giraph (Salihoglu, Shin,
// Khanna, Truong, Widom; SIGMOD 2015), together with the Pregel-style
// BSP engine it debugs.
//
// The typical flow mirrors the paper:
//
//  1. Capture — describe the vertices of interest in a DebugConfig and
//     Run the job; Graft writes their full per-superstep contexts to
//     per-worker trace files in a (simulated) distributed file system.
//  2. Visualize — open the trace with OpenTrace (lazy, index-driven)
//     and step through it with the HTTP GUI (internal/gui via
//     cmd/graft-gui), or query it programmatically.
//  3. Reproduce — generate a standalone Go test that rebuilds the
//     exact context of one vertex at one superstep and calls the
//     user's Compute, for line-by-line debugging.
//
// Quick start:
//
//	g := graft.NewGraph()
//	// ... add vertices and edges ...
//	fs := graft.NewMemFS()
//	res, err := graft.Run(g, myComputation, graft.RunOptions{
//		JobID:     "run-1",
//		Algorithm: "my-algo",
//		Store:     graft.NewStore(fs, "traces"),
//		Debug:     &graft.DebugConfig{CaptureIDs: []graft.VertexID{42}, CaptureExceptions: true},
//	})
package graft

import (
	"context"
	"time"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// Re-exported engine types: the vocabulary user computations are
// written in.
type (
	// Graph is an input graph under construction.
	Graph = pregel.Graph
	// Vertex is the unit of computation.
	Vertex = pregel.Vertex
	// Edge is an outgoing edge.
	Edge = pregel.Edge
	// VertexID identifies a vertex.
	VertexID = pregel.VertexID
	// Value is the interface of vertex/edge/message/aggregator values.
	Value = pregel.Value
	// Computation is the vertex program (vertex.compute).
	Computation = pregel.Computation
	// ComputeFunc adapts a function to Computation.
	ComputeFunc = pregel.ComputeFunc
	// Context is the per-superstep vertex environment.
	Context = pregel.Context
	// ComputeMode selects the unit of computation the engine dispatches
	// per superstep (EngineConfig.ComputeMode): ModeVertex or
	// ModeSubgraph.
	ComputeMode = pregel.ComputeMode
	// SubgraphComputation is the partition-level program of
	// ModeSubgraph: a sequential algorithm over one connected component
	// of a partition per superstep.
	SubgraphComputation = pregel.SubgraphComputation
	// SubgraphFunc adapts a function to SubgraphComputation.
	SubgraphFunc = pregel.SubgraphFunc
	// SubgraphContext is the subgraph program's per-superstep
	// environment, mirroring Context's send/aggregate/halt surface.
	SubgraphContext = pregel.SubgraphContext
	// Subgraph is one connected component of a partition: the unit
	// ComputeSubgraph runs over.
	Subgraph = pregel.Subgraph
	// MasterComputation is the master program (master.compute).
	MasterComputation = pregel.MasterComputation
	// MasterContext is the master's environment.
	MasterContext = pregel.MasterContext
	// EngineConfig configures the BSP engine.
	EngineConfig = pregel.Config
	// Stats summarizes a finished job.
	Stats = pregel.Stats
	// DebugConfig selects which vertices Graft captures.
	DebugConfig = core.DebugConfig
	// Store lays trace files out in a file system.
	Store = trace.Store
	// TraceDB is the eager in-memory index over one job's trace.
	//
	// Deprecated: TraceDB (and Store.LoadDB, which builds it) loads
	// every trace segment up front. Open traces with OpenTrace /
	// Store.OpenReader instead and program against TraceView — the
	// interface both satisfy — so lookups read only the segments they
	// touch. TraceDB remains for whole-trace scans (e.g. cross-checking
	// the lazy reader, as `graft trace-check` does) and for traces in
	// the legacy non-segmented layout.
	TraceDB = trace.DB
	// TraceView is the read API shared by the eager TraceDB and the
	// lazy TraceReader: everything the GUI and the Context Reproducer
	// need from a trace.
	TraceView = trace.View
	// TraceReader is the lazy, index-driven trace reader: it seeks
	// through the segment index and reads only the segments a lookup
	// touches.
	TraceReader = trace.Reader
	// TraceSink is the write side of the redesigned trace API: one
	// RecordSink per worker plus one for the master, flushed at
	// superstep barriers.
	TraceSink = trace.Sink
	// RecordSink accepts capture records for one lane (worker or
	// master).
	RecordSink = trace.RecordSink
	// TraceOption configures a TraceSink (segment size, backpressure,
	// queue capacity, synchronous mode).
	TraceOption = trace.Option
	// BackpressurePolicy selects what a full capture queue does:
	// Block (lossless) or Drop (non-blocking, counted).
	BackpressurePolicy = trace.BackpressurePolicy
	// FileSystem is the storage abstraction traces live in.
	FileSystem = dfs.FileSystem
	// Cluster simulates an HDFS-like replicated store: parallel
	// pipelined block replication, streaming checksummed reads with
	// read-ahead, node kill/revive, and damage-proportional healing.
	Cluster = dfs.Cluster
	// ClusterStats snapshots a Cluster's data-path counters (bytes
	// moved, read-ahead hits, quarantined replicas).
	ClusterStats = dfs.ClusterStats
	// DataNode is one simulated storage node of a Cluster.
	DataNode = dfs.DataNode
	// Algorithm bundles a computation with its master, combiner and
	// aggregators (see internal/algorithms for the library).
	Algorithm = algorithms.Algorithm
	// AggregatorSpec declares one aggregator a computation needs.
	AggregatorSpec = algorithms.AggregatorSpec
	// Aggregator merges per-vertex contributions into a global value.
	Aggregator = pregel.Aggregator
	// Combiner merges messages addressed to the same vertex.
	Combiner = pregel.Combiner
	// FaultStats aggregates storage-resilience counters for one job.
	FaultStats = pregel.FaultStats
	// MessagePlaneMode selects the engine's message delivery path
	// (PlaneLanes or PlaneMutex) via EngineConfig.MessagePlane.
	MessagePlaneMode = pregel.PlaneMode
	// ImmutableValue marks values that are never mutated after
	// creation, letting SendMessageToAllEdges skip per-edge clones
	// when no combiner is installed.
	ImmutableValue = pregel.ImmutableValue
	// MigrationEvent records one barrier migration by the rebalancer,
	// surfaced in SuperstepStats.Migrations.
	MigrationEvent = pregel.MigrationEvent
	// PartitionerMode selects the initial vertex placement
	// (EngineConfig.Partitioner): PartitionHash or PartitionLocality.
	PartitionerMode = pregel.PartitionerMode
	// RebalanceObjective selects what the adaptive repartitioner
	// optimizes (EngineConfig.RebalanceObjective): ObjectiveSkew or
	// ObjectiveEdgeCut.
	RebalanceObjective = pregel.RebalanceObjective
	// RecoveryMode selects how the engine recovers from worker
	// failures (EngineConfig.Recovery): RecoveryCheckpoint restarts
	// the whole job from the newest checkpoint, RecoveryLog confines
	// the rollback to the failed partitions and replays their inboxes
	// from sender-side outbox logs.
	RecoveryMode = pregel.RecoveryMode
	// RecoveryEvent is the per-recovery breakdown in
	// Stats.RecoveryEvents: mode, partitions, replay window and cost.
	RecoveryEvent = pregel.RecoveryEvent
	// FaultPlan configures deterministic fault injection (see
	// internal/faults).
	FaultPlan = faults.Plan
	// FaultFS injects seeded faults into a wrapped file system.
	FaultFS = faults.FaultFS
	// RetryFS absorbs transient storage failures with capped
	// exponential backoff.
	RetryFS = faults.RetryFS
	// FallbackFS degrades files onto a secondary file system when the
	// primary keeps failing.
	FallbackFS = faults.FallbackFS
)

// Compute modes for EngineConfig.ComputeMode.
const (
	// ModeVertex is the classic vertex-centric model and the default:
	// Compute runs once per active vertex per superstep.
	ModeVertex = pregel.ModeVertex
	// ModeSubgraph is the subgraph-centric model: ComputeSubgraph runs
	// once per active connected component of a partition per superstep,
	// collapsing traversal workloads to O(partition diameter) supersteps.
	ModeSubgraph = pregel.ModeSubgraph
)

// NewDetachedSubgraph builds a free-standing subgraph from member
// vertices and their incoming messages — what generated subgraph
// reproduction tests use to rebuild a captured component.
var NewDetachedSubgraph = pregel.NewDetachedSubgraph

// Message-plane modes for EngineConfig.MessagePlane.
const (
	// PlaneLanes is the default lock-free plane: per-sender inbox
	// lanes with sender-side combining, merged by the owning worker
	// after the superstep barrier in deterministic sender order.
	PlaneLanes = pregel.PlaneLanes
	// PlaneMutex is the seed mutex-sharded plane, kept as the
	// benchmark baseline.
	PlaneMutex = pregel.PlaneMutex
)

// Recovery modes for EngineConfig.Recovery.
const (
	// RecoveryCheckpoint rolls the whole job back to the newest intact
	// checkpoint on any failure — the classic Pregel strategy and the
	// default.
	RecoveryCheckpoint = pregel.RecoveryCheckpoint
	// RecoveryLog is log-based confined recovery: only failed
	// partitions roll back and recompute, fed by the sender-side
	// outbox logs, while survivors stay live. Requires PlaneLanes and
	// EngineConfig.MsgLogFS; degrades to a checkpoint restart when the
	// logs cannot drive a replay.
	RecoveryLog = pregel.RecoveryLog
)

// Placement modes for EngineConfig.Partitioner.
const (
	// PartitionHash is Fibonacci hashing, the default: placement is a
	// pure function of the vertex ID, byte-compatible with runs from
	// before the placement subsystem existed.
	PartitionHash = pregel.PartitionHash
	// PartitionLocality is the streaming locality-aware placer: each
	// vertex goes to the worker already holding the most of its
	// neighbors, capacity-penalized so load stays balanced. Fewer
	// cross-worker messages on every workload, larger components —
	// hence fuller superstep collapse — in ModeSubgraph. Results and
	// trace digests are identical to PartitionHash.
	PartitionLocality = pregel.PartitionLocality
)

// Rebalance objectives for EngineConfig.RebalanceObjective.
const (
	// ObjectiveSkew migrates hot vertices off straggler workers when
	// compute/message skew crosses EngineConfig.RebalanceSkew (the
	// default objective).
	ObjectiveSkew = pregel.ObjectiveSkew
	// ObjectiveEdgeCut migrates boundary vertices toward their heaviest
	// communication partner when the traffic matrix shows a dominant
	// cross-partition lane, shrinking the edge cut. Requires PlaneLanes
	// and telemetry.
	ObjectiveEdgeCut = pregel.ObjectiveEdgeCut
)

// FailPartitionAt builds an EngineConfig.PartitionFailureAt hook that
// kills the given partitions once, at the barrier after the given
// superstep (see internal/faults).
var FailPartitionAt = faults.FailPartitionAt

// PickPartition derives a reproducible victim partition in [0, n)
// from a seed, for chaos runs replayable from their seed alone.
var PickPartition = faults.PickPartition

// TraceDigest computes a canonical SHA-256 of a trace's captured
// computation, invariant to vertex placement and inbox arrival order;
// two runs of the same deterministic job digest identically even when
// partitioned differently (e.g. with the skew rebalancer on vs off).
var TraceDigest = trace.Digest

// Backpressure policies for the capture pipeline.
const (
	// Block makes a full capture queue block the compute goroutine
	// until the writer drains: full fidelity, bounded memory.
	Block = trace.Block
	// Drop makes a full capture queue discard the record and count it
	// in DroppedRecords: compute never stalls on trace I/O.
	Drop = trace.Drop
)

// ErrInvalidTraceOption is the sentinel wrapped by trace-pipeline
// option failures (negative queue capacities, segment or batch sizes),
// surfaced through Run/Submit when the sink is created.
var ErrInvalidTraceOption = trace.ErrInvalidOption

// Capture-pipeline options, re-exported so callers configure sinks
// without importing internal/trace.
var (
	// WithSegmentSize sets the byte threshold at which a trace segment
	// is sealed and written out.
	WithSegmentSize = trace.WithSegmentSize
	// WithQueueCapacity sets the per-lane capture queue depth, in
	// records.
	WithQueueCapacity = trace.WithQueueCapacity
	// WithBatchSize sets how many records a lane batches per handoff
	// to its background writer.
	WithBatchSize = trace.WithBatchSize
	// WithBackpressure selects the full-queue policy (Block or Drop).
	WithBackpressure = trace.WithBackpressure
	// WithSynchronous disables the background writers: records are
	// encoded and written inline, the legacy behavior. Mostly useful
	// for benchmarking the async pipeline against its baseline.
	WithSynchronous = trace.WithSynchronous
)

// Re-exported value constructors, so user computations and generated
// reproduction code need only this package.
var (
	NewLong   = pregel.NewLong
	NewInt    = pregel.NewInt
	NewShort  = pregel.NewShort
	NewDouble = pregel.NewDouble
	NewText   = pregel.NewText
	NewBool   = pregel.NewBool
	Nil       = pregel.Nil
)

// ValueString renders a value for display, with "∅" for nil.
func ValueString(v Value) string { return pregel.ValueString(v) }

// NewGraph returns an empty graph.
func NewGraph() *Graph { return pregel.NewGraph() }

// NewMemFS returns an in-memory file system for traces.
func NewMemFS() *dfs.MemFS { return dfs.NewMemFS() }

// NewLocalFS returns a file system rooted at a local directory.
func NewLocalFS(dir string) (*dfs.LocalFS, error) { return dfs.NewLocalFS(dir) }

// NewCluster returns a simulated distributed file system with numNodes
// datanodes, the given replication factor and block size (0 means the
// default of 64 KiB). See dfs.Cluster for the data-path guarantees.
func NewCluster(numNodes, replication, blockSize int) *Cluster {
	return dfs.NewCluster(numNodes, replication, blockSize)
}

// CorruptReplicas flips one seed-derived bit in one replica of every
// nth block of a cluster — deterministic silent-corruption injection
// for checksum experiments (see internal/faults).
var CorruptReplicas = faults.CorruptReplicas

// NewStore returns a trace store rooted at root within fs.
//
// Migration note: the historical pairing of NewStore with
// Store.NewJobWriter on the write side and Store.LoadDB on the read
// side is deprecated. Jobs now write through Store.NewSink (async,
// segmented, indexed — what Run uses internally) and read through
// Store.OpenReader / OpenTrace, which serve lookups from the segment
// index instead of loading the whole trace. LoadDB remains as an
// eager compatibility wrapper and understands both layouts.
func NewStore(fs dfs.FileSystem, root string) *Store { return trace.NewStore(fs, root) }

// OpenTrace opens a job's trace lazily: lookups go through the
// segment index and read only the segments they touch. The returned
// Reader implements TraceView, the same query surface as the eager
// TraceDB.
func OpenTrace(store *Store, jobID string) (*TraceReader, error) {
	return store.OpenReader(jobID)
}

// NewLatencyFS wraps fs with a fixed per-operation delay, modeling a
// remote store's round-trip cost (what the capture benchmark uses).
func NewLatencyFS(fs dfs.FileSystem, delay time.Duration) dfs.FileSystem {
	return dfs.NewLatencyFS(fs, delay)
}

// NewFaultFS wraps fs with a deterministic, seed-driven fault injector.
func NewFaultFS(fs dfs.FileSystem, plan FaultPlan) *FaultFS { return faults.NewFaultFS(fs, plan) }

// NewRetryFS wraps fs with bounded exponential-backoff retries.
func NewRetryFS(fs dfs.FileSystem, seed int64) *RetryFS { return faults.NewRetryFS(fs, seed) }

// NewFallbackFS writes through to primary, degrading files onto
// secondary when primary conclusively fails.
func NewFallbackFS(primary, secondary dfs.FileSystem) *FallbackFS {
	return faults.NewFallbackFS(primary, secondary)
}

// RunOptions configures one debugged (or plain) job run.
type RunOptions struct {
	// JobID names the trace directory; required when Debug is set.
	JobID string
	// Algorithm is a human-readable name recorded in the manifest.
	Algorithm string
	// Description optionally records dataset/parameters.
	Description string
	// Engine configures the BSP engine (workers, master, combiner...).
	Engine EngineConfig
	// Subgraph is the subgraph-centric program, required when
	// Engine.ComputeMode is ModeSubgraph (RunAlgorithm fills it from
	// the algorithm's port). The Computation argument is ignored in
	// that mode.
	Subgraph SubgraphComputation
	// Debug, when non-nil, attaches Graft with this DebugConfig.
	Debug *DebugConfig
	// Store receives trace files; required when Debug is set.
	Store *Store
	// Trace configures the capture pipeline (segment size,
	// backpressure policy, queue capacity, synchronous mode). The
	// zero value is the async pipeline with blocking backpressure.
	Trace []TraceOption
	// Aggregators to register on the job.
	Aggregators []AggregatorSpec
}

// RunResult reports a finished run.
type RunResult struct {
	Stats *Stats
	// JobID is where traces were written ("" without debugging).
	JobID string
	// Captures is the number of vertex contexts captured.
	Captures int64
	// LimitHit reports whether the MaxCaptures safety net engaged.
	LimitHit bool
}

// Run executes comp over g, attaching Graft when opts.Debug is set.
// The engine mutates g in place; clone the graph to reuse it. Run is a
// compatibility wrapper over a one-job Session: long-lived callers that
// multiplex jobs (or need cancellation) should use NewSession and
// Session.Submit, whose Job handles add Wait/Cancel/State on the same
// execution path.
//
// When the computation itself fails (an exception scenario), Run
// returns both the error and a RunResult: the trace — including the
// captured failing context — is still written, which is the point.
func Run(g *Graph, comp Computation, opts RunOptions) (*RunResult, error) {
	if err := validateRunOptions(&opts); err != nil {
		return nil, err
	}
	return runJob(context.Background(), g, comp, opts, nil)
}

// RunAlgorithm runs a packaged Algorithm — wiring its master, combiner,
// aggregators and superstep bound into opts — under the same debugging
// setup as Run. Explicit opts.Engine fields win over the algorithm's.
func RunAlgorithm(g *Graph, alg *Algorithm, opts RunOptions) (*RunResult, error) {
	mergeAlgorithm(&opts, alg)
	return Run(g, alg.Compute, opts)
}

// RunSubgraph runs a subgraph-centric program over g: Run with
// Engine.ComputeMode forced to ModeSubgraph. Debugging, tracing and
// reproduction work exactly as in vertex mode, at component
// granularity.
func RunSubgraph(g *Graph, scomp SubgraphComputation, opts RunOptions) (*RunResult, error) {
	opts.Engine.ComputeMode = pregel.ModeSubgraph
	opts.Subgraph = scomp
	if err := validateRunOptions(&opts); err != nil {
		return nil, err
	}
	return runJob(context.Background(), g, nil, opts, nil)
}
