package graft

import (
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// TestSubgraphCrashRecoveryDigestEquivalence composes subgraph mode
// with -crash-partition confined recovery: a run whose victim
// partition is rolled back to a checkpoint and caught up by replaying
// sender-side outbox logs must land on exactly the same vertex values
// — and the same trace — as a failure-free subgraph run, which in turn
// must match vertex mode.
func TestSubgraphCrashRecoveryDigestEquivalence(t *testing.T) {
	const crashAt, victim = 3, 1
	run := func(mode pregel.ComputeMode, crash bool) (string, trace.View, *Stats) {
		engine := EngineConfig{NumWorkers: 4, ComputeMode: mode}
		at := -1
		if crash {
			at = crashAt
		}
		g := broomGraph(200, 60)
		view, stats := tracedRecoveryRun(t, g, algorithms.NewConnectedComponents(), engine, RecoveryLog, at, victim)
		return g.ValuesDigest(), view, stats
	}
	vertexDigest, _, _ := run(pregel.ModeVertex, false)
	cleanDigest, cleanView, cleanStats := run(pregel.ModeSubgraph, false)
	crashDigest, crashView, crashStats := run(pregel.ModeSubgraph, true)

	if cleanStats.Supersteps <= crashAt {
		t.Fatalf("subgraph run finished in %d supersteps, before the injected crash at %d",
			cleanStats.Supersteps, crashAt)
	}
	if cleanDigest != vertexDigest {
		t.Fatalf("subgraph-mode values diverged from vertex mode:\nvertex:   %s\nsubgraph: %s",
			vertexDigest, cleanDigest)
	}
	if crashDigest != cleanDigest {
		t.Fatalf("confined recovery changed subgraph-mode values:\nclean:     %s\nrecovered: %s",
			cleanDigest, crashDigest)
	}
	if crashStats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", crashStats.Recoveries)
	}
	ev := crashStats.RecoveryEvents[0]
	if ev.Mode != "log" {
		t.Errorf("recovery mode = %q, want log", ev.Mode)
	}
	if len(ev.Partitions) != 1 || ev.Partitions[0] != victim {
		t.Errorf("recovery was not confined to partition %d: %v", victim, ev.Partitions)
	}
	if a, b := trace.Digest(cleanView), trace.Digest(crashView); a != b {
		t.Fatalf("confined recovery is visible in the trace digest:\nclean:     %s\nrecovered: %s", a, b)
	}
}

// TestSubgraphTraceEndToEnd runs a debugged subgraph-mode job through
// the public API and checks the whole trace surface: the manifest's
// compute mode, subgraph captures served identically by the lazy
// indexed reader and the eager DB load, and member-to-component
// resolution.
func TestSubgraphTraceEndToEnd(t *testing.T) {
	g := graphgen.RegularBipartite(80, 4)
	store := NewStore(NewMemFS(), "traces")
	alg := algorithms.NewConnectedComponents()
	res, err := RunAlgorithm(g, alg, RunOptions{
		JobID:  "sg-e2e",
		Engine: EngineConfig{NumWorkers: 4, ComputeMode: ModeSubgraph},
		Debug:  &DebugConfig{CaptureAllActive: true, MaxCaptures: -1},
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Captures == 0 {
		t.Fatal("no captures recorded")
	}

	lazy, err := store.OpenReader("sg-e2e")
	if err != nil {
		t.Fatal(err)
	}
	eager, err := store.LoadDB("sg-e2e")
	if err != nil {
		t.Fatal(err)
	}
	if mode := lazy.JobMeta().ComputeMode; mode != "subgraph" {
		t.Fatalf("manifest compute_mode = %q, want subgraph", mode)
	}

	sawSubgraph := false
	for _, s := range eager.Supersteps() {
		le, ee := lazy.SubgraphsAt(s), eager.SubgraphsAt(s)
		if len(le) != len(ee) {
			t.Fatalf("superstep %d: lazy has %d subgraph captures, eager %d", s, len(le), len(ee))
		}
		for i, ec := range ee {
			sawSubgraph = true
			lc := le[i]
			if lc.ID != ec.ID || lc.Digest != ec.Digest || len(lc.Members) != len(ec.Members) {
				t.Fatalf("superstep %d: lazy/eager subgraph mismatch: %+v vs %+v", s, lc, ec)
			}
			for _, m := range ec.Members {
				if eager.Capture(s, m) == nil {
					t.Fatalf("superstep %d: member %d of subgraph %d has no vertex capture", s, m, ec.ID)
				}
				if got := lazy.SubgraphAt(s, m); got == nil || got.ID != ec.ID {
					t.Fatalf("superstep %d: lazy SubgraphAt(%d) = %+v, want component %d", s, m, got, ec.ID)
				}
				if got := eager.SubgraphAt(s, m); got == nil || got.ID != ec.ID {
					t.Fatalf("superstep %d: eager SubgraphAt(%d) = %+v, want component %d", s, m, got, ec.ID)
				}
			}
		}
	}
	if !sawSubgraph {
		t.Fatal("trace contains no subgraph captures")
	}
	if err := lazy.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRunSubgraphHelper covers the RunSubgraph convenience entry and
// the typed error for a missing subgraph computation.
func TestRunSubgraphHelper(t *testing.T) {
	g := graphgen.RegularBipartite(40, 3)
	res, err := RunSubgraph(g, algorithms.NewConnectedComponents().Subgraph, RunOptions{
		Engine: EngineConfig{NumWorkers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Supersteps == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}

	if _, err := Run(g, nil, RunOptions{
		Engine: EngineConfig{NumWorkers: 2, ComputeMode: ModeSubgraph},
	}); err == nil || !strings.Contains(err.Error(), "SubgraphComputation") {
		t.Fatalf("expected a missing-subgraph-computation error, got %v", err)
	}
}
