package graft

// Benchmarks regenerating the paper's evaluation artifacts. One bench
// target exists for every table and figure (EXPERIMENTS.md maps them),
// plus ablations for the design choices DESIGN.md §5 calls out.
//
// Scale note: the paper ran on a 36-node cluster over billion-edge
// graphs; these benches run the same grid over seeded synthetic
// stand-ins at laptop scale (override with GRAFT_BENCH_SCALE). The
// reproduced quantity is the *relative* overhead of each DebugConfig,
// not absolute seconds.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/gui"
	"graft/internal/harness"
	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

const benchSeed = 42

// benchScale returns the dataset scale for Figure 8 benches.
func benchScale() float64 {
	if s := os.Getenv("GRAFT_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.0002 // sk ~10k, twitter ~8k, bipartite ~400k vertices
}

// BenchmarkTable1 regenerates Table 1: building each demonstration
// dataset stand-in, reporting its synthetic size.
func BenchmarkTable1(b *testing.B) {
	for _, ds := range graphgen.Table1Datasets(0.002, benchSeed) {
		b.Run(ds.Name, func(b *testing.B) {
			var v, e int64
			for i := 0; i < b.N; i++ {
				g := ds.Build()
				v, e = g.NumVertices(), g.NumEdges()
			}
			b.ReportMetric(float64(v), "vertices")
			b.ReportMetric(float64(e), "edges")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the performance dataset
// stand-ins.
func BenchmarkTable2(b *testing.B) {
	for _, ds := range graphgen.Table2Datasets(benchScale(), benchSeed) {
		b.Run(ds.Name, func(b *testing.B) {
			var v, e int64
			for i := 0; i < b.N; i++ {
				g := ds.Build()
				v, e = g.NumVertices(), g.NumEdges()
			}
			b.ReportMetric(float64(v), "vertices")
			b.ReportMetric(float64(e), "edges")
		})
	}
}

// BenchmarkTable3 exercises each Table 3 DebugConfig's construction
// and static target selection, the cost paid when instrumentation
// attaches.
func BenchmarkTable3(b *testing.B) {
	g := graphgen.RegularBipartite(100_000, 3)
	store := trace.NewStore(dfs.NewMemFS(), "t3")
	for _, cfg := range harness.StandardConfigs(benchSeed) {
		if cfg.Make == nil {
			continue
		}
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				session, err := core.Attach(store, core.Options{
					JobID:      fmt.Sprintf("t3-%s-%d", cfg.Name, i),
					Algorithm:  "bench",
					NumWorkers: 4,
				}, g, cfg.Make())
				if err != nil {
					b.Fatal(err)
				}
				_ = session.Targets()
			}
		})
	}
}

// BenchmarkFig8 regenerates the Figure 8 grid: every (algorithm ×
// dataset) cluster under no-debug and each Table 3 DebugConfig. Each
// iteration is one full job run; compare ns/op across configs of a
// cluster for the relative-overhead bars, and the captures metric for
// the numbers printed on them.
func BenchmarkFig8(b *testing.B) {
	workloads := harness.StandardWorkloads(benchScale(), benchSeed, 4)
	configs := harness.StandardConfigs(benchSeed)
	for _, wl := range workloads {
		base := wl.Dataset.Build()
		for _, cfg := range configs {
			b.Run(wl.Label+"/"+cfg.Name, func(b *testing.B) {
				var captures int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := base.Clone()
					alg := wl.Algorithm()
					engCfg := pregel.Config{
						NumWorkers:    wl.Workers,
						Combiner:      alg.Combiner,
						Master:        alg.Master,
						MaxSupersteps: alg.MaxSupersteps,
					}
					comp := alg.Compute
					var session *core.Graft
					if cfg.Make != nil {
						store := trace.NewStore(dfs.NewMemFS(), "bench")
						var err error
						session, err = core.Attach(store, core.Options{
							JobID:      fmt.Sprintf("%s-%s-%d", wl.Label, cfg.Name, i),
							Algorithm:  alg.Name,
							NumWorkers: wl.Workers,
						}, g, cfg.Make())
						if err != nil {
							b.Fatal(err)
						}
						comp = session.Instrument(comp)
						engCfg.Master = session.InstrumentMaster(engCfg.Master)
						engCfg.Listener = session
					}
					job := pregel.NewJob(g, comp, engCfg)
					for _, spec := range alg.Aggregators {
						job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
					}
					b.StartTimer()
					if _, err := job.Run(); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if session != nil {
						captures = session.Captures()
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(captures), "captures")
			})
		}
	}
}

// BenchmarkFig2 measures attaching the Figure 2 example DebugConfig
// (5 random vertices + neighbors + message constraint) to a job.
func BenchmarkFig2(b *testing.B) {
	g := graphgen.WebGraph(50_000, 8, benchSeed)
	store := trace.NewStore(dfs.NewMemFS(), "fig2")
	for i := 0; i < b.N; i++ {
		if _, err := core.Attach(store, core.Options{
			JobID: fmt.Sprintf("fig2-%d", i), Algorithm: "rw", NumWorkers: 4,
		}, g, core.Fig2Config(benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// fig3to5DB builds one traced buggy-GC run shared by the GUI-view
// benches (Figures 3, 4, 5).
func fig3to5DB(b *testing.B) trace.View {
	b.Helper()
	store := trace.NewStore(dfs.NewMemFS(), "gui")
	g := graphgen.RegularBipartite(2000, 3)
	alg := algorithms.NewBuggyGraphColoring(benchSeed)
	session, err := core.Attach(store, core.Options{
		JobID: "gui-bench", Algorithm: alg.Name, NumWorkers: 4,
	}, g, core.DebugConfig{
		NumRandomCaptures: 20, CaptureNeighbors: true, RandomSeed: 3,
		VertexValueConstraint: func(v pregel.Value, id pregel.VertexID, s int) bool {
			val, ok := v.(*algorithms.GCValue)
			return !ok || val.State != algorithms.GCInSet || s < 2 // synthesize some violations
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pregel.Config{NumWorkers: 4, Listener: session,
		Master: session.InstrumentMaster(alg.Master), MaxSupersteps: alg.MaxSupersteps}
	job := pregel.NewJob(g, session.Instrument(alg.Compute), cfg)
	for _, spec := range alg.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	if _, err := job.Run(); err != nil {
		b.Fatal(err)
	}
	db, err := store.OpenReader("gui-bench")
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFig3NodeLink measures rendering the node-link view.
func BenchmarkFig3NodeLink(b *testing.B) {
	db := fig3to5DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gui.RenderNodeLink(db, 1)
	}
}

// BenchmarkFig4Tabular measures the tabular view's search path.
func BenchmarkFig4Tabular(b *testing.B) {
	db := fig3to5DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Search(trace.Query{Superstep: 1, ValueContains: "TENTATIVELY"})
	}
}

// BenchmarkFig5Violations measures building the violations &
// exceptions rows.
func BenchmarkFig5Violations(b *testing.B) {
	db := fig3to5DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.AllViolations()
	}
}

// BenchmarkFig6Reproduce measures generating a Figure 6 style
// reproduction test from a capture.
func BenchmarkFig6Reproduce(b *testing.B) {
	db := fig3to5DB(b)
	id := db.CapturedVertexIDs()[0]
	s := db.CapturesOf(id)[0].Superstep
	spec := repro.GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.GenerateVertexTest(db, s, id, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationInstrumentation isolates the wrapper cost: the same
// job bare, instrumented with an empty static set (exception tracking
// only), and instrumented with constraints.
func BenchmarkAblationInstrumentation(b *testing.B) {
	build := func() *pregel.Graph { return graphgen.RegularBipartite(40_000, 3) }
	run := func(b *testing.B, dc *core.DebugConfig) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := build()
			alg := algorithms.NewRandomWalk(benchSeed, 8)
			cfg := pregel.Config{NumWorkers: 4, MaxSupersteps: alg.MaxSupersteps}
			comp := alg.Compute
			if dc != nil {
				store := trace.NewStore(dfs.NewMemFS(), "abl")
				session, err := core.Attach(store, core.Options{
					JobID: fmt.Sprintf("abl-%d", i), Algorithm: alg.Name, NumWorkers: 4,
				}, g, *dc)
				if err != nil {
					b.Fatal(err)
				}
				comp = session.Instrument(comp)
				cfg.Listener = session
			}
			b.StartTimer()
			if _, err := pregel.NewJob(g, comp, cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("wrapper-only", func(b *testing.B) {
		run(b, &core.DebugConfig{CaptureExceptions: true})
	})
	b.Run("message-constraint", func(b *testing.B) {
		run(b, &core.DebugConfig{CaptureExceptions: true,
			MessageConstraint: algorithms.NonNegativeRWMessages})
	})
}

// discardFS satisfies the FileSystem interface while throwing all
// writes away, isolating capture-serialization cost from storage cost.
type discardFS struct{ dfs.FileSystem }

func newDiscardFS() *discardFS { return &discardFS{FileSystem: dfs.NewMemFS()} }

func (d *discardFS) Create(path string) (io.WriteCloser, error) {
	return nopWriteCloser{}, nil
}

type nopWriteCloser struct{}

func (nopWriteCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopWriteCloser) Close() error                { return nil }

// BenchmarkAblationTraceSink compares trace storage backends under a
// capture-heavy config (all active vertices).
func BenchmarkAblationTraceSink(b *testing.B) {
	run := func(b *testing.B, mkfs func(b *testing.B) dfs.FileSystem) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := graphgen.RegularBipartite(4000, 3)
			alg := algorithms.NewRandomWalk(benchSeed, 6)
			store := trace.NewStore(mkfs(b), "sink")
			session, err := core.Attach(store, core.Options{
				JobID: fmt.Sprintf("sink-%d", i), Algorithm: alg.Name, NumWorkers: 4,
			}, g, core.DebugConfig{CaptureAllActive: true, MaxCaptures: -1})
			if err != nil {
				b.Fatal(err)
			}
			cfg := pregel.Config{NumWorkers: 4, Listener: session, MaxSupersteps: alg.MaxSupersteps}
			b.StartTimer()
			if _, err := pregel.NewJob(g, session.Instrument(alg.Compute), cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("discard", func(b *testing.B) {
		run(b, func(b *testing.B) dfs.FileSystem { return newDiscardFS() })
	})
	b.Run("mem", func(b *testing.B) {
		run(b, func(b *testing.B) dfs.FileSystem { return dfs.NewMemFS() })
	})
	b.Run("local-disk", func(b *testing.B) {
		run(b, func(b *testing.B) dfs.FileSystem {
			fs, err := dfs.NewLocalFS(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return fs
		})
	})
	b.Run("dist-cluster", func(b *testing.B) {
		run(b, func(b *testing.B) dfs.FileSystem { return dfs.NewCluster(4, 2, 0) })
	})
}

// BenchmarkAblationCombiner measures the engine-level effect of
// message combining on a combiner-friendly algorithm.
func BenchmarkAblationCombiner(b *testing.B) {
	run := func(b *testing.B, combiner pregel.Combiner) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := graphgen.WebGraph(30_000, 10, benchSeed)
			alg := algorithms.NewConnectedComponents()
			cfg := pregel.Config{NumWorkers: 4, Combiner: combiner}
			b.StartTimer()
			if _, err := pregel.NewJob(g, alg.Compute, cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("without", func(b *testing.B) { run(b, nil) })
	b.Run("min-combiner", func(b *testing.B) { run(b, pregel.MinLongCombiner) })
}

// BenchmarkAblationSafetyNet measures capture-all-active with and
// without the MaxCaptures safety net engaged early.
func BenchmarkAblationSafetyNet(b *testing.B) {
	run := func(b *testing.B, maxCaptures int64) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := graphgen.RegularBipartite(8000, 3)
			alg := algorithms.NewRandomWalk(benchSeed, 6)
			store := trace.NewStore(dfs.NewMemFS(), "net")
			session, err := core.Attach(store, core.Options{
				JobID: fmt.Sprintf("net-%d", i), Algorithm: alg.Name, NumWorkers: 4,
			}, g, core.DebugConfig{CaptureAllActive: true, MaxCaptures: maxCaptures})
			if err != nil {
				b.Fatal(err)
			}
			cfg := pregel.Config{NumWorkers: 4, Listener: session, MaxSupersteps: alg.MaxSupersteps}
			b.StartTimer()
			if _, err := pregel.NewJob(g, session.Instrument(alg.Compute), cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unbounded", func(b *testing.B) { run(b, -1) })
	b.Run("capped-1000", func(b *testing.B) { run(b, 1000) })
}

// BenchmarkAblationCheckpoint measures the engine-level cost of
// checkpointing (the fault-tolerance substrate) at different cadences.
func BenchmarkAblationCheckpoint(b *testing.B) {
	run := func(b *testing.B, every int) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := graphgen.SocialGraph(20_000, 6, benchSeed)
			cfg := pregel.Config{NumWorkers: 4}
			if every > 0 {
				cfg.CheckpointEvery = every
				cfg.CheckpointFS = dfs.NewMemFS()
			}
			alg := algorithms.NewConnectedComponents()
			cfg.Combiner = alg.Combiner
			b.StartTimer()
			if _, err := pregel.NewJob(g, alg.Compute, cfg).Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, 0) })
	b.Run("every-4", func(b *testing.B) { run(b, 4) })
	b.Run("every-1", func(b *testing.B) { run(b, 1) })
}

// BenchmarkCodec measures the Writable codec underlying traces and
// checkpoints.
func BenchmarkCodec(b *testing.B) {
	vals := []pregel.Value{
		pregel.NewLong(1 << 40),
		pregel.NewDouble(3.14159),
		pregel.NewText("CONFLICT-RESOLUTION"),
		&algorithms.GCValue{Color: 3, State: algorithms.GCColored, Priority: 12345},
	}
	b.Run("encode", func(b *testing.B) {
		e := pregel.NewEncoder()
		for i := 0; i < b.N; i++ {
			e.Reset()
			for _, v := range vals {
				pregel.EncodeTyped(e, v)
			}
		}
	})
	e := pregel.NewEncoder()
	for _, v := range vals {
		pregel.EncodeTyped(e, v)
	}
	buf := append([]byte(nil), e.Bytes()...)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := pregel.NewDecoder(buf)
			for range vals {
				if _, err := pregel.DecodeTyped(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkEngineMessageThroughput measures raw superstep message
// delivery: a broadcast-heavy computation with no debugging attached.
func BenchmarkEngineMessageThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := graphgen.RegularBipartite(20_000, 3)
				b.StartTimer()
				comp := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
					if ctx.Superstep() < 5 {
						ctx.SendMessageToAllEdges(v, pregel.NewLong(int64(v.ID())))
						return nil
					}
					v.VoteToHalt()
					return nil
				})
				stats, err := pregel.NewJob(g, comp, pregel.Config{NumWorkers: workers}).Run()
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(stats.TotalMessages) // messages as the throughput unit
			}
		})
	}
}
