package graft

import (
	"fmt"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// tracedRecoveryRun executes one fully-captured job under the given
// recovery mode, optionally failing one partition at crashAt, and
// returns the trace view and stats.
func tracedRecoveryRun(t *testing.T, g *Graph, alg *algorithms.Algorithm, engine EngineConfig, mode RecoveryMode, crashAt, partition int) (trace.View, *Stats) {
	t.Helper()
	engine.CheckpointEvery = 2
	engine.CheckpointFS = dfs.NewMemFS()
	engine.Recovery = mode
	engine.MsgLogFS = dfs.NewMemFS()
	if crashAt >= 0 {
		engine.PartitionFailureAt = FailPartitionAt(crashAt, partition)
	}
	store := NewStore(NewMemFS(), "traces")
	res, err := RunAlgorithm(g, alg, RunOptions{
		JobID:  "job",
		Engine: engine,
		Debug:  &DebugConfig{CaptureAllActive: true, MaxCaptures: -1},
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.OpenReader("job")
	if err != nil {
		t.Fatal(err)
	}
	return db, res.Stats
}

// TestRecoveryDigestEquivalence is the tentpole acceptance property:
// for each algorithm, a failure-free run, a checkpoint-restart
// recovered run and a log-based confined recovered run must produce
// the same canonical trace digest — recovery of either flavor must be
// invisible in the computation. Confined recovery additionally has to
// prove it stayed confined.
func TestRecoveryDigestEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		alg   func() *algorithms.Algorithm
		build func() *Graph
	}{
		{
			"cc",
			algorithms.NewConnectedComponents,
			func() *Graph { return graphgen.SocialGraph(240, 5, 7) },
		},
		{
			"pagerank",
			func() *algorithms.Algorithm { return algorithms.NewPageRank(8, 0.85) },
			func() *Graph { return graphgen.WebGraph(240, 5, 7) },
		},
	}
	const crashAt, victim = 3, 1
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engine := EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes}
			cleanView, _ := tracedRecoveryRun(t, tc.build(), tc.alg(), engine, RecoveryCheckpoint, -1, 0)
			clean := trace.Digest(cleanView)

			ckptView, ckptStats := tracedRecoveryRun(t, tc.build(), tc.alg(), engine, RecoveryCheckpoint, crashAt, victim)
			if ckptStats.Recoveries != 1 {
				t.Fatalf("checkpoint run recoveries = %d, want 1", ckptStats.Recoveries)
			}
			if got := trace.Digest(ckptView); got != clean {
				t.Errorf("checkpoint-recovered digest diverged:\nclean: %s\ngot:   %s", clean, got)
			}

			logView, logStats := tracedRecoveryRun(t, tc.build(), tc.alg(), engine, RecoveryLog, crashAt, victim)
			if logStats.Recoveries != 1 {
				t.Fatalf("log run recoveries = %d, want 1", logStats.Recoveries)
			}
			if len(logStats.RecoveryEvents) != 1 || logStats.RecoveryEvents[0].Mode != "log" {
				t.Fatalf("log run recovery events = %+v, want one log-mode event", logStats.RecoveryEvents)
			}
			if n := logStats.RecoveryEvents[0].PartitionsRecomputed; n != 1 {
				t.Errorf("confined recovery recomputed %d partitions, want 1", n)
			}
			if got := trace.Digest(logView); got != clean {
				t.Errorf("log-recovered digest diverged:\nclean: %s\ngot:   %s", clean, got)
			}
		})
	}
}

// TestRecoveryDigestEquivalenceWithRebalancer layers the skew
// rebalancer on top of confined recovery: migrations inside the replay
// window change message routing after the frames were logged, so
// replay must re-route every logged entry by current placement.
func TestRecoveryDigestEquivalenceWithRebalancer(t *testing.T) {
	build := func() *Graph { return broomGraph(300, 40) }
	alg := algorithms.NewConnectedComponents
	engine := EngineConfig{
		NumWorkers:        4,
		MessagePlane:      pregel.PlaneLanes,
		RebalanceSkew:     1.3,
		RebalanceMaxMoves: 64,
	}
	cleanView, _ := tracedRecoveryRun(t, build(), alg(), engine, RecoveryCheckpoint, -1, 0)
	clean := trace.Digest(cleanView)

	for _, mode := range []RecoveryMode{RecoveryCheckpoint, RecoveryLog} {
		t.Run(mode.String(), func(t *testing.T) {
			view, stats := tracedRecoveryRun(t, build(), alg(), engine, mode, 4, 0)
			if stats.Recoveries != 1 {
				t.Fatalf("recoveries = %d, want 1", stats.Recoveries)
			}
			if stats.Rebalances == 0 {
				t.Fatalf("rebalancer never triggered: %+v", stats)
			}
			if got := trace.Digest(view); got != clean {
				t.Errorf("digest with rebalancer + %s recovery diverged:\nclean: %s\ngot:   %s", mode, clean, got)
			}
		})
	}
}

// TestRecoverySeededChaosVictim pins PickPartition's determinism: the
// same seed must always pick the same victim, and a job that kills it
// must still converge to the failure-free digest.
func TestRecoverySeededChaosVictim(t *testing.T) {
	const seed, workers = 42, 4
	victim := PickPartition(seed, workers)
	if again := PickPartition(seed, workers); again != victim {
		t.Fatalf("PickPartition not deterministic: %d vs %d", victim, again)
	}
	if victim < 0 || victim >= workers {
		t.Fatalf("PickPartition out of range: %d", victim)
	}
	engine := EngineConfig{NumWorkers: workers, MessagePlane: pregel.PlaneLanes}
	build := func() *Graph { return graphgen.SocialGraph(200, 5, 11) }
	cleanView, _ := tracedRecoveryRun(t, build(), algorithms.NewConnectedComponents(), engine, RecoveryCheckpoint, -1, 0)
	view, stats := tracedRecoveryRun(t, build(), algorithms.NewConnectedComponents(), engine, RecoveryLog, 2, victim)
	if stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", stats.Recoveries)
	}
	want, got := trace.Digest(cleanView), trace.Digest(view)
	if got != want {
		t.Errorf("seeded-victim recovered digest diverged:\nclean: %s\ngot:   %s", want, got)
	}
	if fmt.Sprint(stats.RecoveryEvents[0].Partitions) != fmt.Sprintf("[%d]", victim) {
		t.Errorf("recovered partitions = %v, want [%d]", stats.RecoveryEvents[0].Partitions, victim)
	}
}
