package graft

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"graft/internal/core"
	"graft/internal/metrics"
	"graft/internal/pregel"
)

// Typed option errors, so callers (and the serve daemon's HTTP layer)
// can distinguish a bad request from a saturated session.
var (
	// ErrInvalidOptions is the sentinel every RunOptions/SessionConfig
	// validation failure wraps; the message names the offending field.
	ErrInvalidOptions = errors.New("graft: invalid options")
	// ErrInvalidConfig is the engine-level sentinel wrapped by
	// EngineConfig.Validate failures (re-exported from internal/pregel).
	// Errors returned by Run/Submit for a bad EngineConfig match both
	// ErrInvalidOptions and ErrInvalidConfig under errors.Is.
	ErrInvalidConfig = pregel.ErrInvalidConfig
	// ErrSessionFull rejects a Submit when the session's admission
	// control is saturated (too many queued jobs).
	ErrSessionFull = errors.New("graft: session full")
	// ErrSessionClosed rejects a Submit after Close.
	ErrSessionClosed = errors.New("graft: session closed")
)

// MetricsRegistry is the per-job metrics collector (re-exported from
// internal/metrics): a JobListener accumulating per-superstep telemetry,
// served over HTTP by the daemon and persisted as job.metrics.
type MetricsRegistry = metrics.Registry

// JobState is the lifecycle of a submitted Job.
type JobState int

const (
	// JobQueued: admitted but waiting for a concurrency slot.
	JobQueued JobState = iota
	// JobRunning: the superstep loop is executing.
	JobRunning
	// JobSucceeded: finished cleanly.
	JobSucceeded
	// JobFailed: finished with a non-cancellation error.
	JobFailed
	// JobCanceled: interrupted by Job.Cancel or a canceled context.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s >= JobSucceeded }

// SessionConfig configures a Session: the shared trace store plus the
// admission-control knobs bounding what N tenants can demand at once.
type SessionConfig struct {
	// Store receives every job's trace and metrics files; jobs share it,
	// isolated by job ID. Required for debugged jobs that do not bring
	// their own RunOptions.Store.
	Store *Store
	// MaxConcurrentJobs bounds how many jobs run superstep loops at
	// once; further admitted jobs queue. 0 means the default of 4.
	MaxConcurrentJobs int
	// MaxPendingJobs bounds the queue of admitted-but-not-running jobs;
	// Submit returns ErrSessionFull beyond it. 0 means the default of
	// 4x MaxConcurrentJobs.
	MaxPendingJobs int
	// MaxWorkersPerJob caps one job's EngineConfig.NumWorkers (its
	// partition count, hence its per-job memory footprint); a Submit
	// asking for more is rejected with ErrInvalidOptions. 0 means
	// uncapped.
	MaxWorkersPerJob int
	// MaxTotalWorkers is the global worker budget: across every running
	// job, at most this many worker goroutines scan partitions at once
	// (a shared pregel.WorkerPool). 0 means uncapped.
	MaxTotalWorkers int
}

// Session is a long-lived multi-job context: a shared trace store and
// worker budget that N concurrent jobs run against, each with its own
// trace directory and metrics registry. It is what `graft serve` wraps
// in HTTP; graft.Run is a one-job session.
type Session struct {
	cfg  SessionConfig
	pool *pregel.WorkerPool
	// slots is the running-jobs semaphore: a queued job's runner blocks
	// here until a slot frees.
	slots chan struct{}

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job // submission order, for Jobs()
	pending int    // admitted, not yet holding a slot
	nextID  int
	closed  bool
	wg      sync.WaitGroup
}

// NewSession validates cfg and returns an empty session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.MaxConcurrentJobs < 0 {
		return nil, fmt.Errorf("%w: MaxConcurrentJobs = %d, must be >= 0", ErrInvalidOptions, cfg.MaxConcurrentJobs)
	}
	if cfg.MaxPendingJobs < 0 {
		return nil, fmt.Errorf("%w: MaxPendingJobs = %d, must be >= 0", ErrInvalidOptions, cfg.MaxPendingJobs)
	}
	if cfg.MaxWorkersPerJob < 0 {
		return nil, fmt.Errorf("%w: MaxWorkersPerJob = %d, must be >= 0", ErrInvalidOptions, cfg.MaxWorkersPerJob)
	}
	if cfg.MaxTotalWorkers < 0 {
		return nil, fmt.Errorf("%w: MaxTotalWorkers = %d, must be >= 0", ErrInvalidOptions, cfg.MaxTotalWorkers)
	}
	if cfg.MaxConcurrentJobs == 0 {
		cfg.MaxConcurrentJobs = 4
	}
	if cfg.MaxPendingJobs == 0 {
		cfg.MaxPendingJobs = 4 * cfg.MaxConcurrentJobs
	}
	return &Session{
		cfg:   cfg,
		pool:  pregel.NewWorkerPool(cfg.MaxTotalWorkers),
		slots: make(chan struct{}, cfg.MaxConcurrentJobs),
		jobs:  make(map[string]*Job),
	}, nil
}

// Store returns the session's shared trace store (may be nil).
func (s *Session) Store() *Store { return s.cfg.Store }

// Job returns the job with the given ID, or nil.
func (s *Session) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every job ever submitted, in submission order.
func (s *Session) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Submit admits one job and returns its handle without waiting for it
// to run. The job executes comp over g — debugged exactly as graft.Run
// would when opts.Debug is set — once a concurrency slot frees; cancel
// ctx (or call Job.Cancel) to interrupt it mid-superstep. opts.Store
// defaults to the session store, so debugged jobs land in per-job
// directories of the shared DFS. Rejections: ErrSessionClosed after
// Close, ErrSessionFull when the queue is at MaxPendingJobs,
// ErrInvalidOptions for bad options or a NumWorkers above the per-job
// cap, and a duplicate-ID error (job IDs name trace directories, so
// they must be unique within the store).
func (s *Session) Submit(ctx context.Context, g *Graph, comp Computation, opts RunOptions) (*Job, error) {
	if opts.Store == nil {
		opts.Store = s.cfg.Store
	}
	if err := validateRunOptions(&opts); err != nil {
		return nil, err
	}
	if cap := s.cfg.MaxWorkersPerJob; cap > 0 && opts.Engine.NumWorkers > cap {
		return nil, fmt.Errorf("%w: Engine.NumWorkers = %d exceeds the session's per-job cap of %d",
			ErrInvalidOptions, opts.Engine.NumWorkers, cap)
	}
	opts.Engine.WorkerPool = s.pool

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if opts.JobID == "" {
		s.nextID++
		opts.JobID = fmt.Sprintf("job-%04d", s.nextID)
	}
	if _, dup := s.jobs[opts.JobID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: duplicate job ID %q", ErrInvalidOptions, opts.JobID)
	}
	if pending := s.pending; pending >= s.cfg.MaxPendingJobs {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d jobs pending (MaxPendingJobs = %d)",
			ErrSessionFull, pending, s.cfg.MaxPendingJobs)
	}
	jctx, cancel := context.WithCancel(ctx)
	algName := opts.Algorithm
	if algName == "" {
		algName = "unnamed"
	}
	j := &Job{
		id:      opts.JobID,
		session: s,
		cancel:  cancel,
		reg:     metrics.NewRegistry(opts.JobID, algName),
		state:   JobQueued,
		done:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.pending++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runJob(jctx, j, g, comp, opts)
	return j, nil
}

// SubmitAlgorithm is Submit for a packaged Algorithm, applying the same
// defaulting as RunAlgorithm.
func (s *Session) SubmitAlgorithm(ctx context.Context, g *Graph, alg *Algorithm, opts RunOptions) (*Job, error) {
	mergeAlgorithm(&opts, alg)
	return s.Submit(ctx, g, alg.Compute, opts)
}

// runJob is one job's runner goroutine: wait for a slot, run, record.
func (s *Session) runJob(ctx context.Context, j *Job, g *Graph, comp Computation, opts RunOptions) {
	defer s.wg.Done()
	defer j.cancel() // release the context's resources whatever happened

	// Hold the queue until a running slot frees; a cancel while queued
	// finishes the job without ever running a superstep.
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		j.finish(nil, fmt.Errorf("graft: job %s canceled while queued: %w", j.id, ctx.Err()))
		return
	}
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
	j.setState(JobRunning)
	defer func() { <-s.slots }()

	res, err := runJob(ctx, g, comp, opts, j.reg)

	// Persist the metrics snapshot next to the trace so the GUI's
	// dashboard can render the job after it leaves the live set.
	if store := opts.Store; store != nil && opts.Debug != nil {
		snap := j.reg.Snapshot()
		if werr := metrics.WriteJobMetrics(store.FS, store.MetricsPath(j.id), snap); werr != nil && err == nil {
			err = fmt.Errorf("graft: writing job.metrics: %w", werr)
		}
	}
	j.finish(res, err)
}

// Close cancels every unfinished job, waits for their barriers, and
// rejects further submissions.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.wg.Wait()
	return nil
}

// Job is the handle of one submitted job.
type Job struct {
	id      string
	session *Session
	cancel  context.CancelFunc
	reg     *metrics.Registry
	done    chan struct{}

	mu    sync.Mutex
	state JobState
	res   *RunResult
	err   error
}

// ID returns the job's ID (its trace directory name).
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Metrics returns the job's own metrics registry: live telemetry while
// the job runs, the final numbers after. Never nil.
func (j *Job) Metrics() *MetricsRegistry { return j.reg }

// Cancel asks the job to stop. The engine notices within one partition
// scan stride and shuts down at the next superstep barrier: the trace
// stays readable up to the last completed superstep, and the job's
// checkpoints and outbox logs are garbage-collected. Safe to call any
// number of times, in any state.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled (which does
// NOT cancel the job — only the wait). It returns the job's result and
// error exactly as graft.Run would have: on a compute failure or a
// cancellation the RunResult is still returned alongside the error,
// carrying whatever was captured.
func (j *Job) Wait(ctx context.Context) (*RunResult, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Stats returns the finished (or cancellation-partial) job stats, nil
// while the job is still queued or running.
func (j *Job) Stats() *Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.res == nil {
		return nil
	}
	return j.res.Stats
}

// Err returns the job's terminal error, nil while unfinished or on
// success.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *Job) setState(st JobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *Job) finish(res *RunResult, err error) {
	j.mu.Lock()
	j.res = res
	j.err = err
	switch {
	case err == nil:
		j.state = JobSucceeded
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
	default:
		j.state = JobFailed
	}
	j.mu.Unlock()
	close(j.done)
}

// teeListener fans one job's events out to two listeners (the per-job
// metrics registry and the caller's own listener).
type teeListener struct{ a, b pregel.JobListener }

func tee(a, b pregel.JobListener) pregel.JobListener {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &teeListener{a: a, b: b}
}

func (t *teeListener) JobStarted(info pregel.JobInfo) {
	t.a.JobStarted(info)
	t.b.JobStarted(info)
}

func (t *teeListener) SuperstepStarted(superstep int, info pregel.SuperstepInfo) {
	t.a.SuperstepStarted(superstep, info)
	t.b.SuperstepStarted(superstep, info)
}

func (t *teeListener) SuperstepFinished(superstep int, stats pregel.SuperstepStats) {
	t.a.SuperstepFinished(superstep, stats)
	t.b.SuperstepFinished(superstep, stats)
}

func (t *teeListener) JobFinished(stats *pregel.Stats, err error) {
	t.a.JobFinished(stats, err)
	t.b.JobFinished(stats, err)
}

// validateRunOptions rejects contradictory options with typed errors
// wrapping ErrInvalidOptions (and, for engine-level failures, also
// pregel.ErrInvalidConfig).
func validateRunOptions(opts *RunOptions) error {
	if opts.Debug != nil {
		if opts.Store == nil {
			return fmt.Errorf("%w: Debug set without Store", ErrInvalidOptions)
		}
		if opts.JobID == "" {
			return fmt.Errorf("%w: Debug set without JobID", ErrInvalidOptions)
		}
	}
	if opts.Engine.ComputeMode == pregel.ModeSubgraph && opts.Subgraph == nil {
		return fmt.Errorf("%w: ComputeMode is ModeSubgraph but no SubgraphComputation was provided (set RunOptions.Subgraph, or use an Algorithm with a Subgraph port)", ErrInvalidOptions)
	}
	if err := opts.Engine.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return nil
}

// mergeAlgorithm folds a packaged Algorithm's wiring into opts
// (explicit opts.Engine fields win), shared by RunAlgorithm and
// SubmitAlgorithm.
func mergeAlgorithm(opts *RunOptions, alg *Algorithm) {
	if opts.Algorithm == "" {
		opts.Algorithm = alg.Name
	}
	if opts.Engine.Master == nil {
		opts.Engine.Master = alg.Master
	}
	if opts.Engine.Combiner == nil {
		opts.Engine.Combiner = alg.Combiner
	}
	if opts.Engine.MaxSupersteps == 0 {
		opts.Engine.MaxSupersteps = alg.MaxSupersteps
	}
	if opts.Subgraph == nil {
		opts.Subgraph = alg.Subgraph
	}
	opts.Aggregators = append(opts.Aggregators, alg.Aggregators...)
}

// runJob is the single execution path under both Run and
// Session.Submit: attach Graft if asked, wire listeners, run the engine
// under ctx.
func runJob(ctx context.Context, g *Graph, comp Computation, opts RunOptions, extra pregel.JobListener) (*RunResult, error) {
	cfg := opts.Engine
	scomp := opts.Subgraph
	res := &RunResult{}
	var session *core.Graft
	if opts.Debug != nil {
		if cfg.NumWorkers <= 0 {
			cfg.NumWorkers = pregel.DefaultNumWorkers
		}
		mode := ""
		if cfg.ComputeMode == pregel.ModeSubgraph {
			mode = "subgraph"
		}
		var err error
		session, err = core.Attach(opts.Store, core.Options{
			JobID:       opts.JobID,
			Algorithm:   opts.Algorithm,
			Description: opts.Description,
			NumWorkers:  cfg.NumWorkers,
			Trace:       opts.Trace,
			ComputeMode: mode,
			Context:     ctx,
		}, g, *opts.Debug)
		if err != nil {
			return nil, err
		}
		if cfg.ComputeMode == pregel.ModeSubgraph && scomp != nil {
			scomp = session.InstrumentSubgraph(scomp)
		} else {
			comp = session.Instrument(comp)
		}
		cfg.Master = session.InstrumentMaster(cfg.Master)
		cfg.Listener = session.Chain(tee(extra, cfg.Listener))
		if reg, ok := extra.(*metrics.Registry); ok {
			// Live /metrics should expose trace-write resilience counters
			// mid-run, before the engine folds them into the final Stats.
			reg.AddFaultSource(session)
		}
		res.JobID = opts.JobID
	} else {
		cfg.Listener = tee(extra, cfg.Listener)
	}

	var job *pregel.Job
	if cfg.ComputeMode == pregel.ModeSubgraph {
		job = pregel.NewSubgraphJob(g, scomp, cfg)
	} else {
		job = pregel.NewJob(g, comp, cfg)
	}
	for _, spec := range opts.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	stats, err := job.RunContext(ctx)
	res.Stats = stats
	if session != nil {
		res.Captures = session.Captures()
		res.LimitHit = session.LimitHit()
		if werr := session.Err(); werr != nil && err == nil {
			err = fmt.Errorf("graft: trace write: %w", werr)
		}
	}
	return res, err
}
