module graft

go 1.24
