package graft

import (
	"fmt"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// tracedPlaneRun executes one fully-captured job and returns its trace
// view. crashAt >= 0 injects a single simulated worker crash at that
// superstep, with checkpointing every 2 supersteps.
func tracedPlaneRun(t *testing.T, g *Graph, alg *algorithms.Algorithm, stripCombiner bool, engine EngineConfig, crashAt int) (trace.View, *Stats) {
	t.Helper()
	if stripCombiner {
		copy := *alg
		copy.Combiner = nil
		alg = &copy
	}
	if crashAt >= 0 {
		engine.CheckpointEvery = 2
		engine.CheckpointFS = dfs.NewMemFS()
		crashed := false
		engine.FailureAt = func(superstep int) bool {
			if superstep == crashAt && !crashed {
				crashed = true
				return true
			}
			return false
		}
	}
	store := NewStore(NewMemFS(), "traces")
	res, err := RunAlgorithm(g, alg, RunOptions{
		JobID:  "job",
		Engine: engine,
		Debug:  &DebugConfig{CaptureAllActive: true, MaxCaptures: -1},
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.OpenReader("job")
	if err != nil {
		t.Fatal(err)
	}
	return db, res.Stats
}

func requireNoDiff(t *testing.T, label string, a, b trace.View) {
	t.Helper()
	d := trace.DiffJobs(a, b)
	if len(d.OnlyA) > 0 || len(d.OnlyB) > 0 {
		t.Fatalf("%s: capture sets differ: onlyA=%v onlyB=%v", label, d.OnlyA, d.OnlyB)
	}
	if len(d.StatusDiffs) > 0 {
		t.Fatalf("%s: status differs at supersteps %v", label, d.StatusDiffs)
	}
	if fd := d.FirstDivergence(); fd != nil {
		t.Fatalf("%s: %d divergences, first: %+v", label, len(d.Divergences), fd)
	}
}

// TestPlaneEquivalenceProperty is the cross-plane property test: for
// order-insensitive reductions (min-based combiners and min folds in
// compute), the lane-matrix plane must produce bit-identical traces to
// the seed mutex plane — same values, same halt states, same message
// multisets — across algorithms, random graph seeds, combiner on/off,
// and chaos (simulated crash + checkpoint recovery).
func TestPlaneEquivalenceProperty(t *testing.T) {
	cases := []struct {
		name  string
		alg   func() *algorithms.Algorithm
		build func(seed int64) *Graph
	}{
		{
			"cc",
			algorithms.NewConnectedComponents,
			func(seed int64) *Graph { return graphgen.SocialGraph(240, 5, seed) },
		},
		{
			"sssp",
			func() *algorithms.Algorithm { return algorithms.NewSSSP(0) },
			func(seed int64) *Graph { return graphgen.WebGraph(240, 5, seed) },
		},
	}
	for _, tc := range cases {
		for _, combine := range []bool{true, false} {
			for _, seed := range []int64{3, 11} {
				for _, crashAt := range []int{-1, 1} {
					label := fmt.Sprintf("%s/combiner=%v/seed=%d/crash=%d", tc.name, combine, seed, crashAt)
					t.Run(label, func(t *testing.T) {
						laneView, laneStats := tracedPlaneRun(t, tc.build(seed), tc.alg(), !combine,
							EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes}, crashAt)
						mutexView, mutexStats := tracedPlaneRun(t, tc.build(seed), tc.alg(), !combine,
							EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneMutex}, crashAt)
						requireNoDiff(t, label, laneView, mutexView)
						if laneStats.TotalMessages != mutexStats.TotalMessages {
							t.Errorf("TotalMessages: lanes %d, mutex %d",
								laneStats.TotalMessages, mutexStats.TotalMessages)
						}
					})
				}
			}
		}
	}
}

// TestPlaneEquivalencePageRankSingleWorker covers the order-sensitive
// float case. With one worker both planes deliver in exact send order,
// so even IEEE-addition-order-sensitive PageRank must be bit-identical
// across planes, with and without its sum combiner.
func TestPlaneEquivalencePageRankSingleWorker(t *testing.T) {
	for _, combine := range []bool{true, false} {
		t.Run(fmt.Sprintf("combiner=%v", combine), func(t *testing.T) {
			build := func() *Graph { return graphgen.WebGraph(150, 4, 9) }
			laneView, _ := tracedPlaneRun(t, build(), algorithms.NewPageRank(8, 0.85), !combine,
				EngineConfig{NumWorkers: 1, MessagePlane: pregel.PlaneLanes}, -1)
			mutexView, _ := tracedPlaneRun(t, build(), algorithms.NewPageRank(8, 0.85), !combine,
				EngineConfig{NumWorkers: 1, MessagePlane: pregel.PlaneMutex}, -1)
			requireNoDiff(t, "pagerank-1w", laneView, mutexView)
		})
	}
}

// TestLanePlaneRunToRunDeterminism: the lane plane merges inboxes in
// canonical sender order, so even multi-worker float PageRank is
// bit-reproducible run to run — the property the mutex plane cannot
// offer. Verified via the canonical trace digest.
func TestLanePlaneRunToRunDeterminism(t *testing.T) {
	run := func() string {
		view, _ := tracedPlaneRun(t, graphgen.WebGraph(200, 5, 4), algorithms.NewPageRank(6, 0.85), false,
			EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes}, -1)
		return trace.Digest(view)
	}
	first := run()
	if again := run(); again != first {
		t.Fatalf("lane-plane PageRank digest changed between runs:\n%s\nvs\n%s", first, again)
	}
}

// broomGraph is a hub fanning out to spokes plus a path hanging off
// one spoke: the hub concentrates message traffic on one partition
// (deterministic skew for the rebalancer) while the path keeps the job
// running long after migrations, exercising post-migration routing.
func broomGraph(spokes, tail int) *Graph {
	g := NewGraph()
	addBoth := func(a, b VertexID) {
		g.AddEdge(a, b, nil)
		g.AddEdge(b, a, nil)
	}
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= spokes; i++ {
		g.AddVertex(VertexID(i), NewLong(int64(i)))
		addBoth(0, VertexID(i))
	}
	prev := VertexID(1)
	for i := 0; i < tail; i++ {
		id := VertexID(spokes + 1 + i)
		g.AddVertex(id, NewLong(int64(id)))
		addBoth(prev, id)
		prev = id
	}
	return g
}

// TestRebalanceDigestDeterminism is the acceptance check that
// repartitioning preserves replay determinism: the same job traced
// with the skew rebalancer on and off must produce the same canonical
// trace digest, because placement must never leak into computation.
func TestRebalanceDigestDeterminism(t *testing.T) {
	run := func(rebalance bool) (string, *Stats) {
		cfg := EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes}
		if rebalance {
			cfg.RebalanceSkew = 1.3
			cfg.RebalanceMaxMoves = 64
		}
		view, stats := tracedPlaneRun(t, broomGraph(300, 40), algorithms.NewConnectedComponents(), false, cfg, -1)
		return trace.Digest(view), stats
	}
	offDigest, offStats := run(false)
	onDigest, onStats := run(true)
	if offStats.Rebalances != 0 {
		t.Fatalf("control run migrated: %+v", offStats)
	}
	if onStats.Rebalances == 0 || onStats.VerticesMigrated == 0 {
		t.Fatalf("rebalancer never triggered (skew too low?): %+v", onStats)
	}
	if onDigest != offDigest {
		t.Fatalf("trace digest changed when rebalancer enabled:\noff: %s\non:  %s", offDigest, onDigest)
	}
}

// TestSubgraphRebalanceDigestDeterminism asserts that subgraph mode
// and the skew rebalancer compose: migrations change which partition
// owns a vertex, so subgraph membership must be recomputed afterwards
// — stale components would compute migrated vertices in the wrong
// (or no) subgraph and corrupt the fixpoint. Per-superstep
// trajectories legitimately depend on placement in subgraph mode
// (components collapse within a partition), so the determinism anchor
// is the final vertex-value digest, which must match vertex mode
// exactly, with and without migrations.
func TestSubgraphRebalanceDigestDeterminism(t *testing.T) {
	run := func(mode pregel.ComputeMode, rebalance bool) (string, *Stats) {
		cfg := EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes, ComputeMode: mode}
		if rebalance {
			cfg.RebalanceSkew = 1.3
			cfg.RebalanceMaxMoves = 64
		}
		g := broomGraph(300, 40)
		_, stats := tracedPlaneRun(t, g, algorithms.NewConnectedComponents(), false, cfg, -1)
		return g.ValuesDigest(), stats
	}
	vertexDigest, vertexStats := run(pregel.ModeVertex, false)
	offDigest, offStats := run(pregel.ModeSubgraph, false)
	onDigest, onStats := run(pregel.ModeSubgraph, true)

	if offDigest != vertexDigest {
		t.Fatalf("subgraph-mode values diverged from vertex mode:\nvertex:   %s\nsubgraph: %s",
			vertexDigest, offDigest)
	}
	if onDigest != vertexDigest {
		t.Fatalf("subgraph-mode values diverged once the rebalancer migrated:\nvertex:    %s\nrebalanced: %s",
			vertexDigest, onDigest)
	}
	if offStats.Supersteps >= vertexStats.Supersteps {
		t.Errorf("subgraph mode did not collapse supersteps: %d vs vertex %d",
			offStats.Supersteps, vertexStats.Supersteps)
	}
	if onStats.Rebalances == 0 || onStats.VerticesMigrated == 0 {
		t.Fatalf("rebalancer never triggered in subgraph mode (skew too low?): %+v", onStats)
	}
	// Membership must have been recomputed, not dropped: supersteps at
	// and after the first migration still dispatch whole components.
	firstMigration := -1
	for _, ss := range onStats.PerSuperstep {
		if firstMigration < 0 && len(ss.Migrations) > 0 {
			firstMigration = ss.Superstep
		}
		if firstMigration >= 0 && ss.Superstep > firstMigration && ss.VerticesProcessed > 0 && ss.SubgraphsComputed == 0 {
			t.Errorf("superstep %d after migration at %d processed %d vertices but dispatched no subgraphs",
				ss.Superstep, firstMigration, ss.VerticesProcessed)
		}
	}
	if firstMigration < 0 {
		t.Fatal("stats recorded rebalances but no migration events")
	}
}

// TestRebalanceDigestDeterminismUnderChaos layers a crash and
// checkpoint recovery on top: the restored reassignment table must
// route exactly like the pre-crash one.
func TestRebalanceDigestDeterminismUnderChaos(t *testing.T) {
	run := func(rebalance bool) (string, *Stats) {
		cfg := EngineConfig{NumWorkers: 4, MessagePlane: pregel.PlaneLanes}
		if rebalance {
			cfg.RebalanceSkew = 1.3
			cfg.RebalanceMaxMoves = 64
		}
		view, stats := tracedPlaneRun(t, broomGraph(300, 40), algorithms.NewConnectedComponents(), false, cfg, 3)
		return trace.Digest(view), stats
	}
	offDigest, _ := run(false)
	onDigest, onStats := run(true)
	if onStats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", onStats.Recoveries)
	}
	if onStats.Rebalances == 0 {
		t.Fatalf("rebalancer never triggered: %+v", onStats)
	}
	if onDigest != offDigest {
		t.Fatalf("digest with rebalancer+recovery diverged:\noff: %s\non:  %s", offDigest, onDigest)
	}
}
