// faulttolerance demonstrates the substrate features Graft inherits
// from the Giraph/HDFS stack it stands in for: the engine checkpoints
// into a simulated distributed file system through a deterministic
// fault injector and a retry layer, a worker "crashes" mid-job, the
// engine recovers from the latest checkpoint and finishes with exactly
// the result of an undisturbed run — and the DFS itself survives a
// datanode failure through replication and re-replication.
package main

import (
	"fmt"
	"log"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/graphgen"
	"graft/internal/pregel"
)

func main() {
	build := func() *graft.Graph { return graphgen.SocialGraph(2000, 6, 3) }

	// Reference: an undisturbed run.
	ref := build()
	if _, err := graft.RunAlgorithm(ref, algorithms.NewConnectedComponents(), graft.RunOptions{}); err != nil {
		log.Fatal(err)
	}

	// A simulated HDFS: 4 datanodes, 2 replicas per block. Checkpoint
	// writes pass through a seeded fault injector (so some writes fail
	// deterministically) and a retry layer that absorbs those failures
	// with capped exponential backoff.
	cluster := dfs.NewCluster(4, 2, 8<<10)
	ckptFS := graft.NewRetryFS(graft.NewFaultFS(cluster, graft.FaultPlan{
		Seed:         7,
		P:            map[faults.Op]float64{faults.OpWrite: 0.3, faults.OpCreate: 0.15, faults.OpClose: 0.15},
		MaxPerPathOp: 2,
		ShortWrites:  true,
	}), 7)

	// The same job, checkpointing every 2 supersteps, with a worker
	// crash injected after superstep 3.
	crashed := false
	g := build()
	res, err := graft.RunAlgorithm(g, algorithms.NewConnectedComponents(), graft.RunOptions{
		Engine: pregel.Config{
			NumWorkers:       4,
			CheckpointEvery:  2,
			CheckpointFS:     ckptFS,
			CheckpointPrefix: "cc-job/",
			FailureAt: func(superstep int) bool {
				if superstep == 3 && !crashed {
					crashed = true
					fmt.Println("!! simulated worker crash after superstep 3")
					return true
				}
				return false
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered run: %d supersteps, %d recovery, reason=%v\n",
		res.Stats.Supersteps, res.Stats.Recoveries, res.Stats.Reason)
	fmt.Printf("resilience: %s\n", res.Stats.Faults)

	// The recovered run's output matches the reference exactly.
	diffs := 0
	ref.Each(func(v *graft.Vertex) {
		a := v.Value().(*pregel.LongValue).Get()
		b := g.Vertex(v.ID()).Value().(*pregel.LongValue).Get()
		if a != b {
			diffs++
		}
	})
	fmt.Printf("labels differing from the undisturbed run: %d\n", diffs)

	// Checkpoints landed in the DFS as replicated blocks.
	files, err := cluster.List("cc-job/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints in the simulated DFS: %d files\n", len(files))

	// Now a datanode dies; the checkpoints stay readable, and
	// re-replication heals the cluster back to 2 live replicas.
	cluster.Kill(0)
	fmt.Printf("datanode 0 killed; under-replicated blocks: %d\n", cluster.UnderReplicated())
	if _, err := dfs.ReadFile(cluster, files[len(files)-1]); err != nil {
		log.Fatalf("checkpoint unreadable after single-node failure: %v", err)
	}
	fmt.Println("latest checkpoint still readable from surviving replicas")
	created := cluster.Revive(0) // a returning node heals its own gaps
	fmt.Printf("datanode 0 revived; re-replication created %d new replicas; under-replicated now: %d\n",
		created, cluster.UnderReplicated())
}
