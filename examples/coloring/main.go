// The paper's §4.1 graph-coloring scenario, end to end: a buggy
// MIS-based coloring puts adjacent vertices into the same independent
// set. We run it on the bipartite dataset with Graft capturing a
// random set of vertices and their neighbors, go to the final
// superstep to check the output, find an adjacent same-colored pair,
// replay superstep by superstep to the superstep where both entered
// the MIS, and generate the reproduction test for line-by-line
// debugging.
package main

import (
	"fmt"
	"log"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/repro"
	"graft/internal/trace"
)

const seed = 42

// pair is one adjacent same-colored vertex pair.
type pair struct{ a, b graft.VertexID }

func main() {
	// The bipartite-1M-3M stand-in, scaled to demo size.
	g := graphgen.RegularBipartite(1000, 3)
	fmt.Printf("bipartite graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	store := graft.NewStore(graft.NewMemFS(), "traces")
	alg := algorithms.NewBuggyGraphColoring(seed)
	res, err := graft.RunAlgorithm(g, alg, graft.RunOptions{
		JobID: "gc-scenario",
		Store: store,
		Debug: &graft.DebugConfig{
			NumRandomCaptures: 10,
			CaptureNeighbors:  true,
			RandomSeed:        7,
			CaptureExceptions: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy GC finished after %d supersteps with %d captures\n\n",
		res.Stats.Supersteps, res.Captures)

	// Step 1 (paper): go to the final superstep in the GUI and verify
	// the output. Here: check the final colors of the whole graph.
	var conflicts []pair
	g.Each(func(v *graft.Vertex) {
		val := v.Value().(*algorithms.GCValue)
		for _, e := range v.Edges() {
			if e.Target <= v.ID() {
				continue
			}
			if g.Vertex(e.Target).Value().(*algorithms.GCValue).Color == val.Color {
				conflicts = append(conflicts, pair{v.ID(), e.Target})
			}
		}
	})
	if len(conflicts) == 0 {
		log.Fatal("the planted bug did not fire; try another seed")
	}
	bad := conflicts[0]
	fmt.Printf("BUG VISIBLE: %d adjacent pairs share a color (e.g. vertices %d and %d)\n",
		len(conflicts), bad.a, bad.b)

	// Step 2: replay the computation superstep by superstep for a
	// suspicious vertex and find where it (wrongly) entered the MIS.
	// In the GUI this is the Next/Previous superstep buttons over the
	// captured contexts; a captured vertex carries its whole history.
	db, err := graft.OpenTrace(store, "gc-scenario")
	if err != nil {
		log.Fatal(err)
	}
	suspect, history := pickCapturedConflict(db, conflicts)
	if history == nil {
		// The random capture may have missed the conflicting pairs;
		// re-run capturing one conflicting vertex explicitly, as a
		// user would after spotting the bad pair.
		fmt.Printf("\nconflict pair was not in the random capture set; re-running with CaptureIDs=[%d %d]\n", bad.a, bad.b)
		g2 := graphgen.RegularBipartite(1000, 3)
		if _, err := graft.RunAlgorithm(g2, algorithms.NewBuggyGraphColoring(seed), graft.RunOptions{
			JobID: "gc-scenario-2",
			Store: store,
			Debug: &graft.DebugConfig{
				CaptureIDs:        []graft.VertexID{bad.a, bad.b},
				CaptureNeighbors:  true,
				CaptureExceptions: true,
			},
		}); err != nil {
			log.Fatal(err)
		}
		db, err = graft.OpenTrace(store, "gc-scenario-2")
		if err != nil {
			log.Fatal(err)
		}
		suspect = bad.a
		history = db.CapturesOf(bad.a)
	}

	fmt.Printf("vertex %d is a conflicting vertex that was captured; its history:\n", suspect)
	enteredAt := -1
	for _, c := range history {
		after := c.ValueAfter.(*algorithms.GCValue)
		fmt.Printf("  superstep %3d: %-22s -> %-22s (in=%d out=%d)\n",
			c.Superstep, graft.ValueString(c.ValueBefore), graft.ValueString(c.ValueAfter),
			len(c.Incoming), len(c.Outgoing))
		if after.State == algorithms.GCInSet && enteredAt < 0 {
			enteredAt = c.Superstep
		}
	}
	if enteredAt < 0 {
		log.Fatalf("vertex %d never entered the MIS in its captured history", suspect)
	}
	fmt.Printf("\nSUSPICIOUS: vertex %d entered the MIS at superstep %d\n", suspect, enteredAt)

	// Step 3: reproduce exactly the lines of compute() that ran for
	// the suspect at that superstep — first programmatically...
	out, err := repro.Replay(db, enteredAt, suspect, alg.Compute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("programmatic replay: value -> %s (diffs vs capture: %v)\n",
		graft.ValueString(out.ValueAfter), repro.Fidelity(db.Capture(enteredAt, suspect), out))

	// ...then as the generated test for the IDE's line-by-line debugger.
	code, err := repro.GenerateVertexTest(db, enteredAt, suspect, repro.GenSpec{
		ComputationExpr: fmt.Sprintf("algorithms.NewBuggyGraphColoring(%d).Compute", seed),
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- generated reproduction test (copy into your IDE) ---")
	fmt.Println(code)
	fmt.Println("stepping through CONFLICT-RESOLUTION shows the buggy >= priority comparison")
	fmt.Println("that admits both endpoints of an equal-priority edge into the MIS.")
}

// pickCapturedConflict returns a conflicting vertex that the random
// capture actually recorded, with its history.
func pickCapturedConflict(db trace.View, conflicts []pair) (graft.VertexID, []*trace.VertexCapture) {
	for _, p := range conflicts {
		for _, id := range []graft.VertexID{p.a, p.b} {
			if h := db.CapturesOf(id); len(h) > 0 {
				return id, h
			}
		}
	}
	return 0, nil
}
