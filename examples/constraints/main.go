// constraints demonstrates the future-work extensions of the paper's
// §7 that this reproduction implements on top of the original Graft:
//
//  1. a message constraint that depends on the destination vertex's
//     value, checked at delivery;
//  2. a neighborhood constraint ("no two adjacent vertices share a
//     color") evaluated over the trace;
//  3. turning a vertex's capture history into a unit-test suite.
package main

import (
	"fmt"
	"log"
	"strings"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/repro"
	"graft/internal/trace"
)

func main() {
	g := graphgen.RegularBipartite(600, 3)
	store := graft.NewStore(graft.NewMemFS(), "traces")

	// Run the buggy coloring with BOTH extensions armed: an
	// incoming-message constraint (a vertex that already committed to
	// the MIS should never receive a NBR_IN_SET from a neighbor — that
	// is the conflict the bug creates) and capture-all-active so the
	// pairwise check below is complete.
	res, err := graft.RunAlgorithm(g, algorithms.NewBuggyGraphColoring(42), graft.RunOptions{
		JobID: "ext-demo",
		Store: store,
		Debug: &graft.DebugConfig{
			CaptureAllActive: true,
			MaxCaptures:      -1,
			IncomingMessageConstraint: func(msg, destValue graft.Value, dst graft.VertexID, superstep int) bool {
				m, mok := msg.(*algorithms.GCMessage)
				v, vok := destValue.(*algorithms.GCValue)
				if !mok || !vok {
					return true
				}
				// An IN_SET vertex receiving NBR_IN_SET means two
				// adjacent vertices entered the same MIS.
				return !(m.Type == algorithms.GCMsgNbrInSet && v.State == algorithms.GCInSet)
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy GC finished: %d supersteps, %d captures\n", res.Stats.Supersteps, res.Captures)

	db, err := graft.OpenTrace(store, "ext-demo")
	if err != nil {
		log.Fatal(err)
	}

	// Extension 1: destination-value-dependent message constraint.
	var incoming []trace.ViolationRow
	for _, row := range db.AllViolations() {
		if row.Kind == "incoming-message" {
			incoming = append(incoming, row)
		}
	}
	fmt.Printf("\nextension 1 — incoming-message constraint: %d violations\n", len(incoming))
	for i, row := range incoming {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(incoming)-3)
			break
		}
		fmt.Printf("  superstep %d: vertex %d (IN_SET) received %s\n", row.Superstep, row.VertexID, row.Detail)
	}

	// Extension 2: the adjacency constraint over the trace.
	conflicts := trace.CheckAdjacentPairs(db, func(a, b *trace.VertexCapture) bool {
		av, aok := a.ValueAfter.(*algorithms.GCValue)
		bv, bok := b.ValueAfter.(*algorithms.GCValue)
		if !aok || !bok || av.State != algorithms.GCColored || bv.State != algorithms.GCColored {
			return true
		}
		return av.Color != bv.Color
	})
	fmt.Printf("\nextension 2 — adjacency constraint: %d same-colored adjacent pairs in the trace\n",
		len(conflicts))
	if len(conflicts) == 0 {
		log.Fatal("expected the planted bug to produce conflicts")
	}
	first := conflicts[len(conflicts)-1]
	fmt.Printf("  e.g. superstep %d: vertices %d and %d both %s\n",
		first.Superstep, first.A.ID, first.B.ID, graft.ValueString(first.A.ValueAfter))

	// Extension 3: the whole capture history of one conflicting vertex
	// as a test suite.
	suite, err := repro.GenerateVertexSuite(db, first.A.ID, repro.GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := strings.Count(suite, "func TestReproduceVertex")
	fmt.Printf("\nextension 3 — generated a %d-test suite covering every captured superstep of vertex %d:\n",
		n, first.A.ID)
	for _, line := range strings.Split(suite, "\n") {
		if strings.HasPrefix(line, "func Test") {
			fmt.Println("  " + strings.TrimSuffix(line, " {"))
		}
	}
}
