// guitour runs a debugged job and drives the Graft GUI over it
// programmatically: it starts the HTTP server on a local port, walks
// the node-link / tabular / violations views and the reproduce
// endpoint, and prints what each shows — a headless tour of Figures
// 3-5. Pass -serve to keep the server running for a real browser.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/gui"
	"graft/internal/repro"
	"graft/internal/trace"
)

func main() {
	serve := flag.Bool("serve", false, "keep serving after the tour (for a real browser)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	flag.Parse()

	// Produce a trace worth looking at: the buggy coloring run.
	fs := graft.NewMemFS()
	store := trace.NewStore(fs, "traces")
	g := graphgen.RegularBipartite(400, 3)
	res, err := graft.RunAlgorithm(g, algorithms.NewBuggyGraphColoring(42), graft.RunOptions{
		JobID: "gc-tour",
		Store: store,
		Debug: &graft.DebugConfig{
			NumRandomCaptures: 8,
			CaptureNeighbors:  true,
			RandomSeed:        3,
			CaptureExceptions: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced job gc-tour: %d supersteps, %d captures\n", res.Stats.Supersteps, res.Captures)

	srv := gui.NewServer(store)
	srv.RegisterReproSpec("gc-buggy", repro.GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		MasterExpr:      "algorithms.NewBuggyGraphColoring(42).Master",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Println(err)
		}
	}()
	fmt.Println("GUI listening on", base)

	fetch := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fmt.Printf("GET %-55s -> %d (%d bytes)\n", path, resp.StatusCode, len(body))
		return string(body)
	}

	fetch("/")
	nodelink := fetch("/job/gc-tour/nodelink?superstep=1")
	fmt.Printf("   node-link view: %d vertex circles drawn\n", strings.Count(nodelink, "<circle"))
	tab := fetch("/job/gc-tour/tabular?superstep=1&value=TENTATIVELY")
	fmt.Printf("   tabular search for TENTATIVELY: %d rows\n", strings.Count(tab, "Reproduce Vertex Context")-0)
	fetch("/job/gc-tour/violations?all=1")
	fetch("/job/gc-tour/master?superstep=1")
	reproCode := fetch("/job/gc-tour/reproduce?superstep=1&id=" + firstCapturedID(store))
	fmt.Printf("   reproduce endpoint returned a %d-line Go test\n", strings.Count(reproCode, "\n"))
	fetch("/api/job/gc-tour/superstep/1")

	if *serve {
		fmt.Println("serving until interrupted; open", base)
		select {}
	}
}

func firstCapturedID(store *trace.Store) string {
	db, err := graft.OpenTrace(store, "gc-tour")
	if err != nil {
		log.Fatal(err)
	}
	ids := db.CapturedVertexIDs()
	if len(ids) == 0 {
		log.Fatal("no captures")
	}
	return fmt.Sprint(int64(ids[0]))
}
