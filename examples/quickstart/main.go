// Quickstart: run connected components over a small graph under the
// Graft debugger, inspect the captured contexts of one vertex across
// supersteps, replay a capture programmatically, and print the
// generated reproduction test — the full capture / visualize /
// reproduce cycle in one file.
package main

import (
	"fmt"
	"log"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/repro"
)

func main() {
	// Two undirected components: a square {0,1,2,3} and a pair {10,11}.
	g := graft.NewGraph()
	for _, id := range []graft.VertexID{0, 1, 2, 3, 10, 11} {
		g.AddVertex(id, nil)
	}
	for _, e := range [][2]graft.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {10, 11}} {
		if err := g.AddUndirectedEdge(e[0], e[1], nil); err != nil {
			log.Fatal(err)
		}
	}

	// Capture vertex 2 and its neighbors, every superstep.
	fs := graft.NewMemFS()
	store := graft.NewStore(fs, "traces")
	alg := algorithms.NewConnectedComponents()
	res, err := graft.RunAlgorithm(g, alg, graft.RunOptions{
		JobID: "quickstart",
		Store: store,
		Debug: &graft.DebugConfig{
			CaptureIDs:        []graft.VertexID{2},
			CaptureNeighbors:  true,
			CaptureExceptions: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components finished: %d supersteps, %d captures\n",
		res.Stats.Supersteps, res.Captures)
	for _, id := range []graft.VertexID{0, 1, 2, 3, 10, 11} {
		fmt.Printf("  vertex %-2d -> component %s\n", id, graft.ValueString(g.Vertex(id).Value()))
	}

	// Visualize (programmatically): step vertex 2 through time.
	db, err := graft.OpenTrace(store, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncaptured contexts of vertex 2, superstep by superstep:")
	for _, c := range db.CapturesOf(2) {
		fmt.Printf("  superstep %d: value %s -> %s, received %d, sent %d, halted=%v\n",
			c.Superstep, graft.ValueString(c.ValueBefore), graft.ValueString(c.ValueAfter),
			len(c.Incoming), len(c.Outgoing), c.HaltedAfter)
	}

	// Reproduce: re-execute superstep 1 of vertex 2 from its capture
	// and verify the replay matches the cluster execution.
	out, err := repro.Replay(db, 1, 2, alg.Compute)
	if err != nil {
		log.Fatal(err)
	}
	diffs := repro.Fidelity(db.Capture(1, 2), out)
	fmt.Printf("\nreplay of vertex 2 @ superstep 1: value -> %s, %d messages, divergences: %d\n",
		graft.ValueString(out.ValueAfter), len(out.Outgoing), len(diffs))

	// And generate the standalone test a user would copy into an IDE.
	code, err := repro.GenerateVertexTest(db, 1, 2, repro.GenSpec{
		ComputationExpr: "algorithms.NewConnectedComponents().Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- generated reproduction test ---")
	fmt.Println(code)
}
