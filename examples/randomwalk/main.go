// The paper's §4.2 random-walk scenario: the RW implementation
// declares its per-neighbor walker counters as 16-bit integers "to
// optimize memory and network I/O"; on the web-BS graph a hub
// accumulates more than 32767 walkers on one edge and the counter
// wraps negative. We run RW under the Figure 2 DebugConfig (5 random
// vertices + neighbors, plus a non-negative message constraint),
// watch the message-constraint box turn red, inspect the Violations
// and Exceptions view, and generate a reproduction test for a
// violating sender. Finally the fixed 64-bit variant runs clean.
package main

import (
	"fmt"
	"log"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/repro"
)

const (
	seed       = 9
	supersteps = 10
)

func main() {
	// The web-BS stand-in, scaled to demo size.
	build := func() *graft.Graph { return graphgen.WebGraph(4000, 6, 12) }
	g := build()
	fmt.Printf("web graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	store := graft.NewStore(graft.NewMemFS(), "traces")

	// The Figure 2 DebugConfig: 5 random vertices and their neighbors,
	// plus the constraint that message values are non-negative.
	dc := graft.DebugConfig{
		NumRandomCaptures: 5,
		CaptureNeighbors:  true,
		RandomSeed:        3,
		CaptureExceptions: true,
		MessageConstraint: algorithms.NonNegativeRWMessages,
	}
	res, err := graft.RunAlgorithm(g, algorithms.NewRandomWalk16(seed, supersteps), graft.RunOptions{
		JobID: "rw16-scenario",
		Store: store,
		Debug: &dc,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-bit random walk finished: %d supersteps, %d captures\n\n",
		res.Stats.Supersteps, res.Captures)

	// The M box turns red in some supersteps (paper: "we see that the
	// message value constraint icon is red in some supersteps").
	db, err := graft.OpenTrace(store, "rw16-scenario")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message-constraint status per superstep:")
	firstRed := -1
	for _, s := range db.Supersteps() {
		st := db.StatusAt(s)
		mark := "green"
		if st.MessageViolation {
			mark = "RED"
			if firstRed < 0 {
				firstRed = s
			}
		}
		fmt.Printf("  superstep %2d: M=%s\n", s, mark)
	}
	if firstRed < 0 {
		log.Fatal("the overflow never fired; grow the graph or walker count")
	}

	// Violations and Exceptions view: which vertices sent negative
	// messages, and what exactly.
	rows := db.ViolationsAt(firstRed)
	fmt.Printf("\nviolations at superstep %d (%d rows), first few:\n", firstRed, len(rows))
	for i, row := range rows {
		if i == 3 {
			break
		}
		fmt.Printf("  vertex %d sent %s to vertex %d\n", row.VertexID, row.Detail, row.DstID)
	}
	suspect := rows[0].VertexID

	// Reproduce the violating sender: walkers in, negative counter out.
	c := db.Capture(firstRed, suspect)
	fmt.Printf("\ncaptured context of vertex %d @ superstep %d: %s walkers in, %d messages out\n",
		suspect, firstRed, graft.ValueString(c.ValueAfter), len(c.Outgoing))
	out, err := repro.Replay(db, firstRed, suspect, algorithms.NewRandomWalk16(seed, supersteps).Compute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay fidelity diffs: %v\n", repro.Fidelity(c, out))

	code, err := repro.GenerateVertexTest(db, firstRed, suspect, repro.GenSpec{
		ComputationExpr: fmt.Sprintf("algorithms.NewRandomWalk16(%d, %d).Compute", seed, supersteps),
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- generated reproduction test (stepping through it shows the int16 cast wrap) ---")
	fmt.Println(code)

	// The fix: 64-bit counters. Same run, constraint stays green.
	res2, err := graft.RunAlgorithm(build(), algorithms.NewRandomWalk(seed, supersteps), graft.RunOptions{
		JobID: "rw64-fixed",
		Store: store,
		Debug: &dc,
	})
	if err != nil {
		log.Fatal(err)
	}
	db2, err := graft.OpenTrace(store, "rw64-fixed")
	if err != nil {
		log.Fatal(err)
	}
	anyRed := false
	for _, s := range db2.Supersteps() {
		if db2.StatusAt(s).MessageViolation {
			anyRed = true
		}
	}
	fmt.Printf("\nfixed 64-bit walk: %d supersteps, %d captures, any red M box: %v\n",
		res2.Stats.Supersteps, res2.Captures, anyRed)
}
