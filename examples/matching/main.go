// The paper's §4.3 maximum-weight-matching scenario: the input graph
// is supposed to encode an undirected weighted graph as symmetric
// directed edges, but a small fraction of the pairs carry different
// weights on their two directions. MWM then never converges. We
// detect the infinite loop through the superstep safety cap, re-run
// with Graft capturing all active vertices after superstep 500, and
// inspect the small remaining active graph — whose captured edges
// expose the asymmetric weights.
package main

import (
	"fmt"
	"log"
	"sort"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/graphgen"
)

func main() {
	// The soc-Epinions stand-in with corrupted symmetric weights.
	build := func() *graft.Graph {
		g := graphgen.SocialGraph(1500, 6, 3)
		corrupted := graphgen.CorruptWeights(g, 0.01, 99)
		ids := graphgen.PlantPreferenceCycle(g)
		fmt.Printf("corrupted %d symmetric edge pairs; planted preference cycle %v\n", corrupted, ids)
		return g
	}

	// First run, without debugging: the job hits the superstep cap —
	// the "infinite loop" symptom.
	g := build()
	fmt.Printf("weighted graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())
	res, err := graft.RunAlgorithm(g, algorithms.NewMaximumWeightMatching(520), graft.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MWM run 1: stopped after %d supersteps, reason=%v (converged jobs stop on their own)\n\n",
		res.Stats.Supersteps, res.Stats.Reason)

	// Second run, with Graft: capture ALL active vertices after
	// superstep 500 — by then almost everything has matched and left
	// the graph, so the capture set is the small "stuck" subgraph.
	store := graft.NewStore(graft.NewMemFS(), "traces")
	res2, err := graft.RunAlgorithm(build(), algorithms.NewMaximumWeightMatching(520), graft.RunOptions{
		JobID: "mwm-scenario",
		Store: store,
		Debug: &graft.DebugConfig{
			CaptureAllActive:  true,
			CaptureExceptions: true,
			SuperstepFilter:   func(s int) bool { return s >= 500 },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MWM run 2 (debugged): %d supersteps, %d captures after superstep 500\n",
		res2.Stats.Supersteps, res2.Captures)

	db, err := graft.OpenTrace(store, "mwm-scenario")
	if err != nil {
		log.Fatal(err)
	}
	s := db.Supersteps()[0]
	captures := db.CapturesAt(s)
	fmt.Printf("\nremaining active graph at superstep %d: %d vertices\n", s, len(captures))

	// Build the weight table of the captured subgraph and look for
	// asymmetric pairs — the root cause.
	weights := map[[2]graft.VertexID]float64{}
	for _, c := range captures {
		for _, e := range c.Edges {
			if w, ok := e.Value.(interface{ Get() float64 }); ok {
				weights[[2]graft.VertexID{c.ID, e.Target}] = w.Get()
			}
		}
	}
	type asym struct {
		a, b     graft.VertexID
		wab, wba float64
	}
	var bad []asym
	for key, wab := range weights {
		if key[0] > key[1] {
			continue
		}
		if wba, ok := weights[[2]graft.VertexID{key[1], key[0]}]; ok && wba != wab {
			bad = append(bad, asym{key[0], key[1], wab, wba})
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].a < bad[j].a })
	if len(bad) == 0 {
		log.Fatal("no asymmetric weights among the stuck vertices; corruption too mild")
	}
	fmt.Printf("\nROOT CAUSE: %d edge pairs among the stuck vertices have asymmetric weights:\n", len(bad))
	for i, x := range bad {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(bad)-5)
			break
		}
		fmt.Printf("  weight(%d -> %d) = %.3f but weight(%d -> %d) = %.3f\n",
			x.a, x.b, x.wab, x.b, x.a, x.wba)
	}
	fmt.Println("\neach stuck vertex prefers a neighbor that does not prefer it back, so no")
	fmt.Println("mutual proposal ever forms: the algorithm spins forever. Fixing the input")
	fmt.Println("graph's symmetric weights makes MWM converge:")

	// Demonstrate: the clean graph converges.
	clean := graphgen.SocialGraph(1500, 6, 3)
	res3, err := graft.RunAlgorithm(clean, algorithms.NewMaximumWeightMatching(5000), graft.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	matched := 0
	clean.Each(func(v *graft.Vertex) {
		if val, ok := v.Value().(*algorithms.MWMValue); ok && val.Matched {
			matched++
		}
	})
	fmt.Printf("clean input: %v after %d supersteps, %d vertices matched\n",
		res3.Stats.Reason, res3.Stats.Supersteps, matched)
}
