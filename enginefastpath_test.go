package graft

import (
	"fmt"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/trace"
)

// TestPartitionSkipDigestEquivalence is the acceptance check for the
// halted-partition fast path: skipping partitions with zero active
// vertices and no pending messages must change nothing observable —
// the fully-captured trace (values, halt states, message multisets)
// and the headline stats are identical with the fast path on and off.
// SSSP is the stressor: its frontier sweeps the graph in waves, so
// most supersteps leave whole partitions halted, which is exactly when
// the skip triggers.
func TestPartitionSkipDigestEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		alg   func() *algorithms.Algorithm
		build func() *Graph
	}{
		{
			"sssp",
			func() *algorithms.Algorithm { return algorithms.NewSSSP(0) },
			func() *Graph { return graphgen.WebGraph(240, 5, 11) },
		},
		{
			"cc",
			algorithms.NewConnectedComponents,
			func() *Graph { return graphgen.SocialGraph(240, 5, 3) },
		},
	}
	for _, tc := range cases {
		for _, crashAt := range []int{-1, 1} {
			label := fmt.Sprintf("%s/crash=%d", tc.name, crashAt)
			t.Run(label, func(t *testing.T) {
				skipView, skipStats := tracedPlaneRun(t, tc.build(), tc.alg(), false,
					EngineConfig{NumWorkers: 4}, crashAt)
				scanView, scanStats := tracedPlaneRun(t, tc.build(), tc.alg(), false,
					EngineConfig{NumWorkers: 4, NoPartitionSkip: true}, crashAt)
				requireNoDiff(t, label, skipView, scanView)
				if skipStats.Supersteps != scanStats.Supersteps {
					t.Errorf("supersteps: skip=%d full-scan=%d", skipStats.Supersteps, scanStats.Supersteps)
				}
				if skipStats.TotalMessages != scanStats.TotalMessages {
					t.Errorf("messages: skip=%d full-scan=%d", skipStats.TotalMessages, scanStats.TotalMessages)
				}
				if trace.Digest(skipView) != trace.Digest(scanView) {
					t.Error("canonical trace digests differ between skip and full scan")
				}
			})
		}
	}
}

// TestPartitionSkipWithMutationsAndRebalance layers the bookkeeping
// hazards on top: vertex additions via the missing-vertex resolver and
// skew-driven migrations both move active counts between partitions,
// and the digest must still be identical with the fast path on and off.
func TestPartitionSkipWithMutationsAndRebalance(t *testing.T) {
	run := func(noSkip bool) (string, *Stats) {
		cfg := EngineConfig{NumWorkers: 4, RebalanceSkew: 1.3, RebalanceMaxMoves: 64,
			NoPartitionSkip: noSkip, CreateMissingVertices: true}
		view, stats := tracedPlaneRun(t, broomGraph(300, 40), algorithms.NewConnectedComponents(), false, cfg, -1)
		return trace.Digest(view), stats
	}
	skipDigest, skipStats := run(false)
	scanDigest, scanStats := run(true)
	// Migration *counts* are allowed to differ — skew is measured from
	// wall-clock compute times, and the fast path changes what a skipped
	// partition reports — but placement must never leak into results.
	if skipStats.Rebalances == 0 || scanStats.Rebalances == 0 {
		t.Fatalf("rebalancer never triggered: skip=%+v full-scan=%+v", skipStats, scanStats)
	}
	if skipDigest != scanDigest {
		t.Fatalf("digest changed with fast path enabled:\nskip: %s\nscan: %s", skipDigest, scanDigest)
	}
}
