package graft

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWorkflow drives the graft command-line tool through the whole
// debugging workflow on disk: generate a dataset, run an algorithm
// under a DebugConfig, list jobs, dump the trace, and generate
// reproduction code — the CLI equivalent of a user session.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root := repoRoot(t)
	work := t.TempDir()
	traceDir := filepath.Join(work, "traces")

	run := func(wantErr bool, args ...string) string {
		t.Helper()
		cmd := exec.Command(goBin, append([]string{"run", "./cmd/graft"}, args...)...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if (err != nil) != wantErr {
			t.Fatalf("graft %s: err=%v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	// graphgen writes an adjacency list.
	adj := filepath.Join(work, "g.adjlist")
	cmd := exec.Command(goBin, "run", "./cmd/graphgen",
		"-kind", "bipartite", "-n", "300", "-deg", "3", "-o", adj)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, out)
	}
	if fi, err := os.Stat(adj); err != nil || fi.Size() == 0 {
		t.Fatalf("graphgen wrote nothing: %v", err)
	}

	// Run buggy GC under DC-full over that file.
	out := run(false, "run", "-alg", "gc-buggy", "-dataset", adj,
		"-debug", "DC-full", "-trace-dir", traceDir, "-job", "cli-gc")
	if !strings.Contains(out, "finished:") || !strings.Contains(out, "captures:") {
		t.Fatalf("run output:\n%s", out)
	}

	// jobs lists it.
	out = run(false, "jobs", "-trace-dir", traceDir)
	if !strings.Contains(out, "cli-gc") || !strings.Contains(out, "gc-buggy") {
		t.Fatalf("jobs output:\n%s", out)
	}

	// show dumps captures with M/V/E status.
	out = run(false, "show", "-trace-dir", traceDir, "-job", "cli-gc", "-superstep", "1")
	if !strings.Contains(out, "superstep 1:") || !strings.Contains(out, "vertex") {
		t.Fatalf("show output:\n%s", out)
	}

	// repro generates a test for vertex 1 (a DC-full static target).
	out = run(false, "repro", "-trace-dir", traceDir, "-job", "cli-gc",
		"-superstep", "1", "-vertex", "1",
		"-comp", "algorithms.NewBuggyGraphColoring(42).Compute",
		"-imports", "graft/internal/algorithms", "-assert")
	if !strings.Contains(out, "func TestReproduceVertex1Superstep1") ||
		!strings.Contains(out, "algorithms.NewBuggyGraphColoring(42).Compute") {
		t.Fatalf("repro output:\n%s", out)
	}

	// repro -suite emits the whole history.
	out = run(false, "repro", "-trace-dir", traceDir, "-job", "cli-gc", "-vertex", "1", "-suite")
	if strings.Count(out, "func TestReproduceVertex1Superstep") < 2 {
		t.Fatalf("suite output:\n%s", out)
	}

	// repro -master emits a master test.
	out = run(false, "repro", "-trace-dir", traceDir, "-job", "cli-gc",
		"-superstep", "1", "-master")
	if !strings.Contains(out, "func TestReproduceMasterSuperstep1") {
		t.Fatalf("master repro output:\n%s", out)
	}

	// An exception scenario: the run fails but reports the capture.
	out = run(false, "run", "-alg", "rw16", "-dataset", "web-BS", "-scale", "0.003",
		"-debug", "fig2", "-trace-dir", traceDir, "-job", "cli-rw", "-supersteps", "8")
	if !strings.Contains(out, "captures") {
		t.Fatalf("rw16 run output:\n%s", out)
	}
	out = run(false, "show", "-trace-dir", traceDir, "-job", "cli-rw", "-violations")
	if !strings.Contains(out, "M=RED") || !strings.Contains(out, "VIOLATION") {
		t.Fatalf("violations output:\n%s", out)
	}

	// diff compares the buggy run against the fixed algorithm on the
	// same dataset and capture set.
	run(false, "run", "-alg", "gc", "-dataset", adj,
		"-debug", "DC-full", "-trace-dir", traceDir, "-job", "cli-gc-fixed")
	out = run(false, "diff", "-trace-dir", traceDir, "-a", "cli-gc", "-b", "cli-gc-fixed")
	if !strings.Contains(out, "divergence") {
		t.Fatalf("diff output:\n%s", out)
	}
	out = run(false, "diff", "-trace-dir", traceDir, "-a", "cli-gc", "-b", "cli-gc")
	if !strings.Contains(out, "no divergences") {
		t.Fatalf("self-diff output:\n%s", out)
	}

	// Unknown flags and bad input are rejected.
	run(true, "run", "-alg", "nope", "-trace-dir", traceDir)
	run(true, "repro", "-trace-dir", traceDir, "-job", "cli-gc") // no -vertex
	run(true, "show", "-trace-dir", traceDir)                    // no -job
	run(true, "diff", "-trace-dir", traceDir, "-a", "cli-gc")    // no -b
}
