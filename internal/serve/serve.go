// Package serve is the graft daemon: a long-lived HTTP service
// multiplexing N concurrent debugged jobs over one graft.Session — the
// ROADMAP's multi-tenant direction. It exposes a small job-control API
// (submit / list / status / cancel), admission control inherited from
// the session (max concurrent jobs, per-job worker caps, a global
// worker pool), and mounts the GUI so every live job's dashboard,
// profiler and trace views render under /job/{id}/ while it runs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/graphgen"
	"graft/internal/gui"
	"graft/internal/harness"
	"graft/internal/metrics"
)

// Daemon wraps one graft.Session in HTTP.
type Daemon struct {
	session *graft.Session
	gui     *gui.Server
	mux     *http.ServeMux
}

// New builds a daemon over an existing session. The session must have
// a Store (jobs are submitted with debugging on by default, and the
// GUI serves from it).
func New(sess *graft.Session) (*Daemon, error) {
	if sess.Store() == nil {
		return nil, fmt.Errorf("serve: session has no trace store")
	}
	d := &Daemon{session: sess}
	d.gui = gui.NewServer(sess.Store())
	// Live jobs render from their own registries; finished jobs fall
	// back to the persisted job.metrics next to their trace.
	d.gui.AttachMetricsSource(func(jobID string) *metrics.Registry {
		if j := sess.Job(jobID); j != nil {
			return j.Metrics()
		}
		return nil
	})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("POST /api/jobs", d.handleSubmit)
	mux.HandleFunc("GET /api/jobs", d.handleList)
	mux.HandleFunc("GET /api/jobs/{id}", d.handleStatus)
	mux.HandleFunc("POST /api/jobs/{id}/cancel", d.handleCancel)
	// Everything else — the job list, /job/{id}/metrics, the profiler,
	// the trace views — is the GUI.
	mux.Handle("/", d.gui.Handler())
	d.mux = mux
	return d, nil
}

// Handler returns the daemon's HTTP handler.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Close shuts the session down: cancels every unfinished job and waits
// for their barriers.
func (d *Daemon) Close() error { return d.session.Close() }

// SubmitRequest is the POST /api/jobs body. Datasets are the Table 1/2
// stand-ins the CLI accepts (scaled); algorithms are the
// algorithms.ByName set; debug is a preset name ("none" to run without
// capture).
type SubmitRequest struct {
	JobID      string  `json:"job_id"`
	Alg        string  `json:"alg"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Workers    int     `json:"workers"`
	Supersteps int     `json:"supersteps"`
	Debug      string  `json:"debug"`
}

// JobInfo is one job's status, as served by list and status.
type JobInfo struct {
	JobID      string `json:"job_id"`
	State      string `json:"state"`
	Algorithm  string `json:"algorithm"`
	Supersteps int    `json:"supersteps"`
	Reason     string `json:"reason,omitempty"`
	Error      string `json:"error,omitempty"`
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Alg == "" {
		req.Alg = "pagerank"
	}
	if req.Dataset == "" {
		req.Dataset = "soc-Epinions"
	}
	if req.Scale == 0 {
		req.Scale = 0.001
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	if req.Workers == 0 {
		req.Workers = 4
	}
	if req.Supersteps == 0 {
		req.Supersteps = 10
	}
	if req.Debug == "" {
		req.Debug = "DC-sp"
	}

	alg, err := algorithms.ByName(req.Alg, req.Seed, req.Supersteps)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, err := buildGraph(req.Dataset, req.Scale, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dc, err := buildDebugConfig(req.Debug, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	opts := graft.RunOptions{
		JobID:       req.JobID,
		Description: fmt.Sprintf("dataset=%s scale=%g debug=%s", req.Dataset, req.Scale, req.Debug),
		Engine: graft.EngineConfig{
			NumWorkers:    req.Workers,
			MaxSupersteps: req.Supersteps,
		},
		Debug: dc,
	}
	if dc != nil && opts.JobID == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("debugged jobs need a job_id (it names the trace directory)"))
		return
	}
	// The submit's context must outlive the request: the job is
	// canceled through its handle, not by the client hanging up.
	job, err := d.session.SubmitAlgorithm(context.Background(), g, alg, opts)
	if err != nil {
		switch {
		case errors.Is(err, graft.ErrSessionFull):
			httpError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, graft.ErrSessionClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, graft.ErrInvalidOptions):
			httpError(w, http.StatusBadRequest, err)
		default:
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, d.info(job))
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := d.session.Jobs()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, d.info(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := d.session.Job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, d.info(j))
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := d.session.Job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, d.info(j))
}

func (d *Daemon) info(j *graft.Job) JobInfo {
	snap := j.Metrics().Snapshot()
	info := JobInfo{
		JobID:      j.ID(),
		State:      j.State().String(),
		Algorithm:  snap.Algorithm,
		Supersteps: len(snap.Supersteps),
		Reason:     snap.Reason,
	}
	if err := j.Err(); err != nil {
		info.Error = err.Error()
	}
	return info
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// buildGraph resolves a dataset name against the paper's Table 1/2
// stand-ins. Unlike the CLI, the daemon does not read local files —
// submissions name datasets, never paths.
func buildGraph(dataset string, scale float64, seed int64) (*graft.Graph, error) {
	all := append(graphgen.Table1Datasets(scale, seed), graphgen.Table2Datasets(scale, seed)...)
	ds, err := graphgen.FindDataset(all, dataset)
	if err != nil {
		return nil, err
	}
	return ds.Build(), nil
}

// buildDebugConfig resolves a debug preset name, mirroring the CLI's
// -debug flag.
func buildDebugConfig(preset string, seed int64) (*core.DebugConfig, error) {
	if preset == "" || preset == "none" {
		return nil, nil
	}
	if preset == "fig2" {
		dc := core.Fig2Config(seed)
		return &dc, nil
	}
	if preset == "all-active" {
		return &core.DebugConfig{CaptureAllActive: true, CaptureExceptions: true}, nil
	}
	for _, c := range harness.StandardConfigs(seed) {
		if c.Name == preset && c.Make != nil {
			dc := c.Make()
			return &dc, nil
		}
	}
	return nil, fmt.Errorf("unknown debug preset %q (DC-sp, DC-sp+nbr, DC-msg, DC-vv, DC-full, fig2, all-active, none)", preset)
}
