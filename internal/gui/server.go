// Package gui is Graft's browser interface (paper §3.2): the
// Node-link, Tabular, and Violations and Exceptions views over
// captured traces, superstep-by-superstep replay navigation, the
// Reproduce Context buttons, and the offline graph-construction mode
// for building end-to-end tests (§3.4). It serves plain HTML + SVG
// over net/http along with a JSON API.
package gui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"graft/internal/metrics"
	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

// Server serves the Graft GUI over a trace store.
type Server struct {
	store *trace.Store

	mu         sync.Mutex
	views      map[string]trace.View
	offline    map[string]*pregel.Graph
	specs      map[string]repro.GenSpec
	comps      map[string]pregel.Computation
	metricsReg *metrics.Registry
	metricsSrc func(jobID string) *metrics.Registry
}

// NewServer creates a GUI server over the given trace store.
func NewServer(store *trace.Store) *Server {
	return &Server{
		store:   store,
		views:   map[string]trace.View{},
		offline: map[string]*pregel.Graph{},
		specs:   map[string]repro.GenSpec{},
		comps:   map[string]pregel.Computation{},
	}
}

// RegisterReproSpec associates a code-generation spec with an
// algorithm name, so Reproduce Context buttons emit tests that call
// the right constructor. Without a spec the generated test contains a
// TODO placeholder.
func (s *Server) RegisterReproSpec(algorithm string, spec repro.GenSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs[algorithm] = spec
}

func (s *Server) specFor(algorithm string) repro.GenSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.specs[algorithm]
}

// db opens (and caches) a job's trace view. Segmented traces come
// back as a lazy trace.Reader that fetches only the segments a page
// touches; legacy traces are loaded eagerly via LoadDB.
func (s *Server) db(jobID string) (trace.View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[jobID]; ok {
		return v, nil
	}
	v, err := s.store.OpenReader(jobID)
	if err != nil {
		return nil, err
	}
	s.views[jobID] = v
	return v, nil
}

// InvalidateCache drops cached trace views so re-run jobs reload.
func (s *Server) InvalidateCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.views = map[string]trace.View{}
}

// Handler returns the GUI's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleJobs)
	mux.HandleFunc("GET /job/{id}/nodelink", s.jobView(s.handleNodeLink))
	mux.HandleFunc("GET /job/{id}/tabular", s.jobView(s.handleTabular))
	mux.HandleFunc("GET /job/{id}/violations", s.jobView(s.handleViolations))
	mux.HandleFunc("GET /job/{id}/vertex", s.jobView(s.handleVertex))
	mux.HandleFunc("GET /job/{id}/master", s.jobView(s.handleMaster))
	mux.HandleFunc("GET /job/{id}/replaycheck", s.jobView(s.handleReplayCheck))
	mux.HandleFunc("GET /job/{id}/history", s.jobView(s.handleHistory))
	mux.HandleFunc("GET /job/{id}/reproduce", s.jobView(s.handleReproduce))
	mux.HandleFunc("GET /job/{id}/reproduce-suite", s.jobView(s.handleReproduceSuite))
	mux.HandleFunc("GET /job/{id}/reproduce-master", s.jobView(s.handleReproduceMaster))
	mux.HandleFunc("GET /job/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /job/{id}/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /job/{id}/profiler", s.handleProfiler)

	// Live metrics endpoints, active once AttachMetrics has been called.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg := s.liveMetrics(); reg != nil {
			reg.ServeMetrics(w, r)
			return
		}
		http.Error(w, "no metrics registry attached", http.StatusNotFound)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if reg := s.liveMetrics(); reg != nil {
			reg.ServeVars(w, r)
			return
		}
		http.Error(w, "no metrics registry attached", http.StatusNotFound)
	})

	mux.HandleFunc("GET /diff", s.handleDiff)

	mux.HandleFunc("GET /api/jobs", s.apiJobs)
	mux.HandleFunc("GET /api/job/{id}/supersteps", s.jobView(s.apiSupersteps))
	mux.HandleFunc("GET /api/job/{id}/superstep/{n}", s.jobView(s.apiSuperstep))
	mux.HandleFunc("GET /api/job/{id}/search", s.jobView(s.apiSearch))

	s.registerOffline(mux)
	return mux
}

// jobView adapts a handler that needs a loaded trace DB.
func (s *Server) jobView(h func(http.ResponseWriter, *http.Request, trace.View)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		db, err := s.db(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		h(w, r, db)
	}
}

func renderPage(w http.ResponseWriter, title string, body template.HTML) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = pageTmpl.Execute(w, struct {
		Title string
		Body  template.HTML
	}{title, body})
}

func renderSub(t *template.Template, data any) (template.HTML, error) {
	var b strings.Builder
	if err := t.Execute(&b, data); err != nil {
		return "", err
	}
	return template.HTML(b.String()), nil
}

// superstepOf parses ?superstep, clamped to the trace's range.
func superstepOf(r *http.Request, db trace.View) int {
	max := db.MaxSuperstep()
	n, err := strconv.Atoi(r.FormValue("superstep"))
	if err != nil {
		n = 0
	}
	if n < 0 {
		n = 0
	}
	if max >= 0 && n > max {
		n = max
	}
	return n
}

type aggRow struct{ Name, Value string }

// navHTML renders the shared superstep navigation bar with the M/V/E
// status boxes and the aggregator panel.
func navHTML(db trace.View, superstep int) (template.HTML, error) {
	meta := db.MetaAt(superstep)
	var aggs []aggRow
	var nv, ne int64
	if meta != nil {
		nv, ne = meta.NumVertices, meta.NumEdges
		names := make([]string, 0, len(meta.Aggregated))
		for name := range meta.Aggregated {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			aggs = append(aggs, aggRow{name, pregel.ValueString(meta.Aggregated[name])})
		}
	}
	supersteps := db.Supersteps()
	prev, next := -1, -1
	for i, s := range supersteps {
		if s == superstep {
			if i > 0 {
				prev = supersteps[i-1]
			}
			if i+1 < len(supersteps) {
				next = supersteps[i+1]
			}
		}
	}
	return renderSub(superstepNavTmpl, struct {
		JobID            string
		Superstep        int
		Max              int
		Prev, Next       int
		HasPrev, HasNext bool
		Status           trace.Status
		NumVertices      int64
		NumEdges         int64
		Aggregators      []aggRow
	}{
		JobID:     db.JobMeta().JobID,
		Superstep: superstep,
		Max:       db.MaxSuperstep(),
		Prev:      prev, Next: next,
		HasPrev: prev >= 0, HasNext: next >= 0,
		Status:      db.StatusAt(superstep),
		NumVertices: nv, NumEdges: ne,
		Aggregators: aggs,
	})
}

// --- Job list ---

type jobRow struct {
	ID, Algorithm, Status     string
	Vertices, Edges, Captures int64
	Workers, Supersteps       int
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.ListJobs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var rows []jobRow
	for _, id := range ids {
		meta, err := s.store.ReadMeta(id)
		if err != nil {
			continue
		}
		row := jobRow{
			ID: id, Algorithm: meta.Algorithm,
			Vertices: meta.NumVertices, Edges: meta.NumEdges,
			Workers: meta.NumWorkers, Status: "running",
		}
		if res, done, _ := s.store.ReadResult(id); done {
			row.Supersteps = res.Supersteps
			row.Captures = res.Captures
			row.Status = res.Reason
			if res.Error != "" {
				row.Status = "failed: " + res.Error
			}
		}
		rows = append(rows, row)
	}
	body, err := renderSub(jobsTmpl, struct{ Jobs []jobRow }{rows})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, "jobs", body)
}

// --- Node-link view (Figure 3) ---

func (s *Server) handleNodeLink(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	svg := nodeLinkSVG(db, superstep)
	body, err := renderSub(nodeLinkTmpl, struct {
		Nav template.HTML
		SVG template.HTML
	}{nav, svg})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — node-link view", db.JobMeta().JobID), body)
}

// --- Tabular view (Figure 4) ---

type tabRow struct {
	ID            pregel.VertexID
	Before, After string
	Active        string
	In, Out       int
	Reasons       string
}

func (s *Server) handleTabular(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	q := trace.Query{Superstep: superstep}
	if v := r.FormValue("vertex"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			vid := pregel.VertexID(id)
			q.VertexID = &vid
		}
	}
	if v := r.FormValue("neighbor"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			vid := pregel.VertexID(id)
			q.NeighborID = &vid
		}
	}
	q.ValueContains = r.FormValue("value")
	q.MessageContains = r.FormValue("message")

	var rows []tabRow
	for _, c := range db.Search(q) {
		active := "active"
		if c.HaltedAfter {
			active = "halted"
		}
		rows = append(rows, tabRow{
			ID:     c.ID,
			Before: pregel.ValueString(c.ValueBefore),
			After:  pregel.ValueString(c.ValueAfter),
			Active: active,
			In:     len(c.Incoming), Out: len(c.Outgoing),
			Reasons: c.Reasons.String(),
		})
	}
	body, err := renderSub(tabularTmpl, struct {
		Nav                                  template.HTML
		JobID                                string
		Superstep                            int
		QVertex, QNeighbor, QValue, QMessage string
		Rows                                 []tabRow
	}{nav, db.JobMeta().JobID, superstep,
		r.FormValue("vertex"), r.FormValue("neighbor"),
		r.FormValue("value"), r.FormValue("message"), rows})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — tabular view", db.JobMeta().JobID), body)
}

// --- Violations and Exceptions view (Figure 5) ---

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	all := r.FormValue("all") != ""
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var rows []trace.ViolationRow
	if all {
		rows = db.AllViolations()
	} else {
		rows = db.ViolationsAt(superstep)
	}
	body, err := renderSub(violationsTmpl, struct {
		Nav           template.HTML
		JobID         string
		AllSupersteps bool
		Rows          []trace.ViolationRow
	}{nav, db.JobMeta().JobID, all, rows})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — violations & exceptions", db.JobMeta().JobID), body)
}

// --- Vertex context detail ---

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	c := db.Capture(superstep, pregel.VertexID(id))
	if c == nil {
		http.Error(w, fmt.Sprintf("vertex %d was not captured at superstep %d", id, superstep), http.StatusNotFound)
		return
	}
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type edgeRow struct {
		Target pregel.VertexID
		Value  string
	}
	type outRow struct {
		To    pregel.VertexID
		Value string
	}
	type violRow struct {
		Kind, Value string
		DstID       pregel.VertexID
	}
	data := struct {
		Nav                          template.HTML
		JobID                        string
		ID                           pregel.VertexID
		Superstep                    int
		PrevSuperstep, NextSuperstep int
		Reasons, Before, After       string
		Halted                       bool
		Worker                       int
		Exception, Stack             string
		Edges                        []edgeRow
		Incoming                     []string
		Outgoing                     []outRow
		Violations                   []violRow
	}{
		Nav: nav, JobID: db.JobMeta().JobID, ID: c.ID, Superstep: superstep,
		PrevSuperstep: superstep - 1, NextSuperstep: superstep + 1,
		Reasons: c.Reasons.String(),
		Before:  pregel.ValueString(c.ValueBefore),
		After:   pregel.ValueString(c.ValueAfter),
		Halted:  c.HaltedAfter, Worker: c.Worker,
	}
	if c.Exception != nil {
		data.Exception, data.Stack = c.Exception.Message, c.Exception.Stack
	}
	for _, e := range c.Edges {
		data.Edges = append(data.Edges, edgeRow{e.Target, pregel.ValueString(e.Value)})
	}
	for _, m := range c.Incoming {
		data.Incoming = append(data.Incoming, pregel.ValueString(m))
	}
	for _, m := range c.Outgoing {
		data.Outgoing = append(data.Outgoing, outRow{m.To, pregel.ValueString(m.Value)})
	}
	for _, v := range c.Violations {
		data.Violations = append(data.Violations, violRow{v.Kind.String(), pregel.ValueString(v.Value), v.DstID})
	}
	body, err := renderSub(vertexTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — vertex %d @ superstep %d", db.JobMeta().JobID, id, superstep), body)
}

// --- Master view ---

func (s *Server) handleMaster(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type masterAggRow struct{ Name, Before, After string }
	data := struct {
		Nav              template.HTML
		JobID            string
		Superstep        int
		Present, Halted  bool
		Exception, Stack string
		Aggs             []masterAggRow
		Sets             []aggRow
	}{Nav: nav, JobID: db.JobMeta().JobID, Superstep: superstep}
	if mc := db.MasterAt(superstep); mc != nil {
		data.Present = true
		data.Halted = mc.Halted
		if mc.Exception != nil {
			data.Exception, data.Stack = mc.Exception.Message, mc.Exception.Stack
		}
		names := make([]string, 0, len(mc.AggregatedBefore))
		for name := range mc.AggregatedBefore {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			data.Aggs = append(data.Aggs, masterAggRow{
				name,
				pregel.ValueString(mc.AggregatedBefore[name]),
				pregel.ValueString(mc.AggregatedAfter[name]),
			})
		}
		for _, set := range mc.Sets {
			data.Sets = append(data.Sets, aggRow{set.Name, pregel.ValueString(set.Value)})
		}
	}
	body, err := renderSub(masterTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — master @ superstep %d", db.JobMeta().JobID, superstep), body)
}

// --- Reproduce Context buttons ---

func (s *Server) handleReproduce(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	code, err := repro.GenerateVertexTest(db, superstep, pregel.VertexID(id), s.specFor(db.JobMeta().Algorithm))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, code)
}

// handleReproduceSuite emits one test per captured superstep of a
// vertex (the §7 unit-testing extension).
func (s *Server) handleReproduceSuite(w http.ResponseWriter, r *http.Request, db trace.View) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	code, err := repro.GenerateVertexSuite(db, pregel.VertexID(id), s.specFor(db.JobMeta().Algorithm))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, code)
}

func (s *Server) handleReproduceMaster(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	code, err := repro.GenerateMasterTest(db, superstep, s.specFor(db.JobMeta().Algorithm))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, code)
}

// --- JSON API ---

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) apiJobs(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.ListJobs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, ids)
}

func (s *Server) apiSupersteps(w http.ResponseWriter, r *http.Request, db trace.View) {
	writeJSON(w, db.Supersteps())
}

type apiCaptureRow struct {
	ID       int64  `json:"id"`
	Before   string `json:"value_before"`
	After    string `json:"value_after"`
	Halted   bool   `json:"halted"`
	In       int    `json:"incoming"`
	Out      int    `json:"outgoing"`
	Reasons  string `json:"reasons"`
	HasError bool   `json:"has_exception"`
}

func (s *Server) apiSuperstep(w http.ResponseWriter, r *http.Request, db trace.View) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		http.Error(w, "bad superstep", http.StatusBadRequest)
		return
	}
	meta := db.MetaAt(n)
	if meta == nil {
		http.Error(w, "superstep not in trace", http.StatusNotFound)
		return
	}
	aggs := map[string]string{}
	for name, v := range meta.Aggregated {
		aggs[name] = pregel.ValueString(v)
	}
	var rows []apiCaptureRow
	for _, c := range db.CapturesAt(n) {
		rows = append(rows, apiCaptureRow{
			ID:     int64(c.ID),
			Before: pregel.ValueString(c.ValueBefore),
			After:  pregel.ValueString(c.ValueAfter),
			Halted: c.HaltedAfter,
			In:     len(c.Incoming), Out: len(c.Outgoing),
			Reasons:  c.Reasons.String(),
			HasError: c.Exception != nil,
		})
	}
	st := db.StatusAt(n)
	out := map[string]any{
		"superstep":         n,
		"num_vertices":      meta.NumVertices,
		"num_edges":         meta.NumEdges,
		"aggregated":        aggs,
		"captures":          rows,
		"message_violation": st.MessageViolation,
		"vertex_violation":  st.VertexViolation,
		"exception":         st.Exception,
	}
	if sgs := db.SubgraphsAt(n); len(sgs) > 0 {
		type sgRow struct {
			ID           int64  `json:"id"`
			Members      int    `json:"members"`
			Iterations   int64  `json:"internal_iterations"`
			MessagesSent int64  `json:"sent"`
			Halted       bool   `json:"halted"`
			Digest       string `json:"digest"`
		}
		srows := make([]sgRow, 0, len(sgs))
		for _, sc := range sgs {
			srows = append(srows, sgRow{
				ID: int64(sc.ID), Members: len(sc.Members),
				Iterations: sc.Iterations, MessagesSent: sc.MessagesSent,
				Halted: sc.HaltedAfter, Digest: sc.Digest,
			})
		}
		out["subgraphs"] = srows
	}
	writeJSON(w, out)
}

func (s *Server) apiSearch(w http.ResponseWriter, r *http.Request, db trace.View) {
	q := trace.Query{Superstep: -1}
	if v := r.FormValue("superstep"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			q.Superstep = n
		}
	}
	if v := r.FormValue("vertex"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			vid := pregel.VertexID(id)
			q.VertexID = &vid
		}
	}
	if v := r.FormValue("neighbor"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			vid := pregel.VertexID(id)
			q.NeighborID = &vid
		}
	}
	q.ValueContains = r.FormValue("value")
	q.MessageContains = r.FormValue("message")
	var rows []apiCaptureRow
	for _, c := range db.Search(q) {
		rows = append(rows, apiCaptureRow{
			ID:     int64(c.ID),
			Before: pregel.ValueString(c.ValueBefore),
			After:  pregel.ValueString(c.ValueAfter),
			Halted: c.HaltedAfter,
			In:     len(c.Incoming), Out: len(c.Outgoing),
			Reasons:  c.Reasons.String(),
			HasError: c.Exception != nil,
		})
	}
	writeJSON(w, rows)
}
