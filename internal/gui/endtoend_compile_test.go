package gui

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graft/internal/pregel"
)

// TestEndToEndTemplateCompiles verifies the offline mode's exported
// test skeleton is a valid Go test: it is written into a scratch
// package of this module and executed (it self-skips until the user
// fills in their computation, which is exactly the shipped behaviour).
func TestEndToEndTemplateCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	repoRoot, err := filepath.Abs("../../")
	if err != nil {
		t.Fatal(err)
	}

	g, err := PremadeGraph("two-triangles", 0)
	if err != nil {
		t.Fatal(err)
	}
	g.Vertex(0).SetValue(pregel.NewText("seed"))
	if err := g.AddEdge(0, 3, pregel.NewDouble(2.5)); err != nil {
		t.Fatal(err)
	}
	code := EndToEndTestCode("two-triangles", g)
	code = strings.Replace(code, "package graftendtoend", "package endtoendgen", 1)

	dir, err := os.MkdirTemp(repoRoot, "tmp-endtoendgen-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "endtoend_test.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "test", "-count=1", "-v", "./"+filepath.Base(dir))
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated end-to-end test failed to build/run: %v\n%s\n---- code ----\n%s", err, out, code)
	}
	if !strings.Contains(string(out), "SKIP") {
		t.Errorf("template should self-skip until a computation is set:\n%s", out)
	}
}
