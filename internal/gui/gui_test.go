package gui

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

// newTestServer builds a store holding two debugged runs — the buggy
// graph-coloring scenario and the overflowing random-walk scenario —
// and serves the GUI over them.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	store := trace.NewStore(dfs.NewMemFS(), "traces")

	runJob := func(jobID string, alg *algorithms.Algorithm, g *pregel.Graph, dc core.DebugConfig) {
		session, err := core.Attach(store, core.Options{
			JobID: jobID, Algorithm: alg.Name, NumWorkers: 2,
		}, g, dc)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pregel.Config{
			NumWorkers:    2,
			Listener:      session,
			Master:        session.InstrumentMaster(alg.Master),
			Combiner:      alg.Combiner,
			MaxSupersteps: alg.MaxSupersteps,
		}
		job := pregel.NewJob(g, session.Instrument(alg.Compute), cfg)
		for _, spec := range alg.Aggregators {
			job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
		}
		_, _ = job.Run() // exception jobs are allowed to fail
	}

	runJob("gc-demo", algorithms.NewBuggyGraphColoring(42), graphgen.RegularBipartite(40, 3),
		core.DebugConfig{NumRandomCaptures: 6, RandomSeed: 3, CaptureNeighbors: true})
	runJob("rw-demo", algorithms.NewRandomWalk16(9, 8), graphgen.WebGraph(2000, 5, 11),
		core.DebugConfig{MessageConstraint: algorithms.NonNegativeRWMessages})

	srv := NewServer(store)
	srv.RegisterReproSpec("gc-buggy", repro.GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		MasterExpr:      "algorithms.NewBuggyGraphColoring(42).Master",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func mustContain(t *testing.T, body string, wants ...string) {
	t.Helper()
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("response missing %q", want)
		}
	}
}

func TestJobListPage(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "gc-demo", "rw-demo", "gc-buggy", "rw16", "Offline mode")
}

func TestNodeLinkView(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/job/gc-demo/nodelink?superstep=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body,
		"<svg", "Superstep 1",
		"Next superstep", "Previous superstep",
		`class="status`,                   // M/V/E boxes
		"/job/gc-demo/vertex?superstep=1", // clickable vertices
		"phase = ",                        // aggregator panel
	)
}

func TestNodeLinkDimsHaltedVertices(t *testing.T) {
	ts, srv := newTestServer(t)
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	// Find a superstep where a captured vertex has halted (colored).
	found := false
	for _, s := range db.Supersteps() {
		for _, c := range db.CapturesAt(s) {
			if c.HaltedAfter {
				code, body := get(t, ts, "/job/gc-demo/nodelink?superstep="+strconv.Itoa(s))
				if code != 200 {
					t.Fatalf("status %d", code)
				}
				mustContain(t, body, `opacity="0.35"`)
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no halted captured vertex in this trace")
	}
}

func TestTabularViewAndSearch(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/job/gc-demo/tabular?superstep=0")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "Captured because", "Reproduce Vertex Context", "random")

	// Search narrowing by vertex ID returns exactly one row.
	_, body = get(t, ts, "/job/gc-demo/tabular?superstep=0&value=TENTATIVELY")
	if !strings.Contains(body, "TENTATIVELY_IN_SET") {
		t.Error("value search found nothing")
	}
	_, body = get(t, ts, "/job/gc-demo/tabular?superstep=0&value=NO_SUCH_VALUE")
	mustContain(t, body, "0 captured vertices match")
}

func TestViolationsView(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/job/rw-demo/violations?all=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "Violations and exceptions", "message", "Reproduce Vertex Context")
	// The overflow produces negative message values in the table.
	if !strings.Contains(body, "<td>-") {
		t.Error("no negative message value shown")
	}
}

func TestVertexDetailView(t *testing.T) {
	ts, srv := newTestServer(t)
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	c := db.CapturesAt(1)[0]
	code, body := get(t, ts, "/job/gc-demo/vertex?superstep=1&id="+strconv.Itoa(int(c.ID)))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body,
		"Value before compute", "Value after compute",
		"Out-edges", "Incoming messages", "Outgoing messages",
		"Reproduce Vertex Context")

	code, _ = get(t, ts, "/job/gc-demo/vertex?superstep=1&id=99999")
	if code != 404 {
		t.Errorf("uncaptured vertex: status %d", code)
	}
}

func TestMasterView(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/job/gc-demo/master?superstep=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "master.compute at superstep 1",
		"SELECTION", "CONFLICT-RESOLUTION",
		"SetAggregated calls", "Reproduce Master Context")

	// rw-demo has no master.
	_, body = get(t, ts, "/job/rw-demo/master?superstep=1")
	mustContain(t, body, "No master computation")
}

func TestReproduceEndpoints(t *testing.T) {
	ts, srv := newTestServer(t)
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	c := db.CapturesAt(1)[0]
	code, body := get(t, ts, "/job/gc-demo/reproduce?superstep=1&id="+strconv.Itoa(int(c.ID)))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "func TestReproduceVertex",
		"algorithms.NewBuggyGraphColoring(42).Compute", "repro.MockContext")

	code, body = get(t, ts, "/job/gc-demo/reproduce-master?superstep=1")
	if code != 200 {
		t.Fatalf("master status %d", code)
	}
	mustContain(t, body, "func TestReproduceMasterSuperstep1")

	// Without a registered spec, the rw job gets a placeholder.
	rwdb, err := srv.db("rw-demo")
	if err != nil {
		t.Fatal(err)
	}
	rc := rwdb.CapturesAt(rwdb.Supersteps()[0])
	if len(rc) == 0 {
		// find any superstep with captures
		for _, s := range rwdb.Supersteps() {
			if len(rwdb.CapturesAt(s)) > 0 {
				rc = rwdb.CapturesAt(s)
				break
			}
		}
	}
	if len(rc) > 0 {
		code, body = get(t, ts, "/job/rw-demo/reproduce?superstep="+strconv.Itoa(rc[0].Superstep)+"&id="+strconv.Itoa(int(rc[0].ID)))
		if code != 200 {
			t.Fatalf("rw reproduce status %d", code)
		}
		mustContain(t, body, "var comp pregel.Computation", "TODO")
	}

	code, _ = get(t, ts, "/job/gc-demo/reproduce?superstep=1&id=99999")
	if code != 404 {
		t.Errorf("missing capture: status %d", code)
	}
}

func TestReproduceSuiteEndpoint(t *testing.T) {
	ts, srv := newTestServer(t)
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	id := db.CapturedVertexIDs()[0]
	code, body := get(t, ts, "/job/gc-demo/reproduce-suite?id="+strconv.Itoa(int(id)))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	history := db.CapturesOf(id)
	if got := strings.Count(body, "func TestReproduceVertex"); got != len(history) {
		t.Errorf("suite has %d tests, want %d", got, len(history))
	}
	code, _ = get(t, ts, "/job/gc-demo/reproduce-suite?id=99999")
	if code != 404 {
		t.Errorf("missing vertex: status %d", code)
	}
}

func TestHistoryView(t *testing.T) {
	ts, srv := newTestServer(t)
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	id := db.CapturedVertexIDs()[0]
	code, body := get(t, ts, "/job/gc-demo/history?id="+strconv.Itoa(int(id)))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	history := db.CapturesOf(id)
	if got := strings.Count(body, `class="reproduce" href="/job/gc-demo/reproduce?superstep=`); got != len(history) {
		t.Errorf("history rows = %d, want %d", got, len(history))
	}
	mustContain(t, body, "across supersteps", "Generate test suite")

	code, _ = get(t, ts, "/job/gc-demo/history?id=99999")
	if code != 404 {
		t.Errorf("uncaptured vertex: status %d", code)
	}
}

func TestReplayCheckView(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.RegisterComputation("gc-buggy", algorithms.NewBuggyGraphColoring(42).Compute)

	code, body := get(t, ts, "/job/gc-demo/replaycheck?superstep=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if strings.Contains(body, "DIVERGED") {
		t.Errorf("deterministic algorithm diverged on replay:\n%s", body)
	}
	db, err := srv.db("gc-demo")
	if err != nil {
		t.Fatal(err)
	}
	n := len(db.CapturesAt(1))
	mustContain(t, body, "Replay check",
		strconv.Itoa(n)+"/"+strconv.Itoa(n)+" captured vertices replay identically")

	// Without a registered computation the view degrades gracefully.
	_, body = get(t, ts, "/job/rw-demo/replaycheck?superstep=1")
	mustContain(t, body, "replay checking is unavailable")
}

func TestJSONAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts, "/api/jobs")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var jobs []string
	if err := json.Unmarshal([]byte(body), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %v", jobs)
	}

	_, body = get(t, ts, "/api/job/gc-demo/supersteps")
	var steps []int
	if err := json.Unmarshal([]byte(body), &steps); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 4 || steps[0] != 0 {
		t.Fatalf("supersteps = %v", steps)
	}

	_, body = get(t, ts, "/api/job/gc-demo/superstep/1")
	var ss map[string]any
	if err := json.Unmarshal([]byte(body), &ss); err != nil {
		t.Fatal(err)
	}
	if ss["superstep"].(float64) != 1 {
		t.Errorf("superstep = %v", ss["superstep"])
	}
	if _, ok := ss["aggregated"].(map[string]any)["phase"]; !ok {
		t.Error("aggregated phase missing")
	}
	if len(ss["captures"].([]any)) == 0 {
		t.Error("no captures in JSON")
	}

	_, body = get(t, ts, "/api/job/rw-demo/search?message=-")
	var rows []map[string]any
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("search for negative messages found nothing")
	}

	code, _ = get(t, ts, "/api/job/nope/supersteps")
	if code != 404 {
		t.Errorf("unknown job: status %d", code)
	}
}

func TestDiffView(t *testing.T) {
	ts, _ := newTestServer(t)
	// The form renders without jobs selected.
	code, body := get(t, ts, "/diff")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "Compare job")

	// Diffing a job against itself: no divergences.
	code, body = get(t, ts, "/diff?a=gc-demo&b=gc-demo")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "No divergences")

	// Diffing different jobs: disjoint capture sets are reported.
	_, body = get(t, ts, "/diff?a=gc-demo&b=rw-demo")
	mustContain(t, body, "Captured only in")

	code, _ = get(t, ts, "/diff?a=gc-demo&b=missing")
	if code != 404 {
		t.Errorf("missing job: status %d", code)
	}
}

func TestOfflineBuilderFlow(t *testing.T) {
	ts, _ := newTestServer(t)
	client := ts.Client()

	// Create a graph.
	resp, err := client.PostForm(ts.URL+"/offline/new", url.Values{"name": {"mini"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	post := func(path string, vals url.Values) {
		t.Helper()
		resp, err := client.PostForm(ts.URL+path, vals)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 { // after redirect
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}
	post("/offline/mini/vertex", url.Values{"id": {"1"}, "value": {"10"}})
	post("/offline/mini/vertex", url.Values{"id": {"2"}, "value": {"hello"}})
	post("/offline/mini/edge", url.Values{"from": {"1"}, "to": {"2"}, "weight": {"2.5"}, "undirected": {"1"}})
	post("/offline/mini/edge", url.Values{"from": {"2"}, "to": {"3"}}) // directed, creates vertex 3

	code, body := get(t, ts, "/offline/mini")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mustContain(t, body, "<svg", "hello", "2.5")

	// Adjacency export round-trips the structure.
	_, adj := get(t, ts, "/offline/mini/export.adjlist")
	mustContain(t, adj, "1 2:2.5", "2 1:2.5 3", "3")

	// End-to-end test template.
	_, code2 := get(t, ts, "/offline/mini/export-test")
	mustContain(t, code2,
		"func TestEndToEnd", "g.AddVertex(1, pregel.NewLong(10))",
		`g.AddVertex(2, pregel.NewText("hello"))`,
		"pregel.Edge{Target: 2, Value: pregel.NewDouble(2.5)}",
		"pregel.NewJob")

	// Delete a vertex; its edges disappear.
	post("/offline/mini/delete-vertex", url.Values{"id": {"2"}})
	_, adj = get(t, ts, "/offline/mini/export.adjlist")
	if strings.Contains(adj, "2:2.5") || strings.Contains(adj, "\n2 ") {
		t.Errorf("vertex 2 still present:\n%s", adj)
	}
}

func TestOfflinePremadeGraphs(t *testing.T) {
	ts, _ := newTestServer(t)
	client := ts.Client()
	for _, kind := range []string{"path", "cycle", "star", "bipartite", "triangle", "two-triangles"} {
		resp, err := client.PostForm(ts.URL+"/offline/premade",
			url.Values{"kind": {kind}, "n": {"6"}, "name": {"pre-" + kind}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		code, body := get(t, ts, "/offline/pre-"+kind)
		if code != 200 {
			t.Fatalf("%s: status %d", kind, code)
		}
		mustContain(t, body, "<svg")
	}
	// Unknown kind rejected.
	resp, err := client.PostForm(ts.URL+"/offline/premade", url.Values{"kind": {"mobius"}, "n": {"4"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown premade kind: status %d", resp.StatusCode)
	}
}

func TestPremadeGraphShapes(t *testing.T) {
	cases := []struct {
		kind     string
		n        int
		vertices int64
		edges    int64
	}{
		{"path", 5, 5, 8},
		{"cycle", 5, 5, 10},
		{"star", 5, 5, 8},
		{"triangle", 0, 3, 6},
		{"two-triangles", 0, 6, 12},
		{"bipartite", 6, 6, 12},
	}
	for _, c := range cases {
		g, err := PremadeGraph(c.kind, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != c.vertices || g.NumEdges() != c.edges {
			t.Errorf("%s(%d): %d vertices %d edges, want %d/%d",
				c.kind, c.n, g.NumVertices(), g.NumEdges(), c.vertices, c.edges)
		}
	}
}

func TestSuperstepClamping(t *testing.T) {
	ts, _ := newTestServer(t)
	// Out-of-range supersteps clamp rather than error.
	code, body := get(t, ts, "/job/gc-demo/nodelink?superstep=99999")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Superstep ") {
		t.Error("clamped view did not render")
	}
	code, _ = get(t, ts, "/job/gc-demo/nodelink?superstep=-4")
	if code != 200 {
		t.Fatalf("negative superstep: status %d", code)
	}
}

func TestValueColorStable(t *testing.T) {
	if valueColor("COLORED(1)") != valueColor("COLORED(1)") {
		t.Error("same value maps to different colors")
	}
	if valueColor("COLORED(1)") == valueColor("COLORED(2)") {
		t.Error("different values collide (unlucky hash); pick different test values")
	}
}
