package gui

import (
	"fmt"
	"html/template"
	"math"
	"sort"
	"strings"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// maxNodeLinkNodes bounds how many captured vertices the node-link
// diagram draws; the paper's GUI makes the same point — "if the user
// is debugging a large number of vertices, then the node-link diagram
// becomes difficult to use" — and directs them to the Tabular View.
const maxNodeLinkNodes = 48

// RenderNodeLink exposes the node-link diagram for embedding and
// benchmarks.
func RenderNodeLink(db trace.View, superstep int) template.HTML {
	return nodeLinkSVG(db, superstep)
}

// nodeLinkSVG renders the Figure 3 view for one superstep: captured
// vertices as large labelled circles (dimmed when halted), uncaptured
// neighbors as small ID-only circles, and links for the edges between
// drawn nodes, with edge values when present.
func nodeLinkSVG(db trace.View, superstep int) template.HTML {
	captures := db.CapturesAt(superstep)
	truncated := false
	if len(captures) > maxNodeLinkNodes {
		captures = captures[:maxNodeLinkNodes]
		truncated = true
	}
	if len(captures) == 0 {
		return template.HTML(`<p class="muted">No vertices captured in this superstep.</p>`)
	}

	type pos struct{ x, y float64 }
	positions := map[pregel.VertexID]pos{}

	// Captured vertices on an inner circle, neighbors on an outer one.
	const w, h = 860.0, 640.0
	cx, cy := w/2, h/2
	rInner := math.Min(w, h)/2 - 150
	for i, c := range captures {
		a := 2 * math.Pi * float64(i) / float64(len(captures))
		positions[c.ID] = pos{cx + rInner*math.Cos(a), cy + rInner*math.Sin(a)}
	}
	var neighbors []pregel.VertexID
	seen := map[pregel.VertexID]bool{}
	for _, c := range captures {
		for _, e := range c.Edges {
			if _, captured := positions[e.Target]; !captured && !seen[e.Target] {
				seen[e.Target] = true
				neighbors = append(neighbors, e.Target)
			}
		}
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	if len(neighbors) > 3*maxNodeLinkNodes {
		neighbors = neighbors[:3*maxNodeLinkNodes]
		truncated = true
	}
	rOuter := math.Min(w, h)/2 - 40
	for i, id := range neighbors {
		a := 2*math.Pi*float64(i)/float64(len(neighbors)) + 0.11
		positions[id] = pos{cx + rOuter*math.Cos(a), cy + rOuter*math.Sin(a)}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" style="border:1px solid #ccc;background:white">`,
		w, h, w, h)

	// Edges first, under the nodes.
	for _, c := range captures {
		from := positions[c.ID]
		for _, e := range c.Edges {
			to, ok := positions[e.Target]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-width="1"/>`,
				from.x, from.y, to.x, to.y)
			if e.Value != nil {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="#777">%s</text>`,
					(from.x+to.x)/2, (from.y+to.y)/2-3, escapeSVG(pregel.ValueString(e.Value)))
			}
		}
	}

	// Neighbor-only nodes: small, ID label only.
	for _, id := range neighbors {
		p := positions[id]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="7" fill="#ddd" stroke="#888"/>`, p.x, p.y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="#555">%d</text>`,
			p.x, p.y-10, int64(id))
	}

	// Captured nodes: large, colored by value, dimmed when halted,
	// linking to the vertex detail page.
	for _, c := range captures {
		p := positions[c.ID]
		opacity := 1.0
		if c.HaltedAfter {
			opacity = 0.35 // inactive vertices are dimmed (Figure 3)
		}
		fill := valueColor(pregel.ValueString(c.ValueAfter))
		stroke := "#333"
		if c.Exception != nil {
			stroke = "#c33"
		}
		fmt.Fprintf(&b, `<a href="/job/%s/vertex?superstep=%d&amp;id=%d"><g opacity="%.2f">`,
			template.URLQueryEscaper(db.JobMeta().JobID), superstep, int64(c.ID), opacity)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="26" fill="%s" stroke="%s" stroke-width="2"/>`,
			p.x, p.y, fill, stroke)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" font-weight="bold">%d</text>`,
			p.x, p.y-2, int64(c.ID))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle">%s</text>`,
			p.x, p.y+10, escapeSVG(truncate(pregel.ValueString(c.ValueAfter), 14)))
		fmt.Fprint(&b, `</g></a>`)
	}
	fmt.Fprint(&b, `</svg>`)
	if truncated {
		fmt.Fprintf(&b, `<p class="muted">Diagram truncated to %d captured vertices; use the Tabular View for the full set.</p>`, maxNodeLinkNodes)
	}
	return template.HTML(b.String())
}

// sparklineSVG renders values as a compact polyline, auto-scaled from
// zero to the series maximum, with the last value printed after the
// line. The metrics dashboard uses it for the per-superstep trend
// strips; a single point degrades to a dot.
func sparklineSVG(values []float64, w, h int, color string) template.HTML {
	if len(values) == 0 {
		return template.HTML(`<span class="muted">no data</span>`)
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	const pad = 4.0
	plotW, plotH := float64(w)-2*pad-46, float64(h)-2*pad
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" style="background:white;border:1px solid #ddd">`,
		w, h, w, h)
	x := func(i int) float64 {
		if len(values) == 1 {
			return pad + plotW/2
		}
		return pad + plotW*float64(i)/float64(len(values)-1)
	}
	y := func(v float64) float64 { return pad + plotH*(1-v/max) }
	if len(values) == 1 {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`, x(0), y(values[0]), color)
	} else {
		var pts strings.Builder
		for i, v := range values {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", x(i), y(v))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`, pts.String(), color)
		last := len(values) - 1
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`, x(last), y(values[last]), color)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="#555">%s</text>`,
		pad+plotW+6, y(values[len(values)-1])+3, escapeSVG(formatSpark(values[len(values)-1])))
	fmt.Fprint(&b, `</svg>`)
	return template.HTML(b.String())
}

// formatSpark renders a sparkline's last value compactly.
func formatSpark(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// valueColor hashes a value's display form to a stable pastel fill, so
// equal values (e.g. equal colors in the GC scenario) look identical.
func valueColor(s string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return fmt.Sprintf("hsl(%d, 70%%, 80%%)", h%360)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func escapeSVG(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
