package gui

import "html/template"

// The GUI mirrors the three views of the paper's Figures 3-5 — the
// Node-link View, the Tabular View and the Violations and Exceptions
// View — plus the offline graph-construction mode of §3.4. Styling is
// deliberately minimal; structure and information content follow the
// paper.

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}} — Graft</title>
<style>
body { font-family: sans-serif; margin: 1.2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; font-size: 0.92em; text-align: left; }
th { background: #f0f0f0; }
.status { display: inline-block; width: 1.6em; text-align: center; font-weight: bold;
          border-radius: 3px; padding: 0.15em 0; margin-right: 0.3em; color: white; }
.green { background: #2a2; } .red { background: #c33; }
.nav a, .nav span { margin-right: 0.8em; }
.aggs { float: right; border: 1px solid #ccc; padding: 0.5em 0.8em; font-size: 0.9em; background: #fafafa; }
.muted { color: #888; }
form.search input { margin-right: 0.5em; }
pre { background: #f6f6f6; border: 1px solid #ddd; padding: 0.8em; overflow-x: auto; }
.reproduce { background: #246; color: white; padding: 0.3em 0.7em; border-radius: 4px; text-decoration: none; }
</style></head><body>
<h1><a href="/">Graft</a> — {{.Title}}</h1>
{{.Body}}
</body></html>`))

var jobsTmpl = template.Must(template.New("jobs").Parse(`
<p>{{len .Jobs}} job trace(s) in the store.</p>
<table>
<tr><th>Job</th><th>Algorithm</th><th>Vertices</th><th>Edges</th><th>Workers</th>
<th>Supersteps</th><th>Captures</th><th>Status</th></tr>
{{range .Jobs}}
<tr>
<td><a href="/job/{{.ID}}/nodelink">{{.ID}}</a></td>
<td>{{.Algorithm}}</td><td>{{.Vertices}}</td><td>{{.Edges}}</td><td>{{.Workers}}</td>
<td>{{.Supersteps}}</td><td>{{.Captures}}</td><td>{{.Status}}</td>
</tr>
{{end}}
</table>
<p><a href="/offline/">Offline mode: construct small test graphs</a> |
<a href="/diff">Compare two job traces</a></p>`))

var superstepNavTmpl = template.Must(template.New("nav").Parse(`
<div class="nav">
<span class="status {{if .Status.MessageViolation}}red{{else}}green{{end}}" title="message constraint">M</span>
<span class="status {{if .Status.VertexViolation}}red{{else}}green{{end}}" title="vertex value constraint">V</span>
<span class="status {{if .Status.Exception}}red{{else}}green{{end}}" title="exceptions">E</span>
{{if .HasPrev}}<a href="?superstep={{.Prev}}">&laquo; Previous superstep</a>{{else}}<span class="muted">&laquo; Previous superstep</span>{{end}}
<strong>Superstep {{.Superstep}} / {{.Max}}</strong>
{{if .HasNext}}<a href="?superstep={{.Next}}">Next superstep &raquo;</a>{{else}}<span class="muted">Next superstep &raquo;</span>{{end}}
| <a href="/job/{{.JobID}}/nodelink?superstep={{.Superstep}}">Node-link</a>
  <a href="/job/{{.JobID}}/tabular?superstep={{.Superstep}}">Tabular</a>
  <a href="/job/{{.JobID}}/violations?superstep={{.Superstep}}">Violations &amp; Exceptions</a>
  <a href="/job/{{.JobID}}/master?superstep={{.Superstep}}">Master</a>
  <a href="/job/{{.JobID}}/replaycheck?superstep={{.Superstep}}">Replay check</a>
  <a href="/job/{{.JobID}}/metrics?superstep={{.Superstep}}">Metrics</a>
  <a href="/job/{{.JobID}}/profiler?superstep={{.Superstep}}">Profiler</a>
</div>
<div class="aggs"><strong>Global data</strong><br>
vertices: {{.NumVertices}}<br>edges: {{.NumEdges}}<br>
{{range .Aggregators}}{{.Name}} = {{.Value}}<br>{{end}}
</div>`))

var nodeLinkTmpl = template.Must(template.New("nodelink").Parse(`
{{.Nav}}
<p class="muted">Captured vertices are drawn large with ID and value; uncaptured
neighbors are small with only their ID; inactive (halted) vertices are dimmed.
Click a vertex for its full context.</p>
{{.SVG}}
`))

var tabularTmpl = template.Must(template.New("tabular").Parse(`
{{.Nav}}
<form class="search" method="get">
<input type="hidden" name="superstep" value="{{.Superstep}}">
vertex <input name="vertex" size="8" value="{{.QVertex}}">
neighbor <input name="neighbor" size="8" value="{{.QNeighbor}}">
value <input name="value" size="12" value="{{.QValue}}">
message <input name="message" size="12" value="{{.QMessage}}">
<input type="submit" value="Search">
</form>
<table>
<tr><th>Vertex</th><th>Value before</th><th>Value after</th><th>Active</th>
<th>In-msgs</th><th>Out-msgs</th><th>Captured because</th><th></th></tr>
{{range .Rows}}
<tr>
<td><a href="/job/{{$.JobID}}/vertex?superstep={{$.Superstep}}&id={{.ID}}">{{.ID}}</a></td>
<td>{{.Before}}</td><td>{{.After}}</td><td>{{.Active}}</td>
<td>{{.In}}</td><td>{{.Out}}</td><td>{{.Reasons}}</td>
<td><a class="reproduce" href="/job/{{$.JobID}}/reproduce?superstep={{$.Superstep}}&id={{.ID}}">Reproduce Vertex Context</a></td>
</tr>
{{end}}
</table>
<p>{{len .Rows}} captured vertices match.</p>`))

var violationsTmpl = template.Must(template.New("violations").Parse(`
{{.Nav}}
<h2>Violations and exceptions{{if .AllSupersteps}} (all supersteps){{end}}</h2>
<p><a href="/job/{{.JobID}}/violations?all=1">show all supersteps</a></p>
<table>
<tr><th>Superstep</th><th>Vertex</th><th>Kind</th><th>Offending value / message</th><th>Destination</th><th></th></tr>
{{range .Rows}}
<tr>
<td>{{.Superstep}}</td>
<td><a href="/job/{{$.JobID}}/vertex?superstep={{.Superstep}}&id={{.VertexID}}">{{.VertexID}}</a></td>
<td>{{.Kind}}</td><td>{{.Detail}}</td><td>{{.DstID}}</td>
<td><a class="reproduce" href="/job/{{$.JobID}}/reproduce?superstep={{.Superstep}}&id={{.VertexID}}">Reproduce Vertex Context</a></td>
</tr>
{{if .Stack}}<tr><td colspan="6"><pre>{{.Stack}}</pre></td></tr>{{end}}
{{end}}
</table>
<p>{{len .Rows}} row(s).</p>`))

var vertexTmpl = template.Must(template.New("vertex").Parse(`
{{.Nav}}
<h2>Vertex {{.ID}} at superstep {{.Superstep}}
(<a href="/job/{{.JobID}}/history?id={{.ID}}">full history</a>)</h2>
<table>
<tr><th>Captured because</th><td>{{.Reasons}}</td></tr>
<tr><th>Value before compute</th><td>{{.Before}}</td></tr>
<tr><th>Value after compute</th><td>{{.After}}</td></tr>
<tr><th>Voted to halt</th><td>{{.Halted}}</td></tr>
<tr><th>Worker</th><td>{{.Worker}}</td></tr>
</table>
{{if .Exception}}<h2>Exception</h2><p>{{.Exception}}</p><pre>{{.Stack}}</pre>{{end}}
<h2>Out-edges ({{len .Edges}})</h2>
<table><tr><th>Target</th><th>Edge value</th></tr>
{{range .Edges}}<tr><td>{{.Target}}</td><td>{{.Value}}</td></tr>{{end}}</table>
<h2>Incoming messages ({{len .Incoming}})</h2>
<table>{{range .Incoming}}<tr><td>{{.}}</td></tr>{{end}}</table>
<h2>Outgoing messages ({{len .Outgoing}})</h2>
<table><tr><th>To</th><th>Message</th></tr>
{{range .Outgoing}}<tr><td>{{.To}}</td><td>{{.Value}}</td></tr>{{end}}</table>
{{if .Violations}}<h2>Constraint violations</h2>
<table><tr><th>Kind</th><th>Value</th><th>Destination</th></tr>
{{range .Violations}}<tr><td>{{.Kind}}</td><td>{{.Value}}</td><td>{{.DstID}}</td></tr>{{end}}</table>{{end}}
<p>
<a class="reproduce" href="/job/{{.JobID}}/reproduce?superstep={{.Superstep}}&id={{.ID}}">Reproduce Vertex Context</a>
<a class="reproduce" href="/job/{{.JobID}}/reproduce-suite?id={{.ID}}">Reproduce All Supersteps (test suite)</a>
<a href="/job/{{.JobID}}/vertex?superstep={{.PrevSuperstep}}&id={{.ID}}">&laquo; this vertex in previous superstep</a>
<a href="/job/{{.JobID}}/vertex?superstep={{.NextSuperstep}}&id={{.ID}}">this vertex in next superstep &raquo;</a>
</p>`))

var masterTmpl = template.Must(template.New("master").Parse(`
{{.Nav}}
<h2>master.compute at superstep {{.Superstep}}</h2>
{{if not .Present}}<p class="muted">No master computation was registered for this job.</p>{{else}}
<table>
<tr><th>Halted computation</th><td>{{.Halted}}</td></tr>
</table>
{{if .Exception}}<h2>Exception</h2><p>{{.Exception}}</p><pre>{{.Stack}}</pre>{{end}}
<h2>Aggregators</h2>
<table><tr><th>Name</th><th>Before master</th><th>After master</th></tr>
{{range .Aggs}}<tr><td>{{.Name}}</td><td>{{.Before}}</td><td>{{.After}}</td></tr>{{end}}</table>
<h2>SetAggregated calls ({{len .Sets}})</h2>
<table><tr><th>Name</th><th>Value</th></tr>
{{range .Sets}}<tr><td>{{.Name}}</td><td>{{.Value}}</td></tr>{{end}}</table>
<p><a class="reproduce" href="/job/{{.JobID}}/reproduce-master?superstep={{.Superstep}}">Reproduce Master Context</a></p>
{{end}}`))

var metricsTmpl = template.Must(template.New("metrics").Parse(`
<p class="muted">Per-worker superstep telemetry folded at each barrier: compute wall
time, barrier waits, message traffic, trace-capture cost, and straggler/skew
indicators (max/mean ratios; a superstep is flagged when a worker runs
&ge;1.5&times; the mean). The <a href="/job/{{.JobID}}/profiler">profiler view</a>
has the per-worker timeline, the traffic heatmap and the anomaly feed.</p>
<table>
<tr><th>Algorithm</th><td>{{.Algorithm}}</td><th>Status</th><td>{{.Status}}</td>
<th>Workers</th><td>{{.Workers}}</td><th>Runtime</th><td>{{.Runtime}}</td></tr>
<tr><th>Compute</th><td>{{.ComputeTotal}}</td><th>Barrier</th><td>{{.BarrierTotal}}</td>
<th>Capture</th><td>{{.CaptureTotal}} ({{.CaptureOverhead}} of compute)</td>
<th>Recovery</th><td>{{.Recovery}}</td></tr>
<tr><th>Trace flush</th><td>{{.FlushTotal}}</td>
<th>Max capture queue</th><td>{{.MaxCaptureQueue}}</td><th></th><td></td><th></th><td></td></tr>
<tr><th>Vertices processed</th><td>{{.Vertices}}</td><th>Msgs sent</th><td>{{.Sent}}</td>
<th>combined / received</th><td>{{.Combined}} / {{.Received}}</td>
<th>Max skew (compute / msg)</th><td>{{.MaxComputeSkew}} / {{.MaxMessageSkew}}</td></tr>
{{if .HasFaults}}<tr><th>Recoveries</th><td>{{.Recoveries}}</td>
<th>Faults</th><td colspan="5">{{.Faults}}</td></tr>{{end}}
{{if .HasOutboxLog}}<tr><th>Outbox log</th><td colspan="7">{{.OutboxLog}}</td></tr>{{end}}
{{if .HasPlacement}}<tr><th>Partitioner</th><td>{{.Partitioner}}</td>
<th>Edge cut</th><td>{{.EdgeCut}}</td>
<th>Local messages</th><td>{{.LocalRatio}}</td>
<th>Vertices / worker</th><td>{{.PartitionSizes}}</td></tr>{{end}}
{{if .HasMigrations}}<tr><th>Rebalances</th><td>{{.Rebalances}}</td>
<th>Vertices migrated</th><td colspan="5">{{.Migrated}}</td></tr>{{end}}
{{if .HasSubgraphs}}<tr><th>Subgraphs computed</th><td>{{.Subgraphs}}</td>
<th>Internal iterations</th><td colspan="5">{{.InternalIters}}</td></tr>{{end}}
{{if .HasDFS}}<tr><th>DFS traffic</th><td colspan="7">{{.DFS}}</td></tr>{{end}}
</table>
{{if .RecoveryRows}}
<h2>Recoveries</h2>
<table>
<tr><th>Superstep</th><th>Mode</th><th>Partitions</th><th>From checkpoint</th>
<th>Steps replayed</th><th>Msgs replayed</th><th>Duration</th></tr>
{{range .RecoveryRows}}
<tr><td>{{.Superstep}}</td><td>{{.Mode}}</td><td>{{.Partitions}}</td><td>{{.FromCheckpoint}}</td>
<td>{{.StepsReplayed}}</td><td>{{.MsgsReplayed}}</td><td>{{.Duration}}</td></tr>
{{end}}
</table>
{{end}}
<table><tr>
<th>compute time / superstep</th><th>messages sent / superstep</th><th>compute skew / superstep</th>
</tr><tr>
<td>{{.ComputeSpark}}</td><td>{{.SentSpark}}</td><td>{{.SkewSpark}}</td>
</tr></table>
<h2>Supersteps</h2>
<table>
<tr><th>Superstep</th><th>Vertices</th><th>Active after</th><th>Sent</th><th>Combined</th>
<th>Received</th><th>Compute (ms)</th><th>Barrier (ms)</th><th>Capture (ms)</th>
<th>Flush (ms)</th><th>Queue</th>
<th>Compute skew</th><th>Msg skew</th><th>Straggler</th><th>Migrated</th></tr>
{{range .Rows}}
<tr{{if .Hot}} style="background:#fee"{{end}}>
<td><a href="?superstep={{.Superstep}}">{{.Superstep}}</a></td>
<td>{{.Vertices}}</td><td>{{.Active}}</td><td>{{.Sent}}</td><td>{{.Combined}}</td>
<td>{{.Received}}</td><td>{{.Compute}}</td><td>{{.Barrier}}</td><td>{{.Capture}}</td>
<td>{{.Flush}}</td><td>{{.QueueDepth}}</td>
<td>{{.ComputeSkew}}</td><td>{{.MessageSkew}}</td><td>{{.Straggler}}</td><td>{{.Migrated}}</td>
</tr>
{{end}}
</table>
{{if .WorkerRows}}
<h2>Workers at superstep {{.SelectedSuperstep}}</h2>
<table>
<tr><th>Worker</th><th>Vertices</th><th>Sent</th><th>Received</th>
<th>Compute (ms)</th><th>Barrier wait (ms)</th><th>Capture (ms)</th></tr>
{{range .WorkerRows}}
<tr{{if .Straggler}} style="background:#fee"{{end}}>
<td>{{.Worker}}{{if .Straggler}} &#9888; straggler{{end}}</td>
<td>{{.Vertices}}</td><td>{{.Sent}}</td><td>{{.Received}}</td>
<td>{{.Compute}}</td><td>{{.Barrier}}</td><td>{{.Capture}}</td>
</tr>
{{end}}
</table>
{{end}}`))

var profilerTmpl = template.Must(template.New("profiler").Parse(`
<p class="muted">Profiler view: per-worker superstep timeline (stacked
<span style="color:#246">&#9632;</span> compute /
<span style="color:#e90">&#9632;</span> barrier /
<span style="color:#999">&#9632;</span> capture bars, scaled to the busiest worker-superstep),
the sender&#8594;receiver traffic heatmap of one superstep, and the anomaly feed.
<a href="/job/{{.JobID}}/metrics">Metrics dashboard</a> |
<a href="/job/{{.JobID}}/tabular?superstep={{.Selected}}">Trace at this superstep</a></p>
<h2>Superstep timeline ({{.Workers}} workers)</h2>
{{.Timeline}}
<h2>Traffic heatmap — superstep {{.Selected}}</h2>
<div class="nav">
{{if .HasPrev}}<a href="?superstep={{.Prev}}">&laquo; Previous superstep</a>{{else}}<span class="muted">&laquo; Previous superstep</span>{{end}}
<strong>Superstep {{.Selected}}</strong>
{{if .HasNext}}<a href="?superstep={{.Next}}">Next superstep &raquo;</a>{{else}}<span class="muted">Next superstep &raquo;</span>{{end}}
{{if .HasTraffic}}| {{.TrafficSum}} messages in the matrix ({{.SelectedSent}} sent this superstep){{end}}
{{if .LocalRatio}}| {{.LocalRatio}} stayed worker-local{{end}}
{{if .EdgeCut}}| edge cut {{.EdgeCut}}{{end}}
{{if .Partitioner}}| partitioner: {{.Partitioner}}{{end}}
</div>
{{.Heatmap}}
{{if .SelectedAnomalies}}
<h2>Anomalies at superstep {{.Selected}}</h2>
<table>
<tr><th>Kind</th><th>Severity</th><th>Where</th><th>Value</th><th>Threshold</th><th>Detail</th><th>Suggested action</th></tr>
{{range .SelectedAnomalies}}
<tr{{if .Critical}} style="background:#fdd"{{else if .Warn}} style="background:#fec"{{end}}>
<td>{{.Kind}}</td><td>{{.Severity}}</td><td>{{.Where}}</td>
<td>{{.Value}}</td><td>{{.Threshold}}</td><td>{{.Detail}}</td><td>{{.Action}}</td>
</tr>
{{end}}
</table>
{{end}}
<h2>Anomaly feed ({{len .Anomalies}} events{{range $kind, $n := .AnomalyCounts}}; {{$kind}}: {{$n}}{{end}})</h2>
{{if .Anomalies}}
<table>
<tr><th>Superstep</th><th>Kind</th><th>Severity</th><th>Where</th><th>Value</th><th>Threshold</th><th>Detail</th><th>Suggested action</th><th></th></tr>
{{range .Anomalies}}
<tr{{if .Critical}} style="background:#fdd"{{else if .Warn}} style="background:#fec"{{end}}>
<td><a href="/job/{{$.JobID}}/profiler?superstep={{.Superstep}}">{{.Superstep}}</a></td>
<td>{{.Kind}}</td><td>{{.Severity}}</td><td>{{.Where}}</td>
<td>{{.Value}}</td><td>{{.Threshold}}</td><td>{{.Detail}}</td><td>{{.Action}}</td>
<td><a href="/job/{{$.JobID}}/tabular?superstep={{.Superstep}}">trace</a></td>
</tr>
{{end}}
</table>
{{else}}
<p class="muted">No anomalies: every superstep stayed inside the detector thresholds.</p>
{{end}}`))

var offlineIndexTmpl = template.Must(template.New("offlineIndex").Parse(`
<p>Offline mode: construct small graphs for end-to-end tests (paper §3.4).</p>
<form method="post" action="/offline/new">
New graph name: <input name="name" size="16">
<input type="submit" value="Create empty graph">
</form>
<form method="post" action="/offline/premade">
Or pick a premade graph:
<select name="kind">
<option>path</option><option>cycle</option><option>star</option>
<option>bipartite</option><option>triangle</option><option>two-triangles</option>
</select>
size <input name="n" size="4" value="6">
name <input name="name" size="16" value="premade">
<input type="submit" value="Create premade graph">
</form>
<h2>Graphs under construction</h2>
<table><tr><th>Name</th><th>Vertices</th><th>Edges</th></tr>
{{range .Graphs}}<tr><td><a href="/offline/{{.Name}}">{{.Name}}</a></td><td>{{.Vertices}}</td><td>{{.Edges}}</td></tr>{{end}}
</table>`))

var offlineGraphTmpl = template.Must(template.New("offlineGraph").Parse(`
<p><a href="/offline/">&laquo; all graphs</a></p>
{{.SVG}}
<h2>Edit</h2>
<form method="post" action="/offline/{{.Name}}/vertex">
Add vertex: id <input name="id" size="6"> value <input name="value" size="8">
<input type="submit" value="Add / update vertex">
</form>
<form method="post" action="/offline/{{.Name}}/edge">
Add edge: from <input name="from" size="6"> to <input name="to" size="6">
weight <input name="weight" size="6"> <label><input type="checkbox" name="undirected" value="1" checked>undirected</label>
<input type="submit" value="Add edge">
</form>
<form method="post" action="/offline/{{.Name}}/delete-vertex">
Remove vertex: id <input name="id" size="6"> <input type="submit" value="Remove">
</form>
<h2>Vertices</h2>
<table><tr><th>ID</th><th>Value</th><th>Out-edges</th></tr>
{{range .Rows}}<tr><td>{{.ID}}</td><td>{{.Value}}</td><td>{{.Edges}}</td></tr>{{end}}
</table>
<h2>Use for testing</h2>
<p>
<a href="/offline/{{.Name}}/export.adjlist">Download adjacency list</a> |
<a href="/offline/{{.Name}}/export-test">End-to-end test code template</a>
</p>`))
