package gui

import (
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graft/internal/metrics"
	"graft/internal/pregel"
)

// AttachMetrics mounts a live metrics registry into the GUI: the
// /metrics and /debug/vars endpoints serve from it, and the dashboard
// page of the matching job prefers the live snapshot over the
// persisted file while the job is running. Call before Handler.
func (s *Server) AttachMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metricsReg = reg
}

// AttachMetricsSource mounts a per-job registry resolver: what a
// multi-job daemon (graft serve) uses so each live job's dashboard and
// profiler render from that job's own registry. The source returns nil
// for jobs it does not know (finished jobs fall back to the persisted
// job.metrics file). Call before Handler.
func (s *Server) AttachMetricsSource(src func(jobID string) *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metricsSrc = src
}

func (s *Server) liveMetrics() *metrics.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsReg
}

// jobMetrics resolves a job's metrics: a live per-job registry first
// (so a running job's dashboard refreshes every superstep), then the
// persisted job.metrics, then the legacy single attached registry.
func (s *Server) jobMetrics(jobID string) (metrics.JobMetrics, error) {
	s.mu.Lock()
	src := s.metricsSrc
	s.mu.Unlock()
	if src != nil {
		if reg := src(jobID); reg != nil {
			return reg.Snapshot(), nil
		}
	}
	jm, err := metrics.ReadJobMetrics(s.store.FS, s.store.MetricsPath(jobID))
	if err == nil {
		return jm, nil
	}
	if reg := s.liveMetrics(); reg != nil {
		if snap := reg.Snapshot(); snap.JobID == jobID {
			return snap, nil
		}
	}
	return jm, err
}

// handleMetricsJSON serves one job's metrics snapshot as JSON — the
// machine-readable face of the dashboard, resolved live-first like the
// HTML page (what the serve daemon's per-job /metrics.json is).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	jm, err := s.jobMetrics(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, jm)
}

// migrationSummary renders a superstep's rebalancer migrations for the
// dashboard table.
func migrationSummary(ms []pregel.MigrationEvent) string {
	if len(ms) == 0 {
		return "—"
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%d→%d: %d", m.From, m.To, m.Vertices)
	}
	return strings.Join(parts, ", ")
}

// partitionSizesSummary renders the per-worker vertex counts the job
// finished with ("w0: 120, w1: 118, ..."), or "—" when the job did not
// record them.
func partitionSizesSummary(sizes []int64) string {
	if len(sizes) == 0 {
		return "—"
	}
	parts := make([]string, len(sizes))
	for i, n := range sizes {
		parts[i] = fmt.Sprintf("w%d: %d", i, n)
	}
	return strings.Join(parts, ", ")
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// skewHot is the straggler threshold: a worker running 1.5x the mean
// marks the superstep as skewed in the dashboard.
const skewHot = 1.5

type metricsStepRow struct {
	Superstep                 int
	Vertices, Active          int64
	Sent, Combined, Received  int64
	Compute, Barrier, Capture string
	Flush                     string
	QueueDepth                int
	ComputeSkew, MessageSkew  string
	Straggler                 string
	Hot                       bool
	// Migrated summarizes the rebalancer's migrations at this barrier
	// ("from→to: n vertices"), or "—" when none happened.
	Migrated string
}

type metricsWorkerRow struct {
	Worker                    int
	Vertices, Sent, Received  int64
	Compute, Barrier, Capture string
	Straggler                 bool
}

type metricsRecoveryRow struct {
	Superstep, FromCheckpoint int
	Mode, Partitions          string
	StepsReplayed             int
	MsgsReplayed              int64
	Duration                  string
}

// recoveryRows renders the per-recovery breakdown for the dashboard:
// which partitions rolled back, the checkpoint they restarted from and
// how much confined replay it took to catch them back up.
func recoveryRows(evs []pregel.RecoveryEvent) []metricsRecoveryRow {
	rows := make([]metricsRecoveryRow, 0, len(evs))
	for _, ev := range evs {
		parts := "all"
		if len(ev.Partitions) > 0 {
			strs := make([]string, len(ev.Partitions))
			for i, p := range ev.Partitions {
				strs[i] = strconv.Itoa(p)
			}
			parts = strings.Join(strs, ", ")
		}
		rows = append(rows, metricsRecoveryRow{
			Superstep:      ev.Superstep,
			FromCheckpoint: ev.CheckpointSuperstep,
			Mode:           ev.Mode,
			Partitions:     parts,
			StepsReplayed:  ev.SuperstepsReplayed,
			MsgsReplayed:   ev.MessagesReplayed,
			Duration:       ms(ev.Duration) + " ms",
		})
	}
	return rows
}

// dfsSummary renders the distributed-store data-path counters for the
// dashboard's DFS row ("" when no DFS source was registered).
func dfsSummary(jm metrics.JobMetrics) string {
	if jm.DFS == nil {
		return ""
	}
	return jm.DFS.String()
}

// handleMetrics renders the GiViP-style per-job dashboard: job-level
// phase totals, sparklines over supersteps, the per-superstep
// timing/skew table, and the per-worker breakdown of one superstep.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jobID := r.PathValue("id")
	jm, err := s.jobMetrics(jobID)
	if errors.Is(err, metrics.ErrNoMetrics) {
		renderPage(w, fmt.Sprintf("%s — metrics", jobID), template.HTML(
			`<p class="muted">No metrics were recorded for this job. Re-run with the metrics `+
				`layer enabled (it is on by default for graft run) to populate this dashboard.</p>`))
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	var rows []metricsStepRow
	computeMs := make([]float64, 0, len(jm.Supersteps))
	sentVals := make([]float64, 0, len(jm.Supersteps))
	skewVals := make([]float64, 0, len(jm.Supersteps))
	for _, ss := range jm.Supersteps {
		straggler := "—"
		if ss.Straggler >= 0 {
			straggler = strconv.Itoa(ss.Straggler)
		}
		rows = append(rows, metricsStepRow{
			Superstep: ss.Superstep,
			Vertices:  ss.VerticesProcessed, Active: ss.ActiveAtEnd,
			Sent: ss.MessagesSent, Combined: ss.MessagesCombined, Received: ss.MessagesReceived,
			Compute: ms(ss.ComputeTime), Barrier: ms(ss.BarrierWait), Capture: ms(ss.CaptureTime),
			Flush:       ms(ss.FlushTime),
			QueueDepth:  ss.CaptureQueueDepth,
			ComputeSkew: fmt.Sprintf("%.2f", ss.ComputeSkew),
			MessageSkew: fmt.Sprintf("%.2f", ss.MessageSkew),
			Straggler:   straggler,
			Hot:         ss.ComputeSkew >= skewHot,
			Migrated:    migrationSummary(ss.Migrations),
		})
		computeMs = append(computeMs, float64(ss.ComputeTime.Microseconds())/1000)
		sentVals = append(sentVals, float64(ss.MessagesSent))
		skewVals = append(skewVals, ss.ComputeSkew)
	}

	// Per-worker drill-down for ?superstep=N (default: the slowest).
	sel := -1
	if v := r.FormValue("superstep"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			sel = n
		}
	}
	if sel < 0 {
		var worst time.Duration
		for _, ss := range jm.Supersteps {
			if ss.ComputeTime >= worst {
				worst, sel = ss.ComputeTime, ss.Superstep
			}
		}
	}
	var workerRows []metricsWorkerRow
	for _, ss := range jm.Supersteps {
		if ss.Superstep != sel {
			continue
		}
		for _, ws := range ss.Workers {
			workerRows = append(workerRows, metricsWorkerRow{
				Worker:   ws.Worker,
				Vertices: ws.VerticesProcessed, Sent: ws.MessagesSent, Received: ws.MessagesReceived,
				Compute: ms(ws.ComputeTime), Barrier: ms(ws.BarrierWait), Capture: ms(ws.CaptureTime),
				Straggler: ws.Worker == ss.Straggler && ss.ComputeSkew >= skewHot,
			})
		}
	}

	status := "finished: " + jm.Reason
	if jm.Running {
		status = "running"
	} else if jm.Error != "" {
		status = "failed: " + jm.Error
	}
	overhead := jm.Totals.CaptureOverhead()
	data := struct {
		JobID, Algorithm, Status           string
		Workers                            int
		Runtime, Recovery                  string
		ComputeTotal, BarrierTotal         string
		CaptureTotal, CaptureOverhead      string
		FlushTotal                         string
		MaxCaptureQueue                    int
		MaxComputeSkew, MaxMessageSkew     string
		Rebalances                         int
		Migrated                           int64
		HasMigrations                      bool
		Partitioner                        string
		PartitionSizes                     string
		EdgeCut                            int64
		LocalRatio                         string
		HasPlacement                       bool
		Subgraphs, InternalIters           int64
		HasSubgraphs                       bool
		Sent, Combined, Received, Vertices int64
		Recoveries                         int
		Faults                             string
		HasFaults                          bool
		OutboxLog                          string
		HasOutboxLog                       bool
		RecoveryRows                       []metricsRecoveryRow
		DFS                                string
		HasDFS                             bool
		ComputeSpark, SentSpark, SkewSpark template.HTML
		Rows                               []metricsStepRow
		SelectedSuperstep                  int
		WorkerRows                         []metricsWorkerRow
	}{
		JobID: jm.JobID, Algorithm: jm.Algorithm, Status: status,
		Workers:         jm.NumWorkers,
		Runtime:         ms(time.Duration(jm.RuntimeNanos)) + " ms",
		Recovery:        ms(time.Duration(jm.RecoveryNanos)) + " ms",
		ComputeTotal:    ms(time.Duration(jm.Totals.ComputeNanos)) + " ms",
		BarrierTotal:    ms(time.Duration(jm.Totals.BarrierNanos)) + " ms",
		CaptureTotal:    ms(time.Duration(jm.Totals.CaptureNanos)) + " ms",
		CaptureOverhead: fmt.Sprintf("%.2f%%", overhead*100),
		FlushTotal:      ms(time.Duration(jm.Totals.FlushNanos)) + " ms",
		MaxCaptureQueue: jm.Totals.MaxCaptureQueueDepth,
		MaxComputeSkew:  fmt.Sprintf("%.2f", jm.Totals.MaxComputeSkew),
		MaxMessageSkew:  fmt.Sprintf("%.2f", jm.Totals.MaxMessageSkew),
		Rebalances:      jm.Totals.Rebalances,
		Migrated:        jm.Totals.VerticesMigrated,
		HasMigrations:   jm.Totals.Rebalances > 0,
		Partitioner:     jm.Partitioner,
		PartitionSizes:  partitionSizesSummary(jm.PartitionSizes),
		EdgeCut:         jm.EdgeCut,
		LocalRatio:      fmt.Sprintf("%.1f%%", jm.Totals.LocalMessageRatio(jm.TrafficTotal())*100),
		HasPlacement:    jm.Partitioner != "",
		Subgraphs:       jm.Totals.SubgraphsComputed,
		InternalIters:   jm.Totals.InternalIterations,
		HasSubgraphs:    jm.Totals.SubgraphsComputed > 0,
		Sent:            jm.Totals.MessagesSent, Combined: jm.Totals.MessagesCombined,
		Received: jm.Totals.MessagesReceived, Vertices: jm.Totals.VerticesProcessed,
		Recoveries:        jm.Recoveries,
		Faults:            jm.Faults.String(),
		HasFaults:         jm.Faults.Any() || jm.Recoveries > 0,
		OutboxLog:         fmt.Sprintf("%d messages (%d bytes)", jm.MessagesLogged, jm.BytesLogged),
		HasOutboxLog:      jm.MessagesLogged > 0,
		RecoveryRows:      recoveryRows(jm.RecoveryEvents),
		DFS:               dfsSummary(jm),
		HasDFS:            jm.DFS != nil && jm.DFS.Any(),
		ComputeSpark:      sparklineSVG(computeMs, 260, 48, "#246"),
		SentSpark:         sparklineSVG(sentVals, 260, 48, "#2a2"),
		SkewSpark:         sparklineSVG(skewVals, 260, 48, "#c33"),
		Rows:              rows,
		SelectedSuperstep: sel,
		WorkerRows:        workerRows,
	}
	body, err := renderSub(metricsTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — metrics", jobID), body)
}
