package gui

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graft/internal/dfs"
	"graft/internal/metrics"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// seedMetrics builds a finished job's metrics with enough telemetry to
// exercise the dashboard: two supersteps, a flagged straggler, workers.
func seedMetrics(jobID string) metrics.JobMetrics {
	reg := metrics.NewRegistry(jobID, "cc")
	reg.JobStarted(pregel.JobInfo{NumWorkers: 2, NumVertices: 50, NumEdges: 120})
	for i := 0; i < 2; i++ {
		reg.SuperstepFinished(i, pregel.SuperstepStats{
			Superstep:         i,
			ActiveAtEnd:       int64(50 - i*25),
			MessagesSent:      120,
			MessagesReceived:  120,
			VerticesProcessed: 50,
			ComputeTime:       4 * time.Millisecond,
			BarrierWait:       time.Millisecond,
			CaptureTime:       200 * time.Microsecond,
			ComputeSkew:       1.8, // above the 1.5 straggler threshold
			MessageSkew:       1.1,
			Straggler:         1,
			Workers: []pregel.WorkerStepStats{
				{Worker: 0, VerticesProcessed: 25, MessagesSent: 60, ComputeTime: 2 * time.Millisecond, BarrierWait: 2 * time.Millisecond},
				{Worker: 1, VerticesProcessed: 25, MessagesSent: 60, ComputeTime: 4 * time.Millisecond},
			},
		})
	}
	reg.JobFinished(&pregel.Stats{Supersteps: 2, Runtime: 20 * time.Millisecond}, nil)
	return reg.Snapshot()
}

func TestMetricsDashboardRendersPersistedJob(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	if err := metrics.WriteJobMetrics(store.FS, store.MetricsPath("demo"), seedMetrics("demo")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/job/demo/metrics")
	if code != 200 {
		t.Fatalf("GET /job/demo/metrics = %d\n%s", code, body)
	}
	for _, want := range []string{
		"Supersteps",           // per-superstep table
		"<svg",                 // sparklines
		"Workers at superstep", // per-worker drill-down
		"straggler",            // flagged straggler marker
		"Compute skew",         // skew column
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// Drill into a specific superstep.
	code, body = get(t, ts, "/job/demo/metrics?superstep=0")
	if code != 200 || !strings.Contains(body, "Workers at superstep 0") {
		t.Errorf("superstep drill-down failed: %d", code)
	}
}

func TestMetricsDashboardWithoutMetricsFile(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/job/ghost/metrics")
	if code != 200 || !strings.Contains(body, "No metrics were recorded") {
		t.Errorf("missing-metrics page: %d\n%s", code, body)
	}
}

func TestAttachMetricsMountsLiveEndpoints(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	srv := NewServer(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Without a registry the endpoints answer 404.
	if code, _ := get(t, ts, "/metrics"); code != 404 {
		t.Errorf("GET /metrics without registry = %d, want 404", code)
	}

	reg := metrics.NewRegistry("live-job", "cc")
	reg.JobStarted(pregel.JobInfo{NumWorkers: 2})
	srv.AttachMetrics(reg)

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	var jm metrics.JobMetrics
	if err := json.Unmarshal([]byte(body), &jm); err != nil || jm.JobID != "live-job" {
		t.Errorf("live /metrics = %q err=%v", body, err)
	}
	if code, _ := get(t, ts, "/debug/vars"); code != 200 {
		t.Errorf("GET /debug/vars = %d", code)
	}

	// The dashboard page falls back to the live registry for the
	// running job that has no persisted file yet.
	code, body = get(t, ts, "/job/live-job/metrics")
	if code != 200 || !strings.Contains(body, "running") {
		t.Errorf("live dashboard = %d\n%s", code, body)
	}
}

func TestSparklineSVG(t *testing.T) {
	if s := string(sparklineSVG(nil, 100, 30, "#000")); !strings.Contains(s, "no data") {
		t.Errorf("empty sparkline = %q", s)
	}
	s := string(sparklineSVG([]float64{1, 3, 2}, 100, 30, "#246"))
	if !strings.Contains(s, "<polyline") || !strings.Contains(s, "</svg>") {
		t.Errorf("sparkline lacks polyline: %q", s)
	}
	if one := string(sparklineSVG([]float64{5}, 100, 30, "#246")); !strings.Contains(one, "<circle") {
		t.Errorf("single-point sparkline = %q", one)
	}
}
