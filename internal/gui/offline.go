package gui

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"graft/internal/graphio"
	"graft/internal/pregel"
)

// Offline mode (paper §3.4): users construct small graphs — from
// scratch or from a premade menu — then export them as adjacency-list
// text for an end-to-end test, or as a test-code template that builds
// the graph programmatically.

func (s *Server) registerOffline(mux *http.ServeMux) {
	mux.HandleFunc("GET /offline/{$}", s.handleOfflineIndex)
	mux.HandleFunc("POST /offline/new", s.handleOfflineNew)
	mux.HandleFunc("POST /offline/premade", s.handleOfflinePremade)
	mux.HandleFunc("GET /offline/{name}", s.offlineGraph(s.handleOfflineView))
	mux.HandleFunc("POST /offline/{name}/vertex", s.offlineGraph(s.handleOfflineAddVertex))
	mux.HandleFunc("POST /offline/{name}/edge", s.offlineGraph(s.handleOfflineAddEdge))
	mux.HandleFunc("POST /offline/{name}/delete-vertex", s.offlineGraph(s.handleOfflineDeleteVertex))
	mux.HandleFunc("GET /offline/{name}/export.adjlist", s.offlineGraph(s.handleOfflineExport))
	mux.HandleFunc("GET /offline/{name}/export-test", s.offlineGraph(s.handleOfflineExportTest))
}

func (s *Server) offlineGraph(h func(http.ResponseWriter, *http.Request, string, *pregel.Graph)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		s.mu.Lock()
		g, ok := s.offline[name]
		s.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("no offline graph %q", name), http.StatusNotFound)
			return
		}
		h(w, r, name, g)
	}
}

func (s *Server) handleOfflineIndex(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name            string
		Vertices, Edges int64
	}
	s.mu.Lock()
	var rows []row
	for name, g := range s.offline {
		rows = append(rows, row{name, g.NumVertices(), g.NumEdges()})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	body, err := renderSub(offlineIndexTmpl, struct{ Graphs []row }{rows})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, "offline mode", body)
}

func (s *Server) putOffline(name string, g *pregel.Graph) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("gui: bad graph name %q", name)
	}
	s.mu.Lock()
	s.offline[name] = g
	s.mu.Unlock()
	return nil
}

func (s *Server) handleOfflineNew(w http.ResponseWriter, r *http.Request) {
	if err := s.putOffline(r.FormValue("name"), pregel.NewGraph()); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/offline/"+r.FormValue("name"), http.StatusSeeOther)
}

// PremadeGraph builds one of the offline mode's menu graphs.
func PremadeGraph(kind string, n int) (*pregel.Graph, error) {
	if n < 2 {
		n = 2
	}
	g := pregel.NewGraph()
	addN := func(count int) {
		for i := 0; i < count; i++ {
			g.AddVertex(pregel.VertexID(i), nil)
		}
	}
	und := func(a, b int) {
		_ = g.AddUndirectedEdge(pregel.VertexID(a), pregel.VertexID(b), nil)
	}
	switch kind {
	case "path":
		addN(n)
		for i := 1; i < n; i++ {
			und(i-1, i)
		}
	case "cycle":
		addN(n)
		for i := 0; i < n; i++ {
			und(i, (i+1)%n)
		}
	case "star":
		addN(n)
		for i := 1; i < n; i++ {
			und(0, i)
		}
	case "bipartite":
		half := n / 2
		addN(2 * half)
		for i := 0; i < half; i++ {
			for k := 0; k < 2; k++ {
				und(i, half+(i+k)%half)
			}
		}
	case "triangle":
		addN(3)
		und(0, 1)
		und(1, 2)
		und(0, 2)
	case "two-triangles":
		addN(6)
		und(0, 1)
		und(1, 2)
		und(0, 2)
		und(3, 4)
		und(4, 5)
		und(3, 5)
	default:
		return nil, fmt.Errorf("gui: unknown premade graph %q", kind)
	}
	g.SortAllEdges()
	return g, nil
}

func (s *Server) handleOfflinePremade(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.FormValue("n"))
	g, err := PremadeGraph(r.FormValue("kind"), n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.FormValue("name")
	if name == "" {
		name = "premade"
	}
	if err := s.putOffline(name, g); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/offline/"+name, http.StatusSeeOther)
}

func (s *Server) handleOfflineView(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	type row struct {
		ID    pregel.VertexID
		Value string
		Edges string
	}
	var rows []row
	g.Each(func(v *pregel.Vertex) {
		var parts []string
		for _, e := range v.Edges() {
			if e.Value != nil {
				parts = append(parts, fmt.Sprintf("%d (%s)", e.Target, pregel.ValueString(e.Value)))
			} else {
				parts = append(parts, fmt.Sprintf("%d", e.Target))
			}
		}
		rows = append(rows, row{v.ID(), pregel.ValueString(v.Value()), strings.Join(parts, ", ")})
	})
	body, err := renderSub(offlineGraphTmpl, struct {
		Name string
		SVG  template.HTML
		Rows []row
	}{name, builderSVG(g), rows})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, "offline graph "+name, body)
}

// parseOfflineValue interprets a form value: empty means nil, integers
// become LongValue, other numbers DoubleValue, anything else Text.
func parseOfflineValue(s string) pregel.Value {
	if s == "" {
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return pregel.NewLong(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return pregel.NewDouble(f)
	}
	return pregel.NewText(s)
}

func (s *Server) handleOfflineAddVertex(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if v := g.Vertex(pregel.VertexID(id)); v != nil {
		v.SetValue(parseOfflineValue(r.FormValue("value")))
	} else {
		g.AddVertex(pregel.VertexID(id), parseOfflineValue(r.FormValue("value")))
	}
	s.mu.Unlock()
	http.Redirect(w, r, "/offline/"+name, http.StatusSeeOther)
}

func (s *Server) handleOfflineAddEdge(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	from, err1 := strconv.ParseInt(r.FormValue("from"), 10, 64)
	to, err2 := strconv.ParseInt(r.FormValue("to"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad edge endpoints", http.StatusBadRequest)
		return
	}
	var value pregel.Value
	if ws := r.FormValue("weight"); ws != "" {
		f, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			http.Error(w, "bad weight", http.StatusBadRequest)
			return
		}
		value = pregel.NewDouble(f)
	}
	s.mu.Lock()
	g.EnsureVertex(pregel.VertexID(from), nil)
	g.EnsureVertex(pregel.VertexID(to), nil)
	var err error
	if r.FormValue("undirected") != "" {
		err = g.AddUndirectedEdge(pregel.VertexID(from), pregel.VertexID(to), value)
	} else {
		err = g.AddEdge(pregel.VertexID(from), pregel.VertexID(to), value)
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/offline/"+name, http.StatusSeeOther)
}

func (s *Server) handleOfflineDeleteVertex(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	// Rebuild without the vertex (and without edges to it): the
	// builder favors simplicity over efficiency at test-graph sizes.
	s.mu.Lock()
	old := s.offline[name]
	fresh := pregel.NewGraph()
	old.Each(func(v *pregel.Vertex) {
		if v.ID() == pregel.VertexID(id) {
			return
		}
		fresh.AddVertex(v.ID(), pregel.CloneValue(v.Value()))
	})
	old.Each(func(v *pregel.Vertex) {
		if v.ID() == pregel.VertexID(id) {
			return
		}
		for _, e := range v.Edges() {
			if e.Target == pregel.VertexID(id) {
				continue
			}
			_ = fresh.AddEdge(v.ID(), e.Target, pregel.CloneValue(e.Value))
		}
	})
	s.offline[name] = fresh
	s.mu.Unlock()
	http.Redirect(w, r, "/offline/"+name, http.StatusSeeOther)
}

func (s *Server) handleOfflineExport(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# graph %q exported from Graft offline mode\n", name)
	if err := graphio.WriteAdjacency(w, g); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleOfflineExportTest(w http.ResponseWriter, r *http.Request, name string, g *pregel.Graph) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, EndToEndTestCode(name, g))
}

// EndToEndTestCode renders a Go test template that constructs g
// programmatically, runs a computation from the first superstep to
// termination and logs the final vertex values — the end-to-end test
// skeleton of paper §3.4.
func EndToEndTestCode(name string, g *pregel.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, `// Code generated by Graft's offline mode (graph %q); edit freely.
package graftendtoend

import (
	"testing"

	"graft/internal/pregel"
)

func TestEndToEnd(t *testing.T) {
	g := pregel.NewGraph()
`, name)
	for _, id := range g.VertexIDs() {
		fmt.Fprintf(&b, "\tg.AddVertex(%d, %s)\n", int64(id), valueLiteral(g.Vertex(id).Value()))
	}
	for _, id := range g.VertexIDs() {
		for _, e := range g.Vertex(id).Edges() {
			if e.Value == nil {
				fmt.Fprintf(&b, "\tg.Vertex(%d).AddEdge(pregel.Edge{Target: %d})\n", int64(id), int64(e.Target))
			} else {
				fmt.Fprintf(&b, "\tg.Vertex(%d).AddEdge(pregel.Edge{Target: %d, Value: %s})\n",
					int64(id), int64(e.Target), valueLiteral(e.Value))
			}
		}
	}
	b.WriteString(`
	// TODO: set comp to the computation under test, e.g.
	//   comp := algorithms.NewConnectedComponents().Compute
	var comp pregel.Computation
	if comp == nil {
		t.Skip("set comp to the computation under test")
	}
	stats, err := pregel.NewJob(g, comp, pregel.Config{MaxSupersteps: 10000}).Run()
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	t.Logf("terminated after %d supersteps (%v)", stats.Supersteps, stats.Reason)
	// TODO: replace the log below with assertions on the expected
	// final vertex values.
	g.Each(func(v *pregel.Vertex) {
		t.Logf("vertex %d = %s", v.ID(), pregel.ValueString(v.Value()))
	})
}
`)
	return b.String()
}

// valueLiteral renders builtin scalar values as constructor literals
// for the end-to-end template (the offline builder only creates
// builtin scalars).
func valueLiteral(v pregel.Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case *pregel.LongValue:
		return fmt.Sprintf("pregel.NewLong(%d)", x.Get())
	case *pregel.DoubleValue:
		return fmt.Sprintf("pregel.NewDouble(%g)", x.Get())
	case *pregel.TextValue:
		return fmt.Sprintf("pregel.NewText(%q)", x.Get())
	case *pregel.BoolValue:
		return fmt.Sprintf("pregel.NewBool(%v)", x.Get())
	default:
		return fmt.Sprintf("pregel.NewText(%q)", v.String())
	}
}

// builderSVG draws an offline graph: all vertices on one circle.
func builderSVG(g *pregel.Graph) template.HTML {
	ids := g.VertexIDs()
	if len(ids) == 0 {
		return template.HTML(`<p class="muted">Empty graph: add vertices below.</p>`)
	}
	if len(ids) > 64 {
		return template.HTML(`<p class="muted">Graph too large to draw; offline mode targets small test graphs.</p>`)
	}
	const w, h = 640.0, 480.0
	cx, cy, r := w/2, h/2, math.Min(w, h)/2-50
	type pos struct{ x, y float64 }
	positions := map[pregel.VertexID]pos{}
	for i, id := range ids {
		a := 2 * math.Pi * float64(i) / float64(len(ids))
		positions[id] = pos{cx + r*math.Cos(a), cy + r*math.Sin(a)}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" style="border:1px solid #ccc;background:white">`, w, h)
	for _, id := range ids {
		from := positions[id]
		for _, e := range g.Vertex(id).Edges() {
			to, ok := positions[e.Target]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999"/>`,
				from.x, from.y, to.x, to.y)
			if e.Value != nil {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="#777">%s</text>`,
					(from.x+to.x)/2, (from.y+to.y)/2-3, escapeSVG(pregel.ValueString(e.Value)))
			}
		}
	}
	for _, id := range ids {
		p := positions[id]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="18" fill="#cde" stroke="#335"/>`, p.x, p.y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" font-weight="bold">%d</text>`,
			p.x, p.y-1, int64(id))
		if v := g.Vertex(id).Value(); v != nil {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle">%s</text>`,
				p.x, p.y+9, escapeSVG(truncate(pregel.ValueString(v), 10)))
		}
	}
	fmt.Fprint(&b, `</svg>`)
	return template.HTML(b.String())
}
