package gui

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"graft/internal/pregel"
	"graft/internal/repro"
	"graft/internal/trace"
)

// The replay-check view re-executes every captured vertex of a
// superstep against its recorded context and reports whether the
// replay matches the cluster execution — a live determinism audit of
// the trace, and the programmatic face of the Reproduce step.

// RegisterComputation associates a live computation with an algorithm
// name, enabling the replay-check view for its jobs. (The reproduce
// buttons only need the GenSpec; replaying in-process needs the actual
// function.)
func (s *Server) RegisterComputation(algorithm string, comp pregel.Computation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.comps[algorithm] = comp
}

func (s *Server) computationFor(algorithm string) pregel.Computation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.comps[algorithm]
}

var replayCheckTmpl = template.Must(template.New("replaycheck").Parse(`
{{.Nav}}
<h2>Replay check — superstep {{.Superstep}}</h2>
{{if not .Available}}
<p class="muted">No live computation registered for algorithm
"{{.Algorithm}}"; replay checking is unavailable for this job.</p>
{{else}}
<p>{{.OKCount}}/{{.Total}} captured vertices replay identically to the
cluster execution.</p>
<table>
<tr><th>Vertex</th><th>Replay</th><th>Divergences</th></tr>
{{range .Rows}}
<tr>
<td><a href="/job/{{$.JobID}}/vertex?superstep={{$.Superstep}}&id={{.ID}}">{{.ID}}</a></td>
<td>{{if .OK}}OK{{else}}DIVERGED{{end}}</td>
<td>{{.Diffs}}</td>
</tr>
{{end}}
</table>
{{end}}`))

func (s *Server) handleReplayCheck(w http.ResponseWriter, r *http.Request, db trace.View) {
	superstep := superstepOf(r, db)
	nav, err := navHTML(db, superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type row struct {
		ID    pregel.VertexID
		OK    bool
		Diffs string
	}
	data := struct {
		Nav       template.HTML
		JobID     string
		Algorithm string
		Superstep int
		Available bool
		OKCount   int
		Total     int
		Rows      []row
	}{Nav: nav, JobID: db.JobMeta().JobID, Algorithm: db.JobMeta().Algorithm, Superstep: superstep}

	comp := s.computationFor(db.JobMeta().Algorithm)
	if comp != nil {
		data.Available = true
		meta := db.MetaAt(superstep)
		for _, c := range db.CapturesAt(superstep) {
			out := repro.ReplayCapture(c, meta, comp)
			diffs := repro.Fidelity(c, out)
			if len(diffs) == 0 {
				data.OKCount++
			}
			data.Rows = append(data.Rows, row{
				ID:    c.ID,
				OK:    len(diffs) == 0,
				Diffs: strings.Join(diffs, "; "),
			})
			data.Total++
		}
	}
	body, err := renderSub(replayCheckTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — replay check @ superstep %d", db.JobMeta().JobID, superstep), body)
}
