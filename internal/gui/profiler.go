package gui

import (
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graft/internal/anomaly"
	"graft/internal/metrics"
	"graft/internal/pregel"
)

// The profiler page is the GiViP-style "where did the time and the
// messages go" view: a superstep timeline with one lane per worker
// (compute / barrier / capture stacked), the inter-partition traffic
// heatmap for one superstep with a scrubber, and the anomaly feed the
// detector engine emitted at each barrier.

// timelineColors are the stacked-segment fills, in draw order.
var timelineColors = [3]string{"#246", "#e90", "#999"} // compute, barrier, capture

// timelineSVG renders the superstep timeline: one horizontal lane per
// worker, one column per superstep. Each cell is a stacked bar of the
// worker's compute, barrier-wait and capture time, scaled against the
// busiest worker-superstep so relative load (and stragglers) read at a
// glance. Column headers link to the profiler page at that superstep;
// the selected column is tinted.
func timelineSVG(steps []pregel.SuperstepStats, workers, selected int) template.HTML {
	if len(steps) == 0 || workers == 0 {
		return template.HTML(`<p class="muted">No superstep telemetry recorded.</p>`)
	}
	cellTotal := func(ws pregel.WorkerStepStats) time.Duration {
		return ws.ComputeTime + ws.BarrierWait + ws.CaptureTime
	}
	var max time.Duration
	for _, ss := range steps {
		for _, ws := range ss.Workers {
			if t := cellTotal(ws); t > max {
				max = t
			}
		}
	}
	if max == 0 {
		max = 1
	}

	const laneH, labelW, headerH = 22.0, 70.0, 18.0
	colW := 900.0 / float64(len(steps))
	if colW > 110 {
		colW = 110
	}
	if colW < 14 {
		colW = 14
	}
	w := labelW + colW*float64(len(steps)) + 10
	h := headerH + laneH*float64(workers) + 8

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" style="background:white;border:1px solid #ccc">`,
		w, h, w, h)
	// Lane labels.
	for wk := 0; wk < workers; wk++ {
		y := headerH + laneH*float64(wk)
		fmt.Fprintf(&b, `<text x="4" y="%.1f" font-size="10" fill="#555">worker %d</text>`, y+laneH/2+3, wk)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`, labelW, y, w-4, y)
	}
	for i, ss := range steps {
		x := labelW + colW*float64(i)
		if ss.Superstep == selected {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#fffbe0"/>`,
				x, headerH-2, colW, laneH*float64(workers)+4)
		}
		fmt.Fprintf(&b, `<a href="?superstep=%d"><text x="%.1f" y="12" font-size="9" text-anchor="middle" fill="#246">%d</text></a>`,
			ss.Superstep, x+colW/2, ss.Superstep)
		for _, ws := range ss.Workers {
			if ws.Worker < 0 || ws.Worker >= workers {
				continue
			}
			y := headerH + laneH*float64(ws.Worker) + 3
			segs := [3]time.Duration{ws.ComputeTime, ws.BarrierWait, ws.CaptureTime}
			sx := x + 1
			for si, d := range segs {
				sw := (colW - 2) * float64(d) / float64(max)
				if sw <= 0 {
					continue
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>superstep %d worker %d: compute %s ms, barrier %s ms, capture %s ms</title></rect>`,
					sx, y, sw, laneH-6, timelineColors[si],
					ss.Superstep, ws.Worker, ms(ws.ComputeTime), ms(ws.BarrierWait), ms(ws.CaptureTime))
				sx += sw
			}
		}
	}
	fmt.Fprint(&b, `</svg>`)
	return template.HTML(b.String())
}

// heatmapSVG renders one superstep's numWorkers×numWorkers traffic
// matrix: rows are senders, columns are receivers, cells shaded by
// message volume relative to the hottest lane (white = idle). Small
// matrices also print the counts in-cell; every cell carries a tooltip.
func heatmapSVG(traffic [][]int64) template.HTML {
	n := len(traffic)
	if n == 0 {
		return template.HTML(`<p class="muted">No traffic matrix was captured for this superstep (lane-based
message plane with the anomaly layer enabled is required).</p>`)
	}
	var max int64
	for _, row := range traffic {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	cell := 480.0 / float64(n)
	if cell > 56 {
		cell = 56
	}
	if cell < 10 {
		cell = 10
	}
	const labelW, labelH = 64.0, 16.0
	w := labelW + cell*float64(n) + 8
	h := labelH + cell*float64(n) + 8

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" style="background:white;border:1px solid #ccc">`,
		w, h, w, h)
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, `<text x="%.1f" y="11" font-size="9" text-anchor="middle" fill="#555">&#8594;%d</text>`,
			labelW+cell*float64(j)+cell/2, j)
	}
	for i, row := range traffic {
		y := labelH + cell*float64(i)
		fmt.Fprintf(&b, `<text x="4" y="%.1f" font-size="9" fill="#555">from %d</text>`, y+cell/2+3, i)
		for j, v := range row {
			x := labelW + cell*float64(j)
			fill := "#fff"
			if v > 0 && max > 0 {
				// Light (97%) to saturated (45%) with volume.
				l := 97 - int(52*float64(v)/float64(max))
				fill = fmt.Sprintf("hsl(8, 72%%, %d%%)", l)
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#ddd"><title>%d &#8594; %d: %d messages</title></rect>`,
				x, y, cell, cell, fill, i, j, v)
			if n <= 12 && v > 0 {
				tc := "#333"
				if float64(v) > 0.6*float64(max) {
					tc = "#fff"
				}
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="%s">%d</text>`,
					x+cell/2, y+cell/2+3, tc, v)
			}
		}
	}
	fmt.Fprint(&b, `</svg>`)
	return template.HTML(b.String())
}

// anomalyRow is one entry of the profiler's anomaly feed.
type anomalyRow struct {
	Superstep        int
	Kind, Severity   string
	Critical, Warn   bool
	Where            string
	Value, Threshold string
	Detail, Action   string
}

func anomalyRows(evs []anomaly.Event) []anomalyRow {
	rows := make([]anomalyRow, 0, len(evs))
	for _, ev := range evs {
		where := "—"
		if ev.Worker >= 0 {
			where = fmt.Sprintf("worker %d", ev.Worker)
			if ev.Peer >= 0 {
				where = fmt.Sprintf("lane %d&#8594;%d", ev.Peer, ev.Worker)
			}
		}
		rows = append(rows, anomalyRow{
			Superstep: ev.Superstep,
			Kind:      string(ev.Kind),
			Severity:  string(ev.Severity),
			Critical:  ev.Severity == anomaly.SevCritical,
			Warn:      ev.Severity == anomaly.SevWarn,
			Where:     where,
			Value:     fmt.Sprintf("%.2f", ev.Value),
			Threshold: fmt.Sprintf("%.2f", ev.Threshold),
			Detail:    ev.Detail,
			Action:    ev.Action,
		})
	}
	return rows
}

// handleProfiler renders the profiler page: timeline, heatmap with
// superstep scrubber, anomaly feed.
func (s *Server) handleProfiler(w http.ResponseWriter, r *http.Request) {
	jobID := r.PathValue("id")
	jm, err := s.jobMetrics(jobID)
	if errors.Is(err, metrics.ErrNoMetrics) {
		renderPage(w, fmt.Sprintf("%s — profiler", jobID), template.HTML(
			`<p class="muted">No metrics were recorded for this job, so there is nothing to
profile. Re-run with the metrics layer enabled (the default for graft run).</p>`))
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	// Selected superstep for the heatmap: ?superstep=N, clamped to the
	// recorded range; default is the heaviest-traffic superstep so the
	// first page load shows the most interesting matrix.
	sel := -1
	if v := r.FormValue("superstep"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			sel = n
		}
	}
	selIdx := -1
	if sel >= 0 {
		for i, ss := range jm.Supersteps {
			if ss.Superstep == sel {
				selIdx = i
				break
			}
		}
	}
	if selIdx < 0 {
		var heaviest int64 = -1
		for i, ss := range jm.Supersteps {
			if ss.MessagesSent > heaviest {
				heaviest, selIdx = ss.MessagesSent, i
			}
		}
	}

	var (
		traffic           [][]int64
		trafficSum        int64
		localSum          int64
		edgeCut           int64
		prev, next        int
		hasPrev, hasNext  bool
		selectedAnomalies []anomalyRow
	)
	selected := -1
	if selIdx >= 0 {
		ss := jm.Supersteps[selIdx]
		selected = ss.Superstep
		traffic = ss.Traffic
		localSum = ss.LocalMessages
		edgeCut = ss.EdgeCut
		for _, row := range traffic {
			for _, v := range row {
				trafficSum += v
			}
		}
		if selIdx > 0 {
			prev, hasPrev = jm.Supersteps[selIdx-1].Superstep, true
		}
		if selIdx+1 < len(jm.Supersteps) {
			next, hasNext = jm.Supersteps[selIdx+1].Superstep, true
		}
		selectedAnomalies = anomalyRows(ss.Anomalies)
	}

	data := struct {
		JobID             string
		Workers           int
		Timeline          template.HTML
		Heatmap           template.HTML
		Selected          int
		Prev, Next        int
		HasPrev, HasNext  bool
		TrafficSum        int64
		SelectedSent      int64
		HasTraffic        bool
		LocalRatio        string
		EdgeCut           int64
		Partitioner       string
		SelectedAnomalies []anomalyRow
		Anomalies         []anomalyRow
		AnomalyCounts     map[string]int
	}{
		JobID:    jm.JobID,
		Workers:  jm.NumWorkers,
		Timeline: timelineSVG(jm.Supersteps, jm.NumWorkers, selected),
		Heatmap:  heatmapSVG(traffic),
		Selected: selected,
		Prev:     prev, Next: next,
		HasPrev: hasPrev, HasNext: hasNext,
		TrafficSum:        trafficSum,
		HasTraffic:        len(traffic) > 0,
		EdgeCut:           edgeCut,
		Partitioner:       jm.Partitioner,
		SelectedAnomalies: selectedAnomalies,
		Anomalies:         anomalyRows(jm.Anomalies),
		AnomalyCounts:     jm.AnomalyCounts,
	}
	if selIdx >= 0 {
		data.SelectedSent = jm.Supersteps[selIdx].MessagesSent
	}
	if trafficSum > 0 {
		data.LocalRatio = fmt.Sprintf("%.1f%%", float64(localSum)/float64(trafficSum)*100)
	}
	body, err := renderSub(profilerTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — profiler", jobID), body)
}
