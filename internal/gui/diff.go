package gui

import (
	"fmt"
	"html/template"
	"net/http"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// The diff view compares two jobs' traces side by side — typically a
// buggy run against a fixed one with the same DebugConfig — surfacing
// the first superstep where a commonly captured vertex diverges.

var diffTmpl = template.Must(template.New("diff").Parse(`
<form method="get">
Compare job <input name="a" size="20" value="{{.A}}">
with <input name="b" size="20" value="{{.B}}">
<input type="submit" value="Diff">
</form>
{{if .Ready}}
<h2>{{.A}} vs {{.B}}</h2>
{{if .OnlyA}}<p>Captured only in {{.A}}: {{range .OnlyA}}{{.}} {{end}}</p>{{end}}
{{if .OnlyB}}<p>Captured only in {{.B}}: {{range .OnlyB}}{{.}} {{end}}</p>{{end}}
{{if .StatusDiffs}}<p>M/V/E status differs at supersteps: {{range .StatusDiffs}}{{.}} {{end}}</p>{{end}}
{{if not .Rows}}<p>No divergences among commonly captured vertices.</p>{{else}}
<p>{{len .Rows}} divergences; the first is usually where the bug acted.</p>
<table>
<tr><th>Superstep</th><th>Vertex</th><th>Differs in</th><th>{{.A}}</th><th>{{.B}}</th><th></th></tr>
{{range .Rows}}
<tr>
<td>{{.Superstep}}</td>
<td>{{.ID}}</td><td>{{.Fields}}</td><td>{{.ValA}}</td><td>{{.ValB}}</td>
<td><a href="/job/{{$.A}}/vertex?superstep={{.Superstep}}&id={{.ID}}">context in {{$.A}}</a>
    <a href="/job/{{$.B}}/vertex?superstep={{.Superstep}}&id={{.ID}}">in {{$.B}}</a></td>
</tr>
{{end}}
</table>
{{end}}
{{end}}`))

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, b := r.FormValue("a"), r.FormValue("b")
	type row struct {
		Superstep  int
		ID         pregel.VertexID
		Fields     string
		ValA, ValB string
	}
	data := struct {
		A, B         string
		Ready        bool
		OnlyA, OnlyB []pregel.VertexID
		StatusDiffs  []int
		Rows         []row
	}{A: a, B: b}
	if a != "" && b != "" {
		dbA, err := s.db(a)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		dbB, err := s.db(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		diff := trace.DiffJobs(dbA, dbB)
		data.Ready = true
		data.OnlyA, data.OnlyB = diff.OnlyA, diff.OnlyB
		data.StatusDiffs = diff.StatusDiffs
		for _, d := range diff.Divergences {
			data.Rows = append(data.Rows, row{
				Superstep: d.Superstep,
				ID:        d.ID,
				Fields:    fmt.Sprint(d.Fields),
				ValA:      pregel.ValueString(d.A.ValueAfter),
				ValB:      pregel.ValueString(d.B.ValueAfter),
			})
		}
	}
	body, err := renderSub(diffTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, "trace diff", body)
}
