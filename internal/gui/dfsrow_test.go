package gui

import (
	"net/http/httptest"
	"strings"
	"testing"

	"graft/internal/dfs"
	"graft/internal/metrics"
	"graft/internal/trace"
)

// TestMetricsDashboardShowsDFSRow: a job whose metrics carry DFS
// data-path counters renders the "DFS traffic" row; a job without them
// does not grow the row.
func TestMetricsDashboardShowsDFSRow(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")

	withDFS := seedMetrics("with-dfs")
	withDFS.DFS = &dfs.ClusterStats{
		BytesWritten: 4096, BytesRead: 2048, Prefetches: 7, CorruptReads: 1,
	}
	if err := metrics.WriteJobMetrics(store.FS, store.MetricsPath("with-dfs"), withDFS); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJobMetrics(store.FS, store.MetricsPath("no-dfs"), seedMetrics("no-dfs")); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/job/with-dfs/metrics")
	if code != 200 {
		t.Fatalf("GET /job/with-dfs/metrics = %d", code)
	}
	for _, want := range []string{"DFS traffic", "written=4096B", "prefetches=7", "corrupt-reads=1"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	code, body = get(t, ts, "/job/no-dfs/metrics")
	if code != 200 {
		t.Fatalf("GET /job/no-dfs/metrics = %d", code)
	}
	if strings.Contains(body, "DFS traffic") {
		t.Error("dashboard renders a DFS row for a job with no DFS counters")
	}
}
