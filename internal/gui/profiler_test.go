package gui

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graft/internal/anomaly"
	"graft/internal/dfs"
	"graft/internal/metrics"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// seedProfilerMetrics builds a finished job whose telemetry exercises
// every profiler widget: three supersteps with traffic matrices, a
// traffic hotspot on the middle one, and a straggler anomaly.
func seedProfilerMetrics(jobID string) metrics.JobMetrics {
	reg := metrics.NewRegistry(jobID, "cc")
	reg.JobStarted(pregel.JobInfo{NumWorkers: 2, NumVertices: 50, NumEdges: 120})
	for i := 0; i < 3; i++ {
		ss := pregel.SuperstepStats{
			Superstep:         i,
			ActiveAtEnd:       int64(50 - i*10),
			MessagesSent:      100,
			MessagesReceived:  100,
			VerticesProcessed: 50,
			ComputeTime:       4 * time.Millisecond,
			BarrierWait:       time.Millisecond,
			CaptureTime:       200 * time.Microsecond,
			ComputeSkew:       1.1,
			MessageSkew:       1.0,
			Straggler:         -1,
			Workers: []pregel.WorkerStepStats{
				{Worker: 0, VerticesProcessed: 25, MessagesSent: 50, ComputeTime: 2 * time.Millisecond, BarrierWait: 2 * time.Millisecond},
				{Worker: 1, VerticesProcessed: 25, MessagesSent: 50, ComputeTime: 4 * time.Millisecond, CaptureTime: 100 * time.Microsecond},
			},
			Traffic: [][]int64{{25, 25}, {25, 25}},
		}
		if i == 1 {
			ss.Traffic = [][]int64{{5, 45}, {5, 45}}
			ss.Anomalies = []anomaly.Event{{
				Kind: anomaly.KindTrafficHotspot, Severity: anomaly.SevCritical,
				Superstep: 1, Worker: 1, Peer: -1,
				Value: 0.9, Threshold: 0.5, Window: 1,
				Detail: "partition 1 received 90 of 100 messages",
				Action: "consider repartitioning hot receivers",
			}}
		}
		reg.SuperstepFinished(i, ss)
	}
	reg.JobFinished(&pregel.Stats{Supersteps: 3, Runtime: 20 * time.Millisecond}, nil)
	return reg.Snapshot()
}

func TestProfilerPageRendersTimelineHeatmapAndFeed(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	if err := metrics.WriteJobMetrics(store.FS, store.MetricsPath("prof"), seedProfilerMetrics("prof")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/job/prof/profiler")
	if code != 200 {
		t.Fatalf("GET /job/prof/profiler = %d\n%s", code, body)
	}
	for _, want := range []string{
		"Superstep timeline",            // timeline section
		"worker 1",                      // a timeline lane label
		"Traffic heatmap",               // heatmap section
		"traffic-hotspot",               // anomaly feed row
		"critical",                      // severity column
		"Suggested action",              // action column
		"/job/prof/tabular?superstep=1", // feed links into the trace view
	} {
		if !strings.Contains(body, want) {
			t.Errorf("profiler page missing %q", want)
		}
	}
	// All three supersteps send 100 messages each; the default heatmap
	// selection must account for every one of its superstep's sends.
	if !strings.Contains(body, "100 messages in the matrix") {
		t.Errorf("heatmap caption does not balance the matrix against MessagesSent:\n%s", body)
	}

	// Scrub to superstep 1: hotspot matrix and its anomaly table.
	code, body = get(t, ts, "/job/prof/profiler?superstep=1")
	if code != 200 {
		t.Fatalf("scrubbed profiler = %d", code)
	}
	if !strings.Contains(body, "Anomalies at superstep 1") {
		t.Errorf("selected-superstep anomaly table missing")
	}
	if !strings.Contains(body, "1 &#8594; 1: 45 messages") {
		t.Errorf("heatmap tooltip for the hot lane missing")
	}
	if !strings.Contains(body, `href="?superstep=0"`) || !strings.Contains(body, `href="?superstep=2"`) {
		t.Errorf("scrubber prev/next links missing")
	}
}

func TestProfilerPageWithoutMetrics(t *testing.T) {
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/job/ghost/profiler")
	if code != 200 || !strings.Contains(body, "nothing to\nprofile") {
		t.Errorf("missing-metrics profiler page: %d\n%s", code, body)
	}
}

func TestTimelineAndHeatmapSVG(t *testing.T) {
	if s := string(timelineSVG(nil, 0, -1)); !strings.Contains(s, "No superstep telemetry") {
		t.Errorf("empty timeline = %q", s)
	}
	if s := string(heatmapSVG(nil)); !strings.Contains(s, "No traffic matrix") {
		t.Errorf("empty heatmap = %q", s)
	}
	hm := string(heatmapSVG([][]int64{{0, 9}, {3, 1}}))
	if !strings.Contains(hm, "0 &#8594; 1: 9 messages") || !strings.Contains(hm, "</svg>") {
		t.Errorf("heatmap lacks tooltip cells: %q", hm)
	}
}
