package gui

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// The history view shows one vertex across every superstep it was
// captured in — the "mentally replay superstep by superstep" workflow
// of the paper's debugging cycle as a single table.

var historyTmpl = template.Must(template.New("history").Parse(`
{{.Nav}}
<h2>Vertex {{.ID}} across supersteps</h2>
<table>
<tr><th>Superstep</th><th>Value before</th><th>Value after</th><th>Active</th>
<th>In</th><th>Out</th><th>Violations</th><th>Exception</th><th></th></tr>
{{range .Rows}}
<tr>
<td><a href="/job/{{$.JobID}}/vertex?superstep={{.Superstep}}&id={{$.ID}}">{{.Superstep}}</a></td>
<td>{{.Before}}</td><td>{{.After}}</td><td>{{.Active}}</td>
<td>{{.In}}</td><td>{{.Out}}</td><td>{{.Violations}}</td><td>{{.Exception}}</td>
<td><a class="reproduce" href="/job/{{$.JobID}}/reproduce?superstep={{.Superstep}}&id={{$.ID}}">Reproduce</a></td>
</tr>
{{end}}
</table>
<p>
<a class="reproduce" href="/job/{{.JobID}}/reproduce-suite?id={{.ID}}">Generate test suite for all supersteps</a>
</p>`))

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request, db trace.View) {
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad vertex id", http.StatusBadRequest)
		return
	}
	history := db.CapturesOf(pregel.VertexID(id))
	if len(history) == 0 {
		http.Error(w, fmt.Sprintf("vertex %d was never captured", id), http.StatusNotFound)
		return
	}
	nav, err := navHTML(db, history[0].Superstep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type row struct {
		Superstep     int
		Before, After string
		Active        string
		In, Out       int
		Violations    int
		Exception     string
	}
	data := struct {
		Nav   template.HTML
		JobID string
		ID    int64
		Rows  []row
	}{Nav: nav, JobID: db.JobMeta().JobID, ID: id}
	for _, c := range history {
		active := "active"
		if c.HaltedAfter {
			active = "halted"
		}
		exc := ""
		if c.Exception != nil {
			exc = c.Exception.Message
		}
		data.Rows = append(data.Rows, row{
			Superstep: c.Superstep,
			Before:    pregel.ValueString(c.ValueBefore),
			After:     pregel.ValueString(c.ValueAfter),
			Active:    active,
			In:        len(c.Incoming), Out: len(c.Outgoing),
			Violations: len(c.Violations),
			Exception:  exc,
		})
	}
	body, err := renderSub(historyTmpl, data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	renderPage(w, fmt.Sprintf("%s — vertex %d history", db.JobMeta().JobID, id), body)
}
