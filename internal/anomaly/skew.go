package anomaly

// SkewVerdict is the outcome of the shared one-superstep skew model:
// whether a superstep's imbalance crossed the threshold, along which
// dimension, and which worker is the culprit. The pregel rebalancer
// migrates vertices off Verdict.Worker when Triggered is set, and the
// straggler-persistence detector counts streaks of the same verdict —
// detection and mitigation consult one definition of "skewed".
type SkewVerdict struct {
	Triggered bool
	// Dimension is "compute" or "message" ("" when not triggered).
	Dimension string
	// Worker is the overloaded worker: the straggler for compute skew,
	// the top sender for message skew; -1 when not triggered.
	Worker int
	// Skew is the triggering max/mean ratio.
	Skew float64
}

// EvaluateSkew applies the skew model to one superstep sample: compute
// skew at or above the threshold indicts the straggler; otherwise
// message skew at or above the threshold indicts the worker that sent
// the most messages (first of the maximum in worker order, so the
// verdict is deterministic). A non-positive threshold never triggers.
func EvaluateSkew(s Sample, threshold float64) SkewVerdict {
	none := SkewVerdict{Worker: -1}
	if threshold <= 0 {
		return none
	}
	if s.ComputeSkew >= threshold && s.Straggler >= 0 {
		return SkewVerdict{Triggered: true, Dimension: "compute", Worker: s.Straggler, Skew: s.ComputeSkew}
	}
	if s.MessageSkew >= threshold {
		var maxSent int64 = -1
		from := -1
		for _, w := range s.Workers {
			if w.Sent > maxSent {
				maxSent, from = w.Sent, w.Worker
			}
		}
		if from >= 0 {
			return SkewVerdict{Triggered: true, Dimension: "message", Worker: from, Skew: s.MessageSkew}
		}
	}
	return none
}
