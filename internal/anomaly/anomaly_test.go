package anomaly

import "testing"

// balanced returns a perfectly healthy sample: no skew, no straggler,
// even traffic, quiet resilience counters.
func balanced(superstep, workers int) Sample {
	s := Sample{
		Superstep:   superstep,
		ComputeSkew: 1.0,
		MessageSkew: 1.0,
		Straggler:   0,
		Sent:        int64(workers * workers * 10),
		Received:    int64(workers * workers * 10),
	}
	s.Traffic = make([][]int64, workers)
	for i := range s.Traffic {
		s.Traffic[i] = make([]int64, workers)
		for j := range s.Traffic[i] {
			s.Traffic[i][j] = 10
		}
		s.Workers = append(s.Workers, WorkerSample{Worker: i, ComputeNanos: 1000, Sent: int64(workers * 10)})
	}
	return s
}

func observeAll(e *Engine, samples []Sample) []Event {
	var out []Event
	for _, s := range samples {
		out = append(out, e.Observe(s)...)
	}
	return out
}

func TestBalancedRunStaysQuiet(t *testing.T) {
	e := New(Config{})
	var samples []Sample
	for i := 0; i < 30; i++ {
		samples = append(samples, balanced(i, 4))
	}
	if evs := observeAll(e, samples); len(evs) != 0 {
		t.Fatalf("balanced run emitted %d events: %v", len(evs), evs)
	}
	if len(e.Events()) != 0 || len(e.Counts()) != 0 {
		t.Fatalf("engine accumulated events on a balanced run: %v", e.Events())
	}
}

func TestStragglerPersistence(t *testing.T) {
	e := New(Config{StragglerRuns: 3})
	var evs []Event
	for i := 0; i < 7; i++ {
		s := balanced(i, 4)
		s.ComputeSkew = 2.0
		s.Straggler = 2
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 2 {
		t.Fatalf("expected events at runs 3 and 6, got %d: %v", len(evs), evs)
	}
	if evs[0].Kind != KindStragglerPersistence || evs[0].Superstep != 2 || evs[0].Worker != 2 {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[0].Severity != SevWarn || evs[1].Severity != SevCritical {
		t.Errorf("severities = %s, %s; want warn then critical", evs[0].Severity, evs[1].Severity)
	}
	if evs[1].Superstep != 5 || evs[1].Window != 6 {
		t.Errorf("second event = %+v", evs[1])
	}
}

func TestStragglerStreakResetsOnWorkerChange(t *testing.T) {
	e := New(Config{StragglerRuns: 3})
	var evs []Event
	for i := 0; i < 5; i++ {
		s := balanced(i, 4)
		s.ComputeSkew = 2.0
		s.Straggler = i % 2 // alternating stragglers never build a streak
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 0 {
		t.Fatalf("alternating stragglers should not fire, got %v", evs)
	}
}

func TestSkewTrend(t *testing.T) {
	e := New(Config{Window: 4})
	skews := []float64{1.0, 1.2, 1.4, 1.6}
	var evs []Event
	for i, k := range skews {
		s := balanced(i, 4)
		s.ComputeSkew = k
		s.Straggler = -1 // isolate the trend detector from the streak one
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 1 || evs[0].Kind != KindSkewTrend {
		t.Fatalf("expected one skew-trend event, got %v", evs)
	}
	if evs[0].Value != 1.6 || evs[0].Window != 4 {
		t.Errorf("event = %+v", evs[0])
	}
}

func TestSkewTrendRequiresMonotonicRise(t *testing.T) {
	e := New(Config{Window: 4})
	for i, k := range []float64{1.0, 1.4, 1.3, 1.6} { // dips in the middle
		s := balanced(i, 4)
		s.ComputeSkew = k
		s.Straggler = -1
		if evs := e.Observe(s); len(evs) != 0 {
			t.Fatalf("non-monotonic rise fired at step %d: %v", i, evs)
		}
	}
}

func TestCombineCollapse(t *testing.T) {
	e := New(Config{})
	var evs []Event
	for i := 0; i < 5; i++ {
		s := balanced(i, 4)
		s.Sent = 100
		s.Combined = 60
		if i == 4 {
			s.Combined = 5 // ratio collapses from 0.6 to 0.05
		}
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 1 || evs[0].Kind != KindCombineCollapse {
		t.Fatalf("expected one combine-collapse event, got %v", evs)
	}
	if evs[0].Worker != -1 || evs[0].Value != 0.05 {
		t.Errorf("event = %+v", evs[0])
	}
}

func TestCombineCollapseIgnoresNeverCombiningJobs(t *testing.T) {
	e := New(Config{})
	for i := 0; i < 10; i++ {
		s := balanced(i, 4)
		s.Sent = 100
		s.Combined = 0 // combiner never earned anything: mean below floor
		if evs := e.Observe(s); len(evs) != 0 {
			t.Fatalf("no-combine job fired at step %d: %v", i, evs)
		}
	}
}

func TestTrafficHotspotLane(t *testing.T) {
	e := New(Config{})
	s := balanced(0, 4)
	for i := range s.Traffic {
		for j := range s.Traffic[i] {
			s.Traffic[i][j] = 1
		}
	}
	s.Traffic[1][2] = 84 // one lane carries 84 of 99 messages
	evs := e.Observe(s)
	if len(evs) != 1 || evs[0].Kind != KindTrafficHotspot {
		t.Fatalf("expected one traffic-hotspot event, got %v", evs)
	}
	ev := evs[0]
	if ev.Worker != 2 || ev.Peer != 1 {
		t.Errorf("lane endpoints = worker %d peer %d, want 2 and 1", ev.Worker, ev.Peer)
	}
	if ev.Severity != SevCritical { // 84/99 ≈ 0.85 ≥ 0.75
		t.Errorf("severity = %s, want critical", ev.Severity)
	}
}

func TestTrafficHotspotReceiverColumn(t *testing.T) {
	e := New(Config{})
	s := balanced(0, 4)
	for i := range s.Traffic {
		for j := range s.Traffic[i] {
			s.Traffic[i][j] = 0
		}
		s.Traffic[i][3] = 25 // everyone floods partition 3
	}
	evs := e.Observe(s)
	if len(evs) != 1 || evs[0].Worker != 3 || evs[0].Peer != -1 {
		t.Fatalf("expected receiver-column hotspot on worker 3, got %v", evs)
	}
}

func TestTrafficHotspotIgnoresTinyTraffic(t *testing.T) {
	e := New(Config{HotspotMinMessages: 64})
	s := balanced(0, 4)
	for i := range s.Traffic {
		for j := range s.Traffic[i] {
			s.Traffic[i][j] = 0
		}
	}
	s.Traffic[0][1] = 10 // 100% share but only 10 messages
	if evs := e.Observe(s); len(evs) != 0 {
		t.Fatalf("tiny traffic fired: %v", evs)
	}
}

func TestFaultSpike(t *testing.T) {
	e := New(Config{})
	counts := []int64{0, 0, 1, 3}
	var evs []Event
	for i, c := range counts {
		s := balanced(i, 4)
		s.CorruptArtifacts = c
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 1 || evs[0].Kind != KindFaultSpike {
		t.Fatalf("expected one fault-spike event, got %v", evs)
	}
	if evs[0].Value != 3 || evs[0].Superstep != 3 {
		t.Errorf("event = %+v", evs[0])
	}
}

func TestRecoveryStorm(t *testing.T) {
	e := New(Config{})
	recs := []int{0, 1, 2}
	var evs []Event
	for i, rc := range recs {
		s := balanced(i, 4)
		s.Recoveries = rc
		evs = append(evs, e.Observe(s)...)
	}
	if len(evs) != 1 || evs[0].Kind != KindRecoveryStorm {
		t.Fatalf("expected one recovery-storm event, got %v", evs)
	}
	if e.Counts()[KindRecoveryStorm] != 1 {
		t.Errorf("counts = %v", e.Counts())
	}
}

func TestEvaluateSkew(t *testing.T) {
	s := balanced(0, 4)
	s.ComputeSkew = 2.0
	s.Straggler = 1
	v := EvaluateSkew(s, 1.5)
	if !v.Triggered || v.Dimension != "compute" || v.Worker != 1 || v.Skew != 2.0 {
		t.Errorf("compute verdict = %+v", v)
	}

	// Message dimension: compute balanced, worker 2 sends the most.
	s = balanced(0, 4)
	s.MessageSkew = 3.0
	s.Workers[2].Sent = 500
	v = EvaluateSkew(s, 1.5)
	if !v.Triggered || v.Dimension != "message" || v.Worker != 2 || v.Skew != 3.0 {
		t.Errorf("message verdict = %+v", v)
	}

	// Ties pick the first maximum in worker order (determinism).
	s = balanced(0, 4)
	s.MessageSkew = 3.0
	v = EvaluateSkew(s, 1.5)
	if v.Worker != 0 {
		t.Errorf("tie verdict picked worker %d, want 0", v.Worker)
	}

	if v := EvaluateSkew(balanced(0, 4), 1.5); v.Triggered {
		t.Errorf("balanced sample triggered: %+v", v)
	}
	if v := EvaluateSkew(s, 0); v.Triggered {
		t.Errorf("zero threshold triggered: %+v", v)
	}
}
