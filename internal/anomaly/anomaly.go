// Package anomaly is Graft's detection layer: a set of pluggable
// detectors evaluated once per superstep over a sliding window of the
// engine's folded telemetry (skew indicators, straggler identity,
// message counters, the inter-partition traffic matrix, and the
// cumulative resilience counters). Detectors emit structured Events —
// kind, severity, offending worker, evidence values and a suggested
// action — that flow into pregel.Stats, the metrics registry and
// JSONL stream, the GUI profiler page, and `graft run` output.
//
// The package is deliberately dependency-free so the pregel engine can
// import it: the engine feeds Samples at each barrier, and the
// rebalancer consumes the same one-superstep skew model (EvaluateSkew)
// the straggler/skew detectors are built on, so detection and
// mitigation share one definition of "skewed".
//
// Detection is coordinator-side only — one Observe call per superstep
// over a handful of floats plus an optional W×W matrix scan — so its
// cost is independent of graph size and stays far inside the <5%
// observability overhead budget (graft-bench -profiler measures it).
package anomaly

import "fmt"

// Kind identifies a detector / event family.
type Kind string

const (
	// KindStragglerPersistence: the same worker has been the superstep
	// straggler, with hot compute skew, for several consecutive steps.
	KindStragglerPersistence Kind = "straggler-persistence"
	// KindSkewTrend: compute or message skew rising monotonically
	// across the whole window.
	KindSkewTrend Kind = "skew-trend"
	// KindCombineCollapse: the combine ratio dropped to a fraction of
	// its window mean — the combiner stopped earning its keep.
	KindCombineCollapse Kind = "combine-collapse"
	// KindTrafficHotspot: one lane, sender row, or receiver column of
	// the traffic matrix carries an outsized share of the superstep's
	// messages.
	KindTrafficHotspot Kind = "traffic-hotspot"
	// KindFaultSpike: the cumulative corrupt-artifact counters (corrupt
	// log segments, corrupt checkpoints, quarantined records) jumped
	// within the window.
	KindFaultSpike Kind = "fault-spike"
	// KindRecoveryStorm: several recoveries within the window.
	KindRecoveryStorm Kind = "recovery-storm"
)

// Severity grades an event.
type Severity string

const (
	SevInfo     Severity = "info"
	SevWarn     Severity = "warn"
	SevCritical Severity = "critical"
)

// Event is one structured anomaly: what was detected, where, and the
// evidence behind the verdict.
type Event struct {
	Kind      Kind     `json:"kind"`
	Severity  Severity `json:"severity"`
	Superstep int      `json:"superstep"`
	// Worker is the offending worker/partition, or -1 for job-wide
	// events (combine collapse, fault spikes, recovery storms).
	Worker int `json:"worker"`
	// Peer is the second endpoint for lane-level events (the sender of
	// a hot lane whose receiver is Worker); -1 otherwise.
	Peer int `json:"peer"`
	// Value is the primary evidence value (skew ratio, traffic share,
	// counter delta) and Threshold what it was compared against.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Window is how many supersteps of evidence back the verdict.
	Window int `json:"window"`
	// Detail is the human-readable evidence line; Action the suggested
	// mitigation.
	Detail string `json:"detail"`
	Action string `json:"action"`
}

// String renders an event as the CLI prints it.
func (e Event) String() string {
	where := "job"
	if e.Worker >= 0 {
		where = fmt.Sprintf("worker %d", e.Worker)
	}
	return fmt.Sprintf("[%s] %s @superstep %d (%s): %s", e.Severity, e.Kind, e.Superstep, where, e.Detail)
}

// WorkerSample is one worker's share of a superstep sample.
type WorkerSample struct {
	Worker       int
	ComputeNanos int64
	Sent         int64
}

// Sample is the telemetry of one finished superstep, as the engine
// folds it at the barrier. Counter fields ending in "cumulative" hold
// job-lifetime totals; detectors difference them across the window.
type Sample struct {
	Superstep   int
	ComputeSkew float64
	MessageSkew float64
	// Straggler is the slowest worker this superstep, -1 if unknown.
	Straggler int
	// Sent/Received/Combined are this superstep's message counters
	// (Sent is pre-combine).
	Sent, Received, Combined int64
	// Workers is the per-worker breakdown, indexed by worker ID.
	Workers []WorkerSample
	// Traffic is the numWorkers×numWorkers message-flow matrix
	// (Traffic[s][d] = messages partition s sent to partition d,
	// pre-combine); nil when the engine does not capture it.
	Traffic [][]int64
	// Recoveries is the cumulative recovery count so far.
	Recoveries int
	// CorruptArtifacts is the cumulative count of corrupt or
	// quarantined storage artifacts (log segments, checkpoints,
	// dropped records) observed so far.
	CorruptArtifacts int64
}

// DefaultWindow is the sliding-window size used when Config.Window is
// not positive.
const DefaultWindow = 8

// Config tunes the detector catalog. The zero value gets defaults from
// withDefaults; thresholds are documented on each field.
type Config struct {
	// Window is the sliding-window size in supersteps (default 8).
	Window int
	// StragglerRuns is how many consecutive supersteps the same worker
	// must be the hot straggler before straggler-persistence fires
	// (default 3).
	StragglerRuns int
	// SkewHot is the skew ratio (max/mean) at which a worker counts as
	// hot for the straggler/trend detectors (default 1.5, matching the
	// GUI dashboard's threshold).
	SkewHot float64
	// HotspotShare is the fraction of a superstep's traffic a single
	// lane/row/column must carry to count as a hotspot (default 0.5).
	// An axis must also carry at least twice its balanced share, so
	// small clusters cannot trip the detector on even traffic.
	HotspotShare float64
	// HotspotMinMessages is the minimum superstep traffic before the
	// hotspot detector looks at shares at all (default 64).
	HotspotMinMessages int64
	// CombineDropRatio: combine-collapse fires when the current combine
	// ratio falls below CombineDropRatio × the window mean (default
	// 0.5), provided the mean was at least CombineFloor (default 0.2).
	CombineDropRatio float64
	CombineFloor     float64
	// FaultSpikeMin is the corrupt-artifact delta within one window
	// that counts as a spike (default 2).
	FaultSpikeMin int64
	// StormRecoveries is the recovery count within one window that
	// counts as a storm (default 2).
	StormRecoveries int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.StragglerRuns <= 0 {
		c.StragglerRuns = 3
	}
	if c.SkewHot <= 0 {
		c.SkewHot = 1.5
	}
	if c.HotspotShare <= 0 {
		c.HotspotShare = 0.5
	}
	if c.HotspotMinMessages <= 0 {
		c.HotspotMinMessages = 64
	}
	if c.CombineDropRatio <= 0 {
		c.CombineDropRatio = 0.5
	}
	if c.CombineFloor <= 0 {
		c.CombineFloor = 0.2
	}
	if c.FaultSpikeMin <= 0 {
		c.FaultSpikeMin = 2
	}
	if c.StormRecoveries <= 0 {
		c.StormRecoveries = 2
	}
	return c
}

// Detector is one pluggable check, called once per Observe with the
// current window (oldest sample first, newest last — never empty).
// Detectors may keep state across calls (streaks, emission gates);
// they run on the engine's coordinator goroutine, never concurrently.
type Detector interface {
	Name() string
	Observe(win []Sample, cfg Config) []Event
}

// Engine evaluates the detector catalog over a sliding window of
// samples. Not safe for concurrent use: feed it from one goroutine
// (the pregel engine calls Observe at the barrier).
type Engine struct {
	cfg    Config
	win    []Sample
	dets   []Detector
	events []Event
	counts map[Kind]int
}

// New builds an engine with the standard detector catalog and the
// given thresholds (zero fields get defaults).
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults(), counts: map[Kind]int{}}
	e.dets = []Detector{
		&stragglerPersistence{worker: -1},
		&skewTrend{lastEmit: neverEmitted},
		&combineCollapse{lastEmit: neverEmitted},
		&trafficHotspot{lastEmit: neverEmitted},
		&faultSpike{lastEmit: neverEmitted},
		&recoveryStorm{lastEmit: neverEmitted},
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Observe folds one superstep sample into the window and runs every
// detector, returning the events emitted at this superstep (nil when
// quiet).
func (e *Engine) Observe(s Sample) []Event {
	e.win = append(e.win, s)
	if len(e.win) > e.cfg.Window {
		e.win = e.win[1:]
	}
	var out []Event
	for _, d := range e.dets {
		out = append(out, d.Observe(e.win, e.cfg)...)
	}
	if len(out) > 0 {
		e.events = append(e.events, out...)
		for _, ev := range out {
			e.counts[ev.Kind]++
		}
	}
	return out
}

// Events returns every event emitted so far, in superstep order.
func (e *Engine) Events() []Event { return e.events }

// Counts returns the per-kind event totals (the map is live; callers
// must not mutate it).
func (e *Engine) Counts() map[Kind]int { return e.counts }
