package anomaly

import "fmt"

// neverEmitted initializes an emission gate so the first qualifying
// superstep always fires regardless of window size.
const neverEmitted = -1 << 30

// stragglerPersistence fires when the same worker stays the hot
// straggler — EvaluateSkew's compute verdict, the trigger the
// rebalancer shares — for StragglerRuns consecutive supersteps. It
// re-fires every StragglerRuns steps while the streak holds, escalating
// to critical at twice the run length: a persistent straggler that the
// rebalancer (if enabled) has not managed to dissolve.
type stragglerPersistence struct {
	worker int // worker of the current streak
	run    int // its length in supersteps
}

func (d *stragglerPersistence) Name() string { return string(KindStragglerPersistence) }

func (d *stragglerPersistence) Observe(win []Sample, cfg Config) []Event {
	s := win[len(win)-1]
	v := EvaluateSkew(s, cfg.SkewHot)
	if !v.Triggered || v.Dimension != "compute" {
		d.worker, d.run = -1, 0
		return nil
	}
	if v.Worker != d.worker {
		d.worker, d.run = v.Worker, 0
	}
	d.run++
	if d.run < cfg.StragglerRuns || (d.run-cfg.StragglerRuns)%cfg.StragglerRuns != 0 {
		return nil
	}
	sev := SevWarn
	if d.run >= 2*cfg.StragglerRuns {
		sev = SevCritical
	}
	return []Event{{
		Kind: KindStragglerPersistence, Severity: sev, Superstep: s.Superstep,
		Worker: v.Worker, Peer: -1,
		Value: v.Skew, Threshold: cfg.SkewHot, Window: d.run,
		Detail: fmt.Sprintf("worker %d slowest for %d consecutive supersteps (compute skew %.2f)",
			v.Worker, d.run, v.Skew),
		Action: "enable or lower -rebalance-skew so the adaptive repartitioner migrates load off the straggler",
	}}
}

// skewTrend fires when compute or message skew has risen strictly
// monotonically across the whole window and ends hot: imbalance that is
// getting worse, not a one-superstep blip. One event per dimension,
// re-armed after a full window.
type skewTrend struct{ lastEmit int }

func (d *skewTrend) Name() string { return string(KindSkewTrend) }

func (d *skewTrend) Observe(win []Sample, cfg Config) []Event {
	if len(win) < cfg.Window {
		return nil
	}
	s := win[len(win)-1]
	if s.Superstep-d.lastEmit < cfg.Window {
		return nil
	}
	var evs []Event
	for _, dim := range []struct {
		name string
		get  func(Sample) float64
	}{
		{"compute", func(s Sample) float64 { return s.ComputeSkew }},
		{"message", func(s Sample) float64 { return s.MessageSkew }},
	} {
		rising := dim.get(win[len(win)-1]) >= cfg.SkewHot
		for i := 1; rising && i < len(win); i++ {
			rising = dim.get(win[i]) > dim.get(win[i-1])
		}
		if !rising {
			continue
		}
		evs = append(evs, Event{
			Kind: KindSkewTrend, Severity: SevWarn, Superstep: s.Superstep,
			Worker: s.Straggler, Peer: -1,
			Value: dim.get(s), Threshold: cfg.SkewHot, Window: len(win),
			Detail: fmt.Sprintf("%s skew rose monotonically over %d supersteps to %.2f",
				dim.name, len(win), dim.get(s)),
			Action: "inspect the per-worker breakdown for the growing partition; consider rebalancing or repartitioning the input",
		})
	}
	if len(evs) > 0 {
		d.lastEmit = s.Superstep
	}
	return evs
}

// combineCollapse fires when the combine ratio (combined/sent) of the
// newest superstep drops below CombineDropRatio × the window mean,
// given the combiner had been earning at least CombineFloor: a phase
// change where sender-side combining stopped helping, usually because
// the fan-in pattern changed.
type combineCollapse struct{ lastEmit int }

func (d *combineCollapse) Name() string { return string(KindCombineCollapse) }

func (d *combineCollapse) Observe(win []Sample, cfg Config) []Event {
	s := win[len(win)-1]
	if s.Sent == 0 || s.Superstep-d.lastEmit < cfg.Window {
		return nil
	}
	var sum float64
	n := 0
	for _, p := range win[:len(win)-1] {
		if p.Sent == 0 {
			continue
		}
		sum += float64(p.Combined) / float64(p.Sent)
		n++
	}
	if n < 3 {
		return nil // not enough history to call a mean
	}
	mean := sum / float64(n)
	cur := float64(s.Combined) / float64(s.Sent)
	if mean < cfg.CombineFloor || cur >= mean*cfg.CombineDropRatio {
		return nil
	}
	d.lastEmit = s.Superstep
	return []Event{{
		Kind: KindCombineCollapse, Severity: SevWarn, Superstep: s.Superstep,
		Worker: -1, Peer: -1,
		Value: cur, Threshold: mean * cfg.CombineDropRatio, Window: n,
		Detail: fmt.Sprintf("combine ratio fell to %.2f against a window mean of %.2f", cur, mean),
		Action: "the algorithm phase stopped producing combinable messages; expect higher message volume and consider phase-aware combining",
	}}
}

// trafficHotspot fires when one cell, sender row, or receiver column of
// the traffic matrix carries at least HotspotShare of the superstep's
// messages and at least twice its balanced share. At most one event per
// superstep, preferring the most specific axis (lane, then receiver
// column, then sender row).
type trafficHotspot struct{ lastEmit int }

func (d *trafficHotspot) Name() string { return string(KindTrafficHotspot) }

func (d *trafficHotspot) Observe(win []Sample, cfg Config) []Event {
	s := win[len(win)-1]
	w := len(s.Traffic)
	if w < 2 || s.Superstep-d.lastEmit < cfg.Window {
		return nil
	}
	var total, maxLane int64
	ls, ld := -1, -1
	rows := make([]int64, w)
	cols := make([]int64, w)
	for i := range s.Traffic {
		for j, n := range s.Traffic[i] {
			total += n
			rows[i] += n
			cols[j] += n
			if n > maxLane {
				maxLane, ls, ld = n, i, j
			}
		}
	}
	if total < cfg.HotspotMinMessages {
		return nil
	}
	hot := func(n int64, fair float64) (float64, bool) {
		share := float64(n) / float64(total)
		return share, share >= cfg.HotspotShare && share >= 2*fair
	}
	emit := func(worker, peer int, share float64, detail string) []Event {
		d.lastEmit = s.Superstep
		sev := SevWarn
		if share >= 0.75 {
			sev = SevCritical
		}
		return []Event{{
			Kind: KindTrafficHotspot, Severity: sev, Superstep: s.Superstep,
			Worker: worker, Peer: peer,
			Value: share, Threshold: cfg.HotspotShare, Window: 1,
			Detail: detail,
			Action: "check the heatmap for the hot partition; a hub vertex or skewed hash may need a combiner or custom partitioning",
		}}
	}
	fairAxis := 1 / float64(w)
	if share, ok := hot(maxLane, fairAxis/float64(w)); ok {
		return emit(ld, ls, share, fmt.Sprintf(
			"lane %d→%d carries %.0f%% of this superstep's %d messages", ls, ld, share*100, total))
	}
	for j, n := range cols {
		if share, ok := hot(n, fairAxis); ok {
			return emit(j, -1, share, fmt.Sprintf(
				"partition %d receives %.0f%% of this superstep's %d messages", j, share*100, total))
		}
	}
	for i, n := range rows {
		if share, ok := hot(n, fairAxis); ok {
			return emit(i, -1, share, fmt.Sprintf(
				"partition %d sends %.0f%% of this superstep's %d messages", i, share*100, total))
		}
	}
	return nil
}

// faultSpike fires when the cumulative corrupt-artifact counter jumped
// by FaultSpikeMin or more within one window: storage is degrading
// faster than background noise.
type faultSpike struct{ lastEmit int }

func (d *faultSpike) Name() string { return string(KindFaultSpike) }

func (d *faultSpike) Observe(win []Sample, cfg Config) []Event {
	if len(win) < 2 {
		return nil
	}
	s := win[len(win)-1]
	delta := s.CorruptArtifacts - win[0].CorruptArtifacts
	if delta < cfg.FaultSpikeMin || s.Superstep-d.lastEmit < cfg.Window {
		return nil
	}
	d.lastEmit = s.Superstep
	return []Event{{
		Kind: KindFaultSpike, Severity: SevCritical, Superstep: s.Superstep,
		Worker: -1, Peer: -1,
		Value: float64(delta), Threshold: float64(cfg.FaultSpikeMin), Window: len(win),
		Detail: fmt.Sprintf("%d corrupt/quarantined storage artifacts within %d supersteps", delta, len(win)),
		Action: "inspect the DFS quarantine and outbox-log health; replace the failing replica before recovery degrades to full restarts",
	}}
}

// recoveryStorm fires when StormRecoveries or more recoveries happened
// within one window: the job is thrashing between failure and recovery
// instead of making progress.
type recoveryStorm struct{ lastEmit int }

func (d *recoveryStorm) Name() string { return string(KindRecoveryStorm) }

func (d *recoveryStorm) Observe(win []Sample, cfg Config) []Event {
	if len(win) < 2 {
		return nil
	}
	s := win[len(win)-1]
	delta := s.Recoveries - win[0].Recoveries
	if delta < cfg.StormRecoveries || s.Superstep-d.lastEmit < cfg.Window {
		return nil
	}
	d.lastEmit = s.Superstep
	return []Event{{
		Kind: KindRecoveryStorm, Severity: SevCritical, Superstep: s.Superstep,
		Worker: -1, Peer: -1,
		Value: float64(delta), Threshold: float64(cfg.StormRecoveries), Window: len(win),
		Detail: fmt.Sprintf("%d recoveries within %d supersteps", delta, len(win)),
		Action: "raise -max-recoveries only after finding the failing worker; repeated rollbacks suggest a deterministic crash or bad host",
	}}
}
