package graphgen

import (
	"testing"
	"testing/quick"

	"graft/internal/pregel"
)

func TestWebGraphShape(t *testing.T) {
	g := WebGraph(5000, 8, 1)
	if g.NumVertices() != 5000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if avg < 4 || avg > 12 {
		t.Errorf("average out-degree %.2f outside [4, 12]", avg)
	}
	// The funnel: vertex 0 has exactly one out-edge and a large
	// in-degree.
	if g.Vertex(0).NumEdges() != 1 || g.Vertex(0).Edges()[0].Target != 1 {
		t.Errorf("funnel vertex 0 edges = %v", g.Vertex(0).Edges())
	}
	inDeg := map[pregel.VertexID]int{}
	g.Each(func(v *pregel.Vertex) {
		for _, e := range v.Edges() {
			inDeg[e.Target]++
		}
	})
	if inDeg[0] < 1000 {
		t.Errorf("funnel in-degree %d, want heavy", inDeg[0])
	}
	// Heavy tail: the max in-degree dwarfs the average.
	max := 0
	for _, d := range inDeg {
		if d > max {
			max = d
		}
	}
	if float64(max) < 10*avg {
		t.Errorf("max in-degree %d not heavy-tailed (avg %.1f)", max, avg)
	}
	// No self-loops.
	g.Each(func(v *pregel.Vertex) {
		for _, e := range v.Edges() {
			if e.Target == v.ID() {
				t.Fatalf("self-loop at %d", v.ID())
			}
		}
	})
}

func TestWebGraphDeterministic(t *testing.T) {
	a, b := WebGraph(500, 5, 7), WebGraph(500, 5, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	other := WebGraph(500, 5, 8)
	if a.NumEdges() == other.NumEdges() && sameAdjacency(a, other) {
		t.Error("different seeds produced identical graphs")
	}
	if !sameAdjacency(a, b) {
		t.Error("same seed produced different graphs")
	}
}

func sameAdjacency(a, b *pregel.Graph) bool {
	same := true
	a.Each(func(v *pregel.Vertex) {
		w := b.Vertex(v.ID())
		if w == nil || w.NumEdges() != v.NumEdges() {
			same = false
			return
		}
		for i, e := range v.Edges() {
			if w.Edges()[i].Target != e.Target {
				same = false
				return
			}
		}
	})
	return same
}

func TestSocialGraphSymmetricWeights(t *testing.T) {
	g := SocialGraph(2000, 6, 3)
	checked := 0
	g.Each(func(v *pregel.Vertex) {
		for _, e := range v.Edges() {
			w := e.Value.(*pregel.DoubleValue).Get()
			if w <= 0 || w > 1.01 {
				t.Fatalf("weight %v out of range", w)
			}
			rev, ok := g.Vertex(e.Target).EdgeValue(v.ID())
			if !ok {
				t.Fatalf("edge %d->%d has no reverse", v.ID(), e.Target)
			}
			if rev.(*pregel.DoubleValue).Get() != w {
				t.Fatalf("asymmetric weight on clean graph: %d<->%d", v.ID(), e.Target)
			}
			checked++
		}
	})
	if checked == 0 {
		t.Fatal("no edges")
	}
}

func TestRegularBipartiteIsRegularAndBipartite(t *testing.T) {
	g := RegularBipartite(1000, 3)
	if g.NumVertices() != 1000 || g.NumEdges() != 3000 {
		t.Fatalf("size %d/%d", g.NumVertices(), g.NumEdges())
	}
	half := pregel.VertexID(500)
	g.Each(func(v *pregel.Vertex) {
		if v.NumEdges() != 3 {
			t.Fatalf("vertex %d degree %d, want 3", v.ID(), v.NumEdges())
		}
		left := v.ID() < half
		for _, e := range v.Edges() {
			if (e.Target < half) == left {
				t.Fatalf("edge %d->%d within one side", v.ID(), e.Target)
			}
		}
	})
}

func TestRegularBipartiteOddAndTinySizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		g := RegularBipartite(n, 3)
		if g.NumVertices() == 0 {
			t.Errorf("n=%d: empty graph", n)
		}
	}
	// Degree clamped to side size.
	g := RegularBipartite(4, 99)
	g.Each(func(v *pregel.Vertex) {
		if v.NumEdges() > 2 {
			t.Errorf("degree %d with side size 2", v.NumEdges())
		}
	})
}

func TestCorruptWeights(t *testing.T) {
	g := SocialGraph(1000, 6, 3)
	n := CorruptWeights(g, 0.1, 5)
	if n == 0 {
		t.Fatal("nothing corrupted")
	}
	// Count asymmetric pairs; should roughly match the return value.
	asym := 0
	g.Each(func(v *pregel.Vertex) {
		for _, e := range v.Edges() {
			if e.Target <= v.ID() {
				continue
			}
			w := e.Value.(*pregel.DoubleValue).Get()
			rev, _ := g.Vertex(e.Target).EdgeValue(v.ID())
			if rev.(*pregel.DoubleValue).Get() != w {
				asym++
			}
		}
	})
	if asym != n {
		t.Errorf("reported %d corruptions, observed %d asymmetric pairs", n, asym)
	}
	if CorruptWeights(g, 0, 5) != 0 {
		t.Error("frac=0 corrupted something")
	}
}

func TestPlantPreferenceCycle(t *testing.T) {
	g := SocialGraph(100, 5, 1)
	before := g.NumVertices()
	ids := PlantPreferenceCycle(g)
	if g.NumVertices() != before+3 {
		t.Fatalf("vertices %d, want %d", g.NumVertices(), before+3)
	}
	// Each planted vertex's max-weight neighbor is the next in the
	// cycle, so preferences rotate.
	for i := 0; i < 3; i++ {
		v := g.Vertex(ids[i])
		bestW, bestT := -1.0, pregel.VertexID(-1)
		for _, e := range v.Edges() {
			if w := e.Value.(*pregel.DoubleValue).Get(); w > bestW {
				bestW, bestT = w, e.Target
			}
		}
		if bestT != ids[(i+1)%3] {
			t.Errorf("vertex %d prefers %d, want %d", ids[i], bestT, ids[(i+1)%3])
		}
	}
}

func TestDatasetsBuildAndReportSizes(t *testing.T) {
	for _, ds := range Table1Datasets(0.001, 1) {
		v, e := ds.Stats()
		if v <= 0 || e <= 0 {
			t.Errorf("%s: empty dataset (%d, %d)", ds.Name, v, e)
		}
		if ds.PaperVertices <= 0 || ds.PaperEdges <= 0 {
			t.Errorf("%s: paper sizes missing", ds.Name)
		}
	}
	for _, ds := range Table2Datasets(0.00001, 1) {
		v, e := ds.Stats()
		if v <= 0 || e <= 0 {
			t.Errorf("%s: empty dataset (%d, %d)", ds.Name, v, e)
		}
	}
}

func TestFindDataset(t *testing.T) {
	ds := Table1Datasets(0.001, 1)
	if _, err := FindDataset(ds, "web-BS"); err != nil {
		t.Error(err)
	}
	if _, err := FindDataset(ds, "nope"); err == nil {
		t.Error("expected error")
	}
}

// Property: RegularBipartite is d-regular for any n, d.
func TestRegularBipartitePropertyRegular(t *testing.T) {
	f := func(n uint8, d uint8) bool {
		g := RegularBipartite(int(n), int(d%8)+1)
		want := int(d%8) + 1
		half := int(n) / 2
		if half < 1 {
			half = 1
		}
		if want > half {
			want = half
		}
		ok := true
		g.Each(func(v *pregel.Vertex) {
			if v.NumEdges() != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
