package graphgen

import (
	"fmt"

	"graft/internal/pregel"
)

// Dataset is a named, lazily built stand-in for one of the paper's
// graphs.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// PaperVertices / PaperEdges are the original sizes (directed edge
	// counts), for the Table 1 / Table 2 reports.
	PaperVertices int64
	PaperEdges    int64
	// Description matches the paper's table row.
	Description string
	// Build generates the scaled synthetic stand-in.
	Build func() *pregel.Graph
}

// Stats builds the dataset and returns its actual synthetic size.
func (d *Dataset) Stats() (vertices, edges int64) {
	g := d.Build()
	return g.NumVertices(), g.NumEdges()
}

func scaled(n int64, scale float64) int {
	s := int(float64(n) * scale)
	if s < 16 {
		s = 16
	}
	return s
}

// Table1Datasets returns the demonstration datasets of Table 1 of the
// paper at the given scale (1.0 = original vertex counts).
func Table1Datasets(scale float64, seed int64) []Dataset {
	return []Dataset{
		{
			Name:          "web-BS",
			PaperVertices: 685_000,
			PaperEdges:    7_600_000,
			Description:   "A web graph from 2002",
			Build: func() *pregel.Graph {
				return WebGraph(scaled(685_000, scale), 11, seed)
			},
		},
		{
			Name:          "soc-Epinions",
			PaperVertices: 76_000,
			PaperEdges:    500_000,
			Description:   `Epinions.com "who trusts whom" network`,
			Build: func() *pregel.Graph {
				return SocialGraph(scaled(76_000, scale), 7, seed+1)
			},
		},
		{
			Name:          "bipartite-1M-3M",
			PaperVertices: 1_000_000,
			PaperEdges:    6_000_000,
			Description:   "A 3-regular bipartite graph",
			Build: func() *pregel.Graph {
				return RegularBipartite(scaled(1_000_000, scale), 3)
			},
		},
	}
}

// Table2Datasets returns the performance datasets of Table 2 of the
// paper at the given scale.
func Table2Datasets(scale float64, seed int64) []Dataset {
	return []Dataset{
		{
			Name:          "sk-2005",
			PaperVertices: 51_000_000,
			PaperEdges:    1_900_000_000,
			Description:   "Web graph of the .sk domain from 2005",
			Build: func() *pregel.Graph {
				return WebGraph(scaled(51_000_000, scale), 12, seed+2)
			},
		},
		{
			Name:          "twitter",
			PaperVertices: 42_000_000,
			PaperEdges:    1_500_000_000,
			Description:   `Twitter "who is followed by who" network`,
			Build: func() *pregel.Graph {
				return WebGraph(scaled(42_000_000, scale), 12, seed+3)
			},
		},
		{
			Name:          "bipartite-2B-6B",
			PaperVertices: 2_000_000_000,
			PaperEdges:    12_000_000_000,
			Description:   "A 3-regular bipartite graph",
			Build: func() *pregel.Graph {
				return RegularBipartite(scaled(2_000_000_000, scale), 3)
			},
		},
	}
}

// FindDataset returns the named dataset from ds.
func FindDataset(ds []Dataset, name string) (*Dataset, error) {
	for i := range ds {
		if ds[i].Name == name {
			return &ds[i], nil
		}
	}
	return nil, fmt.Errorf("graphgen: unknown dataset %q", name)
}
