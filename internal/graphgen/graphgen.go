// Package graphgen generates the synthetic datasets that stand in for
// the paper's graphs (Tables 1 and 2). The originals (web-BS,
// soc-Epinions, sk-2005, twitter) are external corpora; the evaluation
// only needs their shapes — skewed web/social degree distributions,
// exact 3-regular bipartite structure, and weighted undirected graphs
// with a planted fraction of asymmetric weights — so seeded generators
// reproduce those shapes at configurable scale.
package graphgen

import (
	"math/rand"

	"graft/internal/pregel"
)

// WebGraph generates a directed graph with a heavy-tailed in-degree
// distribution via preferential attachment, standing in for web crawls
// (web-BS, sk-2005). Vertex 0 is a "funnel": it accumulates a large
// share of in-links but has a single out-edge, the hub shape that
// makes the random-walk scenario's 16-bit counters overflow.
func WebGraph(n int, avgOutDeg int, seed int64) *pregel.Graph {
	if n < 2 {
		n = 2
	}
	if avgOutDeg < 1 {
		avgOutDeg = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := pregel.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	// targets holds one entry per received edge, so sampling from it
	// is preferential attachment.
	targets := make([]pregel.VertexID, 0, n*avgOutDeg)
	targets = append(targets, 0, 1)
	addEdge := func(from, to pregel.VertexID) {
		if from == to {
			return
		}
		g.Vertex(from).AddEdge(pregel.Edge{Target: to})
		targets = append(targets, to)
	}
	// The funnel: vertex 0 links only to vertex 1.
	addEdge(0, 1)
	for i := 1; i < n; i++ {
		from := pregel.VertexID(i)
		deg := 1 + rng.Intn(2*avgOutDeg-1) // mean avgOutDeg
		for k := 0; k < deg; k++ {
			var to pregel.VertexID
			if rng.Float64() < 0.25 {
				// A quarter of links go to the funnel, concentrating
				// walkers there.
				to = 0
			} else {
				to = targets[rng.Intn(len(targets))]
			}
			addEdge(from, to)
		}
		// The new vertex joins the target pool so later vertices can
		// link to it — without this every draw collapses onto the seed
		// pair {0, 1} and the "web" degenerates into a two-hub star.
		targets = append(targets, from)
	}
	g.SortAllEdges()
	return g
}

// WebHostGraph generates a directed web graph with host-level link
// locality, the structure that dominates real crawls (web-BS,
// sk-2005): pages of one host occupy a contiguous ID block (crawl
// order), intraFrac of each page's out-links stay on its own host
// (uniform over its earlier pages), and the rest follow global
// preferential attachment — the heavy-tailed hub structure of
// WebGraph. Host sizes are exponentially distributed around avgHost,
// so a few large hosts coexist with many small ones.
//
// WebGraph's pure preferential attachment has no community structure
// at all, so no placement can beat hashing on it by much; real web
// graphs are ~80% intra-host, which is exactly what locality-aware
// partitioning exploits. The partition experiments use this generator
// for that reason.
func WebHostGraph(n, avgHost, avgOutDeg int, intraFrac float64, seed int64) *pregel.Graph {
	if n < 2 {
		n = 2
	}
	if avgHost < 1 {
		avgHost = 1
	}
	if avgOutDeg < 1 {
		avgOutDeg = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := pregel.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	// global holds one entry per received global link plus one per
	// page, so sampling from it is preferential attachment.
	global := []pregel.VertexID{0}
	addEdge := func(from, to pregel.VertexID) {
		if from != to {
			g.Vertex(from).AddEdge(pregel.Edge{Target: to})
		}
	}
	for lo := 0; lo < n; {
		size := 1 + int(rng.ExpFloat64()*float64(avgHost))
		hi := lo + size
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			from := pregel.VertexID(i)
			if i > 0 {
				deg := 1 + rng.Intn(2*avgOutDeg-1) // mean avgOutDeg
				for k := 0; k < deg; k++ {
					if i > lo && rng.Float64() < intraFrac {
						addEdge(from, pregel.VertexID(lo+rng.Intn(i-lo)))
					} else {
						to := global[rng.Intn(len(global))]
						addEdge(from, to)
						global = append(global, to)
					}
				}
			}
			global = append(global, from)
		}
		lo = hi
	}
	g.SortAllEdges()
	return g
}

// SocialGraph generates an undirected weighted graph standing in for
// the soc-Epinions trust network: preferential attachment for the
// heavy tail, symmetric directed edges, uniform random weights in
// (0, 1].
func SocialGraph(n int, avgDeg int, seed int64) *pregel.Graph {
	if n < 2 {
		n = 2
	}
	if avgDeg < 2 {
		avgDeg = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := pregel.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	targets := []pregel.VertexID{0}
	for i := 1; i < n; i++ {
		a := pregel.VertexID(i)
		deg := 1 + rng.Intn(avgDeg-1)
		for k := 0; k < deg; k++ {
			b := targets[rng.Intn(len(targets))]
			if a == b || g.Vertex(a).HasEdge(b) {
				continue
			}
			w := rng.Float64() + 1.0/float64(n) // avoid exact zero
			g.Vertex(a).AddEdge(pregel.Edge{Target: b, Value: pregel.NewDouble(w)})
			g.Vertex(b).AddEdge(pregel.Edge{Target: a, Value: pregel.NewDouble(w)})
			targets = append(targets, b)
		}
		targets = append(targets, a)
	}
	g.SortAllEdges()
	return g
}

// RegularBipartite generates an undirected d-regular bipartite graph
// with n vertices (n/2 per side), the bipartite-1M-3M /
// bipartite-2B-6B stand-in. Left vertex i connects to right vertices
// (i+k) mod half for k in [0, d): a circulant construction, so every
// vertex has degree exactly d.
func RegularBipartite(n, d int) *pregel.Graph {
	half := n / 2
	if half < 1 {
		half = 1
	}
	if d > half {
		d = half
	}
	g := pregel.NewGraph()
	for i := 0; i < 2*half; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	for i := 0; i < half; i++ {
		left := pregel.VertexID(i)
		for k := 0; k < d; k++ {
			right := pregel.VertexID(half + (i+k)%half)
			g.Vertex(left).AddEdge(pregel.Edge{Target: right})
			g.Vertex(right).AddEdge(pregel.Edge{Target: left})
		}
	}
	g.SortAllEdges()
	return g
}

// ChainedCommunities generates an undirected graph of `communities`
// dense preferential-attachment clusters linked in a chain by single
// bridge edges. Label-propagation algorithms (connected components)
// need about one superstep per hop, so the diameter — and with it the
// superstep count — scales with the chain length regardless of total
// size: the long-running, everyone-connected workload the recovery
// experiments need.
func ChainedCommunities(n, communities, avgDeg int, seed int64) *pregel.Graph {
	if communities < 1 {
		communities = 1
	}
	if n < 2*communities {
		n = 2 * communities
	}
	if avgDeg < 2 {
		avgDeg = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := pregel.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	addBoth := func(a, b pregel.VertexID) {
		if a == b || g.Vertex(a).HasEdge(b) {
			return
		}
		g.Vertex(a).AddEdge(pregel.Edge{Target: b})
		g.Vertex(b).AddEdge(pregel.Edge{Target: a})
	}
	per := n / communities
	for c := 0; c < communities; c++ {
		lo := c * per
		hi := lo + per
		if c == communities-1 {
			hi = n
		}
		// Preferential attachment within the community.
		targets := []pregel.VertexID{pregel.VertexID(lo)}
		for i := lo + 1; i < hi; i++ {
			a := pregel.VertexID(i)
			deg := 1 + rng.Intn(avgDeg-1)
			for k := 0; k < deg; k++ {
				addBoth(a, targets[rng.Intn(len(targets))])
			}
			targets = append(targets, a)
		}
		// One bridge to the previous community: the chain.
		if c > 0 {
			addBoth(pregel.VertexID(lo-1), pregel.VertexID(lo))
		}
	}
	g.SortAllEdges()
	return g
}

// CorruptWeights makes approximately frac of the undirected edges
// asymmetric by perturbing the weight of one direction — the
// input-graph error of the paper's §4.3 scenario ("a small fraction of
// the edges incorrectly have different weights on their symmetric
// edges"). It returns the number of corrupted edge pairs.
func CorruptWeights(g *pregel.Graph, frac float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	corrupted := 0
	for _, id := range g.VertexIDs() {
		v := g.Vertex(id)
		for _, e := range v.Edges() {
			if e.Target <= id { // visit each undirected pair once
				continue
			}
			if rng.Float64() >= frac {
				continue
			}
			w, ok := e.Value.(*pregel.DoubleValue)
			if !ok {
				continue
			}
			// Perturb the reverse direction only.
			rev := g.Vertex(e.Target)
			if rev != nil && rev.SetEdgeValue(id, pregel.NewDouble(w.Get()*(0.25+rng.Float64()))) {
				corrupted++
			}
		}
	}
	return corrupted
}

// PlantPreferenceCycle appends three fresh vertices forming a triangle
// whose weights rotate asymmetrically: each vertex's maximum-weight
// neighbor is the next one around the cycle, so maximum-weight
// matching livelocks on them forever. This guarantees the §4.3
// "infinite loop" symptom deterministically; random corruption alone
// only sometimes produces such a cycle. It returns the three new IDs.
func PlantPreferenceCycle(g *pregel.Graph) [3]pregel.VertexID {
	base := pregel.VertexID(0)
	for _, id := range g.VertexIDs() {
		if id >= base {
			base = id + 1
		}
	}
	ids := [3]pregel.VertexID{base, base + 1, base + 2}
	for _, id := range ids {
		g.AddVertex(id, nil)
	}
	// Directed weights: a prefers b (10 vs 1), b prefers c, c prefers a.
	high, low := 10.0, 1.0
	for i := 0; i < 3; i++ {
		a, b := g.Vertex(ids[i]), ids[(i+1)%3]
		c := ids[(i+2)%3]
		a.AddEdge(pregel.Edge{Target: b, Value: pregel.NewDouble(high)})
		a.AddEdge(pregel.Edge{Target: c, Value: pregel.NewDouble(low)})
	}
	g.SortAllEdges()
	return ids
}
