package repro

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// gcTraceDB builds a buggy-GC trace with a handful of captures, shared
// by the codegen tests.
func gcTraceDB(t *testing.T) (trace.View, *algorithms.Algorithm) {
	t.Helper()
	alg := algorithms.NewBuggyGraphColoring(42)
	g := graphgen.RegularBipartite(40, 3)
	db, err := captureRun(t, alg, g, core.DebugConfig{
		CaptureIDs: []pregel.VertexID{2, 3}, CaptureNeighbors: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, alg
}

func TestGenerateVertexTestContents(t *testing.T) {
	db, _ := gcTraceDB(t)
	s := db.Supersteps()[1] // a CONFLICT-RESOLUTION superstep
	code, err := GenerateVertexTest(db, s, 2, GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package graftrepro",
		fmt.Sprintf("TestReproduceVertex2Superstep%d", s),
		"repro.MockContext",
		fmt.Sprintf("SuperstepN:  %d", s),
		"pregel.NewDetachedVertex(2,",
		"vertex.AddEdge(",
		"comp := pregel.Computation(algorithms.NewBuggyGraphColoring(42).Compute)",
		"comp.Compute(ctx, vertex, msgs)",
		`"phase": pregel.NewText(`,
		"Assertions from the captured cluster execution",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q\n----\n%s", want, code)
		}
	}
}

func TestGenerateVertexTestPlaceholder(t *testing.T) {
	db, _ := gcTraceDB(t)
	code, err := GenerateVertexTest(db, 0, 2, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "var comp pregel.Computation") ||
		!strings.Contains(code, "t.Skip(") {
		t.Errorf("placeholder variant wrong:\n%s", code)
	}
}

func TestGenerateVertexTestErrors(t *testing.T) {
	db, _ := gcTraceDB(t)
	if _, err := GenerateVertexTest(db, 0, 999, GenSpec{}); err == nil {
		t.Error("expected error for missing capture")
	}
	if _, err := GenerateMasterTest(db, 99999, GenSpec{}); err == nil {
		t.Error("expected error for missing master capture")
	}
}

func TestIdentSafe(t *testing.T) {
	if got := identSafe(672); got != "672" {
		t.Errorf("identSafe(672) = %q", got)
	}
	if got := identSafe(-5); got != "Neg5" {
		t.Errorf("identSafe(-5) = %q", got)
	}
}

func TestValueExprForms(t *testing.T) {
	cases := []struct {
		v    pregel.Value
		want string
	}{
		{nil, "nil"},
		{pregel.Nil(), "pregel.Nil()"},
		{pregel.NewBool(true), "pregel.NewBool(true)"},
		{pregel.NewInt(-3), "pregel.NewInt(-3)"},
		{pregel.NewLong(42), "pregel.NewLong(42)"},
		{pregel.NewShort(-2), "pregel.NewShort(-2)"},
		{pregel.NewDouble(1.5), "pregel.NewDouble(1.5)"},
		{pregel.NewText("hi"), `pregel.NewText("hi")`},
	}
	for _, c := range cases {
		if got := valueExpr(c.v); got != c.want {
			t.Errorf("valueExpr(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Composite values fall back to hex + display comment.
	got := valueExpr(pregel.NewLongList(1, 2))
	if !strings.Contains(got, "repro.MustDecodeValue(") || !strings.Contains(got, "/* [1 2] */") {
		t.Errorf("composite expr = %q", got)
	}
	// Comment injection is neutralized.
	if e := safeComment("evil */ code"); strings.Contains(e, "*/") {
		t.Errorf("safeComment left %q", e)
	}
}

func TestGenerateVertexSuite(t *testing.T) {
	db, _ := gcTraceDB(t)
	code, err := GenerateVertexSuite(db, 2, GenSpec{
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	history := db.CapturesOf(2)
	if len(history) < 2 {
		t.Fatalf("vertex 2 has only %d captures", len(history))
	}
	if got := strings.Count(code, "func TestReproduceVertex2Superstep"); got != len(history) {
		t.Errorf("suite has %d test funcs, want %d\n%s", got, len(history), code)
	}
	if got := strings.Count(code, "package graftrepro"); got != 1 {
		t.Errorf("suite has %d package clauses", got)
	}
	if got := strings.Count(code, `"testing"`); got != 1 {
		t.Errorf("suite has %d import blocks", got)
	}

	if _, err := GenerateVertexSuite(db, 99999, GenSpec{}); err == nil {
		t.Error("expected error for uncaptured vertex")
	}
}

func TestGenerateMasterTestContents(t *testing.T) {
	db, _ := gcTraceDB(t)
	code, err := GenerateMasterTest(db, 1, GenSpec{
		MasterExpr:   "algorithms.NewGraphColoring(42).Master",
		ExtraImports: []string{"graft/internal/algorithms"},
		Assert:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TestReproduceMasterSuperstep1",
		"repro.MockMasterContext",
		"master.Compute(ctx)",
		`"phase": pregel.NewText("SELECTION")`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated master test missing %q\n----\n%s", want, code)
		}
	}
}

func TestGeneratedExceptionTestExpectsFailure(t *testing.T) {
	boom := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
		if v.ID() == 7 && ctx.Superstep() == 1 {
			panic("planted")
		}
		if ctx.Superstep() >= 2 {
			v.VoteToHalt()
		}
		return nil
	})
	alg := &algorithms.Algorithm{Name: "boom", Compute: boom}
	g := graphgen.RegularBipartite(20, 3)
	db, runErr := captureRun(t, alg, g, core.DebugConfig{CaptureExceptions: true})
	if runErr == nil {
		t.Fatal("job should fail")
	}
	code, err := GenerateVertexTest(db, 1, 7, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "expected the captured exception to reproduce") {
		t.Errorf("exception branch missing:\n%s", code)
	}
}

// TestGeneratedTestCompilesAndPasses is the end-to-end check of the
// reproduce pipeline: the generated file is written into a scratch
// package of this module and executed with go test — the workflow a
// Graft user follows after clicking "Reproduce Vertex Context" (their
// generated test lives next to their algorithm, which is what lets it
// see the algorithm's registered value types).
func TestGeneratedTestCompilesAndPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	repoRoot, err := filepath.Abs("../../")
	if err != nil {
		t.Fatal(err)
	}

	db, _ := gcTraceDB(t)
	s := db.Supersteps()[1]
	code, err := GenerateVertexTest(db, s, 2, GenSpec{
		Package:         "reprogen",
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	masterCode, err := GenerateMasterTest(db, s, GenSpec{
		Package:      "reprogen",
		MasterExpr:   "algorithms.NewBuggyGraphColoring(42).Master",
		ExtraImports: []string{"graft/internal/algorithms"},
		Assert:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	suiteCode, err := GenerateVertexSuite(db, 3, GenSpec{
		Package:         "reprogen",
		ComputationExpr: "algorithms.NewBuggyGraphColoring(42).Compute",
		ExtraImports:    []string{"graft/internal/algorithms"},
		Assert:          true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The scratch package must live inside this module so it may
	// import graft/internal packages.
	dir, err := os.MkdirTemp(repoRoot, "tmp-reprogen-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "vertex_repro_test.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "master_repro_test.go"), []byte(masterCode), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "suite_repro_test.go"), []byte(suiteCode), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "test", "-count=1", "./"+filepath.Base(dir))
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated tests failed: %v\n%s\n---- generated code ----\n%s", err, out, code)
	}
}
