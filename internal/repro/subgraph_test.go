package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// subgraphCaptureRun is captureRun's subgraph-mode twin: it runs the
// algorithm's subgraph port under full capture and returns the trace.
func subgraphCaptureRun(t *testing.T, alg *algorithms.Algorithm, g *pregel.Graph, dc core.DebugConfig) trace.View {
	t.Helper()
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	session, err := core.Attach(store, core.Options{
		JobID: "repro-sg-job", Algorithm: alg.Name, NumWorkers: 4,
		ComputeMode: "subgraph",
	}, g, dc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pregel.Config{
		NumWorkers:    4,
		ComputeMode:   pregel.ModeSubgraph,
		Listener:      session,
		Master:        session.InstrumentMaster(alg.Master),
		Combiner:      alg.Combiner,
		MaxSupersteps: alg.MaxSupersteps,
	}
	job := pregel.NewSubgraphJob(g, session.InstrumentSubgraph(alg.Subgraph), cfg)
	for _, spec := range alg.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	db, err := store.OpenReader("repro-sg-job")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// wccSubgraphTraceDB captures a subgraph-mode WCC run with every
// active component recorded, shared by the subgraph codegen tests.
func wccSubgraphTraceDB(t *testing.T) trace.View {
	t.Helper()
	return subgraphCaptureRun(t, algorithms.NewConnectedComponents(),
		graphgen.RegularBipartite(40, 3),
		core.DebugConfig{CaptureAllActive: true, MaxCaptures: -1})
}

// firstSubgraph returns a (superstep, capture) pair from the earliest
// superstep that recorded subgraph captures.
func firstSubgraph(t *testing.T, db trace.View) (int, *trace.SubgraphCapture) {
	t.Helper()
	for _, s := range db.Supersteps() {
		if sgs := db.SubgraphsAt(s); len(sgs) > 0 {
			return s, sgs[0]
		}
	}
	t.Fatal("trace has no subgraph captures")
	return 0, nil
}

func TestGenerateSubgraphTestContents(t *testing.T) {
	db := wccSubgraphTraceDB(t)
	s, sc := firstSubgraph(t, db)
	code, err := GenerateSubgraphTest(db, s, sc.ID, GenSpec{
		SubgraphExpr: "algorithms.NewConnectedComponents().Subgraph",
		ExtraImports: []string{"graft/internal/algorithms"},
		Assert:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pregel.NewDetachedSubgraph",
		"repro.MockSubgraphContext",
		"sg.ValuesDigest()",
		sc.Digest,
		"algorithms.NewConnectedComponents().Subgraph",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code lacks %q:\n%s", want, code)
		}
	}
	if got := strings.Count(code, "pregel.NewDetachedVertex("); got != len(sc.Members) {
		t.Errorf("generated %d member vertices, want %d", got, len(sc.Members))
	}
}

func TestGenerateSubgraphTestPlaceholder(t *testing.T) {
	db := wccSubgraphTraceDB(t)
	s, sc := firstSubgraph(t, db)
	code, err := GenerateSubgraphTest(db, s, sc.ID, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "t.Skip(") {
		t.Error("placeholder test should self-skip until a computation is set")
	}
}

// TestGenerateSubgraphTestByMember asks for a non-representative member
// and must get the component containing it.
func TestGenerateSubgraphTestByMember(t *testing.T) {
	db := wccSubgraphTraceDB(t)
	s, sc := firstSubgraph(t, db)
	if len(sc.Members) < 2 {
		t.Skip("first component has a single member")
	}
	member := sc.Members[len(sc.Members)-1]
	code, err := GenerateSubgraphTest(db, s, member, GenSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "repro.MockSubgraphContext") {
		t.Errorf("lookup by member %d produced:\n%s", member, code)
	}
}

func TestGenerateSubgraphTestErrors(t *testing.T) {
	db := wccSubgraphTraceDB(t)
	if _, err := GenerateSubgraphTest(db, 0, 99999, GenSpec{}); err == nil {
		t.Error("expected an error for an uncaptured vertex")
	}
}

// TestGeneratedSubgraphTestCompilesAndPasses is the acceptance check
// that subgraph steps remain single-vertex debuggable: the generated
// reproduction test is written into a scratch package and executed with
// go test, and its assertions (per-component digest, sends, internal
// iterations, halt vote) must hold against a fresh local replay.
func TestGeneratedSubgraphTestCompilesAndPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	repoRoot, err := filepath.Abs("../../")
	if err != nil {
		t.Fatal(err)
	}

	db := wccSubgraphTraceDB(t)
	s, sc := firstSubgraph(t, db)
	code, err := GenerateSubgraphTest(db, s, sc.ID, GenSpec{
		Package:      "reprosggen",
		SubgraphExpr: "algorithms.NewConnectedComponents().Subgraph",
		ExtraImports: []string{"graft/internal/algorithms"},
		Assert:       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir, err := os.MkdirTemp(repoRoot, "tmp-reprosggen-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "subgraph_repro_test.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "test", "-count=1", "./"+filepath.Base(dir))
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated subgraph test failed: %v\n%s\n---- code ----\n%s", err, out, code)
	}
}
