// Package repro implements Graft's reproduce stage (paper §3.3): it
// rebuilds the exact context of one captured vertex.compute (or
// master.compute) call and re-executes it.
//
// Two forms are provided. Replay re-executes programmatically and
// diffs the outcome against the capture — the engine behind tests and
// the GUI's replay check. GenerateVertexTest emits a standalone Go
// test file (the paper generates JUnit + Mockito via Velocity; here it
// is a Go test over MockContext via text/template) that a user copies
// into their tree and steps through with a line-by-line debugger.
package repro

import (
	"encoding/hex"
	"fmt"
	"sort"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// MockContext implements pregel.Context from captured data: the mock
// objects of the paper's Figure 6. It records everything the replayed
// compute does.
type MockContext struct {
	// SuperstepN, NumVertices, NumEdges and Worker are the default
	// global data exposed to the vertex.
	SuperstepN  int
	NumVertices int64
	NumEdges    int64
	Worker      int
	// Agg holds the aggregator values broadcast in the captured
	// superstep.
	Agg map[string]pregel.Value

	// Recorded effects of the replayed compute call.
	Sent       []trace.OutMsg
	Aggregated []trace.AggSet
	Removals   []pregel.VertexID
	Additions  []pregel.VertexID
}

// NewMockContext builds a MockContext from a captured superstep's
// metadata.
func NewMockContext(meta *trace.SuperstepMeta, worker int) *MockContext {
	agg := make(map[string]pregel.Value, len(meta.Aggregated))
	for name, v := range meta.Aggregated {
		agg[name] = pregel.CloneValue(v)
	}
	return &MockContext{
		SuperstepN:  meta.Superstep,
		NumVertices: meta.NumVertices,
		NumEdges:    meta.NumEdges,
		Worker:      worker,
		Agg:         agg,
	}
}

// Superstep implements pregel.Context.
func (m *MockContext) Superstep() int { return m.SuperstepN }

// TotalNumVertices implements pregel.Context.
func (m *MockContext) TotalNumVertices() int64 { return m.NumVertices }

// TotalNumEdges implements pregel.Context.
func (m *MockContext) TotalNumEdges() int64 { return m.NumEdges }

// WorkerID implements pregel.Context.
func (m *MockContext) WorkerID() int { return m.Worker }

// GetAggregated implements pregel.Context.
func (m *MockContext) GetAggregated(name string) pregel.Value {
	v, ok := m.Agg[name]
	if !ok {
		panic(fmt.Sprintf("repro: GetAggregated(%q): aggregator not in captured context", name))
	}
	return v
}

// Aggregate implements pregel.Context, recording the call.
func (m *MockContext) Aggregate(name string, val pregel.Value) {
	m.Aggregated = append(m.Aggregated, trace.AggSet{Name: name, Value: pregel.CloneValue(val)})
}

// SendMessage implements pregel.Context, recording the message.
func (m *MockContext) SendMessage(to pregel.VertexID, msg pregel.Value) {
	m.Sent = append(m.Sent, trace.OutMsg{To: to, Value: msg})
}

// SendMessageToAllEdges implements pregel.Context.
func (m *MockContext) SendMessageToAllEdges(v *pregel.Vertex, msg pregel.Value) {
	for i, e := range v.Edges() {
		mm := msg
		if i > 0 {
			mm = msg.Clone()
		}
		m.SendMessage(e.Target, mm)
	}
}

// RemoveVertexRequest implements pregel.Context.
func (m *MockContext) RemoveVertexRequest(id pregel.VertexID) {
	m.Removals = append(m.Removals, id)
}

// AddVertexRequest implements pregel.Context.
func (m *MockContext) AddVertexRequest(id pregel.VertexID, _ pregel.Value) {
	m.Additions = append(m.Additions, id)
}

// MockMasterContext implements pregel.MasterContext from a master
// capture.
type MockMasterContext struct {
	SuperstepN  int
	NumVertices int64
	NumEdges    int64
	Agg         map[string]pregel.Value

	Sets      []trace.AggSet
	HaltedNow bool
}

// NewMockMasterContext rebuilds the master's pre-compute environment.
func NewMockMasterContext(c *trace.MasterCapture) *MockMasterContext {
	agg := make(map[string]pregel.Value, len(c.AggregatedBefore))
	for name, v := range c.AggregatedBefore {
		agg[name] = pregel.CloneValue(v)
	}
	return &MockMasterContext{
		SuperstepN:  c.Superstep,
		NumVertices: c.NumVertices,
		NumEdges:    c.NumEdges,
		Agg:         agg,
	}
}

// Superstep implements pregel.MasterContext.
func (m *MockMasterContext) Superstep() int { return m.SuperstepN }

// TotalNumVertices implements pregel.MasterContext.
func (m *MockMasterContext) TotalNumVertices() int64 { return m.NumVertices }

// TotalNumEdges implements pregel.MasterContext.
func (m *MockMasterContext) TotalNumEdges() int64 { return m.NumEdges }

// GetAggregated implements pregel.MasterContext.
func (m *MockMasterContext) GetAggregated(name string) pregel.Value {
	v, ok := m.Agg[name]
	if !ok {
		panic(fmt.Sprintf("repro: GetAggregated(%q): aggregator not in captured context", name))
	}
	return v
}

// SetAggregated implements pregel.MasterContext.
func (m *MockMasterContext) SetAggregated(name string, val pregel.Value) {
	m.Sets = append(m.Sets, trace.AggSet{Name: name, Value: pregel.CloneValue(val)})
	m.Agg[name] = val
}

// AggregatedNames implements pregel.MasterContext.
func (m *MockMasterContext) AggregatedNames() []string {
	names := make([]string, 0, len(m.Agg))
	for name := range m.Agg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HaltComputation implements pregel.MasterContext.
func (m *MockMasterContext) HaltComputation() { m.HaltedNow = true }

// RebuildVertex reconstructs the captured vertex: ID, pre-compute
// value and edge list (paper Figure 6 lines 13-23).
func RebuildVertex(c *trace.VertexCapture) *pregel.Vertex {
	v := pregel.NewDetachedVertex(c.ID, pregel.CloneValue(c.ValueBefore))
	for _, e := range c.Edges {
		v.AddEdge(pregel.Edge{Target: e.Target, Value: pregel.CloneValue(e.Value)})
	}
	return v
}

// RebuildIncoming reconstructs the captured inbox (Figure 6 lines
// 24-28).
func RebuildIncoming(c *trace.VertexCapture) []pregel.Value {
	msgs := make([]pregel.Value, len(c.Incoming))
	for i, m := range c.Incoming {
		msgs[i] = pregel.CloneValue(m)
	}
	return msgs
}

// MustDecodeValue decodes a hex-encoded typed value; generated test
// files use it for composite value types that have no literal
// constructor.
func MustDecodeValue(hexData string) pregel.Value {
	raw, err := hex.DecodeString(hexData)
	if err != nil {
		panic(fmt.Sprintf("repro: bad embedded value %q: %v", hexData, err))
	}
	v, err := pregel.UnmarshalValue(raw)
	if err != nil {
		panic(fmt.Sprintf("repro: bad embedded value %q: %v", hexData, err))
	}
	return v
}
