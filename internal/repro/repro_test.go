package repro

import (
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// captureRun executes alg over g with Graft attached and returns the
// loaded trace DB (the job error, if any, is returned too: the
// exception scenarios rely on it).
func captureRun(t *testing.T, alg *algorithms.Algorithm, g *pregel.Graph, dc core.DebugConfig) (trace.View, error) {
	t.Helper()
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	session, err := core.Attach(store, core.Options{
		JobID: "repro-job", Algorithm: alg.Name, NumWorkers: 4,
	}, g, dc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pregel.Config{
		NumWorkers:    4,
		Listener:      session,
		Master:        session.InstrumentMaster(alg.Master),
		Combiner:      alg.Combiner,
		MaxSupersteps: alg.MaxSupersteps,
	}
	job := pregel.NewJob(g, session.Instrument(alg.Compute), cfg)
	for _, spec := range alg.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	_, runErr := job.Run()
	db, err := store.OpenReader("repro-job")
	if err != nil {
		t.Fatal(err)
	}
	return db, runErr
}

// assertFullFidelity replays every capture in the DB and requires an
// exact match with the recorded outcome.
func assertFullFidelity(t *testing.T, db trace.View, comp pregel.Computation) int {
	t.Helper()
	replayed := 0
	for _, s := range db.Supersteps() {
		for _, c := range db.CapturesAt(s) {
			out, err := Replay(db, s, c.ID, comp)
			if err != nil {
				t.Fatalf("replay vertex %d superstep %d: %v", c.ID, s, err)
			}
			if diffs := Fidelity(c, out); len(diffs) != 0 {
				t.Errorf("vertex %d superstep %d replay diverged: %v", c.ID, s, diffs)
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("nothing to replay")
	}
	return replayed
}

func TestReplayFidelityGraphColoring(t *testing.T) {
	alg := algorithms.NewBuggyGraphColoring(42)
	g := graphgen.RegularBipartite(60, 3)
	db, err := captureRun(t, alg, g, core.DebugConfig{
		NumRandomCaptures: 5, RandomSeed: 3, CaptureNeighbors: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := assertFullFidelity(t, db, alg.Compute)
	t.Logf("replayed %d graph-coloring captures with full fidelity", n)
}

func TestReplayFidelityRandomWalk16(t *testing.T) {
	alg := algorithms.NewRandomWalk16(9, 8)
	g := graphgen.WebGraph(2000, 5, 11)
	db, err := captureRun(t, alg, g, core.DebugConfig{
		MessageConstraint: algorithms.NonNegativeRWMessages,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := assertFullFidelity(t, db, alg.Compute)
	t.Logf("replayed %d random-walk captures (including overflowing ones) with full fidelity", n)
}

func TestReplayFidelityMatching(t *testing.T) {
	alg := algorithms.NewMaximumWeightMatching(100)
	g := graphgen.SocialGraph(80, 5, 3)
	db, err := captureRun(t, alg, g, core.DebugConfig{
		NumRandomCaptures: 10, RandomSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFullFidelity(t, db, alg.Compute)
}

func TestReplayExceptionReproduces(t *testing.T) {
	boom := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
		if v.ID() == 7 && ctx.Superstep() == 1 {
			var empty []int
			_ = empty[3] // real index-out-of-range panic
		}
		if ctx.Superstep() >= 2 {
			v.VoteToHalt()
		}
		return nil
	})
	alg := &algorithms.Algorithm{Name: "boom", Compute: boom}
	g := graphgen.RegularBipartite(20, 3)
	db, runErr := captureRun(t, alg, g, core.DebugConfig{CaptureExceptions: true})
	if runErr == nil {
		t.Fatal("job should have failed")
	}
	out, err := Replay(db, 1, 7, boom)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil {
		t.Fatal("replay did not reproduce the panic")
	}
	if !strings.Contains(out.Err.Error(), "index out of range") {
		t.Errorf("replayed error = %v", out.Err)
	}
	if out.PanicStack == "" {
		t.Error("no replay stack")
	}
	if diffs := Fidelity(db.Capture(1, 7), out); len(diffs) != 0 {
		t.Errorf("exception fidelity: %v", diffs)
	}
}

func TestReplayMissingCapture(t *testing.T) {
	alg := algorithms.NewConnectedComponents()
	g := graphgen.RegularBipartite(10, 2)
	db, err := captureRun(t, alg, g, core.DebugConfig{CaptureIDs: []pregel.VertexID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(db, 0, 999, alg.Compute); err == nil {
		t.Error("expected error for uncaptured vertex")
	}
}

func TestReplayMaster(t *testing.T) {
	alg := algorithms.NewGraphColoring(42)
	g := graphgen.RegularBipartite(40, 3)
	db, err := captureRun(t, alg, g, core.DebugConfig{CaptureIDs: []pregel.VertexID{0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Supersteps() {
		mc := db.MasterAt(s)
		if mc == nil {
			t.Fatalf("no master capture at superstep %d", s)
		}
		ctx, err := ReplayMaster(db, s, alg.Master)
		if err != nil {
			t.Fatalf("master replay at %d: %v", s, err)
		}
		if ctx.HaltedNow != mc.Halted {
			t.Errorf("superstep %d: replayed halt %v, captured %v", s, ctx.HaltedNow, mc.Halted)
		}
		if len(ctx.Sets) != len(mc.Sets) {
			t.Errorf("superstep %d: replayed %d sets, captured %d", s, len(ctx.Sets), len(mc.Sets))
			continue
		}
		for i := range ctx.Sets {
			if ctx.Sets[i].Name != mc.Sets[i].Name ||
				!pregel.ValuesEqual(ctx.Sets[i].Value, mc.Sets[i].Value) {
				t.Errorf("superstep %d set %d: %v vs %v", s, i, ctx.Sets[i], mc.Sets[i])
			}
		}
	}
}

func TestFidelityDetectsDivergence(t *testing.T) {
	// Replaying with a different seed must be flagged.
	alg := algorithms.NewGraphColoring(42)
	other := algorithms.NewGraphColoring(43)
	g := graphgen.RegularBipartite(60, 3)
	db, err := captureRun(t, alg, g, core.DebugConfig{NumRandomCaptures: 10, RandomSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, s := range db.Supersteps() {
		for _, c := range db.CapturesAt(s) {
			out, err := Replay(db, s, c.ID, other.Compute)
			if err != nil {
				t.Fatal(err)
			}
			if len(Fidelity(c, out)) > 0 {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("fidelity check never flagged a wrong-seed replay")
	}
}

func TestMockContextPanicsOnUnknownAggregator(t *testing.T) {
	ctx := NewMockContext(&trace.SuperstepMeta{Superstep: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.GetAggregated("missing")
}

func TestMustDecodeValueRoundTrip(t *testing.T) {
	v := pregel.NewText("hello")
	enc := pregel.MarshalValue(v)
	hexStr := ""
	for _, b := range enc {
		hexStr += string("0123456789abcdef"[b>>4]) + string("0123456789abcdef"[b&0xF])
	}
	got := MustDecodeValue(hexStr)
	if !pregel.ValuesEqual(v, got) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestMustDecodeValueBadInput(t *testing.T) {
	for _, bad := range []string{"zz", "0", "ffff"} {
		func() {
			defer func() { recover() }()
			MustDecodeValue(bad)
			t.Errorf("MustDecodeValue(%q) did not panic", bad)
		}()
	}
}
