package repro

import (
	"fmt"
	"runtime/debug"
	"sort"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// Outcome is the observable result of replaying one captured
// vertex.compute call.
type Outcome struct {
	// ValueAfter is the vertex value when compute returned.
	ValueAfter pregel.Value
	// Outgoing are the messages the replay sent.
	Outgoing []trace.OutMsg
	// Aggregated are the replay's Aggregate calls.
	Aggregated []trace.AggSet
	// HaltedAfter reports whether the replay voted to halt.
	HaltedAfter bool
	// Err is the error the replayed compute returned, nil on success.
	// A panic is converted to an error with PanicStack set.
	Err        error
	PanicStack string
}

// Replay re-executes comp against the captured context of vertex id at
// the given superstep. The capture's superstep metadata must be
// present in the DB (it always is for supersteps Graft observed).
func Replay(db trace.View, superstep int, id pregel.VertexID, comp pregel.Computation) (*Outcome, error) {
	c := db.Capture(superstep, id)
	if c == nil {
		return nil, fmt.Errorf("repro: no capture of vertex %d at superstep %d", id, superstep)
	}
	meta := db.MetaAt(superstep)
	if meta == nil {
		return nil, fmt.Errorf("repro: no superstep metadata for superstep %d", superstep)
	}
	return ReplayCapture(c, meta, comp), nil
}

// ReplayCapture re-executes comp against an explicit capture and
// superstep metadata.
func ReplayCapture(c *trace.VertexCapture, meta *trace.SuperstepMeta, comp pregel.Computation) *Outcome {
	ctx := NewMockContext(meta, c.Worker)
	v := RebuildVertex(c)
	msgs := RebuildIncoming(c)
	out := &Outcome{}
	out.Err = func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				out.PanicStack = string(debug.Stack())
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		return comp.Compute(ctx, v, msgs)
	}()
	out.ValueAfter = v.Value()
	out.Outgoing = ctx.Sent
	out.Aggregated = ctx.Aggregated
	out.HaltedAfter = v.Halted()
	return out
}

// ReplayMaster re-executes a master computation against its captured
// context.
func ReplayMaster(db trace.View, superstep int, master pregel.MasterComputation) (*MockMasterContext, error) {
	c := db.MasterAt(superstep)
	if c == nil {
		return nil, fmt.Errorf("repro: no master capture at superstep %d", superstep)
	}
	ctx := NewMockMasterContext(c)
	if err := master.Compute(ctx); err != nil {
		return ctx, err
	}
	return ctx, nil
}

// Fidelity compares a replay outcome with what the original run
// recorded, returning human-readable differences (empty means the
// replay reproduced the cluster execution exactly). Messages are
// compared as multisets: the engine does not guarantee send order.
func Fidelity(c *trace.VertexCapture, out *Outcome) []string {
	var diffs []string
	if !pregel.ValuesEqual(c.ValueAfter, out.ValueAfter) {
		diffs = append(diffs, fmt.Sprintf("value after: captured %s, replayed %s",
			pregel.ValueString(c.ValueAfter), pregel.ValueString(out.ValueAfter)))
	}
	if c.HaltedAfter != out.HaltedAfter {
		diffs = append(diffs, fmt.Sprintf("halted after: captured %v, replayed %v",
			c.HaltedAfter, out.HaltedAfter))
	}
	if d := diffOutgoing(c.Outgoing, out.Outgoing); d != "" {
		diffs = append(diffs, d)
	}
	capturedErr := c.Exception != nil
	replayErr := out.Err != nil
	if capturedErr != replayErr {
		diffs = append(diffs, fmt.Sprintf("exception: captured %v, replayed %v", capturedErr, replayErr))
	}
	return diffs
}

// diffOutgoing compares two message sets order-insensitively by
// (recipient, encoded bytes).
func diffOutgoing(a, b []trace.OutMsg) string {
	if len(a) != len(b) {
		return fmt.Sprintf("outgoing count: captured %d, replayed %d", len(a), len(b))
	}
	ka, kb := msgKeys(a), msgKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("outgoing messages differ: captured %q, replayed %q", ka[i], kb[i])
		}
	}
	return ""
}

func msgKeys(msgs []trace.OutMsg) []string {
	keys := make([]string, len(msgs))
	for i, m := range msgs {
		keys[i] = fmt.Sprintf("%d|%x", m.To, pregel.MarshalValue(m.Value))
	}
	sort.Strings(keys)
	return keys
}
