package pregel

import (
	"sync/atomic"
	"testing"
)

// TestMessageFlushBatching sends far more messages than one flush
// batch from a single vertex and checks nothing is lost or reordered
// across the batch boundary.
func TestMessageFlushBatching(t *testing.T) {
	const fanout = 3 * msgFlushBatch
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= fanout; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	var delivered atomic.Int64
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() == 0 {
			for i := 1; i <= fanout; i++ {
				ctx.SendMessage(VertexID(i), NewLong(int64(i)))
			}
		}
		if ctx.Superstep() == 1 && len(msgs) > 0 {
			if got := msgs[0].(*LongValue).Get(); got != int64(v.ID()) {
				t.Errorf("vertex %d got %d", v.ID(), got)
			}
			delivered.Add(int64(len(msgs)))
		}
		v.VoteToHalt()
		return nil
	})
	stats, err := NewJob(g, comp, Config{NumWorkers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != fanout {
		t.Errorf("delivered %d of %d messages", delivered.Load(), fanout)
	}
	if stats.TotalMessages != fanout {
		t.Errorf("TotalMessages = %d", stats.TotalMessages)
	}
}

// TestWorkerIDStableWithinPartition checks that a vertex sees the same
// worker ID every superstep (hash partitioning is static).
func TestWorkerIDStableWithinPartition(t *testing.T) {
	g := pathGraph(t, 50)
	workers := map[VertexID]int{}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if prev, seen := workers[v.ID()]; seen && prev != ctx.WorkerID() {
			t.Errorf("vertex %d moved from worker %d to %d", v.ID(), prev, ctx.WorkerID())
		}
		workers[v.ID()] = ctx.WorkerID()
		if ctx.Superstep() >= 3 {
			v.VoteToHalt()
		}
		return nil
	})
	// NumWorkers 1 keeps map writes single-threaded for the test.
	if _, err := NewJob(g, comp, Config{NumWorkers: 1}).Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateAcrossWorkersMerges verifies that partial aggregates
// from distinct workers merge, not overwrite.
func TestAggregateAcrossWorkersMerges(t *testing.T) {
	const n = 1000
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), nil)
	}
	var got int64 = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 {
			ctx.Aggregate("sum", NewLong(int64(v.ID())))
			return nil
		}
		if v.ID() == 0 {
			got = ctx.GetAggregated("sum").(*LongValue).Get()
		}
		v.VoteToHalt()
		return nil
	})
	job := NewJob(g, comp, Config{NumWorkers: 8})
	job.RegisterAggregator("sum", LongSumAggregator{}, false)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

// TestMaxAndMinAndBoolAggregators exercises the remaining standard
// aggregators end to end.
func TestMaxAndMinAndBoolAggregators(t *testing.T) {
	g := pathGraph(t, 10)
	results := map[string]string{}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 {
			ctx.Aggregate("max", NewLong(int64(v.ID())))
			ctx.Aggregate("min", NewLong(int64(v.ID())))
			ctx.Aggregate("dmax", NewDouble(float64(v.ID())/2))
			ctx.Aggregate("dsum", NewDouble(1))
			ctx.Aggregate("or", NewBool(v.ID() == 3))
			ctx.Aggregate("and", NewBool(v.ID() != 3))
			return nil
		}
		if v.ID() == 0 {
			for _, name := range []string{"max", "min", "dmax", "dsum", "or", "and"} {
				results[name] = ctx.GetAggregated(name).String()
			}
		}
		v.VoteToHalt()
		return nil
	})
	job := NewJob(g, comp, Config{NumWorkers: 3})
	job.RegisterAggregator("max", LongMaxAggregator{}, false)
	job.RegisterAggregator("min", LongMinAggregator{}, false)
	job.RegisterAggregator("dmax", DoubleMaxAggregator{}, false)
	job.RegisterAggregator("dsum", DoubleSumAggregator{}, false)
	job.RegisterAggregator("or", BoolOrAggregator{}, false)
	job.RegisterAggregator("and", BoolAndAggregator{}, false)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"max": "9", "min": "0", "dmax": "4.5", "dsum": "10",
		"or": "true", "and": "false",
	}
	for name, w := range want {
		if results[name] != w {
			t.Errorf("%s = %q, want %q", name, results[name], w)
		}
	}
}

// TestCombinersDirect unit-tests the remaining combiner library.
func TestCombinersDirect(t *testing.T) {
	if got := MaxLongCombiner.Combine(0, NewLong(3), NewLong(7)).(*LongValue).Get(); got != 7 {
		t.Errorf("MaxLong = %d", got)
	}
	if got := MaxLongCombiner.Combine(0, NewLong(9), NewLong(7)).(*LongValue).Get(); got != 9 {
		t.Errorf("MaxLong = %d", got)
	}
	if got := SumDoubleCombiner.Combine(0, NewDouble(1.5), NewDouble(2)).(*DoubleValue).Get(); got != 3.5 {
		t.Errorf("SumDouble = %v", got)
	}
	if got := MinDoubleCombiner.Combine(0, NewDouble(1.5), NewDouble(2)).(*DoubleValue).Get(); got != 1.5 {
		t.Errorf("MinDouble = %v", got)
	}
	if got := MinLongCombiner.Combine(0, NewLong(3), NewLong(2)).(*LongValue).Get(); got != 2 {
		t.Errorf("MinLong = %d", got)
	}
	if got := SumLongCombiner.Combine(0, NewLong(3), NewLong(2)).(*LongValue).Get(); got != 5 {
		t.Errorf("SumLong = %d", got)
	}
}

// TestOverwriteAggregators covers the overwrite semantics used by
// master phase coordination.
func TestOverwriteAggregators(t *testing.T) {
	lo := LongOverwriteAggregator{}
	v := lo.Aggregate(lo.CreateInitial(), NewLong(5))
	v = lo.Aggregate(v, NewLong(9))
	if v.(*LongValue).Get() != 9 {
		t.Errorf("long overwrite = %v", v)
	}
	to := TextOverwriteAggregator{}
	tv := to.Aggregate(to.CreateInitial(), NewText("A"))
	tv = to.Aggregate(tv, NewText("B"))
	if tv.(*TextValue).Get() != "B" {
		t.Errorf("text overwrite = %v", tv)
	}
}
