package pregel

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Value is the interface implemented by every vertex value, edge value,
// message and aggregator value. It mirrors Giraph's Writable contract:
// values must round-trip through the binary codec, be cloneable (for
// capture snapshots and checkpoints), and print a human-readable form
// for the GUI and generated reproduction code.
//
// Implementations use pointer receivers; a Value held by the engine is
// always a pointer to its concrete type.
type Value interface {
	// TypeName returns the registry key identifying the concrete type.
	TypeName() string
	// Encode appends the binary form of the value to e.
	Encode(e *Encoder)
	// Decode reads the binary form from d, replacing the receiver's
	// contents.
	Decode(d *Decoder) error
	// Clone returns a deep copy.
	Clone() Value
	fmt.Stringer
}

// ImmutableValue marks Value implementations whose contents never
// change after construction. The engine uses it to skip defensive
// copies: SendMessageToAllEdges shares one immutable object across all
// recipients instead of cloning per edge (when no combiner is
// installed — combiners may mutate their operands, so combined
// messages always get private copies). Declaring a mutable type
// immutable corrupts inbox isolation; only add the marker to types
// with no setters.
type ImmutableValue interface {
	Value
	// ImmutableMarker is a no-op identifying the type as immutable.
	ImmutableMarker()
}

// valueRegistry maps type names to factories so traces and checkpoints
// can reconstruct concrete types.
var valueRegistry = struct {
	sync.RWMutex
	factories map[string]func() Value
}{factories: map[string]func() Value{}}

// RegisterValue registers a factory for the named value type. It is
// typically called from init. Registering the same name twice panics:
// a name collision would corrupt every trace that uses it.
func RegisterValue(name string, factory func() Value) {
	valueRegistry.Lock()
	defer valueRegistry.Unlock()
	if _, dup := valueRegistry.factories[name]; dup {
		panic("pregel: duplicate value type registration: " + name)
	}
	valueRegistry.factories[name] = factory
}

// NewValueOf constructs a zero value of the named registered type.
func NewValueOf(name string) (Value, error) {
	valueRegistry.RLock()
	f, ok := valueRegistry.factories[name]
	valueRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pregel: unregistered value type %q", name)
	}
	return f(), nil
}

// RegisteredValueTypes returns the sorted names of all registered value
// types; used by diagnostics and the GUI.
func RegisteredValueTypes() []string {
	valueRegistry.RLock()
	defer valueRegistry.RUnlock()
	names := make([]string, 0, len(valueRegistry.factories))
	for n := range valueRegistry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EncodeTyped appends a self-describing encoding of v: type name then
// payload. A nil Value encodes as an empty type name.
func EncodeTyped(e *Encoder, v Value) {
	if v == nil {
		e.PutString("")
		return
	}
	e.PutString(v.TypeName())
	v.Encode(e)
}

// DecodeTyped reads a value written by EncodeTyped, returning nil for a
// nil-encoded value.
func DecodeTyped(d *Decoder) (Value, error) {
	name := d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if name == "" {
		return nil, nil
	}
	v, err := NewValueOf(name)
	if err != nil {
		return nil, err
	}
	if err := v.Decode(d); err != nil {
		return nil, err
	}
	return v, d.Err()
}

// MarshalValue returns the self-describing encoding of v.
func MarshalValue(v Value) []byte {
	e := NewEncoder()
	EncodeTyped(e, v)
	return append([]byte(nil), e.Bytes()...)
}

// UnmarshalValue decodes a buffer produced by MarshalValue.
func UnmarshalValue(b []byte) (Value, error) {
	d := NewDecoder(b)
	v, err := DecodeTyped(d)
	if err != nil {
		return nil, err
	}
	return v, d.Err()
}

// ValuesEqual reports whether two values have identical type and
// binary representation. Both nil is equal; one nil is not.
func ValuesEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.TypeName() != b.TypeName() {
		return false
	}
	ea, eb := NewEncoder(), NewEncoder()
	a.Encode(ea)
	b.Encode(eb)
	return bytes.Equal(ea.Bytes(), eb.Bytes())
}

// CloneValue clones v, passing nil through.
func CloneValue(v Value) Value {
	if v == nil {
		return nil
	}
	return v.Clone()
}

// ValueString renders v for display, using "∅" for nil.
func ValueString(v Value) string {
	if v == nil {
		return "∅"
	}
	return v.String()
}
