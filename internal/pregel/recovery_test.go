package pregel

import (
	"errors"
	"testing"

	"graft/internal/dfs"
)

// ccValues runs connected components over a path graph of n vertices
// with the given config and returns the final labels.
func ccValues(t *testing.T, n int, cfg Config) map[VertexID]int64 {
	t.Helper()
	g := pathGraph(t, n)
	if _, err := NewJob(g, ccCompute, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	out := map[VertexID]int64{}
	g.Each(func(v *Vertex) { out[v.ID()] = v.Value().(*LongValue).Get() })
	return out
}

func requireSameLabels(t *testing.T, want, got map[VertexID]int64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("vertex count %d after recovery, want %d", len(got), len(want))
	}
	for id, label := range want {
		if got[id] != label {
			t.Errorf("vertex %d: label %d after recovery, want %d", id, got[id], label)
		}
	}
}

func TestConfinedRecoveryMatchesFailureFree(t *testing.T) {
	want := ccValues(t, 12, Config{NumWorkers: 3})

	fired := false
	g := pathGraph(t, 12)
	job := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 2,
		CheckpointFS:    dfs.NewMemFS(),
		Recovery:        RecoveryLog,
		MsgLogFS:        dfs.NewMemFS(),
		PartitionFailureAt: func(s int) []int {
			if s == 3 && !fired {
				fired = true
				return []int{1}
			}
			return nil
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("failure was never injected")
	}
	got := map[VertexID]int64{}
	g.Each(func(v *Vertex) { got[v.ID()] = v.Value().(*LongValue).Get() })
	requireSameLabels(t, want, got)

	if len(stats.RecoveryEvents) != 1 {
		t.Fatalf("recovery events = %+v, want exactly one", stats.RecoveryEvents)
	}
	ev := stats.RecoveryEvents[0]
	if ev.Mode != "log" {
		t.Errorf("recovery mode = %q, want log", ev.Mode)
	}
	if ev.PartitionsRecomputed != 1 {
		t.Errorf("partitions recomputed = %d, want 1 (confined)", ev.PartitionsRecomputed)
	}
	if len(ev.Partitions) != 1 || ev.Partitions[0] != 1 {
		t.Errorf("failed partitions = %v, want [1]", ev.Partitions)
	}
	if ev.MessagesReplayed == 0 {
		t.Error("no messages replayed from the outbox log")
	}
	if stats.MessagesLogged == 0 || stats.BytesLogged == 0 {
		t.Errorf("outbox log stats = %d msgs / %d bytes, want nonzero",
			stats.MessagesLogged, stats.BytesLogged)
	}
}

func TestConfinedRecoveryNestedFailure(t *testing.T) {
	want := ccValues(t, 12, Config{NumWorkers: 3})

	// Stage 0: fail partition 1 at the live barrier 3. Stage 1: the
	// replay window is [0, 3] (CheckpointEvery 4 → checkpoint at 0), so
	// the next consultation is a replayed barrier — fail partition 0
	// there, nested inside the first recovery.
	stage := 0
	g := pathGraph(t, 12)
	job := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 4,
		CheckpointFS:    dfs.NewMemFS(),
		Recovery:        RecoveryLog,
		MsgLogFS:        dfs.NewMemFS(),
		PartitionFailureAt: func(s int) []int {
			switch {
			case stage == 0 && s == 3:
				stage = 1
				return []int{1}
			case stage == 1:
				stage = 2
				return []int{0}
			}
			return nil
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stage != 2 {
		t.Fatalf("injection stage = %d, want 2 (nested failure fired)", stage)
	}
	got := map[VertexID]int64{}
	g.Each(func(v *Vertex) { got[v.ID()] = v.Value().(*LongValue).Get() })
	requireSameLabels(t, want, got)

	if stats.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2 (original + nested)", stats.Recoveries)
	}
	if len(stats.RecoveryEvents) != 1 {
		t.Fatalf("recovery events = %+v, want one merged event", stats.RecoveryEvents)
	}
	ev := stats.RecoveryEvents[0]
	if ev.Mode != "log" {
		t.Errorf("recovery mode = %q, want log", ev.Mode)
	}
	if len(ev.Partitions) != 2 || ev.Partitions[0] != 0 || ev.Partitions[1] != 1 {
		t.Errorf("failed partitions = %v, want [0 1]", ev.Partitions)
	}
	if ev.PartitionsRecomputed != 2 {
		t.Errorf("partitions recomputed = %d, want 2", ev.PartitionsRecomputed)
	}
}

func TestRecoveryFailureBeforeAnyCheckpoint(t *testing.T) {
	// A failure at superstep 0 with checkpointing disabled has nothing
	// to roll back to, in either mode.
	for _, mode := range []RecoveryMode{RecoveryCheckpoint, RecoveryLog} {
		t.Run(mode.String(), func(t *testing.T) {
			g := pathGraph(t, 8)
			_, err := NewJob(g, ccCompute, Config{
				NumWorkers:         2,
				CheckpointFS:       dfs.NewMemFS(), // FS present, but CheckpointEvery 0: none written
				Recovery:           mode,
				MsgLogFS:           dfs.NewMemFS(),
				PartitionFailureAt: func(s int) []int { return nil },
				FailureAt:          func(s int) bool { return s == 0 },
			}).Run()
			if !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("err = %v, want ErrNoCheckpoint", err)
			}
		})
	}
}

func TestConfinedRecoveryCorruptLogFallsBack(t *testing.T) {
	want := ccValues(t, 12, Config{NumWorkers: 3})

	logFS := dfs.NewMemFS()
	fired := false
	g := pathGraph(t, 12)
	job := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 2,
		CheckpointFS:    dfs.NewMemFS(),
		Recovery:        RecoveryLog,
		MsgLogFS:        logFS,
		PartitionFailureAt: func(s int) []int {
			if s != 3 || fired {
				return nil
			}
			fired = true
			// Rot every log segment on disk before the failure fires:
			// the replay must detect the damage and degrade to a full
			// checkpoint restart rather than replay garbage.
			names, err := logFS.List("msglog/")
			if err != nil {
				t.Error(err)
			}
			for _, name := range names {
				w, err := logFS.Create(name)
				if err != nil {
					t.Error(err)
					continue
				}
				w.Write([]byte("GARBAGEGARBAGE"))
				w.Close()
			}
			return []int{1}
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := map[VertexID]int64{}
	g.Each(func(v *Vertex) { got[v.ID()] = v.Value().(*LongValue).Get() })
	requireSameLabels(t, want, got)

	if len(stats.RecoveryEvents) != 1 {
		t.Fatalf("recovery events = %+v, want exactly one", stats.RecoveryEvents)
	}
	ev := stats.RecoveryEvents[0]
	if ev.Mode != "checkpoint" {
		t.Errorf("recovery mode = %q, want checkpoint fallback", ev.Mode)
	}
	if ev.PartitionsRecomputed != 3 {
		t.Errorf("partitions recomputed = %d, want all 3 (full restart)", ev.PartitionsRecomputed)
	}
	if stats.Faults.CorruptLogSegments == 0 {
		t.Error("corrupt log segment was not counted")
	}
}

func TestCheckpointRetentionGC(t *testing.T) {
	fs := dfs.NewMemFS()
	fired := false
	g := pathGraph(t, 12)
	stats, err := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(s int) bool {
			// Late failure: only GC-surviving checkpoints can serve it.
			if s == 8 && !fired {
				fired = true
				return true
			}
			return false
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("failure was never injected")
	}
	names, err := fs.List("checkpoint_")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 2 {
		t.Errorf("checkpoints on disk after GC = %v, want at most 2", names)
	}
	if stats.Faults.CheckpointsDeleted == 0 {
		t.Error("retention GC deleted nothing on a long run")
	}
	if stats.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", stats.Recoveries)
	}
}

func TestCheckpointRetentionDisabled(t *testing.T) {
	fs := dfs.NewMemFS()
	_, err := NewJob(pathGraph(t, 12), ccCompute, Config{
		NumWorkers:       2,
		CheckpointEvery:  1,
		CheckpointFS:     fs,
		CheckpointRetain: -1,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("checkpoint_")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 5 {
		t.Errorf("checkpoints on disk with GC disabled = %d, want every one kept", len(names))
	}
}

func TestConfinedRecoveryPersistentAggregators(t *testing.T) {
	// Confined replay suppresses Aggregate calls — the live barrier at
	// the failed superstep already merged every partition's
	// contribution, so replaying them would double-count.
	var finalSum int64 = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() < 4 {
			ctx.Aggregate("sum", NewLong(1))
			ctx.SendMessage(v.ID(), NewLong(0)) // keep everyone active
			return nil
		}
		if v.ID() == 0 {
			finalSum = ctx.GetAggregated("sum").(*LongValue).Get()
		}
		v.VoteToHalt()
		return nil
	})
	fired := false
	g := pathGraph(t, 4)
	job := NewJob(g, comp, Config{
		NumWorkers:      2,
		CheckpointEvery: 1,
		CheckpointFS:    dfs.NewMemFS(),
		Recovery:        RecoveryLog,
		MsgLogFS:        dfs.NewMemFS(),
		PartitionFailureAt: func(s int) []int {
			if s == 2 && !fired {
				fired = true
				return []int{1}
			}
			return nil
		},
	})
	job.RegisterAggregator("sum", LongSumAggregator{}, true)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 vertices x 4 supersteps, regardless of the replayed window.
	if finalSum != 16 {
		t.Errorf("persistent sum after confined recovery = %d, want 16", finalSum)
	}
}

func TestConfinedRecoveryRequiresLanePlane(t *testing.T) {
	_, err := NewJob(pathGraph(t, 4), ccCompute, Config{
		MessagePlane: PlaneMutex,
		Recovery:     RecoveryLog,
		MsgLogFS:     dfs.NewMemFS(),
	}).Run()
	if err == nil {
		t.Fatal("RecoveryLog on the mutex plane should be rejected")
	}
	_, err = NewJob(pathGraph(t, 4), ccCompute, Config{Recovery: RecoveryLog}).Run()
	if err == nil {
		t.Fatal("RecoveryLog without MsgLogFS should be rejected")
	}
}
