package pregel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graft/internal/dfs"
)

// randomGraphFrom builds a deterministic pseudo-random undirected
// graph from compact quick-generated inputs.
func randomGraphFrom(seed int64, n int) *Graph {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), nil)
	}
	edges := n * 2
	for i := 0; i < edges; i++ {
		a := VertexID(rng.Intn(n))
		b := VertexID(rng.Intn(n))
		if a == b {
			continue
		}
		_ = g.AddUndirectedEdge(a, b, nil)
	}
	return g
}

// refComponents computes connected components by union-find, as the
// reference for the engine-executed CC.
func refComponents(g *Graph) map[VertexID]VertexID {
	parent := map[VertexID]VertexID{}
	var find func(VertexID) VertexID
	find = func(x VertexID) VertexID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, id := range g.VertexIDs() {
		parent[id] = id
	}
	for _, id := range g.VertexIDs() {
		for _, e := range g.Vertex(id).Edges() {
			ra, rb := find(id), find(e.Target)
			if ra != rb {
				if ra < rb {
					parent[rb] = ra
				} else {
					parent[ra] = rb
				}
			}
		}
	}
	out := map[VertexID]VertexID{}
	for _, id := range g.VertexIDs() {
		out[id] = find(id)
	}
	return out
}

// Property: engine-executed connected components equals union-find on
// arbitrary random graphs, for any worker count.
func TestPropertyCCMatchesUnionFind(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		n := int(nRaw%64) + 2
		workers := int(wRaw%7) + 1
		g := randomGraphFrom(seed, n)
		want := refComponents(g)
		run := g.Clone()
		if _, err := NewJob(run, ccCompute, Config{NumWorkers: workers}).Run(); err != nil {
			return false
		}
		// Compare as partitions: two vertices share an engine label iff
		// they share a union-find root.
		labels := map[VertexID]VertexID{}
		for _, id := range run.VertexIDs() {
			labels[id] = VertexID(run.Vertex(id).Value().(*LongValue).Get())
		}
		for _, a := range run.VertexIDs() {
			for _, b := range run.VertexIDs() {
				if (want[a] == want[b]) != (labels[a] == labels[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-superstep message counts sum to the job total, and
// superstep numbers are contiguous from zero.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		g := randomGraphFrom(seed, int(nRaw%80)+2)
		stats, err := NewJob(g, ccCompute, Config{NumWorkers: 3}).Run()
		if err != nil {
			return false
		}
		var sum int64
		for i, ss := range stats.PerSuperstep {
			if ss.Superstep != i {
				return false
			}
			sum += ss.MessagesSent
		}
		return sum == stats.TotalMessages && len(stats.PerSuperstep) == stats.Supersteps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a checkpoint-and-recover run produces identical vertex
// values to an uninterrupted run, for random graphs and random failure
// supersteps.
func TestPropertyRecoveryEquivalence(t *testing.T) {
	f := func(seed int64, nRaw, failRaw uint8) bool {
		n := int(nRaw%40) + 4
		plain := randomGraphFrom(seed, n)
		if _, err := NewJob(plain, ccCompute, Config{NumWorkers: 2}).Run(); err != nil {
			return false
		}

		recovered := randomGraphFrom(seed, n)
		failAt := int(failRaw % 4)
		failed := false
		_, err := NewJob(recovered, ccCompute, Config{
			NumWorkers:      2,
			CheckpointEvery: 2,
			CheckpointFS:    dfs.NewMemFS(),
			FailureAt: func(s int) bool {
				if s == failAt && !failed {
					failed = true
					return true
				}
				return false
			},
		}).Run()
		if err != nil {
			return false
		}
		for _, id := range plain.VertexIDs() {
			a := plain.Vertex(id).Value().(*LongValue).Get()
			b := recovered.Vertex(id).Value().(*LongValue).Get()
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfLoopAndSelfMessage exercises messages to oneself and
// self-loop edges.
func TestSelfLoopAndSelfMessage(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NewLong(0))
	g.Vertex(1).AddEdge(Edge{Target: 1}) // self-loop
	var got int64 = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		switch ctx.Superstep() {
		case 0:
			ctx.SendMessage(1, NewLong(7))
			ctx.SendMessageToAllEdges(v, NewLong(11)) // along the self-loop
		case 1:
			var sum int64
			for _, m := range msgs {
				sum += m.(*LongValue).Get()
			}
			got = sum
		}
		v.VoteToHalt()
		return nil
	})
	if _, err := NewJob(g, comp, Config{}).Run(); err != nil {
		t.Fatal(err)
	}
	if got != 18 {
		t.Errorf("self-delivered sum = %d, want 18", got)
	}
}

// TestManyWorkersFewVertices: more workers than vertices must work.
func TestManyWorkersFewVertices(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, nil)
	g.AddVertex(2, nil)
	if err := g.AddUndirectedEdge(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJob(g, ccCompute, Config{NumWorkers: 16}).Run(); err != nil {
		t.Fatal(err)
	}
	if got := g.Vertex(2).Value().(*LongValue).Get(); got != 1 {
		t.Errorf("label = %d", got)
	}
}
