package pregel

import (
	"fmt"
	"time"
)

// FaultStats aggregates the storage-resilience counters of one job:
// what the fault-injection layer threw at it and how the retry /
// fallback machinery absorbed it. The engine folds in counters from
// the checkpoint file system; Graft's instrumenter folds in the trace
// file system's. All counters are zero for a run on healthy storage.
type FaultStats struct {
	// Injected counts faults produced by a test injector.
	Injected int64 `json:"injected"`
	// Retries counts storage operations re-attempted after a transient
	// failure.
	Retries int64 `json:"retries"`
	// Backoff is the total time spent sleeping between retries.
	Backoff time.Duration `json:"backoff_ns"`
	// Fallbacks counts files degraded onto a secondary file system.
	Fallbacks int64 `json:"fallbacks"`
	// DroppedRecords counts trace records lost to persistent write
	// failure (the job continued without them).
	DroppedRecords int64 `json:"dropped_records"`
	// CorruptCheckpoints counts checkpoints skipped during recovery
	// because they were truncated or failed to decode.
	CorruptCheckpoints int64 `json:"corrupt_checkpoints"`
	// CheckpointsDeleted counts old checkpoints removed by retention
	// GC after a successful write.
	CheckpointsDeleted int64 `json:"checkpoints_deleted"`
	// CorruptLogSegments counts outbox-log failures: barriers whose log
	// write failed, and recovery attempts that found a corrupt or
	// unreadable log segment and fell back to checkpoint restart.
	CorruptLogSegments int64 `json:"corrupt_log_segments"`
}

// Add folds o's counters into s.
func (s *FaultStats) Add(o FaultStats) {
	s.Injected += o.Injected
	s.Retries += o.Retries
	s.Backoff += o.Backoff
	s.Fallbacks += o.Fallbacks
	s.DroppedRecords += o.DroppedRecords
	s.CorruptCheckpoints += o.CorruptCheckpoints
	s.CheckpointsDeleted += o.CheckpointsDeleted
	s.CorruptLogSegments += o.CorruptLogSegments
}

// Any reports whether any counter is nonzero.
func (s FaultStats) Any() bool {
	return s != FaultStats{}
}

// String renders the counters as a compact key=value line for CLI
// output.
func (s FaultStats) String() string {
	return fmt.Sprintf("injected=%d retries=%d backoff=%v fallbacks=%d dropped=%d corrupt-checkpoints=%d ckpt-deleted=%d corrupt-log-segments=%d",
		s.Injected, s.Retries, s.Backoff.Round(time.Microsecond), s.Fallbacks, s.DroppedRecords, s.CorruptCheckpoints,
		s.CheckpointsDeleted, s.CorruptLogSegments)
}

// FaultStatsProvider is implemented by resilient file-system wrappers
// (see internal/faults) that track their own counters; the engine and
// Graft query it structurally to plumb the numbers into Stats.
type FaultStatsProvider interface {
	FaultStats() FaultStats
}
