package pregel

import (
	"strings"
	"testing"

	"graft/internal/dfs"
)

// telemetryListener records every folded SuperstepStats.
type telemetryListener struct {
	steps []SuperstepStats
}

func (l *telemetryListener) JobStarted(info JobInfo)                            {}
func (l *telemetryListener) SuperstepStarted(superstep int, info SuperstepInfo) {}
func (l *telemetryListener) SuperstepFinished(superstep int, ss SuperstepStats) {
	l.steps = append(l.steps, ss)
}
func (l *telemetryListener) JobFinished(stats *Stats, err error) {}

func TestSuperstepTelemetryFoldsWorkerCounters(t *testing.T) {
	const n, workers = 64, 4
	g := pathGraph(t, n)
	l := &telemetryListener{}
	job := NewJob(g, ccCompute, Config{NumWorkers: workers, Listener: l})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.steps) != stats.Supersteps {
		t.Fatalf("listener saw %d supersteps, stats say %d", len(l.steps), stats.Supersteps)
	}
	var totalSent, totalReceived int64
	for i, ss := range l.steps {
		if ss.Superstep != i {
			t.Errorf("step %d: Superstep = %d", i, ss.Superstep)
		}
		if len(ss.Workers) != workers {
			t.Fatalf("step %d: %d worker rows, want %d", i, len(ss.Workers), workers)
		}
		var wv, wsent, wrecv int64
		for _, ws := range ss.Workers {
			if ws.BarrierWait < 0 {
				t.Errorf("step %d worker %d: negative barrier wait %v", i, ws.Worker, ws.BarrierWait)
			}
			wv += ws.VerticesProcessed
			wsent += ws.MessagesSent
			wrecv += ws.MessagesReceived
		}
		if wv != ss.VerticesProcessed {
			t.Errorf("step %d: worker vertices sum %d != total %d", i, wv, ss.VerticesProcessed)
		}
		if wsent != ss.MessagesSent {
			t.Errorf("step %d: worker sent sum %d != total %d", i, wsent, ss.MessagesSent)
		}
		if wrecv != ss.MessagesReceived {
			t.Errorf("step %d: worker received sum %d != total %d", i, wrecv, ss.MessagesReceived)
		}
		if ss.VerticesProcessed > 0 && ss.ComputeSkew < 1 {
			t.Errorf("step %d: compute skew %.3f < 1", i, ss.ComputeSkew)
		}
		if ss.Straggler < -1 || ss.Straggler >= workers {
			t.Errorf("step %d: straggler %d out of range", i, ss.Straggler)
		}
		totalSent += ss.MessagesSent
		totalReceived += ss.MessagesReceived
	}
	// Every vertex computes in superstep 0.
	if l.steps[0].VerticesProcessed != n {
		t.Errorf("superstep 0 processed %d vertices, want %d", l.steps[0].VerticesProcessed, n)
	}
	// Without a combiner every sent message is eventually delivered.
	if totalSent != totalReceived {
		t.Errorf("job sent %d messages but delivered %d", totalSent, totalReceived)
	}
	if stats.TotalMessages != totalSent {
		t.Errorf("Stats.TotalMessages = %d, telemetry sum = %d", stats.TotalMessages, totalSent)
	}
	if compute, _, _ := stats.PhaseTotals(); stats.Runtime < compute {
		t.Errorf("Runtime %v < summed compute phases %v", stats.Runtime, compute)
	}
}

func TestCombinerTelemetryAccountsMergedMessages(t *testing.T) {
	// A star: every leaf messages the hub each superstep, so a min
	// combiner merges most of them away.
	g := NewGraph()
	const leaves = 40
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= leaves; i++ {
		g.AddVertex(VertexID(i), NewLong(int64(i)))
		if err := g.AddUndirectedEdge(0, VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	l := &telemetryListener{}
	job := NewJob(g, ccCompute, Config{
		NumWorkers: 3,
		Listener:   l,
		Combiner: CombineFunc(func(to VertexID, a, b Value) Value {
			if a.(*LongValue).Get() <= b.(*LongValue).Get() {
				return a
			}
			return b
		}),
	})
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	var sent, received, combined int64
	for _, ss := range l.steps {
		sent += ss.MessagesSent
		received += ss.MessagesReceived
		combined += ss.MessagesCombined
	}
	if combined == 0 {
		t.Fatal("combiner merged no messages on a star graph")
	}
	if received != sent-combined {
		t.Errorf("delivered %d messages, want sent-combined = %d-%d = %d",
			received, sent, combined, sent-combined)
	}
}

func TestDisableMetricsSkipsTelemetry(t *testing.T) {
	g := pathGraph(t, 32)
	l := &telemetryListener{}
	job := NewJob(g, ccCompute, Config{NumWorkers: 4, Listener: l, DisableMetrics: true})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.steps) == 0 {
		t.Fatal("listener saw no supersteps")
	}
	for i, ss := range l.steps {
		if len(ss.Workers) != 0 || ss.ComputeTime != 0 || ss.VerticesProcessed != 0 || ss.ComputeSkew != 0 {
			t.Errorf("step %d: telemetry collected despite DisableMetrics: %+v", i, ss)
		}
		// The pre-existing counters still work.
		if i == 0 && ss.MessagesSent == 0 {
			t.Error("superstep 0 sent no messages")
		}
	}
	if compute, barrier, capture := stats.PhaseTotals(); compute != 0 || barrier != 0 || capture != 0 {
		t.Errorf("PhaseTotals = %v/%v/%v with metrics disabled", compute, barrier, capture)
	}
}

func TestStatsStringAndRecoveryRuntime(t *testing.T) {
	fs := dfs.NewMemFS()
	failed := false
	g := pathGraph(t, 48)
	job := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(superstep int) bool {
			if superstep == 1 && !failed {
				failed = true
				return true
			}
			return false
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("failure was never injected")
	}
	if stats.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", stats.Recoveries)
	}
	if stats.RecoveryTime <= 0 {
		t.Error("RecoveryTime not recorded")
	}
	if stats.Runtime < stats.RecoveryTime {
		t.Errorf("Runtime %v < RecoveryTime %v", stats.Runtime, stats.RecoveryTime)
	}
	s := stats.String()
	for _, want := range []string{"supersteps=", "reason=", "recoveries=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q, missing %q", s, want)
		}
	}
}
