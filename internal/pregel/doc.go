// Package pregel is a Pregel-style bulk-synchronous-parallel graph
// processing engine: the Giraph-equivalent substrate the Graft
// debugger attaches to.
//
// Computation follows the model of Malewicz et al. (and its Giraph/GPS
// incarnation the paper targets): the graph is hash-partitioned across
// worker goroutines; execution proceeds in supersteps; in each
// superstep every active vertex runs a user Computation that may read
// its incoming messages, mutate its own value and edges, send messages
// for the next superstep, aggregate into global aggregators, and vote
// to halt. An optional MasterComputation runs at the beginning of
// every superstep and typically coordinates multi-phase algorithms
// through aggregators. The job terminates when every vertex has halted
// and no messages are in flight, when the master calls
// HaltComputation, or at the Config.MaxSupersteps safety bound.
//
// The engine also provides the substrate features Graft's story
// depends on:
//
//   - a Writable-style binary codec and value registry (Value,
//     Encoder/Decoder, RegisterValue) shared by messages, trace files
//     and checkpoints;
//   - message combiners and regular/persistent aggregators;
//   - vertex mutations (requested removals/additions and
//     create-on-message resolution at the superstep barrier);
//   - checkpointing to a FileSystem with simulated worker failure and
//     automatic recovery (Config.CheckpointEvery, Config.FailureAt);
//   - a JobListener interface through which Graft's instrumentation
//     observes superstep boundaries.
//
// Determinism: given fixed inputs and seeds, results are identical
// across runs and worker counts for order-insensitive computations.
// Message delivery order within an inbox is unspecified, exactly as in
// Pregel; computations must not depend on it.
package pregel
