package pregel

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Giraph's common configuration uses
// LongWritable IDs; we fix IDs to int64 for the same reason.
type VertexID int64

func (id VertexID) String() string { return fmt.Sprintf("%d", id) }

// Edge is an outgoing edge of a vertex. Value may be nil for
// unweighted graphs (Giraph's NullWritable edge value).
type Edge struct {
	Target VertexID
	Value  Value
}

// Vertex is the unit of computation. During a superstep a vertex is
// owned exclusively by the worker goroutine holding its partition, so
// its methods need no synchronization. Only the engine constructs
// vertices.
type Vertex struct {
	id     VertexID
	value  Value
	edges  []Edge
	halted bool

	// owner tracks topology mutations so the engine can cheaply keep
	// the global edge count current. It is nil for detached vertices
	// (graph building, replay).
	owner *partition
}

// NewDetachedVertex constructs a vertex that is not attached to a
// running job, for graph construction and context replay.
func NewDetachedVertex(id VertexID, value Value) *Vertex {
	return &Vertex{id: id, value: value}
}

// ID returns the vertex identifier.
func (v *Vertex) ID() VertexID { return v.id }

// Value returns the current vertex value. Callers that retain it
// across supersteps must Clone it.
func (v *Vertex) Value() Value { return v.value }

// SetValue replaces the vertex value.
func (v *Vertex) SetValue(val Value) { v.value = val }

// VoteToHalt declares the vertex inactive. It is reactivated if it
// receives a message in a later superstep.
func (v *Vertex) VoteToHalt() { v.halted = true }

// Halted reports whether the vertex has voted to halt.
func (v *Vertex) Halted() bool { return v.halted }

// NumEdges returns the out-degree.
func (v *Vertex) NumEdges() int { return len(v.edges) }

// Edges returns the outgoing edges. The slice is owned by the vertex;
// callers must not append to or reorder it.
func (v *Vertex) Edges() []Edge { return v.edges }

// EdgeValue returns the value of the edge to target, if present.
func (v *Vertex) EdgeValue(target VertexID) (Value, bool) {
	for i := range v.edges {
		if v.edges[i].Target == target {
			return v.edges[i].Value, true
		}
	}
	return nil, false
}

// HasEdge reports whether an edge to target exists.
func (v *Vertex) HasEdge(target VertexID) bool {
	_, ok := v.EdgeValue(target)
	return ok
}

// AddEdge appends an outgoing edge. Duplicate targets are permitted,
// as in Giraph's default multigraph edge store.
func (v *Vertex) AddEdge(e Edge) {
	v.edges = append(v.edges, e)
	if v.owner != nil {
		v.owner.edgeDelta++
		v.owner.subsDirty = true
	}
}

// RemoveEdges removes all edges to target and returns how many were
// removed.
func (v *Vertex) RemoveEdges(target VertexID) int {
	kept := v.edges[:0]
	removed := 0
	for _, e := range v.edges {
		if e.Target == target {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	v.edges = kept
	if v.owner != nil {
		v.owner.edgeDelta -= removed
		if removed > 0 {
			v.owner.subsDirty = true
		}
	}
	return removed
}

// RemoveAllEdges drops every outgoing edge.
func (v *Vertex) RemoveAllEdges() {
	if v.owner != nil {
		v.owner.edgeDelta -= len(v.edges)
		if len(v.edges) > 0 {
			v.owner.subsDirty = true
		}
	}
	v.edges = v.edges[:0]
}

// SetEdgeValue sets the value of the first edge to target, reporting
// whether such an edge exists.
func (v *Vertex) SetEdgeValue(target VertexID, val Value) bool {
	for i := range v.edges {
		if v.edges[i].Target == target {
			v.edges[i].Value = val
			return true
		}
	}
	return false
}

// SortEdges orders edges by target ID (stable for equal targets).
// Generators call it so that runs are deterministic regardless of
// construction order.
func (v *Vertex) SortEdges() {
	sort.SliceStable(v.edges, func(i, j int) bool {
		return v.edges[i].Target < v.edges[j].Target
	})
}

// CloneDetached deep-copies the vertex without an owner, for capture
// snapshots and checkpoints.
func (v *Vertex) CloneDetached() *Vertex {
	c := &Vertex{id: v.id, value: CloneValue(v.value), halted: v.halted}
	c.edges = make([]Edge, len(v.edges))
	for i, e := range v.edges {
		c.edges[i] = Edge{Target: e.Target, Value: CloneValue(e.Value)}
	}
	return c
}

func (v *Vertex) encode(e *Encoder) {
	e.PutVarint(int64(v.id))
	EncodeTyped(e, v.value)
	e.PutBool(v.halted)
	e.PutUvarint(uint64(len(v.edges)))
	for _, ed := range v.edges {
		e.PutVarint(int64(ed.Target))
		EncodeTyped(e, ed.Value)
	}
}

func decodeVertex(d *Decoder) (*Vertex, error) {
	v := &Vertex{}
	v.id = VertexID(d.Varint())
	val, err := DecodeTyped(d)
	if err != nil {
		return nil, err
	}
	v.value = val
	v.halted = d.Bool()
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > uint64(d.Remaining()) {
		return nil, ErrCorrupt
	}
	v.edges = make([]Edge, 0, n)
	for i := uint64(0); i < n; i++ {
		target := VertexID(d.Varint())
		ev, err := DecodeTyped(d)
		if err != nil {
			return nil, err
		}
		v.edges = append(v.edges, Edge{Target: target, Value: ev})
	}
	return v, d.Err()
}
