package pregel

import "math"

// Standard aggregators mirroring Giraph's library
// (LongSumAggregator, DoubleSumAggregator, min/max, boolean and/or,
// and the overwrite aggregator commonly used by master.compute to
// broadcast the current algorithm phase).

// LongSumAggregator sums LongValue contributions.
type LongSumAggregator struct{}

func (LongSumAggregator) CreateInitial() Value { return NewLong(0) }
func (LongSumAggregator) Aggregate(a, b Value) Value {
	av := a.(*LongValue)
	av.Set(av.Get() + b.(*LongValue).Get())
	return av
}

// LongMaxAggregator keeps the maximum LongValue contribution.
type LongMaxAggregator struct{}

func (LongMaxAggregator) CreateInitial() Value { return NewLong(minInt64) }
func (LongMaxAggregator) Aggregate(a, b Value) Value {
	av, bv := a.(*LongValue), b.(*LongValue)
	if bv.Get() > av.Get() {
		av.Set(bv.Get())
	}
	return av
}

// LongMinAggregator keeps the minimum LongValue contribution.
type LongMinAggregator struct{}

func (LongMinAggregator) CreateInitial() Value { return NewLong(maxInt64) }
func (LongMinAggregator) Aggregate(a, b Value) Value {
	av, bv := a.(*LongValue), b.(*LongValue)
	if bv.Get() < av.Get() {
		av.Set(bv.Get())
	}
	return av
}

// DoubleSumAggregator sums DoubleValue contributions.
type DoubleSumAggregator struct{}

func (DoubleSumAggregator) CreateInitial() Value { return NewDouble(0) }
func (DoubleSumAggregator) Aggregate(a, b Value) Value {
	av := a.(*DoubleValue)
	av.Set(av.Get() + b.(*DoubleValue).Get())
	return av
}

// DoubleMaxAggregator keeps the maximum DoubleValue contribution.
type DoubleMaxAggregator struct{}

func (DoubleMaxAggregator) CreateInitial() Value { return NewDouble(negInf) }
func (DoubleMaxAggregator) Aggregate(a, b Value) Value {
	av, bv := a.(*DoubleValue), b.(*DoubleValue)
	if bv.Get() > av.Get() {
		av.Set(bv.Get())
	}
	return av
}

// BoolOrAggregator ORs BoolValue contributions.
type BoolOrAggregator struct{}

func (BoolOrAggregator) CreateInitial() Value { return NewBool(false) }
func (BoolOrAggregator) Aggregate(a, b Value) Value {
	av := a.(*BoolValue)
	av.Set(av.Get() || b.(*BoolValue).Get())
	return av
}

// BoolAndAggregator ANDs BoolValue contributions.
type BoolAndAggregator struct{}

func (BoolAndAggregator) CreateInitial() Value { return NewBool(true) }
func (BoolAndAggregator) Aggregate(a, b Value) Value {
	av := a.(*BoolValue)
	av.Set(av.Get() && b.(*BoolValue).Get())
	return av
}

// LongOverwriteAggregator holds a LongValue where each Aggregate call
// replaces the previous value; master.compute uses it to broadcast
// counters it owns (e.g. the current color in graph coloring). The
// initial value is 0.
type LongOverwriteAggregator struct{}

func (LongOverwriteAggregator) CreateInitial() Value { return NewLong(0) }
func (LongOverwriteAggregator) Aggregate(a, b Value) Value {
	av := a.(*LongValue)
	av.Set(b.(*LongValue).Get())
	return av
}

// TextOverwriteAggregator holds a TextValue where each Aggregate call
// replaces the previous value. master.compute uses it with
// SetAggregated to broadcast the current phase of a multi-phase
// algorithm (the "phase" aggregator in Figure 6 of the paper). The
// initial value is the empty string.
type TextOverwriteAggregator struct{}

func (TextOverwriteAggregator) CreateInitial() Value { return NewText("") }
func (TextOverwriteAggregator) Aggregate(a, b Value) Value {
	av := a.(*TextValue)
	av.Set(b.(*TextValue).Get())
	return av
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

var negInf = math.Inf(-1)
