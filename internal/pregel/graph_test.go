package pregel

import (
	"testing"
	"testing/quick"
)

func TestGraphBuild(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NewLong(10))
	g.AddVertex(2, NewLong(20))
	g.AddVertex(3, nil)
	if err := g.AddEdge(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddUndirectedEdge(2, 3, NewDouble(1.5)); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if err := g.AddEdge(1, 99, nil); err == nil {
		t.Error("expected error for edge to missing vertex")
	}
	if err := g.AddEdge(99, 1, nil); err == nil {
		t.Error("expected error for edge from missing vertex")
	}
	ids := g.VertexIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("VertexIDs = %v", ids)
	}
}

func TestGraphAddVertexReplaces(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NewLong(1))
	g.AddVertex(2, NewLong(2))
	if err := g.AddEdge(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	g.AddVertex(1, NewLong(100)) // replaces vertex and drops its edges
	if g.NumEdges() != 0 {
		t.Errorf("edges after replace = %d, want 0", g.NumEdges())
	}
	if got := g.Vertex(1).Value().(*LongValue).Get(); got != 100 {
		t.Errorf("value after replace = %d", got)
	}
}

func TestGraphEnsureVertex(t *testing.T) {
	g := NewGraph()
	v := g.EnsureVertex(5, func() Value { return NewLong(7) })
	if v.Value().(*LongValue).Get() != 7 {
		t.Error("default value not applied")
	}
	again := g.EnsureVertex(5, func() Value { return NewLong(9) })
	if again != v {
		t.Error("EnsureVertex created a duplicate")
	}
	nilDefault := g.EnsureVertex(6, nil)
	if nilDefault.Value() != nil {
		t.Error("nil default should yield nil value")
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NewLong(1))
	g.AddVertex(2, NewLong(2))
	if err := g.AddEdge(1, 2, NewDouble(3.5)); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	c.Vertex(1).Value().(*LongValue).Set(999)
	c.Vertex(1).Edges()[0].Value.(*DoubleValue).Set(0)
	c.Vertex(2).VoteToHalt()
	c.Vertex(1).AddEdge(Edge{Target: 2})

	if g.Vertex(1).Value().(*LongValue).Get() != 1 {
		t.Error("clone shares vertex values")
	}
	if g.Vertex(1).Edges()[0].Value.(*DoubleValue).Get() != 3.5 {
		t.Error("clone shares edge values")
	}
	if g.Vertex(2).Halted() {
		t.Error("clone shares halted flag")
	}
	if g.Vertex(1).NumEdges() != 1 {
		t.Error("clone shares adjacency")
	}
	if c.NumVertices() != g.NumVertices() {
		t.Error("clone vertex count mismatch")
	}
}

func TestVertexEdgeOps(t *testing.T) {
	v := NewDetachedVertex(1, NewLong(0))
	v.AddEdge(Edge{Target: 3, Value: NewDouble(1)})
	v.AddEdge(Edge{Target: 2, Value: NewDouble(2)})
	v.AddEdge(Edge{Target: 3, Value: NewDouble(3)}) // duplicate target allowed

	if v.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", v.NumEdges())
	}
	if !v.HasEdge(2) || v.HasEdge(99) {
		t.Error("HasEdge wrong")
	}
	if val, ok := v.EdgeValue(3); !ok || val.(*DoubleValue).Get() != 1 {
		t.Error("EdgeValue should return first matching edge")
	}
	if !v.SetEdgeValue(2, NewDouble(20)) {
		t.Error("SetEdgeValue failed")
	}
	if val, _ := v.EdgeValue(2); val.(*DoubleValue).Get() != 20 {
		t.Error("SetEdgeValue did not stick")
	}
	if v.SetEdgeValue(99, NewDouble(0)) {
		t.Error("SetEdgeValue to missing edge should fail")
	}

	v.SortEdges()
	if v.Edges()[0].Target != 2 {
		t.Errorf("after sort, first target = %d", v.Edges()[0].Target)
	}

	if n := v.RemoveEdges(3); n != 2 {
		t.Errorf("RemoveEdges(3) = %d, want 2", n)
	}
	if v.NumEdges() != 1 {
		t.Errorf("NumEdges after remove = %d", v.NumEdges())
	}
	v.RemoveAllEdges()
	if v.NumEdges() != 0 {
		t.Error("RemoveAllEdges left edges")
	}
}

func TestVertexEncodeDecode(t *testing.T) {
	v := NewDetachedVertex(42, NewText("hello"))
	v.AddEdge(Edge{Target: 1, Value: NewDouble(1.5)})
	v.AddEdge(Edge{Target: 2, Value: nil})
	v.VoteToHalt()

	e := NewEncoder()
	v.encode(e)
	got, err := decodeVertex(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != 42 || !got.Halted() || got.NumEdges() != 2 {
		t.Errorf("decoded vertex mismatch: %+v", got)
	}
	if !ValuesEqual(got.Value(), NewText("hello")) {
		t.Error("decoded value mismatch")
	}
	if got.Edges()[1].Value != nil {
		t.Error("nil edge value should survive round trip")
	}
	if !ValuesEqual(got.Edges()[0].Value, NewDouble(1.5)) {
		t.Error("edge value mismatch")
	}
}

// Property: a graph built from any set of vertex IDs reports them back
// sorted and deduplicated, and Clone preserves the structure exactly.
func TestGraphPropertyCloneEquivalence(t *testing.T) {
	f := func(ids []int16) bool {
		g := NewGraph()
		for _, raw := range ids {
			g.AddVertex(VertexID(raw), NewLong(int64(raw)))
		}
		for i := 1; i < len(ids); i++ {
			_ = g.AddEdge(VertexID(ids[i-1]), VertexID(ids[i]), nil)
		}
		c := g.Clone()
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			return false
		}
		gids, cids := g.VertexIDs(), c.VertexIDs()
		if len(gids) != len(cids) {
			return false
		}
		for i := range gids {
			if gids[i] != cids[i] {
				return false
			}
			if g.Vertex(gids[i]).NumEdges() != c.Vertex(cids[i]).NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
