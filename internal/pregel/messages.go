package pregel

import (
	"sort"
	"sync"
)

// PlaneMode selects the message-plane implementation.
type PlaneMode int

const (
	// PlaneLanes is the lock-free plane: each worker appends pooled
	// batches to its own row of a numWorkers × numWorkers lane matrix
	// (single writer, no synchronization), and the owning worker merges
	// its column into the shard map after the superstep barrier (single
	// reader, ordered by the barrier). With a combiner installed,
	// senders additionally pre-combine per destination vertex before
	// flushing. This is the default.
	PlaneLanes PlaneMode = iota
	// PlaneMutex is the original shard-mutex plane: every flushed batch
	// takes the destination shard's lock and combines at the receiver.
	// Kept as the baseline the engine benchmark compares against.
	PlaneMutex
)

func (m PlaneMode) String() string {
	switch m {
	case PlaneLanes:
		return "lanes"
	case PlaneMutex:
		return "mutex"
	}
	return "unknown"
}

// msgEntry is one in-flight message. With sender-side combining a
// single entry may stand for many logical sends.
type msgEntry struct {
	to  VertexID
	msg Value
}

// msgBatch is one flushed batch of entries plus the logical message
// counts behind them: n counts SendMessage calls, combined counts the
// ones the sender merged away before flushing (n - combined == number
// of entries surviving to the lane).
type msgBatch struct {
	entries  []msgEntry
	n        int64
	combined int64
}

// batchPool recycles msgBatch objects across flushes and supersteps so
// the steady-state message plane allocates nothing the GC has to mark,
// mirroring the pooled-batch design trace.Sink uses.
type batchPool struct {
	p sync.Pool
}

func (bp *batchPool) get() *msgBatch {
	if b, ok := bp.p.Get().(*msgBatch); ok {
		return b
	}
	return &msgBatch{entries: make([]msgEntry, 0, msgFlushBatch)}
}

func (bp *batchPool) put(b *msgBatch) {
	// Zero the entries so the pool does not retain Value pointers.
	for i := range b.entries {
		b.entries[i] = msgEntry{}
	}
	b.entries = b.entries[:0]
	b.n, b.combined = 0, 0
	bp.p.Put(b)
}

// msgLane is one cell of the lane matrix: the batches one sender has
// flushed toward one destination partition. Only the sending worker
// appends during the compute phase; only the coordinator or the
// destination's owning worker reads after the barrier.
type msgLane struct {
	batches  []*msgBatch
	n        int64
	combined int64
}

// messageStore holds the messages sent during one superstep for
// delivery at the next. It is sharded by destination partition. In
// PlaneMutex mode, writes from any worker lock the destination shard.
// In PlaneLanes mode, writes go to the per-sender lane matrix without
// synchronization and mergeLane folds each column into its shard map
// at the barrier; reads during the next superstep are done exclusively
// by the shard's owning worker and need no locking either way (the
// superstep barrier orders them).
type messageStore struct {
	combiner Combiner
	mode     PlaneMode
	shards   []msgShard
	lanes    [][]msgLane // [sender][dest]; nil in PlaneMutex mode
	pool     *batchPool  // shared across the engine's stores; nil in PlaneMutex mode
}

type msgShard struct {
	mu sync.Mutex
	// Exactly one of m/c is used, depending on whether a combiner is
	// installed.
	m map[VertexID][]Value
	c map[VertexID]Value
	// n counts messages received (pre-combining), for stats.
	n int64
	// combined counts messages merged away by the combiner (at the
	// sender or the receiver), for the telemetry layer (n - combined
	// messages survive to delivery).
	combined int64
}

func newMessageStore(numShards int, combiner Combiner, mode PlaneMode, pool *batchPool) *messageStore {
	s := &messageStore{combiner: combiner, mode: mode, shards: make([]msgShard, numShards)}
	for i := range s.shards {
		if combiner != nil {
			s.shards[i].c = make(map[VertexID]Value)
		} else {
			s.shards[i].m = make(map[VertexID][]Value)
		}
	}
	if mode == PlaneLanes {
		s.pool = pool
		s.lanes = make([][]msgLane, numShards)
		for i := range s.lanes {
			s.lanes[i] = make([]msgLane, numShards)
		}
	}
	return s
}

// deliver appends a batch of messages to the destination shard under
// its lock (the PlaneMutex write path).
func (s *messageStore) deliver(shard int, entries []msgEntry) {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.combiner != nil {
		for _, en := range entries {
			if cur, ok := sh.c[en.to]; ok {
				sh.c[en.to] = s.combiner.Combine(en.to, cur, en.msg)
				sh.combined++
			} else {
				sh.c[en.to] = en.msg
			}
		}
	} else {
		for _, en := range entries {
			sh.m[en.to] = append(sh.m[en.to], en.msg)
		}
	}
	sh.n += int64(len(entries))
}

// laneAppend hands one flushed batch to lane [sender][dest]. Only
// worker `sender` may call it during the compute phase; the single
// writer makes it synchronization-free.
func (s *messageStore) laneAppend(sender, dest int, b *msgBatch) {
	ln := &s.lanes[sender][dest]
	ln.batches = append(ln.batches, b)
	ln.n += b.n
	ln.combined += b.combined
}

// mergeLane folds column `shard` of the lane matrix into the shard
// map and returns the batches to the pool. It must run after the
// superstep barrier, with exactly one goroutine touching the shard
// (the destination's owning worker). Senders are merged in worker
// order and batches in flush order, so the merged inbox order is
// deterministic — unlike the mutex plane, where it depends on lock
// acquisition order.
func (s *messageStore) mergeLane(shard int) {
	if s.mode != PlaneLanes {
		return
	}
	sh := &s.shards[shard]
	for sender := range s.lanes {
		ln := &s.lanes[sender][shard]
		if ln.n == 0 && len(ln.batches) == 0 {
			continue
		}
		for _, b := range ln.batches {
			if s.combiner != nil {
				for _, en := range b.entries {
					if cur, ok := sh.c[en.to]; ok {
						sh.c[en.to] = s.combiner.Combine(en.to, cur, en.msg)
						sh.combined++
					} else {
						sh.c[en.to] = en.msg
					}
				}
			} else {
				for _, en := range b.entries {
					sh.m[en.to] = append(sh.m[en.to], en.msg)
				}
			}
			s.pool.put(b)
		}
		sh.n += ln.n
		sh.combined += ln.combined
		ln.batches = nil
		ln.n, ln.combined = 0, 0
	}
}

// resetShard clears one shard to its freshly constructed state.
// Confined recovery uses it to discard a failed partition's
// next-superstep inbox before rebuilding it from the outbox logs. The
// caller must be the only goroutine touching the store (the
// coordinator, inside the recovery path).
func (s *messageStore) resetShard(shard int) {
	sh := &s.shards[shard]
	if s.combiner != nil {
		sh.c = make(map[VertexID]Value)
	} else {
		sh.m = make(map[VertexID][]Value)
	}
	sh.n, sh.combined = 0, 0
}

// replayDeliver delivers one replayed message straight into a shard
// map, combining like mergeLane does. Coordinator-only (no locking):
// confined recovery rebuilds inboxes on a single goroutine, in the
// deterministic sender-major order the lane merge would have used.
func (s *messageStore) replayDeliver(shard int, to VertexID, msg Value) {
	sh := &s.shards[shard]
	if s.combiner != nil {
		if cur, ok := sh.c[to]; ok {
			sh.c[to] = s.combiner.Combine(to, cur, msg)
			sh.combined++
		} else {
			sh.c[to] = msg
		}
	} else {
		sh.m[to] = append(sh.m[to], msg)
	}
	sh.n++
}

// migrate moves the pending inbox of one vertex between shards, for
// the skew rebalancer. Both shards must be merged and quiescent (the
// coordinator calls it at the barrier).
func (s *messageStore) migrate(from, to int, id VertexID) {
	fs, ts := &s.shards[from], &s.shards[to]
	if s.combiner != nil {
		if v, ok := fs.c[id]; ok {
			delete(fs.c, id)
			ts.c[id] = v
		}
		return
	}
	if msgs, ok := fs.m[id]; ok {
		delete(fs.m, id)
		ts.m[id] = msgs
	}
}

// hasPending reports whether the shard holds any undelivered messages.
// Valid only after every lane column has been merged into the shards
// (integrateMissing does this at each barrier, and checkpoint recovery
// decodes straight into shards), which is when the engine's partition
// skip consults it.
func (s *messageStore) hasPending(shard int) bool {
	sh := &s.shards[shard]
	return len(sh.c) > 0 || len(sh.m) > 0
}

// take removes and returns the messages for one vertex. Only the
// shard's owning worker may call it, after the sending superstep's
// barrier (and, in PlaneLanes mode, after mergeLane).
func (s *messageStore) take(shard int, id VertexID) []Value {
	sh := &s.shards[shard]
	if s.combiner != nil {
		if v, ok := sh.c[id]; ok {
			delete(sh.c, id)
			return []Value{v}
		}
		return nil
	}
	if msgs, ok := sh.m[id]; ok {
		delete(sh.m, id)
		return msgs
	}
	return nil
}

// pendingIDs returns, in ascending order, the IDs in the shard that
// are not in exclude. The owning worker uses it to find messages
// addressed to vertices that do not exist yet.
func (s *messageStore) pendingIDs(shard int, exclude map[VertexID]*Vertex) []VertexID {
	sh := &s.shards[shard]
	var ids []VertexID
	if s.combiner != nil {
		for id := range sh.c {
			if _, ok := exclude[id]; !ok {
				ids = append(ids, id)
			}
		}
	} else {
		for id := range sh.m {
			if _, ok := exclude[id]; !ok {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// trafficMatrix snapshots the lane matrix's per-cell message counts:
// element [s][d] is the number of messages (pre-combine) worker s sent
// toward partition d this superstep. It must be read at the barrier
// before mergeLane folds the columns away; at that point a fresh
// store's shards are empty, so the matrix sums to total(). Returns nil
// in PlaneMutex mode, which has no per-sender accounting.
func (s *messageStore) trafficMatrix() [][]int64 {
	if s.mode != PlaneLanes {
		return nil
	}
	m := make([][]int64, len(s.lanes))
	for i := range s.lanes {
		row := make([]int64, len(s.lanes[i]))
		for j := range s.lanes[i] {
			row[j] = s.lanes[i][j].n
		}
		m[i] = row
	}
	return m
}

// total returns the number of messages received across all shards
// (before combining), including messages still sitting in unmerged
// lanes.
func (s *messageStore) total() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].n
	}
	for i := range s.lanes {
		for j := range s.lanes[i] {
			n += s.lanes[i][j].n
		}
	}
	return n
}

// combinedTotal returns how many messages combiners merged away across
// all shards and unmerged lanes.
func (s *messageStore) combinedTotal() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].combined
	}
	for i := range s.lanes {
		for j := range s.lanes[i] {
			n += s.lanes[i][j].combined
		}
	}
	return n
}

// encode serializes the undelivered messages of one shard, for
// checkpoints. Entries are written in ascending vertex order. The
// scratch slice is reused across shards (and checkpoints) to avoid
// allocating a fresh ID slice per shard; the possibly-grown slice is
// returned for the next call.
func (s *messageStore) encode(shard int, e *Encoder, scratch []VertexID) []VertexID {
	sh := &s.shards[shard]
	ids := scratch[:0]
	if s.combiner != nil {
		for id := range sh.c {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.PutUvarint(uint64(len(ids)))
		for _, id := range ids {
			e.PutVarint(int64(id))
			e.PutUvarint(1)
			EncodeTyped(e, sh.c[id])
		}
		return ids
	}
	for id := range sh.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		e.PutVarint(int64(id))
		msgs := sh.m[id]
		e.PutUvarint(uint64(len(msgs)))
		for _, m := range msgs {
			EncodeTyped(e, m)
		}
	}
	return ids
}

// decodeInto restores one shard from its encoded form.
func (s *messageStore) decodeInto(shard int, d *Decoder) error {
	sh := &s.shards[shard]
	nIDs := d.Uvarint()
	for i := uint64(0); i < nIDs && d.Err() == nil; i++ {
		id := VertexID(d.Varint())
		nMsgs := d.Uvarint()
		for j := uint64(0); j < nMsgs && d.Err() == nil; j++ {
			v, err := DecodeTyped(d)
			if err != nil {
				return err
			}
			if s.combiner != nil {
				if cur, ok := sh.c[id]; ok {
					sh.c[id] = s.combiner.Combine(id, cur, v)
				} else {
					sh.c[id] = v
				}
			} else {
				sh.m[id] = append(sh.m[id], v)
			}
			sh.n++
		}
	}
	return d.Err()
}
