package pregel

import (
	"sort"
	"sync"
)

// msgEntry is one in-flight message.
type msgEntry struct {
	to  VertexID
	msg Value
}

// messageStore holds the messages sent during one superstep for
// delivery at the next. It is sharded by destination partition: writes
// from any worker lock only the destination shard, while reads during
// the next superstep are done exclusively by the shard's owning worker
// and need no locking (the superstep barrier orders them).
type messageStore struct {
	combiner Combiner
	shards   []msgShard
}

type msgShard struct {
	mu sync.Mutex
	// Exactly one of m/c is used, depending on whether a combiner is
	// installed.
	m map[VertexID][]Value
	c map[VertexID]Value
	// n counts messages received (pre-combining), for stats.
	n int64
	// combined counts messages merged away by the combiner, for the
	// telemetry layer (n - combined messages survive to delivery).
	combined int64
}

func newMessageStore(numShards int, combiner Combiner) *messageStore {
	s := &messageStore{combiner: combiner, shards: make([]msgShard, numShards)}
	for i := range s.shards {
		if combiner != nil {
			s.shards[i].c = make(map[VertexID]Value)
		} else {
			s.shards[i].m = make(map[VertexID][]Value)
		}
	}
	return s
}

// deliver appends a batch of messages to the destination shard.
func (s *messageStore) deliver(shard int, entries []msgEntry) {
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.combiner != nil {
		for _, en := range entries {
			if cur, ok := sh.c[en.to]; ok {
				sh.c[en.to] = s.combiner.Combine(en.to, cur, en.msg)
				sh.combined++
			} else {
				sh.c[en.to] = en.msg
			}
		}
	} else {
		for _, en := range entries {
			sh.m[en.to] = append(sh.m[en.to], en.msg)
		}
	}
	sh.n += int64(len(entries))
}

// take removes and returns the messages for one vertex. Only the
// shard's owning worker may call it, after the sending superstep's
// barrier.
func (s *messageStore) take(shard int, id VertexID) []Value {
	sh := &s.shards[shard]
	if s.combiner != nil {
		if v, ok := sh.c[id]; ok {
			delete(sh.c, id)
			return []Value{v}
		}
		return nil
	}
	if msgs, ok := sh.m[id]; ok {
		delete(sh.m, id)
		return msgs
	}
	return nil
}

// pendingIDs returns, in ascending order, the IDs in the shard that
// are not in exclude. The owning worker uses it to find messages
// addressed to vertices that do not exist yet.
func (s *messageStore) pendingIDs(shard int, exclude map[VertexID]*Vertex) []VertexID {
	sh := &s.shards[shard]
	var ids []VertexID
	if s.combiner != nil {
		for id := range sh.c {
			if _, ok := exclude[id]; !ok {
				ids = append(ids, id)
			}
		}
	} else {
		for id := range sh.m {
			if _, ok := exclude[id]; !ok {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// total returns the number of messages received across all shards
// (before combining).
func (s *messageStore) total() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].n
	}
	return n
}

// combinedTotal returns how many messages the combiner merged away
// across all shards.
func (s *messageStore) combinedTotal() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].combined
	}
	return n
}

// encode serializes the undelivered messages of one shard, for
// checkpoints. Entries are written in ascending vertex order.
func (s *messageStore) encode(shard int, e *Encoder) {
	sh := &s.shards[shard]
	if s.combiner != nil {
		ids := make([]VertexID, 0, len(sh.c))
		for id := range sh.c {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.PutUvarint(uint64(len(ids)))
		for _, id := range ids {
			e.PutVarint(int64(id))
			e.PutUvarint(1)
			EncodeTyped(e, sh.c[id])
		}
		return
	}
	ids := make([]VertexID, 0, len(sh.m))
	for id := range sh.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		e.PutVarint(int64(id))
		msgs := sh.m[id]
		e.PutUvarint(uint64(len(msgs)))
		for _, m := range msgs {
			EncodeTyped(e, m)
		}
	}
}

// decodeInto restores one shard from its encoded form.
func (s *messageStore) decodeInto(shard int, d *Decoder) error {
	sh := &s.shards[shard]
	nIDs := d.Uvarint()
	for i := uint64(0); i < nIDs && d.Err() == nil; i++ {
		id := VertexID(d.Varint())
		nMsgs := d.Uvarint()
		for j := uint64(0); j < nMsgs && d.Err() == nil; j++ {
			v, err := DecodeTyped(d)
			if err != nil {
				return err
			}
			if s.combiner != nil {
				if cur, ok := sh.c[id]; ok {
					sh.c[id] = s.combiner.Combine(id, cur, v)
				} else {
					sh.c[id] = v
				}
			} else {
				sh.m[id] = append(sh.m[id], v)
			}
			sh.n++
		}
	}
	return d.Err()
}
