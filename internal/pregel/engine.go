package pregel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"graft/internal/anomaly"
)

// TerminationReason explains why a job stopped.
type TerminationReason int

const (
	// ReasonConverged means every vertex voted to halt and no messages
	// were in flight.
	ReasonConverged TerminationReason = iota
	// ReasonMasterHalted means master.compute called HaltComputation.
	ReasonMasterHalted
	// ReasonMaxSupersteps means the Config.MaxSupersteps safety limit
	// was reached (how the maximum-weight-matching scenario's infinite
	// loop surfaces, paper §4.3).
	ReasonMaxSupersteps
)

func (r TerminationReason) String() string {
	switch r {
	case ReasonConverged:
		return "converged"
	case ReasonMasterHalted:
		return "master-halted"
	case ReasonMaxSupersteps:
		return "max-supersteps"
	}
	return fmt.Sprintf("TerminationReason(%d)", int(r))
}

// Stats summarizes a finished job.
type Stats struct {
	// Supersteps is the number of supersteps executed (superstep
	// numbers 0..Supersteps-1).
	Supersteps int
	Reason     TerminationReason
	// TotalMessages counts messages sent over the whole job, before
	// combining.
	TotalMessages int64
	// MessagesDropped counts messages addressed to nonexistent
	// vertices when Config.CreateMissingVertices is false.
	MessagesDropped int64
	// Recoveries counts recoveries triggered by failure injection
	// (checkpoint restarts and confined log replays alike).
	Recoveries int
	// RecoveryEvents has one entry per recovery with its confinement
	// breakdown: which partitions failed, which mode recovered them, how
	// many supersteps and bytes were replayed and how long it took.
	RecoveryEvents []RecoveryEvent
	// MessagesLogged and BytesLogged count the outbox-log volume written
	// by RecoveryLog's sender-side message logging (zero in checkpoint
	// mode).
	MessagesLogged int64
	BytesLogged    int64
	// Faults aggregates storage-resilience counters: faults injected
	// into the checkpoint/trace file systems and the retries, fallbacks
	// and skipped checkpoints that absorbed them.
	Faults FaultStats
	// Runtime is the monotonic wall time of Job.Run: partitioning,
	// every superstep, and checkpoint recovery.
	Runtime time.Duration
	// RecoveryTime is the portion of Runtime spent restoring
	// checkpoints after simulated worker crashes.
	RecoveryTime time.Duration
	// Rebalances counts barriers at which the rebalancer migrated
	// vertices (zero unless rebalancing is enabled).
	Rebalances int
	// VerticesMigrated counts vertices the rebalancer moved between
	// partitions over the whole job.
	VerticesMigrated int64
	// Partitioner is the placement mode the job ran with.
	Partitioner PartitionerMode
	// PartitionSizes is the per-worker vertex count at job end — the
	// placement-quality view graft show and the GUI render.
	PartitionSizes []int64
	// EdgeCut is the number of directed edges whose endpoints ended the
	// job on different workers (zero when telemetry is disabled).
	EdgeCut int64
	// Anomalies collects every event the anomaly detectors emitted over
	// the job, in superstep order (nil when detection is disabled).
	Anomalies []anomaly.Event
	// PerSuperstep has one entry per executed superstep.
	PerSuperstep []SuperstepStats
}

// String renders the one-line summary the CLI prints after a run.
func (s *Stats) String() string {
	line := fmt.Sprintf("supersteps=%d reason=%s messages=%d runtime=%v",
		s.Supersteps, s.Reason, s.TotalMessages, s.Runtime.Round(time.Millisecond))
	if s.MessagesDropped > 0 {
		line += fmt.Sprintf(" msg-dropped=%d", s.MessagesDropped)
	}
	if s.Recoveries > 0 {
		line += fmt.Sprintf(" recoveries=%d recovery-time=%v",
			s.Recoveries, s.RecoveryTime.Round(time.Millisecond))
	}
	if s.MessagesLogged > 0 {
		line += fmt.Sprintf(" msg-logged=%d log-bytes=%d", s.MessagesLogged, s.BytesLogged)
	}
	if s.Rebalances > 0 {
		line += fmt.Sprintf(" rebalances=%d migrated=%d", s.Rebalances, s.VerticesMigrated)
	}
	if s.Partitioner != PartitionHash {
		line += fmt.Sprintf(" partitioner=%s", s.Partitioner)
	}
	if s.EdgeCut > 0 {
		line += fmt.Sprintf(" edge-cut=%d", s.EdgeCut)
		if r := s.LocalMessageRatio(); r > 0 {
			line += fmt.Sprintf(" local-msgs=%.0f%%", r*100)
		}
	}
	if len(s.Anomalies) > 0 {
		line += fmt.Sprintf(" anomalies=%d", len(s.Anomalies))
	}
	return line
}

// PhaseTotals sums the per-superstep telemetry into the job-level
// compute / barrier / capture breakdown the observability layer and
// graft-bench report.
func (s *Stats) PhaseTotals() (compute, barrier, capture time.Duration) {
	for _, ss := range s.PerSuperstep {
		compute += ss.ComputeTime
		barrier += ss.BarrierWait
		capture += ss.CaptureTime
	}
	return compute, barrier, capture
}

// LocalMessageRatio is the fraction of the job's messages whose sender
// and receiver lived on the same worker, over the supersteps where the
// traffic matrix was captured (0 when it never was). It is the
// placement-quality number the partitioner exists to push up.
func (s *Stats) LocalMessageRatio() float64 {
	var local, sent int64
	for _, ss := range s.PerSuperstep {
		if ss.Traffic == nil {
			continue
		}
		local += ss.LocalMessages
		sent += ss.MessagesSent
	}
	if sent == 0 {
		return 0
	}
	return float64(local) / float64(sent)
}

// RemoteMessages counts the job's cross-worker messages over the
// supersteps where the traffic matrix was captured.
func (s *Stats) RemoteMessages() int64 {
	var remote int64
	for _, ss := range s.PerSuperstep {
		if ss.Traffic == nil {
			continue
		}
		remote += ss.MessagesSent - ss.LocalMessages
	}
	return remote
}

// MaxComputeSkew returns the worst per-superstep compute skew of the
// job (0 when telemetry was disabled or the job ran no supersteps).
func (s *Stats) MaxComputeSkew() float64 {
	var max float64
	for _, ss := range s.PerSuperstep {
		if ss.ComputeSkew > max {
			max = ss.ComputeSkew
		}
	}
	return max
}

// DefaultNumWorkers is used when Config.NumWorkers is zero.
const DefaultNumWorkers = 4

// Config configures a Job. The zero value runs with DefaultNumWorkers
// workers, no superstep limit, no master, no combiner and no
// checkpointing.
type Config struct {
	// NumWorkers is the number of concurrent worker goroutines, each
	// owning one hash partition of the vertices.
	NumWorkers int
	// MaxSupersteps stops the job after this many supersteps; 0 means
	// unlimited. It is the safety net that surfaces non-converging
	// algorithms (paper §4.3).
	MaxSupersteps int
	// Combiner, if non-nil, merges messages per destination vertex.
	Combiner Combiner
	// Master, if non-nil, runs at the beginning of every superstep.
	Master MasterComputation
	// CreateMissingVertices makes a message to a nonexistent vertex
	// create it (Giraph's default resolver). When false such messages
	// are dropped and counted in Stats.MessagesDropped.
	CreateMissingVertices bool
	// DefaultVertexValue supplies values for vertices created by
	// CreateMissingVertices and AddVertexRequest(id, nil).
	DefaultVertexValue func() Value
	// Listener observes job progress; may be nil.
	Listener JobListener
	// CheckpointEvery writes a checkpoint before every Nth superstep
	// (0 disables checkpointing). Requires CheckpointFS.
	CheckpointEvery int
	// CheckpointFS is where checkpoints are written.
	CheckpointFS FileSystem
	// CheckpointPrefix prefixes checkpoint file names.
	CheckpointPrefix string
	// FailureAt, if non-nil, is consulted after each superstep's
	// barrier; returning true simulates a whole-job worker crash,
	// forcing recovery of every partition. Used by fault-tolerance
	// tests.
	FailureAt func(superstep int) bool
	// PartitionFailureAt, if non-nil, is consulted after each
	// superstep's barrier; returning a non-empty list simulates a crash
	// of just those partitions. Under RecoveryLog only the listed
	// partitions roll back and replay; under RecoveryCheckpoint any
	// failure still restarts the whole job from the latest checkpoint.
	PartitionFailureAt func(superstep int) []int
	// MaxRecoveries bounds recovery attempts (default 3).
	MaxRecoveries int
	// Recovery selects the recovery strategy for injected failures.
	// RecoveryCheckpoint (the zero value) restarts the whole job from
	// the latest checkpoint; RecoveryLog confines recomputation to the
	// failed partitions, replaying their inboxes from the sender-side
	// outbox logs. RecoveryLog requires PlaneLanes and MsgLogFS.
	Recovery RecoveryMode
	// MsgLogFS is where RecoveryLog's outbox logs are written. Required
	// when Recovery is RecoveryLog.
	MsgLogFS FileSystem
	// MsgLogPrefix prefixes the outbox-log directory name.
	MsgLogPrefix string
	// MsgLogSegmentSize is the outbox-log segment size threshold; 0
	// means the default (256 KiB).
	MsgLogSegmentSize int
	// CheckpointRetain is how many of the newest successfully written
	// checkpoints retention GC keeps (older ones are deleted after each
	// successful write and counted in FaultStats.CheckpointsDeleted).
	// 0 means the default of 2; negative disables GC entirely.
	CheckpointRetain int
	// DisableMetrics turns off the per-worker superstep telemetry
	// (compute/barrier/capture timings, skew indicators). Collection is
	// a handful of clock reads per worker per superstep; the switch
	// exists so graft-bench can measure exactly what it costs.
	DisableMetrics bool
	// MessagePlane selects the message transport. The zero value is
	// PlaneLanes, the lock-free per-sender lane matrix with sender-side
	// combining; PlaneMutex is the legacy shard-lock path kept as the
	// benchmark baseline.
	MessagePlane PlaneMode
	// MsgFlushBatch is how many outgoing messages a worker buffers per
	// destination partition before flushing to the message plane; 0
	// means the default (1024).
	MsgFlushBatch int
	// RebalanceSkew enables skew-driven adaptive repartitioning: when a
	// superstep's ComputeSkew or MessageSkew reaches this threshold
	// (max/mean; 1.0 is perfectly balanced), the hottest vertices
	// migrate off the straggler partition at the barrier. 0 disables
	// rebalancing. Requires telemetry, so it is ignored when
	// DisableMetrics is set.
	RebalanceSkew float64
	// RebalanceMaxMoves caps the vertices migrated per rebalance; 0
	// means the default (1024).
	RebalanceMaxMoves int
	// RebalanceObjective selects what rebalancing optimizes.
	// ObjectiveSkew (the zero value) is the load objective gated by
	// RebalanceSkew. ObjectiveEdgeCut migrates boundary vertices toward
	// their heaviest communication partner whenever the traffic matrix
	// shows a dominant cross-partition lane; it is self-enabling
	// (RebalanceSkew is not consulted) and requires PlaneLanes,
	// telemetry and a non-negative AnomalyWindow, since the traffic
	// matrix feeds the decision.
	RebalanceObjective RebalanceObjective
	// Partitioner selects the initial vertex placement: PartitionHash
	// (the zero value) is Fibonacci hashing, byte-compatible with
	// every earlier release; PartitionLocality streams vertices in ID
	// order into the partition holding the most of their neighbors
	// (LDG-style, capacity-penalized), recording the result in an
	// assignment table that persists through checkpoints, confined
	// recovery and migrations. Placement never changes computation
	// semantics — trace digests are identical under either mode.
	Partitioner PartitionerMode
	// AnomalyWindow is the sliding-window size (in supersteps) of the
	// anomaly detectors; 0 means the default (anomaly.DefaultWindow).
	// A negative value disables detection and the traffic-matrix
	// capture that feeds it. Detection requires telemetry, so it is
	// also off when DisableMetrics is set.
	AnomalyWindow int
	// ComputeMode selects the unit of computation: ModeVertex (the zero
	// value) runs Computation.Compute per vertex; ModeSubgraph runs
	// SubgraphComputation.ComputeSubgraph per connected component of a
	// partition (build the job with NewSubgraphJob). Message transport,
	// aggregators, checkpoints, recovery and rebalancing are
	// mode-independent.
	ComputeMode ComputeMode
	// NoPartitionSkip disables the halted-partition fast path: normally
	// a partition with zero active vertices and no pending messages is
	// skipped in the superstep scan (its worker would only iterate
	// halted vertices and find empty inboxes). The escape hatch exists
	// so tests can prove the fast path changes no observable behavior.
	NoPartitionSkip bool
	// WorkerPool, if non-nil, is a global worker budget shared across
	// jobs: each worker goroutine holds one slot for its superstep scan,
	// so a session running many jobs concurrently bounds its total
	// compute parallelism regardless of per-job NumWorkers.
	WorkerPool *WorkerPool
}

type aggEntry struct {
	agg        Aggregator
	persistent bool
}

// Job binds a graph, a computation and a configuration. Construct
// with NewJob, register aggregators, then Run. A Job takes ownership
// of the graph: values and topology are mutated in place, so callers
// that reuse a dataset across runs must pass graph.Clone().
type Job struct {
	cfg   Config
	comp  Computation
	// scomp is the ModeSubgraph program (nil in vertex mode); set by
	// NewSubgraphJob.
	scomp    SubgraphComputation
	graph    *Graph
	aggs     map[string]aggEntry
	aggNames []string
}

// NewJob creates a job over g running comp.
func NewJob(g *Graph, comp Computation, cfg Config) *Job {
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = DefaultNumWorkers
	}
	if cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = 3
	}
	return &Job{cfg: cfg, comp: comp, graph: g, aggs: map[string]aggEntry{}}
}

// RegisterAggregator registers a named aggregator. Persistent
// aggregators accumulate across supersteps; regular ones reset to the
// initial value at every superstep boundary (Giraph semantics).
// Registering a duplicate name panics: it is a programming error that
// would silently corrupt aggregation.
func (j *Job) RegisterAggregator(name string, agg Aggregator, persistent bool) {
	if _, dup := j.aggs[name]; dup {
		panic("pregel: duplicate aggregator registration: " + name)
	}
	j.aggs[name] = aggEntry{agg: agg, persistent: persistent}
	j.aggNames = append(j.aggNames, name)
	sort.Strings(j.aggNames)
}

// Config returns the job's configuration (after defaulting).
func (j *Job) Config() Config { return j.cfg }

// Run executes the job to termination and returns its statistics.
// Stats.Runtime is measured monotonically from here, so it covers
// partitioning, every superstep and any checkpoint recovery.
func (j *Job) Run() (*Stats, error) {
	return j.RunContext(context.Background())
}

// RunContext executes the job under a context. Cancelling the context
// interrupts the job mid-superstep: workers observe the cancellation
// within a bounded number of vertices, the engine shuts down at the
// next barrier boundary without folding the aborted superstep, and the
// job's checkpoints and outbox logs are garbage-collected (a canceled
// job never resumes). The returned error wraps ctx.Err(), and — unlike
// other failures — the partial Stats up to the last completed barrier
// are returned alongside it.
func (j *Job) RunContext(ctx context.Context) (*Stats, error) {
	start := time.Now()
	en := newEngine(j)
	en.ctx = ctx
	return en.run(start)
}

// partition is the set of vertices owned by one worker.
type partition struct {
	idx     int
	verts   map[VertexID]*Vertex
	ids     []VertexID // iteration order; may contain removed IDs
	removed int        // stale entries in ids
	edges   int64      // current out-edge count of the partition
	// edgeDelta accumulates Vertex.AddEdge/RemoveEdges deltas during a
	// superstep; only the owning worker writes it, and the coordinator
	// folds it into edges at the barrier.
	edgeDelta int
	// subs caches the partition's weakly-connected components for
	// ModeSubgraph (nil until first discovery). subsDirty flags that
	// membership may have changed — topology mutation, vertex
	// add/remove, migration, recovery — so the owning worker rediscovers
	// before its next subgraph scan.
	subs      []*Subgraph
	subsDirty bool
}

func (p *partition) compactIfNeeded() {
	if p.removed <= len(p.ids)/2 || p.removed == 0 {
		return
	}
	p.rebuildIDs()
}

// rebuildIDs regenerates the iteration order from the live vertex set,
// purging stale entries. Besides compaction, the rebalancer needs it to
// keep ids duplicate-free when a vertex moves into a partition that
// still lists it from before an earlier migration or removal.
func (p *partition) rebuildIDs() {
	ids := make([]VertexID, 0, len(p.verts))
	for id := range p.verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	p.ids = ids
	p.removed = 0
}

type vertexAddition struct {
	id    VertexID
	value Value
}

type workerResult struct {
	active     int64
	sent       int64
	aggPartial map[string]Value
	removals   []VertexID
	additions  []vertexAddition
	// Telemetry, written only by the owning worker goroutine and read
	// by the coordinator after the barrier — the lock-free per-worker
	// collector the metrics layer folds from. Zero when
	// Config.DisableMetrics is set.
	vertices     int64
	received     int64
	computeNanos int64
	captureNanos int64
	// subgraphs and iterations are ModeSubgraph telemetry: components
	// computed and internal sequential iterations reported via
	// SubgraphContext.AddIterations.
	subgraphs  int64
	iterations int64
}

type engine struct {
	job        *Job
	cfg        *Config
	parts      []*partition
	cur, next  *messageStore
	broadcast  map[string]Value
	superstep  int
	stats      Stats
	pool       *batchPool
	flushBatch int
	// assign records vertices placed away from their hash partition —
	// by the locality partitioner at load and by the rebalancer at
	// migration; partitionFor consults it. Nil until the first
	// divergence, so hash-pure jobs cost one nil check.
	assign *assignTable
	// edgeCut caches the current cross-partition directed-edge count;
	// edgeCutDirty flags that placement or topology changed since it
	// was computed (mutation, migration, recovery), so the barrier
	// recomputes it lazily — static graphs pay the O(E) scan once.
	edgeCut      int64
	edgeCutDirty bool
	// partActive[w] is the number of non-halted vertices in partition w,
	// maintained at the barrier (worker results, mutations, missing-
	// vertex creation, migration, recovery). Together with the message
	// store's per-shard pending check it lets the superstep scan skip
	// partitions that provably have no work — on convergence-tail
	// workloads most of the cluster is halted most of the time.
	partActive []int64
	// laneCombineOff[w][p] records that worker w's traffic to partition
	// p missed the sender-side combining index too often to keep paying
	// for it; the verdict is sticky across supersteps because the
	// fan-in pattern is a property of the graph, not of one superstep.
	// Row w is written only by worker w (and read when building its
	// next context, after the barrier), so no synchronization.
	laneCombineOff [][]bool

	lastCheckpoint int // superstep of the last written checkpoint, -1 if none

	// msglog is the sender-side outbox log (nil unless RecoveryLog);
	// history holds the per-superstep aggregate snapshots confined
	// replay re-runs computes against.
	msglog  *msgLog
	history map[int]stepSnapshot
	// recoveryFrontier marks the superstep the job had reached when a
	// checkpoint restart rewound it: supersteps below the frontier are
	// re-execution, and their wall time is charged to the recovery that
	// caused them (openRecovery indexes the RecoveryEvents entry; -1
	// when no recovery is open). Confined replay never sets these — its
	// whole cost is inside the recovery call.
	recoveryFrontier int
	openRecovery     int
	// lastMigration is the superstep of the most recent rebalancer
	// migration (-1 if none); replay uses it to decide whether logged
	// frame destinations still match current routing.
	lastMigration int

	// anom evaluates the anomaly detectors over the folded superstep
	// telemetry (nil when detection or telemetry is disabled).
	anom *anomaly.Engine

	// ctx carries the job's cancellation signal; never nil after run
	// starts (Background for Job.Run).
	ctx context.Context
}

func newEngine(j *Job) *engine {
	en := &engine{job: j, cfg: &j.cfg, lastCheckpoint: -1, pool: &batchPool{},
		openRecovery: -1, lastMigration: -1}
	en.flushBatch = j.cfg.MsgFlushBatch
	if en.flushBatch <= 0 {
		en.flushBatch = msgFlushBatch
	}
	w := j.cfg.NumWorkers
	en.parts = make([]*partition, w)
	for i := range en.parts {
		en.parts[i] = &partition{idx: i, verts: make(map[VertexID]*Vertex)}
	}
	en.edgeCutDirty = true
	if j.cfg.Partitioner == PartitionLocality {
		// The placement table must exist before the distribution loop
		// below and before any checkpoint or outbox log is written, so
		// every consumer of partitionFor — sends, mutations, recovery
		// replay — agrees on the locality placement from superstep 0.
		en.assign = localityPlacement(j.graph, w)
	}
	for _, id := range j.graph.VertexIDs() {
		v := j.graph.vertices[id]
		p := en.parts[en.partitionFor(id)]
		v.owner = p
		p.verts[id] = v
		p.ids = append(p.ids, id)
		p.edges += int64(len(v.edges))
	}
	en.partActive = make([]int64, w)
	en.recountActive()
	if j.cfg.MessagePlane == PlaneLanes && j.cfg.Combiner != nil {
		en.laneCombineOff = make([][]bool, w)
		for i := range en.laneCombineOff {
			en.laneCombineOff[i] = make([]bool, w)
		}
	}
	if !j.cfg.DisableMetrics && j.cfg.AnomalyWindow >= 0 {
		en.anom = anomaly.New(anomaly.Config{Window: j.cfg.AnomalyWindow})
	}
	en.cur = en.newStore()
	en.next = en.newStore()
	en.broadcast = make(map[string]Value, len(j.aggs))
	for name, entry := range j.aggs {
		en.broadcast[name] = entry.agg.CreateInitial()
	}
	return en
}

// newStore builds a message store in the engine's configured plane
// mode, sharing the engine-wide batch pool.
func (en *engine) newStore() *messageStore {
	return newMessageStore(len(en.parts), en.cfg.Combiner, en.cfg.MessagePlane, en.pool)
}

// partitionFor maps a vertex ID to a worker: the explicit assignment
// table first (locality placement, rebalancer migrations), Fibonacci
// hashing otherwise. Both paths are allocation-free; hash-pure jobs
// pay one nil check.
func (en *engine) partitionFor(id VertexID) int {
	if t := en.assign; t != nil {
		if p, ok := t.lookup(id); ok {
			return p
		}
	}
	return hashPartition(id, len(en.parts))
}

// computeEdgeCut scans every partition's out-edges and counts those
// whose target routes to a different worker: the edge-cut objective
// the locality partitioner and edgecut rebalancer minimize. O(E); the
// engine caches the result and recomputes only when placement or
// topology changed.
func (en *engine) computeEdgeCut() int64 {
	var cut int64
	for _, p := range en.parts {
		for _, v := range p.verts {
			for i := range v.edges {
				if en.partitionFor(v.edges[i].Target) != p.idx {
					cut++
				}
			}
		}
	}
	return cut
}

// recountActive rebuilds partActive from the partitions' vertex halted
// flags — the ground truth after bulk state swaps (engine construction,
// checkpoint recovery), where incremental bookkeeping has nothing to
// increment from.
func (en *engine) recountActive() {
	for i, p := range en.parts {
		var n int64
		for _, v := range p.verts {
			if !v.halted {
				n++
			}
		}
		en.partActive[i] = n
	}
}

func (en *engine) totals() (nv, ne int64) {
	for _, p := range en.parts {
		nv += int64(len(p.verts))
		ne += p.edges
	}
	return nv, ne
}

func (en *engine) cloneAggSnapshot() map[string]Value {
	m := make(map[string]Value, len(en.broadcast))
	for name, v := range en.broadcast {
		m[name] = CloneValue(v)
	}
	return m
}

func (en *engine) run(start time.Time) (*Stats, error) {
	if en.ctx == nil {
		en.ctx = context.Background()
	}
	listener := en.cfg.Listener
	nv, ne := en.totals()
	if listener != nil {
		listener.JobStarted(JobInfo{NumWorkers: len(en.parts), NumVertices: nv, NumEdges: ne})
	}
	finish := func(err error) (*Stats, error) {
		en.stats.Supersteps = en.superstep
		en.stats.Runtime = time.Since(start)
		en.stats.Partitioner = en.cfg.Partitioner
		en.stats.PartitionSizes = make([]int64, len(en.parts))
		for i, p := range en.parts {
			en.stats.PartitionSizes[i] = int64(len(p.verts))
		}
		if err == nil && !en.cfg.DisableMetrics {
			if en.edgeCutDirty {
				en.edgeCut = en.computeEdgeCut()
				en.edgeCutDirty = false
			}
			en.stats.EdgeCut = en.edgeCut
		}
		// A canceled job never resumes, so its recovery artifacts —
		// checkpoints and outbox-log segments — are dead weight; GC them
		// before listeners observe the stats, so CheckpointsDeleted
		// reflects the cleanup.
		canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		if canceled {
			en.cleanupCanceled()
		}
		// Fold in the checkpoint file system's resilience counters
		// before listeners observe the stats; Graft's listener adds the
		// trace file system's own on top.
		if p, ok := en.cfg.CheckpointFS.(FaultStatsProvider); ok {
			en.stats.Faults.Add(p.FaultStats())
		}
		if listener != nil {
			listener.JobFinished(&en.stats, err)
		}
		if err != nil {
			if canceled {
				// Cancellation is barrier-consistent: everything up to the
				// last completed superstep is valid, so — unlike a compute
				// failure — the partial stats are returned with the error.
				return &en.stats, err
			}
			return nil, err
		}
		return &en.stats, nil
	}

	if err := en.cfg.Validate(); err != nil {
		return finish(err)
	}
	// Mode↔computation consistency is a Job property, so it is checked
	// here rather than in Config.Validate.
	if en.cfg.ComputeMode == ModeSubgraph && en.job.scomp == nil {
		return finish(invalidf("ComputeMode = subgraph without a SubgraphComputation (build the job with NewSubgraphJob)"))
	}
	if en.cfg.ComputeMode == ModeVertex && en.job.comp == nil {
		return finish(invalidf("ComputeMode = vertex without a Computation"))
	}

	if en.cfg.Recovery == RecoveryLog {
		en.msglog = newMsgLog(en.cfg.MsgLogFS, en.cfg.MsgLogPrefix, en.msgLogSegmentSize(), len(en.parts))
		en.history = make(map[int]stepSnapshot)
	}

	for {
		stepStart := time.Now()
		if err := en.ctx.Err(); err != nil {
			return finish(fmt.Errorf("pregel: job canceled before superstep %d: %w", en.superstep, err))
		}
		if en.cfg.MaxSupersteps > 0 && en.superstep >= en.cfg.MaxSupersteps {
			en.stats.Reason = ReasonMaxSupersteps
			return finish(nil)
		}
		nv, ne = en.totals()

		// Checkpoint the pre-superstep state (graph, undelivered
		// messages, merged aggregators) before the master can mutate
		// anything.
		if en.cfg.CheckpointEvery > 0 && en.superstep%en.cfg.CheckpointEvery == 0 &&
			en.superstep != en.lastCheckpoint {
			if err := en.writeCheckpoint(); err != nil {
				return finish(fmt.Errorf("pregel: checkpoint at superstep %d: %w", en.superstep, err))
			}
			en.lastCheckpoint = en.superstep
			en.gcCheckpoints()
		}

		// Master phase: runs at the beginning of the superstep with
		// the aggregator values merged from the previous one.
		if en.cfg.Master != nil {
			mctx := &masterCtx{en: en, numVertices: nv, numEdges: ne}
			if err := en.safeMasterCompute(mctx); err != nil {
				return finish(err)
			}
			if mctx.halted {
				en.stats.Reason = ReasonMasterHalted
				return finish(nil)
			}
		}

		info := SuperstepInfo{
			Superstep:   en.superstep,
			NumVertices: nv,
			NumEdges:    ne,
			Aggregated:  en.cloneAggSnapshot(),
		}
		if listener != nil {
			listener.SuperstepStarted(en.superstep, info)
		}
		// Confined replay re-runs a superstep's computes without
		// re-running the master phase, so it needs this superstep's
		// post-master aggregate broadcast and totals as they were.
		if en.msglog != nil {
			en.history[en.superstep] = stepSnapshot{nv: nv, ne: ne, aggs: en.cloneAggSnapshot()}
		}

		// Worker phase.
		collect := !en.cfg.DisableMetrics
		var phaseStart time.Time
		if collect {
			phaseStart = time.Now()
		}
		results := make([]workerResult, len(en.parts))
		errs := make([]error, len(en.parts))
		var wg sync.WaitGroup
		for w := range en.parts {
			// Fast path: a partition whose vertices are all halted and
			// whose inbox shard is empty would only scan halted vertices
			// against empty inboxes — its worker result is identically
			// zero, so skip launching it. (Lanes into this shard were
			// merged by integrateMissing at the previous barrier, so the
			// shard check is complete.)
			if !en.cfg.NoPartitionSkip && en.partActive[w] == 0 && !en.cur.hasPending(w) {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Under a session-wide budget each worker holds one pool
				// slot for its scan; a slot is always released at the
				// barrier, so the gate serializes but cannot deadlock.
				if pool := en.cfg.WorkerPool; pool != nil {
					if err := pool.acquire(en.ctx); err != nil {
						errs[w] = fmt.Errorf("pregel: worker %d canceled awaiting pool slot: %w", w, err)
						return
					}
					defer pool.release()
				}
				if en.cfg.ComputeMode == ModeSubgraph {
					results[w], errs[w] = en.runSubgraphWorker(w, nv, ne)
				} else {
					results[w], errs[w] = en.runWorker(w, nv, ne)
				}
			}(w)
		}
		wg.Wait()
		var phaseWall time.Duration
		if collect {
			phaseWall = time.Since(phaseStart)
		}
		for _, err := range errs {
			if err != nil {
				return finish(err)
			}
		}

		// Sender-side outbox logging: persist this superstep's outgoing
		// batches and mutation requests before the lanes are merged away
		// (mergeLane recycles the batches), so confined recovery can
		// replay them. A log write failure is non-fatal — the log is
		// marked broken and recovery falls back to checkpoint restart.
		if en.msglog != nil {
			logged, bytes, err := en.msglog.logSuperstep(en.superstep, en.next, results)
			en.stats.MessagesLogged += logged
			en.stats.BytesLogged += bytes
			if err != nil {
				en.stats.Faults.CorruptLogSegments++
			}
		}

		// Barrier: fold results, apply mutations, merge aggregators.
		var active int64
		for w := range results {
			active += results[w].active
			// Skipped workers report zero, which is exactly their count.
			en.partActive[w] = results[w].active
		}
		en.applyMutations(results)
		en.mergeAggregators(results)
		sent := en.next.total()
		en.stats.TotalMessages += sent
		// The traffic matrix must be read before integrateMissing merges
		// the lanes into the shards (and zeroes the lane counters); at
		// this point the next store's shards are still empty, so the
		// matrix provably sums to MessagesSent.
		var traffic [][]int64
		if collect && en.anom != nil {
			traffic = en.next.trafficMatrix()
		}
		droppedNow := en.integrateMissing()
		en.stats.MessagesDropped += droppedNow
		ss := SuperstepStats{Superstep: en.superstep, ActiveAtEnd: active, MessagesSent: sent, Straggler: -1}
		ss.MessagesCombined = en.next.combinedTotal()
		if collect {
			en.foldTelemetry(&ss, results, phaseWall)
			ss.Traffic = traffic
			if traffic != nil {
				for w := range traffic {
					ss.LocalMessages += traffic[w][w]
				}
			}
			if en.anom != nil || en.cfg.RebalanceSkew > 0 {
				sample := en.anomalySample(&ss)
				if en.anom != nil {
					ss.Anomalies = en.anom.Observe(sample)
					en.stats.Anomalies = append(en.stats.Anomalies, ss.Anomalies...)
				}
				if en.cfg.RebalanceSkew > 0 && en.cfg.RebalanceObjective == ObjectiveSkew {
					en.rebalance(&ss, anomaly.EvaluateSkew(sample, en.cfg.RebalanceSkew))
				}
			}
			if en.cfg.RebalanceObjective == ObjectiveEdgeCut {
				en.rebalanceEdgeCut(&ss)
			}
			// Edge cut is recorded after rebalancing so the superstep's
			// row reflects the placement the next superstep runs under.
			if en.edgeCutDirty {
				en.edgeCut = en.computeEdgeCut()
				en.edgeCutDirty = false
			}
			ss.EdgeCut = en.edgeCut
		}
		// Barrier flush: listeners with an async capture pipeline drain
		// and commit it here, so everything captured up to this barrier
		// is durable before the superstep is announced as finished.
		if bf, ok := listener.(BarrierFlusher); ok {
			if qr, ok := listener.(CaptureQueueReporter); ok {
				ss.CaptureQueueDepth = qr.CaptureQueueDepth()
			}
			flushStart := time.Now()
			if err := bf.BarrierFlush(en.superstep); err != nil {
				return finish(fmt.Errorf("pregel: trace flush at superstep %d: %w", en.superstep, err))
			}
			ss.FlushTime = time.Since(flushStart)
		}
		en.stats.PerSuperstep = append(en.stats.PerSuperstep, ss)
		if listener != nil {
			listener.SuperstepFinished(en.superstep, ss)
		}

		// Supersteps below the recovery frontier are re-execution after
		// a checkpoint restart; charge their wall time to the recovery
		// that rewound the job, so RecoveryTime reflects the real cost
		// of restarting (restore plus recompute), comparable with
		// confined replay's.
		if en.recoveryFrontier > 0 {
			if en.superstep < en.recoveryFrontier {
				d := time.Since(stepStart)
				en.stats.RecoveryTime += d
				if en.openRecovery >= 0 {
					ev := &en.stats.RecoveryEvents[en.openRecovery]
					ev.Duration += d
					ev.SuperstepsReplayed++
				}
			}
			if en.superstep+1 >= en.recoveryFrontier {
				en.recoveryFrontier = 0
				en.openRecovery = -1
			}
		}

		// Simulated worker failure and recovery.
		if failedParts, failed := en.checkFailure(en.superstep); failed {
			recStart := time.Now()
			if err := en.consumeRecoveryBudget(); err != nil {
				en.stats.RecoveryTime += time.Since(recStart)
				return finish(err)
			}
			ev := RecoveryEvent{Superstep: en.superstep, Partitions: failedParts}
			if en.cfg.Recovery == RecoveryLog {
				err := en.confinedRecover(failedParts, &ev)
				if err == nil {
					ev.Mode = "log"
					ev.Duration = time.Since(recStart)
					en.stats.RecoveryTime += ev.Duration
					en.stats.RecoveryEvents = append(en.stats.RecoveryEvents, ev)
					// Replay rebuilt the failed partitions' next-superstep
					// inbox shards; resume exactly as the normal path
					// would have.
					var alive int64
					for _, n := range en.partActive {
						alive += n
					}
					pendingAny := false
					for w := range en.parts {
						if en.next.hasPending(w) {
							pendingAny = true
							break
						}
					}
					en.cur = en.next
					en.next = en.newStore()
					en.superstep++
					if alive == 0 && !pendingAny {
						en.stats.Reason = ReasonConverged
						return finish(nil)
					}
					continue
				}
				if !errors.Is(err, errReplayUnusable) {
					en.stats.RecoveryTime += time.Since(recStart)
					return finish(err)
				}
				// The outbox logs cannot drive a confined replay
				// (corrupt segment, missing history, broken writer):
				// degrade to a full checkpoint restart.
			}
			failedAt := en.superstep
			if err := en.restoreNewestIntact(); err != nil {
				en.stats.RecoveryTime += time.Since(recStart)
				return finish(err)
			}
			ev.Mode = "checkpoint"
			ev.CheckpointSuperstep = en.superstep
			ev.PartitionsRecomputed = len(en.parts)
			ev.Duration = time.Since(recStart)
			en.stats.RecoveryTime += ev.Duration
			en.recoveryFrontier = failedAt + 1
			en.openRecovery = len(en.stats.RecoveryEvents)
			en.stats.RecoveryEvents = append(en.stats.RecoveryEvents, ev)
			continue
		}

		pending := en.next.total() - droppedNow
		en.cur = en.next
		en.next = en.newStore()
		en.superstep++
		if active == 0 && pending == 0 {
			en.stats.Reason = ReasonConverged
			return finish(nil)
		}
	}
}

func (en *engine) safeMasterCompute(mctx *masterCtx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ComputeError{
				VertexID:  MasterVertexID,
				Superstep: en.superstep,
				Panic:     p,
				Stack:     string(debug.Stack()),
			}
		}
	}()
	if cerr := en.cfg.Master.Compute(mctx); cerr != nil {
		return &ComputeError{VertexID: MasterVertexID, Superstep: en.superstep, Err: cerr}
	}
	return nil
}

// newWorkerCtx builds the per-superstep Context for one worker, with
// the send buffers matching the configured message plane.
func (en *engine) newWorkerCtx(w int, nv, ne int64) *workerCtx {
	ctx := &workerCtx{
		en:          en,
		worker:      w,
		superstep:   en.superstep,
		numVertices: nv,
		numEdges:    ne,
		flushBatch:  en.flushBatch,
		aggPartial:  map[string]Value{},
	}
	if en.cfg.MessagePlane == PlaneLanes {
		ctx.lane = make([]*msgBatch, len(en.parts))
		if en.cfg.Combiner != nil {
			ctx.laneIdx = make([]map[VertexID]int, len(en.parts))
			for i := range ctx.laneIdx {
				if !en.laneCombineOff[w][i] {
					ctx.laneIdx[i] = make(map[VertexID]int)
				}
			}
		}
	} else {
		ctx.out = make([][]msgEntry, len(en.parts))
	}
	return ctx
}

func (en *engine) runWorker(w int, nv, ne int64) (workerResult, error) {
	var res workerResult
	part := en.parts[w]
	collect := !en.cfg.DisableMetrics
	var t0 time.Time
	var capReporter CaptureTimeReporter
	var capBefore int64
	if collect {
		t0 = time.Now()
		if ctr, ok := en.job.comp.(CaptureTimeReporter); ok {
			capReporter = ctr
			capBefore = ctr.CaptureNanos(w)
		}
	}
	ctx := en.newWorkerCtx(w, nv, ne)
	for i := 0; i < len(part.ids); i++ {
		// Poll for cancellation every 64 vertices so a Job.Cancel lands
		// mid-superstep instead of after a full partition scan; the
		// coordinator still drives every worker to the barrier, so the
		// shutdown stays barrier-consistent.
		if i&63 == 0 {
			if err := en.ctx.Err(); err != nil {
				return res, fmt.Errorf("pregel: worker %d canceled in superstep %d: %w", w, en.superstep, err)
			}
		}
		v, ok := part.verts[part.ids[i]]
		if !ok {
			continue
		}
		msgs := en.cur.take(w, v.id)
		if v.halted {
			if len(msgs) == 0 {
				continue
			}
			v.halted = false
		}
		res.vertices++
		res.received += int64(len(msgs))
		if err := en.safeCompute(ctx, v, msgs); err != nil {
			return res, err
		}
		if !v.halted {
			res.active++
		}
	}
	ctx.flushAll()
	res.sent = ctx.sent
	res.aggPartial = ctx.aggPartial
	res.removals = ctx.removals
	res.additions = ctx.additions
	if collect {
		res.computeNanos = time.Since(t0).Nanoseconds()
		if capReporter != nil {
			res.captureNanos = capReporter.CaptureNanos(w) - capBefore
		}
	}
	return res, nil
}

// foldTelemetry folds the per-worker collectors into the superstep's
// stats at the barrier: the coordinator is the only goroutine running,
// so no synchronization is needed. Barrier wait per worker is the time
// it idled for the slowest worker: phase wall time minus its own
// compute time.
func (en *engine) foldTelemetry(ss *SuperstepStats, results []workerResult, wall time.Duration) {
	n := len(results)
	ss.Workers = make([]WorkerStepStats, n)
	ss.ComputeTime = wall
	var maxCompute, sumCompute int64
	var maxSent, sumSent int64
	for w := range results {
		r := &results[w]
		ss.Workers[w] = WorkerStepStats{
			Worker:            w,
			VerticesProcessed: r.vertices,
			MessagesSent:      r.sent,
			MessagesReceived:  r.received,
			ComputeTime:       time.Duration(r.computeNanos),
			CaptureTime:       time.Duration(r.captureNanos),
			Subgraphs:         r.subgraphs,
			Iterations:        r.iterations,
		}
		ss.VerticesProcessed += r.vertices
		ss.MessagesReceived += r.received
		ss.CaptureTime += time.Duration(r.captureNanos)
		ss.SubgraphsComputed += r.subgraphs
		ss.InternalIterations += r.iterations
		if r.computeNanos > maxCompute {
			maxCompute = r.computeNanos
			ss.Straggler = w
		}
		sumCompute += r.computeNanos
		if r.sent > maxSent {
			maxSent = r.sent
		}
		sumSent += r.sent
	}
	for w := range ss.Workers {
		if bw := wall - ss.Workers[w].ComputeTime; bw > 0 {
			ss.Workers[w].BarrierWait = bw
			ss.BarrierWait += bw
		}
	}
	if sumCompute > 0 {
		ss.ComputeSkew = float64(maxCompute) * float64(n) / float64(sumCompute)
	}
	if sumSent > 0 {
		ss.MessageSkew = float64(maxSent) * float64(n) / float64(sumSent)
	}
}

// anomalySample projects one superstep's folded telemetry into the
// anomaly package's input form, adding the cumulative resilience
// counters the fault-spike and recovery-storm detectors difference
// across their window. Runs on the coordinator at the barrier.
func (en *engine) anomalySample(ss *SuperstepStats) anomaly.Sample {
	s := anomaly.Sample{
		Superstep:   ss.Superstep,
		ComputeSkew: ss.ComputeSkew,
		MessageSkew: ss.MessageSkew,
		Straggler:   ss.Straggler,
		Sent:        ss.MessagesSent,
		Received:    ss.MessagesReceived,
		Combined:    ss.MessagesCombined,
		Traffic:     ss.Traffic,
		Recoveries:  en.stats.Recoveries,
	}
	corrupt := en.stats.Faults.CorruptCheckpoints + en.stats.Faults.CorruptLogSegments +
		en.stats.Faults.DroppedRecords
	if p, ok := en.cfg.CheckpointFS.(FaultStatsProvider); ok {
		// The checkpoint FS counters are folded into stats only at job
		// end; sample them live so spikes are visible mid-run.
		fs := p.FaultStats()
		corrupt += fs.CorruptCheckpoints + fs.CorruptLogSegments + fs.DroppedRecords
	}
	s.CorruptArtifacts = corrupt
	if len(ss.Workers) > 0 {
		s.Workers = make([]anomaly.WorkerSample, len(ss.Workers))
		for i, w := range ss.Workers {
			s.Workers[i] = anomaly.WorkerSample{
				Worker:       w.Worker,
				ComputeNanos: w.ComputeTime.Nanoseconds(),
				Sent:         w.MessagesSent,
			}
		}
	}
	return s
}

func (en *engine) safeCompute(ctx *workerCtx, v *Vertex, msgs []Value) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ComputeError{
				VertexID:  v.id,
				Superstep: ctx.superstep,
				Worker:    ctx.worker,
				Panic:     p,
				Stack:     string(debug.Stack()),
			}
		}
	}()
	if cerr := en.job.comp.Compute(ctx, v, msgs); cerr != nil {
		return &ComputeError{VertexID: v.id, Superstep: ctx.superstep, Worker: ctx.worker, Err: cerr}
	}
	return nil
}

// integrateMissing merges each lane-matrix column into its shard (in
// PlaneLanes mode) and resolves messages addressed to vertices that do
// not exist, at the barrier (Giraph's default vertex resolver): with
// CreateMissingVertices the vertex is created so it computes next
// superstep; otherwise the messages are removed from the store and
// counted as dropped. Each partition is handled by its own goroutine —
// the post-barrier single reader the lane design relies on; the
// coordinator then mirrors the created vertices into the input graph
// so callers observe them after the run.
func (en *engine) integrateMissing() int64 {
	dropped := make([]int64, len(en.parts))
	created := make([][]*Vertex, len(en.parts))
	var wg sync.WaitGroup
	for w := range en.parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			en.next.mergeLane(w)
			part := en.parts[w]
			for _, id := range en.next.pendingIDs(w, part.verts) {
				if en.cfg.CreateMissingVertices {
					var val Value
					if en.cfg.DefaultVertexValue != nil {
						val = en.cfg.DefaultVertexValue()
					}
					v := &Vertex{id: id, value: val, owner: part}
					part.verts[id] = v
					part.ids = append(part.ids, id)
					part.subsDirty = true
					created[w] = append(created[w], v)
				} else {
					dropped[w] += int64(len(en.next.take(w, id)))
				}
			}
		}(w)
	}
	wg.Wait()
	for w, vs := range created {
		en.partActive[w] += int64(len(vs)) // resolver-created vertices start active
		for _, v := range vs {
			en.job.graph.vertices[v.id] = v
		}
	}
	var total int64
	for _, d := range dropped {
		total += d
	}
	return total
}

// applyMutations resolves queued vertex removals and additions on the
// coordinator goroutine, in sorted ID order for determinism. A vertex
// both removed and added in the same superstep ends up added.
func (en *engine) applyMutations(results []workerResult) {
	var removals []VertexID
	var additions []vertexAddition
	for w := range results {
		removals = append(removals, results[w].removals...)
		additions = append(additions, results[w].additions...)
	}
	if len(removals) > 0 {
		sort.Slice(removals, func(i, j int) bool { return removals[i] < removals[j] })
		for _, id := range removals {
			p := en.parts[en.partitionFor(id)]
			if v, ok := p.verts[id]; ok {
				p.edges -= int64(len(v.edges))
				if !v.halted {
					en.partActive[p.idx]--
				}
				// Removed vertices leave the computation but stay
				// reachable through the input graph: their final state
				// is often the algorithm's output (matching partners
				// in MWM).
				delete(p.verts, id)
				p.removed++
				p.subsDirty = true
			}
		}
	}
	if len(additions) > 0 {
		sort.Slice(additions, func(i, j int) bool { return additions[i].id < additions[j].id })
		var dirty []*partition
		for _, add := range additions {
			p := en.parts[en.partitionFor(add.id)]
			if _, exists := p.verts[add.id]; exists {
				continue
			}
			val := add.value
			if val == nil && en.cfg.DefaultVertexValue != nil {
				val = en.cfg.DefaultVertexValue()
			}
			v := &Vertex{id: add.id, value: val, owner: p}
			p.verts[add.id] = v
			p.ids = append(p.ids, add.id)
			p.subsDirty = true
			en.partActive[p.idx]++ // new vertices start active
			if p.removed > 0 {
				// p.ids may still hold a stale entry for this ID from an
				// earlier removal; rebuild below so it is not computed twice.
				dirty = append(dirty, p)
			}
			en.job.graph.vertices[add.id] = v
		}
		for _, p := range dirty {
			if p.removed > 0 {
				p.rebuildIDs()
			}
		}
	}
	if len(removals) > 0 {
		en.edgeCutDirty = true
	}
	for _, p := range en.parts {
		if p.edgeDelta != 0 {
			en.edgeCutDirty = true
		}
		p.edges += int64(p.edgeDelta)
		p.edgeDelta = 0
		p.compactIfNeeded()
	}
}

// mergeAggregators folds worker aggregator partials into the broadcast
// map for the next superstep. Regular aggregators restart from their
// initial value; persistent ones accumulate onto the current broadcast.
func (en *engine) mergeAggregators(results []workerResult) {
	next := make(map[string]Value, len(en.job.aggs))
	for _, name := range en.job.aggNames {
		entry := en.job.aggs[name]
		var acc Value
		if entry.persistent {
			acc = en.broadcast[name]
		} else {
			acc = entry.agg.CreateInitial()
		}
		for w := range results {
			if p, ok := results[w].aggPartial[name]; ok {
				acc = entry.agg.Aggregate(acc, p)
			}
		}
		next[name] = acc
	}
	en.broadcast = next
}
