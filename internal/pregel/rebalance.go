package pregel

import (
	"sort"

	"graft/internal/anomaly"
)

// defaultRebalanceMaxMoves is used when Config.RebalanceMaxMoves is 0.
const defaultRebalanceMaxMoves = 1024

// rebalance is the skew-driven adaptive repartitioner. It runs on the
// coordinator at the barrier, after foldTelemetry and the lane merge,
// when Config.RebalanceSkew is set. The trigger is no longer its own:
// the engine evaluates the anomaly package's shared skew model
// (anomaly.EvaluateSkew — the same verdict the straggler-persistence
// detector counts streaks of) and passes the verdict in, so detection
// and mitigation cannot drift apart. When the verdict triggered, the
// hottest vertices (by out-degree, the deterministic proxy for message
// work) migrate off the indicted partition to the least-loaded one —
// vertex objects, pending next-superstep messages, and the routing
// table consulted by partitionFor, so checkpoints and recovery stay
// consistent. Placement never changes computation semantics, only
// which worker runs a vertex, so traces and results are identical with
// the rebalancer on or off.
func (en *engine) rebalance(ss *SuperstepStats, v anomaly.SkewVerdict) {
	if !v.Triggered || len(en.parts) < 2 || len(ss.Workers) != len(en.parts) {
		return
	}
	from, skew := v.Worker, v.Skew
	src := en.parts[from]
	if len(src.verts) < 2 {
		return
	}

	// Receiver: the partition with the lightest load this superstep,
	// lowest index on ties so the choice is reproducible.
	to := -1
	for w := range ss.Workers {
		if w == from {
			continue
		}
		if to < 0 || lighter(&ss.Workers[w], &ss.Workers[to]) {
			to = w
		}
	}
	if to < 0 {
		return
	}
	dst := en.parts[to]

	// Move half the straggler's excess over the mean (skew = max/mean,
	// so the excess fraction is 1 - 1/skew). Halving damps oscillation:
	// the hottest vertices go first, so load moves faster than the
	// vertex count suggests.
	budget := int(float64(len(src.verts)) * (1 - 1/skew) / 2)
	if max := en.rebalanceMaxMoves(); budget > max {
		budget = max
	}
	if budget >= len(src.verts) {
		budget = len(src.verts) - 1
	}
	if budget < 1 {
		budget = 1
	}

	ids := make([]VertexID, 0, len(src.verts))
	for id := range src.verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := len(src.verts[ids[i]].edges), len(src.verts[ids[j]].edges)
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})

	if en.reassigned == nil {
		en.reassigned = make(map[VertexID]int, budget)
	}
	var movedEdges int64
	for _, id := range ids[:budget] {
		v := src.verts[id]
		delete(src.verts, id)
		src.removed++
		src.edges -= int64(len(v.edges))
		if !v.halted {
			en.partActive[from]--
			en.partActive[to]++
		}
		dst.verts[id] = v
		dst.ids = append(dst.ids, id)
		dst.edges += int64(len(v.edges))
		v.owner = dst
		en.reassigned[id] = to
		en.next.migrate(from, to, id)
		movedEdges += int64(len(v.edges))
	}
	// A migration changes both partitions' contents, so their cached
	// subgraph membership is stale: the moved vertices' components must
	// dissolve out of src and re-form (possibly merging) in dst before
	// the next ModeSubgraph scan.
	src.subsDirty = true
	dst.subsDirty = true
	src.compactIfNeeded()
	if dst.removed > 0 {
		// dst may still list a moved-in vertex from before an earlier
		// migration or removal; rebuilding keeps ids duplicate-free so
		// no vertex computes twice.
		dst.rebuildIDs()
	}

	ev := MigrationEvent{From: from, To: to, Vertices: int64(budget), Edges: movedEdges, Skew: skew}
	ss.Migrations = append(ss.Migrations, ev)
	en.stats.Rebalances++
	en.stats.VerticesMigrated += int64(budget)
	en.lastMigration = en.superstep
}

func (en *engine) rebalanceMaxMoves() int {
	if en.cfg.RebalanceMaxMoves > 0 {
		return en.cfg.RebalanceMaxMoves
	}
	return defaultRebalanceMaxMoves
}

// lighter orders workers by this superstep's load, compute time first
// (what the skew trigger watches), messages sent as the tie-break.
func lighter(a, b *WorkerStepStats) bool {
	if a.ComputeTime != b.ComputeTime {
		return a.ComputeTime < b.ComputeTime
	}
	return a.MessagesSent < b.MessagesSent
}
