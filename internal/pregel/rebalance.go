package pregel

import (
	"sort"

	"graft/internal/anomaly"
)

// defaultRebalanceMaxMoves is used when Config.RebalanceMaxMoves is 0.
const defaultRebalanceMaxMoves = 1024

// rebalance is the skew-driven adaptive repartitioner. It runs on the
// coordinator at the barrier, after foldTelemetry and the lane merge,
// when Config.RebalanceSkew is set. The trigger is no longer its own:
// the engine evaluates the anomaly package's shared skew model
// (anomaly.EvaluateSkew — the same verdict the straggler-persistence
// detector counts streaks of) and passes the verdict in, so detection
// and mitigation cannot drift apart. When the verdict triggered, the
// hottest vertices (by out-degree, the deterministic proxy for message
// work) migrate off the indicted partition to the least-loaded one —
// vertex objects, pending next-superstep messages, and the routing
// table consulted by partitionFor, so checkpoints and recovery stay
// consistent. Placement never changes computation semantics, only
// which worker runs a vertex, so traces and results are identical with
// the rebalancer on or off.
func (en *engine) rebalance(ss *SuperstepStats, v anomaly.SkewVerdict) {
	if !v.Triggered || len(en.parts) < 2 || len(ss.Workers) != len(en.parts) {
		return
	}
	from, skew := v.Worker, v.Skew
	src := en.parts[from]
	if len(src.verts) < 2 {
		return
	}

	// Receiver: the partition with the lightest load this superstep,
	// lowest index on ties so the choice is reproducible.
	to := -1
	for w := range ss.Workers {
		if w == from {
			continue
		}
		if to < 0 || lighter(&ss.Workers[w], &ss.Workers[to]) {
			to = w
		}
	}
	if to < 0 {
		return
	}

	// Move half the straggler's excess over the mean (skew = max/mean,
	// so the excess fraction is 1 - 1/skew). Halving damps oscillation:
	// the hottest vertices go first, so load moves faster than the
	// vertex count suggests.
	budget := int(float64(len(src.verts)) * (1 - 1/skew) / 2)
	if max := en.rebalanceMaxMoves(); budget > max {
		budget = max
	}
	if budget >= len(src.verts) {
		budget = len(src.verts) - 1
	}
	if budget < 1 {
		budget = 1
	}

	ids := make([]VertexID, 0, len(src.verts))
	for id := range src.verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := len(src.verts[ids[i]].edges), len(src.verts[ids[j]].edges)
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})

	movedEdges := en.migrateVertices(from, to, ids[:budget])

	ev := MigrationEvent{From: from, To: to, Vertices: int64(budget), Edges: movedEdges, Skew: skew}
	ss.Migrations = append(ss.Migrations, ev)
}

// migrateVertices performs the mechanics of moving the given vertices
// from partition `from` to partition `to`: the vertex objects, the
// active counts, the pending next-superstep messages, the routing
// table consulted by partitionFor (so checkpoints and recovery stay
// consistent) and the rebalance bookkeeping. Returns the number of
// out-edges carried. Callers append their own MigrationEvent.
func (en *engine) migrateVertices(from, to int, ids []VertexID) int64 {
	src, dst := en.parts[from], en.parts[to]
	if en.assign == nil {
		en.assign = newAssignTable()
	}
	var movedEdges int64
	for _, id := range ids {
		v := src.verts[id]
		delete(src.verts, id)
		src.removed++
		src.edges -= int64(len(v.edges))
		if !v.halted {
			en.partActive[from]--
			en.partActive[to]++
		}
		dst.verts[id] = v
		dst.ids = append(dst.ids, id)
		dst.edges += int64(len(v.edges))
		v.owner = dst
		en.assign.set(id, to)
		en.next.migrate(from, to, id)
		movedEdges += int64(len(v.edges))
	}
	// A migration changes both partitions' contents, so their cached
	// subgraph membership is stale: the moved vertices' components must
	// dissolve out of src and re-form (possibly merging) in dst before
	// the next ModeSubgraph scan.
	src.subsDirty = true
	dst.subsDirty = true
	src.compactIfNeeded()
	if dst.removed > 0 {
		// dst may still list a moved-in vertex from before an earlier
		// migration or removal; rebuilding keeps ids duplicate-free so
		// no vertex computes twice.
		dst.rebuildIDs()
	}
	en.stats.Rebalances++
	en.stats.VerticesMigrated += int64(len(ids))
	en.lastMigration = en.superstep
	en.edgeCutDirty = true
	return movedEdges
}

// Edge-cut rebalancing triggers only when the superstep moved enough
// messages for the matrix to mean something, and when the heaviest
// cross-partition lane carries at least this fraction of the
// superstep's traffic — below that, placement is already good enough
// that migrating would churn for noise.
const (
	edgecutMinMessages  = 128
	edgecutMinLaneShare = 1.0 / 16
)

// rebalanceEdgeCut is the communication-objective repartitioner
// (Config.RebalanceObjective = ObjectiveEdgeCut). It runs on the
// coordinator at the barrier, reading the superstep's traffic matrix:
// if the heaviest cross-partition lane (from→to) carries a meaningful
// share of the traffic, the boundary vertices of `from` whose
// out-edges lean toward `to` migrate there — each move strictly
// shrinks the directed edge cut between the pair, so on undirected
// graphs the placement monotonically improves and the trigger starves
// itself once the boundary is tight. Like the skew objective,
// placement never changes computation semantics: traces and results
// are identical with the rebalancer on or off.
func (en *engine) rebalanceEdgeCut(ss *SuperstepStats) {
	traffic := ss.Traffic
	if traffic == nil || len(en.parts) < 2 {
		return
	}
	var total, bestLane int64
	bestFrom, bestTo := -1, -1
	for s := range traffic {
		for d, msgs := range traffic[s] {
			total += msgs
			if s == d {
				continue
			}
			if msgs > bestLane {
				bestLane = msgs
				bestFrom, bestTo = s, d
			}
		}
	}
	if total < edgecutMinMessages || bestFrom < 0 ||
		float64(bestLane) < float64(total)*edgecutMinLaneShare {
		return
	}
	src := en.parts[bestFrom]
	if len(src.verts) < 2 {
		return
	}

	// Candidates: vertices whose out-edges reach the heavy partner more
	// often than they stay home. Moving one trades its home edges for
	// its partner edges, so gain = toDst - toSrc > 0 strictly shrinks
	// the cut between the pair.
	type candidate struct {
		id   VertexID
		gain int
	}
	var cands []candidate
	for id, v := range src.verts {
		toDst, toSrc := 0, 0
		for i := range v.edges {
			switch en.partitionFor(v.edges[i].Target) {
			case bestTo:
				toDst++
			case bestFrom:
				toSrc++
			}
		}
		if toDst > toSrc {
			cands = append(cands, candidate{id: id, gain: toDst - toSrc})
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].id < cands[j].id
	})
	budget := en.rebalanceMaxMoves()
	if budget > len(cands) {
		budget = len(cands)
	}
	if budget >= len(src.verts) {
		budget = len(src.verts) - 1
	}
	if budget < 1 {
		return
	}
	ids := make([]VertexID, budget)
	var gain int64
	for i := 0; i < budget; i++ {
		ids[i] = cands[i].id
		gain += int64(cands[i].gain)
	}
	movedEdges := en.migrateVertices(bestFrom, bestTo, ids)

	ev := MigrationEvent{
		From: bestFrom, To: bestTo,
		Vertices: int64(budget), Edges: movedEdges,
		Skew:      float64(bestLane) / float64(total),
		Objective: "edgecut", Gain: gain,
	}
	ss.Migrations = append(ss.Migrations, ev)
}

func (en *engine) rebalanceMaxMoves() int {
	if en.cfg.RebalanceMaxMoves > 0 {
		return en.cfg.RebalanceMaxMoves
	}
	return defaultRebalanceMaxMoves
}

// lighter orders workers by this superstep's load, compute time first
// (what the skew trigger watches), messages sent as the tie-break.
func lighter(a, b *WorkerStepStats) bool {
	if a.ComputeTime != b.ComputeTime {
		return a.ComputeTime < b.ComputeTime
	}
	return a.MessagesSent < b.MessagesSent
}
