package pregel

import (
	"errors"
	"testing"
)

func TestValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"MaxSupersteps", Config{MaxSupersteps: -1}},
		{"MsgFlushBatch", Config{MsgFlushBatch: -5}},
		{"MsgLogSegmentSize", Config{MsgLogSegmentSize: -1}},
		{"MaxRecoveries", Config{MaxRecoveries: -2}},
		{"CheckpointEvery", Config{CheckpointEvery: -3}},
		{"RebalanceSkew", Config{RebalanceSkew: -0.5}},
		{"RebalanceMaxMoves", Config{RebalanceMaxMoves: -1}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: negative value accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
}

func TestValidateRejectsContradictions(t *testing.T) {
	// RecoveryLog needs the lane plane and an outbox-log file system.
	cfg := Config{Recovery: RecoveryLog, MessagePlane: PlaneMutex}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RecoveryLog+PlaneMutex: err = %v", err)
	}
	cfg = Config{Recovery: RecoveryLog, MessagePlane: PlaneLanes}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RecoveryLog without MsgLogFS: err = %v", err)
	}
	cfg = Config{CheckpointEvery: 2}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("CheckpointEvery without CheckpointFS: err = %v", err)
	}
}

func TestValidateAcceptsZeroValues(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestInvalidConfigSurfacesThroughRun pins that a Job built on a
// contradictory config fails with the typed error (and still fires the
// listener's JobFinished, like any other job failure).
func TestInvalidConfigSurfacesThroughRun(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, nil)
	job := NewJob(g, ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		v.VoteToHalt()
		return nil
	}), Config{NumWorkers: 1, MaxSupersteps: -1})
	stats, err := job.Run()
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	if stats != nil {
		t.Errorf("stats = %+v, want nil on config error", stats)
	}
}
