package pregel

import (
	"errors"
	"fmt"
)

// ComputeError wraps a failure inside a vertex or master computation
// with enough context to locate it: the vertex (or MasterVertexID for
// the master), the superstep and the worker. A panic in user code is
// recovered by the engine and reported as a ComputeError carrying the
// panic value and stack; Graft's instrumenter additionally captures
// the failing vertex's full context before the error propagates.
type ComputeError struct {
	VertexID  VertexID
	Superstep int
	Worker    int
	Err       error  // non-nil when Compute returned an error
	Panic     any    // non-nil when Compute panicked
	Stack     string // goroutine stack at the panic site
}

// MasterVertexID is the sentinel VertexID used in ComputeError for
// failures inside master.compute.
const MasterVertexID VertexID = -1

// Error implements error.
func (e *ComputeError) Error() string {
	who := fmt.Sprintf("vertex %d", e.VertexID)
	if e.VertexID == MasterVertexID {
		who = "master"
	}
	if e.Panic != nil {
		return fmt.Sprintf("pregel: panic in compute of %s at superstep %d (worker %d): %v",
			who, e.Superstep, e.Worker, e.Panic)
	}
	return fmt.Sprintf("pregel: compute of %s at superstep %d (worker %d): %v",
		who, e.Superstep, e.Worker, e.Err)
}

// Unwrap exposes the wrapped error for errors.Is/As.
func (e *ComputeError) Unwrap() error { return e.Err }

// ErrNoCheckpoint is returned when a simulated worker failure occurs
// and no checkpoint is available to recover from.
var ErrNoCheckpoint = errors.New("pregel: worker failed and no checkpoint is available")

// ErrTooManyRecoveries is returned when failure injection exceeds
// Config.MaxRecoveries.
var ErrTooManyRecoveries = errors.New("pregel: exceeded maximum recovery attempts")
