package pregel

import (
	"strconv"
)

// Concrete Value types covering the scalar kinds Giraph ships as
// Writables (LongWritable, IntWritable, DoubleWritable, Text, ...).
// Algorithm-specific composite values live next to their algorithms
// and register themselves the same way.

func init() {
	RegisterValue("nil", func() Value { return new(NilValue) })
	RegisterValue("bool", func() Value { return new(BoolValue) })
	RegisterValue("int", func() Value { return new(IntValue) })
	RegisterValue("long", func() Value { return new(LongValue) })
	RegisterValue("short", func() Value { return new(ShortValue) })
	RegisterValue("double", func() Value { return new(DoubleValue) })
	RegisterValue("text", func() Value { return new(TextValue) })
	RegisterValue("longlist", func() Value { return new(LongListValue) })
}

// NilValue is the unit value, used where Giraph uses NullWritable
// (e.g. unweighted edges).
type NilValue struct{}

// Nil returns the canonical NilValue.
func Nil() *NilValue { return &NilValue{} }

// ImmutableMarker identifies NilValue as safe to share across inboxes
// (see ImmutableValue).
func (*NilValue) ImmutableMarker() {}

func (*NilValue) TypeName() string      { return "nil" }
func (*NilValue) Encode(*Encoder)       {}
func (*NilValue) Decode(*Decoder) error { return nil }
func (*NilValue) Clone() Value          { return &NilValue{} }
func (*NilValue) String() string        { return "nil" }

// BoolValue wraps a bool.
type BoolValue bool

// NewBool returns a BoolValue holding v.
func NewBool(v bool) *BoolValue { b := BoolValue(v); return &b }

func (b *BoolValue) Get() bool         { return bool(*b) }
func (b *BoolValue) Set(v bool)        { *b = BoolValue(v) }
func (*BoolValue) TypeName() string    { return "bool" }
func (b *BoolValue) Encode(e *Encoder) { e.PutBool(bool(*b)) }
func (b *BoolValue) Decode(d *Decoder) error {
	*b = BoolValue(d.Bool())
	return d.Err()
}
func (b *BoolValue) Clone() Value   { c := *b; return &c }
func (b *BoolValue) String() string { return strconv.FormatBool(bool(*b)) }

// IntValue wraps an int32, mirroring IntWritable.
type IntValue int32

// NewInt returns an IntValue holding v.
func NewInt(v int32) *IntValue { i := IntValue(v); return &i }

func (i *IntValue) Get() int32        { return int32(*i) }
func (i *IntValue) Set(v int32)       { *i = IntValue(v) }
func (*IntValue) TypeName() string    { return "int" }
func (i *IntValue) Encode(e *Encoder) { e.PutVarint(int64(*i)) }
func (i *IntValue) Decode(d *Decoder) error {
	*i = IntValue(d.Varint())
	return d.Err()
}
func (i *IntValue) Clone() Value   { c := *i; return &c }
func (i *IntValue) String() string { return strconv.FormatInt(int64(*i), 10) }

// LongValue wraps an int64, mirroring LongWritable.
type LongValue int64

// NewLong returns a LongValue holding v.
func NewLong(v int64) *LongValue { l := LongValue(v); return &l }

func (l *LongValue) Get() int64        { return int64(*l) }
func (l *LongValue) Set(v int64)       { *l = LongValue(v) }
func (*LongValue) TypeName() string    { return "long" }
func (l *LongValue) Encode(e *Encoder) { e.PutVarint(int64(*l)) }
func (l *LongValue) Decode(d *Decoder) error {
	*l = LongValue(d.Varint())
	return d.Err()
}
func (l *LongValue) Clone() Value   { c := *l; return &c }
func (l *LongValue) String() string { return strconv.FormatInt(int64(*l), 10) }

// ShortValue wraps an int16. The random-walk scenario (§4.2 of the
// paper) depends on 16-bit counters overflowing exactly as Java's
// short does; arithmetic on the underlying int16 wraps the same way.
type ShortValue int16

// NewShort returns a ShortValue holding v.
func NewShort(v int16) *ShortValue { s := ShortValue(v); return &s }

func (s *ShortValue) Get() int16        { return int16(*s) }
func (s *ShortValue) Set(v int16)       { *s = ShortValue(v) }
func (*ShortValue) TypeName() string    { return "short" }
func (s *ShortValue) Encode(e *Encoder) { e.PutVarint(int64(*s)) }
func (s *ShortValue) Decode(d *Decoder) error {
	*s = ShortValue(d.Varint())
	return d.Err()
}
func (s *ShortValue) Clone() Value   { c := *s; return &c }
func (s *ShortValue) String() string { return strconv.FormatInt(int64(*s), 10) }

// DoubleValue wraps a float64, mirroring DoubleWritable.
type DoubleValue float64

// NewDouble returns a DoubleValue holding v.
func NewDouble(v float64) *DoubleValue { f := DoubleValue(v); return &f }

func (f *DoubleValue) Get() float64      { return float64(*f) }
func (f *DoubleValue) Set(v float64)     { *f = DoubleValue(v) }
func (*DoubleValue) TypeName() string    { return "double" }
func (f *DoubleValue) Encode(e *Encoder) { e.PutFloat64(float64(*f)) }
func (f *DoubleValue) Decode(d *Decoder) error {
	*f = DoubleValue(d.Float64())
	return d.Err()
}
func (f *DoubleValue) Clone() Value { c := *f; return &c }
func (f *DoubleValue) String() string {
	return strconv.FormatFloat(float64(*f), 'g', -1, 64)
}

// TextValue wraps a string, mirroring Text.
type TextValue string

// NewText returns a TextValue holding s.
func NewText(s string) *TextValue { t := TextValue(s); return &t }

func (t *TextValue) Get() string       { return string(*t) }
func (t *TextValue) Set(s string)      { *t = TextValue(s) }
func (*TextValue) TypeName() string    { return "text" }
func (t *TextValue) Encode(e *Encoder) { e.PutString(string(*t)) }
func (t *TextValue) Decode(d *Decoder) error {
	*t = TextValue(d.String())
	return d.Err()
}
func (t *TextValue) Clone() Value   { c := *t; return &c }
func (t *TextValue) String() string { return string(*t) }

// LongListValue wraps a slice of int64, for algorithms whose messages
// carry several IDs at once.
type LongListValue struct {
	Longs []int64
}

// NewLongList returns a LongListValue holding a copy of vs.
func NewLongList(vs ...int64) *LongListValue {
	return &LongListValue{Longs: append([]int64(nil), vs...)}
}

func (*LongListValue) TypeName() string { return "longlist" }

func (l *LongListValue) Encode(e *Encoder) {
	e.PutUvarint(uint64(len(l.Longs)))
	for _, v := range l.Longs {
		e.PutVarint(v)
	}
}

func (l *LongListValue) Decode(d *Decoder) error {
	n := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if n > uint64(d.Remaining()) { // each element is at least one byte
		return ErrCorrupt
	}
	l.Longs = make([]int64, n)
	for i := range l.Longs {
		l.Longs[i] = d.Varint()
	}
	return d.Err()
}

func (l *LongListValue) Clone() Value {
	return &LongListValue{Longs: append([]int64(nil), l.Longs...)}
}

func (l *LongListValue) String() string {
	s := "["
	for i, v := range l.Longs {
		if i > 0 {
			s += " "
		}
		s += strconv.FormatInt(v, 10)
	}
	return s + "]"
}
