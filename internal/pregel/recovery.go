package pregel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RecoveryMode selects how the engine recovers from injected worker
// failures.
type RecoveryMode int

const (
	// RecoveryCheckpoint is the classic Pregel strategy and the
	// default: any failure rewinds the whole job to the newest intact
	// checkpoint and every partition recomputes forward.
	RecoveryCheckpoint RecoveryMode = iota
	// RecoveryLog is confined recovery: only the failed partitions
	// roll back to the newest checkpoint and recompute forward in
	// parallel, their inboxes replayed from the sender-side outbox
	// logs, while surviving partitions keep their live state. Falls
	// back to RecoveryCheckpoint when the logs cannot drive a replay.
	RecoveryLog
)

func (m RecoveryMode) String() string {
	switch m {
	case RecoveryCheckpoint:
		return "checkpoint"
	case RecoveryLog:
		return "log"
	}
	return "unknown"
}

// RecoveryEvent is the per-recovery breakdown appended to
// Stats.RecoveryEvents.
type RecoveryEvent struct {
	// Superstep is the barrier at which the failure was injected.
	Superstep int `json:"superstep"`
	// Mode is "log" for a confined replay, "checkpoint" for a full
	// restart (including log-mode fallbacks).
	Mode string `json:"mode"`
	// Partitions lists the partitions that failed.
	Partitions []int `json:"partitions"`
	// CheckpointSuperstep is the superstep of the checkpoint the
	// recovery rolled back to.
	CheckpointSuperstep int `json:"checkpoint_superstep"`
	// PartitionsRecomputed is how many partitions recomputed: the
	// failed ones under confined recovery, all of them under restart.
	PartitionsRecomputed int `json:"partitions_recomputed"`
	// SuperstepsReplayed counts supersteps recomputed on the way back
	// to the failure point.
	SuperstepsReplayed int `json:"supersteps_replayed"`
	// MessagesReplayed and BytesReplayed count the logged traffic
	// delivered back to the failed partitions (zero under restart,
	// where messages are recomputed, not replayed).
	MessagesReplayed int64 `json:"messages_replayed"`
	BytesReplayed    int64 `json:"bytes_replayed"`
	// Duration is the recovery's wall time; for restarts it includes
	// the re-execution of the rewound supersteps.
	Duration time.Duration `json:"duration_ns"`
}

// errReplayUnusable means the outbox logs cannot drive a confined
// replay (corrupt or unreadable segment, broken writer, missing
// history); the engine degrades to a full checkpoint restart.
var errReplayUnusable = errors.New("pregel: outbox log unusable for confined replay")

// stepSnapshot is what confined replay needs to re-run one
// superstep's computes without re-running its master phase: the
// post-master aggregate broadcast and the vertex/edge totals.
type stepSnapshot struct {
	nv, ne int64
	aggs   map[string]Value
}

// checkFailure consults the failure-injection hooks for this barrier.
// Both hooks are always called (they may be stateful); FailureAt
// fails the whole job, PartitionFailureAt just the listed partitions.
// The returned list is validated, deduplicated and sorted.
func (en *engine) checkFailure(superstep int) ([]int, bool) {
	failed := false
	var parts []int
	if en.cfg.PartitionFailureAt != nil {
		if ps := en.cfg.PartitionFailureAt(superstep); len(ps) > 0 {
			failed = true
			seen := make(map[int]bool, len(ps))
			for _, p := range ps {
				if p >= 0 && p < len(en.parts) && !seen[p] {
					seen[p] = true
					parts = append(parts, p)
				}
			}
		}
	}
	if en.cfg.FailureAt != nil && en.cfg.FailureAt(superstep) {
		failed = true
		parts = nil
	}
	if !failed {
		return nil, false
	}
	if len(parts) == 0 {
		// Whole-job crash (or a partition list that named no real
		// partition): every partition failed.
		parts = make([]int, len(en.parts))
		for i := range parts {
			parts[i] = i
		}
	}
	sort.Ints(parts)
	return parts, true
}

// consumeRecoveryBudget charges one recovery attempt against
// Config.MaxRecoveries.
func (en *engine) consumeRecoveryBudget() error {
	if en.stats.Recoveries >= en.maxRecoveries() {
		return ErrTooManyRecoveries
	}
	en.stats.Recoveries++
	return nil
}

// confinedRecover performs log-based confined recovery for the given
// failed partitions at the current barrier (superstep S = en.superstep
// just completed): roll only those partitions back to the newest
// intact checkpoint C, recompute them forward through S in parallel
// with their inboxes replayed from the outbox logs, and rebuild their
// S+1 inbox shards in en.next. Surviving partitions are never touched.
// Returns errReplayUnusable when the caller should fall back to a full
// checkpoint restart; other errors are fatal.
func (en *engine) confinedRecover(failedParts []int, ev *RecoveryEvent) error {
	if en.msglog == nil || en.msglog.broken {
		return errReplayUnusable
	}
	if en.cfg.CheckpointFS == nil {
		return ErrNoCheckpoint
	}
	S := en.superstep
	nums, err := en.listCheckpoints()
	if err != nil {
		return err
	}
	// Newest intact checkpoint at or below the failure point. A corrupt
	// candidate is counted and skipped in favor of the next older one,
	// exactly like restoreNewestIntact.
	var raw []byte
	C := -1
	for _, n := range nums {
		if n > S {
			continue
		}
		b, err := en.readCheckpointFile(n)
		if err != nil {
			en.stats.Faults.CorruptCheckpoints++
			continue
		}
		if _, err := en.decodeCheckpoint(b); err != nil {
			en.stats.Faults.CorruptCheckpoints++
			continue
		}
		raw, C = b, n
		break
	}
	if C < 0 {
		return ErrNoCheckpoint
	}

	// Load and verify every logged frame the replay will need, up
	// front: a hole discovered mid-replay would leave the failed
	// partitions half-rebuilt with no way back.
	steps, err := en.msglog.loadLoggedSteps(C, S)
	if err != nil {
		en.stats.Faults.CorruptLogSegments++
		return fmt.Errorf("%w: %v", errReplayUnusable, err)
	}
	for t := C; t <= S; t++ {
		if _, ok := en.history[t]; !ok {
			return fmt.Errorf("%w: no aggregate snapshot for superstep %d", errReplayUnusable, t)
		}
		if steps[t] == nil {
			// A superstep that sent nothing logs nothing; synthesize an
			// empty record so the replay loop can index it uniformly.
			n := len(en.parts)
			steps[t] = &loggedStep{
				batches:         make([][]loggedBatch, n),
				senderRemovals:  make([][]VertexID, n),
				senderAdditions: make([][]vertexAddition, n),
			}
		}
	}

	failed := make(map[int]bool, len(failedParts))
	for _, p := range failedParts {
		failed[p] = true
	}

	// Nested failures during the replay merge into the failed set and
	// restart the replay from a fresh checkpoint decode (the previous
	// attempt's partially recomputed state is discarded wholesale).
	for {
		st, err := en.decodeCheckpoint(raw)
		if err != nil {
			// Decoded cleanly above; a failure now means storage changed
			// under us. Degrade.
			en.stats.Faults.CorruptCheckpoints++
			return fmt.Errorf("%w: %v", errReplayUnusable, err)
		}
		nested, err := en.replayOnce(st, C, S, failed, steps, ev)
		if err != nil {
			return err
		}
		if len(nested) == 0 {
			break
		}
		if err := en.consumeRecoveryBudget(); err != nil {
			return err
		}
		for _, p := range nested {
			failed[p] = true
		}
	}

	// Rebuild the failed partitions' next-superstep inboxes from the
	// logs of S: survivors' shards in en.next are intact (they include
	// what the failed partitions sent during S — logged and durable
	// before the crash), but the failed shards died with their owners.
	last := steps[S]
	removals, additions := last.mutations()
	en.applyLoggedMutations(removals, additions, failed)
	en.foldReplayEdgeDeltas(failed)
	for p := range failed {
		en.next.resetShard(p)
	}
	msgs, bytes := en.replayInto(en.next, last, failed, C)
	ev.MessagesReplayed += msgs
	ev.BytesReplayed += bytes
	en.resolveReplayMissing(en.next, failed)
	en.recountActive()

	ev.CheckpointSuperstep = C
	ev.PartitionsRecomputed = len(failed)
	ev.SuperstepsReplayed += S - C + 1
	ev.Partitions = ev.Partitions[:0]
	for p := range failed {
		ev.Partitions = append(ev.Partitions, p)
	}
	sort.Ints(ev.Partitions)
	return nil
}

// replayOnce rolls the failed partitions back to checkpoint state and
// recomputes them through superstep S. It returns the partitions of
// any nested failure injected during the replay window (the caller
// merges them and retries); a non-nil error is fatal or degrades to
// restart.
func (en *engine) replayOnce(st *checkpointState, C, S int, failed map[int]bool, steps map[int]*loggedStep, ev *RecoveryEvent) ([]int, error) {
	// Roll back: fresh partition shells for the failed set, populated
	// with checkpointed vertices that route there *today* — routing may
	// have changed since C if the rebalancer migrated vertices, and
	// current placement is what survivors' state reflects.
	for p := range failed {
		en.parts[p] = &partition{idx: p, verts: make(map[VertexID]*Vertex)}
	}
	for _, vs := range st.parts {
		for _, v := range vs {
			p := en.partitionFor(v.id)
			if !failed[p] {
				continue
			}
			part := en.parts[p]
			v.owner = part
			part.verts[v.id] = v
			part.ids = append(part.ids, v.id)
			part.edges += int64(len(v.edges))
			en.job.graph.vertices[v.id] = v
		}
	}
	for p := range failed {
		part := en.parts[p]
		sort.Slice(part.ids, func(i, j int) bool { return part.ids[i] < part.ids[j] })
	}

	// Inbox for superstep C comes from the checkpoint itself (its
	// resolver-created vertices are already in the vertex lists, so no
	// resolution pass here).
	inbox := en.newStore()
	for shard := range st.cur.shards {
		sh := &st.cur.shards[shard]
		for id, v := range sh.c {
			if p := en.partitionFor(id); failed[p] {
				inbox.replayDeliver(p, id, v)
			}
		}
		for id, msgs := range sh.m {
			p := en.partitionFor(id)
			if !failed[p] {
				continue
			}
			for _, v := range msgs {
				inbox.replayDeliver(p, id, v)
			}
		}
	}

	for t := C; t <= S; t++ {
		snap := en.history[t]
		if err := en.replayStep(t, snap, inbox, failed); err != nil {
			return nil, err
		}
		if t == S {
			break
		}
		// Replayed barrier t: logged mutations first, then the next
		// inbox from the logs with missing-vertex resolution — the same
		// order as a live barrier.
		lst := steps[t]
		removals, additions := lst.mutations()
		en.applyLoggedMutations(removals, additions, failed)
		en.foldReplayEdgeDeltas(failed)
		inbox = en.newStore()
		msgs, bytes := en.replayInto(inbox, lst, failed, C)
		ev.MessagesReplayed += msgs
		ev.BytesReplayed += bytes
		en.resolveReplayMissing(inbox, failed)
		// Nested failure during the replay window. The original
		// failure's barrier S is not re-consulted — the hooks already
		// fired for it.
		if nested, isFailed := en.checkFailure(t); isFailed {
			return nested, nil
		}
	}
	return nil, nil
}

// replayStep re-runs superstep t's computes on the failed partitions
// in parallel, against the snapshot aggregates. Sends, aggregation and
// mutation requests from the replayed computes are suppressed — their
// effects are replayed from the logs instead — but instrumented
// computations still observe identical vertex state, messages and
// context, so trace captures re-emitted here match the originals.
func (en *engine) replayStep(t int, snap stepSnapshot, inbox *messageStore, failed map[int]bool) error {
	errs := make(map[int]error, len(failed))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := range failed {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			err := en.replayWorker(p, t, snap, inbox)
			if err != nil {
				mu.Lock()
				errs[p] = err
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (en *engine) replayWorker(p, t int, snap stepSnapshot, inbox *messageStore) error {
	if en.cfg.ComputeMode == ModeSubgraph {
		return en.replaySubgraphWorker(p, t, snap, inbox)
	}
	part := en.parts[p]
	ctx := &workerCtx{
		en:          en,
		worker:      p,
		superstep:   t,
		numVertices: snap.nv,
		numEdges:    snap.ne,
		aggPartial:  map[string]Value{},
		replay:      true,
		bcast:       snap.aggs,
	}
	for i := 0; i < len(part.ids); i++ {
		v, ok := part.verts[part.ids[i]]
		if !ok {
			continue
		}
		msgs := inbox.take(p, v.id)
		if v.halted {
			if len(msgs) == 0 {
				continue
			}
			v.halted = false
		}
		if err := en.safeCompute(ctx, v, msgs); err != nil {
			return err
		}
	}
	return nil
}

// replayInto routes logged entries into the store's failed shards,
// sender-major and in log order — reproducing mergeLane's
// deterministic combine order. Every entry is routed by *current*
// partitionFor: the logged frame destination is send-time routing,
// which the rebalancer may since have changed. When no migration has
// happened since the checkpoint, frame destinations are still exact
// and whole frames outside the failed set are skipped.
func (en *engine) replayInto(store *messageStore, lst *loggedStep, failed map[int]bool, checkpointStep int) (msgs, bytes int64) {
	narrow := en.lastMigration < checkpointStep // no moves since the replay window opened
	for sender := range lst.batches {
		for _, b := range lst.batches[sender] {
			if narrow && !failed[b.dest] {
				continue
			}
			delivered := false
			for _, ent := range b.entries {
				p := en.partitionFor(ent.to)
				if !failed[p] {
					continue
				}
				// Clone: the decoded log is shared across nested replay
				// attempts, and a combiner may mutate delivered values.
				store.replayDeliver(p, ent.to, CloneValue(ent.msg))
				msgs++
				delivered = true
			}
			if delivered {
				bytes += b.rawBytes
			}
		}
	}
	return msgs, bytes
}

// applyLoggedMutations replays a barrier's vertex removals and
// additions, restricted to vertices owned by failed partitions
// (survivors applied theirs live, before the crash). Mirrors
// applyMutations' sorted order and removed-then-added semantics;
// active counts are not maintained here — confined recovery recounts
// from ground truth once the replay ends.
func (en *engine) applyLoggedMutations(removals []VertexID, additions []vertexAddition, failed map[int]bool) {
	var rem []VertexID
	for _, id := range removals {
		if failed[en.partitionFor(id)] {
			rem = append(rem, id)
		}
	}
	sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })
	for _, id := range rem {
		p := en.parts[en.partitionFor(id)]
		if v, ok := p.verts[id]; ok {
			p.edges -= int64(len(v.edges))
			delete(p.verts, id)
			p.removed++
			p.subsDirty = true
		}
	}
	var adds []vertexAddition
	for _, add := range additions {
		if failed[en.partitionFor(add.id)] {
			adds = append(adds, add)
		}
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].id < adds[j].id })
	var dirty []*partition
	for _, add := range adds {
		p := en.parts[en.partitionFor(add.id)]
		if _, exists := p.verts[add.id]; exists {
			continue
		}
		val := add.value
		if val != nil {
			val = CloneValue(val) // the decoded log is shared across replay attempts
		} else if en.cfg.DefaultVertexValue != nil {
			val = en.cfg.DefaultVertexValue()
		}
		v := &Vertex{id: add.id, value: val, owner: p}
		p.verts[add.id] = v
		p.ids = append(p.ids, add.id)
		p.subsDirty = true
		if p.removed > 0 {
			dirty = append(dirty, p)
		}
		en.job.graph.vertices[add.id] = v
	}
	for _, p := range dirty {
		if p.removed > 0 {
			p.rebuildIDs()
		}
	}
}

// foldReplayEdgeDeltas folds the failed partitions' in-superstep edge
// mutations into their edge counts, as applyMutations does for every
// partition at a live barrier.
func (en *engine) foldReplayEdgeDeltas(failed map[int]bool) {
	for p := range failed {
		part := en.parts[p]
		part.edges += int64(part.edgeDelta)
		part.edgeDelta = 0
		part.compactIfNeeded()
	}
}

// resolveReplayMissing re-runs the missing-vertex resolution a live
// barrier would have done, restricted to failed shards: replayed
// messages addressed to vertices that do not exist either create them
// (CreateMissingVertices — the original barrier created the same
// vertices, so this rebuilds failed state, not new state) or are
// removed without re-counting Stats.MessagesDropped (the original run
// already counted them).
func (en *engine) resolveReplayMissing(store *messageStore, failed map[int]bool) {
	for p := range failed {
		part := en.parts[p]
		for _, id := range store.pendingIDs(p, part.verts) {
			if en.cfg.CreateMissingVertices {
				var val Value
				if en.cfg.DefaultVertexValue != nil {
					val = en.cfg.DefaultVertexValue()
				}
				v := &Vertex{id: id, value: val, owner: part}
				part.verts[id] = v
				part.ids = append(part.ids, id)
				part.subsDirty = true
				en.job.graph.vertices[id] = v
			} else {
				store.take(p, id)
			}
		}
	}
}
