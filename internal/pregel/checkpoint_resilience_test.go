package pregel

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"graft/internal/dfs"
)

// corrupt truncates a stored file to half its length, simulating a
// torn write that survived a crash.
func corrupt(t *testing.T, fs dfs.FileSystem, path string) {
	t.Helper()
	raw, err := dfs.ReadFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(fs, path, raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
}

// writeCheckpointAt snapshots en at the given superstep.
func writeCheckpointAt(t *testing.T, en *engine, superstep int) {
	t.Helper()
	en.superstep = superstep
	if err := en.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverySkipsTruncatedNewestCheckpoint(t *testing.T) {
	fs := dfs.NewMemFS()
	cfg := Config{NumWorkers: 2, CheckpointFS: fs, CheckpointEvery: 1}
	en := newEngine(NewJob(pathGraph(t, 5), ccCompute, cfg))
	writeCheckpointAt(t, en, 0)
	writeCheckpointAt(t, en, 2)
	corrupt(t, fs, en.checkpointPath(2))

	en2 := newEngine(NewJob(pathGraph(t, 5), ccCompute, cfg))
	en2.superstep = 2
	if err := en2.recoverFromCheckpoint(); err != nil {
		t.Fatalf("recovery should fall back to the intact checkpoint: %v", err)
	}
	if en2.superstep != 0 {
		t.Errorf("recovered to superstep %d, want 0 (the intact checkpoint)", en2.superstep)
	}
	if en2.stats.Faults.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", en2.stats.Faults.CorruptCheckpoints)
	}
}

func TestRecoverySkipsBadMagic(t *testing.T) {
	fs := dfs.NewMemFS()
	cfg := Config{NumWorkers: 2, CheckpointFS: fs, CheckpointEvery: 1}
	en := newEngine(NewJob(pathGraph(t, 4), ccCompute, cfg))
	writeCheckpointAt(t, en, 1)
	// A well-formed file of the wrong format: valid length-prefixed
	// string, wrong magic.
	e := NewEncoder()
	e.PutString("NOTACKPT")
	if err := dfs.WriteFile(fs, en.checkpointPath(3), e.Bytes()); err != nil {
		t.Fatal(err)
	}

	en2 := newEngine(NewJob(pathGraph(t, 4), ccCompute, cfg))
	en2.superstep = 3
	if err := en2.recoverFromCheckpoint(); err != nil {
		t.Fatalf("recovery should skip the bad-magic file: %v", err)
	}
	if en2.superstep != 1 {
		t.Errorf("recovered to superstep %d, want 1", en2.superstep)
	}
	if en2.stats.Faults.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", en2.stats.Faults.CorruptCheckpoints)
	}
}

func TestRecoveryFailsWhenEveryCheckpointCorrupt(t *testing.T) {
	fs := dfs.NewMemFS()
	cfg := Config{NumWorkers: 2, CheckpointFS: fs, CheckpointEvery: 1}
	en := newEngine(NewJob(pathGraph(t, 4), ccCompute, cfg))
	writeCheckpointAt(t, en, 0)
	writeCheckpointAt(t, en, 1)
	corrupt(t, fs, en.checkpointPath(0))
	corrupt(t, fs, en.checkpointPath(1))

	en2 := newEngine(NewJob(pathGraph(t, 4), ccCompute, cfg))
	en2.superstep = 1
	err := en2.recoverFromCheckpoint()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	if en2.stats.Faults.CorruptCheckpoints != 2 {
		t.Errorf("CorruptCheckpoints = %d, want 2", en2.stats.Faults.CorruptCheckpoints)
	}
}

// failNthWriteFS fails the Nth Write call across all files, wrapping a
// MemFS. (The internal/faults injector can't be used here: it imports
// pregel.)
type failNthWriteFS struct {
	dfs.FileSystem
	n     int
	calls int
}

func (f *failNthWriteFS) Create(path string) (io.WriteCloser, error) {
	w, err := f.FileSystem.Create(path)
	if err != nil {
		return nil, err
	}
	return &failNthWriter{w: w, fs: f}, nil
}

type failNthWriter struct {
	w  io.WriteCloser
	fs *failNthWriteFS
}

func (w *failNthWriter) Write(p []byte) (int, error) {
	w.fs.calls++
	if w.fs.calls == w.fs.n {
		// Half the buffer lands, then the device dies.
		w.w.Write(p[:len(p)/2])
		return len(p) / 2, fmt.Errorf("simulated device failure")
	}
	return w.w.Write(p)
}

func (w *failNthWriter) Close() error { return w.w.Close() }

func TestFailedCheckpointWriteLeavesNoPartialFile(t *testing.T) {
	mem := dfs.NewMemFS()
	fs := &failNthWriteFS{FileSystem: mem, n: 1}
	en := newEngine(NewJob(pathGraph(t, 5), ccCompute,
		Config{NumWorkers: 2, CheckpointFS: fs, CheckpointEvery: 1}))
	if err := en.writeCheckpoint(); err == nil {
		t.Fatal("writeCheckpoint should surface the device failure")
	}
	names, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("partial checkpoint left behind: %v", names)
	}
}

// TestRecoveryKeepsRemovedVertexState pins a bug the chaos sweep
// found: a vertex that leaves the computation (RemoveVertexRequest)
// before a checkpoint keeps its final value only in the input graph;
// recovery must not wipe that entry while re-pointing the graph at the
// restored partitions. MWM-style algorithms read their output from
// exactly these removed vertices.
func TestRecoveryKeepsRemovedVertexState(t *testing.T) {
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		switch {
		case ctx.Superstep() == 0 && v.ID() == 0:
			// Vertex 0 records its result and leaves the computation.
			v.SetValue(NewLong(99))
			ctx.RemoveVertexRequest(v.ID())
		case ctx.Superstep() >= 3:
			v.VoteToHalt()
		}
		return nil
	})
	failed := false
	g := pathGraph(t, 4)
	stats, err := NewJob(g, comp, Config{
		NumWorkers:      2,
		CheckpointEvery: 1,
		CheckpointFS:    dfs.NewMemFS(),
		FailureAt: func(superstep int) bool {
			if superstep == 2 && !failed {
				failed = true
				return true
			}
			return false
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", stats.Recoveries)
	}
	v := g.Vertex(0)
	if v == nil {
		t.Fatal("removed vertex 0 lost from the input graph by recovery")
	}
	if got := v.Value().(*LongValue).Get(); got != 99 {
		t.Errorf("removed vertex 0 value = %d after recovery, want 99", got)
	}
}

// TestJobSurvivesCorruptNewestCheckpoint is the end-to-end version: a
// worker crashes right when the newest checkpoint is torn, the engine
// falls back to the previous one, and the job still converges to the
// fault-free answer.
func TestJobSurvivesCorruptNewestCheckpoint(t *testing.T) {
	want := ccResult(t, Config{NumWorkers: 3})

	fs := dfs.NewMemFS()
	failed := false
	g := twoComponentGraph(t)
	stats, err := NewJob(g, ccCompute, Config{
		NumWorkers:      3,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(superstep int) bool {
			if superstep == 2 && !failed {
				failed = true
				corrupt(t, fs, fmt.Sprintf("checkpoint_%08d", 2))
				return true
			}
			return false
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("failure was never injected")
	}
	if stats.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", stats.Recoveries)
	}
	if stats.Faults.CorruptCheckpoints != 1 {
		t.Errorf("CorruptCheckpoints = %d, want 1", stats.Faults.CorruptCheckpoints)
	}
	got := map[VertexID]int64{}
	g.Each(func(v *Vertex) { got[v.ID()] = v.Value().(*LongValue).Get() })
	for id, label := range want {
		if got[id] != label {
			t.Errorf("vertex %d: label %d after degraded recovery, want %d", id, got[id], label)
		}
	}
}
