package pregel

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig is the sentinel every Config validation failure
// wraps, so callers can branch with errors.Is while the message still
// names the offending field.
var ErrInvalidConfig = errors.New("pregel: invalid config")

// invalidf builds one validation failure wrapping ErrInvalidConfig.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// Validate rejects configurations that are contradictory or would fail
// at runtime in a harder-to-diagnose way. Zero values are never
// rejected — they mean "use the default" — but explicitly negative
// capacities and impossible mode combinations return a typed error
// wrapping ErrInvalidConfig instead of being silently coerced.
func (c *Config) Validate() error {
	if c.MaxSupersteps < 0 {
		return invalidf("MaxSupersteps = %d, must be >= 0 (0 means unlimited)", c.MaxSupersteps)
	}
	if c.MsgFlushBatch < 0 {
		return invalidf("MsgFlushBatch = %d, must be >= 0 (0 means the default)", c.MsgFlushBatch)
	}
	if c.MsgLogSegmentSize < 0 {
		return invalidf("MsgLogSegmentSize = %d, must be >= 0 (0 means the default)", c.MsgLogSegmentSize)
	}
	if c.MaxRecoveries < 0 {
		return invalidf("MaxRecoveries = %d, must be >= 0 (0 means the default)", c.MaxRecoveries)
	}
	if c.CheckpointEvery < 0 {
		return invalidf("CheckpointEvery = %d, must be >= 0 (0 disables checkpointing)", c.CheckpointEvery)
	}
	if c.RebalanceSkew < 0 {
		return invalidf("RebalanceSkew = %g, must be >= 0 (0 disables rebalancing)", c.RebalanceSkew)
	}
	if c.RebalanceMaxMoves < 0 {
		return invalidf("RebalanceMaxMoves = %d, must be >= 0 (0 means the default)", c.RebalanceMaxMoves)
	}
	if c.ComputeMode != ModeVertex && c.ComputeMode != ModeSubgraph {
		return invalidf("ComputeMode = %d, must be ModeVertex or ModeSubgraph", int(c.ComputeMode))
	}
	if c.Partitioner != PartitionHash && c.Partitioner != PartitionLocality {
		return invalidf("Partitioner = %d, must be PartitionHash or PartitionLocality", int(c.Partitioner))
	}
	if c.RebalanceObjective != ObjectiveSkew && c.RebalanceObjective != ObjectiveEdgeCut {
		return invalidf("RebalanceObjective = %d, must be ObjectiveSkew or ObjectiveEdgeCut", int(c.RebalanceObjective))
	}
	if c.RebalanceObjective == ObjectiveEdgeCut {
		if c.MessagePlane != PlaneLanes {
			return invalidf("RebalanceObjective = edgecut requires the lane message plane (MessagePlane = PlaneLanes)")
		}
		if c.DisableMetrics {
			return invalidf("RebalanceObjective = edgecut requires telemetry (DisableMetrics must be false)")
		}
		if c.AnomalyWindow < 0 {
			return invalidf("RebalanceObjective = edgecut requires the traffic matrix (AnomalyWindow must be >= 0)")
		}
	}
	if c.CheckpointEvery > 0 && c.CheckpointFS == nil {
		return invalidf("CheckpointEvery = %d without CheckpointFS", c.CheckpointEvery)
	}
	if c.Recovery == RecoveryLog {
		if c.MessagePlane != PlaneLanes {
			return invalidf("Recovery = log requires the lane message plane (MessagePlane = PlaneLanes)")
		}
		if c.MsgLogFS == nil {
			return invalidf("Recovery = log requires MsgLogFS")
		}
	}
	return nil
}
