package pregel

import (
	"errors"
	"testing"

	"graft/internal/dfs"
)

// ccResult runs connected components over a fresh two-component graph
// with the given extra config and returns the final labels.
func ccResult(t *testing.T, cfg Config) map[VertexID]int64 {
	t.Helper()
	g := twoComponentGraph(t)
	if _, err := NewJob(g, ccCompute, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	out := map[VertexID]int64{}
	g.Each(func(v *Vertex) { out[v.ID()] = v.Value().(*LongValue).Get() })
	return out
}

func TestCheckpointRecoveryProducesSameResult(t *testing.T) {
	want := ccResult(t, Config{NumWorkers: 3})

	fs := dfs.NewMemFS()
	failed := false
	got := ccResult(t, Config{
		NumWorkers:      3,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(superstep int) bool {
			if superstep == 1 && !failed {
				failed = true
				return true
			}
			return false
		},
	})
	if !failed {
		t.Fatal("failure was never injected")
	}
	for id, label := range want {
		if got[id] != label {
			t.Errorf("vertex %d: label %d after recovery, want %d", id, got[id], label)
		}
	}
}

func TestRecoveryCountsInStats(t *testing.T) {
	fs := dfs.NewMemFS()
	failed := 0
	g := twoComponentGraph(t)
	stats, err := NewJob(g, ccCompute, Config{
		NumWorkers:      2,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(superstep int) bool {
			if superstep == 0 && failed < 2 {
				failed++
				return true
			}
			return false
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2", stats.Recoveries)
	}
}

func TestRecoveryWithoutCheckpointFails(t *testing.T) {
	g := twoComponentGraph(t)
	_, err := NewJob(g, ccCompute, Config{
		FailureAt: func(superstep int) bool { return superstep == 0 },
	}).Run()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestTooManyRecoveries(t *testing.T) {
	fs := dfs.NewMemFS()
	g := twoComponentGraph(t)
	_, err := NewJob(g, ccCompute, Config{
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		MaxRecoveries:   2,
		FailureAt:       func(superstep int) bool { return true }, // crash every superstep
	}).Run()
	if !errors.Is(err, ErrTooManyRecoveries) {
		t.Fatalf("err = %v, want ErrTooManyRecoveries", err)
	}
}

func TestCheckpointPersistsAggregators(t *testing.T) {
	// A persistent aggregator accumulates across supersteps; recovery
	// from a checkpoint must not double-count contributions from the
	// re-executed superstep.
	fs := dfs.NewMemFS()
	var finalSum int64 = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() < 3 {
			ctx.Aggregate("sum", NewLong(1))
			return nil
		}
		if v.ID() == 0 {
			finalSum = ctx.GetAggregated("sum").(*LongValue).Get()
		}
		v.VoteToHalt()
		return nil
	})
	failed := false
	g := pathGraph(t, 2)
	job := NewJob(g, comp, Config{
		NumWorkers:      2,
		CheckpointEvery: 1,
		CheckpointFS:    fs,
		FailureAt: func(superstep int) bool {
			if superstep == 2 && !failed {
				failed = true
				return true
			}
			return false
		},
	})
	job.RegisterAggregator("sum", LongSumAggregator{}, true)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 vertices x 3 supersteps = 6, regardless of the replayed superstep.
	if finalSum != 6 {
		t.Errorf("persistent sum after recovery = %d, want 6", finalSum)
	}
}

func TestCheckpointFilesWritten(t *testing.T) {
	fs := dfs.NewMemFS()
	g := pathGraph(t, 5)
	_, err := NewJob(g, ccCompute, Config{
		CheckpointEvery:  2,
		CheckpointFS:     fs,
		CheckpointPrefix: "job42/",
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("job42/checkpoint_")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Errorf("expected at least 2 checkpoints, got %v", names)
	}
}

func TestCheckpointRoundTripWithMessagesInFlight(t *testing.T) {
	// Craft an engine mid-run, checkpoint, restore into a second
	// engine, and compare partition contents.
	g := pathGraph(t, 7)
	job := NewJob(g, ccCompute, Config{NumWorkers: 2, CheckpointFS: dfs.NewMemFS(), CheckpointEvery: 1})
	job.RegisterAggregator("a", LongSumAggregator{}, true)
	en := newEngine(job)
	en.broadcast["a"] = NewLong(42)
	en.superstep = 3
	// Seed some undelivered messages.
	en.cur.deliver(0, []msgEntry{{to: 0, msg: NewLong(9)}})
	en.cur.deliver(1, []msgEntry{{to: 1, msg: NewLong(8)}, {to: 1, msg: NewLong(7)}})
	if err := en.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}

	job2 := NewJob(pathGraph(t, 7), ccCompute, job.cfg)
	job2.RegisterAggregator("a", LongSumAggregator{}, true)
	en2 := newEngine(job2)
	en2.superstep = 3 // recovery looks for checkpoints <= current superstep
	if err := en2.recoverFromCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if en2.superstep != 3 {
		t.Errorf("restored superstep = %d, want 3", en2.superstep)
	}
	if got := en2.broadcast["a"].(*LongValue).Get(); got != 42 {
		t.Errorf("restored aggregator = %d, want 42", got)
	}
	if got := en2.cur.total(); got != 3 {
		t.Errorf("restored pending messages = %d, want 3", got)
	}
	if msgs := en2.cur.take(1, 1); len(msgs) != 2 {
		t.Errorf("restored inbox of vertex 1 = %d messages, want 2", len(msgs))
	}
	nv, ne := en2.totals()
	if nv != 7 || ne != 12 {
		t.Errorf("restored totals = %d vertices %d edges, want 7/12", nv, ne)
	}
}

func TestRestoreRejectsWrongPartitionCount(t *testing.T) {
	fs := dfs.NewMemFS()
	g := pathGraph(t, 3)
	job := NewJob(g, ccCompute, Config{NumWorkers: 2, CheckpointFS: fs, CheckpointEvery: 1})
	en := newEngine(job)
	if err := en.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	job2 := NewJob(pathGraph(t, 3), ccCompute, Config{NumWorkers: 5, CheckpointFS: fs, CheckpointEvery: 1})
	en2 := newEngine(job2)
	if err := en2.recoverFromCheckpoint(); err == nil {
		t.Fatal("expected partition-count mismatch error")
	}
}
