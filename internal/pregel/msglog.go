package pregel

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"graft/internal/segio"
)

// Sender-side outbox logging for confined (log-based) recovery, after
// Yan/Cheng/Yang's lightweight fault tolerance: every worker appends
// its per-destination outgoing message batches — and its mutation
// requests — to an append-only, checksummed log at each superstep
// barrier. On failure, only the failed partitions roll back to the
// latest checkpoint and recompute forward; the messages they would
// have received are replayed from these logs (survivors' and their
// own) instead of being recomputed by the whole cluster.
//
// The container is the segment+index format shared with the trace
// store (internal/segio): one lane per sending worker,
//
//	<prefix>msglog/worker_NN/seg_000000.seg
//	<prefix>msglog/worker_NN.idx
//
// flushed — sealed and indexed — at every barrier, so the log is
// consistent to the last completed superstep, exactly like the
// checkpoints it complements.
//
// Each frame is one record with a trailing CRC32 (IEEE, little-endian,
// over all preceding payload bytes):
//
//	messages (kind 1): kind, uvarint superstep, uvarint destination
//	  partition, uvarint entry count, then per entry the zig-zag
//	  varint vertex ID and the typed message value. One frame per
//	  flushed msgBatch, in flush order, so replay can reproduce
//	  mergeLane's deterministic combine order.
//	mutations (kind 2): kind, uvarint superstep, uvarint removal
//	  count + zig-zag varint IDs, uvarint addition count + per
//	  addition the zig-zag varint ID, a has-value byte and the typed
//	  value. One frame per worker per superstep, only when non-empty.
//
// The index entry coordinates are (kind, superstep, destination
// partition); retention GC prunes whole segments once every entry is
// older than the oldest retained checkpoint.
const (
	msgLogFrameMessages  = 1
	msgLogFrameMutations = 2

	// defaultMsgLogSegmentSize is used when Config.MsgLogSegmentSize
	// is 0.
	defaultMsgLogSegmentSize = 256 << 10
)

func (en *engine) msgLogSegmentSize() int {
	if en.cfg.MsgLogSegmentSize > 0 {
		return en.cfg.MsgLogSegmentSize
	}
	return defaultMsgLogSegmentSize
}

// msgLog is the engine's outbox log: one segment-lane writer per
// sending worker. The coordinator drives it at the barrier; the
// per-sender goroutines inside logSuperstep each own exactly one
// writer, preserving the single-writer-per-lane contract.
type msgLog struct {
	fs      FileSystem
	writers []*segio.Writer
	encs    []*Encoder
	// broken is set on the first write failure: the log can no longer
	// prove completeness, so confined recovery refuses to use it and
	// falls back to checkpoint restart.
	broken bool
}

func newMsgLog(fs FileSystem, prefix string, segSize, numWorkers int) *msgLog {
	l := &msgLog{
		fs:      fs,
		writers: make([]*segio.Writer, numWorkers),
		encs:    make([]*Encoder, numWorkers),
	}
	dir := prefix + "msglog"
	for i := range l.writers {
		l.writers[i] = segio.NewWriter(fs, dir, fmt.Sprintf("worker_%02d", i), segSize, nil)
		l.encs[i] = NewEncoder()
	}
	return l
}

// appendLogCRC seals a frame payload with its checksum: CRC32 (IEEE)
// of everything encoded so far, appended as 4 little-endian raw bytes.
func appendLogCRC(e *Encoder) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], crc32.ChecksumIEEE(e.Bytes()))
	e.PutRaw(b[:])
}

// logSuperstep persists superstep `step`'s outgoing batches and
// mutation requests, one goroutine per sending worker, and flushes
// every lane so the log is durable at the barrier. It must run after
// the worker phase and before integrateMissing merges the lanes away.
// Returns the logical messages and bytes appended; on any error the
// log is marked broken (future recoveries fall back to checkpoints)
// but the job continues.
func (l *msgLog) logSuperstep(step int, store *messageStore, results []workerResult) (int64, int64, error) {
	msgs := make([]int64, len(l.writers))
	bytes := make([]int64, len(l.writers))
	errs := make([]error, len(l.writers))
	var wg sync.WaitGroup
	for sender := range l.writers {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			w, e := l.writers[sender], l.encs[sender]
			fail := func(err error) {
				if errs[sender] == nil {
					errs[sender] = err
				}
			}
			for dest := range store.lanes[sender] {
				for _, b := range store.lanes[sender][dest].batches {
					e.Reset()
					e.PutRaw([]byte{msgLogFrameMessages})
					e.PutUvarint(uint64(step))
					e.PutUvarint(uint64(dest))
					e.PutUvarint(uint64(len(b.entries)))
					for _, ent := range b.entries {
						e.PutVarint(int64(ent.to))
						EncodeTyped(e, ent.msg)
					}
					appendLogCRC(e)
					ent := segio.Entry{Kind: msgLogFrameMessages, Step: step, ID: int64(dest)}
					if err := w.AppendRecord(e.Bytes(), ent); err != nil {
						fail(err)
					}
					msgs[sender] += int64(len(b.entries))
					bytes[sender] += int64(e.Len())
				}
			}
			res := &results[sender]
			if len(res.removals) > 0 || len(res.additions) > 0 {
				e.Reset()
				e.PutRaw([]byte{msgLogFrameMutations})
				e.PutUvarint(uint64(step))
				e.PutUvarint(uint64(len(res.removals)))
				for _, id := range res.removals {
					e.PutVarint(int64(id))
				}
				e.PutUvarint(uint64(len(res.additions)))
				for _, add := range res.additions {
					e.PutVarint(int64(add.id))
					e.PutBool(add.value != nil)
					if add.value != nil {
						EncodeTyped(e, add.value)
					}
				}
				appendLogCRC(e)
				ent := segio.Entry{Kind: msgLogFrameMutations, Step: step, ID: -1}
				if err := w.AppendRecord(e.Bytes(), ent); err != nil {
					fail(err)
				}
				bytes[sender] += int64(e.Len())
			}
			if err := w.Flush(); err != nil {
				fail(err)
			}
		}(sender)
	}
	wg.Wait()
	var totalMsgs, totalBytes int64
	var firstErr error
	for i := range l.writers {
		totalMsgs += msgs[i]
		totalBytes += bytes[i]
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		l.broken = true
	}
	return totalMsgs, totalBytes, firstErr
}

// gc prunes log segments that only hold frames older than
// oldestNeeded — the oldest retained checkpoint's superstep, below
// which no recovery can ever need to replay. Best-effort: a failed
// prune leaves extra segments behind, never a hole.
func (l *msgLog) gc(oldestNeeded int) {
	for _, w := range l.writers {
		w.Prune(func(seg segio.SegmentIndex) bool {
			for _, ent := range seg.Entries {
				if ent.Step >= oldestNeeded {
					return true
				}
			}
			return false
		})
	}
}

// loggedBatch is one decoded messages frame: the entries one sender
// flushed toward one destination partition, in send order.
type loggedBatch struct {
	dest     int
	rawBytes int64
	entries  []msgEntry
}

// loggedStep is the decoded outbox log of one superstep: per-sender
// message batches in log-append order (sender-major iteration over
// these reproduces mergeLane's deterministic combine order) plus the
// mutation requests, kept per sender so a re-logged group can replace
// exactly one sender's contribution.
type loggedStep struct {
	batches         [][]loggedBatch // [sender][i], in that sender's log order
	senderRemovals  [][]VertexID
	senderAdditions [][]vertexAddition
}

// mutations folds the per-sender mutation requests in worker order —
// the same concatenation order applyMutations sees in a live barrier.
func (st *loggedStep) mutations() (removals []VertexID, additions []vertexAddition) {
	for sender := range st.senderRemovals {
		removals = append(removals, st.senderRemovals[sender]...)
		additions = append(additions, st.senderAdditions[sender]...)
	}
	return removals, additions
}

// loadLoggedSteps reads and CRC-verifies every frame for supersteps
// lo..hi from the segment files on disk (via the in-memory sealed
// indexes — recovery runs in-process, so the writers know exactly
// which segments exist). Any unreadable or corrupt frame fails the
// whole load: a log that cannot prove completeness must not drive a
// replay.
//
// A superstep can appear in a lane more than once: after a checkpoint
// restart the rewound supersteps are re-logged. Frames of one
// execution are contiguous, so the last group per (sender, superstep)
// wins — it is the execution the engine's current state descends from.
func (l *msgLog) loadLoggedSteps(lo, hi int) (map[int]*loggedStep, error) {
	numWorkers := len(l.writers)
	steps := make(map[int]*loggedStep)
	get := func(t int) *loggedStep {
		st := steps[t]
		if st == nil {
			st = &loggedStep{
				batches:         make([][]loggedBatch, numWorkers),
				senderRemovals:  make([][]VertexID, numWorkers),
				senderAdditions: make([][]vertexAddition, numWorkers),
			}
			steps[t] = st
		}
		return st
	}
	for sender, w := range l.writers {
		prevStep := -1
		for _, seg := range w.Sealed() {
			var raw []byte
			for _, ent := range seg.Entries {
				if ent.Step != prevStep {
					// New contiguous group for this superstep: discard
					// anything an earlier (pre-restart) execution of the
					// same superstep logged in this lane.
					if ent.Step >= lo && ent.Step <= hi {
						st := get(ent.Step)
						st.batches[sender] = nil
						st.senderRemovals[sender] = nil
						st.senderAdditions[sender] = nil
					}
					prevStep = ent.Step
				}
				if ent.Step < lo || ent.Step > hi {
					continue
				}
				if raw == nil {
					var err error
					raw, err = segio.ReadFile(l.fs, w.SegmentPath(seg.Name))
					if err != nil {
						return nil, fmt.Errorf("pregel: outbox log segment %s: %w", seg.Name, err)
					}
					if err := segio.CheckSegment(raw); err != nil {
						return nil, fmt.Errorf("pregel: outbox log segment %s: %w", seg.Name, err)
					}
				}
				if ent.Offset < 0 || ent.Offset+ent.Length > len(raw) {
					return nil, fmt.Errorf("pregel: outbox log segment %s: entry out of range", seg.Name)
				}
				if err := decodeLogFrame(raw[ent.Offset:ent.Offset+ent.Length], sender, get(ent.Step)); err != nil {
					return nil, fmt.Errorf("pregel: outbox log segment %s: %w", seg.Name, err)
				}
			}
		}
	}
	return steps, nil
}

// decodeLogFrame verifies one frame's CRC and folds its content into
// the superstep's decoded state.
func decodeLogFrame(payload []byte, sender int, st *loggedStep) error {
	if len(payload) < 5 {
		return fmt.Errorf("outbox frame too short (%d bytes)", len(payload))
	}
	body := payload[:len(payload)-4]
	want := binary.LittleEndian.Uint32(payload[len(payload)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return fmt.Errorf("outbox frame checksum mismatch")
	}
	kind := body[0]
	d := NewDecoder(body[1:])
	switch kind {
	case msgLogFrameMessages:
		d.Uvarint() // superstep, already known from the index
		dest := int(d.Uvarint())
		n := int(d.Uvarint())
		b := loggedBatch{dest: dest, rawBytes: int64(len(payload)), entries: make([]msgEntry, 0, n)}
		for i := 0; i < n; i++ {
			to := VertexID(d.Varint())
			v, err := DecodeTyped(d)
			if err != nil {
				return err
			}
			b.entries = append(b.entries, msgEntry{to: to, msg: v})
		}
		if d.Err() != nil {
			return d.Err()
		}
		st.batches[sender] = append(st.batches[sender], b)
	case msgLogFrameMutations:
		d.Uvarint() // superstep
		nRem := int(d.Uvarint())
		removals := make([]VertexID, 0, nRem)
		for i := 0; i < nRem; i++ {
			removals = append(removals, VertexID(d.Varint()))
		}
		nAdd := int(d.Uvarint())
		additions := make([]vertexAddition, 0, nAdd)
		for i := 0; i < nAdd; i++ {
			id := VertexID(d.Varint())
			var val Value
			if d.Bool() {
				var err error
				val, err = DecodeTyped(d)
				if err != nil {
					return err
				}
			}
			additions = append(additions, vertexAddition{id: id, value: val})
		}
		if d.Err() != nil {
			return d.Err()
		}
		st.senderRemovals[sender] = removals
		st.senderAdditions[sender] = additions
	default:
		return fmt.Errorf("outbox frame has unknown kind %d", kind)
	}
	return nil
}
