package pregel

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// FileSystem is the storage abstraction the engine checkpoints into
// and Graft writes trace files into. The dfs package provides
// in-memory, local-disk and simulated-distributed implementations; the
// interface is structural so any of them satisfies it.
type FileSystem interface {
	// Create opens a new file for writing, truncating any existing
	// file at the path.
	Create(path string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(path string) (io.ReadCloser, error)
	// List returns the paths of all files whose names start with
	// prefix, in lexicographic order.
	List(prefix string) ([]string, error)
	// Remove deletes a file.
	Remove(path string) error
}

// checkpointMagic identifies the checkpoint format. Version 2 added
// the rebalancer's vertex-reassignment table after the aggregators.
const checkpointMagic = "GRFTCKPT2"

func (en *engine) checkpointPath(superstep int) string {
	return fmt.Sprintf("%scheckpoint_%08d", en.cfg.CheckpointPrefix, superstep)
}

// writeCheckpoint serializes the pre-superstep state: superstep
// number, merged aggregator broadcast, every partition's vertices and
// the undelivered messages feeding this superstep.
func (en *engine) writeCheckpoint() error {
	if en.cfg.CheckpointFS == nil {
		return fmt.Errorf("CheckpointEvery set but CheckpointFS is nil")
	}
	e := NewEncoder()
	e.PutString(checkpointMagic)
	e.PutUvarint(uint64(en.superstep))
	e.PutUvarint(uint64(len(en.parts)))
	e.PutUvarint(uint64(len(en.job.aggNames)))
	for _, name := range en.job.aggNames {
		e.PutString(name)
		EncodeTyped(e, en.broadcast[name])
	}
	// The placement table — locality assignments and rebalancer
	// migrations alike — in ascending vertex order: without it a
	// restored engine would route placed vertices' mail back to their
	// hash partition. The wire format is unchanged from the original
	// rebalancer-only table, so GRFTCKPT2 stays GRFTCKPT2.
	var movedIDs []VertexID
	var movedParts []int
	if en.assign != nil {
		movedIDs, movedParts = en.assign.pairs()
	}
	e.PutUvarint(uint64(len(movedIDs)))
	for i, id := range movedIDs {
		e.PutVarint(int64(id))
		e.PutUvarint(uint64(movedParts[i]))
	}
	// The ID scratch slice is shared across partitions and message
	// shards: sorting dominates, so reusing the backing array keeps the
	// encode path allocation-free once it has grown.
	var scratch []VertexID
	for _, p := range en.parts {
		scratch = scratch[:0]
		for id := range p.verts {
			scratch = append(scratch, id)
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		e.PutUvarint(uint64(len(scratch)))
		for _, id := range scratch {
			p.verts[id].encode(e)
		}
	}
	for i := range en.parts {
		scratch = en.cur.encode(i, e, scratch)
	}

	path := en.checkpointPath(en.superstep)
	w, err := en.cfg.CheckpointFS.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(e.Bytes()); err != nil {
		w.Close()
		// Never leave a truncated file as the newest checkpoint:
		// recovery prefers the highest superstep number, so a torn
		// newest file would shadow an older intact one.
		en.cfg.CheckpointFS.Remove(path)
		return err
	}
	if err := w.Close(); err != nil {
		en.cfg.CheckpointFS.Remove(path)
		return err
	}
	return nil
}

// maxRecoveries returns the effective recovery budget: the configured
// value, or the default of 3 for configurations built without NewJob.
func (en *engine) maxRecoveries() int {
	if en.cfg.MaxRecoveries > 0 {
		return en.cfg.MaxRecoveries
	}
	return 3
}

// listCheckpoints returns the superstep numbers of every checkpoint
// file under the configured prefix, newest first.
func (en *engine) listCheckpoints() ([]int, error) {
	names, err := en.cfg.CheckpointFS.List(en.cfg.CheckpointPrefix + "checkpoint_")
	if err != nil {
		return nil, err
	}
	var nums []int
	for _, name := range names {
		idx := strings.LastIndex(name, "checkpoint_")
		if idx < 0 {
			continue
		}
		n, err := strconv.Atoi(name[idx+len("checkpoint_"):])
		if err != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nums)))
	return nums, nil
}

// checkpointRetain is the effective retention-GC depth: the newest K
// checkpoints kept after each successful write. 0 means the default of
// 2; negative means unlimited (GC disabled).
func (en *engine) checkpointRetain() int {
	if en.cfg.CheckpointRetain != 0 {
		return en.cfg.CheckpointRetain
	}
	return 2
}

// gcCheckpoints deletes all but the newest K checkpoints after a
// successful write, so long chaos runs stop accumulating unbounded
// checkpoint files, then prunes the outbox log and history that no
// surviving checkpoint can ever need (recovery always rolls back to a
// retained checkpoint, so frames and snapshots older than the oldest
// one are dead weight). Deletions are counted in
// FaultStats.CheckpointsDeleted. Best-effort: listing or deletion
// failures leave extra files behind, never fewer.
func (en *engine) gcCheckpoints() {
	retain := en.checkpointRetain()
	if retain < 0 {
		return
	}
	nums, err := en.listCheckpoints()
	if err != nil || len(nums) == 0 {
		return
	}
	for _, n := range nums[min(retain, len(nums)):] {
		if en.cfg.CheckpointFS.Remove(en.checkpointPath(n)) == nil {
			en.stats.Faults.CheckpointsDeleted++
		}
	}
	oldest := nums[min(retain, len(nums))-1]
	if en.msglog != nil {
		en.msglog.gc(oldest)
		for t := range en.history {
			if t < oldest {
				delete(en.history, t)
			}
		}
	}
}

// cleanupCanceled deletes every checkpoint and outbox-log segment of a
// canceled job: the job will never resume, so its recovery artifacts
// are dead weight in the shared store. Deletions are counted in
// FaultStats.CheckpointsDeleted; failures leave files behind, never
// corrupt them. The trace is untouched — it stays readable up to the
// last completed barrier.
func (en *engine) cleanupCanceled() {
	if en.cfg.CheckpointFS != nil {
		if nums, err := en.listCheckpoints(); err == nil {
			for _, n := range nums {
				if en.cfg.CheckpointFS.Remove(en.checkpointPath(n)) == nil {
					en.stats.Faults.CheckpointsDeleted++
				}
			}
		}
	}
	if en.msglog != nil {
		// gc drops every segment strictly older than its argument; no
		// future superstep will ever be needed again.
		en.msglog.gc(en.superstep + 1)
		en.history = nil
	}
}

// recoverFromCheckpoint charges one attempt against the recovery
// budget, then restores the newest intact checkpoint (the whole-job
// restart path).
func (en *engine) recoverFromCheckpoint() error {
	if err := en.consumeRecoveryBudget(); err != nil {
		return err
	}
	return en.restoreNewestIntact()
}

// restoreNewestIntact restores the newest *intact* checkpoint at or
// before the current superstep, rewinding the engine so the run loop
// resumes from the checkpointed superstep. A checkpoint that cannot be
// read or decoded (truncated file, bad magic, lost DFS blocks) is
// skipped in favor of the next older one, and counted in
// Stats.Faults.CorruptCheckpoints; the hard error is ErrNoCheckpoint
// (nothing intact remains).
func (en *engine) restoreNewestIntact() error {
	if en.cfg.CheckpointFS == nil {
		return ErrNoCheckpoint
	}
	nums, err := en.listCheckpoints()
	if err != nil {
		return err
	}
	var candidates []int
	for _, n := range nums {
		if n <= en.superstep {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return ErrNoCheckpoint
	}
	var firstErr error
	for _, n := range candidates {
		err := en.restoreCheckpointFile(n)
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("pregel: checkpoint %d: %w", n, err)
		}
		en.stats.Faults.CorruptCheckpoints++
	}
	return fmt.Errorf("%w (newest candidate: %v)", ErrNoCheckpoint, firstErr)
}

// readCheckpointFile reads one checkpoint's raw bytes.
func (en *engine) readCheckpointFile(superstep int) ([]byte, error) {
	r, err := en.cfg.CheckpointFS.Open(en.checkpointPath(superstep))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// restoreCheckpointFile reads and restores one checkpoint. The engine
// is mutated only after the whole file decodes cleanly, so a failure
// here leaves the engine ready to try an older checkpoint.
func (en *engine) restoreCheckpointFile(superstep int) error {
	raw, err := en.readCheckpointFile(superstep)
	if err != nil {
		return err
	}
	return en.restore(raw)
}

// checkpointState is one decoded checkpoint, not yet installed into
// the engine. Full restart installs all of it; confined recovery picks
// out just the failed partitions' vertices and inbox messages (by
// *current* routing) and ignores the rest.
type checkpointState struct {
	superstep int
	broadcast map[string]Value
	assign    *assignTable
	// parts holds each checkpoint partition's vertices in encoded
	// (ascending ID) order; owners point at placeholder partitions and
	// are rewritten on install.
	parts [][]*Vertex
	// cur is the undelivered-message store feeding the checkpointed
	// superstep, sharded by checkpoint-time routing.
	cur *messageStore
}

func (en *engine) restore(raw []byte) error {
	st, err := en.decodeCheckpoint(raw)
	if err != nil {
		return err
	}
	en.install(st)
	return nil
}

// decodeCheckpoint decodes a checkpoint without touching engine state.
// Every call decodes fresh objects, so a caller can replay against one
// decode, throw it away, and decode again (nested-failure retries).
func (en *engine) decodeCheckpoint(raw []byte) (*checkpointState, error) {
	d := NewDecoder(raw)
	if magic := d.String(); magic != checkpointMagic {
		return nil, fmt.Errorf("pregel: bad checkpoint magic %q", magic)
	}
	st := &checkpointState{superstep: int(d.Uvarint())}
	numParts := int(d.Uvarint())
	if numParts != len(en.parts) {
		return nil, fmt.Errorf("pregel: checkpoint has %d partitions, engine has %d", numParts, len(en.parts))
	}
	nAggs := int(d.Uvarint())
	st.broadcast = make(map[string]Value, nAggs)
	for i := 0; i < nAggs; i++ {
		name := d.String()
		v, err := DecodeTyped(d)
		if err != nil {
			return nil, err
		}
		st.broadcast[name] = v
	}
	nMoved := int(d.Uvarint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nMoved > 0 {
		ids := make([]VertexID, nMoved)
		parts := make([]int, nMoved)
		for i := 0; i < nMoved; i++ {
			id := VertexID(d.Varint())
			p := int(d.Uvarint())
			if p < 0 || p >= numParts {
				return nil, fmt.Errorf("pregel: checkpoint reassigns vertex %d to partition %d of %d", id, p, numParts)
			}
			ids[i], parts[i] = id, p
		}
		st.assign = assignTableFromPairs(ids, parts)
	}
	st.parts = make([][]*Vertex, numParts)
	for i := range st.parts {
		n := int(d.Uvarint())
		if d.Err() != nil {
			return nil, d.Err()
		}
		vs := make([]*Vertex, 0, n)
		for j := 0; j < n; j++ {
			v, err := decodeVertex(d)
			if err != nil {
				return nil, err
			}
			vs = append(vs, v)
		}
		st.parts[i] = vs
	}
	st.cur = newMessageStore(numParts, en.cfg.Combiner, en.cfg.MessagePlane, en.pool)
	for i := 0; i < numParts; i++ {
		if err := st.cur.decodeInto(i, d); err != nil {
			return nil, err
		}
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return st, nil
}

// install replaces the engine's whole state with a decoded checkpoint:
// the full-restart path.
func (en *engine) install(st *checkpointState) {
	numParts := len(st.parts)
	parts := make([]*partition, numParts)
	for i := range parts {
		p := &partition{idx: i, verts: make(map[VertexID]*Vertex)}
		for _, v := range st.parts[i] {
			v.owner = p
			p.verts[v.id] = v
			p.ids = append(p.ids, v.id)
			p.edges += int64(len(v.edges))
		}
		parts[i] = p
	}
	en.parts = parts
	en.cur = st.cur
	en.next = newMessageStore(numParts, en.cfg.Combiner, en.cfg.MessagePlane, en.pool)
	en.broadcast = st.broadcast
	en.superstep = st.superstep
	en.assign = st.assign
	en.edgeCutDirty = true
	en.recountActive()

	// Re-point the input graph at the restored vertex objects; the
	// pre-failure ones are stale and must not be what callers read
	// after the run. Entries for vertices in no partition are kept:
	// those left the computation before the checkpoint (RemoveVertexRequest),
	// and their graph entry holds their preserved final state — often
	// the algorithm's output, e.g. matching partners in MWM.
	for _, p := range parts {
		for id, v := range p.verts {
			en.job.graph.vertices[id] = v
		}
	}

	// Per-superstep stats after the restore point are rewound so that
	// the recorded history matches the re-executed run.
	for len(en.stats.PerSuperstep) > 0 &&
		en.stats.PerSuperstep[len(en.stats.PerSuperstep)-1].Superstep >= st.superstep {
		en.stats.PerSuperstep = en.stats.PerSuperstep[:len(en.stats.PerSuperstep)-1]
	}
}
