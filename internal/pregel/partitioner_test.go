package pregel

import (
	"fmt"
	"math/rand"
	"testing"

	"graft/internal/dfs"
)

// clusteredGraph builds `clusters` dense undirected clusters of `per`
// vertices each, neighbors drawn inside the cluster, with one bridge
// edge chaining consecutive clusters — community structure the
// locality placer can exploit and hashing cannot, with a diameter that
// keeps label propagation running long enough for the rebalancer.
func clusteredGraph(t testing.TB, clusters, per int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	n := clusters * per
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	addBoth := func(a, b VertexID) {
		if a == b || g.Vertex(a).HasEdge(b) {
			return
		}
		if err := g.AddUndirectedEdge(a, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < clusters; c++ {
		lo := c * per
		for i := lo + 1; i < lo+per; i++ {
			for k := 0; k < 3; k++ {
				addBoth(VertexID(i), VertexID(lo+rng.Intn(i-lo)))
			}
		}
		if c > 0 {
			addBoth(VertexID(lo-1), VertexID(lo))
		}
	}
	g.SortAllEdges()
	return g
}

func TestHashPartitionMatchesFibonacciFormula(t *testing.T) {
	for _, k := range []int{1, 2, 7, 16} {
		for _, id := range []VertexID{0, 1, 42, 1 << 20, 1<<40 + 3} {
			h := uint64(id) * 0x9E3779B97F4A7C15
			if got, want := hashPartition(id, k), int(h%uint64(k)); got != want {
				t.Fatalf("hashPartition(%d, %d) = %d, want %d", id, k, got, want)
			}
		}
	}
}

func TestAssignTableDenseAndSparse(t *testing.T) {
	if _, ok := newAssignTable().lookup(5); ok {
		t.Fatal("empty table reported a hit")
	}
	// The covered ID range lives in the dense array.
	tbl := newDenseAssignTable(100, 139)
	for id := VertexID(100); id < 140; id++ {
		tbl.set(id, int(id)%4)
	}
	// An ID outside the range lands in the sparse overflow.
	tbl.set(1<<40, 3)
	tbl.set(1<<40, 2) // overwrite must not double-count
	if got := tbl.len(); got != 41 {
		t.Fatalf("len = %d, want 41", got)
	}
	for id := VertexID(100); id < 140; id++ {
		if p, ok := tbl.lookup(id); !ok || p != int(id)%4 {
			t.Fatalf("lookup(%d) = %d,%v; want %d,true", id, p, ok, int(id)%4)
		}
	}
	if p, ok := tbl.lookup(1 << 40); !ok || p != 2 {
		t.Fatalf("sparse lookup = %d,%v; want 2,true", p, ok)
	}
	if _, ok := tbl.lookup(99); ok {
		t.Fatal("lookup(99) hit; want miss")
	}
	if _, ok := tbl.lookup(1<<40 + 1); ok {
		t.Fatal("lookup far miss hit")
	}

	// pairs() must come back sorted and survive the checkpoint-shaped
	// roundtrip exactly.
	ids, parts := tbl.pairs()
	if len(ids) != tbl.len() {
		t.Fatalf("pairs returned %d entries, table holds %d", len(ids), tbl.len())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("pairs not sorted: ids[%d]=%d >= ids[%d]=%d", i-1, ids[i-1], i, ids[i])
		}
	}
	back := assignTableFromPairs(ids, parts)
	for i, id := range ids {
		if p, ok := back.lookup(id); !ok || p != parts[i] {
			t.Fatalf("roundtrip lookup(%d) = %d,%v; want %d,true", id, p, ok, parts[i])
		}
	}
	if _, ok := back.lookup(99); ok {
		t.Fatal("roundtrip invented an entry for 99")
	}
}

func TestAssignTableFromPairsEmpty(t *testing.T) {
	if tbl := assignTableFromPairs(nil, nil); tbl != nil {
		t.Fatalf("empty pairs built a table with %d entries", tbl.len())
	}
}

func TestLocalityPlacementDeterministicAndBalanced(t *testing.T) {
	g := clusteredGraph(t, 16, 40, 9)
	const k = 4
	a := localityPlacement(g, k)
	b := localityPlacement(g, k)
	if a == nil || b == nil {
		t.Fatal("locality placement returned nil on a clustered graph")
	}
	aIDs, aParts := a.pairs()
	bIDs, bParts := b.pairs()
	if len(aIDs) != len(bIDs) {
		t.Fatalf("placement not deterministic: %d vs %d divergent entries", len(aIDs), len(bIDs))
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] || aParts[i] != bParts[i] {
			t.Fatalf("placement not deterministic at entry %d: (%d,%d) vs (%d,%d)",
				i, aIDs[i], aParts[i], bIDs[i], bParts[i])
		}
	}

	// Balance: no partition may exceed the streaming capacity bound.
	sizes := make([]int, k)
	g.Each(func(v *Vertex) {
		p, ok := a.lookup(v.ID())
		if !ok {
			p = hashPartition(v.ID(), k)
		}
		if p < 0 || p >= k {
			t.Fatalf("vertex %d placed on partition %d of %d", v.ID(), p, k)
		}
		sizes[p]++
	})
	capacity := int(float64(g.NumVertices())/float64(k)*(1+localitySlack)) + 1
	for p, n := range sizes {
		if n > capacity {
			t.Fatalf("partition %d holds %d vertices, capacity %d", p, n, capacity)
		}
		if n == 0 {
			t.Fatalf("partition %d is empty", p)
		}
	}
}

// TestLocalityPlacementReducesEdgeCut runs the same CC job under both
// placements: results must digest identically while the locality run
// finishes with a strictly smaller edge cut.
func TestLocalityPlacementReducesEdgeCut(t *testing.T) {
	run := func(p PartitionerMode) (*Stats, string) {
		g := clusteredGraph(t, 16, 40, 9)
		stats, err := NewJob(g, ccCompute, Config{
			NumWorkers:   4,
			MessagePlane: PlaneLanes,
			Partitioner:  p,
			Combiner:     MinLongCombiner,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats, g.ValuesDigest()
	}
	hashStats, hashDigest := run(PartitionHash)
	locStats, locDigest := run(PartitionLocality)
	if hashDigest != locDigest {
		t.Fatalf("values diverged across placements:\nhash:     %s\nlocality: %s", hashDigest, locDigest)
	}
	if locStats.Partitioner != PartitionLocality || hashStats.Partitioner != PartitionHash {
		t.Fatalf("stats partitioner labels: hash=%v locality=%v", hashStats.Partitioner, locStats.Partitioner)
	}
	if len(locStats.PartitionSizes) != 4 {
		t.Fatalf("PartitionSizes = %v, want 4 entries", locStats.PartitionSizes)
	}
	if locStats.EdgeCut >= hashStats.EdgeCut {
		t.Fatalf("locality edge cut %d not below hash edge cut %d", locStats.EdgeCut, hashStats.EdgeCut)
	}
	if hashStats.LocalMessageRatio() >= locStats.LocalMessageRatio() {
		t.Fatalf("local-message ratio did not improve: hash %.3f, locality %.3f",
			hashStats.LocalMessageRatio(), locStats.LocalMessageRatio())
	}
}

// TestEdgeCutRebalancerMigrates runs label propagation on a
// hash-scattered clustered graph under the edge-cut objective: the
// rebalancer must trigger, tag its migrations with the objective and a
// positive gain, shrink the edge cut, and leave the computed values
// identical to an unrebalanced run.
func TestEdgeCutRebalancerMigrates(t *testing.T) {
	run := func(objective RebalanceObjective) (*Stats, string) {
		g := clusteredGraph(t, 24, 30, 5)
		stats, err := NewJob(g, ccCompute, Config{
			NumWorkers:         4,
			MessagePlane:       PlaneLanes,
			RebalanceObjective: objective,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats, g.ValuesDigest()
	}
	offStats, offDigest := run(ObjectiveSkew)
	onStats, onDigest := run(ObjectiveEdgeCut)
	if offStats.Rebalances != 0 {
		t.Fatalf("control run migrated: %+v", offStats)
	}
	if onStats.Rebalances == 0 || onStats.VerticesMigrated == 0 {
		t.Fatalf("edge-cut rebalancer never triggered: rebalances=%d migrated=%d",
			onStats.Rebalances, onStats.VerticesMigrated)
	}
	if onDigest != offDigest {
		t.Fatalf("values diverged once the edge-cut rebalancer migrated:\noff: %s\non:  %s", offDigest, onDigest)
	}
	var sawEvent bool
	var firstCut int64 = -1
	for _, ss := range onStats.PerSuperstep {
		if firstCut < 0 && ss.EdgeCut > 0 {
			firstCut = ss.EdgeCut
		}
		for _, m := range ss.Migrations {
			sawEvent = true
			if m.Objective != "edgecut" {
				t.Fatalf("migration objective = %q, want edgecut", m.Objective)
			}
			if m.Gain <= 0 {
				t.Fatalf("migration gain = %d, want > 0", m.Gain)
			}
		}
	}
	if !sawEvent {
		t.Fatal("stats recorded rebalances but no migration events")
	}
	if firstCut < 0 || onStats.EdgeCut >= firstCut {
		t.Fatalf("edge cut did not shrink: first %d, final %d", firstCut, onStats.EdgeCut)
	}
}

// TestCheckpointRestoresLocalityAssignments crashes a locality-placed
// job after a checkpoint: recovery must restore the assignment table
// exactly, so the run lands on the same values and the same final
// partition sizes as an uninterrupted one.
func TestCheckpointRestoresLocalityAssignments(t *testing.T) {
	run := func(crashAt int) (*Stats, string) {
		g := clusteredGraph(t, 16, 40, 9)
		cfg := Config{
			NumWorkers:      4,
			MessagePlane:    PlaneLanes,
			Partitioner:     PartitionLocality,
			CheckpointEvery: 2,
			CheckpointFS:    dfs.NewMemFS(),
			Combiner:        MinLongCombiner,
		}
		if crashAt >= 0 {
			crashed := false
			cfg.FailureAt = func(superstep int) bool {
				if superstep == crashAt && !crashed {
					crashed = true
					return true
				}
				return false
			}
		}
		stats, err := NewJob(g, ccCompute, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats, g.ValuesDigest()
	}
	cleanStats, cleanDigest := run(-1)
	crashStats, crashDigest := run(3)
	if crashStats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", crashStats.Recoveries)
	}
	if crashDigest != cleanDigest {
		t.Fatalf("values diverged after recovery:\nclean:   %s\ncrashed: %s", cleanDigest, crashDigest)
	}
	if fmt.Sprint(crashStats.PartitionSizes) != fmt.Sprint(cleanStats.PartitionSizes) {
		t.Fatalf("partition sizes diverged after recovery: clean %v, crashed %v",
			cleanStats.PartitionSizes, crashStats.PartitionSizes)
	}
}

// BenchmarkPartitionFor measures the routing hot path: the stateless
// hash, a dense assignment-table hit, a dense miss falling through to
// the hash, and a sparse-overflow hit. The placement subsystem rides on
// this lookup staying allocation-free.
func BenchmarkPartitionFor(b *testing.B) {
	const k = 8
	en := &engine{parts: make([]*partition, k)}
	ids := make([]VertexID, 4096)
	for i := range ids {
		ids[i] = VertexID(i * 3)
	}

	bench := func(name string, setup func()) {
		b.Run(name, func(b *testing.B) {
			setup()
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += en.partitionFor(ids[i&4095])
			}
			_ = sink
		})
	}

	bench("hash-only", func() { en.assign = nil })
	bench("assign-dense-hit", func() {
		en.assign = newDenseAssignTable(0, ids[len(ids)-1])
		for _, id := range ids {
			en.assign.set(id, int(id)%k)
		}
	})
	bench("assign-dense-miss", func() {
		// The dense range covers the IDs but holds no entries, so every
		// lookup misses and falls through to the hash.
		en.assign = newDenseAssignTable(0, ids[len(ids)-1])
	})
	bench("assign-sparse-hit", func() {
		// A table built without a dense range keeps everything in the
		// overflow map — the rebalancer's lazy path.
		en.assign = newAssignTable()
		for _, id := range ids {
			en.assign.set(id, int(id)%k)
		}
	})
}
