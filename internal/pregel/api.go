package pregel

import (
	"time"

	"graft/internal/anomaly"
)

// Computation is the vertex-centric program, Giraph's
// Computation/vertex.compute(). Compute is called once per active
// vertex per superstep. Inside Compute a vertex has access to exactly
// the five pieces of data the Giraph API exposes (paper §2): its ID
// and edges (via v), its incoming messages (msgs), the aggregators and
// the default global data (via ctx).
//
// Compute must be a pure function of that context: implementations
// must not read mutable state shared across vertices (beyond
// aggregators), or context reproduction cannot replay them faithfully
// (the limitation discussed in §7 of the paper). Randomized algorithms
// should derive randomness deterministically from (seed, vertex ID,
// superstep).
type Computation interface {
	Compute(ctx Context, v *Vertex, msgs []Value) error
}

// ComputeFunc adapts a function to the Computation interface.
type ComputeFunc func(ctx Context, v *Vertex, msgs []Value) error

// Compute implements Computation.
func (f ComputeFunc) Compute(ctx Context, v *Vertex, msgs []Value) error {
	return f(ctx, v, msgs)
}

// Context is the per-superstep environment passed to Compute. It is
// only valid for the duration of the call.
type Context interface {
	// Superstep returns the current superstep number, starting at 0.
	Superstep() int
	// TotalNumVertices returns the vertex count at the start of the
	// superstep.
	TotalNumVertices() int64
	// TotalNumEdges returns the directed edge count at the start of
	// the superstep.
	TotalNumEdges() int64
	// WorkerID identifies the worker executing this vertex; Graft uses
	// it to route capture records to per-worker trace files.
	WorkerID() int
	// GetAggregated returns the value of a registered aggregator as
	// broadcast at the start of this superstep. The returned Value is
	// shared; callers must not mutate it.
	GetAggregated(name string) Value
	// Aggregate folds val into the named aggregator; the merged result
	// is visible from the next superstep.
	Aggregate(name string, val Value)
	// SendMessage delivers msg to the vertex with the given ID at the
	// next superstep. The engine takes ownership of msg; do not reuse
	// or mutate it after sending.
	SendMessage(to VertexID, msg Value)
	// SendMessageToAllEdges sends a copy of msg along every outgoing
	// edge of v.
	SendMessageToAllEdges(v *Vertex, msg Value)
	// RemoveVertexRequest asks the engine to remove the vertex with
	// the given ID at the end of the superstep.
	RemoveVertexRequest(id VertexID)
	// AddVertexRequest asks the engine to create a vertex at the end
	// of the superstep. If the vertex already exists the request is
	// ignored, matching Giraph's default resolver.
	AddVertexRequest(id VertexID, value Value)
}

// MasterComputation is the optional master program, Giraph/GPS's
// master.compute(). It runs once at the beginning of every superstep,
// before any vertex computes, and typically coordinates algorithm
// phases through aggregators.
type MasterComputation interface {
	Compute(ctx MasterContext) error
}

// MasterComputeFunc adapts a function to MasterComputation.
type MasterComputeFunc func(ctx MasterContext) error

// Compute implements MasterComputation.
func (f MasterComputeFunc) Compute(ctx MasterContext) error { return f(ctx) }

// MasterContext is the environment passed to MasterComputation.
type MasterContext interface {
	// Superstep returns the superstep about to run, starting at 0.
	Superstep() int
	// TotalNumVertices returns the current vertex count.
	TotalNumVertices() int64
	// TotalNumEdges returns the current directed edge count.
	TotalNumEdges() int64
	// GetAggregated returns the aggregator value merged from the
	// previous superstep.
	GetAggregated(name string) Value
	// SetAggregated overwrites the value that will be broadcast to
	// vertices this superstep.
	SetAggregated(name string, val Value)
	// AggregatedNames returns the sorted names of all registered
	// aggregators; Graft's master instrumentation snapshots them.
	AggregatedNames() []string
	// HaltComputation terminates the job before this superstep's
	// vertex computations run.
	HaltComputation()
}

// Aggregator merges per-vertex contributions into a global value,
// Giraph's Aggregator<A>. Implementations must be commutative and
// associative.
type Aggregator interface {
	// CreateInitial returns the identity element.
	CreateInitial() Value
	// Aggregate folds b into a, returning the merged value. It may
	// mutate and return a, but must not retain b.
	Aggregate(a, b Value) Value
}

// Combiner merges messages addressed to the same vertex before
// delivery, Giraph's MessageCombiner. It must be commutative and
// associative, and may mutate and return a.
type Combiner interface {
	Combine(to VertexID, a, b Value) Value
}

// CombineFunc adapts a function to Combiner.
type CombineFunc func(to VertexID, a, b Value) Value

// Combine implements Combiner.
func (f CombineFunc) Combine(to VertexID, a, b Value) Value { return f(to, a, b) }

// JobListener observes engine progress. Graft's instrumenter listens
// to flush trace files at superstep boundaries; the GUI's live mode
// and the harness use it for progress accounting. All callbacks run on
// the engine's coordinator goroutine, never concurrently.
type JobListener interface {
	// JobStarted fires once before superstep 0.
	JobStarted(info JobInfo)
	// SuperstepStarted fires after master.compute but before any
	// vertex computes.
	SuperstepStarted(superstep int, info SuperstepInfo)
	// SuperstepFinished fires after the superstep barrier.
	SuperstepFinished(superstep int, stats SuperstepStats)
	// JobFinished fires once, after the final superstep or on error.
	JobFinished(stats *Stats, err error)
}

// JobInfo describes a starting job.
type JobInfo struct {
	NumWorkers  int
	NumVertices int64
	NumEdges    int64
}

// SuperstepInfo is the global data broadcast to vertices for one
// superstep, plus a snapshot of all aggregator values.
type SuperstepInfo struct {
	Superstep   int
	NumVertices int64
	NumEdges    int64
	// Aggregated maps every registered aggregator to the value
	// broadcast this superstep. Values are cloned; listeners own them.
	Aggregated map[string]Value
}

// SuperstepStats summarizes one finished superstep. Beyond the BSP
// accounting (active vertices, messages) it carries the telemetry the
// engine folds from its per-worker collectors at the barrier: wall
// times for the compute phase, barrier idling and trace capture, and
// the straggler/skew indicators derived from them. Telemetry fields
// are zero when Config.DisableMetrics is set.
type SuperstepStats struct {
	Superstep    int   `json:"superstep"`
	ActiveAtEnd  int64 `json:"active"`
	MessagesSent int64 `json:"sent"`
	// MessagesReceived counts messages delivered to vertices this
	// superstep (sent during the previous one, after combining).
	MessagesReceived int64 `json:"received"`
	// MessagesCombined counts messages merged away by the combiner
	// among those sent this superstep.
	MessagesCombined int64 `json:"combined"`
	// VerticesProcessed counts Compute invocations this superstep.
	VerticesProcessed int64 `json:"vertices"`
	// ComputeTime is the wall time of the worker phase: the time the
	// slowest worker took from fan-out to barrier.
	ComputeTime time.Duration `json:"compute_ns"`
	// BarrierWait is the total idle time across workers: the sum over
	// workers of (slowest worker's compute time - own compute time). It
	// is the capacity lost to stragglers this superstep.
	BarrierWait time.Duration `json:"barrier_ns"`
	// CaptureTime is the total time workers spent inside Graft's trace
	// capture instrumentation (zero for undebugged runs).
	CaptureTime time.Duration `json:"capture_ns"`
	// ComputeSkew is max/mean worker compute time (1.0 = perfectly
	// balanced; values well above 1 indicate a straggler).
	ComputeSkew float64 `json:"compute_skew"`
	// MessageSkew is max/mean messages sent per worker.
	MessageSkew float64 `json:"message_skew"`
	// Straggler is the worker with the largest compute time this
	// superstep, or -1 when telemetry is disabled.
	Straggler int `json:"straggler"`
	// FlushTime is the wall time the coordinator spent in the
	// listener's BarrierFlush — draining and committing the capture
	// pipeline at this barrier. Zero for listeners without one.
	FlushTime time.Duration `json:"flush_ns,omitempty"`
	// CaptureQueueDepth is the number of capture records still queued
	// in the trace pipeline when the barrier was reached, sampled just
	// before the flush: how far writing lagged compute.
	CaptureQueueDepth int `json:"capture_queue,omitempty"`
	// SubgraphsComputed counts ComputeSubgraph invocations this
	// superstep (zero in vertex mode).
	SubgraphsComputed int64 `json:"subgraphs,omitempty"`
	// InternalIterations counts the internal sequential iterations
	// subgraph computations reported via SubgraphContext.AddIterations —
	// the work that vertex mode would have paid one superstep each for.
	InternalIterations int64 `json:"internal_iters,omitempty"`
	// Workers holds the per-worker breakdown, indexed by worker ID.
	Workers []WorkerStepStats `json:"workers,omitempty"`
	// Traffic is the numWorkers×numWorkers message-flow matrix of this
	// superstep: Traffic[s][d] counts the messages partition s sent to
	// partition d (pre-combine, so the matrix sums to MessagesSent). It
	// is snapshotted from the lane matrix at the barrier, before the
	// lanes merge into the shards. Nil under PlaneMutex, when telemetry
	// is disabled, or when Config.AnomalyWindow is negative.
	Traffic [][]int64 `json:"traffic,omitempty"`
	// LocalMessages counts the messages of this superstep whose sender
	// and receiver partitions coincide: the diagonal of Traffic. Zero
	// whenever Traffic is nil.
	LocalMessages int64 `json:"local,omitempty"`
	// EdgeCut is the number of directed edges crossing partitions after
	// this superstep's barrier (post-migration placement). Zero when
	// telemetry is disabled.
	EdgeCut int64 `json:"edge_cut,omitempty"`
	// Anomalies holds the events the anomaly detectors emitted at this
	// superstep's barrier (empty unless detection is enabled).
	Anomalies []anomaly.Event `json:"anomalies,omitempty"`
	// Migrations records the vertex migrations the rebalancer performed
	// at this superstep's barrier (empty unless rebalancing triggered).
	Migrations []MigrationEvent `json:"migrations,omitempty"`
}

// MigrationEvent records one rebalancer migration: Vertices vertices
// (carrying Edges out-edges) moved from partition From to partition
// To. Under the skew objective, Skew is the compute/message skew that
// triggered the move; under the edge-cut objective (Objective =
// "edgecut"), Skew is the triggering lane's share of the superstep's
// traffic and Gain is the directed-edge cut removed between the pair.
type MigrationEvent struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Vertices  int64   `json:"vertices"`
	Edges     int64   `json:"edges"`
	Skew      float64 `json:"skew"`
	Objective string  `json:"objective,omitempty"`
	Gain      int64   `json:"gain,omitempty"`
}

// WorkerStepStats is the telemetry of one worker during one superstep,
// recorded by the worker itself without synchronization and folded by
// the coordinator at the barrier.
type WorkerStepStats struct {
	Worker            int           `json:"worker"`
	VerticesProcessed int64         `json:"vertices"`
	MessagesSent      int64         `json:"sent"`
	MessagesReceived  int64         `json:"received"`
	ComputeTime       time.Duration `json:"compute_ns"`
	BarrierWait       time.Duration `json:"barrier_ns"`
	CaptureTime       time.Duration `json:"capture_ns"`
	// Subgraphs and Iterations are the worker's ModeSubgraph telemetry
	// (zero in vertex mode).
	Subgraphs  int64 `json:"subgraphs,omitempty"`
	Iterations int64 `json:"internal_iters,omitempty"`
}

// BarrierFlusher is implemented by listeners that buffer trace
// records asynchronously (internal/core's Graft session). The engine
// calls BarrierFlush on the coordinator goroutine at every superstep
// barrier, after the workers have joined and before SuperstepFinished
// fires: when it returns, every record captured up to this barrier is
// durable, which is what lets crash recovery replay deterministically.
// A returned error aborts the job.
type BarrierFlusher interface {
	BarrierFlush(superstep int) error
}

// CaptureQueueReporter is implemented by listeners whose capture
// pipeline queues records. The engine samples it at the barrier, just
// before BarrierFlush, to expose queue depth in SuperstepStats.
type CaptureQueueReporter interface {
	CaptureQueueDepth() int
}

// CaptureTimeReporter is implemented by instrumented computations
// (internal/core) that account, per worker, the time spent capturing
// debugger state. The engine samples it around each worker's compute
// loop to attribute capture overhead in SuperstepStats; each worker
// only reads its own slot, so implementations need no locking beyond
// per-worker storage.
type CaptureTimeReporter interface {
	// CaptureNanos returns the cumulative nanoseconds worker w spent in
	// capture instrumentation since the job started.
	CaptureNanos(w int) int64
}
