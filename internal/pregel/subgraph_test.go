package pregel

import (
	"testing"
)

func subgraphTestPartition(t *testing.T, edges map[VertexID][]VertexID, ids ...VertexID) *partition {
	t.Helper()
	p := &partition{verts: make(map[VertexID]*Vertex, len(ids))}
	for _, id := range ids {
		v := NewDetachedVertex(id, NewLong(int64(id)))
		v.owner = p
		p.verts[id] = v
		p.ids = append(p.ids, id)
	}
	for from, tos := range edges {
		for _, to := range tos {
			p.verts[from].edges = append(p.verts[from].edges, Edge{Target: to})
		}
	}
	return p
}

func memberIDs(sg *Subgraph) []VertexID {
	ids := make([]VertexID, 0, sg.NumMembers())
	for _, v := range sg.Members() {
		ids = append(ids, v.ID())
	}
	return ids
}

func TestDiscoverSubgraphsComponents(t *testing.T) {
	// Partition holds {1,2,3} linked, {5,6} linked, {9} isolated.
	// Edges to 100/200 leave the partition and must not merge anything.
	p := subgraphTestPartition(t, map[VertexID][]VertexID{
		1: {2, 100},
		3: {2},
		5: {6},
		6: {200},
	}, 1, 2, 3, 5, 6, 9)
	p.ensureSubgraphs()
	if len(p.subs) != 3 {
		t.Fatalf("got %d subgraphs, want 3", len(p.subs))
	}
	want := [][]VertexID{{1, 2, 3}, {5, 6}, {9}}
	for i, sg := range p.subs {
		got := memberIDs(sg)
		if len(got) != len(want[i]) {
			t.Fatalf("subgraph %d members = %v, want %v", i, got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("subgraph %d members = %v, want %v", i, got, want[i])
			}
		}
		if sg.ID() != want[i][0] {
			t.Errorf("subgraph %d ID = %d, want min member %d", i, sg.ID(), want[i][0])
		}
		for _, id := range want[i] {
			if !sg.Has(id) {
				t.Errorf("subgraph %d missing member %d", i, id)
			}
		}
	}
}

func TestSubgraphsDirtyAfterMutation(t *testing.T) {
	p := subgraphTestPartition(t, map[VertexID][]VertexID{1: {2}}, 1, 2, 3)
	p.ensureSubgraphs()
	if len(p.subs) != 2 {
		t.Fatalf("got %d subgraphs, want 2", len(p.subs))
	}
	// Bridging 2-3 through the vertex API must flag a recompute.
	p.verts[2].AddEdge(Edge{Target: 3})
	if !p.subsDirty {
		t.Fatal("AddEdge did not mark subgraphs dirty")
	}
	p.ensureSubgraphs()
	if len(p.subs) != 1 || p.subs[0].NumMembers() != 3 {
		t.Fatalf("after bridge: got %d subgraphs (first has %d members), want 1 of 3",
			len(p.subs), p.subs[0].NumMembers())
	}
	// Cutting the bridge splits it again.
	p.verts[2].RemoveEdges(3)
	if !p.subsDirty {
		t.Fatal("RemoveEdges did not mark subgraphs dirty")
	}
	p.ensureSubgraphs()
	if len(p.subs) != 2 {
		t.Fatalf("after cut: got %d subgraphs, want 2", len(p.subs))
	}
}

func TestNewDetachedSubgraph(t *testing.T) {
	a := NewDetachedVertex(4, NewLong(4))
	b := NewDetachedVertex(2, NewLong(2))
	sg := NewDetachedSubgraph([]*Vertex{a, b}, map[VertexID][]Value{
		2: {NewLong(7)},
	})
	if sg.ID() != 2 {
		t.Errorf("ID = %d, want 2 (min member)", sg.ID())
	}
	if got := memberIDs(sg); got[0] != 2 || got[1] != 4 {
		t.Errorf("members = %v, want sorted [2 4]", got)
	}
	msgs := sg.MessagesTo(2)
	if len(msgs) != 1 || msgs[0].(*LongValue).Get() != 7 {
		t.Errorf("MessagesTo(2) = %v, want [7]", msgs)
	}
	if len(sg.MessagesTo(4)) != 0 {
		t.Errorf("MessagesTo(4) = %v, want empty", sg.MessagesTo(4))
	}
	if i, ok := sg.Index(4); !ok || i != 1 {
		t.Errorf("Index(4) = (%d, %v), want (1, true)", i, ok)
	}
	if _, ok := sg.Index(99); ok {
		t.Error("Index(99) found a non-member")
	}
}

func TestSubgraphModeConfigValidation(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NewLong(1))
	// Subgraph mode without a subgraph computation is a config error.
	j := NewJob(g, ComputeFunc(func(Context, *Vertex, []Value) error { return nil }),
		Config{NumWorkers: 1, ComputeMode: ModeSubgraph})
	if _, err := j.Run(); err == nil {
		t.Fatal("vertex job in subgraph mode: want error")
	}
	// And an out-of-range mode is rejected by Validate.
	j2 := NewSubgraphJob(g.Clone(), SubgraphFunc(func(SubgraphContext, *Subgraph) error { return nil }),
		Config{NumWorkers: 1})
	j2.cfg.ComputeMode = ComputeMode(9)
	if _, err := j2.Run(); err == nil {
		t.Fatal("ComputeMode(9): want validation error")
	}
}

func TestSubgraphEngineSmoke(t *testing.T) {
	// Chain 0-1-2-3-4-5 split over workers: subgraph WCC-style min
	// propagation must converge with every value = 0.
	g := NewGraph()
	for i := 0; i < 6; i++ {
		g.AddVertex(VertexID(i), NewLong(int64(i)))
	}
	for i := 0; i < 5; i++ {
		if err := g.AddUndirectedEdge(VertexID(i), VertexID(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	comp := SubgraphFunc(func(ctx SubgraphContext, sg *Subgraph) error {
		min := int64(sg.ID())
		for _, v := range sg.Members() {
			if x := v.Value().(*LongValue).Get(); x < min {
				min = x
			}
		}
		changed := ctx.Superstep() == 0
		for i := range sg.Members() {
			for _, m := range sg.Messages(i) {
				if x := m.(*LongValue).Get(); x < min {
					min = x
					changed = true
				}
			}
		}
		for _, v := range sg.Members() {
			if v.Value().(*LongValue).Get() != min {
				v.SetValue(NewLong(min))
				changed = true
			}
		}
		if changed {
			for _, v := range sg.Members() {
				for _, e := range v.Edges() {
					if !sg.Has(e.Target) {
						ctx.SendMessage(v.ID(), e.Target, NewLong(min))
					}
				}
			}
		}
		ctx.AddIterations(1)
		ctx.VoteToHalt()
		return nil
	})
	stats, err := NewSubgraphJob(g, comp, Config{NumWorkers: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	g.Each(func(v *Vertex) {
		if got := v.Value().(*LongValue).Get(); got != 0 {
			t.Errorf("vertex %d = %d, want 0", v.ID(), got)
		}
	})
	var subs int64
	for _, ss := range stats.PerSuperstep {
		subs += ss.SubgraphsComputed
	}
	if subs == 0 {
		t.Error("no SubgraphsComputed telemetry recorded")
	}
}
