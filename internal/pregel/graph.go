package pregel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Graph is an input graph under construction. It is not safe for
// concurrent mutation; build it single-threaded (or per-goroutine and
// Merge), then hand it to a Job, which partitions it across workers.
type Graph struct {
	vertices map[VertexID]*Vertex
	numEdges int64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{vertices: make(map[VertexID]*Vertex)}
}

// AddVertex inserts a vertex with the given value, replacing any
// existing vertex with the same ID (and its edges).
func (g *Graph) AddVertex(id VertexID, value Value) *Vertex {
	if old, ok := g.vertices[id]; ok {
		g.numEdges -= int64(len(old.edges))
	}
	v := &Vertex{id: id, value: value}
	g.vertices[id] = v
	return v
}

// EnsureVertex returns the vertex with the given ID, creating it with
// value defaultValue() if absent.
func (g *Graph) EnsureVertex(id VertexID, defaultValue func() Value) *Vertex {
	if v, ok := g.vertices[id]; ok {
		return v
	}
	var val Value
	if defaultValue != nil {
		val = defaultValue()
	}
	return g.AddVertex(id, val)
}

// Vertex returns the vertex with the given ID, or nil.
func (g *Graph) Vertex(id VertexID) *Vertex {
	return g.vertices[id]
}

// AddEdge adds a directed edge. Both endpoints must already exist;
// use EnsureVertex when loading edge lists.
func (g *Graph) AddEdge(from, to VertexID, value Value) error {
	v, ok := g.vertices[from]
	if !ok {
		return fmt.Errorf("pregel: AddEdge: no vertex %d", from)
	}
	if _, ok := g.vertices[to]; !ok {
		return fmt.Errorf("pregel: AddEdge: no vertex %d", to)
	}
	v.AddEdge(Edge{Target: to, Value: value})
	g.numEdges++
	return nil
}

// AddUndirectedEdge adds symmetric directed edges in both directions,
// cloning the value for the reverse edge.
func (g *Graph) AddUndirectedEdge(a, b VertexID, value Value) error {
	if err := g.AddEdge(a, b, value); err != nil {
		return err
	}
	return g.AddEdge(b, a, CloneValue(value))
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int64 { return int64(len(g.vertices)) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int64 {
	// Recount lazily: edges may have been added through Vertex.AddEdge
	// by callers holding a *Vertex (detached vertices do not update
	// graph counters).
	var n int64
	for _, v := range g.vertices {
		n += int64(len(v.edges))
	}
	g.numEdges = n
	return n
}

// VertexIDs returns all IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	ids := make([]VertexID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Each calls fn for every vertex in ascending ID order.
func (g *Graph) Each(fn func(*Vertex)) {
	for _, id := range g.VertexIDs() {
		fn(g.vertices[id])
	}
}

// Clone deep-copies the graph, so one generated dataset can feed many
// runs (algorithms mutate values and, for matching, topology).
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for id, v := range g.vertices {
		c.vertices[id] = v.CloneDetached()
	}
	c.numEdges = g.NumEdges()
	return c
}

// ValuesDigest returns a hex SHA-256 over the graph's (vertex ID,
// encoded value) pairs in ascending ID order. Two runs that leave
// every vertex with the same final value — regardless of how many
// supersteps, which compute mode, or which partition layout got them
// there — produce the same digest, which is what anchors
// vertex-vs-subgraph equivalence checks.
func (g *Graph) ValuesDigest() string {
	h := sha256.New()
	e := NewEncoder()
	for _, id := range g.VertexIDs() {
		e.Reset()
		e.PutVarint(int64(id))
		EncodeTyped(e, g.vertices[id].value)
		h.Write(e.Bytes())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SortAllEdges orders every adjacency list by target ID so that runs
// are deterministic regardless of construction order.
func (g *Graph) SortAllEdges() {
	for _, v := range g.vertices {
		v.SortEdges()
	}
}
