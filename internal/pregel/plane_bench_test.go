package pregel

import (
	"fmt"
	"sync"
	"testing"
)

// benchPlaneRoundTrip measures the full SendMessage → flush → merge →
// take round trip of one superstep's worth of messages through the
// selected message plane, with concurrent senders like the real worker
// phase. It is the microscope behind graft-bench -engine: run with
//
//	go test ./internal/pregel -run '^$' -bench BenchmarkMessagePlane
func benchPlaneRoundTrip(b *testing.B, mode PlaneMode, combiner Combiner) {
	const (
		workers  = 4
		nVerts   = 1024
		perWorkr = 16384
	)
	g := NewGraph()
	for i := 0; i < nVerts; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	noop := ComputeFunc(func(Context, *Vertex, []Value) error { return nil })
	job := NewJob(g, noop, Config{NumWorkers: workers, Combiner: combiner, MessagePlane: mode})
	en := newEngine(job)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := en.newWorkerCtx(w, nVerts, 0)
				for k := 0; k < perWorkr; k++ {
					// Skewed fan-in: a quarter of the traffic hits one hot
					// vertex, the rest spreads round-robin — the mix where
					// sender-side combining and lock-freedom both matter.
					to := VertexID((w*perWorkr + k*7) % nVerts)
					if k%4 == 0 {
						to = 0
					}
					ctx.SendMessage(to, NewLong(int64(k)))
				}
				ctx.flushAll()
			}(w)
		}
		wg.Wait()
		// Post-barrier phase exactly as the engine runs it: each shard's
		// owning worker merges its lane column and drains its inboxes in
		// its own goroutine.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				en.next.mergeLane(w)
				for id := 0; id < nVerts; id++ {
					if en.partitionFor(VertexID(id)) == w {
						en.next.take(w, VertexID(id))
					}
				}
			}(w)
		}
		wg.Wait()
		en.next = en.newStore()
	}
}

func BenchmarkMessagePlane(b *testing.B) {
	for _, mode := range []PlaneMode{PlaneLanes, PlaneMutex} {
		for _, tc := range []struct {
			name     string
			combiner Combiner
		}{
			{"combiner", SumLongCombiner},
			{"plain", nil},
		} {
			b.Run(fmt.Sprintf("%v/%s", mode, tc.name), func(b *testing.B) {
				benchPlaneRoundTrip(b, mode, tc.combiner)
			})
		}
	}
}

// BenchmarkCheckpointEncode measures the message-store encode path the
// checkpoint writer runs per shard, which now reuses one scratch ID
// slice across shards instead of allocating and sorting a fresh one
// each time.
func BenchmarkCheckpointEncode(b *testing.B) {
	const (
		workers = 4
		nVerts  = 4096
	)
	g := NewGraph()
	for i := 0; i < nVerts; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	noop := ComputeFunc(func(Context, *Vertex, []Value) error { return nil })
	job := NewJob(g, noop, Config{NumWorkers: workers, MessagePlane: PlaneMutex})
	en := newEngine(job)
	for id := 0; id < nVerts; id++ {
		sh := en.partitionFor(VertexID(id))
		en.cur.deliver(sh, []msgEntry{
			{to: VertexID(id), msg: NewLong(int64(id))},
			{to: VertexID(id), msg: NewLong(int64(id) + 1)},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var scratch []VertexID
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		for s := 0; s < workers; s++ {
			scratch = en.cur.encode(s, e, scratch)
		}
	}
}
