package pregel

import "fmt"

// msgFlushBatch is the default for Config.MsgFlushBatch: how many
// outgoing messages a worker buffers per destination partition before
// handing them to the message plane (a lane append in PlaneLanes mode,
// a shard-lock acquisition in PlaneMutex mode).
const msgFlushBatch = 1024

// workerCtx implements Context for one worker during one superstep.
type workerCtx struct {
	en          *engine
	worker      int
	superstep   int
	numVertices int64
	numEdges    int64
	flushBatch  int

	// out is the PlaneMutex send buffer, one slice per destination
	// partition.
	out [][]msgEntry
	// lane is the PlaneLanes send buffer: the open pooled batch per
	// destination partition, handed to the lane matrix when full.
	lane []*msgBatch
	// laneIdx maps destination vertex to its entry index in the open
	// batch, for sender-side combining. Non-nil only in PlaneLanes mode
	// with a combiner installed.
	laneIdx []map[VertexID]int

	sent       int64
	aggPartial map[string]Value
	removals   []VertexID
	additions  []vertexAddition

	// replay marks a confined-recovery re-execution: computes run to
	// rebuild vertex state (and re-emit instrumentation captures), but
	// their outputs — sends, aggregation, mutation requests — already
	// happened and are replayed from the outbox logs, so the context
	// swallows them. bcast, when non-nil, overrides the engine's live
	// aggregate broadcast with the replayed superstep's snapshot.
	replay bool
	bcast  map[string]Value
}

func (c *workerCtx) Superstep() int          { return c.superstep }
func (c *workerCtx) TotalNumVertices() int64 { return c.numVertices }
func (c *workerCtx) TotalNumEdges() int64    { return c.numEdges }
func (c *workerCtx) WorkerID() int           { return c.worker }

func (c *workerCtx) GetAggregated(name string) Value {
	bc := c.en.broadcast
	if c.bcast != nil {
		bc = c.bcast
	}
	v, ok := bc[name]
	if !ok {
		panic(fmt.Sprintf("pregel: GetAggregated: unregistered aggregator %q", name))
	}
	return v
}

func (c *workerCtx) Aggregate(name string, val Value) {
	entry, ok := c.en.job.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: Aggregate: unregistered aggregator %q", name))
	}
	if cur, ok := c.aggPartial[name]; ok {
		c.aggPartial[name] = entry.agg.Aggregate(cur, val)
	} else {
		c.aggPartial[name] = entry.agg.Aggregate(entry.agg.CreateInitial(), val)
	}
}

func (c *workerCtx) SendMessage(to VertexID, msg Value) {
	if c.replay {
		// Confined replay: the original send is in the outbox log and is
		// delivered from there; re-sending would double it.
		return
	}
	c.sent++
	p := c.en.partitionFor(to)
	if c.lane != nil {
		c.laneSend(p, to, msg)
		return
	}
	c.out[p] = append(c.out[p], msgEntry{to: to, msg: msg})
	if len(c.out[p]) >= c.flushBatch {
		c.en.next.deliver(p, c.out[p])
		c.out[p] = c.out[p][:0]
	}
}

// laneSend buffers one message on the PlaneLanes path. With a combiner
// installed it combines at the sender: messages to a destination
// already in the open batch merge in place, so the lane (and the
// merge at the barrier) sees pre-combined traffic.
//
// Sender-side combining is adaptive per destination partition. The
// index lookup costs one map operation per send while the savings are
// one merge-time map operation per hit, so the index only pays for
// itself on concentrated fan-in (hub-heavy graphs, where nearly every
// send collapses in place); on spread-out traffic it is pure overhead
// on top of the merge-time combine that happens anyway. Each flushed
// batch votes: a batch whose sends mostly missed the index turns it
// off for this partition for the rest of the superstep.
func (c *workerCtx) laneSend(p int, to VertexID, msg Value) {
	b := c.lane[p]
	if b == nil {
		b = c.en.pool.get()
		c.lane[p] = b
	}
	if c.laneIdx != nil && c.laneIdx[p] != nil {
		if i, ok := c.laneIdx[p][to]; ok {
			b.entries[i].msg = c.en.cfg.Combiner.Combine(to, b.entries[i].msg, msg)
			b.n++
			b.combined++
			return
		}
		c.laneIdx[p][to] = len(b.entries)
	}
	b.entries = append(b.entries, msgEntry{to: to, msg: msg})
	b.n++
	if len(b.entries) >= c.flushBatch {
		if c.laneIdx != nil && c.laneIdx[p] != nil {
			if b.combined*4 >= b.n*3 {
				clear(c.laneIdx[p])
			} else {
				c.laneIdx[p] = nil
				c.en.laneCombineOff[c.worker][p] = true
			}
		}
		c.en.next.laneAppend(c.worker, p, b)
		c.lane[p] = nil
	}
}

func (c *workerCtx) SendMessageToAllEdges(v *Vertex, msg Value) {
	// Each recipient normally gets its own Value: a combiner is allowed
	// to mutate stored messages, so sharing one object across inboxes
	// would corrupt them. Values that declare themselves immutable can
	// skip the per-edge clone when no combiner is installed — nothing
	// will ever write to the shared object.
	if c.en.cfg.Combiner == nil {
		if _, immutable := msg.(ImmutableValue); immutable {
			for i := range v.edges {
				c.SendMessage(v.edges[i].Target, msg)
			}
			return
		}
	}
	// The original is sent on the LAST edge, clones on the ones before:
	// once a Value is handed to SendMessage the plane owns it, and with
	// sender-side combining a combiner may mutate it in place while the
	// loop is still running (duplicate parallel edges to one target).
	// Cloning msg after handing it off would copy that mutation into
	// later recipients.
	last := len(v.edges) - 1
	for i := range v.edges {
		m := msg
		if i < last {
			m = msg.Clone()
		}
		c.SendMessage(v.edges[i].Target, m)
	}
}

func (c *workerCtx) RemoveVertexRequest(id VertexID) {
	if c.replay {
		return // replayed from the mutation log
	}
	c.removals = append(c.removals, id)
}

func (c *workerCtx) AddVertexRequest(id VertexID, value Value) {
	if c.replay {
		return // replayed from the mutation log
	}
	c.additions = append(c.additions, vertexAddition{id: id, value: value})
}

func (c *workerCtx) flushAll() {
	if c.lane != nil {
		for p, b := range c.lane {
			if b == nil {
				continue
			}
			if len(b.entries) > 0 {
				c.en.next.laneAppend(c.worker, p, b)
			} else {
				c.en.pool.put(b)
			}
			c.lane[p] = nil
		}
		return
	}
	for p := range c.out {
		if len(c.out[p]) > 0 {
			c.en.next.deliver(p, c.out[p])
			c.out[p] = nil
		}
	}
}

// masterCtx implements MasterContext for one superstep.
type masterCtx struct {
	en          *engine
	numVertices int64
	numEdges    int64
	halted      bool
}

func (m *masterCtx) Superstep() int          { return m.en.superstep }
func (m *masterCtx) TotalNumVertices() int64 { return m.numVertices }
func (m *masterCtx) TotalNumEdges() int64    { return m.numEdges }
func (m *masterCtx) HaltComputation()        { m.halted = true }

func (m *masterCtx) GetAggregated(name string) Value {
	v, ok := m.en.broadcast[name]
	if !ok {
		panic(fmt.Sprintf("pregel: GetAggregated: unregistered aggregator %q", name))
	}
	return v
}

func (m *masterCtx) AggregatedNames() []string { return m.en.job.aggNames }

func (m *masterCtx) SetAggregated(name string, val Value) {
	if _, ok := m.en.job.aggs[name]; !ok {
		panic(fmt.Sprintf("pregel: SetAggregated: unregistered aggregator %q", name))
	}
	m.en.broadcast[name] = val
}
