package pregel

import "fmt"

// msgFlushBatch is how many outgoing messages a worker buffers per
// destination partition before taking the destination shard's lock.
const msgFlushBatch = 1024

// workerCtx implements Context for one worker during one superstep.
type workerCtx struct {
	en          *engine
	worker      int
	superstep   int
	numVertices int64
	numEdges    int64

	out        [][]msgEntry
	sent       int64
	aggPartial map[string]Value
	removals   []VertexID
	additions  []vertexAddition
}

func (c *workerCtx) Superstep() int          { return c.superstep }
func (c *workerCtx) TotalNumVertices() int64 { return c.numVertices }
func (c *workerCtx) TotalNumEdges() int64    { return c.numEdges }
func (c *workerCtx) WorkerID() int           { return c.worker }

func (c *workerCtx) GetAggregated(name string) Value {
	v, ok := c.en.broadcast[name]
	if !ok {
		panic(fmt.Sprintf("pregel: GetAggregated: unregistered aggregator %q", name))
	}
	return v
}

func (c *workerCtx) Aggregate(name string, val Value) {
	entry, ok := c.en.job.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: Aggregate: unregistered aggregator %q", name))
	}
	if cur, ok := c.aggPartial[name]; ok {
		c.aggPartial[name] = entry.agg.Aggregate(cur, val)
	} else {
		c.aggPartial[name] = entry.agg.Aggregate(entry.agg.CreateInitial(), val)
	}
}

func (c *workerCtx) SendMessage(to VertexID, msg Value) {
	p := c.en.partitionFor(to)
	c.out[p] = append(c.out[p], msgEntry{to: to, msg: msg})
	c.sent++
	if len(c.out[p]) >= msgFlushBatch {
		c.en.next.deliver(p, c.out[p])
		c.out[p] = c.out[p][:0]
	}
}

func (c *workerCtx) SendMessageToAllEdges(v *Vertex, msg Value) {
	// Each recipient must get its own Value: a combiner is allowed to
	// mutate stored messages, so sharing one object across inboxes
	// would corrupt them.
	for i := range v.edges {
		m := msg
		if i > 0 {
			m = msg.Clone()
		}
		c.SendMessage(v.edges[i].Target, m)
	}
}

func (c *workerCtx) RemoveVertexRequest(id VertexID) {
	c.removals = append(c.removals, id)
}

func (c *workerCtx) AddVertexRequest(id VertexID, value Value) {
	c.additions = append(c.additions, vertexAddition{id: id, value: value})
}

func (c *workerCtx) flushAll() {
	for p := range c.out {
		if len(c.out[p]) > 0 {
			c.en.next.deliver(p, c.out[p])
			c.out[p] = nil
		}
	}
}

// masterCtx implements MasterContext for one superstep.
type masterCtx struct {
	en          *engine
	numVertices int64
	numEdges    int64
	halted      bool
}

func (m *masterCtx) Superstep() int          { return m.en.superstep }
func (m *masterCtx) TotalNumVertices() int64 { return m.numVertices }
func (m *masterCtx) TotalNumEdges() int64    { return m.numEdges }
func (m *masterCtx) HaltComputation()        { m.halted = true }

func (m *masterCtx) GetAggregated(name string) Value {
	v, ok := m.en.broadcast[name]
	if !ok {
		panic(fmt.Sprintf("pregel: GetAggregated: unregistered aggregator %q", name))
	}
	return v
}

func (m *masterCtx) AggregatedNames() []string { return m.en.job.aggNames }

func (m *masterCtx) SetAggregated(name string, val Value) {
	if _, ok := m.en.job.aggs[name]; !ok {
		panic(fmt.Sprintf("pregel: SetAggregated: unregistered aggregator %q", name))
	}
	m.en.broadcast[name] = val
}
