package pregel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder is an append-only binary encoder used for values, messages,
// trace records and checkpoints. It mirrors the role of Hadoop's
// DataOutput in Giraph's Writable framework.
//
// Integers are varint-encoded (zig-zag for signed), floats are fixed
// 8-byte little-endian, and byte slices and strings are length-prefixed.
type Encoder struct {
	b []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer. The slice is owned by the encoder
// and is invalidated by further Put calls or Reset.
func (e *Encoder) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.b) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.b = e.b[:0] }

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(x uint64) {
	e.b = binary.AppendUvarint(e.b, x)
}

// PutVarint appends a zig-zag signed varint.
func (e *Encoder) PutVarint(x int64) {
	e.b = binary.AppendVarint(e.b, x)
}

// PutBool appends one byte: 1 for true, 0 for false.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// PutFloat64 appends a fixed 8-byte IEEE-754 value.
func (e *Encoder) PutFloat64(f float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(p []byte) {
	e.PutUvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// PutRaw appends bytes verbatim, without a length prefix.
func (e *Encoder) PutRaw(p []byte) {
	e.b = append(e.b, p...)
}

// ErrCorrupt is returned when a decoder runs out of input or reads a
// malformed varint or length prefix.
var ErrCorrupt = errors.New("pregel: corrupt encoding")

// Decoder reads values produced by Encoder. Errors are sticky: after
// the first failure every read returns the zero value and Err reports
// the failure, so call sites can decode a whole record and check once.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(context string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, context, d.off)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return x
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return x
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("bool")
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

// Float64 reads a fixed 8-byte IEEE-754 value.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases
// the decoder's input.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("bytes length")
		return nil
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }
