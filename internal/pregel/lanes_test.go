package pregel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"graft/internal/dfs"
)

// runCCBothPlanes runs connected components over clones of the same
// random graph in both message-plane modes and returns the two stats.
func runCCBothPlanes(t *testing.T, seed int64, combiner Combiner, workers int) (lanes, mutex *Stats) {
	t.Helper()
	build := func() *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		const n = 300
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), NewLong(int64(i)))
		}
		for i := 0; i < n; i++ {
			for _, j := range rng.Perm(n)[:3] {
				if i != j {
					g.AddEdge(VertexID(i), VertexID(j), nil)
					g.AddEdge(VertexID(j), VertexID(i), nil)
				}
			}
		}
		return g
	}
	run := func(mode PlaneMode) (*Stats, map[VertexID]int64) {
		g := build()
		stats, err := NewJob(g, ccCompute, Config{
			NumWorkers: workers, Combiner: combiner, MessagePlane: mode,
		}).Run()
		if err != nil {
			t.Fatalf("plane %v: %v", mode, err)
		}
		labels := map[VertexID]int64{}
		for _, id := range g.VertexIDs() {
			labels[id] = g.Vertex(id).Value().(*LongValue).Get()
		}
		return stats, labels
	}
	lanes, laneLabels := run(PlaneLanes)
	mutex, mutexLabels := run(PlaneMutex)
	for id, v := range laneLabels {
		if mutexLabels[id] != v {
			t.Fatalf("vertex %d: lanes label %d, mutex label %d", id, v, mutexLabels[id])
		}
	}
	return lanes, mutex
}

func TestLanePlaneMatchesMutexPlane(t *testing.T) {
	for _, tc := range []struct {
		name     string
		combiner Combiner
	}{
		{"combiner", MinLongCombiner},
		{"plain", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lanes, mutex := runCCBothPlanes(t, 7, tc.combiner, 4)
			if lanes.TotalMessages != mutex.TotalMessages {
				t.Errorf("TotalMessages: lanes %d, mutex %d", lanes.TotalMessages, mutex.TotalMessages)
			}
			if lanes.Supersteps != mutex.Supersteps {
				t.Errorf("Supersteps: lanes %d, mutex %d", lanes.Supersteps, mutex.Supersteps)
			}
		})
	}
}

// TestLaneDeterministicInboxOrder checks the lane plane's ordering
// guarantee: inboxes are merged in sender-worker order, then flush
// order, so without a combiner a vertex sees the exact same message
// sequence on every run — unlike the mutex plane, where the order
// depends on lock acquisition.
func TestLaneDeterministicInboxOrder(t *testing.T) {
	run := func() map[VertexID][]int64 {
		g := NewGraph()
		const senders = 40
		g.AddVertex(0, NewLong(0))
		for i := 1; i <= senders; i++ {
			g.AddVertex(VertexID(i), NewLong(0))
		}
		var mu sync.Mutex
		order := map[VertexID][]int64{}
		comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
			if ctx.Superstep() == 0 && v.ID() != 0 {
				for k := 0; k < 5; k++ {
					ctx.SendMessage(0, NewLong(int64(v.ID())*100+int64(k)))
				}
			}
			if ctx.Superstep() == 1 && v.ID() == 0 {
				var seq []int64
				for _, m := range msgs {
					seq = append(seq, m.(*LongValue).Get())
				}
				mu.Lock()
				order[v.ID()] = seq
				mu.Unlock()
			}
			v.VoteToHalt()
			return nil
		})
		if _, err := NewJob(g, comp, Config{NumWorkers: 8}).Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("run %d: inbox order diverged:\n%v\nvs\n%v", i, again, first)
		}
	}
}

// TestSenderSideCombining checks that with a combiner installed the
// lane plane merges at the sender: a worker fanning many messages into
// one destination should flush far fewer entries than messages, and
// the combined result must still be exact.
func TestSenderSideCombining(t *testing.T) {
	const leaves = 500
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= leaves; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() != 0 {
			// Three messages per leaf, all to the hub.
			for k := 0; k < 3; k++ {
				ctx.SendMessage(0, NewLong(1))
			}
		}
		if ctx.Superstep() == 1 && v.ID() == 0 {
			var sum int64
			for _, m := range msgs {
				sum += m.(*LongValue).Get()
			}
			if sum != 3*leaves {
				t.Errorf("combined sum = %d, want %d", sum, 3*leaves)
			}
		}
		v.VoteToHalt()
		return nil
	})
	stats, err := NewJob(g, comp, Config{NumWorkers: 4, Combiner: SumLongCombiner}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ss := stats.PerSuperstep[0]
	if ss.MessagesSent != 3*leaves {
		t.Errorf("sent = %d, want %d", ss.MessagesSent, 3*leaves)
	}
	// Every message beyond one per (worker, destination) pair must have
	// been merged away before delivery; the hub receives exactly one
	// value per sending worker at most (receiver merge collapses those
	// too, so received is 1).
	if ss.MessagesCombined != 3*leaves-1 {
		t.Errorf("combined = %d, want %d", ss.MessagesCombined, 3*leaves-1)
	}
	if got := stats.PerSuperstep[1].MessagesReceived; got != 1 {
		t.Errorf("received = %d, want 1", got)
	}
}

// TestDuplicateEdgesMutatingCombiner is the regression test for a
// sender-side combining aliasing bug: SendMessageToAllEdges used to
// hand the original Value to the first edge and clone it for the rest,
// but with duplicate parallel edges to one target the combiner mutates
// the stored original in place between sends, so later clones copied
// the partially-combined value and the fold doubled instead of summed.
func TestDuplicateEdgesMutatingCombiner(t *testing.T) {
	const dup = 5
	for _, mode := range []PlaneMode{PlaneLanes, PlaneMutex} {
		t.Run(fmt.Sprintf("%v", mode), func(t *testing.T) {
			g := NewGraph()
			g.AddVertex(0, NewDouble(0))
			g.AddVertex(1, NewDouble(0))
			for i := 0; i < dup; i++ {
				g.AddEdge(1, 0, nil) // duplicate parallel edges
			}
			comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
				if ctx.Superstep() == 0 && v.ID() == 1 {
					ctx.SendMessageToAllEdges(v, NewDouble(0.25))
				}
				if ctx.Superstep() == 1 && v.ID() == 0 {
					var sum float64
					for _, m := range msgs {
						sum += m.(*DoubleValue).Get()
					}
					if sum != dup*0.25 {
						t.Errorf("delivered sum = %v, want %v", sum, dup*0.25)
					}
				}
				v.VoteToHalt()
				return nil
			})
			cfg := Config{NumWorkers: 2, Combiner: SumDoubleCombiner, MessagePlane: mode}
			if _, err := NewJob(g, comp, cfg).Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMsgFlushBatchConfigurable forces a tiny flush batch through the
// Config knob in both plane modes and checks nothing is lost.
func TestMsgFlushBatchConfigurable(t *testing.T) {
	for _, mode := range []PlaneMode{PlaneLanes, PlaneMutex} {
		for _, batch := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v-batch%d", mode, batch), func(t *testing.T) {
				const fanout = 200
				g := NewGraph()
				g.AddVertex(0, NewLong(0))
				for i := 1; i <= fanout; i++ {
					g.AddVertex(VertexID(i), NewLong(0))
				}
				var delivered atomic.Int64
				comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
					if ctx.Superstep() == 0 && v.ID() == 0 {
						for i := 1; i <= fanout; i++ {
							ctx.SendMessage(VertexID(i), NewLong(int64(i)))
						}
					}
					if ctx.Superstep() == 1 && len(msgs) > 0 {
						if got := msgs[0].(*LongValue).Get(); got != int64(v.ID()) {
							t.Errorf("vertex %d got %d", v.ID(), got)
						}
						delivered.Add(int64(len(msgs)))
					}
					v.VoteToHalt()
					return nil
				})
				stats, err := NewJob(g, comp, Config{NumWorkers: 4, MessagePlane: mode, MsgFlushBatch: batch}).Run()
				if err != nil {
					t.Fatal(err)
				}
				if delivered.Load() != fanout {
					t.Errorf("delivered %d of %d messages", delivered.Load(), fanout)
				}
				if stats.TotalMessages != fanout {
					t.Errorf("TotalMessages = %d", stats.TotalMessages)
				}
			})
		}
	}
}

// TestMutableValueInboxIsolation is the regression test for the
// SendMessageToAllEdges fast path: mutable values must still be cloned
// per recipient, so one receiver mutating its message cannot corrupt
// another's inbox.
func TestMutableValueInboxIsolation(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	g.AddVertex(1, NewLong(0))
	g.AddVertex(2, NewLong(0))
	g.AddEdge(0, 1, nil)
	g.AddEdge(0, 2, nil)
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() == 0 {
			ctx.SendMessageToAllEdges(v, NewLong(7))
		}
		if ctx.Superstep() == 1 && v.ID() != 0 {
			if len(msgs) != 1 {
				t.Errorf("vertex %d got %d messages, want 1", v.ID(), len(msgs))
			} else {
				if got := msgs[0].(*LongValue).Get(); got != 7 {
					t.Errorf("vertex %d read %d, want 7 (inbox not isolated?)", v.ID(), got)
				}
				// Scribble over the received value: with per-recipient
				// clones this must not be visible anywhere else.
				msgs[0].(*LongValue).Set(999)
			}
		}
		v.VoteToHalt()
		return nil
	})
	// One worker makes receiver order deterministic: vertex 1 mutates
	// before vertex 2 reads, so a shared object would be caught.
	if _, err := NewJob(g, comp, Config{NumWorkers: 1}).Run(); err != nil {
		t.Fatal(err)
	}
}

// TestImmutableValueFanout exercises the no-clone fast path (NilValue
// is immutable, no combiner installed) and the fallback when a
// combiner forces cloning anyway.
func TestImmutableValueFanout(t *testing.T) {
	run := func(combiner Combiner) {
		const spokes = 60
		g := NewGraph()
		g.AddVertex(0, NewLong(0))
		for i := 1; i <= spokes; i++ {
			g.AddVertex(VertexID(i), NewLong(0))
			g.AddEdge(0, VertexID(i), nil)
		}
		var arrived atomic.Int64
		comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
			if ctx.Superstep() == 0 && v.ID() == 0 {
				ctx.SendMessageToAllEdges(v, Nil())
			}
			if ctx.Superstep() == 1 {
				arrived.Add(int64(len(msgs)))
			}
			v.VoteToHalt()
			return nil
		})
		cfg := Config{NumWorkers: 4}
		if combiner != nil {
			cfg.Combiner = combiner
		}
		if _, err := NewJob(g, comp, cfg).Run(); err != nil {
			t.Fatal(err)
		}
		want := int64(spokes)
		if combiner != nil {
			// One combined Nil per destination vertex: still spokes inboxes.
			want = spokes
		}
		if arrived.Load() != want {
			t.Errorf("arrived = %d, want %d", arrived.Load(), want)
		}
	}
	run(nil)
	run(CombineFunc(func(to VertexID, a, b Value) Value { return a }))
}

// starGraph builds a hub-and-spokes graph whose hub fans out every
// superstep, concentrating message work on the hub's partition — the
// deterministic skew source the rebalancer tests use.
func starGraph(t testing.TB, spokes int) *Graph {
	t.Helper()
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= spokes; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
		if err := g.AddEdge(0, VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// pulseCompute keeps the hub broadcasting for a fixed number of
// supersteps; spokes count what arrives.
func pulseCompute(rounds int, got *atomic.Int64) ComputeFunc {
	return func(ctx Context, v *Vertex, msgs []Value) error {
		got.Add(int64(len(msgs)))
		if v.ID() == 0 && ctx.Superstep() < rounds {
			ctx.SendMessageToAllEdges(v, NewLong(int64(ctx.Superstep())))
			return nil
		}
		v.VoteToHalt()
		return nil
	}
}

func TestRebalancerMigratesHotVertices(t *testing.T) {
	const spokes, rounds = 400, 6
	g := starGraph(t, spokes)
	var got atomic.Int64
	stats, err := NewJob(g, pulseCompute(rounds, &got), Config{
		NumWorkers:    4,
		RebalanceSkew: 1.5,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != spokes*rounds {
		t.Errorf("delivered %d messages, want %d", got.Load(), spokes*rounds)
	}
	if stats.Rebalances == 0 || stats.VerticesMigrated == 0 {
		t.Fatalf("rebalancer never triggered: %+v", stats)
	}
	var events int
	for _, ss := range stats.PerSuperstep {
		for _, m := range ss.Migrations {
			events++
			if m.From == m.To {
				t.Errorf("superstep %d: migration from partition %d to itself", ss.Superstep, m.From)
			}
			if m.Vertices <= 0 || m.Skew < 1.5 {
				t.Errorf("superstep %d: implausible migration event %+v", ss.Superstep, m)
			}
		}
	}
	if events != stats.Rebalances {
		t.Errorf("events = %d, Stats.Rebalances = %d", events, stats.Rebalances)
	}
	// The partitions must stay consistent after migration: every vertex
	// reachable, no duplicates in iteration order.
	for _, id := range g.VertexIDs() {
		if g.Vertex(id) == nil {
			t.Fatalf("vertex %d lost after migration", id)
		}
	}
}

func TestRebalancerMaxMovesRespected(t *testing.T) {
	const spokes, rounds = 300, 4
	g := starGraph(t, spokes)
	var got atomic.Int64
	stats, err := NewJob(g, pulseCompute(rounds, &got), Config{
		NumWorkers:        4,
		RebalanceSkew:     1.5,
		RebalanceMaxMoves: 5,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range stats.PerSuperstep {
		for _, m := range ss.Migrations {
			if m.Vertices > 5 {
				t.Errorf("superstep %d migrated %d vertices, cap was 5", ss.Superstep, m.Vertices)
			}
		}
	}
	if got.Load() != spokes*rounds {
		t.Errorf("delivered %d messages, want %d", got.Load(), spokes*rounds)
	}
}

// TestRebalancerSurvivesRecovery crashes the job after migrations have
// happened and checks that recovery restores the reassignment table
// (checkpoint format v2), so post-recovery messages still route to the
// migrated vertices.
func TestRebalancerSurvivesRecovery(t *testing.T) {
	const spokes, rounds = 200, 8
	g := starGraph(t, spokes)
	var got atomic.Int64
	crashed := false
	stats, err := NewJob(g, pulseCompute(rounds, &got), Config{
		NumWorkers:      4,
		RebalanceSkew:   1.5,
		CheckpointEvery: 2,
		CheckpointFS:    dfs.NewMemFS(),
		FailureAt: func(superstep int) bool {
			if superstep == 5 && !crashed {
				crashed = true
				return true
			}
			return false
		},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", stats.Recoveries)
	}
	if stats.Rebalances == 0 {
		t.Fatal("rebalancer never triggered before the crash")
	}
	// Deliveries replayed after recovery are counted twice by the
	// observer; the invariant is "at least every logical message".
	if got.Load() < spokes*rounds {
		t.Errorf("delivered %d messages, want at least %d", got.Load(), spokes*rounds)
	}
	// The hub must have kept broadcasting correctly to the final round.
	last := stats.PerSuperstep[len(stats.PerSuperstep)-1]
	if last.Superstep != rounds {
		t.Errorf("final superstep = %d, want %d", last.Superstep, rounds)
	}
}

// TestRebalancerOffByDefault makes sure a zero config never migrates.
func TestRebalancerOffByDefault(t *testing.T) {
	const spokes, rounds = 200, 4
	g := starGraph(t, spokes)
	var got atomic.Int64
	stats, err := NewJob(g, pulseCompute(rounds, &got), Config{NumWorkers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebalances != 0 || stats.VerticesMigrated != 0 {
		t.Errorf("unexpected migrations with rebalancer disabled: %+v", stats)
	}
}
