package pregel

// Standard message combiners mirroring Giraph's library. A combiner
// reduces network and memory pressure by merging messages addressed to
// the same vertex before delivery; algorithms that only need an
// associative reduction of their inbox (min label, sum of ranks)
// should install one.

// MinLongCombiner keeps the minimum LongValue message, as used by
// connected components.
var MinLongCombiner Combiner = CombineFunc(func(_ VertexID, a, b Value) Value {
	av, bv := a.(*LongValue), b.(*LongValue)
	if bv.Get() < av.Get() {
		return bv
	}
	return av
})

// MaxLongCombiner keeps the maximum LongValue message.
var MaxLongCombiner Combiner = CombineFunc(func(_ VertexID, a, b Value) Value {
	av, bv := a.(*LongValue), b.(*LongValue)
	if bv.Get() > av.Get() {
		return bv
	}
	return av
})

// SumLongCombiner sums LongValue messages.
var SumLongCombiner Combiner = CombineFunc(func(_ VertexID, a, b Value) Value {
	av := a.(*LongValue)
	av.Set(av.Get() + b.(*LongValue).Get())
	return av
})

// SumDoubleCombiner sums DoubleValue messages, as used by PageRank.
var SumDoubleCombiner Combiner = CombineFunc(func(_ VertexID, a, b Value) Value {
	av := a.(*DoubleValue)
	av.Set(av.Get() + b.(*DoubleValue).Get())
	return av
})

// MinDoubleCombiner keeps the minimum DoubleValue message, as used by
// single-source shortest paths.
var MinDoubleCombiner Combiner = CombineFunc(func(_ VertexID, a, b Value) Value {
	av, bv := a.(*DoubleValue), b.(*DoubleValue)
	if bv.Get() < av.Get() {
		return bv
	}
	return av
})
