package pregel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sort"
	"time"
)

// ComputeMode selects the unit of computation the engine dispatches
// per superstep.
type ComputeMode int

const (
	// ModeVertex is the classic Pregel/Giraph model and the zero value:
	// Compute runs once per active vertex per superstep.
	ModeVertex ComputeMode = iota
	// ModeSubgraph is the GoFFish-style partition-level model:
	// ComputeSubgraph runs once per active connected component of a
	// partition per superstep, letting a sequential algorithm traverse
	// the whole component between barriers. Traversal workloads converge
	// in O(partition diameter) supersteps instead of O(graph diameter).
	ModeSubgraph
)

func (m ComputeMode) String() string {
	switch m {
	case ModeVertex:
		return "vertex"
	case ModeSubgraph:
		return "subgraph"
	}
	return fmt.Sprintf("ComputeMode(%d)", int(m))
}

// SubgraphComputation is the partition-level program of ModeSubgraph.
// ComputeSubgraph is called once per active subgraph (connected
// component of one partition) per superstep, and may read and write
// every member vertex sequentially. Boundary messages — sends to
// vertices outside the subgraph — travel through the same message
// plane as vertex mode and are delivered at the next superstep.
//
// Like Computation.Compute, ComputeSubgraph must be a pure function of
// the subgraph, its incoming messages and the context, and must
// process members deterministically (iterate them in member order),
// or trace replay cannot reproduce it.
type SubgraphComputation interface {
	ComputeSubgraph(ctx SubgraphContext, sg *Subgraph) error
}

// SubgraphFunc adapts a function to SubgraphComputation.
type SubgraphFunc func(ctx SubgraphContext, sg *Subgraph) error

// ComputeSubgraph implements SubgraphComputation.
func (f SubgraphFunc) ComputeSubgraph(ctx SubgraphContext, sg *Subgraph) error {
	return f(ctx, sg)
}

// SubgraphContext mirrors the vertex Context's send/aggregate/halt
// surface for one subgraph during one superstep. It is only valid for
// the duration of the ComputeSubgraph call.
type SubgraphContext interface {
	// Superstep returns the current superstep number, starting at 0.
	Superstep() int
	// TotalNumVertices returns the vertex count at the start of the
	// superstep.
	TotalNumVertices() int64
	// TotalNumEdges returns the directed edge count at the start of the
	// superstep.
	TotalNumEdges() int64
	// WorkerID identifies the worker executing this subgraph.
	WorkerID() int
	// GetAggregated returns the value of a registered aggregator as
	// broadcast at the start of this superstep. The returned Value is
	// shared; callers must not mutate it.
	GetAggregated(name string) Value
	// Aggregate folds val into the named aggregator; the merged result
	// is visible from the next superstep.
	Aggregate(name string, val Value)
	// SendMessage delivers msg to the vertex with the given ID at the
	// next superstep, attributed to member from (Graft's trace capture
	// records it as from's outgoing message). The engine takes ownership
	// of msg.
	SendMessage(from, to VertexID, msg Value)
	// VoteToHalt halts the whole subgraph. Every member is reactivated
	// together when any member receives a message in a later superstep.
	VoteToHalt()
	// AddIterations reports n internal sequential iterations (local
	// sweeps, relaxation passes) for the superstep's telemetry.
	AddIterations(n int64)
}

// Subgraph is one weakly-connected component of a partition: the unit
// ComputeSubgraph runs over. Members are sorted by vertex ID and the
// subgraph's identity is its minimum member ID, so discovery is
// deterministic for a given partition content. An edge whose target is
// not a member (see Has) is a boundary edge: it leads to another
// subgraph, possibly on another partition, and crossing it takes a
// message.
type Subgraph struct {
	id      VertexID
	members []*Vertex
	index   map[VertexID]int
	// inbox[i] holds the messages delivered to members[i] this
	// superstep; owned by the engine and valid only during the
	// ComputeSubgraph call.
	inbox [][]Value
}

// NewDetachedSubgraph builds a subgraph outside a running job, for
// context reproduction and tests. Members are sorted by ID; incoming
// maps member IDs to the messages delivered this superstep.
func NewDetachedSubgraph(members []*Vertex, incoming map[VertexID][]Value) *Subgraph {
	ms := append([]*Vertex(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	sg := newSubgraph(ms)
	for i, v := range ms {
		sg.inbox[i] = incoming[v.id]
	}
	return sg
}

// ValuesDigest returns a hex SHA-256 over the subgraph's (member ID,
// value) pairs in member order: the per-component anchor trace capture
// and replay use to compare a subgraph step across modes and runs.
func (sg *Subgraph) ValuesDigest() string {
	h := sha256.New()
	e := NewEncoder()
	for _, v := range sg.members {
		e.Reset()
		e.PutVarint(int64(v.id))
		EncodeTyped(e, v.value)
		h.Write(e.Bytes())
	}
	return hex.EncodeToString(h.Sum(nil))
}

func newSubgraph(sortedMembers []*Vertex) *Subgraph {
	sg := &Subgraph{
		members: sortedMembers,
		index:   make(map[VertexID]int, len(sortedMembers)),
		inbox:   make([][]Value, len(sortedMembers)),
	}
	for i, v := range sortedMembers {
		sg.index[v.id] = i
	}
	if len(sortedMembers) > 0 {
		sg.id = sortedMembers[0].id
	}
	return sg
}

// ID returns the subgraph identifier: its minimum member vertex ID.
func (sg *Subgraph) ID() VertexID { return sg.id }

// NumMembers returns the member count.
func (sg *Subgraph) NumMembers() int { return len(sg.members) }

// Members returns the member vertices in ascending ID order. The slice
// is owned by the subgraph; callers must not modify it.
func (sg *Subgraph) Members() []*Vertex { return sg.members }

// Member returns the i-th member in ascending ID order.
func (sg *Subgraph) Member(i int) *Vertex { return sg.members[i] }

// Has reports whether id is a member; edges to non-members are
// boundary edges.
func (sg *Subgraph) Has(id VertexID) bool {
	_, ok := sg.index[id]
	return ok
}

// Index returns the member slot of id, or (-1, false).
func (sg *Subgraph) Index(id VertexID) (int, bool) {
	i, ok := sg.index[id]
	if !ok {
		return -1, false
	}
	return i, true
}

// Messages returns the messages delivered to the i-th member this
// superstep. The slice is only valid during the ComputeSubgraph call.
func (sg *Subgraph) Messages(i int) []Value { return sg.inbox[i] }

// MessagesTo returns the messages delivered to member id this
// superstep (nil when id is not a member).
func (sg *Subgraph) MessagesTo(id VertexID) []Value {
	if i, ok := sg.index[id]; ok {
		return sg.inbox[i]
	}
	return nil
}

// ensureSubgraphs (re)discovers the partition's weakly-connected
// components. Called by the owning worker at the start of its superstep
// scan, so discovery parallelizes across partitions and is amortized:
// it only reruns after something invalidated membership (topology
// mutation, vertex add/remove, migration, recovery), flagged via
// subsDirty.
func (p *partition) ensureSubgraphs() {
	if p.subs != nil && !p.subsDirty {
		return
	}
	p.subs = discoverSubgraphs(p)
	p.subsDirty = false
}

// discoverSubgraphs computes the partition's weakly-connected
// components with a union-find over intra-partition edges (an edge
// whose target lives elsewhere is by definition a boundary edge and
// joins nothing here). Components come out sorted by minimum member
// ID with members sorted by ID, so the result is a pure function of
// the partition's content — the determinism the trace digests pin.
func discoverSubgraphs(p *partition) []*Subgraph {
	ids := make([]VertexID, 0, len(p.verts))
	for id := range p.verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	idx := make(map[VertexID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for i, id := range ids {
		for _, e := range p.verts[id].edges {
			if j, ok := idx[e.Target]; ok {
				ri, rj := find(i), find(j)
				if ri != rj {
					if ri > rj { // root at the smaller slot = smaller ID
						ri, rj = rj, ri
					}
					parent[rj] = ri
				}
			}
		}
	}
	groups := make(map[int][]*Vertex)
	roots := make([]int, 0)
	for i, id := range ids {
		r := find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], p.verts[id])
	}
	sort.Ints(roots) // root slot order == minimum-member-ID order
	subs := make([]*Subgraph, 0, len(roots))
	for _, r := range roots {
		subs = append(subs, newSubgraph(groups[r]))
	}
	return subs
}

// subgraphCtx implements SubgraphContext over one worker's superstep
// context, sharing its lane buffers, combining and replay suppression.
type subgraphCtx struct {
	w    *workerCtx
	halt bool
	// iterations accumulates AddIterations across the worker's
	// subgraphs; the worker folds it into its result.
	iterations int64
}

func (c *subgraphCtx) Superstep() int              { return c.w.superstep }
func (c *subgraphCtx) TotalNumVertices() int64     { return c.w.numVertices }
func (c *subgraphCtx) TotalNumEdges() int64        { return c.w.numEdges }
func (c *subgraphCtx) WorkerID() int               { return c.w.worker }
func (c *subgraphCtx) GetAggregated(n string) Value { return c.w.GetAggregated(n) }
func (c *subgraphCtx) Aggregate(n string, v Value) { c.w.Aggregate(n, v) }
func (c *subgraphCtx) VoteToHalt()                 { c.halt = true }
func (c *subgraphCtx) AddIterations(n int64)       { c.iterations += n }

func (c *subgraphCtx) SendMessage(from, to VertexID, msg Value) {
	_ = from // sender attribution is consumed by the trace instrumentation wrapper
	c.w.SendMessage(to, msg)
}

// NewSubgraphJob creates a job over g running scomp in ModeSubgraph.
// The configuration's ComputeMode is forced to ModeSubgraph.
func NewSubgraphJob(g *Graph, scomp SubgraphComputation, cfg Config) *Job {
	cfg.ComputeMode = ModeSubgraph
	j := NewJob(g, nil, cfg)
	j.scomp = scomp
	return j
}

// runSubgraphWorker is the ModeSubgraph counterpart of runWorker: it
// scans the partition's subgraphs instead of its vertices. A subgraph
// computes when any member is active; a message to any member wakes
// the whole subgraph; VoteToHalt halts every member together. Active
// counting stays per-vertex, so convergence and the partition-skip
// fast path are mode-independent.
func (en *engine) runSubgraphWorker(w int, nv, ne int64) (workerResult, error) {
	var res workerResult
	part := en.parts[w]
	collect := !en.cfg.DisableMetrics
	var t0 time.Time
	var capReporter CaptureTimeReporter
	var capBefore int64
	if collect {
		t0 = time.Now()
		if ctr, ok := en.job.scomp.(CaptureTimeReporter); ok {
			capReporter = ctr
			capBefore = ctr.CaptureNanos(w)
		}
	}
	part.ensureSubgraphs()
	ctx := en.newWorkerCtx(w, nv, ne)
	sctx := &subgraphCtx{w: ctx}
	for si, sg := range part.subs {
		if si&15 == 0 {
			if err := en.ctx.Err(); err != nil {
				return res, fmt.Errorf("pregel: worker %d canceled in superstep %d: %w", w, en.superstep, err)
			}
		}
		active := false
		for i, v := range sg.members {
			msgs := en.cur.take(w, v.id)
			sg.inbox[i] = msgs
			if len(msgs) > 0 {
				res.received += int64(len(msgs))
				v.halted = false // message-wake, subgraph-wide below
			}
			if !v.halted {
				active = true
			}
		}
		if !active {
			for i := range sg.inbox {
				sg.inbox[i] = nil
			}
			continue
		}
		// The subgraph computes as a unit: every member participates in
		// the sequential pass, halted or not.
		for _, v := range sg.members {
			v.halted = false
		}
		res.vertices += int64(len(sg.members))
		res.subgraphs++
		sctx.halt = false
		err := en.safeComputeSubgraph(sctx, sg)
		for i := range sg.inbox {
			sg.inbox[i] = nil
		}
		if err != nil {
			res.iterations = sctx.iterations
			return res, err
		}
		if sctx.halt {
			for _, v := range sg.members {
				v.halted = true
			}
		} else {
			res.active += int64(len(sg.members))
		}
	}
	ctx.flushAll()
	res.iterations = sctx.iterations
	res.sent = ctx.sent
	res.aggPartial = ctx.aggPartial
	res.removals = ctx.removals
	res.additions = ctx.additions
	if collect {
		res.computeNanos = time.Since(t0).Nanoseconds()
		if capReporter != nil {
			res.captureNanos = capReporter.CaptureNanos(w) - capBefore
		}
	}
	return res, nil
}

// replaySubgraphWorker is the confined-recovery counterpart of
// replayWorker for ModeSubgraph: it re-runs superstep t's subgraph
// computes against the snapshot aggregates with sends, aggregation and
// mutations suppressed, rebuilding member state (and re-emitting
// instrumentation captures) exactly as the original superstep did.
func (en *engine) replaySubgraphWorker(p, t int, snap stepSnapshot, inbox *messageStore) error {
	part := en.parts[p]
	part.ensureSubgraphs()
	ctx := &workerCtx{
		en:          en,
		worker:      p,
		superstep:   t,
		numVertices: snap.nv,
		numEdges:    snap.ne,
		aggPartial:  map[string]Value{},
		replay:      true,
		bcast:       snap.aggs,
	}
	sctx := &subgraphCtx{w: ctx}
	for _, sg := range part.subs {
		active := false
		for i, v := range sg.members {
			msgs := inbox.take(p, v.id)
			sg.inbox[i] = msgs
			if len(msgs) > 0 {
				v.halted = false
			}
			if !v.halted {
				active = true
			}
		}
		if !active {
			for i := range sg.inbox {
				sg.inbox[i] = nil
			}
			continue
		}
		for _, v := range sg.members {
			v.halted = false
		}
		sctx.halt = false
		err := en.safeComputeSubgraph(sctx, sg)
		for i := range sg.inbox {
			sg.inbox[i] = nil
		}
		if err != nil {
			return err
		}
		if sctx.halt {
			for _, v := range sg.members {
				v.halted = true
			}
		}
	}
	return nil
}

func (en *engine) safeComputeSubgraph(ctx *subgraphCtx, sg *Subgraph) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ComputeError{
				VertexID:  sg.id,
				Superstep: ctx.w.superstep,
				Worker:    ctx.w.worker,
				Panic:     p,
				Stack:     string(debug.Stack()),
			}
		}
	}()
	if cerr := en.job.scomp.ComputeSubgraph(ctx, sg); cerr != nil {
		return &ComputeError{VertexID: sg.id, Superstep: ctx.w.superstep, Worker: ctx.w.worker, Err: cerr}
	}
	return nil
}
