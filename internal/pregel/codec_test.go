package pregel

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.PutUvarint(0)
	e.PutUvarint(300)
	e.PutUvarint(math.MaxUint64)
	e.PutVarint(0)
	e.PutVarint(-1)
	e.PutVarint(math.MinInt64)
	e.PutVarint(math.MaxInt64)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat64(3.14159)
	e.PutFloat64(math.Inf(-1))
	e.PutBytes([]byte{1, 2, 3})
	e.PutBytes(nil)
	e.PutString("héllo wörld")
	e.PutString("")

	d := NewDecoder(e.Bytes())
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"uvarint 0", d.Uvarint(), uint64(0)},
		{"uvarint 300", d.Uvarint(), uint64(300)},
		{"uvarint max", d.Uvarint(), uint64(math.MaxUint64)},
		{"varint 0", d.Varint(), int64(0)},
		{"varint -1", d.Varint(), int64(-1)},
		{"varint min", d.Varint(), int64(math.MinInt64)},
		{"varint max", d.Varint(), int64(math.MaxInt64)},
		{"bool true", d.Bool(), true},
		{"bool false", d.Bool(), false},
		{"float pi", d.Float64(), 3.14159},
		{"float -inf", d.Float64(), math.Inf(-1)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes: got %v", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("empty bytes: got %v", got)
	}
	if got := d.String(); got != "héllo wörld" {
		t.Errorf("string: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: got %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining: got %d, want 0", d.Remaining())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.PutString("abc")
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("after Reset, Len = %d", e.Len())
	}
	e.PutVarint(7)
	d := NewDecoder(e.Bytes())
	if got := d.Varint(); got != 7 {
		t.Fatalf("after reset round trip: got %d", got)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0xFF}) // truncated varint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("expected error for truncated varint")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", d.Err())
	}
	// Every subsequent read must return zero values without panicking.
	if d.Uvarint() != 0 || d.Varint() != 0 || d.Bool() || d.Float64() != 0 ||
		d.Bytes() != nil || d.String() != "" {
		t.Error("reads after error should return zero values")
	}
}

func TestDecoderTruncatedInputs(t *testing.T) {
	// Each case encodes a value then truncates one byte off the end.
	cases := []struct {
		name string
		enc  func(*Encoder)
		dec  func(*Decoder)
	}{
		{"float64", func(e *Encoder) { e.PutFloat64(1) }, func(d *Decoder) { _ = d.Float64() }},
		{"bytes", func(e *Encoder) { e.PutBytes([]byte("abcd")) }, func(d *Decoder) { _ = d.Bytes() }},
		{"string", func(e *Encoder) { e.PutString("abcd") }, func(d *Decoder) { _ = d.String() }},
		{"bool", func(e *Encoder) { e.PutBool(true) }, func(d *Decoder) { _ = d.Bool() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := NewEncoder()
			c.enc(e)
			d := NewDecoder(e.Bytes()[:e.Len()-1])
			c.dec(d)
			if d.Err() == nil {
				t.Fatal("expected error for truncated input")
			}
		})
	}
}

func TestDecoderOverlongLengthPrefix(t *testing.T) {
	e := NewEncoder()
	e.PutUvarint(1 << 40) // claims a huge payload
	d := NewDecoder(e.Bytes())
	if got := d.Bytes(); got != nil || d.Err() == nil {
		t.Fatalf("expected corrupt error, got %v err %v", got, d.Err())
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, b bool, fl float64, p []byte, s string) bool {
		e := NewEncoder()
		e.PutUvarint(u)
		e.PutVarint(i)
		e.PutBool(b)
		e.PutFloat64(fl)
		e.PutBytes(p)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		gu, gi, gb, gf := d.Uvarint(), d.Varint(), d.Bool(), d.Float64()
		gp, gs := d.Bytes(), d.String()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		floatOK := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gi == i && gb == b && floatOK &&
			bytes.Equal(gp, p) && gs == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
