package pregel

import (
	"fmt"
	"sort"
)

// PartitionerMode selects the initial vertex-placement strategy.
type PartitionerMode int

const (
	// PartitionHash is Fibonacci hashing, the default: placement is a
	// pure function of the vertex ID, byte-compatible with every run
	// before the placement subsystem existed. Spreads consecutive IDs
	// evenly but scatters neighborhoods across workers.
	PartitionHash PartitionerMode = iota
	// PartitionLocality is the streaming locality-aware placer
	// (LDG/Fennel-style greedy): vertices are streamed in ID order and
	// each goes to the worker already holding the most of its
	// neighbors, penalized by a capacity term so load stays balanced.
	// Placement is recorded in an explicit assignment table consulted
	// by partitionFor and persisted through checkpoints, so recovery
	// and migrations stay consistent.
	PartitionLocality
)

func (m PartitionerMode) String() string {
	switch m {
	case PartitionHash:
		return "hash"
	case PartitionLocality:
		return "locality"
	}
	return fmt.Sprintf("PartitionerMode(%d)", int(m))
}

// RebalanceObjective selects what the adaptive repartitioner optimizes
// when it migrates vertices at a barrier.
type RebalanceObjective int

const (
	// ObjectiveSkew is the load objective, the default: when a
	// superstep's compute or message skew crosses Config.RebalanceSkew,
	// the hottest vertices move off the straggler to the least-loaded
	// worker.
	ObjectiveSkew RebalanceObjective = iota
	// ObjectiveEdgeCut is the communication objective: when the traffic
	// matrix shows a heavy cross-partition lane, boundary vertices
	// migrate toward their heaviest communication partner, shrinking
	// the edge cut. Requires the lane message plane and telemetry (the
	// traffic matrix feeds the decision).
	ObjectiveEdgeCut
)

func (o RebalanceObjective) String() string {
	switch o {
	case ObjectiveSkew:
		return "skew"
	case ObjectiveEdgeCut:
		return "edgecut"
	}
	return fmt.Sprintf("RebalanceObjective(%d)", int(o))
}

// hashPartition is the default placement: Fibonacci hashing keeps
// consecutive IDs (the common case for generated graphs) spread evenly.
func hashPartition(id VertexID, numParts int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(numParts))
}

// assignTable is the explicit placement table partitionFor consults
// before falling back to the hash: locality placement and rebalancer
// migrations both write it. Lookups must stay allocation-free — they
// sit on the send/load/mutation hot paths — so the table is a dense
// int32 slice over the ID range seen at build time (-1 = unset, fall
// through to hash) with a sparse map catching IDs outside that range
// (vertices created later by mutation, then migrated).
type assignTable struct {
	base   VertexID
	dense  []int32
	sparse map[VertexID]int32
	n      int // live entries across both representations
}

// newAssignTable returns an empty sparse-only table (the rebalancer's
// lazy path, mirroring the old nil-until-first-migration map).
func newAssignTable() *assignTable { return &assignTable{} }

// newDenseAssignTable returns a table with a dense slice covering
// [lo, hi]; IDs outside the range overflow into the sparse map.
func newDenseAssignTable(lo, hi VertexID) *assignTable {
	t := &assignTable{base: lo, dense: make([]int32, hi-lo+1)}
	for i := range t.dense {
		t.dense[i] = -1
	}
	return t
}

// lookup returns the explicit assignment for id, if any. It performs
// no allocation: one bounds check against the dense slice, and a map
// probe only for out-of-range IDs.
func (t *assignTable) lookup(id VertexID) (int, bool) {
	if off := uint64(id - t.base); off < uint64(len(t.dense)) {
		if p := t.dense[off]; p >= 0 {
			return int(p), true
		}
		return 0, false
	}
	if t.sparse != nil {
		if p, ok := t.sparse[id]; ok {
			return int(p), true
		}
	}
	return 0, false
}

// set records an explicit assignment for id.
func (t *assignTable) set(id VertexID, p int) {
	if off := uint64(id - t.base); off < uint64(len(t.dense)) {
		if t.dense[off] < 0 {
			t.n++
		}
		t.dense[off] = int32(p)
		return
	}
	if t.sparse == nil {
		t.sparse = make(map[VertexID]int32)
	}
	if _, ok := t.sparse[id]; !ok {
		t.n++
	}
	t.sparse[id] = int32(p)
}

// len returns the number of explicit assignments.
func (t *assignTable) len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// pairs returns every explicit assignment in ascending ID order, the
// canonical form checkpoints encode.
func (t *assignTable) pairs() ([]VertexID, []int) {
	ids := make([]VertexID, 0, t.n)
	for off, p := range t.dense {
		if p >= 0 {
			ids = append(ids, t.base+VertexID(off))
		}
	}
	for id := range t.sparse {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]int, len(ids))
	for i, id := range ids {
		p, _ := t.lookup(id)
		parts[i] = p
	}
	return ids, parts
}

// assignTableFromPairs rebuilds a table from decoded checkpoint pairs,
// choosing the dense representation when the ID range is at least 25%
// occupied so restored jobs keep the allocation-free fast path.
func assignTableFromPairs(ids []VertexID, parts []int) *assignTable {
	if len(ids) == 0 {
		return nil
	}
	lo, hi := ids[0], ids[0]
	for _, id := range ids {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	var t *assignTable
	if span := uint64(hi-lo) + 1; span <= 4*uint64(len(ids)) {
		t = newDenseAssignTable(lo, hi)
	} else {
		t = newAssignTable()
	}
	for i, id := range ids {
		t.set(id, parts[i])
	}
	return t
}

// localitySlack is the fractional headroom the locality placer allows
// over the perfectly balanced partition size n/k. A little slack lets
// a community finish filling the partition that holds its neighbors
// instead of splitting at an arbitrary capacity boundary.
const localitySlack = 0.05

// localityRestreamPasses is how many times the placer re-streams the
// vertex sequence after the initial pass. On the first pass an early
// vertex is placed blind (its neighbors are mostly unplaced);
// restreaming re-places every vertex with the full neighborhood known
// from the previous pass — the standard ReLDG refinement, deterministic
// and O(E) per pass.
const localityRestreamPasses = 2

// localityPlacement computes the streaming locality-aware assignment
// of g's vertices across numParts workers and returns the table of
// assignments that differ from the hash placement (nil when nothing
// diverges, so hash-equivalent graphs keep the nil fast path).
//
// The stream visits vertices in ascending ID order. Each vertex scores
// every partition by the number of already-placed neighbors there
// (both edge directions, so chains place contiguously regardless of
// orientation), scaled by the LDG balance penalty 1 - load/capacity;
// ties break toward the lighter then lower-indexed partition, and a
// vertex with no placed neighbors goes to the least-loaded partition.
// Everything is deterministic: same graph, same placement, every run.
func localityPlacement(g *Graph, numParts int) *assignTable {
	ids := g.VertexIDs()
	n := len(ids)
	if n == 0 || numParts <= 1 {
		return nil
	}
	idx := make(map[VertexID]int32, n)
	for i, id := range ids {
		idx[id] = int32(i)
	}
	// Undirected CSR adjacency: every edge contributes both directions,
	// so the placer sees in-neighbors too (a directed chain would
	// otherwise stream with zero placed neighbors at every step).
	deg := make([]int32, n)
	for i, id := range ids {
		for _, e := range g.vertices[id].edges {
			j, ok := idx[e.Target]
			if !ok || j == int32(i) {
				continue
			}
			deg[i]++
			deg[j]++
		}
	}
	off := make([]int, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + int(deg[i])
	}
	adj := make([]int32, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for i, id := range ids {
		for _, e := range g.vertices[id].edges {
			j, ok := idx[e.Target]
			if !ok || j == int32(i) {
				continue
			}
			adj[fill[i]] = j
			adj[fill[j]] = int32(i)
			fill[i]++
			fill[j]++
		}
	}

	capacity := int(float64(n)/float64(numParts)*(1+localitySlack)) + 1
	capF := float64(capacity)
	placed := make([]int32, n)
	for i := range placed {
		placed[i] = -1
	}
	load := make([]int, numParts)
	counts := make([]int, numParts)
	touched := make([]int, 0, numParts)

	for pass := 0; pass <= localityRestreamPasses; pass++ {
		for p := range load {
			load[p] = 0
		}
		for i := 0; i < n; i++ {
			for _, p := range touched {
				counts[p] = 0
			}
			touched = touched[:0]
			for _, j := range adj[off[i]:off[i+1]] {
				p := placed[j]
				if p < 0 {
					continue
				}
				if counts[p] == 0 {
					touched = append(touched, int(p))
				}
				counts[p]++
			}
			best, bestLoad := -1, 0
			var bestScore float64
			for p := 0; p < numParts; p++ {
				if load[p] >= capacity {
					continue
				}
				score := float64(counts[p]) * (1 - float64(load[p])/capF)
				if best < 0 || score > bestScore ||
					(score == bestScore && (load[p] < bestLoad || (load[p] == bestLoad && p < best))) {
					best, bestScore, bestLoad = p, score, load[p]
				}
			}
			if best < 0 {
				// Every partition at capacity (can only happen on the
				// last few vertices of a pass): least-loaded wins.
				for p := 0; p < numParts; p++ {
					if best < 0 || load[p] < load[best] {
						best = p
					}
				}
			}
			placed[i] = int32(best)
			load[best]++
		}
	}

	var t *assignTable
	for i, id := range ids {
		if int(placed[i]) == hashPartition(id, numParts) {
			continue
		}
		if t == nil {
			t = newDenseAssignTable(ids[0], ids[n-1])
		}
		t.set(id, int(placed[i]))
	}
	return t
}
