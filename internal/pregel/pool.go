package pregel

import "context"

// WorkerPool is a global worker budget shared by every engine of a
// session: each worker goroutine acquires one slot for the duration of
// its superstep scan, so N concurrent jobs with W workers each never
// run more than the pool's size of compute goroutines at once. Workers
// holding a slot always run to the barrier and release it, so the gate
// cannot deadlock; it only serializes.
type WorkerPool struct {
	sem chan struct{}
}

// NewWorkerPool creates a pool admitting size concurrent workers.
// A nil pool (or size <= 0) means no global budget.
func NewWorkerPool(size int) *WorkerPool {
	if size <= 0 {
		return nil
	}
	return &WorkerPool{sem: make(chan struct{}, size)}
}

// Size returns the pool's slot count.
func (p *WorkerPool) Size() int { return cap(p.sem) }

// acquire blocks until a slot frees or ctx is canceled, so a canceled
// job never sits in the queue of a saturated pool.
func (p *WorkerPool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *WorkerPool) release() { <-p.sem }
