package pregel

import (
	"errors"
	"fmt"
	"testing"
)

// ccCompute is HCC connected components: propagate the minimum vertex
// ID seen; converges when no label changes.
var ccCompute = ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
	if ctx.Superstep() == 0 {
		v.SetValue(NewLong(int64(v.ID())))
		ctx.SendMessageToAllEdges(v, NewLong(int64(v.ID())))
		v.VoteToHalt()
		return nil
	}
	cur := v.Value().(*LongValue).Get()
	min := cur
	for _, m := range msgs {
		if x := m.(*LongValue).Get(); x < min {
			min = x
		}
	}
	if min < cur {
		v.SetValue(NewLong(min))
		ctx.SendMessageToAllEdges(v, NewLong(min))
	}
	v.VoteToHalt()
	return nil
})

// pathGraph builds 0-1-2-...-n-1 as an undirected path.
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	for i := 1; i < n; i++ {
		if err := g.AddUndirectedEdge(VertexID(i-1), VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// twoComponentGraph builds two disjoint undirected triangles
// {0,1,2} and {10,11,12}.
func twoComponentGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, id := range []VertexID{0, 1, 2, 10, 11, 12} {
		g.AddVertex(id, NewLong(0))
	}
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {0, 2}, {10, 11}, {11, 12}, {10, 12}} {
		if err := g.AddUndirectedEdge(e[0], e[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestConnectedComponents(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := twoComponentGraph(t)
			stats, err := NewJob(g, ccCompute, Config{NumWorkers: workers}).Run()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Reason != ReasonConverged {
				t.Errorf("reason = %v, want converged", stats.Reason)
			}
			for _, id := range []VertexID{0, 1, 2} {
				if got := g.Vertex(id).Value().(*LongValue).Get(); got != 0 {
					t.Errorf("vertex %d label = %d, want 0", id, got)
				}
			}
			for _, id := range []VertexID{10, 11, 12} {
				if got := g.Vertex(id).Value().(*LongValue).Get(); got != 10 {
					t.Errorf("vertex %d label = %d, want 10", id, got)
				}
			}
		})
	}
}

func TestConnectedComponentsLongPath(t *testing.T) {
	const n = 200
	g := pathGraph(t, n)
	stats, err := NewJob(g, ccCompute, Config{NumWorkers: 4, Combiner: MinLongCombiner}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Label 0 must walk the whole path: n-1 propagation supersteps
	// plus the initial one plus the final quiescent check.
	if stats.Supersteps < n-1 {
		t.Errorf("supersteps = %d, expected at least %d", stats.Supersteps, n-1)
	}
	for i := 0; i < n; i++ {
		if got := g.Vertex(VertexID(i)).Value().(*LongValue).Get(); got != 0 {
			t.Fatalf("vertex %d label = %d, want 0", i, got)
		}
	}
}

func TestCombinerReducesDeliveredMessages(t *testing.T) {
	// Star graph: all leaves message the hub every superstep.
	build := func() *Graph {
		g := NewGraph()
		g.AddVertex(0, NewLong(0))
		for i := 1; i <= 50; i++ {
			g.AddVertex(VertexID(i), NewLong(0))
			if err := g.AddEdge(VertexID(i), 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	var hubInbox int
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 0 && ctx.Superstep() == 1 {
			hubInbox = len(msgs)
		}
		if ctx.Superstep() == 0 {
			ctx.SendMessageToAllEdges(v, NewLong(1))
		}
		v.VoteToHalt()
		return nil
	})

	if _, err := NewJob(build(), comp, Config{NumWorkers: 4}).Run(); err != nil {
		t.Fatal(err)
	}
	if hubInbox != 50 {
		t.Errorf("without combiner hub got %d messages, want 50", hubInbox)
	}

	if _, err := NewJob(build(), comp, Config{NumWorkers: 4, Combiner: SumLongCombiner}).Run(); err != nil {
		t.Fatal(err)
	}
	if hubInbox != 1 {
		t.Errorf("with combiner hub got %d messages, want 1", hubInbox)
	}
}

func TestCombinedValueIsCorrect(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= 10; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
		if err := g.AddEdge(VertexID(i), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		switch ctx.Superstep() {
		case 0:
			if v.ID() != 0 {
				ctx.SendMessageToAllEdges(v, NewLong(int64(v.ID())))
			}
		case 1:
			if v.ID() == 0 {
				var sum int64
				for _, m := range msgs {
					sum += m.(*LongValue).Get()
				}
				v.SetValue(NewLong(sum))
			}
		}
		v.VoteToHalt()
		return nil
	})
	if _, err := NewJob(g, comp, Config{NumWorkers: 3, Combiner: SumLongCombiner}).Run(); err != nil {
		t.Fatal(err)
	}
	if got := g.Vertex(0).Value().(*LongValue).Get(); got != 55 {
		t.Errorf("combined sum = %d, want 55", got)
	}
}

func TestAggregatorsRegularAndPersistent(t *testing.T) {
	g := pathGraph(t, 4)
	var regularAt2, persistentAt2 int64
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() < 2 {
			ctx.Aggregate("reg", NewLong(1))
			ctx.Aggregate("per", NewLong(1))
			return nil // stay active to run more supersteps
		}
		if v.ID() == 0 {
			regularAt2 = ctx.GetAggregated("reg").(*LongValue).Get()
			persistentAt2 = ctx.GetAggregated("per").(*LongValue).Get()
		}
		v.VoteToHalt()
		return nil
	})
	job := NewJob(g, comp, Config{NumWorkers: 2})
	job.RegisterAggregator("reg", LongSumAggregator{}, false)
	job.RegisterAggregator("per", LongSumAggregator{}, true)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 vertices aggregate 1 in supersteps 0 and 1.
	if regularAt2 != 4 {
		t.Errorf("regular aggregator at superstep 2 = %d, want 4 (last superstep only)", regularAt2)
	}
	if persistentAt2 != 8 {
		t.Errorf("persistent aggregator at superstep 2 = %d, want 8 (accumulated)", persistentAt2)
	}
}

func TestAggregatorInitialValueVisible(t *testing.T) {
	g := pathGraph(t, 1)
	var seen int64 = -999
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		seen = ctx.GetAggregated("sum").(*LongValue).Get()
		v.VoteToHalt()
		return nil
	})
	job := NewJob(g, comp, Config{})
	job.RegisterAggregator("sum", LongSumAggregator{}, false)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 0 {
		t.Errorf("initial aggregated value = %d, want 0", seen)
	}
}

func TestUnregisteredAggregatorPanicsBecomeComputeErrors(t *testing.T) {
	g := pathGraph(t, 2)
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		ctx.Aggregate("nope", NewLong(1))
		return nil
	})
	_, err := NewJob(g, comp, Config{}).Run()
	var ce *ComputeError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ComputeError, got %v", err)
	}
	if ce.Panic == nil {
		t.Error("expected panic to be recorded")
	}
	if ce.Superstep != 0 {
		t.Errorf("superstep = %d, want 0", ce.Superstep)
	}
}

func TestMasterComputeCoordinatesPhases(t *testing.T) {
	g := pathGraph(t, 3)
	var phasesSeen []string
	master := MasterComputeFunc(func(ctx MasterContext) error {
		switch ctx.Superstep() {
		case 0:
			ctx.SetAggregated("phase", NewText("A"))
		case 1:
			ctx.SetAggregated("phase", NewText("B"))
		default:
			ctx.HaltComputation()
		}
		return nil
	})
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 0 {
			phasesSeen = append(phasesSeen, ctx.GetAggregated("phase").(*TextValue).Get())
		}
		return nil // never halt; master terminates the job
	})
	job := NewJob(g, comp, Config{Master: master})
	job.RegisterAggregator("phase", TextOverwriteAggregator{}, true)
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reason != ReasonMasterHalted {
		t.Errorf("reason = %v, want master-halted", stats.Reason)
	}
	if stats.Supersteps != 2 {
		t.Errorf("supersteps = %d, want 2", stats.Supersteps)
	}
	if len(phasesSeen) != 2 || phasesSeen[0] != "A" || phasesSeen[1] != "B" {
		t.Errorf("phases seen = %v, want [A B]", phasesSeen)
	}
}

func TestMasterSeesMergedAggregates(t *testing.T) {
	g := pathGraph(t, 5)
	var masterSaw []int64
	master := MasterComputeFunc(func(ctx MasterContext) error {
		masterSaw = append(masterSaw, ctx.GetAggregated("sum").(*LongValue).Get())
		return nil
	})
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 {
			ctx.Aggregate("sum", NewLong(int64(v.ID())))
			return nil
		}
		v.VoteToHalt()
		return nil
	})
	job := NewJob(g, comp, Config{Master: master, NumWorkers: 3})
	job.RegisterAggregator("sum", LongSumAggregator{}, false)
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	// Superstep 0: initial 0. Superstep 1: 0+1+2+3+4 = 10.
	if len(masterSaw) < 2 || masterSaw[0] != 0 || masterSaw[1] != 10 {
		t.Errorf("master saw %v, want [0 10ยทยทยท]", masterSaw)
	}
}

func TestMaxSuperstepsStopsInfiniteLoop(t *testing.T) {
	g := pathGraph(t, 2)
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		ctx.SendMessageToAllEdges(v, NewLong(1)) // never quiesces
		v.VoteToHalt()
		return nil
	})
	stats, err := NewJob(g, comp, Config{MaxSupersteps: 17}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reason != ReasonMaxSupersteps {
		t.Errorf("reason = %v, want max-supersteps", stats.Reason)
	}
	if stats.Supersteps != 17 {
		t.Errorf("supersteps = %d, want 17", stats.Supersteps)
	}
}

func TestVoteToHaltAndReactivation(t *testing.T) {
	// Vertex 1 halts at superstep 0; vertex 0 messages it at
	// superstep 1; vertex 1 must wake at superstep 2.
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	g.AddVertex(1, NewLong(0))
	if err := g.AddEdge(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	var wokeAt = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 1 {
			if ctx.Superstep() > 0 && len(msgs) > 0 {
				wokeAt = ctx.Superstep()
			}
			v.VoteToHalt()
			return nil
		}
		if ctx.Superstep() == 1 {
			ctx.SendMessage(1, NewLong(42))
		}
		if ctx.Superstep() >= 1 {
			v.VoteToHalt()
		}
		return nil
	})
	if _, err := NewJob(g, comp, Config{}).Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 2 {
		t.Errorf("vertex 1 woke at superstep %d, want 2", wokeAt)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	g := pathGraph(t, 3)
	boom := errors.New("boom")
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 1 && ctx.Superstep() == 1 {
			return boom
		}
		return nil
	})
	_, err := NewJob(g, comp, Config{MaxSupersteps: 5}).Run()
	var ce *ComputeError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ComputeError, got %v", err)
	}
	if ce.VertexID != 1 || ce.Superstep != 1 {
		t.Errorf("error context = vertex %d superstep %d", ce.VertexID, ce.Superstep)
	}
	if !errors.Is(err, boom) {
		t.Error("wrapped error lost")
	}
}

func TestPanicInComputeBecomesError(t *testing.T) {
	g := pathGraph(t, 2)
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if v.ID() == 1 {
			panic("kaboom")
		}
		v.VoteToHalt()
		return nil
	})
	_, err := NewJob(g, comp, Config{}).Run()
	var ce *ComputeError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ComputeError, got %v", err)
	}
	if ce.Panic != "kaboom" {
		t.Errorf("panic value = %v", ce.Panic)
	}
	if ce.Stack == "" {
		t.Error("stack trace missing")
	}
}

func TestMasterErrorPropagates(t *testing.T) {
	g := pathGraph(t, 2)
	master := MasterComputeFunc(func(ctx MasterContext) error {
		if ctx.Superstep() == 1 {
			panic("master bug")
		}
		return nil
	})
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error { return nil })
	_, err := NewJob(g, comp, Config{Master: master, MaxSupersteps: 5}).Run()
	var ce *ComputeError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ComputeError, got %v", err)
	}
	if ce.VertexID != MasterVertexID {
		t.Errorf("vertex = %d, want MasterVertexID", ce.VertexID)
	}
}

func TestCreateMissingVertices(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	var created struct {
		defaultVal int64
		inboxSum   int64
	}
	created.defaultVal = -1
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() == 0 {
			ctx.SendMessage(77, NewLong(5))
			ctx.SendMessage(77, NewLong(6))
		}
		if v.ID() == 77 {
			created.defaultVal = v.Value().(*LongValue).Get()
			for _, m := range msgs {
				created.inboxSum += m.(*LongValue).Get()
			}
		}
		v.VoteToHalt()
		return nil
	})
	listener := &recordingListener{}
	job := NewJob(g, comp, Config{
		CreateMissingVertices: true,
		DefaultVertexValue:    func() Value { return NewLong(100) },
		Listener:              listener,
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if created.defaultVal != 100 {
		t.Errorf("created vertex default value = %d, want 100", created.defaultVal)
	}
	if created.inboxSum != 11 {
		t.Errorf("created vertex inbox sum = %d, want 11", created.inboxSum)
	}
	if stats.MessagesDropped != 0 {
		t.Errorf("dropped = %d, want 0", stats.MessagesDropped)
	}
	// The new vertex must appear in the superstep-1 totals.
	for _, info := range listener.superstepInfos {
		if info.Superstep == 1 && info.NumVertices != 2 {
			t.Errorf("vertices at superstep 1 = %d, want 2", info.NumVertices)
		}
	}
	// And in the input graph after the run.
	v77 := g.Vertex(77)
	if v77 == nil {
		t.Fatal("created vertex not mirrored into the input graph")
	}
	if got := v77.Value().(*LongValue).Get(); got != 100 {
		t.Errorf("mirrored vertex value = %d, want 100", got)
	}
}

func TestDroppedMessagesCounted(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 {
			ctx.SendMessage(99, NewLong(1))
			ctx.SendMessage(98, NewLong(2))
		}
		v.VoteToHalt()
		return nil
	})
	stats, err := NewJob(g, comp, Config{CreateMissingVertices: false}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesDropped != 2 {
		t.Errorf("dropped = %d, want 2", stats.MessagesDropped)
	}
}

func TestVertexRemoval(t *testing.T) {
	g := twoComponentGraph(t)
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() >= 10 {
			ctx.RemoveVertexRequest(v.ID())
		}
		if ctx.Superstep() >= 1 {
			v.VoteToHalt() // stay active through superstep 1 so its totals are observable
		}
		return nil
	})
	var endVertices int64 = -1
	listener := &recordingListener{onFinish: func(s *Stats, err error) {}}
	job := NewJob(g, comp, Config{Listener: listener, MaxSupersteps: 3})
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	for _, info := range listener.superstepInfos {
		if info.Superstep == 1 {
			endVertices = info.NumVertices
		}
	}
	if endVertices != 3 {
		t.Errorf("vertices at superstep 1 = %d, want 3", endVertices)
	}
}

func TestAddVertexRequest(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	listener := &recordingListener{}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		if ctx.Superstep() == 0 && v.ID() == 0 {
			ctx.AddVertexRequest(5, NewLong(55))
			ctx.AddVertexRequest(0, NewLong(99)) // exists: ignored
		}
		if ctx.Superstep() >= 1 {
			v.VoteToHalt() // stay active through superstep 1 so its totals are observable
		}
		return nil
	})
	job := NewJob(g, comp, Config{Listener: listener, MaxSupersteps: 3})
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range listener.superstepInfos {
		if info.Superstep == 1 && info.NumVertices == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected 2 vertices at superstep 1; infos: %+v", listener.superstepInfos)
	}
}

type recordingListener struct {
	jobInfo        JobInfo
	superstepInfos []SuperstepInfo
	superstepStats []SuperstepStats
	finished       bool
	finalStats     *Stats
	finalErr       error
	onFinish       func(*Stats, error)
}

func (l *recordingListener) JobStarted(info JobInfo) { l.jobInfo = info }
func (l *recordingListener) SuperstepStarted(s int, info SuperstepInfo) {
	l.superstepInfos = append(l.superstepInfos, info)
}
func (l *recordingListener) SuperstepFinished(s int, stats SuperstepStats) {
	l.superstepStats = append(l.superstepStats, stats)
}
func (l *recordingListener) JobFinished(stats *Stats, err error) {
	l.finished, l.finalStats, l.finalErr = true, stats, err
	if l.onFinish != nil {
		l.onFinish(stats, err)
	}
}

func TestListenerCallbacks(t *testing.T) {
	g := twoComponentGraph(t)
	l := &recordingListener{}
	stats, err := NewJob(g, ccCompute, Config{Listener: l, NumWorkers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if l.jobInfo.NumVertices != 6 || l.jobInfo.NumEdges != 12 {
		t.Errorf("job info = %+v", l.jobInfo)
	}
	if !l.finished || l.finalErr != nil {
		t.Error("JobFinished not observed")
	}
	if len(l.superstepInfos) != stats.Supersteps {
		t.Errorf("superstep starts = %d, supersteps = %d", len(l.superstepInfos), stats.Supersteps)
	}
	if len(l.superstepStats) != stats.Supersteps {
		t.Errorf("superstep finishes = %d, supersteps = %d", len(l.superstepStats), stats.Supersteps)
	}
	if l.finalStats.TotalMessages == 0 {
		t.Error("no messages recorded")
	}
}

func TestStatsPerSuperstep(t *testing.T) {
	g := pathGraph(t, 10)
	stats, err := NewJob(g, ccCompute, Config{NumWorkers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerSuperstep) != stats.Supersteps {
		t.Fatalf("PerSuperstep has %d entries for %d supersteps", len(stats.PerSuperstep), stats.Supersteps)
	}
	for i, ss := range stats.PerSuperstep {
		if ss.Superstep != i {
			t.Errorf("entry %d has superstep %d", i, ss.Superstep)
		}
	}
	last := stats.PerSuperstep[len(stats.PerSuperstep)-1]
	if last.ActiveAtEnd != 0 || last.MessagesSent != 0 {
		t.Errorf("final superstep not quiescent: %+v", last)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(workers int) []int64 {
		g := twoComponentGraph(t)
		if _, err := NewJob(g, ccCompute, Config{NumWorkers: workers}).Run(); err != nil {
			t.Fatal(err)
		}
		var out []int64
		g.Each(func(v *Vertex) { out = append(out, v.Value().(*LongValue).Get()) })
		return out
	}
	a, b, c := run(1), run(4), run(7)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("results differ across worker counts: %v %v %v", a, b, c)
		}
	}
}

func TestZeroVertexGraph(t *testing.T) {
	g := NewGraph()
	stats, err := NewJob(g, ccCompute, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 || stats.Reason != ReasonConverged {
		t.Errorf("empty graph: %+v", stats)
	}
}

func TestDuplicateAggregatorRegistrationPanics(t *testing.T) {
	job := NewJob(NewGraph(), ccCompute, Config{})
	job.RegisterAggregator("x", LongSumAggregator{}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	job.RegisterAggregator("x", LongSumAggregator{}, false)
}

func TestSendMessageToAllEdgesClones(t *testing.T) {
	// With a mutating combiner, recipients sharing one message object
	// would corrupt each other; verify each inbox is independent.
	g := NewGraph()
	g.AddVertex(0, NewLong(0))
	for i := 1; i <= 3; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	for i := 1; i <= 3; i++ {
		if err := g.AddEdge(0, VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	got := map[VertexID]int64{}
	comp := ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
		switch ctx.Superstep() {
		case 0:
			if v.ID() == 0 {
				ctx.SendMessageToAllEdges(v, NewLong(7))
				// A second broadcast that the combiner folds in.
				ctx.SendMessageToAllEdges(v, NewLong(int64(10)))
			}
		case 1:
			if len(msgs) > 0 {
				got[v.ID()] = msgs[0].(*LongValue).Get()
			}
		}
		v.VoteToHalt()
		return nil
	})
	if _, err := NewJob(g, comp, Config{NumWorkers: 1, Combiner: SumLongCombiner}).Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if got[VertexID(i)] != 17 {
			t.Errorf("vertex %d combined inbox = %d, want 17", i, got[VertexID(i)])
		}
	}
}
