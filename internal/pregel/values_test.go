package pregel

import (
	"strings"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v Value) Value {
	t.Helper()
	got, err := UnmarshalValue(MarshalValue(v))
	if err != nil {
		t.Fatalf("round trip of %v: %v", v, err)
	}
	return got
}

func TestScalarValueRoundTrips(t *testing.T) {
	values := []Value{
		Nil(),
		NewBool(true),
		NewBool(false),
		NewInt(-42),
		NewLong(1 << 60),
		NewShort(-32768),
		NewShort(32767),
		NewDouble(2.718281828),
		NewText("CONFLICT-RESOLUTION"),
		NewText(""),
		NewLongList(1, -2, 3),
		NewLongList(),
	}
	for _, v := range values {
		got := roundTripValue(t, v)
		if !ValuesEqual(v, got) {
			t.Errorf("round trip of %s %v: got %v", v.TypeName(), v, got)
		}
		if got.TypeName() != v.TypeName() {
			t.Errorf("type name changed: %s -> %s", v.TypeName(), got.TypeName())
		}
	}
}

func TestNilValueRoundTrip(t *testing.T) {
	got, err := UnmarshalValue(MarshalValue(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("nil value round trip: got %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	l := NewLong(5)
	c := l.Clone().(*LongValue)
	c.Set(99)
	if l.Get() != 5 {
		t.Error("LongValue clone shares storage")
	}

	list := NewLongList(1, 2, 3)
	lc := list.Clone().(*LongListValue)
	lc.Longs[0] = 42
	if list.Longs[0] != 1 {
		t.Error("LongListValue clone shares storage")
	}

	txt := NewText("a")
	tc := txt.Clone().(*TextValue)
	tc.Set("b")
	if txt.Get() != "a" {
		t.Error("TextValue clone shares storage")
	}
}

func TestValuesEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewLong(1), NewLong(1), true},
		{NewLong(1), NewLong(2), false},
		{NewLong(1), NewInt(1), false}, // different types never equal
		{nil, nil, true},
		{NewLong(1), nil, false},
		{nil, NewLong(1), false},
		{NewText("x"), NewText("x"), true},
		{NewLongList(1, 2), NewLongList(1, 2), true},
		{NewLongList(1, 2), NewLongList(2, 1), false},
	}
	for _, c := range cases {
		if got := ValuesEqual(c.a, c.b); got != c.want {
			t.Errorf("ValuesEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRegistryUnknownType(t *testing.T) {
	if _, err := NewValueOf("no-such-type"); err == nil {
		t.Fatal("expected error for unregistered type")
	}
	e := NewEncoder()
	e.PutString("no-such-type")
	if _, err := DecodeTyped(NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected error decoding unregistered type")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	RegisterValue("long", func() Value { return new(LongValue) })
}

func TestRegisteredValueTypesSorted(t *testing.T) {
	names := RegisteredValueTypes()
	if len(names) < 7 {
		t.Fatalf("expected at least the builtin types, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
	found := false
	for _, n := range names {
		if n == "long" {
			found = true
		}
	}
	if !found {
		t.Error("builtin type long not registered")
	}
}

func TestShortValueWrapsLikeJavaShort(t *testing.T) {
	// The §4.2 scenario depends on Java short overflow semantics.
	s := NewShort(32767)
	s.Set(s.Get() + 1)
	if s.Get() != -32768 {
		t.Fatalf("short overflow: got %d, want -32768", s.Get())
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "∅"},
		{Nil(), "nil"},
		{NewLong(-7), "-7"},
		{NewText("abc"), "abc"},
		{NewBool(true), "true"},
		{NewLongList(1, 2), "[1 2]"},
	}
	for _, c := range cases {
		if got := ValueString(c.v); got != c.want {
			t.Errorf("ValueString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if !strings.Contains(NewDouble(0.5).String(), "0.5") {
		t.Error("DoubleValue string")
	}
}

func TestValuePropertyRoundTrips(t *testing.T) {
	long := func(x int64) bool {
		v := NewLong(x)
		return ValuesEqual(v, roundTripValue(t, v))
	}
	short := func(x int16) bool {
		v := NewShort(x)
		return ValuesEqual(v, roundTripValue(t, v))
	}
	text := func(s string) bool {
		v := NewText(s)
		return ValuesEqual(v, roundTripValue(t, v))
	}
	list := func(xs []int64) bool {
		v := &LongListValue{Longs: xs}
		return ValuesEqual(v, roundTripValue(t, v))
	}
	for _, f := range []any{long, short, text, list} {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	}
}
