package pregel

import (
	"testing"

	"graft/internal/anomaly"
	"graft/internal/dfs"
)

// TestTrafficMatrixSumsToMessagesSent is the profiler's core
// consistency invariant: at every superstep the lane-matrix snapshot
// must account for exactly the messages the superstep sent
// (pre-combine), and each row for exactly its worker's sends.
func TestTrafficMatrixSumsToMessagesSent(t *testing.T) {
	const workers = 4
	g := pathGraph(t, 96)
	l := &telemetryListener{}
	job := NewJob(g, ccCompute, Config{NumWorkers: workers, Listener: l})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerSuperstep) == 0 {
		t.Fatal("no supersteps recorded")
	}
	for _, ss := range stats.PerSuperstep {
		if len(ss.Traffic) != workers {
			t.Fatalf("superstep %d: traffic matrix has %d rows, want %d", ss.Superstep, len(ss.Traffic), workers)
		}
		var sum int64
		for w, row := range ss.Traffic {
			if len(row) != workers {
				t.Fatalf("superstep %d: row %d has %d columns", ss.Superstep, w, len(row))
			}
			var rowSum int64
			for _, n := range row {
				rowSum += n
			}
			if rowSum != ss.Workers[w].MessagesSent {
				t.Errorf("superstep %d: row %d sums to %d, worker sent %d",
					ss.Superstep, w, rowSum, ss.Workers[w].MessagesSent)
			}
			sum += rowSum
		}
		if sum != ss.MessagesSent {
			t.Errorf("superstep %d: traffic sums to %d, MessagesSent = %d", ss.Superstep, sum, ss.MessagesSent)
		}
	}
	// The listener saw the same matrices the stats kept.
	for i, ss := range l.steps {
		if len(ss.Traffic) != workers {
			t.Fatalf("listener step %d missing traffic matrix", i)
		}
	}
}

// sinkCompute floods vertex 0: every other vertex sends it one message
// per superstep, producing a receiver-column hotspot the detector must
// flag and the heatmap must show.
var sinkCompute = ComputeFunc(func(ctx Context, v *Vertex, msgs []Value) error {
	if v.ID() != 0 {
		ctx.SendMessage(0, NewLong(int64(v.ID())))
	}
	return nil
})

func TestTrafficHotspotDetectedOnSinkGraph(t *testing.T) {
	const workers, n = 4, 200
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), NewLong(0))
	}
	job := NewJob(g, sinkCompute, Config{NumWorkers: workers, MaxSupersteps: 4})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 hashes to partition 0, so its column must dominate the
	// heatmap in every superstep after the first.
	for _, ss := range stats.PerSuperstep[1:] {
		var col0, total int64
		for _, row := range ss.Traffic {
			for j, m := range row {
				total += m
				if j == 0 {
					col0 += m
				}
			}
		}
		if total == 0 || col0*2 < total {
			t.Errorf("superstep %d: column 0 carries %d of %d messages, expected a dominant share",
				ss.Superstep, col0, total)
		}
	}
	var hotspot *anomaly.Event
	for i := range stats.Anomalies {
		if stats.Anomalies[i].Kind == anomaly.KindTrafficHotspot {
			hotspot = &stats.Anomalies[i]
			break
		}
	}
	if hotspot == nil {
		t.Fatalf("no traffic-hotspot event in %v", stats.Anomalies)
	}
	if hotspot.Worker != 0 {
		t.Errorf("hotspot indicts worker %d, want partition 0 (vertex 0's home)", hotspot.Worker)
	}
}

func TestAnomalyWindowNegativeDisablesCapture(t *testing.T) {
	g := pathGraph(t, 64)
	job := NewJob(g, ccCompute, Config{NumWorkers: 4, AnomalyWindow: -1})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Anomalies) != 0 {
		t.Errorf("anomalies emitted with detection disabled: %v", stats.Anomalies)
	}
	for _, ss := range stats.PerSuperstep {
		if ss.Traffic != nil || ss.Anomalies != nil {
			t.Errorf("superstep %d: traffic/anomalies captured with AnomalyWindow<0", ss.Superstep)
		}
		if len(ss.Workers) == 0 {
			t.Errorf("superstep %d: regular telemetry must stay on", ss.Superstep)
		}
	}
}

func TestTrafficNilUnderMutexPlane(t *testing.T) {
	g := pathGraph(t, 64)
	job := NewJob(g, ccCompute, Config{NumWorkers: 4, MessagePlane: PlaneMutex})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range stats.PerSuperstep {
		if ss.Traffic != nil {
			t.Errorf("superstep %d: traffic matrix captured under PlaneMutex", ss.Superstep)
		}
	}
}

// TestTrafficConsistentAcrossRecovery makes sure the invariant holds on
// supersteps surrounding a confined log recovery, where inbox shards
// are rebuilt outside the normal lane path.
func TestTrafficConsistentAcrossRecovery(t *testing.T) {
	fs := dfs.NewMemFS()
	failed := false
	g := pathGraph(t, 96)
	job := NewJob(g, ccCompute, Config{
		NumWorkers:      4,
		CheckpointEvery: 2,
		CheckpointFS:    dfs.NewMemFS(),
		Recovery:        RecoveryLog,
		MsgLogFS:        fs,
		PartitionFailureAt: func(superstep int) []int {
			if superstep == 2 && !failed {
				failed = true
				return []int{1}
			}
			return nil
		},
	})
	stats, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !failed || stats.Recoveries != 1 {
		t.Fatalf("confined recovery did not run (recoveries=%d)", stats.Recoveries)
	}
	for _, ss := range stats.PerSuperstep {
		var sum int64
		for _, row := range ss.Traffic {
			for _, n := range row {
				sum += n
			}
		}
		if sum != ss.MessagesSent {
			t.Errorf("superstep %d: traffic sums to %d, MessagesSent = %d", ss.Superstep, sum, ss.MessagesSent)
		}
	}
}
