// Package segio implements the append-only segment+index container
// format introduced by the trace store and reused by the engine's
// sender-side outbox logs. A lane is a directory of segment files plus
// an index sidecar:
//
//	<dir>/<lane>/seg_000000.seg
//	<dir>/<lane>/seg_000001.seg
//	<dir>/<lane>.idx
//
// A segment file is the magic "GRFTSEG1" followed by framed records
// (uvarint payload length ++ payload). Segments are sealed — committed
// whole through the atomic-on-close file system — at a size threshold
// and at every flush, which is what makes the format crash-consistent:
// everything up to the last completed flush is durable.
//
// The index sidecar is the magic "GRFTIDX1" followed by, per sealed
// segment, its file name and one (kind, step, id, offset, length)
// entry per record, where offset/length locate the record's payload
// inside the segment file. The byte layout is identical to the trace
// store's original GRFTIDX1 encoding, so existing sidecars remain
// readable.
//
// The package is deliberately a leaf: it depends only on the standard
// library, so both the trace layer (which imports the engine) and the
// engine itself (which must not import the trace layer) can build on
// it.
package segio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// SegMagic prefixes every segment file.
	SegMagic = "GRFTSEG1"
	// IdxMagic prefixes every index sidecar.
	IdxMagic = "GRFTIDX1"
)

// ErrBadMagic is returned when a segment or index file does not start
// with its magic.
var ErrBadMagic = errors.New("segio: bad magic")

// ErrCorrupt is returned when an index or frame is malformed.
var ErrCorrupt = errors.New("segio: corrupt data")

// FS is the minimal file-system contract segio writes through. It is
// structurally identical to dfs.FileSystem and pregel.FileSystem, so
// any of their implementations satisfies it.
type FS interface {
	// Create opens a new file for writing, truncating any existing
	// file at the path. The file becomes visible atomically on Close.
	Create(path string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(path string) (io.ReadCloser, error)
	// List returns the paths of all files whose names start with
	// prefix, in lexicographic order.
	List(prefix string) ([]string, error)
	// Remove deletes a file.
	Remove(path string) error
}

// Entry locates one record's payload inside a segment file. Kind, Step
// and ID are caller-defined record coordinates (the trace store uses
// record kind / superstep / vertex ID; the outbox log uses frame kind /
// superstep / destination partition).
type Entry struct {
	Kind   uint8
	Step   int
	ID     int64
	Offset int // payload start within the segment file
	Length int // payload length
}

// SegmentIndex is the index of one sealed segment: its file name
// (relative to the writer's directory) and the entries in record order.
type SegmentIndex struct {
	Name    string
	Entries []Entry
}

// Writer owns one lane: it buffers the current segment in memory,
// seals it to a segment file when full or on Flush, and rewrites the
// lane's index sidecar. Not safe for concurrent use; each lane must
// have exactly one writing goroutine.
type Writer struct {
	fs      FS
	dir     string
	lane    string
	segSize int
	// onDrop, if non-nil, is called with the number of records
	// discarded when a segment cannot be committed.
	onDrop func(n int)

	hdr    [binary.MaxVarintLen64]byte
	buf    bytes.Buffer // current open segment, magic included
	cur    []Entry
	sealed []SegmentIndex
	segSeq int
	recs   int64
	dirty  bool // records or seals since the last index rewrite
}

// NewWriter creates a writer for one lane under dir. Segments are
// sealed when the open buffer reaches segSize (and on every Flush).
func NewWriter(fs FS, dir, lane string, segSize int, onDrop func(n int)) *Writer {
	w := &Writer{fs: fs, dir: dir, lane: lane, segSize: segSize, onDrop: onDrop}
	w.buf.WriteString(SegMagic)
	return w
}

// IndexPath returns the path of the lane's index sidecar.
func (w *Writer) IndexPath() string { return w.dir + "/" + w.lane + ".idx" }

// SegmentPath resolves a sealed segment's index-relative name (as in
// SegmentIndex.Name) to its full path.
func (w *Writer) SegmentPath(name string) string { return w.dir + "/" + name }

// Records returns how many records have been appended.
func (w *Writer) Records() int64 { return w.recs }

// Sealed returns the sealed segments in seal order. The slice and its
// entries are owned by the writer; callers must treat them as
// read-only and must not retain them across Prune.
func (w *Writer) Sealed() []SegmentIndex { return w.sealed }

// AppendRecord frames payload (uvarint length ++ payload) into the
// open segment and records an index entry with ent's Kind/Step/ID
// coordinates; Offset and Length are filled in by the writer. The
// segment is sealed once it passes the size threshold.
func (w *Writer) AppendRecord(payload []byte, ent Entry) error {
	n := binary.PutUvarint(w.hdr[:], uint64(len(payload)))
	ent.Offset = w.buf.Len() + n
	ent.Length = len(payload)
	w.buf.Write(w.hdr[:n])
	w.buf.Write(payload)
	w.cur = append(w.cur, ent)
	w.recs++
	w.dirty = true
	if w.buf.Len() >= w.segSize {
		return w.Seal()
	}
	return nil
}

// AppendFramed copies a batch of pre-framed records — frames laid out
// as by AppendRecord, entries with Offsets relative to the start of
// frames — into the open segment, then applies the size threshold.
func (w *Writer) AppendFramed(frames []byte, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	delta := w.buf.Len()
	w.buf.Write(frames)
	for _, ent := range entries {
		ent.Offset += delta
		w.cur = append(w.cur, ent)
	}
	w.recs += int64(len(entries))
	w.dirty = true
	if w.buf.Len() >= w.segSize {
		return w.Seal()
	}
	return nil
}

// Seal commits the open segment as its own file. Empty segments are
// skipped so flushes without records cost no file. A segment that
// cannot be committed is discarded — its records are reported to
// onDrop — so a persistently failing store can never grow the buffer
// without bound.
func (w *Writer) Seal() error {
	if len(w.cur) == 0 {
		return nil
	}
	name := fmt.Sprintf("%s/seg_%06d.seg", w.lane, w.segSeq)
	err := writeFile(w.fs, w.dir+"/"+name, w.buf.Bytes())
	if err != nil {
		if w.onDrop != nil {
			w.onDrop(len(w.cur))
		}
	} else {
		w.sealed = append(w.sealed, SegmentIndex{Name: name, Entries: w.cur})
		w.segSeq++
	}
	w.cur = nil
	w.buf.Reset()
	w.buf.WriteString(SegMagic)
	return err
}

// Flush seals the open segment and rewrites the lane's index sidecar.
// After Flush returns nil, every record appended so far is durable and
// indexed (or has been reported dropped).
func (w *Writer) Flush() error {
	if !w.dirty {
		return nil
	}
	err := w.Seal()
	if ierr := writeFile(w.fs, w.IndexPath(), EncodeIndex(w.sealed)); ierr != nil && err == nil {
		err = ierr
	}
	if err == nil {
		w.dirty = false
	}
	return err
}

// Prune drops sealed segments for which keep returns false: the index
// sidecar is rewritten first (so no live index references a removed
// file), then the segment files are deleted. Used by retention GC.
func (w *Writer) Prune(keep func(SegmentIndex) bool) error {
	kept := make([]SegmentIndex, 0, len(w.sealed))
	var drop []string
	for _, seg := range w.sealed {
		if keep(seg) {
			kept = append(kept, seg)
		} else {
			drop = append(drop, seg.Name)
		}
	}
	if len(drop) == 0 {
		return nil
	}
	w.sealed = kept
	if err := writeFile(w.fs, w.IndexPath(), EncodeIndex(w.sealed)); err != nil {
		return err
	}
	var firstErr error
	for _, name := range drop {
		if err := w.fs.Remove(w.dir + "/" + name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// EncodeIndex serializes sealed-segment indexes in the GRFTIDX1
// layout: the magic, a uvarint segment count, then per segment its
// length-prefixed name, a uvarint entry count and per entry the
// uvarint kind, uvarint step, zig-zag varint ID, uvarint offset and
// uvarint length.
func EncodeIndex(segs []SegmentIndex) []byte {
	b := []byte(IdxMagic)
	b = binary.AppendUvarint(b, uint64(len(segs)))
	for _, seg := range segs {
		b = binary.AppendUvarint(b, uint64(len(seg.Name)))
		b = append(b, seg.Name...)
		b = binary.AppendUvarint(b, uint64(len(seg.Entries)))
		for _, ent := range seg.Entries {
			b = binary.AppendUvarint(b, uint64(ent.Kind))
			b = binary.AppendUvarint(b, uint64(ent.Step))
			b = binary.AppendVarint(b, ent.ID)
			b = binary.AppendUvarint(b, uint64(ent.Offset))
			b = binary.AppendUvarint(b, uint64(ent.Length))
		}
	}
	return b
}

// DecodeIndex parses an index sidecar produced by EncodeIndex.
func DecodeIndex(raw []byte) ([]SegmentIndex, error) {
	if len(raw) < len(IdxMagic) || string(raw[:len(IdxMagic)]) != IdxMagic {
		return nil, ErrBadMagic
	}
	d := decoder{b: raw[len(IdxMagic):]}
	nSegs := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	segs := make([]SegmentIndex, 0, nSegs)
	for i := uint64(0); i < nSegs; i++ {
		seg := SegmentIndex{Name: d.str()}
		nEnts := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		seg.Entries = make([]Entry, 0, nEnts)
		for j := uint64(0); j < nEnts; j++ {
			seg.Entries = append(seg.Entries, Entry{
				Kind:   uint8(d.uvarint()),
				Step:   int(d.uvarint()),
				ID:     d.varint(),
				Offset: int(d.uvarint()),
				Length: int(d.uvarint()),
			})
		}
		if d.err != nil {
			return nil, d.err
		}
		segs = append(segs, seg)
	}
	return segs, d.err
}

// CheckSegment verifies a segment file's magic.
func CheckSegment(raw []byte) error {
	if len(raw) < len(SegMagic) || string(raw[:len(SegMagic)]) != SegMagic {
		return ErrBadMagic
	}
	return nil
}

// ReadFile reads the whole file at path through fs.
func ReadFile(fs FS, path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// writeFile writes data to path in one create/write/close cycle.
func writeFile(fs FS, path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// decoder is a minimal sticky-error varint reader matching the
// pregel.Decoder wire format.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w at offset %d", ErrCorrupt, d.off)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return x
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return x
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
