package core

import (
	"fmt"
	"runtime/debug"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// instrumentedMaster wraps the user's master computation, capturing
// its context every observed superstep (paper §3.4: "Graft
// automatically captures its context — just the aggregator values — in
// every superstep").
type instrumentedMaster struct {
	g    *Graft
	user pregel.MasterComputation
}

// Compute implements pregel.MasterComputation.
func (im *instrumentedMaster) Compute(ctx pregel.MasterContext) error {
	g := im.g
	if !g.cfg.observes(ctx.Superstep()) {
		return im.user.Compute(ctx)
	}

	before := snapshotAggregated(ctx)
	rec := &recordingMasterContext{MasterContext: ctx}
	var exc *trace.ExceptionInfo
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				stack := string(debug.Stack())
				exc = &trace.ExceptionInfo{Message: fmt.Sprint(p), Stack: stack}
				err = &PanicError{Value: p, Stack: stack}
			}
		}()
		return im.user.Compute(rec)
	}()
	if err != nil && exc == nil {
		exc = &trace.ExceptionInfo{Message: err.Error()}
	}

	cap := &trace.MasterCapture{
		Superstep:        ctx.Superstep(),
		NumVertices:      ctx.TotalNumVertices(),
		NumEdges:         ctx.TotalNumEdges(),
		AggregatedBefore: before,
		AggregatedAfter:  snapshotAggregated(ctx),
		Sets:             rec.sets,
		Halted:           rec.halted,
		Exception:        exc,
	}
	_ = g.masterSink.WriteMasterCapture(cap) // sink owns drop accounting
	return err
}

// snapshotAggregated clones every registered aggregator's current
// value.
func snapshotAggregated(ctx pregel.MasterContext) map[string]pregel.Value {
	names := ctx.AggregatedNames()
	m := make(map[string]pregel.Value, len(names))
	for _, name := range names {
		m[name] = pregel.CloneValue(ctx.GetAggregated(name))
	}
	return m
}

// recordingMasterContext remembers SetAggregated and HaltComputation
// calls so the master capture records the master's decisions.
type recordingMasterContext struct {
	pregel.MasterContext
	sets   []trace.AggSet
	halted bool
}

// SetAggregated implements pregel.MasterContext.
func (c *recordingMasterContext) SetAggregated(name string, val pregel.Value) {
	c.sets = append(c.sets, trace.AggSet{Name: name, Value: pregel.CloneValue(val)})
	c.MasterContext.SetAggregated(name, val)
}

// HaltComputation implements pregel.MasterContext.
func (c *recordingMasterContext) HaltComputation() {
	c.halted = true
	c.MasterContext.HaltComputation()
}
