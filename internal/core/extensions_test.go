package core

// Tests for the paper's §7 future-work extensions implemented here:
// destination-value-dependent message constraints, adjacency pair
// checking over traces, and (in repro) per-vertex suite generation.

import (
	"testing"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

func TestIncomingMessageConstraint(t *testing.T) {
	// Each vertex's value is its ID; the constraint demands that
	// received messages are strictly smaller than the receiver's
	// value. Vertices message their neighbors with their own ID, so a
	// violation occurs exactly when a higher-ID neighbor messages a
	// lower-ID vertex.
	comp := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
		if ctx.Superstep() == 0 {
			v.SetValue(pregel.NewLong(int64(v.ID())))
			ctx.SendMessageToAllEdges(v, pregel.NewLong(int64(v.ID())))
		}
		if ctx.Superstep() >= 1 {
			v.VoteToHalt()
		}
		return nil
	})
	alg := &algorithms.Algorithm{Name: "incoming", Compute: comp}
	g := pregel.NewGraph()
	for i := 0; i < 4; i++ {
		g.AddVertex(pregel.VertexID(i), pregel.NewLong(int64(i)))
	}
	// Path 0-1-2-3.
	for i := 0; i < 3; i++ {
		if err := g.AddUndirectedEdge(pregel.VertexID(i), pregel.VertexID(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	db, _, err := runDebugged(t, alg, g, pregel.Config{}, DebugConfig{
		IncomingMessageConstraint: func(msg, destValue pregel.Value, dst pregel.VertexID, superstep int) bool {
			m, mok := msg.(*pregel.LongValue)
			d, dok := destValue.(*pregel.LongValue)
			return !mok || !dok || m.Get() < d.Get()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// At superstep 1: vertex 0 receives 1 (violation), vertex 1
	// receives 0 (ok) and 2 (violation), vertex 2 receives 1 (ok) and
	// 3 (violation), vertex 3 receives 2 (ok).
	captured := db.CapturedVertexIDs()
	if len(captured) != 3 || captured[0] != 0 || captured[1] != 1 || captured[2] != 2 {
		t.Fatalf("captured = %v, want [0 1 2]", captured)
	}
	c := db.Capture(1, 1)
	if !c.Reasons.Has(trace.ReasonIncomingConstraint) {
		t.Errorf("reasons = %v", c.Reasons)
	}
	if len(c.Violations) != 1 || c.Violations[0].Kind != trace.IncomingMessageViolation {
		t.Fatalf("violations = %+v", c.Violations)
	}
	if c.Violations[0].SrcID != -1 || c.Violations[0].DstID != 1 {
		t.Errorf("violation endpoints = %+v", c.Violations[0])
	}
	if !pregel.ValuesEqual(c.Violations[0].Value, pregel.NewLong(2)) {
		t.Errorf("offending value = %v", c.Violations[0].Value)
	}
	// The M box counts incoming-message violations.
	if !db.StatusAt(1).MessageViolation {
		t.Error("M box not red")
	}
	// ValueBefore must be available: incoming constraints imply
	// dynamic constraint snapshotting.
	if c.ValueBefore == nil {
		t.Error("ValueBefore missing for constraint capture")
	}
}

func TestCheckAdjacentPairsFindsColorConflicts(t *testing.T) {
	// The §7 example constraint: "no two adjacent vertices should be
	// assigned the same color". Run the buggy GC with all-active
	// capture and check pairs post hoc over the trace.
	g := graphgen.RegularBipartite(200, 3)
	alg := algorithms.NewBuggyGraphColoring(42)
	db, _, err := runDebugged(t, alg, g, pregel.Config{}, DebugConfig{
		CaptureAllActive: true,
		MaxCaptures:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameColor := func(a, b *trace.VertexCapture) bool {
		av, aok := a.ValueAfter.(*algorithms.GCValue)
		bv, bok := b.ValueAfter.(*algorithms.GCValue)
		if !aok || !bok || av.State != algorithms.GCColored || bv.State != algorithms.GCColored {
			return true // only fully colored pairs are checkable
		}
		return av.Color != bv.Color
	}
	violations := trace.CheckAdjacentPairs(db, sameColor)
	if len(violations) == 0 {
		t.Fatal("buggy GC produced no adjacent same-color pairs in the trace")
	}
	for _, pv := range violations {
		ac := pv.A.ValueAfter.(*algorithms.GCValue).Color
		bc := pv.B.ValueAfter.(*algorithms.GCValue).Color
		if ac != bc {
			t.Errorf("reported pair (%d,%d) has colors %d vs %d", pv.A.ID, pv.B.ID, ac, bc)
		}
	}

	// The fixed algorithm yields no violations.
	g2 := graphgen.RegularBipartite(200, 3)
	db2, _, err := runDebugged(t, algorithms.NewGraphColoring(42), g2, pregel.Config{}, DebugConfig{
		CaptureAllActive: true,
		MaxCaptures:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := trace.CheckAdjacentPairs(db2, sameColor); len(bad) != 0 {
		t.Errorf("fixed GC flagged %d pairs", len(bad))
	}
}
