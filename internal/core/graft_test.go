package core

import (
	"errors"
	"strings"
	"testing"

	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// runDebugged runs alg over g with Graft attached and returns the
// loaded trace DB plus the session and job error.
func runDebugged(t *testing.T, alg *algorithms.Algorithm, g *pregel.Graph,
	cfg pregel.Config, dc DebugConfig) (trace.View, *Graft, error) {
	t.Helper()
	store := trace.NewStore(dfs.NewMemFS(), "traces")
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = 4
	}
	session, err := Attach(store, Options{
		JobID:      "test-job",
		Algorithm:  alg.Name,
		NumWorkers: cfg.NumWorkers,
	}, g, dc)
	if err != nil {
		t.Fatal(err)
	}
	// Wire the instrumented pieces the way the graft facade does.
	engCfg := cfg
	engCfg.Listener = session.Chain(cfg.Listener)
	engCfg.Master = session.InstrumentMaster(alg.Master)
	if engCfg.Combiner == nil {
		engCfg.Combiner = alg.Combiner
	}
	if engCfg.MaxSupersteps == 0 {
		engCfg.MaxSupersteps = alg.MaxSupersteps
	}
	job := pregel.NewJob(g, session.Instrument(alg.Compute), engCfg)
	for _, spec := range alg.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	_, runErr := job.Run()

	db, err := store.OpenReader("test-job")
	if err != nil {
		t.Fatal(err)
	}
	return db, session, runErr
}

func TestCaptureByID(t *testing.T) {
	g := graphgen.RegularBipartite(40, 3)
	db, session, err := runDebugged(t, algorithms.NewConnectedComponents(), g,
		pregel.Config{}, DebugConfig{CaptureIDs: []pregel.VertexID{2}, CaptureExceptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if session.Captures() == 0 {
		t.Fatal("no captures written")
	}
	ids := db.CapturedVertexIDs()
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("captured vertices = %v, want [2]", ids)
	}
	c := db.Capture(0, 2)
	if c == nil {
		t.Fatal("vertex 2 not captured at superstep 0")
	}
	if !c.Reasons.Has(trace.ReasonByID) {
		t.Errorf("reasons = %v, want by-id", c.Reasons)
	}
	// CC at superstep 0: value becomes own ID, sends to all 3 edges.
	if !pregel.ValuesEqual(c.ValueAfter, pregel.NewLong(2)) {
		t.Errorf("value after = %v", c.ValueAfter)
	}
	if len(c.Outgoing) != 3 {
		t.Errorf("outgoing = %d, want 3", len(c.Outgoing))
	}
	if len(c.Edges) != 3 || !c.EdgesPreCompute {
		t.Errorf("edges = %d preCompute=%v", len(c.Edges), c.EdgesPreCompute)
	}
	if !c.HaltedAfter {
		t.Error("CC vertex should have voted to halt")
	}
	// The job result must be recorded.
	if db.JobResult() == nil || db.JobResult().Error != "" || db.JobResult().Captures != session.Captures() {
		t.Errorf("job result = %+v", db.JobResult())
	}
}

func TestCaptureNeighbors(t *testing.T) {
	// Path 0-1-2-3: capturing 1 with neighbors adds 0 and 2.
	g := pregel.NewGraph()
	for i := 0; i < 4; i++ {
		g.AddVertex(pregel.VertexID(i), nil)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddUndirectedEdge(pregel.VertexID(i), pregel.VertexID(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	db, _, err := runDebugged(t, algorithms.NewConnectedComponents(), g, pregel.Config{},
		DebugConfig{CaptureIDs: []pregel.VertexID{1}, CaptureNeighbors: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := db.CapturedVertexIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("captured vertices = %v, want [0 1 2]", ids)
	}
	if c := db.Capture(0, 0); !c.Reasons.Has(trace.ReasonNeighbor) {
		t.Errorf("vertex 0 reasons = %v", c.Reasons)
	}
}

func TestRandomCaptureDeterministicAndSized(t *testing.T) {
	g := graphgen.RegularBipartite(100, 3)
	cfg := DebugConfig{NumRandomCaptures: 5, RandomSeed: 7}
	targets1 := selectTargets(g, &cfg)
	targets2 := selectTargets(graphgen.RegularBipartite(100, 3), &cfg)
	if len(targets1) != 5 {
		t.Fatalf("selected %d targets, want 5", len(targets1))
	}
	for id, r := range targets1 {
		if !r.Has(trace.ReasonRandom) {
			t.Errorf("vertex %d reason %v", id, r)
		}
		if targets2[id] != r {
			t.Errorf("selection not deterministic for seed")
		}
	}
	other := selectTargets(g, &DebugConfig{NumRandomCaptures: 5, RandomSeed: 8})
	same := 0
	for id := range targets1 {
		if _, ok := other[id]; ok {
			same++
		}
	}
	if same == 5 {
		t.Error("different seeds picked identical targets")
	}
}

func TestRandomCaptureMoreThanGraph(t *testing.T) {
	g := graphgen.RegularBipartite(8, 2)
	targets := selectTargets(g, &DebugConfig{NumRandomCaptures: 100, RandomSeed: 1})
	if int64(len(targets)) != g.NumVertices() {
		t.Fatalf("selected %d targets from %d vertices", len(targets), g.NumVertices())
	}
}

func TestMessageConstraintCapturesViolators(t *testing.T) {
	// The §4.2 scenario: 16-bit random walk overflows; the constraint
	// flags negative messages and Graft captures the senders.
	g := graphgen.WebGraph(2000, 5, 11)
	db, session, err := runDebugged(t, algorithms.NewRandomWalk16(9, 8), g, pregel.Config{},
		DebugConfig{MessageConstraint: algorithms.NonNegativeRWMessages, CaptureExceptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if session.Captures() == 0 {
		t.Fatal("overflow produced no captures; bug did not fire")
	}
	rows := db.AllViolations()
	if len(rows) == 0 {
		t.Fatal("no violation rows")
	}
	sawRed := false
	for _, s := range db.Supersteps() {
		st := db.StatusAt(s)
		if st.MessageViolation {
			sawRed = true
		}
		if st.VertexViolation || st.Exception {
			t.Errorf("unexpected V/E status at superstep %d: %+v", s, st)
		}
	}
	if !sawRed {
		t.Error("no superstep shows a red M box")
	}
	// Each violating capture records the offending negative value.
	for _, row := range rows {
		if row.Kind != "message" {
			t.Errorf("violation kind %q", row.Kind)
		}
		if !strings.HasPrefix(row.Detail, "-") {
			t.Errorf("violation detail %q does not look negative", row.Detail)
		}
		c := db.Capture(row.Superstep, row.VertexID)
		if c == nil || !c.Reasons.Has(trace.ReasonMessageConstraint) {
			t.Errorf("violator %d at superstep %d not captured properly", row.VertexID, row.Superstep)
		}
	}
}

func TestVertexValueConstraint(t *testing.T) {
	// Constraint: walker counts must be non-negative. The 16-bit bug
	// eventually makes some vertex value negative.
	g := graphgen.WebGraph(2000, 5, 11)
	db, _, err := runDebugged(t, algorithms.NewRandomWalk16(9, 8), g, pregel.Config{},
		DebugConfig{VertexValueConstraint: func(v pregel.Value, id pregel.VertexID, superstep int) bool {
			lv, ok := v.(*pregel.LongValue)
			return !ok || lv.Get() >= 0
		}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range db.Supersteps() {
		if db.StatusAt(s).VertexViolation {
			found = true
			for _, c := range db.CapturesAt(s) {
				if c.Reasons.Has(trace.ReasonVertexConstraint) &&
					c.ValueAfter.(*pregel.LongValue).Get() >= 0 {
					t.Errorf("captured non-violating value %v", c.ValueAfter)
				}
			}
		}
	}
	if !found {
		t.Error("vertex value violations never captured")
	}
}

func TestExceptionCapture(t *testing.T) {
	g := graphgen.RegularBipartite(20, 3)
	boom := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
		if v.ID() == 7 && ctx.Superstep() == 1 {
			panic("array index out of bounds (planted)")
		}
		if ctx.Superstep() >= 2 {
			v.VoteToHalt()
		}
		return nil
	})
	alg := &algorithms.Algorithm{Name: "boom", Compute: boom}
	db, session, err := runDebugged(t, alg, g, pregel.Config{}, DebugConfig{CaptureExceptions: true})
	if err == nil {
		t.Fatal("job should have failed")
	}
	var ce *pregel.ComputeError
	if !errors.As(err, &ce) || ce.VertexID != 7 || ce.Superstep != 1 {
		t.Fatalf("error = %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not preserved: %v", err)
	}
	if session.Captures() != 1 {
		t.Errorf("captures = %d, want 1", session.Captures())
	}
	c := db.Capture(1, 7)
	if c == nil {
		t.Fatal("failing vertex not captured")
	}
	if c.Exception == nil || !strings.Contains(c.Exception.Message, "planted") {
		t.Errorf("exception = %+v", c.Exception)
	}
	if c.Exception.Stack == "" {
		t.Error("no stack recorded")
	}
	if !db.StatusAt(1).Exception {
		t.Error("E box not red at superstep 1")
	}
	if db.JobResult() == nil || db.JobResult().Error == "" {
		t.Error("job.done should record the failure")
	}
}

func TestComputeErrorReturnCaptured(t *testing.T) {
	g := graphgen.RegularBipartite(10, 2)
	failing := pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
		if v.ID() == 3 {
			return errors.New("bad state")
		}
		v.VoteToHalt()
		return nil
	})
	alg := &algorithms.Algorithm{Name: "err", Compute: failing}
	db, _, err := runDebugged(t, alg, g, pregel.Config{}, DebugConfig{CaptureExceptions: true})
	if err == nil {
		t.Fatal("job should have failed")
	}
	c := db.Capture(0, 3)
	if c == nil || c.Exception == nil || c.Exception.Message != "bad state" {
		t.Fatalf("capture = %+v", c)
	}
}

func TestCaptureAllActiveWithSuperstepFilter(t *testing.T) {
	g := graphgen.RegularBipartite(30, 3)
	db, session, err := runDebugged(t, algorithms.NewRandomWalk(1, 6), g, pregel.Config{},
		DebugConfig{
			CaptureAllActive: true,
			SuperstepFilter:  func(s int) bool { return s >= 4 },
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Supersteps() {
		if s < 4 {
			t.Errorf("superstep %d observed despite filter", s)
		}
	}
	// Supersteps 4, 5, 6 observed; every vertex active in 4 and 5.
	if got := len(db.CapturesAt(4)); got != 30 {
		t.Errorf("captures at superstep 4 = %d, want 30", got)
	}
	if session.Captures() < 60 {
		t.Errorf("total captures = %d, want >= 60", session.Captures())
	}
	for _, c := range db.CapturesAt(4) {
		if !c.Reasons.Has(trace.ReasonAllActive) {
			t.Errorf("capture reasons = %v", c.Reasons)
		}
	}
}

func TestMaxCapturesSafetyNet(t *testing.T) {
	g := graphgen.RegularBipartite(50, 3)
	db, session, err := runDebugged(t, algorithms.NewRandomWalk(1, 10), g, pregel.Config{},
		DebugConfig{CaptureAllActive: true, MaxCaptures: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !session.LimitHit() {
		t.Error("limit not hit")
	}
	if session.Captures() != 25 {
		t.Errorf("captures = %d, want exactly 25", session.Captures())
	}
	if db.JobResult() == nil || !db.JobResult().CaptureLimitHit {
		t.Error("job.done should record the limit hit")
	}
	if db.TotalCaptures() != 25 {
		t.Errorf("trace has %d captures, want 25", db.TotalCaptures())
	}
}

func TestMasterCaptureAndSuperstepMeta(t *testing.T) {
	g := graphgen.RegularBipartite(60, 3)
	db, _, err := runDebugged(t, algorithms.NewGraphColoring(42), g, pregel.Config{},
		DebugConfig{CaptureIDs: []pregel.VertexID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if db.MaxSuperstep() < 3 {
		t.Fatalf("GC trace too short: %d supersteps", db.MaxSuperstep())
	}
	// Master captured every superstep with the phase transitions.
	m0 := db.MasterAt(0)
	if m0 == nil {
		t.Fatal("no master capture at superstep 0")
	}
	if len(m0.Sets) != 2 { // phase + color
		t.Errorf("superstep 0 master sets = %v", m0.Sets)
	}
	if got := m0.AggregatedAfter["phase"].(*pregel.TextValue).Get(); got != algorithms.GCPhaseSelection {
		t.Errorf("phase after master 0 = %q", got)
	}
	m1 := db.MasterAt(1)
	if got := m1.AggregatedBefore["phase"].(*pregel.TextValue).Get(); got != algorithms.GCPhaseSelection {
		t.Errorf("phase before master 1 = %q", got)
	}
	if got := m1.AggregatedAfter["phase"].(*pregel.TextValue).Get(); got != algorithms.GCPhaseConflictResolution {
		t.Errorf("phase after master 1 = %q", got)
	}
	// Superstep meta carries the post-master broadcast that vertices saw.
	meta1 := db.MetaAt(1)
	if meta1 == nil {
		t.Fatal("no superstep meta at 1")
	}
	if got := meta1.Aggregated["phase"].(*pregel.TextValue).Get(); got != algorithms.GCPhaseConflictResolution {
		t.Errorf("meta 1 phase = %q", got)
	}
	if meta1.NumVertices != 60 {
		t.Errorf("meta 1 vertices = %d", meta1.NumVertices)
	}
}

func TestFig2ConfigShape(t *testing.T) {
	dc := Fig2Config(3)
	if dc.NumRandomCaptures != 5 || !dc.CaptureNeighbors || dc.MessageConstraint == nil {
		t.Errorf("Fig2Config = %+v", dc)
	}
	if !dc.MessageConstraint(pregel.NewLong(5), 0, 1, 0) {
		t.Error("non-negative long rejected")
	}
	if dc.MessageConstraint(pregel.NewLong(-5), 0, 1, 0) {
		t.Error("negative long accepted")
	}
	if dc.MessageConstraint(pregel.NewShort(-1), 0, 1, 0) {
		t.Error("negative short accepted")
	}
	if !dc.MessageConstraint(pregel.NewText("x"), 0, 1, 0) {
		t.Error("non-numeric message should pass")
	}
}

func TestValidateRejectsNegativeRandom(t *testing.T) {
	dc := DebugConfig{NumRandomCaptures: -1}
	if err := dc.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSuperstepFilterSkipsInstrumentation(t *testing.T) {
	g := graphgen.RegularBipartite(20, 3)
	db, session, err := runDebugged(t, algorithms.NewConnectedComponents(), g, pregel.Config{},
		DebugConfig{CaptureIDs: []pregel.VertexID{0}, SuperstepFilter: func(s int) bool { return s == 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if session.Captures() != 1 {
		t.Errorf("captures = %d, want 1", session.Captures())
	}
	if db.Capture(0, 0) != nil {
		t.Error("superstep 0 captured despite filter")
	}
	if db.Capture(1, 0) == nil {
		t.Error("superstep 1 not captured")
	}
}
