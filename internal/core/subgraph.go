package core

import (
	"fmt"
	"runtime/debug"
	"time"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// InstrumentSubgraph wraps a subgraph computation with Graft's capture
// logic, the subgraph-mode counterpart of Instrument. When a captured
// subgraph computes, every member vertex gets a full VertexCapture —
// its incoming messages, the sends attributed to it, value before and
// after — so a subgraph step stays single-vertex debuggable, plus one
// SubgraphCapture carrying the component structure, the internal
// iteration count and the per-component value digest.
func (g *Graft) InstrumentSubgraph(comp pregel.SubgraphComputation) pregel.SubgraphComputation {
	return &instrumentedSubgraph{g: g, user: comp}
}

type instrumentedSubgraph struct {
	g    *Graft
	user pregel.SubgraphComputation
}

// CaptureNanos implements pregel.CaptureTimeReporter; see
// instrumentedComputation.CaptureNanos.
func (is *instrumentedSubgraph) CaptureNanos(w int) int64 {
	if w >= len(is.g.capNanos) {
		return 0
	}
	return is.g.capNanos[w].n
}

// ComputeSubgraph implements pregel.SubgraphComputation.
func (is *instrumentedSubgraph) ComputeSubgraph(ctx pregel.SubgraphContext, sg *pregel.Subgraph) error {
	g := is.g
	superstep := ctx.Superstep()
	if !g.cfg.observes(superstep) {
		return is.user.ComputeSubgraph(ctx, sg)
	}
	capStart := time.Now()

	members := sg.Members()
	anyStatic := false
	for _, v := range members {
		if g.reasons[v.ID()] != 0 {
			anyStatic = true
			break
		}
	}
	needPre := anyStatic || g.cfg.CaptureAllActive
	// Pre-compute snapshots follow the vertex-mode policy, but at
	// subgraph granularity: one member's static selection captures the
	// whole component, so every member's pre-state is snapshotted.
	var valuesBefore []pregel.Value
	if needPre || g.cfg.hasDynamicConstraints() {
		valuesBefore = make([]pregel.Value, len(members))
		for i, v := range members {
			valuesBefore[i] = pregel.CloneValue(v.Value())
		}
	}
	var edgesBefore [][]pregel.Edge
	if needPre {
		edgesBefore = make([][]pregel.Edge, len(members))
		for i, v := range members {
			edgesBefore[i] = cloneEdges(v.Edges())
		}
	}

	worker := ctx.WorkerID()
	if worker >= len(g.capNanos) {
		panic(fmt.Sprintf("core: job runs with at least %d workers but Attach was told %d; "+
			"Options.NumWorkers must match pregel.Config.NumWorkers", worker+1, len(g.capNanos)))
	}
	rsc := &recordingSubgraphContext{SubgraphContext: ctx, g: g}

	// Per-member incoming-message constraint (§7 extension), checked
	// against the member's value at delivery time.
	violations := map[pregel.VertexID][]trace.Violation{}
	if g.cfg.IncomingMessageConstraint != nil {
		for i, v := range members {
			for _, m := range sg.Messages(i) {
				if !g.cfg.IncomingMessageConstraint(m, v.Value(), v.ID(), superstep) {
					violations[v.ID()] = append(violations[v.ID()], trace.Violation{
						Kind:  trace.IncomingMessageViolation,
						SrcID: -1,
						DstID: v.ID(),
						Value: pregel.CloneValue(m),
					})
				}
			}
		}
	}

	capSlot := &g.capNanos[worker]
	capSlot.n += time.Since(capStart).Nanoseconds()

	var exc *trace.ExceptionInfo
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				stack := string(debug.Stack())
				exc = &trace.ExceptionInfo{Message: fmt.Sprint(p), Stack: stack}
				err = &PanicError{Value: p, Stack: stack}
			}
		}()
		return is.user.ComputeSubgraph(rsc, sg)
	}()
	capStart = time.Now()
	defer func() { capSlot.n += time.Since(capStart).Nanoseconds() }()
	if err != nil && exc == nil {
		exc = &trace.ExceptionInfo{Message: err.Error()}
	}

	// Fold send-time message violations into their senders' rows.
	for _, viol := range rsc.violations {
		violations[viol.SrcID] = append(violations[viol.SrcID], viol)
	}
	if err == nil && g.cfg.VertexValueConstraint != nil {
		for _, v := range members {
			if !g.cfg.VertexValueConstraint(v.Value(), v.ID(), superstep) {
				violations[v.ID()] = append(violations[v.ID()], trace.Violation{
					Kind:  trace.VertexValueViolation,
					SrcID: v.ID(),
					DstID: v.ID(),
					Value: pregel.CloneValue(v.Value()),
				})
			}
		}
	}

	// The subgraph computes as a unit, so it is captured as a unit: any
	// member's reason captures every member.
	var subReasons trace.Reason
	for _, v := range members {
		subReasons |= g.reasons[v.ID()]
	}
	if g.cfg.CaptureAllActive {
		subReasons |= trace.ReasonAllActive
	}
	for _, vs := range violations {
		for _, viol := range vs {
			switch viol.Kind {
			case trace.VertexValueViolation:
				subReasons |= trace.ReasonVertexConstraint
			case trace.MessageViolation:
				subReasons |= trace.ReasonMessageConstraint
			case trace.IncomingMessageViolation:
				subReasons |= trace.ReasonIncomingConstraint
			}
		}
	}
	if err != nil && g.cfg.CaptureExceptions {
		subReasons |= trace.ReasonException
	}
	if subReasons != 0 {
		g.captureSubgraph(ctx, sg, rsc, valuesBefore, edgesBefore, violations, exc)
	}
	return err
}

// captureSubgraph writes one VertexCapture per member plus the
// SubgraphCapture summary, respecting the MaxCaptures safety net
// (each member record counts toward the limit, like vertex mode).
func (g *Graft) captureSubgraph(ctx pregel.SubgraphContext, sg *pregel.Subgraph,
	rsc *recordingSubgraphContext, valuesBefore []pregel.Value, edgesBefore [][]pregel.Edge,
	violations map[pregel.VertexID][]trace.Violation, exc *trace.ExceptionInfo) {

	if g.ctx.Err() != nil {
		return
	}
	superstep, worker := ctx.Superstep(), ctx.WorkerID()
	members := sg.Members()
	sink := g.workerSinks[worker]
	memberIDs := make([]pregel.VertexID, len(members))

	for i, v := range members {
		memberIDs[i] = v.ID()

		if max := g.cfg.maxCaptures(); max >= 0 {
			if n := g.captures.Add(1); n > max {
				g.captures.Add(-1)
				g.limitHit.Store(true)
				continue
			}
		} else {
			g.captures.Add(1)
		}

		reasons := g.reasons[v.ID()]
		if g.cfg.CaptureAllActive {
			reasons |= trace.ReasonAllActive
		}
		for _, viol := range violations[v.ID()] {
			switch viol.Kind {
			case trace.VertexValueViolation:
				reasons |= trace.ReasonVertexConstraint
			case trace.MessageViolation:
				reasons |= trace.ReasonMessageConstraint
			case trace.IncomingMessageViolation:
				reasons |= trace.ReasonIncomingConstraint
			}
		}
		var memberExc *trace.ExceptionInfo
		if exc != nil && g.cfg.CaptureExceptions {
			reasons |= trace.ReasonException
			// The exception belongs to the whole ComputeSubgraph call; it
			// is recorded on the representative member (the subgraph ID).
			if v.ID() == sg.ID() {
				memberExc = exc
			}
		}
		if reasons == 0 {
			// Co-member of a captured component without its own trigger:
			// the closest existing category is neighborhood capture.
			reasons = trace.ReasonNeighbor
		}

		c := &trace.VertexCapture{
			Superstep:   superstep,
			Worker:      worker,
			ID:          v.ID(),
			Reasons:     reasons,
			ValueAfter:  pregel.CloneValue(v.Value()),
			HaltedAfter: rsc.halted,
			Violations:  violations[v.ID()],
			Exception:   memberExc,
		}
		if valuesBefore != nil {
			c.ValueBefore = valuesBefore[i]
		}
		if edgesBefore != nil {
			c.Edges = edgesBefore[i]
			c.EdgesPreCompute = true
		} else {
			c.Edges = cloneEdges(v.Edges())
		}
		in := sg.Messages(i)
		c.Incoming = make([]pregel.Value, len(in))
		for j, m := range in {
			c.Incoming[j] = pregel.CloneValue(m)
		}
		c.Outgoing = rsc.outgoing[v.ID()]
		_ = sink.WriteVertexCapture(c)
	}

	_ = sink.WriteSubgraphCapture(&trace.SubgraphCapture{
		Superstep:    superstep,
		Worker:       worker,
		ID:           sg.ID(),
		Members:      memberIDs,
		Iterations:   rsc.iterations,
		MessagesSent: rsc.sent,
		HaltedAfter:  rsc.halted,
		Digest:       sg.ValuesDigest(),
	})
}

// recordingSubgraphContext intercepts the subgraph context's sends (to
// check the message constraint and attribute outgoing messages to
// their sending member), halt votes, and iteration reports.
type recordingSubgraphContext struct {
	pregel.SubgraphContext
	g *Graft

	outgoing   map[pregel.VertexID][]trace.OutMsg
	violations []trace.Violation
	sent       int64
	iterations int64
	halted     bool
}

// SendMessage implements pregel.SubgraphContext. Like the vertex-mode
// recording context it clones at send time, before any combiner can
// mutate the value in the plane.
func (c *recordingSubgraphContext) SendMessage(from, to pregel.VertexID, msg pregel.Value) {
	g := c.g
	if g.cfg.MessageConstraint != nil &&
		!g.cfg.MessageConstraint(msg, from, to, c.SubgraphContext.Superstep()) {
		c.violations = append(c.violations, trace.Violation{
			Kind:  trace.MessageViolation,
			SrcID: from,
			DstID: to,
			Value: pregel.CloneValue(msg),
		})
	}
	if c.outgoing == nil {
		c.outgoing = map[pregel.VertexID][]trace.OutMsg{}
	}
	c.outgoing[from] = append(c.outgoing[from], trace.OutMsg{To: to, Value: pregel.CloneValue(msg)})
	c.sent++
	c.SubgraphContext.SendMessage(from, to, msg)
}

// VoteToHalt implements pregel.SubgraphContext.
func (c *recordingSubgraphContext) VoteToHalt() {
	c.halted = true
	c.SubgraphContext.VoteToHalt()
}

// AddIterations implements pregel.SubgraphContext.
func (c *recordingSubgraphContext) AddIterations(n int64) {
	c.iterations += n
	c.SubgraphContext.AddIterations(n)
}
