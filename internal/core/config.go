// Package core implements Graft's capture stage: the DebugConfig that
// selects which vertices to capture (paper §3.1), and the Instrumenter
// that wraps the user's vertex and master computations to intercept
// value updates, sent messages and exceptions, writing full vertex
// contexts to per-worker trace files.
//
// The Java Graft injects its wrapper with Javassist bytecode rewriting
// because Giraph instantiates the user's Computation class itself; the
// Go engine accepts any Computation value, so the Instrumenter here is
// a plain decorator — the intercepted events are the same.
package core

import (
	"fmt"

	"graft/internal/pregel"
)

// DefaultMaxCaptures is the safety-net capture limit used when
// DebugConfig.MaxCaptures is zero (paper §3.1: "an adjustable
// threshold, specifying a maximum number of captures, after which
// Graft stops capturing").
const DefaultMaxCaptures = 2_000_000

// DebugConfig selects which vertices Graft captures, mirroring the
// five categories of the paper's DebugConfig class:
//
//  1. vertices listed by ID (CaptureIDs), optionally with neighbors;
//  2. a random set of vertices (NumRandomCaptures), optionally with
//     neighbors;
//  3. vertices whose value violates VertexValueConstraint;
//  4. vertices that send a message violating MessageConstraint;
//  5. vertices that raise exceptions (CaptureExceptions).
//
// Alternatively CaptureAllActive captures every vertex that computes.
// SuperstepFilter limits in which supersteps any capturing happens.
type DebugConfig struct {
	// CaptureIDs lists vertices to capture in every observed
	// superstep.
	CaptureIDs []pregel.VertexID
	// CaptureNeighbors extends the by-ID and random capture sets with
	// the out-neighbors of each selected vertex.
	CaptureNeighbors bool
	// NumRandomCaptures selects this many vertices uniformly at random
	// (seeded by RandomSeed) when instrumentation attaches.
	NumRandomCaptures int
	// RandomSeed seeds the random selection, for reproducible runs.
	RandomSeed int64
	// CaptureAllActive captures every vertex that computes in an
	// observed superstep. Combine with SuperstepFilter to bound the
	// volume (the §4.3 scenario captures all active vertices after
	// superstep 500).
	CaptureAllActive bool
	// SuperstepFilter limits capturing to supersteps for which it
	// returns true; nil observes every superstep (the paper default).
	SuperstepFilter func(superstep int) bool
	// VertexValueConstraint returns false when a vertex value is
	// invalid; the vertex is then captured with a violation record.
	// Checked after the vertex computes. nil disables the check.
	VertexValueConstraint func(value pregel.Value, id pregel.VertexID, superstep int) bool
	// MessageConstraint returns false when a sent message value is
	// invalid; the sender is then captured with a violation record.
	// Checked at every send. nil disables the check.
	MessageConstraint func(msg pregel.Value, src, dst pregel.VertexID, superstep int) bool
	// IncomingMessageConstraint returns false when a received message
	// is invalid *given the receiving vertex's value* — the
	// destination-value-dependent message constraints the paper lists
	// as future work (§7). It is checked at delivery, where the
	// destination value is known (pre-compute); violations capture the
	// receiver. nil disables the check.
	IncomingMessageConstraint func(msg pregel.Value, destValue pregel.Value, dst pregel.VertexID, superstep int) bool
	// CaptureExceptions captures vertices whose compute panics or
	// returns an error. (The failure still aborts the job after being
	// captured, as in Giraph.)
	CaptureExceptions bool
	// MaxCaptures is the safety-net limit: once this many captures are
	// written, Graft stops capturing. 0 means DefaultMaxCaptures; a
	// negative value disables the limit.
	MaxCaptures int64
}

// Fig2Config reproduces the example DebugConfig of Figure 2 of the
// paper: capture 5 random vertices and their neighbors, and every
// vertex that sends a negative LongValue message, across all
// supersteps.
func Fig2Config(seed int64) DebugConfig {
	return DebugConfig{
		NumRandomCaptures: 5,
		CaptureNeighbors:  true,
		RandomSeed:        seed,
		CaptureExceptions: true,
		MessageConstraint: NonNegativeMessages,
	}
}

// NonNegativeMessages is the Figure 2 message constraint: numeric
// message values must be non-negative. It understands the builtin
// numeric scalars and any message type exposing a Count() int64 view
// (such as the random walk's counter messages); other types pass.
func NonNegativeMessages(msg pregel.Value, src, dst pregel.VertexID, superstep int) bool {
	switch v := msg.(type) {
	case *pregel.LongValue:
		return v.Get() >= 0
	case *pregel.ShortValue:
		return v.Get() >= 0
	case *pregel.IntValue:
		return v.Get() >= 0
	case *pregel.DoubleValue:
		return v.Get() >= 0
	case interface{ Count() int64 }:
		return v.Count() >= 0
	}
	return true
}

// maxCaptures resolves the effective capture limit; negative means
// unlimited.
func (c *DebugConfig) maxCaptures() int64 {
	if c.MaxCaptures == 0 {
		return DefaultMaxCaptures
	}
	if c.MaxCaptures < 0 {
		return -1
	}
	return c.MaxCaptures
}

// hasDynamicConstraints reports whether any per-vertex constraint is
// configured; the instrumenter then snapshots value-before for every
// vertex so a constraint-triggered capture has complete context.
func (c *DebugConfig) hasDynamicConstraints() bool {
	return c.VertexValueConstraint != nil || c.MessageConstraint != nil ||
		c.IncomingMessageConstraint != nil
}

// observes reports whether capturing applies to the given superstep.
func (c *DebugConfig) observes(superstep int) bool {
	return c.SuperstepFilter == nil || c.SuperstepFilter(superstep)
}

// Validate rejects configurations that cannot work.
func (c *DebugConfig) Validate() error {
	if c.NumRandomCaptures < 0 {
		return fmt.Errorf("core: NumRandomCaptures = %d", c.NumRandomCaptures)
	}
	return nil
}

// PanicError is how a recovered panic from user compute code
// propagates after Graft captures the failing vertex's context. The
// engine wraps it in a pregel.ComputeError identifying the vertex and
// superstep.
type PanicError struct {
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}
