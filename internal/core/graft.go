package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"graft/internal/pregel"
	"graft/internal/trace"
)

// Graft is one attached debugging session: it selects capture targets,
// instruments the computations, listens to the job and writes trace
// files. Attach it to exactly one job run.
//
// Wiring (the root graft package bundles these steps):
//
//	g, _ := core.Attach(store, opts, graph, debugConfig)
//	comp = g.Instrument(comp)
//	cfg.Master = g.InstrumentMaster(cfg.Master)
//	cfg.Listener = g // or g.Chain(existing)
type Graft struct {
	cfg   DebugConfig
	jobID string
	store *trace.Store
	sink  trace.Sink
	// workerSinks/masterSink cache the per-lane handles so the capture
	// hot path is one slice load away from the queue.
	workerSinks []trace.RecordSink
	masterSink  trace.RecordSink
	reasons     map[pregel.VertexID]trace.Reason
	// rcs holds one reusable recording context per worker: a worker
	// executes its vertices sequentially, so per-compute-call state can
	// be recycled instead of allocated, keeping the instrumentation
	// overhead near the paper's.
	rcs []recordingContext
	// capNanos accumulates per-worker time spent in capture
	// instrumentation. Slots are cache-line padded: each worker writes
	// only its own, the engine reads it at the barrier
	// (pregel.CaptureTimeReporter).
	capNanos []paddedNanos

	captures atomic.Int64
	limitHit atomic.Bool

	writeMu  sync.Mutex // serializes error recording only
	writeErr error

	inner pregel.JobListener
	start time.Time
	ctx   context.Context
}

// Options identifies the job being debugged.
type Options struct {
	// JobID names the trace directory; must be unique per run.
	JobID string
	// Algorithm is a human-readable computation name for the GUI.
	Algorithm string
	// Description optionally describes the run (dataset, parameters).
	Description string
	// NumWorkers must match the pregel.Config the job will run with.
	NumWorkers int
	// ComputeMode records how the job dispatches compute ("vertex" or
	// "subgraph"); it lands in the trace manifest so `graft repro`
	// generates the matching harness. Empty means vertex.
	ComputeMode string
	// Trace configures the capture pipeline (trace.WithSegmentSize,
	// trace.WithBackpressure, trace.WithQueueCapacity,
	// trace.WithSynchronous). The default is the asynchronous pipeline
	// with Block backpressure.
	Trace []trace.Option
	// Context, when non-nil, bounds the session: once canceled, new
	// capture records are skipped instead of enqueued, so a canceled
	// job's compute goroutines never block on a Block-policy capture
	// queue while draining toward the shutdown barrier.
	Context context.Context
}

// Attach creates a Graft session: it validates the DebugConfig,
// selects the static capture targets from the graph (by-ID, random,
// neighbors), writes the job manifest and opens the trace files.
func Attach(store *trace.Store, opts Options, graph *pregel.Graph, cfg DebugConfig) (*Graft, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.NumWorkers <= 0 {
		opts.NumWorkers = pregel.DefaultNumWorkers
	}
	g := &Graft{
		cfg:      cfg,
		jobID:    opts.JobID,
		store:    store,
		reasons:  selectTargets(graph, &cfg),
		rcs:      make([]recordingContext, opts.NumWorkers),
		capNanos: make([]paddedNanos, opts.NumWorkers),
		start:    time.Now(),
		ctx:      opts.Context,
	}
	if g.ctx == nil {
		g.ctx = context.Background()
	}
	sink, err := store.NewSink(trace.JobMeta{
		JobID:       opts.JobID,
		Algorithm:   opts.Algorithm,
		Description: opts.Description,
		NumWorkers:  opts.NumWorkers,
		NumVertices: graph.NumVertices(),
		NumEdges:    graph.NumEdges(),
		ComputeMode: opts.ComputeMode,
	}, opts.Trace...)
	if err != nil {
		return nil, err
	}
	g.sink = sink
	g.workerSinks = make([]trace.RecordSink, opts.NumWorkers)
	for i := range g.workerSinks {
		g.workerSinks[i] = sink.WorkerSink(i)
	}
	g.masterSink = sink.MasterSink()
	return g, nil
}

// selectTargets computes the static capture set: explicit IDs, the
// seeded random sample, and (optionally) the out-neighbors of both.
func selectTargets(graph *pregel.Graph, cfg *DebugConfig) map[pregel.VertexID]trace.Reason {
	m := make(map[pregel.VertexID]trace.Reason)
	for _, id := range cfg.CaptureIDs {
		m[id] |= trace.ReasonByID
	}
	if cfg.NumRandomCaptures > 0 {
		ids := graph.VertexIDs()
		rng := rand.New(rand.NewSource(cfg.RandomSeed))
		k := cfg.NumRandomCaptures
		if k > len(ids) {
			k = len(ids)
		}
		// Partial Fisher-Yates: the first k positions become the sample.
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(ids)-i)
			ids[i], ids[j] = ids[j], ids[i]
			m[ids[i]] |= trace.ReasonRandom
		}
	}
	if cfg.CaptureNeighbors {
		var targets []pregel.VertexID
		for id, r := range m {
			if r.Has(trace.ReasonByID) || r.Has(trace.ReasonRandom) {
				targets = append(targets, id)
			}
		}
		for _, id := range targets {
			v := graph.Vertex(id)
			if v == nil {
				continue
			}
			for _, e := range v.Edges() {
				m[e.Target] |= trace.ReasonNeighbor
			}
		}
	}
	return m
}

// JobID returns the session's job ID.
func (g *Graft) JobID() string { return g.jobID }

// Captures returns the number of capture records written so far.
func (g *Graft) Captures() int64 { return g.captures.Load() }

// LimitHit reports whether the MaxCaptures safety net engaged.
func (g *Graft) LimitHit() bool { return g.limitHit.Load() }

// Targets returns the static capture set with selection reasons.
func (g *Graft) Targets() map[pregel.VertexID]trace.Reason {
	out := make(map[pregel.VertexID]trace.Reason, len(g.reasons))
	for id, r := range g.reasons {
		out[id] = r
	}
	return out
}

// Err returns the first trace-write failure, if any. Write failures do
// not abort the debugged job; they surface here and in job.done.
func (g *Graft) Err() error {
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	return g.writeErr
}

func (g *Graft) recordWriteErr(err error) {
	g.writeMu.Lock()
	if g.writeErr == nil {
		g.writeErr = err
	}
	g.writeMu.Unlock()
}

// DroppedRecords returns how many trace records were discarded:
// backpressure drops under the Drop policy plus segments lost to
// storage failure. Trace loss degrades the capture but never aborts
// the debugged job — the paper's stance. Dropped records are counted
// here and in job.done; they are deliberately NOT folded into Err():
// a drop is expected degradation, a write error is a structural
// failure, and conflating the two (the old recordDropped double-count)
// made every degraded run look broken.
func (g *Graft) DroppedRecords() int64 { return g.sink.DroppedRecords() }

// FaultStats returns the trace store's resilience counters (retries,
// fallbacks, injected faults) plus the records this session dropped.
func (g *Graft) FaultStats() pregel.FaultStats {
	var s pregel.FaultStats
	if p, ok := g.store.FS.(pregel.FaultStatsProvider); ok {
		s = p.FaultStats()
	}
	s.DroppedRecords += g.sink.DroppedRecords()
	return s
}

// BarrierFlush implements pregel.BarrierFlusher: the engine calls it
// at every superstep barrier to drain the capture queues and commit
// the records of the finished superstep. Flush failures are recorded
// but never abort the debugged job.
func (g *Graft) BarrierFlush(superstep int) error {
	if err := g.sink.BarrierFlush(superstep); err != nil {
		g.recordWriteErr(err)
	}
	return nil
}

// CaptureQueueDepth implements pregel.CaptureQueueReporter.
func (g *Graft) CaptureQueueDepth() int { return g.sink.QueueDepth() }

// Chain makes Graft forward listener callbacks to next, so callers can
// keep their own JobListener while debugging.
func (g *Graft) Chain(next pregel.JobListener) *Graft {
	g.inner = next
	return g
}

// Instrument wraps the user computation with Graft's capture logic:
// the Go equivalent of the paper's Javassist-based Instrumenter.
func (g *Graft) Instrument(comp pregel.Computation) pregel.Computation {
	return &instrumentedComputation{g: g, user: comp}
}

// InstrumentMaster wraps a master computation so its context
// (aggregator values before/after, Set calls, halt decisions) is
// captured every observed superstep. A nil master stays nil.
func (g *Graft) InstrumentMaster(m pregel.MasterComputation) pregel.MasterComputation {
	if m == nil {
		return nil
	}
	return &instrumentedMaster{g: g, user: m}
}

// JobStarted implements pregel.JobListener.
func (g *Graft) JobStarted(info pregel.JobInfo) {
	if g.inner != nil {
		g.inner.JobStarted(info)
	}
}

// SuperstepStarted implements pregel.JobListener: it records the
// superstep's global data (totals + aggregator broadcast) that every
// vertex capture of the superstep shares.
func (g *Graft) SuperstepStarted(superstep int, info pregel.SuperstepInfo) {
	if g.cfg.observes(superstep) {
		// Drop accounting for failed writes happens inside the sink;
		// a synchronous-mode error is already counted there too.
		_ = g.masterSink.WriteSuperstepMeta(&trace.SuperstepMeta{
			Superstep:   superstep,
			NumVertices: info.NumVertices,
			NumEdges:    info.NumEdges,
			Aggregated:  info.Aggregated,
		})
	}
	if g.inner != nil {
		g.inner.SuperstepStarted(superstep, info)
	}
}

// SuperstepFinished implements pregel.JobListener.
func (g *Graft) SuperstepFinished(superstep int, stats pregel.SuperstepStats) {
	if g.inner != nil {
		g.inner.SuperstepFinished(superstep, stats)
	}
}

// JobFinished implements pregel.JobListener: it closes every trace
// file and writes job.done, including the trace store's resilience
// counters, and folds those counters into the engine's Stats so
// callers see one combined FaultStats.
func (g *Graft) JobFinished(stats *pregel.Stats, err error) {
	// Close (commit) the trace files first: fallback decisions are made
	// at commit time, and job.done must reflect them.
	if cerr := g.sink.CloseFiles(); cerr != nil {
		g.recordWriteErr(cerr)
	}
	if serr := g.sink.Err(); serr != nil {
		g.recordWriteErr(serr)
	}
	res := trace.JobResult{
		Captures:        g.captures.Load(),
		CaptureLimitHit: g.limitHit.Load(),
		RuntimeMillis:   time.Since(g.start).Milliseconds(),
		DroppedRecords:  g.sink.DroppedRecords(),
	}
	if stats != nil {
		res.Supersteps = stats.Supersteps
		res.Reason = stats.Reason.String()
	}
	if err != nil {
		res.Error = err.Error()
	}
	if g.writeErr != nil && res.Error == "" {
		res.Error = fmt.Sprintf("trace write: %v", g.writeErr)
	}
	if d, ok := g.store.FS.(interface{ DegradedPaths() []string }); ok {
		res.StorageDegraded = d.DegradedPaths()
	}
	if p, ok := g.store.FS.(pregel.FaultStatsProvider); ok {
		res.StorageRetries = p.FaultStats().Retries
	}
	if stats != nil {
		stats.Faults.Add(g.FaultStats())
	}
	if ferr := g.sink.Finish(res); ferr != nil {
		g.recordWriteErr(ferr)
	}
	if g.inner != nil {
		g.inner.JobFinished(stats, err)
	}
}

// paddedNanos is an int64 nanosecond counter padded to its own cache
// line, so adjacent workers' capture-time accrual never false-shares.
type paddedNanos struct {
	n int64
	_ [120]byte
}

// instrumentedComputation is the wrapper the Instrumenter installs
// around the user's Computation (paper §3.1): it calls the original
// compute with a recording context, then decides whether to capture.
type instrumentedComputation struct {
	g    *Graft
	user pregel.Computation
}

// CaptureNanos implements pregel.CaptureTimeReporter: cumulative time
// worker w spent in Graft's capture instrumentation. Each worker
// updates only its own slot, and the engine reads it from the same
// goroutine around the worker's compute loop, so plain loads suffice.
func (ic *instrumentedComputation) CaptureNanos(w int) int64 {
	if w >= len(ic.g.capNanos) {
		return 0
	}
	return ic.g.capNanos[w].n
}

// Compute implements pregel.Computation.
func (ic *instrumentedComputation) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	g := ic.g
	superstep := ctx.Superstep()
	if !g.cfg.observes(superstep) {
		return ic.user.Compute(ctx, v, msgs)
	}
	capStart := time.Now()

	staticReason := g.reasons[v.ID()]
	needPre := staticReason != 0 || g.cfg.CaptureAllActive
	// The pre-compute value is snapshotted only when a capture might
	// need it: for statically selected vertices, capture-all-active,
	// and whenever constraints could trigger a capture of any vertex.
	// Exception-triggered captures of other vertices cannot be
	// predicted, so — like the Java Graft, which logs the context only
	// when compute finishes — their ValueBefore is unavailable (nil)
	// and replay starts from the value at capture time.
	var valueBefore pregel.Value
	if needPre || g.cfg.hasDynamicConstraints() {
		valueBefore = pregel.CloneValue(v.Value())
	}
	var edgesBefore []pregel.Edge
	if needPre {
		edgesBefore = cloneEdges(v.Edges())
	}

	worker := ctx.WorkerID()
	if worker >= len(g.rcs) {
		panic(fmt.Sprintf("core: job runs with at least %d workers but Attach was told %d; "+
			"Options.NumWorkers must match pregel.Config.NumWorkers", worker+1, len(g.rcs)))
	}
	rec := &g.rcs[worker]
	rec.reset(ctx, g, v)

	// The §7 extension: message constraints that depend on the value
	// of the destination vertex, checked at delivery time where that
	// value is known.
	sawIncomingViolation := false
	if g.cfg.IncomingMessageConstraint != nil {
		for _, m := range msgs {
			if !g.cfg.IncomingMessageConstraint(m, v.Value(), v.ID(), superstep) {
				sawIncomingViolation = true
				rec.violations = append(rec.violations, trace.Violation{
					Kind:  trace.IncomingMessageViolation,
					SrcID: -1,
					DstID: v.ID(),
					Value: pregel.CloneValue(m),
				})
			}
		}
	}

	// Attribute instrumentation time (snapshotting, constraint checks,
	// capture writes) to this worker's slot, excluding the user compute
	// itself, so the engine can report capture overhead per superstep.
	capSlot := &g.capNanos[worker]
	capSlot.n += time.Since(capStart).Nanoseconds()

	var exc *trace.ExceptionInfo
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				stack := string(debug.Stack())
				exc = &trace.ExceptionInfo{Message: fmt.Sprint(p), Stack: stack}
				err = &PanicError{Value: p, Stack: stack}
			}
		}()
		return ic.user.Compute(rec, v, msgs)
	}()
	capStart = time.Now()
	defer func() { capSlot.n += time.Since(capStart).Nanoseconds() }()
	if err != nil && exc == nil {
		exc = &trace.ExceptionInfo{Message: err.Error()}
	}

	reasons := staticReason
	if g.cfg.CaptureAllActive {
		reasons |= trace.ReasonAllActive
	}
	if err == nil && g.cfg.VertexValueConstraint != nil &&
		!g.cfg.VertexValueConstraint(v.Value(), v.ID(), superstep) {
		reasons |= trace.ReasonVertexConstraint
		rec.violations = append(rec.violations, trace.Violation{
			Kind:  trace.VertexValueViolation,
			SrcID: v.ID(),
			DstID: v.ID(),
			Value: pregel.CloneValue(v.Value()),
		})
	}
	if rec.sawMsgViolation {
		reasons |= trace.ReasonMessageConstraint
	}
	if sawIncomingViolation {
		reasons |= trace.ReasonIncomingConstraint
	}
	if err != nil && g.cfg.CaptureExceptions {
		reasons |= trace.ReasonException
	}
	if reasons != 0 {
		g.capture(ctx, v, msgs, rec, reasons, valueBefore, edgesBefore, exc)
	}
	return err
}

// capture writes one vertex capture record, respecting the MaxCaptures
// safety net. Values are deep-copied here — only for vertices that are
// actually captured — so the record is immune to later mutation.
func (g *Graft) capture(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value,
	rec *recordingContext, reasons trace.Reason,
	valueBefore pregel.Value, edgesBefore []pregel.Edge, exc *trace.ExceptionInfo) {

	// A canceled job is shutting down at the next barrier; its remaining
	// computes still run (barrier consistency) but their captures would
	// record a superstep that will never fold, and Block backpressure
	// could stall the drain. Skip them.
	if g.ctx.Err() != nil {
		return
	}

	if max := g.cfg.maxCaptures(); max >= 0 {
		if n := g.captures.Add(1); n > max {
			g.captures.Add(-1)
			g.limitHit.Store(true)
			return
		}
	} else {
		g.captures.Add(1)
	}

	c := &trace.VertexCapture{
		Superstep:   ctx.Superstep(),
		Worker:      ctx.WorkerID(),
		ID:          v.ID(),
		Reasons:     reasons,
		ValueBefore: valueBefore,
		ValueAfter:  pregel.CloneValue(v.Value()),
		HaltedAfter: v.Halted(),
		Violations:  rec.violations,
		Exception:   exc,
	}
	if edgesBefore != nil {
		c.Edges = edgesBefore
		c.EdgesPreCompute = true
	} else {
		c.Edges = cloneEdges(v.Edges())
	}
	c.Incoming = make([]pregel.Value, len(msgs))
	for i, m := range msgs {
		c.Incoming[i] = pregel.CloneValue(m)
	}
	// Values in rec.outgoing are already private clones (made at send
	// time); only the slice header is reused across vertices.
	c.Outgoing = make([]trace.OutMsg, len(rec.outgoing))
	copy(c.Outgoing, rec.outgoing)
	// The sink owns drop accounting: Drop-policy discards and failed
	// segment commits are counted there, without poisoning Err().
	_ = g.workerSinks[ctx.WorkerID()].WriteVertexCapture(c)
}

func cloneEdges(edges []pregel.Edge) []pregel.Edge {
	out := make([]pregel.Edge, len(edges))
	for i, e := range edges {
		out[i] = pregel.Edge{Target: e.Target, Value: pregel.CloneValue(e.Value)}
	}
	return out
}

// recordingContext intercepts message sends to check the message
// constraint and to remember what a captured vertex sent. Instances
// are recycled per worker; reset prepares one for the next vertex.
type recordingContext struct {
	pregel.Context
	g *Graft
	v *pregel.Vertex

	outgoing        []trace.OutMsg
	violations      []trace.Violation
	sawMsgViolation bool
}

func (c *recordingContext) reset(ctx pregel.Context, g *Graft, v *pregel.Vertex) {
	c.Context, c.g, c.v = ctx, g, v
	c.outgoing = c.outgoing[:0]
	c.violations = nil // retained by the capture record, so never reused
	c.sawMsgViolation = false
}

// SendMessage implements pregel.Context.
func (c *recordingContext) SendMessage(to pregel.VertexID, msg pregel.Value) {
	g := c.g
	if g.cfg.MessageConstraint != nil &&
		!g.cfg.MessageConstraint(msg, c.v.ID(), to, c.Context.Superstep()) {
		c.sawMsgViolation = true
		c.violations = append(c.violations, trace.Violation{
			Kind:  trace.MessageViolation,
			SrcID: c.v.ID(),
			DstID: to,
			Value: pregel.CloneValue(msg),
		})
	}
	// The record must clone at send time: once msg reaches the plane a
	// combiner may mutate it in place (sender-side combining folds later
	// sends into stored entries during this same compute call), which
	// would retroactively rewrite the recorded value.
	c.outgoing = append(c.outgoing, trace.OutMsg{To: to, Value: pregel.CloneValue(msg)})
	c.Context.SendMessage(to, msg)
}

// SendMessageToAllEdges implements pregel.Context, routing every copy
// through the recording SendMessage. The original is sent on the last
// edge for the same reason as the engine's own implementation: the
// plane owns a Value once sent and may mutate it, so cloning msg after
// handing it off would copy combiner mutations into later recipients.
func (c *recordingContext) SendMessageToAllEdges(v *pregel.Vertex, msg pregel.Value) {
	edges := v.Edges()
	last := len(edges) - 1
	for i, e := range edges {
		m := msg
		if i < last {
			m = msg.Clone()
		}
		c.SendMessage(e.Target, m)
	}
}
