package servebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"graft"
	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/harness"
	"graft/internal/trace"
)

// Serve benchmark geometry. The jobs are debugged PageRank runs whose
// trace segments land on a store charging ServeBenchStoreLatency per
// file-system round trip — the regime `graft serve` exists for, where
// a job's wall time is dominated by trace I/O against the shared DFS
// and concurrent jobs overlap those waits. One worker per job keeps
// the comparison honest on small machines: the sequential session is
// not starved of CPU, it is starved of overlap.
const (
	ServeBenchJobs         = 4
	ServeBenchWorkers      = 1
	ServeBenchSupersteps   = 8
	ServeBenchStoreLatency = 2 * time.Millisecond
	ServeBenchSegmentSize  = 4 << 10
)

// ServeBench is the one-row result behind `graft-bench -serve`: the
// same N debugged jobs run through a Session once with one concurrency
// slot (the old graft.Run regime, jobs back to back) and once with N
// slots (the `graft serve` regime), against equally slow stores.
type ServeBench struct {
	Jobs       int   `json:"jobs"`
	Workers    int   `json:"workers_per_job"`
	Supersteps int   `json:"supersteps"`
	Vertices   int   `json:"vertices"`
	Reps       int   `json:"reps"`
	LatencyNS  int64 `json:"store_latency_ns"`
	// SequentialNanos / ConcurrentNanos are each mode's fastest
	// repetition of the whole batch, submit of the first job to Wait
	// of the last.
	SequentialNanos int64 `json:"sequential_ns"`
	ConcurrentNanos int64 `json:"concurrent_ns"`
	// SequentialJobsPerSec / ConcurrentJobsPerSec are the aggregate
	// throughputs those times imply.
	SequentialJobsPerSec float64 `json:"sequential_jobs_per_sec"`
	ConcurrentJobsPerSec float64 `json:"concurrent_jobs_per_sec"`
	// Speedup is sequential/concurrent aggregate throughput: >1 means
	// the shared session amortized the store latency.
	Speedup float64 `json:"speedup"`
	// DigestsMatch reports that every job produced the same trace
	// digest in both modes — concurrency changed the schedule, not
	// the traces.
	DigestsMatch bool `json:"digests_match"`
}

// serveBenchRun executes the N-job batch through one session with the
// given number of concurrency slots and returns the batch wall time
// plus each job's trace digest.
func serveBenchRun(base *graft.Graph, slots int, seed int64) (time.Duration, map[string]string, error) {
	runtime.GC()
	store := graft.NewStore(dfs.NewLatencyFS(graft.NewMemFS(), ServeBenchStoreLatency), "traces")
	sess, err := graft.NewSession(graft.SessionConfig{
		Store:             store,
		MaxConcurrentJobs: slots,
	})
	if err != nil {
		return 0, nil, err
	}
	defer sess.Close()

	start := time.Now()
	jobs := make([]*graft.Job, ServeBenchJobs)
	for i := range jobs {
		jobs[i], err = sess.SubmitAlgorithm(context.Background(), base.Clone(),
			algorithms.NewPageRank(ServeBenchSupersteps, 0.85), graft.RunOptions{
				JobID: fmt.Sprintf("job-%d", i),
				Debug: &graft.DebugConfig{
					NumRandomCaptures: 30,
					CaptureNeighbors:  true,
					RandomSeed:        seed + int64(i),
					CaptureExceptions: true,
				},
				Trace:  []graft.TraceOption{graft.WithSegmentSize(ServeBenchSegmentSize)},
				Engine: graft.EngineConfig{NumWorkers: ServeBenchWorkers},
			})
		if err != nil {
			return 0, nil, err
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			return 0, nil, fmt.Errorf("job %s: %w", j.ID(), err)
		}
	}
	elapsed := time.Since(start)

	digests := make(map[string]string, len(jobs))
	for _, j := range jobs {
		v, err := graft.OpenTrace(store, j.ID())
		if err != nil {
			return 0, nil, fmt.Errorf("open %s: %w", j.ID(), err)
		}
		digests[j.ID()] = trace.Digest(v)
	}
	return elapsed, digests, nil
}

// RunServeBench measures the serving-mode win: N debugged jobs back
// to back versus the same N jobs sharing a session with N slots.
func RunServeBench(scale float64, opts harness.Options) (*ServeBench, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	n := int(30_000_000 * scale)
	if n < 1000 {
		n = 1000
	}
	base := graphgen.WebGraph(n, 8, opts.Seed)

	row := &ServeBench{
		Jobs:         ServeBenchJobs,
		Workers:      ServeBenchWorkers,
		Supersteps:   ServeBenchSupersteps,
		Vertices:     int(base.NumVertices()),
		Reps:         opts.Reps,
		LatencyNS:    ServeBenchStoreLatency.Nanoseconds(),
		DigestsMatch: true,
	}
	var seqTimes, conTimes []time.Duration
	var refDigests map[string]string
	for rep := -1; rep < opts.Reps; rep++ {
		var st, ct time.Duration
		runSeq := func() error {
			t, digests, err := serveBenchRun(base, 1, opts.Seed)
			if err != nil {
				return fmt.Errorf("harness: sequential: %w", err)
			}
			st = t
			if refDigests == nil {
				refDigests = digests
			} else if !sameDigests(refDigests, digests) {
				row.DigestsMatch = false
			}
			return nil
		}
		runCon := func() error {
			t, digests, err := serveBenchRun(base, ServeBenchJobs, opts.Seed)
			if err != nil {
				return fmt.Errorf("harness: concurrent: %w", err)
			}
			ct = t
			if refDigests == nil {
				refDigests = digests
			} else if !sameDigests(refDigests, digests) {
				row.DigestsMatch = false
			}
			return nil
		}
		first, second := runSeq, runCon
		if rep%2 != 0 {
			first, second = runCon, runSeq
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
		if rep < 0 {
			continue // warmup
		}
		seqTimes = append(seqTimes, st)
		conTimes = append(conTimes, ct)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "rep %d: sequential=%8.2fms concurrent=%8.2fms\n",
				rep, float64(st.Microseconds())/1000, float64(ct.Microseconds())/1000)
		}
	}
	seqBest, conBest := fastest(seqTimes), fastest(conTimes)
	row.SequentialNanos = seqBest.Nanoseconds()
	row.ConcurrentNanos = conBest.Nanoseconds()
	if seqBest > 0 {
		row.SequentialJobsPerSec = float64(ServeBenchJobs) / seqBest.Seconds()
	}
	if conBest > 0 {
		row.ConcurrentJobsPerSec = float64(ServeBenchJobs) / conBest.Seconds()
		row.Speedup = float64(seqBest) / float64(conBest)
	}
	return row, nil
}

// sameDigests reports whether both runs produced identical per-job
// trace digests.
func sameDigests(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// PrintServeBench renders the row as a table.
func PrintServeBench(w io.Writer, r *ServeBench) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "jobs\tworkers/job\tsupersteps\tsequential\tconcurrent\tseq jobs/s\tconc jobs/s\tspeedup\tdigests")
	match := "match"
	if !r.DigestsMatch {
		match = "DIVERGED"
	}
	fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\t%.2f\t%.2f\t%.2fx\t%s\n",
		r.Jobs, r.Workers, r.Supersteps,
		time.Duration(r.SequentialNanos).Round(time.Microsecond),
		time.Duration(r.ConcurrentNanos).Round(time.Microsecond),
		r.SequentialJobsPerSec, r.ConcurrentJobsPerSec, r.Speedup, match)
	tw.Flush()
}

// WriteServeBenchJSON writes the row as indented JSON (the
// BENCH_serve.json artifact).
func WriteServeBenchJSON(w io.Writer, r *ServeBench) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CheckServeBench verifies the serving-mode claims: concurrent jobs
// against the shared store deliver at least 1.3x the aggregate
// throughput of the same jobs run back to back, without perturbing a
// single trace digest.
func CheckServeBench(r *ServeBench) []string {
	var problems []string
	if r.Speedup < 1.3 {
		problems = append(problems, fmt.Sprintf(
			"concurrent aggregate throughput only %.2fx sequential (want >= 1.3x)", r.Speedup))
	}
	if !r.DigestsMatch {
		problems = append(problems, "per-job trace digests diverged between sequential and concurrent runs")
	}
	return problems
}

// fastest returns the minimum of times (0 if empty).
func fastest(times []time.Duration) time.Duration {
	if len(times) == 0 {
		return 0
	}
	best := times[0]
	for _, t := range times[1:] {
		if t < best {
			best = t
		}
	}
	return best
}
