package faults

import (
	"graft/internal/dfs"
)

// CorruptReplicas flips one deterministic, seed-derived bit in one
// replica of every nth block of the cluster (every block when n <= 1)
// — simulated silent disk corruption beneath the checksum layer. The
// damaged replica and bit position derive from the seed and block ID
// alone, so a run is reproducible bit-for-bit from its seed. It
// returns the number of replicas corrupted.
//
// The flips bypass the cluster's CRC bookkeeping exactly the way real
// bit rot bypasses a filesystem: nothing notices until a read or a
// Scrub verifies the replica against the namenode's golden checksum.
func CorruptReplicas(c *dfs.Cluster, seed int64, n int) int {
	if n < 1 {
		n = 1
	}
	corrupted := 0
	for i, b := range c.BlockIDs() {
		if i%n != 0 {
			continue
		}
		locs := c.ReplicaNodes(b)
		if len(locs) == 0 {
			continue
		}
		h := splitmix64(uint64(seed) ^ splitmix64(uint64(b)+0x9e3779b97f4a7c15))
		node := locs[int(h%uint64(len(locs)))]
		bit := int64(splitmix64(h) % (1 << 20))
		if c.FlipReplicaBit(b, node, bit) {
			corrupted++
		}
	}
	return corrupted
}
