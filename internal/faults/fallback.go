package faults

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graft/internal/dfs"
	"graft/internal/pregel"
)

// counterStats aggregates a wrapper's resilience counters with atomic
// updates (retries may fire from concurrent worker goroutines).
type counterStats struct {
	retries   atomic.Int64
	backoffNS atomic.Int64
	giveUps   atomic.Int64
	fallbacks atomic.Int64
}

func (s *counterStats) addRetry(d time.Duration) {
	s.retries.Add(1)
	s.backoffNS.Add(int64(d))
}
func (s *counterStats) addGiveUp()      { s.giveUps.Add(1) }
func (s *counterStats) addFallback()    { s.fallbacks.Add(1) }
func (s *counterStats) retriesN() int64 { return s.retries.Load() }

func (s *counterStats) snapshot() pregel.FaultStats {
	return pregel.FaultStats{
		Retries:   s.retries.Load(),
		Backoff:   time.Duration(s.backoffNS.Load()),
		Fallbacks: s.fallbacks.Load(),
	}
}

// FallbackFS keeps a job alive through persistent primary-storage
// failure: every file is first attempted on Primary (typically a
// RetryFS over the real DFS) and, if that conclusively fails, lands on
// Secondary (typically a local or in-memory FS) instead. The degraded
// paths are recorded so the job result can report that its trace is
// partial on the primary store — Graft degrades the capture rather
// than aborting the debugged job.
type FallbackFS struct {
	Primary   dfs.FileSystem
	Secondary dfs.FileSystem

	stats counterStats

	mu       sync.Mutex
	degraded []string
}

// NewFallbackFS returns a fallback wrapper over the two stores.
func NewFallbackFS(primary, secondary dfs.FileSystem) *FallbackFS {
	return &FallbackFS{Primary: primary, Secondary: secondary}
}

// DegradedPaths returns the paths that fell back to the secondary
// store, in the order they degraded.
func (f *FallbackFS) DegradedPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.degraded...)
}

// Fallbacks returns how many files landed on the secondary store.
func (f *FallbackFS) Fallbacks() int64 { return f.stats.fallbacks.Load() }

func (f *FallbackFS) recordFallback(path string) {
	f.stats.addFallback()
	f.mu.Lock()
	f.degraded = append(f.degraded, path)
	f.mu.Unlock()
}

// FaultStats implements pregel.FaultStatsProvider, merging fallback
// counters with providers on both stores.
func (f *FallbackFS) FaultStats() pregel.FaultStats {
	s := f.stats.snapshot()
	if p, ok := f.Primary.(pregel.FaultStatsProvider); ok {
		s.Add(p.FaultStats())
	}
	if p, ok := f.Secondary.(pregel.FaultStatsProvider); ok {
		s.Add(p.FaultStats())
	}
	return s
}

// Create implements dfs.FileSystem. Data is buffered and committed on
// Close: primary first, secondary when the primary write conclusively
// fails.
func (f *FallbackFS) Create(path string) (io.WriteCloser, error) {
	return &fallbackWriter{fs: f, path: path}, nil
}

// Open implements dfs.FileSystem, reading from the primary and falling
// back to the secondary (where degraded files live).
func (f *FallbackFS) Open(path string) (io.ReadCloser, error) {
	r, err1 := f.Primary.Open(path)
	if err1 == nil {
		return r, nil
	}
	if r, err2 := f.Secondary.Open(path); err2 == nil {
		return r, nil
	}
	return nil, err1
}

// List implements dfs.FileSystem, merging both stores' listings.
func (f *FallbackFS) List(prefix string) ([]string, error) {
	names, err := f.Primary.List(prefix)
	if err != nil {
		names = nil
	}
	second, err2 := f.Secondary.List(prefix)
	if err != nil && err2 != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range second {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements dfs.FileSystem; removing from either store counts
// as success.
func (f *FallbackFS) Remove(path string) error {
	err1 := f.Primary.Remove(path)
	err2 := f.Secondary.Remove(path)
	if err1 == nil || err2 == nil {
		return nil
	}
	return err1
}

type fallbackWriter struct {
	fs     *FallbackFS
	path   string
	buf    bytes.Buffer
	closed bool
	err    error
}

func (w *fallbackWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *fallbackWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	perr := dfs.WriteFile(w.fs.Primary, w.path, w.buf.Bytes())
	if perr == nil {
		return nil
	}
	if serr := dfs.WriteFile(w.fs.Secondary, w.path, w.buf.Bytes()); serr != nil {
		w.err = fmt.Errorf("faults: fallback write %q: primary: %v; secondary: %w", w.path, perr, serr)
		return w.err
	}
	w.fs.recordFallback(w.path)
	return nil
}
