// Package faults provides the storage-resilience layer under Graft's
// trace and checkpoint paths: a deterministic, seed-driven fault
// injector that wraps any dfs.FileSystem, a RetryFS that absorbs
// transient failures with capped exponential backoff, and a FallbackFS
// that degrades whole files onto a secondary file system instead of
// failing the job.
//
// Determinism is the design constraint throughout: every injection and
// jitter decision is a pure hash of (seed, operation, path, per-path
// operation index), never of wall-clock time or a shared RNG stream,
// so a chaos run replays identically regardless of goroutine
// interleaving across files.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"graft/internal/dfs"
	"graft/internal/pregel"
)

// ErrInjected marks every error produced by an Injector, so retry
// layers and tests can tell injected faults from real ones.
var ErrInjected = errors.New("faults: injected fault")

// Op identifies one file-system operation kind for injection rules and
// counters.
type Op uint8

const (
	OpCreate Op = iota
	OpOpen
	OpWrite
	OpClose
	OpList
	OpRemove
	numOps
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	case OpList:
		return "list"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Plan configures an Injector. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision; two injectors with the
	// same plan make identical decisions.
	Seed int64
	// P maps an operation kind to its fault probability in [0,1].
	P map[Op]float64
	// FailNth fails exactly the Nth call (1-based, counted globally per
	// op kind) of an operation, independent of probabilities.
	FailNth map[Op]int
	// MaxFaults caps the total number of injected faults; 0 = unlimited.
	MaxFaults int
	// MaxPerPathOp caps injected faults per (path, op) pair, so a
	// bounded retry loop is guaranteed to eventually succeed against
	// this injector; 0 = unlimited.
	MaxPerPathOp int
	// ShortWrites makes injected write faults write the first half of
	// the buffer before failing, instead of writing nothing.
	ShortWrites bool
	// Latency is added to every operation, modeling a slow device.
	Latency time.Duration
}

// Injector makes deterministic fault decisions for one or more
// FaultFS wrappers. Safe for concurrent use.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	globalOp [numOps]int64
	paths    map[string]*pathState
	injected int64
	byOp     [numOps]int64
}

type pathState struct {
	ops    [numOps]int64
	faults [numOps]int64
}

// NewInjector returns an injector following plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, paths: make(map[string]*pathState)}
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedByOp returns how many faults were injected for one op kind.
func (in *Injector) InjectedByOp(op Op) int64 {
	if in == nil || op >= numOps {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byOp[op]
}

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality bit
// mixer used to derive uniform decisions from (seed, op, path, index).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func pathHash(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64()
}

// unitFloat derives a deterministic uniform float in [0,1).
func unitFloat(seed int64, op Op, path string, n int64) float64 {
	x := splitmix64(uint64(seed) ^ splitmix64(pathHash(path)+uint64(op)<<56) + uint64(n))
	return float64(x>>11) / float64(1<<53)
}

// decide records one operation and returns a non-nil error when the
// plan injects a fault into it.
func (in *Injector) decide(op Op, path string) error {
	if in == nil {
		return nil
	}
	if in.plan.Latency > 0 {
		time.Sleep(in.plan.Latency)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.paths[path]
	if st == nil {
		st = &pathState{}
		in.paths[path] = st
	}
	n := st.ops[op]
	st.ops[op]++
	in.globalOp[op]++

	fail := false
	if nth := in.plan.FailNth[op]; nth > 0 && in.globalOp[op] == int64(nth) {
		fail = true
	}
	if !fail {
		if p := in.plan.P[op]; p > 0 && unitFloat(in.plan.Seed, op, path, n) < p {
			fail = true
		}
	}
	if !fail {
		return nil
	}
	if in.plan.MaxFaults > 0 && in.injected >= int64(in.plan.MaxFaults) {
		return nil
	}
	if in.plan.MaxPerPathOp > 0 && st.faults[op] >= int64(in.plan.MaxPerPathOp) {
		return nil
	}
	st.faults[op]++
	in.injected++
	in.byOp[op]++
	return fmt.Errorf("%w: %s %q (op #%d)", ErrInjected, op, path, n+1)
}

// FaultStats implements pregel.FaultStatsProvider, reporting the
// number of injected faults.
func (in *Injector) FaultStats() pregel.FaultStats {
	return pregel.FaultStats{Injected: in.Injected()}
}

// FaultFS wraps a file system, consulting an Injector before every
// operation. A nil Injector passes everything through.
type FaultFS struct {
	FS  dfs.FileSystem
	Inj *Injector
}

// NewFaultFS wraps fs with a fresh injector following plan.
func NewFaultFS(fs dfs.FileSystem, plan Plan) *FaultFS {
	return &FaultFS{FS: fs, Inj: NewInjector(plan)}
}

// Create implements dfs.FileSystem.
func (f *FaultFS) Create(path string) (io.WriteCloser, error) {
	if err := f.Inj.decide(OpCreate, path); err != nil {
		return nil, err
	}
	w, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultWriter{w: w, inj: f.Inj, path: path}, nil
}

// Open implements dfs.FileSystem.
func (f *FaultFS) Open(path string) (io.ReadCloser, error) {
	if err := f.Inj.decide(OpOpen, path); err != nil {
		return nil, err
	}
	return f.FS.Open(path)
}

// List implements dfs.FileSystem.
func (f *FaultFS) List(prefix string) ([]string, error) {
	if err := f.Inj.decide(OpList, prefix); err != nil {
		return nil, err
	}
	return f.FS.List(prefix)
}

// Remove implements dfs.FileSystem.
func (f *FaultFS) Remove(path string) error {
	if err := f.Inj.decide(OpRemove, path); err != nil {
		return err
	}
	return f.FS.Remove(path)
}

// FaultStats implements pregel.FaultStatsProvider, merging the
// injector's count with any provider underneath.
func (f *FaultFS) FaultStats() pregel.FaultStats {
	s := f.Inj.FaultStats()
	if p, ok := f.FS.(pregel.FaultStatsProvider); ok {
		s.Add(p.FaultStats())
	}
	return s
}

type faultWriter struct {
	w    io.WriteCloser
	inj  *Injector
	path string
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if err := w.inj.decide(OpWrite, w.path); err != nil {
		if w.inj.plan.ShortWrites && len(p) > 1 {
			// A short write: half the buffer lands before the fault, the
			// canonical way real storage produces truncated files.
			n, werr := w.w.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return w.w.Write(p)
}

// Close injects commit failures: on an injected close fault the inner
// writer is NOT closed, so file systems with atomic-on-close semantics
// never commit the file — modeling a crash before the namenode commit.
func (w *faultWriter) Close() error {
	if err := w.inj.decide(OpClose, w.path); err != nil {
		return err
	}
	return w.w.Close()
}
