package faults

import (
	"bytes"
	"testing"

	"graft/internal/dfs"
)

// corruptTestCluster builds a 3-node, replication-3 cluster holding
// one 4-block file (16-byte blocks), the shape the chaos acceptance
// test wants: every node holds every block, and 4 mod 3 != 0 means
// three sequential read passes land the rotating replica selection on
// every replica position of every block.
func corruptTestCluster(t *testing.T) (*dfs.Cluster, []byte) {
	t.Helper()
	c := dfs.NewCluster(3, 3, 16)
	body := make([]byte, 64)
	for i := range body {
		body[i] = byte(i * 7)
	}
	if err := dfs.WriteFile(c, "trace/seg-0", body); err != nil {
		t.Fatal(err)
	}
	return c, body
}

// TestCorruptReplicasChaos is the chaos acceptance test: with one
// replica bit-flipped per block, every read still succeeds with
// correct bytes, the corrupt replicas are detected and counted, and
// Rereplicate restores full health.
func TestCorruptReplicasChaos(t *testing.T) {
	c, want := corruptTestCluster(t)
	corrupted := CorruptReplicas(c, 42, 1)
	if corrupted != 4 {
		t.Fatalf("CorruptReplicas corrupted %d replicas, want 4 (one per block)", corrupted)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := dfs.ReadFile(c, "trace/seg-0")
		if err != nil {
			t.Fatalf("pass %d: read failed: %v", pass, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: corrupt bytes reached the reader", pass)
		}
	}
	if got := c.CorruptReads(); got != 4 {
		t.Fatalf("CorruptReads = %d, want 4", got)
	}
	if got := c.UnderReplicated(); got != 4 {
		t.Fatalf("UnderReplicated = %d, want 4 before heal", got)
	}
	if created := c.Rereplicate(); created != 4 {
		t.Fatalf("Rereplicate created %d replicas, want 4", created)
	}
	if got := c.UnderReplicated(); got != 0 {
		t.Fatalf("UnderReplicated = %d after heal, want 0", got)
	}
	if found := c.Scrub(); found != 0 {
		t.Fatalf("Scrub found %d corrupt replicas after heal, want 0", found)
	}
}

// TestCorruptReplicasDeterministic: the same seed must damage the same
// replicas — the reproducibility contract every injector in this
// package honors.
func TestCorruptReplicasDeterministic(t *testing.T) {
	survivors := func(seed int64) []int {
		c, _ := corruptTestCluster(t)
		if n := CorruptReplicas(c, seed, 1); n != 4 {
			t.Fatalf("corrupted %d, want 4", n)
		}
		c.Scrub() // quarantine everything the seed damaged
		var left []int
		for _, b := range c.BlockIDs() {
			left = append(left, c.ReplicaNodes(b)...)
		}
		return left
	}
	a, b := survivors(7), survivors(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different damage: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different damage: %v vs %v", a, b)
		}
	}
	// A different seed should (for this geometry) pick at least one
	// different replica; equality here would mean the seed is ignored.
	differs := false
	d := survivors(8)
	for i := range a {
		if i < len(d) && a[i] != d[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 damaged identical replicas — seed not mixed in")
	}
}

// TestCorruptReplicasStride: n > 1 corrupts every nth block only.
func TestCorruptReplicasStride(t *testing.T) {
	c, _ := corruptTestCluster(t)
	if got := CorruptReplicas(c, 3, 2); got != 2 {
		t.Fatalf("stride-2 over 4 blocks corrupted %d, want 2", got)
	}
	if found := c.Scrub(); found != 2 {
		t.Fatalf("Scrub = %d, want 2", found)
	}
}
