package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"graft/internal/dfs"
)

// chattyPlan injects often enough to exercise every path but stays
// under the retry budget per (path, op).
func chattyPlan(seed int64) Plan {
	return Plan{
		Seed:         seed,
		P:            map[Op]float64{OpWrite: 0.5, OpCreate: 0.3, OpClose: 0.3, OpOpen: 0.3},
		MaxPerPathOp: 2,
		ShortWrites:  true,
	}
}

// driveOps runs a fixed op sequence against an injector and returns
// the fault decisions as a signature string.
func driveOps(in *Injector) string {
	sig := ""
	for i := 0; i < 40; i++ {
		path := fmt.Sprintf("dir/file-%d", i%5)
		for _, op := range []Op{OpCreate, OpWrite, OpWrite, OpClose, OpOpen} {
			if err := in.decide(op, path); err != nil {
				sig += fmt.Sprintf("%d:%s:%s;", i, op, path)
			}
		}
	}
	return sig
}

func TestInjectorDeterminism(t *testing.T) {
	a := NewInjector(chattyPlan(7))
	b := NewInjector(chattyPlan(7))
	sigA, sigB := driveOps(a), driveOps(b)
	if sigA != sigB {
		t.Fatalf("same plan, different decisions:\n%s\nvs\n%s", sigA, sigB)
	}
	if a.Injected() == 0 {
		t.Fatal("plan injected nothing; test drives too few ops")
	}
	c := NewInjector(chattyPlan(8))
	if driveOps(c) == sigA {
		t.Fatal("different seed produced identical decisions")
	}
}

func TestInjectorFailNth(t *testing.T) {
	in := NewInjector(Plan{FailNth: map[Op]int{OpCreate: 3}})
	var errs []int
	for i := 1; i <= 5; i++ {
		if err := in.decide(OpCreate, fmt.Sprintf("f%d", i)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error not marked ErrInjected: %v", err)
			}
			errs = append(errs, i)
		}
	}
	if len(errs) != 1 || errs[0] != 3 {
		t.Fatalf("FailNth(3) failed calls %v, want exactly [3]", errs)
	}
}

func TestInjectorCaps(t *testing.T) {
	in := NewInjector(Plan{P: map[Op]float64{OpWrite: 1}, MaxFaults: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if in.decide(OpWrite, "f") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("MaxFaults=2 injected %d faults", n)
	}

	per := NewInjector(Plan{P: map[Op]float64{OpWrite: 1}, MaxPerPathOp: 1})
	for _, path := range []string{"a", "a", "a", "b", "b"} {
		per.decide(OpWrite, path)
	}
	if got := per.Injected(); got != 2 {
		t.Fatalf("MaxPerPathOp=1 over paths a,b injected %d faults, want 2", got)
	}
}

func TestShortWriteTruncatesFile(t *testing.T) {
	mem := dfs.NewMemFS()
	ffs := NewFaultFS(mem, Plan{P: map[Op]float64{OpWrite: 1}, MaxPerPathOp: 1, ShortWrites: true})
	w, err := ffs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789")
	if _, err := w.Write(data); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected write fault, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dfs.ReadFile(mem, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("short write left %d bytes, want %d", len(got), len(data)/2)
	}
}

func TestInjectedCloseDoesNotCommit(t *testing.T) {
	mem := dfs.NewMemFS()
	ffs := NewFaultFS(mem, Plan{FailNth: map[Op]int{OpClose: 1}})
	w, err := ffs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("data"))
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected close fault, got %v", err)
	}
	if _, err := mem.Open("f"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("file committed despite failed close: err=%v", err)
	}
}

func TestRetryFSAbsorbsBoundedFaults(t *testing.T) {
	mem := dfs.NewMemFS()
	inner := NewFaultFS(mem, Plan{P: map[Op]float64{OpWrite: 1}, MaxPerPathOp: 2})
	rfs := NewRetryFS(inner, 7)
	rfs.Sleep = func(time.Duration) {} // keep the test fast

	if err := dfs.WriteFile(rfs, "f", []byte("payload")); err != nil {
		t.Fatalf("retry layer should outlast 2 faults: %v", err)
	}
	got, err := dfs.ReadFile(mem, "f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("committed file = %q, %v; want %q", got, err, "payload")
	}
	if rfs.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	s := rfs.FaultStats()
	if s.Injected != inner.Inj.Injected() || s.Retries != rfs.Retries() || s.Backoff <= 0 {
		t.Fatalf("merged stats look wrong: %+v", s)
	}
}

func TestRetryFSGivesUp(t *testing.T) {
	mem := dfs.NewMemFS()
	inner := NewFaultFS(mem, Plan{P: map[Op]float64{OpWrite: 1}}) // unlimited faults
	rfs := NewRetryFS(inner, 7)
	var sleeps int
	rfs.Sleep = func(time.Duration) { sleeps++ }

	err := dfs.WriteFile(rfs, "f", []byte("payload"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error after budget exhausted, got %v", err)
	}
	if sleeps != DefaultMaxRetries {
		t.Fatalf("slept %d times, want %d", sleeps, DefaultMaxRetries)
	}
	// The failed attempts must not leave a partial file behind.
	if _, err := mem.Open("f"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("partial file left after give-up: err=%v", err)
	}
	// Missing files are permanent errors: no retries burned on them.
	before := rfs.Retries()
	if _, err := rfs.Open("missing"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if rfs.Retries() != before {
		t.Fatal("retried a permanent ErrNotExist")
	}
}

func TestBackoffDelayBoundsAndDeterminism(t *testing.T) {
	r := NewRetryFS(dfs.NewMemFS(), 3)
	max := DefaultMaxDelay
	for attempt := 0; attempt < 12; attempt++ {
		d := r.backoffDelay("some/path", attempt)
		if d <= 0 || d >= max {
			t.Fatalf("attempt %d: delay %v outside (0, %v)", attempt, d, max)
		}
		if d2 := r.backoffDelay("some/path", attempt); d2 != d {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d, d2)
		}
	}
}

func TestFallbackFSDegrades(t *testing.T) {
	primaryMem := dfs.NewMemFS()
	// Primary conclusively fails every create.
	primary := NewFaultFS(primaryMem, Plan{P: map[Op]float64{OpCreate: 1}})
	secondary := dfs.NewMemFS()
	fbs := NewFallbackFS(primary, secondary)

	if err := dfs.WriteFile(fbs, "t/worker_00.trace", []byte("records")); err != nil {
		t.Fatalf("fallback write failed: %v", err)
	}
	if got := fbs.Fallbacks(); got != 1 {
		t.Fatalf("Fallbacks() = %d, want 1", got)
	}
	if paths := fbs.DegradedPaths(); len(paths) != 1 || paths[0] != "t/worker_00.trace" {
		t.Fatalf("DegradedPaths() = %v", paths)
	}
	// The file reads back through the wrapper even though the primary
	// never stored it.
	got, err := dfs.ReadFile(fbs, "t/worker_00.trace")
	if err != nil || string(got) != "records" {
		t.Fatalf("read-through = %q, %v", got, err)
	}
	if _, err := primaryMem.Open("t/worker_00.trace"); !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("file unexpectedly on primary: err=%v", err)
	}
	// Listings merge both stores.
	if err := dfs.WriteFile(primaryMem, "t/job.meta", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	names, err := fbs.List("t/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("merged listing = %v, want both files", names)
	}
	if s := fbs.FaultStats(); s.Fallbacks != 1 || s.Injected == 0 {
		t.Fatalf("merged fallback stats look wrong: %+v", s)
	}
}

// TestChainDeterminism replays an identical fault-heavy write workload
// twice through the full RetryFS(FaultFS(MemFS)) chain and demands
// byte-identical outcomes and counters — the property the chaos test
// relies on.
func TestChainDeterminism(t *testing.T) {
	run := func() (string, int64, int64) {
		mem := dfs.NewMemFS()
		rfs := NewRetryFS(NewFaultFS(mem, chattyPlan(11)), 11)
		rfs.Sleep = func(time.Duration) {}
		sig := ""
		for i := 0; i < 25; i++ {
			path := fmt.Sprintf("out/f%d", i%7)
			err := dfs.WriteFile(rfs, path, []byte(fmt.Sprintf("payload-%d", i)))
			sig += fmt.Sprintf("%d:%v;", i, err == nil)
		}
		s := rfs.FaultStats()
		return sig, s.Injected, s.Retries
	}
	sigA, injA, retA := run()
	sigB, injB, retB := run()
	if sigA != sigB || injA != injB || retA != retB {
		t.Fatalf("chain not deterministic:\n%s inj=%d ret=%d\nvs\n%s inj=%d ret=%d",
			sigA, injA, retA, sigB, injB, retB)
	}
	if injA == 0 || retA == 0 {
		t.Fatalf("workload too tame: injected=%d retries=%d", injA, retA)
	}
}
