package faults

import (
	"bytes"
	"errors"
	"io"
	"time"

	"graft/internal/dfs"
	"graft/internal/pregel"
)

// Retry defaults; chosen small because the simulated file systems fail
// fast and the wrapper must never stall a superstep barrier noticeably.
const (
	DefaultMaxRetries = 4
	DefaultBaseDelay  = time.Millisecond
	DefaultMaxDelay   = 20 * time.Millisecond
)

// RetryFS wraps a file system with bounded, capped-exponential-backoff
// retries. Reads, listings and removals are retried per call; writes
// are buffered and committed as a whole file on Close, with each
// failed attempt's partial file removed before the next try, so a
// checkpoint or trace file is either fully present or absent.
//
// Backoff jitter is derived deterministically from (Seed, path,
// attempt), never from a shared RNG, so concurrent retries across
// files do not perturb each other's timing decisions.
type RetryFS struct {
	FS dfs.FileSystem
	// MaxRetries is the number of re-attempts after the first failure
	// of one logical operation (default DefaultMaxRetries).
	MaxRetries int
	// BaseDelay is the first backoff delay; it doubles per attempt up
	// to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives jitter decisions.
	Seed int64
	// Sleep is swappable for tests; nil means time.Sleep.
	Sleep func(time.Duration)

	stats counterStats
}

// NewRetryFS wraps fs with default retry budgets.
func NewRetryFS(fs dfs.FileSystem, seed int64) *RetryFS {
	return &RetryFS{FS: fs, Seed: seed}
}

func (r *RetryFS) maxRetries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return DefaultMaxRetries
}

// backoffDelay computes the capped exponential delay for one attempt
// with deterministic jitter in [d/2, d).
func (r *RetryFS) backoffDelay(path string, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := r.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(uint64(r.Seed) ^ splitmix64(pathHash(path)) + uint64(attempt))
	return half + time.Duration(j%uint64(half))
}

// retryable reports whether an error is worth another attempt. Missing
// files are permanent; everything else (injected faults, dead
// datanodes, unavailable blocks) is treated as transient.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, dfs.ErrNotExist)
}

// do runs op with retries, recording backoff stats.
func (r *RetryFS) do(path string, op func() error) error {
	err := op()
	for attempt := 0; retryable(err) && attempt < r.maxRetries(); attempt++ {
		d := r.backoffDelay(path, attempt)
		if r.Sleep != nil {
			r.Sleep(d)
		} else {
			time.Sleep(d)
		}
		r.stats.addRetry(d)
		err = op()
	}
	if err != nil {
		r.stats.addGiveUp()
	}
	return err
}

// Create implements dfs.FileSystem. The returned writer buffers all
// data; the retried whole-file commit happens on Close.
func (r *RetryFS) Create(path string) (io.WriteCloser, error) {
	return &retryWriter{fs: r, path: path}, nil
}

// Open implements dfs.FileSystem.
func (r *RetryFS) Open(path string) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := r.do(path, func() error {
		var e error
		rc, e = r.FS.Open(path)
		return e
	})
	return rc, err
}

// List implements dfs.FileSystem.
func (r *RetryFS) List(prefix string) ([]string, error) {
	var names []string
	err := r.do(prefix, func() error {
		var e error
		names, e = r.FS.List(prefix)
		return e
	})
	return names, err
}

// Remove implements dfs.FileSystem.
func (r *RetryFS) Remove(path string) error {
	return r.do(path, func() error { return r.FS.Remove(path) })
}

// Retries returns how many operation re-attempts were made.
func (r *RetryFS) Retries() int64 { return r.stats.retriesN() }

// FaultStats implements pregel.FaultStatsProvider, merging retry
// counters with any provider underneath.
func (r *RetryFS) FaultStats() pregel.FaultStats {
	s := r.stats.snapshot()
	if p, ok := r.FS.(pregel.FaultStatsProvider); ok {
		s.Add(p.FaultStats())
	}
	return s
}

// putFile writes data to path as one atomic attempt: create, write,
// close. A failed attempt removes whatever partial file it may have
// left before backing off, so readers never see a torn file from a
// retried write.
func (r *RetryFS) putFile(path string, data []byte) error {
	attempt := func() error {
		w, err := r.FS.Create(path)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			w.Close()
			r.FS.Remove(path) // best-effort cleanup of a partial file
			return err
		}
		if err := w.Close(); err != nil {
			r.FS.Remove(path)
			return err
		}
		return nil
	}
	return r.do(path, attempt)
}

type retryWriter struct {
	fs     *RetryFS
	path   string
	buf    bytes.Buffer
	closed bool
	err    error
}

func (w *retryWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *retryWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.err = w.fs.putFile(w.path, w.buf.Bytes())
	return w.err
}
