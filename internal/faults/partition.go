package faults

// FailPartitionAt builds a pregel.Config.PartitionFailureAt hook that
// kills the given partitions exactly once, at the barrier after the
// given superstep completes. A one-shot hook is the useful shape for
// recovery experiments: a hook that keeps returning the same
// partitions would re-fail the job on every replayed superstep and no
// recovery mode could ever make progress.
//
// With no explicit partitions the hook reports a failure that names
// no real partition, which the engine treats as "a worker died
// without saying which" — every partition fails. Use PickPartition to
// choose a reproducible single victim instead.
func FailPartitionAt(superstep int, partitions ...int) func(int) []int {
	fired := false
	return func(s int) []int {
		if fired || s != superstep {
			return nil
		}
		fired = true
		if len(partitions) == 0 {
			return []int{-1}
		}
		out := make([]int, len(partitions))
		copy(out, partitions)
		return out
	}
}

// PickPartition derives a reproducible victim partition in [0, n) from
// a seed, the same splitmix64 mixing the rest of the package uses, so
// chaos runs are replayable from their seed alone.
func PickPartition(seed int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(splitmix64(uint64(seed)^0xda3e39cb94b95bdb) % uint64(n))
}
