package dfs

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBlockSize is the chunk size for Cluster files. Real HDFS uses
// 64-128 MB; trace files are small, so the simulated default is 64 KiB
// to make multi-block paths actually exercise block logic.
const DefaultBlockSize = 64 << 10

// BlockID identifies one block in the namenode index. Exported so the
// fault-injection layer (internal/faults) can target individual
// replicas for corruption experiments.
type BlockID int64

// Cluster simulates a distributed file system: a namenode maps file
// paths to block lists, and each block is replicated on several
// datanodes. Datanodes can be killed and revived; reads fall back
// across replicas, and Rereplicate heals under-replicated blocks, so
// Graft traces survive single-node failures the way HDFS-backed traces
// do.
//
// The data path is built for concurrency: the namenode lock covers
// only block allocation, replica-set bookkeeping and file commits,
// while the replica puts of one block fan out concurrently and the
// gets of a streaming read happen with the lock released. Every block
// carries a CRC-32 checksum; a replica that fails verification at read
// time is quarantined (dropped, counted in CorruptReads) and the read
// falls through to another replica. A per-block replica index plus a
// suspect set make UnderReplicated and Rereplicate proportional to the
// number of damaged blocks rather than to cluster size.
type Cluster struct {
	mu          sync.RWMutex
	nodes       []*DataNode
	files       map[string]*fileVersion
	blocks      map[BlockID]*blockMeta
	suspect     map[BlockID]struct{} // blocks that may have < replication live replicas
	replication int
	blockSize   int
	nextBlock   BlockID
	nextNode    int  // round-robin placement cursor
	serial      bool // seed-compatible serial data path (benchmark baseline)

	// rotor rotates the replica a read starts from, spreading load
	// across live nodes instead of always hammering the first holder.
	rotor atomic.Int64

	// writeRetries counts block placements re-attempted on another
	// node because the first choice was dead (mid-write datanode
	// failure tolerance).
	writeRetries atomic.Int64
	// degradedWrites counts blocks committed with fewer live replicas
	// than the replication factor.
	degradedWrites atomic.Int64
	// corruptReads counts replicas that failed checksum verification
	// and were quarantined.
	corruptReads atomic.Int64
	// bytesWritten / bytesRead count replica payload traffic.
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
	// prefetches counts streaming-read blocks that the read-ahead had
	// already fetched by the time the consumer asked for them.
	prefetches atomic.Int64
}

// blockMeta is the namenode's record of one block: its golden CRC-32,
// size, and which datanodes hold a replica (live or dead — a killed
// node keeps its replicas for a later Revive). locations is guarded by
// Cluster.mu; size and crc are immutable after allocation.
type blockMeta struct {
	size      int
	crc       uint32
	locations []int
}

// fileVersion is one committed incarnation of a path. Streaming
// readers pin the version they opened; an overwrite or Remove marks it
// dead, and its blocks are freed when the last pinned reader closes.
type fileVersion struct {
	blocks []BlockID
	refs   int
	dead   bool
}

// DataNode is one simulated storage node.
type DataNode struct {
	mu     sync.RWMutex
	id     int
	alive  bool
	blocks map[BlockID][]byte
	// gets counts successful replica reads served, for replica-rotation
	// tests and load accounting.
	gets atomic.Int64
	// delayNanos models the per-replica-operation transfer cost; the
	// device serializes its transfers (ioMu), so concurrent operations
	// against one node queue while different nodes proceed in parallel.
	delayNanos atomic.Int64
	ioMu       sync.Mutex
}

// ID returns the node's index in the cluster (-1 for a nil node).
func (n *DataNode) ID() int {
	if n == nil {
		return -1
	}
	return n.id
}

// Alive reports whether the node is up. A nil node is dead.
func (n *DataNode) Alive() bool {
	if n == nil {
		return false
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.alive
}

// Gets returns how many replica reads the node has served (0 for a
// nil node) — how replica-rotation tests observe read load spreading.
func (n *DataNode) Gets() int64 {
	if n == nil {
		return 0
	}
	return n.gets.Load()
}

// NumBlocks returns how many block replicas the node stores (0 for a
// nil node).
func (n *DataNode) NumBlocks() int {
	if n == nil {
		return 0
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

// ioCost charges the node's simulated transfer time. The device moves
// one stream at a time, so concurrent transfers to the same node
// queue behind each other while other nodes transfer in parallel —
// which is exactly the asymmetry the pipelined write path and rotating
// replica selection exploit.
func (n *DataNode) ioCost() {
	if d := n.delayNanos.Load(); d > 0 {
		n.ioMu.Lock()
		time.Sleep(time.Duration(d))
		n.ioMu.Unlock()
	}
}

func (n *DataNode) put(id BlockID, data []byte) bool {
	n.ioCost()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return false
	}
	n.blocks[id] = data
	return true
}

func (n *DataNode) get(id BlockID) ([]byte, bool) {
	n.ioCost()
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.alive {
		return nil, false
	}
	data, ok := n.blocks[id]
	if ok {
		n.gets.Add(1)
	}
	return data, ok
}

func (n *DataNode) drop(id BlockID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocks, id)
}

// NewCluster creates a cluster with numNodes datanodes, the given
// replication factor (clamped to numNodes) and block size (0 means
// DefaultBlockSize).
func NewCluster(numNodes, replication, blockSize int) *Cluster {
	if numNodes < 1 {
		numNodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > numNodes {
		replication = numNodes
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	c := &Cluster{
		files:       make(map[string]*fileVersion),
		blocks:      make(map[BlockID]*blockMeta),
		suspect:     make(map[BlockID]struct{}),
		replication: replication,
		blockSize:   blockSize,
	}
	for i := 0; i < numNodes; i++ {
		c.nodes = append(c.nodes, &DataNode{id: i, alive: true, blocks: map[BlockID][]byte{}})
	}
	return c
}

// SetNodeDelay models the per-replica-operation transfer cost of every
// datanode, for experiments where the round-trip cost of replication —
// not CPU — is the point. Configure before issuing I/O.
func (c *Cluster) SetNodeDelay(d time.Duration) {
	for _, n := range c.nodes {
		n.delayNanos.Store(int64(d))
	}
}

// SetSerialDataPath switches the cluster onto the seed-era data path:
// every replica put of every block happens sequentially under the
// global namenode lock, and Open assembles whole files eagerly from
// the first live replica. Kept as the graft-bench -dfs baseline; do
// not enable outside benchmarks. Configure before issuing I/O.
func (c *Cluster) SetSerialDataPath(serial bool) {
	c.mu.Lock()
	c.serial = serial
	c.mu.Unlock()
}

// Node returns the i-th datanode for failure injection in tests, or
// nil when i is out of range. DataNode query methods treat a nil
// receiver as a dead, empty node, so chained calls like
// Node(i).Alive() stay safe on a bad index.
func (c *Cluster) Node(i int) *DataNode {
	if i < 0 || i >= len(c.nodes) {
		return nil
	}
	return c.nodes[i]
}

// NumNodes returns the datanode count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Kill marks a datanode dead; its replicas become unreadable. Every
// block the node held is queued as suspect, so the next Rereplicate
// visits exactly the damaged blocks — the namenode reacting to a lost
// heartbeat, not rescanning every file. Out-of-range indexes are
// ignored.
func (c *Cluster) Kill(node int) {
	n := c.Node(node)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.alive = false
	ids := make([]BlockID, 0, len(n.blocks))
	for id := range n.blocks {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	c.mu.Lock()
	for _, id := range ids {
		if _, ok := c.blocks[id]; ok {
			c.suspect[id] = struct{}{}
		}
	}
	c.mu.Unlock()
}

// Revive brings a killed datanode back with its blocks intact (a
// transient failure, not a disk loss) and immediately heals
// under-replicated blocks — node recovery triggers re-replication the
// way a namenode reacts to a returning heartbeat. It returns the
// number of replicas the heal created (0 for an out-of-range index).
func (c *Cluster) Revive(node int) int {
	n := c.Node(node)
	if n == nil {
		return 0
	}
	n.mu.Lock()
	n.alive = true
	n.mu.Unlock()
	return c.Rereplicate()
}

// WriteRetries returns how many block placements were re-attempted on
// another datanode because the first choice was dead.
func (c *Cluster) WriteRetries() int64 { return c.writeRetries.Load() }

// DegradedWrites returns how many blocks were committed with fewer
// live replicas than the replication factor (durably written, but
// awaiting Rereplicate).
func (c *Cluster) DegradedWrites() int64 { return c.degradedWrites.Load() }

// CorruptReads returns how many replicas failed checksum verification
// and were quarantined.
func (c *Cluster) CorruptReads() int64 { return c.corruptReads.Load() }

// ClusterStats is a snapshot of the data-path counters, in the shape
// the metrics layer exports.
type ClusterStats struct {
	// BytesWritten counts replica payload bytes stored (each replica of
	// a block counts once).
	BytesWritten int64 `json:"bytes_written"`
	// BytesRead counts block payload bytes served to readers.
	BytesRead int64 `json:"bytes_read"`
	// Prefetches counts streaming-read blocks the read-ahead had
	// already fetched when the consumer asked.
	Prefetches int64 `json:"prefetches"`
	// CorruptReads counts replicas quarantined after failing checksum
	// verification.
	CorruptReads int64 `json:"corrupt_reads"`
	// WriteRetries counts replica placements re-attempted on another
	// node.
	WriteRetries int64 `json:"write_retries"`
	// DegradedWrites counts blocks committed under-replicated.
	DegradedWrites int64 `json:"degraded_writes"`
}

// Add folds o's counters into s.
func (s *ClusterStats) Add(o ClusterStats) {
	s.BytesWritten += o.BytesWritten
	s.BytesRead += o.BytesRead
	s.Prefetches += o.Prefetches
	s.CorruptReads += o.CorruptReads
	s.WriteRetries += o.WriteRetries
	s.DegradedWrites += o.DegradedWrites
}

// Any reports whether any counter is nonzero.
func (s ClusterStats) Any() bool { return s != ClusterStats{} }

// String renders the counters as a compact key=value line.
func (s ClusterStats) String() string {
	return fmt.Sprintf("written=%dB read=%dB prefetches=%d corrupt-reads=%d write-retries=%d degraded-writes=%d",
		s.BytesWritten, s.BytesRead, s.Prefetches, s.CorruptReads, s.WriteRetries, s.DegradedWrites)
}

// Stats snapshots the cluster's data-path counters.
func (c *Cluster) Stats() ClusterStats {
	return ClusterStats{
		BytesWritten:   c.bytesWritten.Load(),
		BytesRead:      c.bytesRead.Load(),
		Prefetches:     c.prefetches.Load(),
		CorruptReads:   c.corruptReads.Load(),
		WriteRetries:   c.writeRetries.Load(),
		DegradedWrites: c.degradedWrites.Load(),
	}
}

// Create implements FileSystem.
func (c *Cluster) Create(path string) (io.WriteCloser, error) {
	if err := validatePath(path); err != nil {
		return nil, err
	}
	return &clusterWriter{c: c, path: path}, nil
}

// placeBlock stores data on `replication` datanodes. The namenode lock
// covers only block-ID allocation and candidate selection; the replica
// puts fan out concurrently (pipelined replication), so parallel
// writers — trace sink drainers, checkpoint workers — no longer
// serialize behind one global mutex. A node that dies mid-write is
// tolerated: the put falls through to the next candidate (counted in
// WriteRetries), every node is tried before giving up, and a block
// placed on at least one node succeeds — possibly under-replicated
// (counted in DegradedWrites and queued as suspect) until Rereplicate
// or a Revive heals it. It returns an error only when no node accepts
// the block.
func (c *Cluster) placeBlock(data []byte) (BlockID, error) {
	crc := crc32.ChecksumIEEE(data)
	c.mu.Lock()
	if c.serial {
		return c.placeBlockSerialLocked(data, crc)
	}
	id := c.nextBlock
	c.nextBlock++
	// Candidate order: round-robin from the placement cursor, extended
	// over every node so failed puts can fall through to any survivor.
	order := make([]int, len(c.nodes))
	start := c.nextNode
	c.nextNode += c.replication
	for i := range order {
		order[i] = (start + i) % len(c.nodes)
	}
	meta := &blockMeta{size: len(data), crc: crc}
	c.blocks[id] = meta
	c.mu.Unlock()

	// One goroutine per replica, all claiming candidates from a shared
	// cursor, so no two replicas land on the same node and a dead
	// candidate costs one retry, not a serialized rescan.
	placedBy := make([]int, c.replication)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < c.replication; r++ {
		placedBy[r] = -1
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(order) {
					return
				}
				n := c.nodes[order[i]]
				if n.put(id, data) {
					placedBy[r] = n.id
					return
				}
				c.writeRetries.Add(1)
			}
		}(r)
	}
	wg.Wait()

	locs := placedBy[:0:0]
	for _, nid := range placedBy {
		if nid >= 0 {
			locs = append(locs, nid)
		}
	}
	sort.Ints(locs)
	c.mu.Lock()
	if len(locs) == 0 {
		delete(c.blocks, id)
		c.mu.Unlock()
		return 0, ErrNoDataNodes
	}
	meta.locations = locs
	if len(locs) < c.replication {
		c.suspect[id] = struct{}{}
	}
	c.mu.Unlock()
	if len(locs) < c.replication {
		c.degradedWrites.Add(1)
	}
	c.bytesWritten.Add(int64(len(data)) * int64(len(locs)))
	return id, nil
}

// placeBlockSerialLocked is the seed-era placement, kept as the
// graft-bench -dfs baseline: every replica put happens sequentially
// while the global namenode lock is held. Caller holds c.mu; the lock
// is released on return.
func (c *Cluster) placeBlockSerialLocked(data []byte, crc uint32) (BlockID, error) {
	id := c.nextBlock
	c.nextBlock++
	meta := &blockMeta{size: len(data), crc: crc}
	placed := 0
	for try := 0; try < len(c.nodes) && placed < c.replication; try++ {
		n := c.nodes[c.nextNode%len(c.nodes)]
		c.nextNode++
		if n.put(id, data) {
			meta.locations = append(meta.locations, n.id)
			placed++
		} else {
			c.writeRetries.Add(1)
		}
	}
	if placed > 0 {
		sort.Ints(meta.locations)
		c.blocks[id] = meta
		if placed < c.replication {
			c.suspect[id] = struct{}{}
		}
	}
	c.mu.Unlock()
	if placed == 0 {
		return 0, ErrNoDataNodes
	}
	if placed < c.replication {
		c.degradedWrites.Add(1)
	}
	c.bytesWritten.Add(int64(len(data)) * int64(placed))
	return id, nil
}

// commit publishes a completed write: the path atomically switches to
// the new block list. A superseded version is freed immediately unless
// in-flight streaming readers still pin its snapshot, in which case
// the last reader Close frees it.
func (c *Cluster) commit(path string, blocks []BlockID) {
	c.mu.Lock()
	if old, ok := c.files[path]; ok {
		c.retireLocked(old)
	}
	c.files[path] = &fileVersion{blocks: blocks}
	c.mu.Unlock()
}

// retireLocked marks a file version dead, freeing its blocks now or —
// when streaming readers still hold the snapshot — at the last reader
// Close. Caller holds c.mu.
func (c *Cluster) retireLocked(ver *fileVersion) {
	ver.dead = true
	if ver.refs == 0 {
		c.freeBlocksLocked(ver.blocks)
		ver.blocks = nil
	}
}

// freeBlocksLocked drops every replica of the given blocks and removes
// them from the namenode index; caller holds c.mu.
func (c *Cluster) freeBlocksLocked(blocks []BlockID) {
	for _, b := range blocks {
		meta := c.blocks[b]
		if meta == nil {
			continue
		}
		for _, nid := range meta.locations {
			c.nodes[nid].drop(b)
		}
		delete(c.blocks, b)
		delete(c.suspect, b)
	}
}

// release unpins one streaming reader from its file version, freeing
// the snapshot's blocks if the version was superseded while the reader
// was in flight.
func (c *Cluster) release(ver *fileVersion) {
	c.mu.Lock()
	ver.refs--
	if ver.dead && ver.refs == 0 {
		c.freeBlocksLocked(ver.blocks)
		ver.blocks = nil
	}
	c.mu.Unlock()
}

// Open implements FileSystem. The returned reader streams the file
// block by block over a snapshot of the block list taken at Open time:
// an overwrite committed mid-read does not disturb it. A background
// read-ahead keeps the next block in flight while the caller consumes
// the current one, and replica selection rotates across live nodes.
func (c *Cluster) Open(path string) (io.ReadCloser, error) {
	c.mu.Lock()
	ver, ok := c.files[path]
	if !ok {
		c.mu.Unlock()
		return nil, ErrNotExist
	}
	blocks := append([]BlockID(nil), ver.blocks...)
	if c.serial {
		c.mu.Unlock()
		// Seed-era eager assembly, kept as the benchmark baseline: the
		// whole file is copied into memory before Read returns a byte.
		var buf bytes.Buffer
		for _, b := range blocks {
			data, ok := c.readBlock(b, false)
			if !ok {
				return nil, fmt.Errorf("%w: block %d of %q", ErrBlockUnavailable, b, path)
			}
			buf.Write(data)
		}
		return io.NopCloser(&buf), nil
	}
	ver.refs++
	c.mu.Unlock()
	r := &clusterReader{
		c:       c,
		ver:     ver,
		path:    path,
		fetched: make(chan blockFetch, 1),
		stop:    make(chan struct{}),
	}
	go r.fetch(blocks)
	return r, nil
}

// readBlock fetches one block, verifying each candidate replica's
// CRC-32 against the namenode's golden checksum. A corrupt replica is
// quarantined and the read falls through to the next one. With rotate
// set, the starting replica rotates so repeated reads spread across
// live holders.
func (c *Cluster) readBlock(b BlockID, rotate bool) ([]byte, bool) {
	c.mu.RLock()
	meta := c.blocks[b]
	var locs []int
	if meta != nil {
		locs = append([]int(nil), meta.locations...)
	}
	c.mu.RUnlock()
	if meta == nil || len(locs) == 0 {
		return nil, false
	}
	start := 0
	if rotate {
		start = int((c.rotor.Add(1) - 1) % int64(len(locs)))
	}
	for i := 0; i < len(locs); i++ {
		nid := locs[(start+i)%len(locs)]
		data, ok := c.nodes[nid].get(b)
		if !ok {
			continue
		}
		if crc32.ChecksumIEEE(data) != meta.crc {
			c.quarantine(b, nid)
			continue
		}
		c.bytesRead.Add(int64(len(data)))
		return data, true
	}
	return nil, false
}

// quarantine drops a checksum-failed replica from its node and the
// namenode index and queues the block for healing.
func (c *Cluster) quarantine(b BlockID, node int) {
	c.corruptReads.Add(1)
	c.nodes[node].drop(b)
	c.mu.Lock()
	if meta := c.blocks[b]; meta != nil {
		removeLocation(meta, node)
		c.suspect[b] = struct{}{}
	}
	c.mu.Unlock()
}

func removeLocation(meta *blockMeta, node int) {
	for i, nid := range meta.locations {
		if nid == node {
			meta.locations = append(meta.locations[:i], meta.locations[i+1:]...)
			return
		}
	}
}

// blockFetch is one read-ahead result.
type blockFetch struct {
	data []byte
	err  error
}

// clusterReader streams a file's blocks with single-block read-ahead:
// while the caller consumes block k, the fetcher is already pulling
// block k+1 from a replica, overlapping replica round trips with
// consumption.
type clusterReader struct {
	c       *Cluster
	ver     *fileVersion
	path    string
	cur     []byte
	fetched chan blockFetch
	stop    chan struct{}
	closed  bool
	done    bool
	err     error
}

func (r *clusterReader) fetch(blocks []BlockID) {
	defer close(r.fetched)
	for _, b := range blocks {
		data, ok := r.c.readBlock(b, true)
		f := blockFetch{data: data}
		if !ok {
			f.err = fmt.Errorf("%w: block %d of %q", ErrBlockUnavailable, b, r.path)
		}
		select {
		case r.fetched <- f:
			if f.err != nil {
				return
			}
		case <-r.stop:
			return
		}
	}
}

func (r *clusterReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, io.ErrClosedPipe
	}
	if r.err != nil {
		return 0, r.err
	}
	for len(r.cur) == 0 {
		if r.done {
			return 0, io.EOF
		}
		var f blockFetch
		var ok bool
		select {
		case f, ok = <-r.fetched:
			if ok {
				// The block was waiting before we asked: a read-ahead hit.
				r.c.prefetches.Add(1)
			}
		default:
			f, ok = <-r.fetched
		}
		if !ok {
			r.done = true
			return 0, io.EOF
		}
		if f.err != nil {
			r.err = f.err
			return 0, r.err
		}
		r.cur = f.data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

func (r *clusterReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	close(r.stop)
	// Drain until the fetcher closes the channel, so its goroutine has
	// exited before the version is unpinned.
	for range r.fetched {
	}
	r.c.release(r.ver)
	return nil
}

// List implements FileSystem.
func (c *Cluster) List(prefix string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for name := range c.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FileSystem. Blocks pinned by in-flight streaming
// readers are freed when the last reader closes.
func (c *Cluster) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ver, ok := c.files[path]
	if !ok {
		return ErrNotExist
	}
	c.retireLocked(ver)
	delete(c.files, path)
	return nil
}

// UnderReplicated returns the number of blocks with fewer than the
// target number of live replicas. Only the suspect set is scanned —
// every event that can reduce a block's live replicas (a node death, a
// degraded write, a quarantined replica) queues exactly the affected
// blocks — so the cost is proportional to damage, not to cluster size.
func (c *Cluster) UnderReplicated() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	count := 0
	for b := range c.suspect {
		if c.liveReplicasLocked(b) < c.replication {
			count++
		}
	}
	return count
}

// liveReplicasLocked counts b's replicas on live nodes; caller holds
// c.mu (read or write).
func (c *Cluster) liveReplicasLocked(b BlockID) int {
	meta := c.blocks[b]
	if meta == nil {
		return 0
	}
	live := 0
	for _, nid := range meta.locations {
		if c.nodes[nid].Alive() {
			live++
		}
	}
	return live
}

// Rereplicate copies under-replicated blocks from a live replica onto
// live nodes that lack them, restoring the replication factor where
// possible. Only suspect blocks are visited, so a heal after one node
// failure costs time proportional to that node's replicas, not to
// files×blocks×nodes. It returns the number of new replicas created.
func (c *Cluster) Rereplicate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	created := 0
	for b := range c.suspect {
		healed, n := c.healBlockLocked(b)
		created += n
		if healed {
			delete(c.suspect, b)
		}
	}
	return created
}

// healBlockLocked restores one block's replication, reporting whether
// the block is fully replicated again (so it can leave the suspect
// set) and how many replicas were created. The copy source must pass
// checksum verification — healing never propagates a corrupt replica;
// corrupt sources found along the way are quarantined inline. Caller
// holds c.mu.
func (c *Cluster) healBlockLocked(b BlockID) (bool, int) {
	meta := c.blocks[b]
	if meta == nil {
		return true, 0 // freed concurrently; nothing to heal
	}
	var data []byte
	for _, nid := range append([]int(nil), meta.locations...) {
		n := c.nodes[nid]
		if !n.Alive() {
			continue
		}
		d, ok := n.get(b)
		if !ok {
			continue
		}
		if crc32.ChecksumIEEE(d) != meta.crc {
			c.corruptReads.Add(1)
			n.drop(b)
			removeLocation(meta, nid)
			continue
		}
		data = d
		break
	}
	if data == nil {
		// No verified live source; a Revive may bring one back later, so
		// the block stays suspect.
		return false, 0
	}
	has := make(map[int]bool, len(meta.locations))
	for _, nid := range meta.locations {
		has[nid] = true
	}
	live := c.liveReplicasLocked(b)
	created := 0
	for _, n := range c.nodes {
		if live >= c.replication {
			break
		}
		if has[n.id] || !n.Alive() {
			continue
		}
		if n.put(b, data) {
			meta.locations = append(meta.locations, n.id)
			live++
			created++
			c.bytesWritten.Add(int64(len(data)))
		}
	}
	return live >= c.replication, created
}

// Scrub verifies the checksum of every replica of every block — the
// analogue of HDFS's background block scanner. Corrupt replicas are
// quarantined so the next Rereplicate heals them, and the number found
// is returned. Unlike the read path, which only verifies the replicas
// it happens to select, Scrub is exhaustive; replicas on dead nodes
// are skipped (they cannot be verified until the node revives).
func (c *Cluster) Scrub() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	found := 0
	for b, meta := range c.blocks {
		for _, nid := range append([]int(nil), meta.locations...) {
			n := c.nodes[nid]
			d, ok := n.get(b)
			if !ok {
				continue
			}
			if crc32.ChecksumIEEE(d) != meta.crc {
				c.corruptReads.Add(1)
				n.drop(b)
				removeLocation(meta, nid)
				c.suspect[b] = struct{}{}
				found++
			}
		}
	}
	return found
}

// BlockIDs returns every block in the namenode index, sorted, for
// corruption experiments (internal/faults).
func (c *Cluster) BlockIDs() []BlockID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]BlockID, 0, len(c.blocks))
	for b := range c.blocks {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReplicaNodes returns the IDs of the datanodes holding replicas of b,
// sorted.
func (c *Cluster) ReplicaNodes(b BlockID) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	meta := c.blocks[b]
	if meta == nil {
		return nil
	}
	locs := append([]int(nil), meta.locations...)
	sort.Ints(locs)
	return locs
}

// FlipReplicaBit flips one bit (bit must be non-negative; offsets wrap
// around the block length) in the copy of block b stored on the given
// node — simulated silent disk corruption for checksum experiments.
// The replica's bytes are copied first, because co-replicas share the
// writer's backing array and must stay intact. It reports whether the
// node held the block.
func (c *Cluster) FlipReplicaBit(b BlockID, node int, bit int64) bool {
	n := c.Node(node)
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	data, ok := n.blocks[b]
	if !ok || len(data) == 0 {
		return false
	}
	cp := append([]byte(nil), data...)
	i := int(bit/8) % len(cp)
	cp[i] ^= 1 << (bit % 8)
	n.blocks[b] = cp
	return true
}

type clusterWriter struct {
	c      *Cluster
	path   string
	buf    bytes.Buffer
	blocks []BlockID
	closed bool
	err    error
}

func (w *clusterWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	if w.err != nil {
		return 0, w.err
	}
	n, _ := w.buf.Write(p)
	for w.buf.Len() >= w.c.blockSize {
		if err := w.flushBlock(w.c.blockSize); err != nil {
			w.err = err
			// Every byte of p was accepted into the buffer before the
			// flush failed; report the accepted count alongside the
			// error so io.Copy-style callers account correctly.
			return n, err
		}
	}
	return n, nil
}

func (w *clusterWriter) flushBlock(size int) error {
	data := make([]byte, size)
	if _, err := io.ReadFull(&w.buf, data); err != nil {
		return err
	}
	id, err := w.c.placeBlock(data)
	if err != nil {
		return err
	}
	w.blocks = append(w.blocks, id)
	return nil
}

func (w *clusterWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err == nil && w.buf.Len() > 0 {
		w.err = w.flushBlock(w.buf.Len())
	}
	if w.err != nil {
		// The write is abandoned, never committed; free the blocks it
		// placed so they do not leak in the namenode index.
		w.c.mu.Lock()
		w.c.freeBlocksLocked(w.blocks)
		w.c.mu.Unlock()
		return w.err
	}
	w.c.commit(w.path, w.blocks)
	return nil
}
