package dfs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize is the chunk size for Cluster files. Real HDFS uses
// 64-128 MB; trace files are small, so the simulated default is 64 KiB
// to make multi-block paths actually exercise block logic.
const DefaultBlockSize = 64 << 10

// Cluster simulates a distributed file system: a namenode maps file
// paths to block lists, and each block is replicated on several
// datanodes. Datanodes can be killed and revived; reads fall back
// across replicas, and Rereplicate heals under-replicated blocks, so
// Graft traces survive single-node failures the way HDFS-backed traces
// do.
type Cluster struct {
	mu          sync.RWMutex
	nodes       []*DataNode
	files       map[string][]blockID
	replication int
	blockSize   int
	nextBlock   blockID
	nextNode    int // round-robin placement cursor

	// writeRetries counts block placements re-attempted on another
	// node because the first choice was dead (mid-write datanode
	// failure tolerance).
	writeRetries atomic.Int64
	// degradedWrites counts blocks committed with fewer live replicas
	// than the replication factor.
	degradedWrites atomic.Int64
}

type blockID int64

// DataNode is one simulated storage node.
type DataNode struct {
	mu     sync.RWMutex
	id     int
	alive  bool
	blocks map[blockID][]byte
}

// ID returns the node's index in the cluster.
func (n *DataNode) ID() int { return n.id }

// Alive reports whether the node is up.
func (n *DataNode) Alive() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.alive
}

// NumBlocks returns how many block replicas the node stores.
func (n *DataNode) NumBlocks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

func (n *DataNode) put(id blockID, data []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return false
	}
	n.blocks[id] = data
	return true
}

func (n *DataNode) get(id blockID) ([]byte, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.alive {
		return nil, false
	}
	data, ok := n.blocks[id]
	return data, ok
}

func (n *DataNode) drop(id blockID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocks, id)
}

// NewCluster creates a cluster with numNodes datanodes, the given
// replication factor (clamped to numNodes) and block size (0 means
// DefaultBlockSize).
func NewCluster(numNodes, replication, blockSize int) *Cluster {
	if numNodes < 1 {
		numNodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > numNodes {
		replication = numNodes
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	c := &Cluster{
		files:       make(map[string][]blockID),
		replication: replication,
		blockSize:   blockSize,
	}
	for i := 0; i < numNodes; i++ {
		c.nodes = append(c.nodes, &DataNode{id: i, alive: true, blocks: map[blockID][]byte{}})
	}
	return c
}

// Node returns the i-th datanode, for failure injection in tests.
func (c *Cluster) Node(i int) *DataNode { return c.nodes[i] }

// NumNodes returns the datanode count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Kill marks a datanode dead; its replicas become unreadable.
func (c *Cluster) Kill(node int) {
	n := c.nodes[node]
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
}

// Revive brings a killed datanode back with its blocks intact (a
// transient failure, not a disk loss) and immediately heals
// under-replicated blocks — node recovery triggers re-replication the
// way a namenode reacts to a returning heartbeat. It returns the
// number of replicas the heal created.
func (c *Cluster) Revive(node int) int {
	n := c.nodes[node]
	n.mu.Lock()
	n.alive = true
	n.mu.Unlock()
	return c.Rereplicate()
}

// WriteRetries returns how many block placements were re-attempted on
// another datanode because the first choice was dead.
func (c *Cluster) WriteRetries() int64 { return c.writeRetries.Load() }

// DegradedWrites returns how many blocks were committed with fewer
// live replicas than the replication factor (durably written, but
// awaiting Rereplicate).
func (c *Cluster) DegradedWrites() int64 { return c.degradedWrites.Load() }

// Create implements FileSystem.
func (c *Cluster) Create(path string) (io.WriteCloser, error) {
	if err := validatePath(path); err != nil {
		return nil, err
	}
	return &clusterWriter{c: c, path: path}, nil
}

// placeBlock stores data on `replication` live datanodes, chosen
// round-robin. A node that dies mid-write is tolerated: placement
// retries on the next live node (counted in WriteRetries), every node
// is tried before giving up, and a block placed on at least one node
// succeeds — possibly under-replicated (counted in DegradedWrites)
// until Rereplicate or a Revive heals it. It returns an error only
// when no node accepts the block.
func (c *Cluster) placeBlock(data []byte) (blockID, error) {
	c.mu.Lock()
	id := c.nextBlock
	c.nextBlock++
	placed := 0
	for try := 0; try < len(c.nodes) && placed < c.replication; try++ {
		n := c.nodes[c.nextNode%len(c.nodes)]
		c.nextNode++
		if n.put(id, data) {
			placed++
		} else {
			c.writeRetries.Add(1)
		}
	}
	c.mu.Unlock()
	if placed == 0 {
		return 0, ErrNoDataNodes
	}
	if placed < c.replication {
		c.degradedWrites.Add(1)
	}
	return id, nil
}

func (c *Cluster) commit(path string, blocks []blockID) {
	c.mu.Lock()
	if old, ok := c.files[path]; ok {
		c.freeBlocks(old)
	}
	c.files[path] = blocks
	c.mu.Unlock()
}

// freeBlocks drops replicas; caller holds c.mu.
func (c *Cluster) freeBlocks(blocks []blockID) {
	for _, b := range blocks {
		for _, n := range c.nodes {
			n.drop(b)
		}
	}
}

// Open implements FileSystem.
func (c *Cluster) Open(path string) (io.ReadCloser, error) {
	c.mu.RLock()
	blocks, ok := c.files[path]
	c.mu.RUnlock()
	if !ok {
		return nil, ErrNotExist
	}
	// Assemble eagerly: trace files are small and an eager read gives
	// a single, clear failure point when replicas are gone.
	var buf bytes.Buffer
	for _, b := range blocks {
		data, ok := c.readBlock(b)
		if !ok {
			return nil, fmt.Errorf("%w: block %d of %q", ErrBlockUnavailable, b, path)
		}
		buf.Write(data)
	}
	return io.NopCloser(&buf), nil
}

func (c *Cluster) readBlock(b blockID) ([]byte, bool) {
	for _, n := range c.nodes {
		if data, ok := n.get(b); ok {
			return data, true
		}
	}
	return nil, false
}

// List implements FileSystem.
func (c *Cluster) List(prefix string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for name := range c.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FileSystem.
func (c *Cluster) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	blocks, ok := c.files[path]
	if !ok {
		return ErrNotExist
	}
	c.freeBlocks(blocks)
	delete(c.files, path)
	return nil
}

// UnderReplicated returns the number of blocks with fewer than the
// target number of live replicas.
func (c *Cluster) UnderReplicated() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	count := 0
	for _, blocks := range c.files {
		for _, b := range blocks {
			if c.liveReplicas(b) < c.replication {
				count++
			}
		}
	}
	return count
}

func (c *Cluster) liveReplicas(b blockID) int {
	n := 0
	for _, node := range c.nodes {
		if _, ok := node.get(b); ok {
			n++
		}
	}
	return n
}

// Rereplicate copies under-replicated blocks from a live replica onto
// live nodes that lack them, restoring the replication factor where
// possible. It returns the number of new replicas created.
func (c *Cluster) Rereplicate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	created := 0
	for _, blocks := range c.files {
		for _, b := range blocks {
			live := c.liveReplicas(b)
			if live == 0 || live >= c.replication {
				continue
			}
			data, _ := c.readBlock(b)
			for _, n := range c.nodes {
				if live >= c.replication {
					break
				}
				if _, has := n.get(b); has || !n.Alive() {
					continue
				}
				if n.put(b, data) {
					live++
					created++
				}
			}
		}
	}
	return created
}

type clusterWriter struct {
	c      *Cluster
	path   string
	buf    bytes.Buffer
	blocks []blockID
	closed bool
	err    error
}

func (w *clusterWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	if w.err != nil {
		return 0, w.err
	}
	n, _ := w.buf.Write(p)
	for w.buf.Len() >= w.c.blockSize {
		if err := w.flushBlock(w.c.blockSize); err != nil {
			w.err = err
			return 0, err
		}
	}
	return n, nil
}

func (w *clusterWriter) flushBlock(size int) error {
	data := make([]byte, size)
	if _, err := io.ReadFull(&w.buf, data); err != nil {
		return err
	}
	id, err := w.c.placeBlock(data)
	if err != nil {
		return err
	}
	w.blocks = append(w.blocks, id)
	return nil
}

func (w *clusterWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if w.buf.Len() > 0 {
		if err := w.flushBlock(w.buf.Len()); err != nil {
			return err
		}
	}
	w.c.commit(w.path, w.blocks)
	return nil
}
