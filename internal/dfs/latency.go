package dfs

import (
	"io"
	"time"
)

// LatencyFS wraps a FileSystem and charges a fixed delay per
// operation, modeling the network round trips of a remote store. MemFS
// commits in nanoseconds, which makes trace-write cost invisible in
// experiments; an HDFS-style store pays a round trip to the namenode
// on create and another to commit on close, and that latency — not
// CPU — is what asynchronous capture pipelines overlap with compute.
//
// One delay is charged at Create, writer Close, Open, List and Remove.
// Byte transfer is left instant: the wrapper models round-trip count,
// not bandwidth.
type LatencyFS struct {
	fs    FileSystem
	delay time.Duration
}

// NewLatencyFS wraps fs so every operation costs delay.
func NewLatencyFS(fs FileSystem, delay time.Duration) *LatencyFS {
	return &LatencyFS{fs: fs, delay: delay}
}

func (l *LatencyFS) pause() {
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
}

// Create implements FileSystem: one delay to open the remote file, one
// more when the returned writer commits on Close.
func (l *LatencyFS) Create(path string) (io.WriteCloser, error) {
	l.pause()
	w, err := l.fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &latencyWriter{w: w, fs: l}, nil
}

// Open implements FileSystem.
func (l *LatencyFS) Open(path string) (io.ReadCloser, error) {
	l.pause()
	return l.fs.Open(path)
}

// List implements FileSystem.
func (l *LatencyFS) List(prefix string) ([]string, error) {
	l.pause()
	return l.fs.List(prefix)
}

// Remove implements FileSystem.
func (l *LatencyFS) Remove(path string) error {
	l.pause()
	return l.fs.Remove(path)
}

type latencyWriter struct {
	w  io.WriteCloser
	fs *LatencyFS
}

func (w *latencyWriter) Write(p []byte) (int, error) { return w.w.Write(p) }

func (w *latencyWriter) Close() error {
	w.fs.pause()
	return w.w.Close()
}
