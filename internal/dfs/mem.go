package dfs

import (
	"bytes"
	"io"
	"sort"
	"sync"
)

// MemFS is an in-memory FileSystem safe for concurrent use. Files
// become visible atomically when their writer is closed.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Create implements FileSystem.
func (fs *MemFS) Create(path string) (io.WriteCloser, error) {
	if err := validatePath(path); err != nil {
		return nil, err
	}
	return &memWriter{fs: fs, path: path}, nil
}

// Open implements FileSystem.
func (fs *MemFS) Open(path string) (io.ReadCloser, error) {
	fs.mu.RLock()
	data, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotExist
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// List implements FileSystem.
func (fs *MemFS) List(prefix string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	for name := range fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FileSystem.
func (fs *MemFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return ErrNotExist
	}
	delete(fs.files, path)
	return nil
}

// Size returns the byte size of a file, or -1 if absent. Benchmarks
// use it to report trace-file sizes.
func (fs *MemFS) Size(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[path]
	if !ok {
		return -1
	}
	return int64(len(data))
}

// TotalBytes returns the sum of all file sizes.
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, data := range fs.files {
		n += int64(len(data))
	}
	return n
}

type memWriter struct {
	fs     *MemFS
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.fs.mu.Lock()
	w.fs.files[w.path] = append([]byte(nil), w.buf.Bytes()...)
	w.fs.mu.Unlock()
	return nil
}
