package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// payload builds deterministic multi-block content: b blocks of the
// cluster's 16-byte test block size, each tagged with its index so a
// misdelivered block is visible, not just a wrong length.
func payload(tag byte, blocks int) []byte {
	p := make([]byte, blocks*16)
	for i := range p {
		p[i] = tag ^ byte(i/16) ^ byte(i%16)
	}
	return p
}

// TestWriterErrorReportsAcceptedBytes: when a block flush fails
// mid-Write, the writer must report how many bytes of p it accepted
// (all of them — they entered the buffer before the flush ran), not 0,
// so io.Copy-style callers account correctly.
func TestWriterErrorReportsAcceptedBytes(t *testing.T) {
	c := NewCluster(2, 2, 16)
	c.Kill(0)
	c.Kill(1)
	w, err := c.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	p := payload(1, 3)
	n, err := w.Write(p)
	if err == nil {
		t.Fatal("Write with every node dead: got nil error")
	}
	if !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("Write error = %v, want ErrNoDataNodes", err)
	}
	if n != len(p) {
		t.Fatalf("Write returned n=%d with error, want accepted count %d", n, len(p))
	}
	// The writer is sticky-failed: later writes and Close surface the
	// same error, and nothing is committed.
	if _, err := w.Write([]byte("more")); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("Write after failure = %v, want ErrNoDataNodes", err)
	}
	if err := w.Close(); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("Close after failure = %v, want ErrNoDataNodes", err)
	}
	if _, err := c.Open("f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("failed write committed: Open = %v, want ErrNotExist", err)
	}
}

// TestFailedCloseFreesPlacedBlocks: blocks a failed write placed
// before the failure must not leak in the namenode or on datanodes.
func TestFailedCloseFreesPlacedBlocks(t *testing.T) {
	c := NewCluster(2, 2, 16)
	w, err := c.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	// First block lands while nodes are alive...
	if _, err := w.Write(payload(1, 1)); err != nil {
		t.Fatal(err)
	}
	// ...then the cluster dies and the tail flush at Close fails.
	c.Kill(0)
	c.Kill(1)
	if _, err := w.Write(payload(1, 1)[:8]); err != nil {
		t.Fatal(err) // buffered only; no flush yet
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with every node dead: got nil error")
	}
	if got := len(c.BlockIDs()); got != 0 {
		t.Fatalf("failed write leaked %d blocks in the namenode index", got)
	}
}

// TestNodeBoundsCheck: Node must return nil (not panic) for bad
// indexes, and DataNode query methods must be nil-safe so chained
// calls like Node(99).Alive() degrade to "dead, empty node".
func TestNodeBoundsCheck(t *testing.T) {
	c := NewCluster(3, 2, 16)
	for _, i := range []int{-1, 3, 99} {
		n := c.Node(i)
		if n != nil {
			t.Fatalf("Node(%d) = %v, want nil", i, n)
		}
		if n.Alive() {
			t.Fatalf("nil node reports alive")
		}
		if n.NumBlocks() != 0 || n.Gets() != 0 {
			t.Fatalf("nil node reports stored blocks")
		}
		if n.ID() != -1 {
			t.Fatalf("nil node ID = %d, want -1", n.ID())
		}
	}
	// Kill/Revive on bad indexes are ignored, not panics.
	c.Kill(-5)
	c.Kill(17)
	if got := c.Revive(17); got != 0 {
		t.Fatalf("Revive(17) = %d, want 0", got)
	}
	if c.Node(2) == nil || !c.Node(2).Alive() {
		t.Fatal("valid index must still resolve")
	}
}

// TestStreamingReaderSnapshotSurvivesOverwrite: a reader opened before
// an overwrite streams the old version to completion — the overwrite
// must neither corrupt it nor free its blocks early — and the old
// blocks are freed once the last reader closes.
func TestStreamingReaderSnapshotSurvivesOverwrite(t *testing.T) {
	c := NewCluster(3, 2, 16)
	v1, v2 := payload(1, 4), payload(2, 6)
	if err := WriteFile(c, "f", v1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// Consume part of v1, then overwrite with v2 mid-stream.
	head := make([]byte, 24)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(c, "f", v2); err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := append(head, tail...); !bytes.Equal(got, v1) {
		t.Fatalf("in-flight reader got %d bytes, want the 48-byte old version intact", len(got))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// With the pin released, only v2's blocks (6 blocks × replication 2)
	// remain anywhere in the cluster.
	want := 6 * 2
	total := 0
	for i := 0; i < c.NumNodes(); i++ {
		total += c.Node(i).NumBlocks()
	}
	if total != want {
		t.Fatalf("after reader close: %d replicas stored, want %d (old version freed)", total, want)
	}
	if got, err := ReadFile(c, "f"); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("fresh read = %d bytes, err %v; want new version", len(got), err)
	}
}

// TestConcurrentWritersLastCloseWins: two writers racing on one path
// are both fully written, the later Close wins, and the loser's blocks
// are freed rather than leaked.
func TestConcurrentWritersLastCloseWins(t *testing.T) {
	c := NewCluster(3, 2, 16)
	a, err := c.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := payload(1, 3), payload(2, 5)
	if _, err := a.Write(pa); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(pb); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(c, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pb) {
		t.Fatalf("read %d bytes, want the 80-byte content of the last Close", len(got))
	}
	// Only the winner's 5 blocks × replication 2 survive.
	total := 0
	for i := 0; i < c.NumNodes(); i++ {
		total += c.Node(i).NumBlocks()
	}
	if want := 5 * 2; total != want {
		t.Fatalf("%d replicas stored, want %d (loser's blocks freed)", total, want)
	}
}

// TestReplicaRotationSpreadsReads: repeated reads of the same blocks
// must rotate their starting replica so every live holder serves some
// of the load, instead of the first location absorbing all of it.
func TestReplicaRotationSpreadsReads(t *testing.T) {
	c := NewCluster(3, 3, 16) // every node holds every block
	if err := WriteFile(c, "f", payload(1, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ReadFile(c, "f"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < c.NumNodes(); i++ {
		if c.Node(i).Gets() == 0 {
			t.Fatalf("node %d served no reads: replica selection is not rotating", i)
		}
	}
}

// TestChecksumQuarantineAndHeal: a bit-flipped replica is detected at
// read time, skipped in favor of a healthy one, counted, and healed —
// and healing never copies from a corrupt source.
func TestChecksumQuarantineAndHeal(t *testing.T) {
	c := NewCluster(3, 3, 16)
	want := payload(1, 2)
	if err := WriteFile(c, "f", want); err != nil {
		t.Fatal(err)
	}
	blocks := c.BlockIDs()
	if len(blocks) != 2 {
		t.Fatalf("BlockIDs = %v, want 2 blocks", blocks)
	}
	for _, b := range blocks {
		locs := c.ReplicaNodes(b)
		if len(locs) != 3 {
			t.Fatalf("block %d on nodes %v, want 3 replicas", b, locs)
		}
		if !c.FlipReplicaBit(b, locs[0], 7) {
			t.Fatalf("FlipReplicaBit(%d, %d) found no replica", b, locs[0])
		}
	}
	// Reads must succeed despite the corruption; three passes guarantee
	// the rotation lands on every replica position of every block.
	for pass := 0; pass < 3; pass++ {
		got, err := ReadFile(c, "f")
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: corrupt bytes served to the reader", pass)
		}
	}
	if got := c.CorruptReads(); got != 2 {
		t.Fatalf("CorruptReads = %d, want 2 (one flipped replica per block)", got)
	}
	if got := c.UnderReplicated(); got != 2 {
		t.Fatalf("UnderReplicated = %d, want 2 after quarantine", got)
	}
	if created := c.Rereplicate(); created != 2 {
		t.Fatalf("Rereplicate created %d replicas, want 2", created)
	}
	if got := c.UnderReplicated(); got != 0 {
		t.Fatalf("UnderReplicated = %d after heal, want 0", got)
	}
	// Every surviving replica verifies: the heal copied clean bytes.
	if found := c.Scrub(); found != 0 {
		t.Fatalf("Scrub found %d corrupt replicas after heal, want 0", found)
	}
	if got, err := ReadFile(c, "f"); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-heal read failed: %v", err)
	}
}

// TestScrubFindsCorruptionReadsMiss: a corrupt replica the read path
// never happened to select is still caught by the exhaustive scrubber.
func TestScrubFindsCorruptionReadsMiss(t *testing.T) {
	c := NewCluster(3, 3, 16)
	if err := WriteFile(c, "f", payload(3, 1)); err != nil {
		t.Fatal(err)
	}
	b := c.BlockIDs()[0]
	n := c.ReplicaNodes(b)[2]
	if !c.FlipReplicaBit(b, n, 0) {
		t.Fatal("FlipReplicaBit found no replica")
	}
	if found := c.Scrub(); found != 1 {
		t.Fatalf("Scrub = %d, want 1", found)
	}
	if c.Node(n).NumBlocks() != 0 {
		t.Fatal("scrubbed replica still stored on its node")
	}
	if created := c.Rereplicate(); created != 1 {
		t.Fatalf("Rereplicate created %d, want 1", created)
	}
	if found := c.Scrub(); found != 0 {
		t.Fatalf("Scrub after heal = %d, want 0", found)
	}
}

// TestSerialDataPathConformance: the seed-compatible serial mode (the
// graft-bench baseline) must still satisfy the FileSystem contract —
// multi-block round trips, replication, overwrite.
func TestSerialDataPathConformance(t *testing.T) {
	c := NewCluster(3, 2, 16)
	c.SetSerialDataPath(true)
	want := payload(1, 5)
	if err := WriteFile(c, "f", want); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(c, "f"); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("serial round trip failed: %v", err)
	}
	want2 := payload(2, 2)
	if err := WriteFile(c, "f", want2); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(c, "f"); err != nil || !bytes.Equal(got, want2) {
		t.Fatalf("serial overwrite failed: %v", err)
	}
	total := 0
	for i := 0; i < c.NumNodes(); i++ {
		total += c.Node(i).NumBlocks()
	}
	if want := 2 * 2; total != want {
		t.Fatalf("serial overwrite left %d replicas, want %d", total, want)
	}
}

// TestStreamingReaderOverwriteChurn races streaming readers against
// overwriting writers on a shared set of paths. Under -race this is a
// data-race detector for the snapshot/refcount path; functionally,
// every read must return some committed version of its path, intact.
func TestStreamingReaderOverwriteChurn(t *testing.T) {
	c := NewCluster(4, 2, 16)
	const paths, writers, readers, rounds = 3, 3, 4, 20
	versions := make([][]byte, 8)
	for v := range versions {
		versions[v] = payload(byte(v), 2+v%3)
	}
	for p := 0; p < paths; p++ {
		if err := WriteFile(c, fmt.Sprintf("p%d", p), versions[0]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := versions[(w+i)%len(versions)]
				if err := WriteFile(c, fmt.Sprintf("p%d", (w+i)%paths), v); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, err := ReadFile(c, fmt.Sprintf("p%d", (r+i)%paths))
				if err != nil {
					errCh <- err
					return
				}
				ok := false
				for _, v := range versions {
					if bytes.Equal(got, v) {
						ok = true
						break
					}
				}
				if !ok {
					errCh <- fmt.Errorf("reader %d: %d bytes matching no committed version", r, len(got))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Quiescent cluster: nothing under-replicated, nothing leaked
	// beyond the live versions (paths × blocks × replication is bounded
	// by the largest version: 4 blocks × 2 replicas × 3 paths).
	if got := c.UnderReplicated(); got != 0 {
		t.Fatalf("UnderReplicated = %d after churn, want 0", got)
	}
	total := 0
	for i := 0; i < c.NumNodes(); i++ {
		total += c.Node(i).NumBlocks()
	}
	if max := paths * 4 * 2; total > max {
		t.Fatalf("%d replicas stored after churn, leak suspected (max live %d)", total, max)
	}
}
