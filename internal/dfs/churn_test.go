package dfs

import (
	"fmt"
	"sync"
	"testing"
)

// TestClusterWritesRaceNodeChurn hammers a cluster with concurrent
// writers while other goroutines kill, revive and re-replicate nodes.
// Run under -race this is primarily a data-race detector for the
// placement/heal paths; functionally, every file written while at
// least one node was alive must read back intact once the cluster
// heals.
func TestClusterWritesRaceNodeChurn(t *testing.T) {
	c := NewCluster(4, 2, 256)

	const writers = 8
	const filesPerWriter = 30
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < filesPerWriter; i++ {
				path := fmt.Sprintf("churn/w%d/f%03d", w, i)
				data := []byte(fmt.Sprintf("writer %d file %d payload padding padding padding", w, i))
				if err := WriteFile(c, path, data); err != nil {
					errs[w] = fmt.Errorf("%s: %w", path, err)
					return
				}
			}
		}(w)
	}

	// Churn: nodes 0 and 1 flap while writes are in flight; node 2 and
	// 3 stay up so every block always has a live placement target.
	done := make(chan struct{})
	var churn sync.WaitGroup
	for n := 0; n < 2; n++ {
		churn.Add(1)
		go func(n int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if i%2 == 0 {
					c.Kill(n)
				} else {
					c.Revive(n)
				}
			}
		}(n)
	}
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			c.Rereplicate()
			c.UnderReplicated()
		}
	}()

	wg.Wait()
	close(done)
	churn.Wait()

	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d failed despite live nodes: %v", w, err)
		}
	}

	// Heal completely, then verify every byte of every file.
	c.Revive(0)
	c.Revive(1)
	if ur := c.UnderReplicated(); ur != 0 {
		t.Fatalf("under-replicated blocks after full heal: %d", ur)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < filesPerWriter; i++ {
			path := fmt.Sprintf("churn/w%d/f%03d", w, i)
			want := fmt.Sprintf("writer %d file %d payload padding padding padding", w, i)
			got, err := ReadFile(c, path)
			if err != nil {
				t.Fatalf("%s unreadable after churn: %v", path, err)
			}
			if string(got) != want {
				t.Fatalf("%s corrupted: %q", path, got)
			}
		}
	}
}

// TestClusterMidWriteNodeDeath kills a node between a writer's block
// flushes: placement retries onto live nodes, the write succeeds, and
// the counters record what happened.
func TestClusterMidWriteNodeDeath(t *testing.T) {
	c := NewCluster(3, 2, 64)
	w, err := c.Create("big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	if _, err := w.Write(buf); err != nil { // flushes block 1 with all nodes up
		t.Fatal(err)
	}
	c.Kill(0)
	if _, err := w.Write(buf); err != nil { // block 2 must dodge the dead node
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(c, "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*len(buf) {
		t.Fatalf("file length %d, want %d", len(got), 2*len(buf))
	}
	if c.WriteRetries() == 0 {
		t.Error("WriteRetries not counted for the dead-node placement")
	}

	// Revive auto-heals: any block that went under-replicated while the
	// node was down regains its replica without an explicit Rereplicate.
	c.Revive(0)
	if ur := c.UnderReplicated(); ur != 0 {
		t.Errorf("under-replicated blocks after Revive: %d", ur)
	}
}

// TestClusterDegradedWriteCounted pins the DegradedWrites counter: with
// only one of two replica targets alive, blocks commit under-replicated
// and the counter says so.
func TestClusterDegradedWriteCounted(t *testing.T) {
	c := NewCluster(2, 2, 1024)
	c.Kill(1)
	if err := WriteFile(c, "f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if c.DegradedWrites() == 0 {
		t.Error("DegradedWrites not counted with one target dead")
	}
	if created := c.Revive(1); created == 0 {
		t.Error("Revive healed nothing; expected the degraded block to re-replicate")
	}
	if ur := c.UnderReplicated(); ur != 0 {
		t.Errorf("under-replicated blocks after heal: %d", ur)
	}
}
