package dfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LocalFS stores files under a root directory on local disk. Writes go
// to a temporary file and rename into place on Close, so readers never
// observe partial files.
type LocalFS struct {
	root string
}

// NewLocalFS returns a LocalFS rooted at dir, creating it if needed.
func NewLocalFS(dir string) (*LocalFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &LocalFS{root: dir}, nil
}

// Root returns the root directory.
func (l *LocalFS) Root() string { return l.root }

func (l *LocalFS) abs(path string) (string, error) {
	if err := validatePath(path); err != nil {
		return "", err
	}
	return filepath.Join(l.root, filepath.FromSlash(path)), nil
}

// Create implements FileSystem.
func (l *LocalFS) Create(path string) (io.WriteCloser, error) {
	abs, err := l.abs(path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(abs), ".dfs-tmp-*")
	if err != nil {
		return nil, err
	}
	return &localWriter{f: tmp, final: abs}, nil
}

// Open implements FileSystem.
func (l *LocalFS) Open(path string) (io.ReadCloser, error) {
	abs, err := l.abs(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(abs)
	if os.IsNotExist(err) {
		return nil, ErrNotExist
	}
	return f, err
}

// List implements FileSystem.
func (l *LocalFS) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".dfs-tmp-") {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			names = append(names, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FileSystem.
func (l *LocalFS) Remove(path string) error {
	abs, err := l.abs(path)
	if err != nil {
		return err
	}
	err = os.Remove(abs)
	if os.IsNotExist(err) {
		return ErrNotExist
	}
	return err
}

type localWriter struct {
	f     *os.File
	final string
	done  bool
}

func (w *localWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *localWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	return os.Rename(w.f.Name(), w.final)
}
