// Package dfs provides the file-system substrate Graft writes trace
// files into and the engine checkpoints into. Giraph stores traces in
// HDFS; this package supplies three interchangeable stand-ins:
//
//   - MemFS: in-memory, for tests and benchmarks.
//   - LocalFS: a directory on local disk, for the CLI tools.
//   - Cluster: an in-process simulation of a distributed file system
//     with a namenode, chunked blocks, replication and datanode
//     failures, preserving the behaviour that matters to Graft (shared
//     namespace across concurrently writing workers, durability under
//     single-node failure).
//
// LatencyFS wraps any of them with a fixed per-operation delay, for
// experiments where the remote store's round-trip cost is the point.
//
// All implementations satisfy the same structural interface, which is
// also declared (identically) as pregel.FileSystem.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// FileSystem is the minimal file-system contract: whole-file create,
// open, prefix listing and removal. Paths are slash-separated keys;
// directories are implicit.
type FileSystem interface {
	// Create opens a new file for writing, truncating any existing
	// file at the path. The file becomes visible atomically on Close.
	Create(path string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(path string) (io.ReadCloser, error)
	// List returns the paths of all files whose names start with
	// prefix, in lexicographic order.
	List(prefix string) ([]string, error)
	// Remove deletes a file.
	Remove(path string) error
}

// ErrNotExist is returned when opening or removing a missing path.
var ErrNotExist = errors.New("dfs: file does not exist")

// ErrBlockUnavailable is returned by Cluster reads when every replica
// of some block lives on a dead datanode.
var ErrBlockUnavailable = errors.New("dfs: no live replica for block")

// ErrNoDataNodes is returned by Cluster writes when no datanode is
// alive.
var ErrNoDataNodes = errors.New("dfs: no live datanodes")

// validatePath rejects empty and escaping paths. Keys may contain
// slashes but no ".." segments and must be relative.
func validatePath(path string) error {
	if path == "" {
		return errors.New("dfs: empty path")
	}
	if strings.HasPrefix(path, "/") {
		return fmt.Errorf("dfs: absolute path %q", path)
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == ".." {
			return fmt.Errorf("dfs: path %q escapes root", path)
		}
		if seg == "" {
			return fmt.Errorf("dfs: path %q has empty segment", path)
		}
	}
	return nil
}

// WriteFile writes data to path in one call.
func WriteFile(fs FileSystem, path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile reads the whole file at path.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
