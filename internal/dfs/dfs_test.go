package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// implementations returns one instance of each FileSystem for
// conformance testing.
func implementations(t *testing.T) map[string]FileSystem {
	t.Helper()
	local, err := NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FileSystem{
		"mem":     NewMemFS(),
		"local":   local,
		"cluster": NewCluster(4, 2, 16), // tiny blocks to force multi-block files
	}
}

func TestFileSystemConformance(t *testing.T) {
	for name, fs := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			// Write, read back.
			data := bytes.Repeat([]byte("hello dfs "), 20) // 200 bytes, >1 block on cluster
			if err := WriteFile(fs, "a/b/file1", data); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fs, "a/b/file1")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read back %d bytes, want %d", len(got), len(data))
			}

			// Empty file.
			if err := WriteFile(fs, "a/empty", nil); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadFile(fs, "a/empty"); err != nil || len(got) != 0 {
				t.Fatalf("empty file: %v %v", got, err)
			}

			// Overwrite.
			if err := WriteFile(fs, "a/b/file1", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := ReadFile(fs, "a/b/file1"); string(got) != "v2" {
				t.Fatalf("overwrite: got %q", got)
			}

			// List with prefix, sorted.
			if err := WriteFile(fs, "a/b/file2", []byte("x")); err != nil {
				t.Fatal(err)
			}
			names, err := fs.List("a/b/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a/b/file1", "a/b/file2"}
			if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
				t.Fatalf("List = %v, want %v", names, want)
			}
			if !sort.StringsAreSorted(names) {
				t.Error("List not sorted")
			}
			all, err := fs.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 3 {
				t.Fatalf("List(\"\") = %v", all)
			}

			// Open missing.
			if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Open missing: %v", err)
			}

			// Remove.
			if err := fs.Remove("a/empty"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("a/empty"); !errors.Is(err, ErrNotExist) {
				t.Error("file still readable after Remove")
			}
			if err := fs.Remove("a/empty"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Remove missing: %v", err)
			}

			// Path validation.
			for _, bad := range []string{"", "/abs", "a/../b", "a//b"} {
				if _, err := fs.Create(bad); err == nil {
					t.Errorf("Create(%q) should fail", bad)
				}
			}
		})
	}
}

func TestVisibilityOnlyAfterClose(t *testing.T) {
	for name, fs := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			w, err := fs.Create("pending")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("data")); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("pending"); !errors.Is(err, ErrNotExist) {
				t.Error("file visible before Close")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadFile(fs, "pending"); err != nil || string(got) != "data" {
				t.Errorf("after Close: %q %v", got, err)
			}
			// Double close is a no-op.
			if err := w.Close(); err != nil {
				t.Errorf("double close: %v", err)
			}
		})
	}
}

func TestConcurrentWriters(t *testing.T) {
	// Graft's workers write per-worker trace files concurrently; each
	// file must come out intact.
	for name, fs := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			const n = 16
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					data := bytes.Repeat([]byte{byte(i)}, 100+i)
					if err := WriteFile(fs, fmt.Sprintf("traces/worker_%02d", i), data); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			names, err := fs.List("traces/")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != n {
				t.Fatalf("got %d files, want %d", len(names), n)
			}
			for i := 0; i < n; i++ {
				got, err := ReadFile(fs, fmt.Sprintf("traces/worker_%02d", i))
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 100+i || got[0] != byte(i) {
					t.Errorf("worker %d file corrupted", i)
				}
			}
		})
	}
}

func TestMemFSSizes(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "x", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "y", make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if got := fs.Size("x"); got != 10 {
		t.Errorf("Size(x) = %d", got)
	}
	if got := fs.Size("missing"); got != -1 {
		t.Errorf("Size(missing) = %d", got)
	}
	if got := fs.TotalBytes(); got != 15 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestClusterSurvivesSingleNodeFailure(t *testing.T) {
	c := NewCluster(3, 2, 8)
	data := bytes.Repeat([]byte("block!"), 10) // 60 bytes = 8 blocks
	if err := WriteFile(c, "f", data); err != nil {
		t.Fatal(err)
	}
	for kill := 0; kill < 3; kill++ {
		c.Kill(kill)
		got, err := ReadFile(c, "f")
		if err != nil {
			t.Fatalf("read with node %d dead: %v", kill, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("corrupt read with node %d dead", kill)
		}
		c.Revive(kill)
	}
}

func TestClusterDoubleFailureLosesBlocks(t *testing.T) {
	c := NewCluster(3, 2, 8)
	if err := WriteFile(c, "f", bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	c.Kill(0)
	c.Kill(1)
	c.Kill(2)
	if _, err := ReadFile(c, "f"); !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("expected ErrBlockUnavailable, got %v", err)
	}
}

func TestClusterRereplication(t *testing.T) {
	c := NewCluster(4, 2, 8)
	if err := WriteFile(c, "f", bytes.Repeat([]byte("y"), 80)); err != nil {
		t.Fatal(err)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("under-replicated before failure: %d", n)
	}
	c.Kill(0)
	under := c.UnderReplicated()
	if under == 0 {
		t.Fatal("killing a node should under-replicate some blocks")
	}
	created := c.Rereplicate()
	if created == 0 {
		t.Fatal("re-replication created nothing")
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("under-replicated after heal: %d", n)
	}
	// Now the data must survive losing another node too.
	c.Kill(1)
	if _, err := ReadFile(c, "f"); err != nil {
		t.Fatalf("read after heal + second failure: %v", err)
	}
}

func TestClusterWriteWithAllNodesDead(t *testing.T) {
	c := NewCluster(2, 2, 8)
	c.Kill(0)
	c.Kill(1)
	err := WriteFile(c, "f", []byte("data"))
	if !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("expected ErrNoDataNodes, got %v", err)
	}
}

func TestClusterRemoveFreesBlocks(t *testing.T) {
	c := NewCluster(2, 1, 4)
	if err := WriteFile(c, "f", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	blocksBefore := c.Node(0).NumBlocks() + c.Node(1).NumBlocks()
	if blocksBefore == 0 {
		t.Fatal("no blocks stored")
	}
	if err := c.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).NumBlocks() + c.Node(1).NumBlocks(); got != 0 {
		t.Errorf("blocks after remove = %d, want 0", got)
	}
}

func TestClusterOverwriteFreesOldBlocks(t *testing.T) {
	c := NewCluster(2, 1, 4)
	if err := WriteFile(c, "f", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(c, "f", make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).NumBlocks() + c.Node(1).NumBlocks(); got != 1 {
		t.Errorf("blocks after overwrite = %d, want 1", got)
	}
}

func TestClusterReplicationClamped(t *testing.T) {
	c := NewCluster(2, 5, 8) // replication > nodes
	if err := WriteFile(c, "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(c, "f"); err != nil || string(got) != "abc" {
		t.Fatalf("%q %v", got, err)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Errorf("clamped replication still reports %d under-replicated", n)
	}
}

func TestClusterPropertyRoundTrip(t *testing.T) {
	c := NewCluster(3, 2, 16)
	i := 0
	f := func(data []byte) bool {
		i++
		path := fmt.Sprintf("p/%d", i)
		if err := WriteFile(c, path, data); err != nil {
			return false
		}
		got, err := ReadFile(c, path)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterAfterCloseFails(t *testing.T) {
	for name, fs := range map[string]FileSystem{"mem": NewMemFS(), "cluster": NewCluster(2, 1, 8)} {
		t.Run(name, func(t *testing.T) {
			w, err := fs.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write([]byte("late")); err != io.ErrClosedPipe {
				t.Errorf("write after close: %v", err)
			}
		})
	}
}
