package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// ServeMetrics handles GET /metrics: the full JobMetrics snapshot as
// one JSON document, valid at any point of the run.
func (r *Registry) ServeMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// ServeVars handles GET /debug/vars: an expvar-style flat map of the
// headline gauges plus Go runtime counters, for scrapers that want
// key/value pairs rather than the nested document.
func (r *Registry) ServeVars(w http.ResponseWriter, req *http.Request) {
	snap := r.Snapshot()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	vars := map[string]any{
		"graft.job_id":              snap.JobID,
		"graft.running":             snap.Running,
		"graft.num_workers":         snap.NumWorkers,
		"graft.supersteps":          len(snap.Supersteps),
		"graft.vertices_processed":  snap.Totals.VerticesProcessed,
		"graft.messages_sent":       snap.Totals.MessagesSent,
		"graft.messages_received":   snap.Totals.MessagesReceived,
		"graft.messages_combined":   snap.Totals.MessagesCombined,
		"graft.compute_ns":          snap.Totals.ComputeNanos,
		"graft.barrier_ns":          snap.Totals.BarrierNanos,
		"graft.capture_ns":          snap.Totals.CaptureNanos,
		"graft.capture_overhead":    snap.Totals.CaptureOverhead(),
		"graft.flush_ns":            snap.Totals.FlushNanos,
		"graft.max_capture_queue":   snap.Totals.MaxCaptureQueueDepth,
		"graft.subgraphs_computed":  snap.Totals.SubgraphsComputed,
		"graft.internal_iterations": snap.Totals.InternalIterations,
		"graft.max_compute_skew":    snap.Totals.MaxComputeSkew,
		"graft.max_message_skew":    snap.Totals.MaxMessageSkew,
		"graft.recoveries":          snap.Recoveries,
		"graft.messages_logged":     snap.MessagesLogged,
		"graft.bytes_logged":        snap.BytesLogged,
		"graft.faults.injected":     snap.Faults.Injected,
		"graft.faults.retries":      snap.Faults.Retries,
		"graft.faults.backoff_ns":   snap.Faults.Backoff.Nanoseconds(),
		"graft.faults.fallbacks":    snap.Faults.Fallbacks,
		"graft.faults.dropped":      snap.Faults.DroppedRecords,
		"graft.faults.corrupt_ckpt": snap.Faults.CorruptCheckpoints,
		"graft.traffic_messages":    snap.TrafficTotal(),
		"graft.local_messages":      snap.Totals.LocalMessages,
		"graft.local_ratio":         snap.Totals.LocalMessageRatio(snap.TrafficTotal()),
		"graft.edge_cut":            snap.EdgeCut,
		"graft.partitioner":         snap.Partitioner,
		"graft.anomalies":           len(snap.Anomalies),
		"runtime.goroutines":        runtime.NumGoroutine(),
		"runtime.heap_alloc":        mem.HeapAlloc,
		"runtime.num_gc":            mem.NumGC,
	}
	for kind, n := range snap.AnomalyCounts {
		vars["graft.anomalies."+kind] = n
	}
	if snap.DFS != nil {
		vars["graft.dfs.bytes_written"] = snap.DFS.BytesWritten
		vars["graft.dfs.bytes_read"] = snap.DFS.BytesRead
		vars["graft.dfs.prefetches"] = snap.DFS.Prefetches
		vars["graft.dfs.corrupt_reads"] = snap.DFS.CorruptReads
		vars["graft.dfs.write_retries"] = snap.DFS.WriteRetries
		vars["graft.dfs.degraded_writes"] = snap.DFS.DegradedWrites
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}

// MuxOptions configures NewMux.
type MuxOptions struct {
	// Pprof also mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewMux returns the standalone metrics mux `graft run -metrics-addr`
// serves: /metrics, /debug/vars, a liveness root, and optionally the
// pprof profiler. The GUI server mounts the same handlers into its own
// mux instead.
func NewMux(r *Registry, opts MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", r.ServeMetrics)
	mux.HandleFunc("GET /debug/vars", r.ServeVars)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"service":   "graft-metrics",
			"endpoints": []string{"/metrics", "/debug/vars"},
			"time":      time.Now().UTC().Format(time.RFC3339),
		})
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
