package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"graft/internal/pregel"
)

// JSONLSink streams metrics events as JSON Lines: one `job_start`
// line, one `superstep` line per barrier, one `job_end` line. The
// format is what `graft run -metrics-out` writes and graft-bench's
// overhead reports consume; it is append-only and valid mid-run, so a
// crashed job still leaves a parseable prefix.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// jsonlStart is the job_start event payload.
type jsonlStart struct {
	Event       string `json:"event"` // "job_start"
	JobID       string `json:"job_id"`
	Algorithm   string `json:"algorithm,omitempty"`
	NumWorkers  int    `json:"num_workers"`
	NumVertices int64  `json:"num_vertices"`
	NumEdges    int64  `json:"num_edges"`
}

// jsonlSuperstep is the superstep event payload.
type jsonlSuperstep struct {
	Event string `json:"event"` // "superstep"
	pregel.SuperstepStats
}

// jsonlEnd is the job_end event payload.
type jsonlEnd struct {
	Event         string            `json:"event"` // "job_end"
	JobID         string            `json:"job_id"`
	Supersteps    int               `json:"supersteps"`
	Reason        string            `json:"reason,omitempty"`
	Error         string            `json:"error,omitempty"`
	RuntimeNanos  int64             `json:"runtime_ns"`
	RecoveryNanos int64             `json:"recovery_ns"`
	Recoveries    int               `json:"recoveries"`
	Totals        Totals            `json:"totals"`
	Faults        pregel.FaultStats `json:"faults"`
}

func (s *JSONLSink) emit(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// JobStart implements Sink.
func (s *JSONLSink) JobStart(jm *JobMetrics) {
	s.emit(jsonlStart{
		Event: "job_start", JobID: jm.JobID, Algorithm: jm.Algorithm,
		NumWorkers: jm.NumWorkers, NumVertices: jm.NumVertices, NumEdges: jm.NumEdges,
	})
}

// Superstep implements Sink.
func (s *JSONLSink) Superstep(jm *JobMetrics, ss pregel.SuperstepStats) {
	s.emit(jsonlSuperstep{Event: "superstep", SuperstepStats: ss})
}

// JobEnd implements Sink.
func (s *JSONLSink) JobEnd(jm *JobMetrics) {
	s.emit(jsonlEnd{
		Event: "job_end", JobID: jm.JobID,
		Supersteps: len(jm.Supersteps), Reason: jm.Reason, Error: jm.Error,
		RuntimeNanos: jm.RuntimeNanos, RecoveryNanos: jm.RecoveryNanos,
		Recoveries: jm.Recoveries, Totals: jm.Totals, Faults: jm.Faults,
	})
	s.mu.Lock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Close flushes and closes the underlying writer (if closable).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// volatileKeys are the JSONL fields that vary run-to-run on identical
// inputs (wall-clock measurements and everything derived from them).
// NormalizeJSONL zeroes them so two runs of the same job can be
// compared byte-for-byte; the golden-file test relies on it.
var volatileKeys = map[string]bool{
	"compute_ns": true, "barrier_ns": true, "capture_ns": true,
	"runtime_ns": true, "recovery_ns": true, "backoff_ns": true,
	"flush_ns": true, "capture_queue": true, "max_capture_queue": true,
	"compute_skew": true, "message_skew": true, "straggler": true,
	"max_compute_skew": true, "max_message_skew": true,
}

// volatileDropKeys are fields whose very presence varies run-to-run:
// anomaly events derive from timing-based skew, so one run may emit
// them where another stays quiet. Zeroing is not enough — the key is
// removed entirely. (The traffic matrix, by contrast, is a pure
// function of the graph and partitioning, so it stays.)
var volatileDropKeys = map[string]bool{
	"anomalies": true, "anomaly_counts": true,
}

// NormalizeJSONL rewrites a JSONL metrics stream with every
// timing-derived field zeroed and object keys sorted, leaving only the
// deterministic structure (supersteps, message counts, vertices,
// reasons, fault counters).
func NormalizeJSONL(data []byte) ([]byte, error) {
	var out bytes.Buffer
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", i+1, err)
		}
		scrubVolatile(v)
		b, err := marshalSorted(v)
		if err != nil {
			return nil, err
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

func scrubVolatile(v any) {
	switch vv := v.(type) {
	case map[string]any:
		for k, val := range vv {
			if volatileKeys[k] {
				vv[k] = 0
				continue
			}
			if volatileDropKeys[k] {
				delete(vv, k)
				continue
			}
			scrubVolatile(val)
		}
	case []any:
		for _, e := range vv {
			scrubVolatile(e)
		}
	}
}

// marshalSorted renders a decoded JSON value with sorted object keys,
// so normalized output is stable. encoding/json already sorts map
// keys, but nested arrays of maps need the recursion.
func marshalSorted(v any) ([]byte, error) {
	switch vv := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(vv))
		for k := range vv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b bytes.Buffer
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			b.Write(kb)
			b.WriteByte(':')
			eb, err := marshalSorted(vv[k])
			if err != nil {
				return nil, err
			}
			b.Write(eb)
		}
		b.WriteByte('}')
		return b.Bytes(), nil
	case []any:
		var b bytes.Buffer
		b.WriteByte('[')
		for i, e := range vv {
			if i > 0 {
				b.WriteByte(',')
			}
			eb, err := marshalSorted(e)
			if err != nil {
				return nil, err
			}
			b.Write(eb)
		}
		b.WriteByte(']')
		return b.Bytes(), nil
	default:
		return json.Marshal(v)
	}
}
