// Package metrics is Graft's engine-wide observability layer: it
// turns the per-worker superstep telemetry the pregel engine folds at
// each barrier (compute wall time, barrier waits, message traffic,
// trace-capture time, straggler/skew indicators) into three export
// surfaces:
//
//   - a live HTTP endpoint (/metrics JSON plus an expvar-style
//     /debug/vars and optional pprof), served standalone by
//     `graft run -metrics-addr` and mounted into the GUI server,
//   - a structured JSONL event stream (`graft run -metrics-out`),
//     consumed by graft-bench for capture-overhead breakdowns,
//   - a per-job metrics file persisted next to the trace, which the
//     GUI's dashboard page renders offline.
//
// The hot path stays lock-free: workers record into their own padded
// slots inside the engine and the coordinator folds them at the
// barrier; this package only observes the folded SuperstepStats once
// per superstep through the JobListener interface, so its single mutex
// is contended only by HTTP readers.
package metrics

import (
	"fmt"
	"sync"
	"time"

	"graft/internal/anomaly"
	"graft/internal/dfs"
	"graft/internal/pregel"
)

// Totals is the job-level rollup of the per-superstep telemetry.
type Totals struct {
	// VerticesProcessed counts Compute invocations over the whole job.
	VerticesProcessed int64 `json:"vertices_processed"`
	// MessagesSent counts messages sent (pre-combining).
	MessagesSent int64 `json:"messages_sent"`
	// MessagesReceived counts messages delivered to vertices.
	MessagesReceived int64 `json:"messages_received"`
	// MessagesCombined counts messages merged away by the combiner.
	MessagesCombined int64 `json:"messages_combined"`
	// ComputeNanos sums the worker-phase wall time across supersteps.
	ComputeNanos int64 `json:"compute_ns"`
	// BarrierNanos sums worker idle time lost to stragglers.
	BarrierNanos int64 `json:"barrier_ns"`
	// CaptureNanos sums time spent inside Graft's trace capture.
	CaptureNanos int64 `json:"capture_ns"`
	// FlushNanos sums the coordinator time spent draining the capture
	// pipeline at superstep barriers (zero for undebugged runs and for
	// synchronous sinks, where writes happen inline).
	FlushNanos int64 `json:"flush_ns,omitempty"`
	// MaxCaptureQueueDepth is the deepest the capture pipeline's queues
	// got at any barrier: how far trace writing lagged compute.
	MaxCaptureQueueDepth int `json:"max_capture_queue,omitempty"`
	// MaxComputeSkew is the worst per-superstep max/mean compute ratio.
	MaxComputeSkew float64 `json:"max_compute_skew"`
	// MaxMessageSkew is the worst per-superstep message imbalance.
	MaxMessageSkew float64 `json:"max_message_skew"`
	// SubgraphsComputed counts ComputeSubgraph invocations over the
	// whole job (absent in vertex mode).
	SubgraphsComputed int64 `json:"subgraphs_computed,omitempty"`
	// InternalIterations sums the local sweeps subgraph computations
	// reported via AddIterations — the work the collapsed supersteps
	// moved inside the components (absent in vertex mode).
	InternalIterations int64 `json:"internal_iterations,omitempty"`
	// Rebalances counts barriers at which the skew rebalancer migrated
	// vertices (absent unless adaptive repartitioning is enabled).
	Rebalances int `json:"rebalances,omitempty"`
	// VerticesMigrated counts vertices the rebalancer moved between
	// partitions over the job.
	VerticesMigrated int64 `json:"vertices_migrated,omitempty"`
	// LocalMessages counts messages whose sender and receiver lived on
	// the same worker, over the supersteps with a captured traffic
	// matrix (absent when the matrix was never captured).
	LocalMessages int64 `json:"local_messages,omitempty"`
}

// LocalMessageRatio is the fraction of the job's traffic-accounted
// messages that stayed worker-local — the placement-quality headline.
func (t Totals) LocalMessageRatio(trafficTotal int64) float64 {
	if trafficTotal == 0 {
		return 0
	}
	return float64(t.LocalMessages) / float64(trafficTotal)
}

// add folds one superstep into the rollup.
func (t *Totals) add(ss pregel.SuperstepStats) {
	t.VerticesProcessed += ss.VerticesProcessed
	t.MessagesSent += ss.MessagesSent
	t.MessagesReceived += ss.MessagesReceived
	t.MessagesCombined += ss.MessagesCombined
	t.ComputeNanos += ss.ComputeTime.Nanoseconds()
	t.BarrierNanos += ss.BarrierWait.Nanoseconds()
	t.CaptureNanos += ss.CaptureTime.Nanoseconds()
	t.FlushNanos += ss.FlushTime.Nanoseconds()
	t.SubgraphsComputed += ss.SubgraphsComputed
	t.InternalIterations += ss.InternalIterations
	if ss.CaptureQueueDepth > t.MaxCaptureQueueDepth {
		t.MaxCaptureQueueDepth = ss.CaptureQueueDepth
	}
	if ss.ComputeSkew > t.MaxComputeSkew {
		t.MaxComputeSkew = ss.ComputeSkew
	}
	if ss.MessageSkew > t.MaxMessageSkew {
		t.MaxMessageSkew = ss.MessageSkew
	}
	t.LocalMessages += ss.LocalMessages
	for _, m := range ss.Migrations {
		t.Rebalances++
		t.VerticesMigrated += m.Vertices
	}
}

// CaptureOverhead returns the fraction of worker compute wall time
// spent inside trace capture — the live equivalent of the paper's
// Figure 8 overhead measurement.
func (t Totals) CaptureOverhead() float64 {
	if t.ComputeNanos == 0 {
		return 0
	}
	return float64(t.CaptureNanos) / float64(t.ComputeNanos)
}

// JobMetrics is the full observable state of one job: identity, the
// per-superstep telemetry, the rollup, and the resilience counters.
// It is what /metrics serves and what the per-job metrics file holds.
type JobMetrics struct {
	JobID       string `json:"job_id"`
	Algorithm   string `json:"algorithm,omitempty"`
	NumWorkers  int    `json:"num_workers"`
	NumVertices int64  `json:"num_vertices"`
	NumEdges    int64  `json:"num_edges"`
	// Running is true from JobStarted until JobFinished.
	Running bool `json:"running"`
	// Supersteps has one entry per finished superstep, in order.
	Supersteps []pregel.SuperstepStats `json:"supersteps"`
	Totals     Totals                  `json:"totals"`
	// Reason/Error/RuntimeNanos are filled at job end.
	Reason       string `json:"reason,omitempty"`
	Error        string `json:"error,omitempty"`
	RuntimeNanos int64  `json:"runtime_ns"`
	// RecoveryNanos is the portion of the runtime spent restoring
	// checkpoints.
	RecoveryNanos int64 `json:"recovery_ns"`
	Recoveries    int   `json:"recoveries"`
	// RecoveryEvents break each recovery down by mode and confinement
	// scope (filled at job end).
	RecoveryEvents []pregel.RecoveryEvent `json:"recovery_events,omitempty"`
	// MessagesLogged / BytesLogged count the sender-side outbox-log
	// volume written for log-based confined recovery (zero unless the
	// engine runs with Recovery=log).
	MessagesLogged int64 `json:"messages_logged,omitempty"`
	BytesLogged    int64 `json:"bytes_logged,omitempty"`
	// Faults carries the storage-resilience counters: live snapshots of
	// the registered fault sources while the job runs, the engine's
	// final folded FaultStats afterwards.
	Faults pregel.FaultStats `json:"faults"`
	// DFS carries the distributed-store data-path counters (bytes
	// moved, read-ahead hits, quarantined replicas) when a DFS source
	// is registered; nil otherwise.
	DFS *dfs.ClusterStats `json:"dfs,omitempty"`
	// Anomalies is the flat feed of every anomaly event emitted over
	// the job, in superstep order (also present per superstep inside
	// Supersteps); AnomalyCounts rolls them up by kind.
	Anomalies     []anomaly.Event `json:"anomalies,omitempty"`
	AnomalyCounts map[string]int  `json:"anomaly_counts,omitempty"`
	// Partitioner names the placement mode the job ran with ("hash" or
	// "locality"); PartitionSizes is the per-worker vertex count at job
	// end and EdgeCut the final cross-partition directed-edge count —
	// the placement-quality view graft show and the GUI job page render
	// (filled at job end).
	Partitioner    string  `json:"partitioner,omitempty"`
	PartitionSizes []int64 `json:"partition_sizes,omitempty"`
	EdgeCut        int64   `json:"edge_cut,omitempty"`
}

// TrafficTotal sums a job's captured traffic matrices: the number of
// messages whose sender→receiver lane is accounted for. When the
// engine captured the matrix at every superstep it equals
// Totals.MessagesSent — the invariant the profiler smoke test asserts.
func (jm *JobMetrics) TrafficTotal() int64 {
	var n int64
	for _, ss := range jm.Supersteps {
		for _, row := range ss.Traffic {
			for _, v := range row {
				n += v
			}
		}
	}
	return n
}

// Registry collects one job's metrics and serves them. It implements
// pregel.JobListener; wire it as the engine listener (or behind
// core.Graft.Chain so the debugger forwards to it). All listener
// callbacks run on the engine's coordinator goroutine; the mutex only
// shields concurrent HTTP readers, never the compute hot path.
type Registry struct {
	mu      sync.Mutex
	jm      JobMetrics
	sources []pregel.FaultStatsProvider
	dfsSrcs []DFSSource
	sink    Sink
}

// DFSSource is a storage layer that exposes DFS data-path counters;
// *dfs.Cluster implements it.
type DFSSource interface {
	Stats() dfs.ClusterStats
}

// Sink receives metrics events as they happen; the JSONL exporter
// implements it. Calls arrive on the coordinator goroutine, already
// serialized.
type Sink interface {
	JobStart(jm *JobMetrics)
	Superstep(jm *JobMetrics, ss pregel.SuperstepStats)
	JobEnd(jm *JobMetrics)
}

// NewRegistry creates a registry for one job run.
func NewRegistry(jobID, algorithm string) *Registry {
	return &Registry{jm: JobMetrics{JobID: jobID, Algorithm: algorithm}}
}

// SetSink installs an event sink (e.g. the JSONL exporter). Call
// before the job starts.
func (r *Registry) SetSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// AddFaultSource registers a resilient storage layer whose counters
// are snapshotted into /metrics while the job is still running —
// chaos runs expose retries/fallbacks live, not only in the final
// result. After JobFinished the engine's folded FaultStats wins.
func (r *Registry) AddFaultSource(p pregel.FaultStatsProvider) {
	if p == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, p)
}

// AddDFSSource registers a cluster whose data-path counters (bytes
// written/read, prefetch hits, corrupt replicas quarantined) are
// snapshotted into /metrics and the dashboard. Multiple sources fold
// together — a job may write traces and checkpoints to separate
// clusters.
func (r *Registry) AddDFSSource(s DFSSource) {
	if s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dfsSrcs = append(r.dfsSrcs, s)
}

// JobStarted implements pregel.JobListener.
func (r *Registry) JobStarted(info pregel.JobInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jm.NumWorkers = info.NumWorkers
	r.jm.NumVertices = info.NumVertices
	r.jm.NumEdges = info.NumEdges
	r.jm.Running = true
	if r.sink != nil {
		r.sink.JobStart(&r.jm)
	}
}

// SuperstepStarted implements pregel.JobListener.
func (r *Registry) SuperstepStarted(superstep int, info pregel.SuperstepInfo) {}

// SuperstepFinished implements pregel.JobListener: it folds one
// superstep's telemetry into the registry.
func (r *Registry) SuperstepFinished(superstep int, ss pregel.SuperstepStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jm.Supersteps = append(r.jm.Supersteps, ss)
	r.jm.Totals.add(ss)
	if len(ss.Anomalies) > 0 {
		r.jm.Anomalies = append(r.jm.Anomalies, ss.Anomalies...)
		if r.jm.AnomalyCounts == nil {
			r.jm.AnomalyCounts = map[string]int{}
		}
		for _, ev := range ss.Anomalies {
			r.jm.AnomalyCounts[string(ev.Kind)]++
		}
	}
	if r.sink != nil {
		r.sink.Superstep(&r.jm, ss)
	}
}

// JobFinished implements pregel.JobListener.
func (r *Registry) JobFinished(stats *pregel.Stats, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jm.Running = false
	if stats != nil {
		r.jm.Reason = stats.Reason.String()
		r.jm.RuntimeNanos = stats.Runtime.Nanoseconds()
		r.jm.RecoveryNanos = stats.RecoveryTime.Nanoseconds()
		r.jm.Recoveries = stats.Recoveries
		r.jm.RecoveryEvents = stats.RecoveryEvents
		r.jm.MessagesLogged = stats.MessagesLogged
		r.jm.BytesLogged = stats.BytesLogged
		r.jm.Faults = stats.Faults
		r.jm.Partitioner = stats.Partitioner.String()
		r.jm.PartitionSizes = stats.PartitionSizes
		r.jm.EdgeCut = stats.EdgeCut
	}
	if err != nil {
		r.jm.Error = err.Error()
	}
	if r.sink != nil {
		r.sink.JobEnd(&r.jm)
	}
}

// Snapshot returns a deep-enough copy of the current job metrics for
// serving: the supersteps slice is copied so later appends do not race
// with encoders, and while the job runs the fault counters are
// refreshed from the registered sources.
func (r *Registry) Snapshot() JobMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := r.jm
	snap.Supersteps = append([]pregel.SuperstepStats(nil), r.jm.Supersteps...)
	snap.Anomalies = append([]anomaly.Event(nil), r.jm.Anomalies...)
	if len(r.jm.AnomalyCounts) > 0 {
		snap.AnomalyCounts = make(map[string]int, len(r.jm.AnomalyCounts))
		for k, v := range r.jm.AnomalyCounts {
			snap.AnomalyCounts[k] = v
		}
	}
	if snap.Running {
		var fs pregel.FaultStats
		for _, p := range r.sources {
			fs.Add(p.FaultStats())
		}
		snap.Faults = fs
	}
	if len(r.dfsSrcs) > 0 {
		var ds dfs.ClusterStats
		for _, s := range r.dfsSrcs {
			ds.Add(s.Stats())
		}
		snap.DFS = &ds
	}
	return snap
}

// String summarizes the registry for logs.
func (r *Registry) String() string {
	snap := r.Snapshot()
	return fmt.Sprintf("metrics[%s: supersteps=%d compute=%v barrier=%v capture=%v]",
		snap.JobID, len(snap.Supersteps),
		time.Duration(snap.Totals.ComputeNanos).Round(time.Microsecond),
		time.Duration(snap.Totals.BarrierNanos).Round(time.Microsecond),
		time.Duration(snap.Totals.CaptureNanos).Round(time.Microsecond))
}
