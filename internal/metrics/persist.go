package metrics

import (
	"encoding/json"
	"errors"

	"graft/internal/dfs"
)

// ErrNoMetrics is returned by ReadJobMetrics when a job was traced
// without the metrics layer (older traces, or metrics disabled).
var ErrNoMetrics = errors.New("metrics: job has no metrics file")

// WriteJobMetrics persists a job's metrics next to its trace files
// (trace.Store.MetricsPath gives the conventional location), so the
// GUI dashboard can render runs long after the process that produced
// them exited.
func WriteJobMetrics(fs dfs.FileSystem, path string, jm JobMetrics) error {
	b, err := json.MarshalIndent(jm, "", "  ")
	if err != nil {
		return err
	}
	return dfs.WriteFile(fs, path, b)
}

// ReadJobMetrics loads a persisted job metrics file.
func ReadJobMetrics(fs dfs.FileSystem, path string) (JobMetrics, error) {
	var jm JobMetrics
	raw, err := dfs.ReadFile(fs, path)
	if errors.Is(err, dfs.ErrNotExist) {
		return jm, ErrNoMetrics
	}
	if err != nil {
		return jm, err
	}
	err = json.Unmarshal(raw, &jm)
	return jm, err
}
