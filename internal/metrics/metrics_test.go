package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graft/internal/pregel"
)

var update = flag.Bool("update", false, "rewrite golden files")

// ccCompute is the same HCC used by the engine tests: propagate the
// minimum vertex ID along edges until no label changes.
var ccCompute = pregel.ComputeFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	if ctx.Superstep() == 0 {
		v.SetValue(pregel.NewLong(int64(v.ID())))
		ctx.SendMessageToAllEdges(v, pregel.NewLong(int64(v.ID())))
		v.VoteToHalt()
		return nil
	}
	cur := v.Value().(*pregel.LongValue).Get()
	min := cur
	for _, m := range msgs {
		if x := m.(*pregel.LongValue).Get(); x < min {
			min = x
		}
	}
	if min < cur {
		v.SetValue(pregel.NewLong(min))
		ctx.SendMessageToAllEdges(v, pregel.NewLong(min))
	}
	v.VoteToHalt()
	return nil
})

func pathGraph(t *testing.T, n int) *pregel.Graph {
	t.Helper()
	g := pregel.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), pregel.NewLong(0))
	}
	for i := 1; i < n; i++ {
		if err := g.AddUndirectedEdge(pregel.VertexID(i-1), pregel.VertexID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestRegistryConcurrentSnapshots runs a real job with the registry as
// listener while hammering Snapshot from reader goroutines — the
// /metrics serving path — and then checks the folded totals. Run under
// -race this is the collector/reader interleaving test.
func TestRegistryConcurrentSnapshots(t *testing.T) {
	reg := NewRegistry("cc-test", "cc")
	g := pathGraph(t, 96)
	job := pregel.NewJob(g, ccCompute, pregel.Config{NumWorkers: 4, Listener: reg})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := reg.Snapshot()
				// Monotone consistency: totals never contradict the
				// supersteps captured in the same snapshot.
				var v int64
				for _, ss := range snap.Supersteps {
					v += ss.VerticesProcessed
				}
				if v != snap.Totals.VerticesProcessed {
					t.Errorf("snapshot totals %d != superstep sum %d", snap.Totals.VerticesProcessed, v)
					return
				}
			}
		}()
	}
	stats, err := job.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Running {
		t.Error("Running still true after JobFinished")
	}
	if len(snap.Supersteps) != stats.Supersteps {
		t.Errorf("registry has %d supersteps, stats say %d", len(snap.Supersteps), stats.Supersteps)
	}
	if snap.NumWorkers != 4 || snap.NumVertices != 96 {
		t.Errorf("job info not captured: %+v", snap)
	}
	if snap.Reason == "" {
		t.Error("Reason empty after job end")
	}
	if snap.RuntimeNanos <= 0 {
		t.Error("RuntimeNanos not recorded")
	}
	if snap.Totals.ComputeNanos <= 0 {
		t.Error("ComputeNanos not folded")
	}
}

type stubFaults struct{ fs pregel.FaultStats }

func (s stubFaults) FaultStats() pregel.FaultStats { return s.fs }

func TestSnapshotOverlaysLiveFaultSources(t *testing.T) {
	reg := NewRegistry("chaos", "cc")
	reg.AddFaultSource(stubFaults{pregel.FaultStats{Injected: 3, Retries: 2}})
	reg.AddFaultSource(stubFaults{pregel.FaultStats{Injected: 1}})

	reg.JobStarted(pregel.JobInfo{NumWorkers: 2})
	if got := reg.Snapshot().Faults; got.Injected != 4 || got.Retries != 2 {
		t.Errorf("live overlay = %+v, want injected=4 retries=2", got)
	}

	// After the job ends the engine's folded stats win over the live
	// sources (which may double-count layers the engine already folded).
	reg.JobFinished(&pregel.Stats{Faults: pregel.FaultStats{Injected: 9}}, nil)
	if got := reg.Snapshot().Faults; got.Injected != 9 {
		t.Errorf("final faults = %+v, want the engine's injected=9", got)
	}
}

// TestJSONLGolden runs a deterministic job through the JSONL sink and
// compares the normalized stream against the checked-in golden file.
// Timings and everything derived from them are zeroed by
// NormalizeJSONL; what remains (superstep structure, message counts,
// vertices, reason) must be exactly reproducible.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry("cc-golden", "cc")
	sink := NewJSONLSink(&buf)
	reg.SetSink(sink)

	g := pathGraph(t, 24)
	job := pregel.NewJob(g, ccCompute, pregel.Config{NumWorkers: 3, Listener: reg})
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := NormalizeJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	golden := filepath.Join("testdata", "cc_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalized JSONL diverges from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestNormalizeJSONLZeroesVolatileFields(t *testing.T) {
	in := []byte(`{"event":"superstep","superstep":1,"compute_ns":12345,"workers":[{"worker":0,"compute_ns":999,"barrier_ns":5}],"sent":7}` + "\n")
	out, err := NormalizeJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"compute_ns":0,"event":"superstep","sent":7,"superstep":1,"workers":[{"barrier_ns":0,"compute_ns":0,"worker":0}]}` + "\n"
	if string(out) != want {
		t.Errorf("normalized = %s, want %s", out, want)
	}
}

func TestTotalsCaptureOverhead(t *testing.T) {
	tt := Totals{ComputeNanos: 200, CaptureNanos: 10}
	if got := tt.CaptureOverhead(); got != 0.05 {
		t.Errorf("CaptureOverhead = %v, want 0.05", got)
	}
	if got := (Totals{}).CaptureOverhead(); got != 0 {
		t.Errorf("zero-compute overhead = %v, want 0", got)
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failingWriter{})
	sink.JobStart(&JobMetrics{JobID: "x"})
	sink.JobEnd(&JobMetrics{}) // flushes, surfacing the write error
	if sink.Err() == nil {
		t.Fatal("write error not recorded")
	}
	// Later events are dropped, not panicking or blocking.
	sink.Superstep(&JobMetrics{}, pregel.SuperstepStats{})
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }

func TestRegistryStringSummarizes(t *testing.T) {
	reg := NewRegistry("job-1", "cc")
	reg.SuperstepFinished(0, pregel.SuperstepStats{
		Superstep:   0,
		ComputeTime: 3 * time.Millisecond,
	})
	s := reg.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("job-1")) {
		t.Errorf("String() = %q", s)
	}
}
