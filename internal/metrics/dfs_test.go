package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"graft/internal/dfs"
	"graft/internal/pregel"
)

// TestSnapshotFoldsDFSSources: registered clusters' data-path counters
// appear in the snapshot, folded across sources, and track live I/O.
func TestSnapshotFoldsDFSSources(t *testing.T) {
	reg := NewRegistry("job-dfs", "cc")
	if snap := reg.Snapshot(); snap.DFS != nil {
		t.Fatal("snapshot reports DFS counters with no source registered")
	}
	traces := dfs.NewCluster(3, 2, 32)
	ckpts := dfs.NewCluster(2, 2, 32)
	reg.AddDFSSource(traces)
	reg.AddDFSSource(ckpts)
	reg.AddDFSSource(nil) // ignored, not a panic

	body := make([]byte, 96)
	if err := dfs.WriteFile(traces, "t/seg-0", body); err != nil {
		t.Fatal(err)
	}
	if err := dfs.WriteFile(ckpts, "c/ckpt-0", body); err != nil {
		t.Fatal(err)
	}
	if _, err := dfs.ReadFile(traces, "t/seg-0"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.DFS == nil {
		t.Fatal("snapshot has no DFS counters after registration")
	}
	// 96 bytes × replication 2 on each cluster.
	if want := int64(96 * 2 * 2); snap.DFS.BytesWritten != want {
		t.Errorf("BytesWritten = %d, want %d (folded across both clusters)", snap.DFS.BytesWritten, want)
	}
	if snap.DFS.BytesRead != 96 {
		t.Errorf("BytesRead = %d, want 96", snap.DFS.BytesRead)
	}

	// The snapshot is a copy: counters keep moving, old snapshots don't.
	if _, err := dfs.ReadFile(traces, "t/seg-0"); err != nil {
		t.Fatal(err)
	}
	if again := reg.Snapshot(); again.DFS.BytesRead <= snap.DFS.BytesRead {
		t.Errorf("live counters did not advance: %d then %d", snap.DFS.BytesRead, again.DFS.BytesRead)
	}
}

// TestDebugVarsExportsDFS: /debug/vars grows graft.dfs.* keys when a
// DFS source is registered, and omits them otherwise.
func TestDebugVarsExportsDFS(t *testing.T) {
	reg := NewRegistry("job-dfs-vars", "cc")
	reg.JobStarted(pregel.JobInfo{NumWorkers: 2})
	c := dfs.NewCluster(2, 2, 32)
	reg.AddDFSSource(c)
	if err := dfs.WriteFile(c, "f", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(NewMux(reg, MuxOptions{}))
	defer ts.Close()
	code, body := getBody(t, ts, "/debug/vars")
	if code != 200 {
		t.Fatalf("GET /debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"graft.dfs.bytes_written", "graft.dfs.bytes_read", "graft.dfs.prefetches",
		"graft.dfs.corrupt_reads", "graft.dfs.write_retries", "graft.dfs.degraded_writes",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	if got, ok := vars["graft.dfs.bytes_written"].(float64); !ok || int64(got) != 128 {
		t.Errorf("graft.dfs.bytes_written = %v, want 128", vars["graft.dfs.bytes_written"])
	}

	// No source registered → no graft.dfs.* keys.
	bare := httptest.NewServer(NewMux(seededRegistry(), MuxOptions{}))
	defer bare.Close()
	_, body = getBody(t, bare, "/debug/vars")
	var bareVars map[string]any
	if err := json.Unmarshal(body, &bareVars); err != nil {
		t.Fatal(err)
	}
	if _, ok := bareVars["graft.dfs.bytes_written"]; ok {
		t.Error("/debug/vars exports graft.dfs.* with no DFS source registered")
	}
}
