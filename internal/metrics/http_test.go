package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"graft/internal/pregel"
)

// seededRegistry returns a registry mid-run with two supersteps folded.
func seededRegistry() *Registry {
	reg := NewRegistry("job-http", "pagerank")
	reg.JobStarted(pregel.JobInfo{NumWorkers: 4, NumVertices: 100, NumEdges: 250})
	for i := 0; i < 2; i++ {
		reg.SuperstepFinished(i, pregel.SuperstepStats{
			Superstep:         i,
			ActiveAtEnd:       100,
			MessagesSent:      250,
			VerticesProcessed: 100,
			ComputeTime:       2 * time.Millisecond,
			BarrierWait:       time.Millisecond,
			CaptureTime:       100 * time.Microsecond,
			ComputeSkew:       1.2,
			Straggler:         3,
		})
	}
	return reg
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestMetricsEndpointShape(t *testing.T) {
	ts := httptest.NewServer(NewMux(seededRegistry(), MuxOptions{}))
	defer ts.Close()

	code, body := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var jm JobMetrics
	if err := json.Unmarshal(body, &jm); err != nil {
		t.Fatalf("/metrics is not valid JobMetrics JSON: %v\n%s", err, body)
	}
	if jm.JobID != "job-http" || !jm.Running || len(jm.Supersteps) != 2 {
		t.Errorf("unexpected snapshot: job=%q running=%v supersteps=%d", jm.JobID, jm.Running, len(jm.Supersteps))
	}
	if jm.Totals.VerticesProcessed != 200 || jm.Totals.MessagesSent != 500 {
		t.Errorf("totals not folded: %+v", jm.Totals)
	}
	if jm.Supersteps[0].Straggler != 3 || jm.Supersteps[0].ComputeSkew != 1.2 {
		t.Errorf("skew fields lost in transit: %+v", jm.Supersteps[0])
	}
}

func TestDebugVarsShape(t *testing.T) {
	ts := httptest.NewServer(NewMux(seededRegistry(), MuxOptions{}))
	defer ts.Close()

	code, body := getBody(t, ts, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"graft.job_id", "graft.supersteps", "graft.vertices_processed",
		"graft.compute_ns", "graft.capture_overhead", "graft.max_compute_skew",
		"graft.faults.injected", "runtime.goroutines",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	if vars["graft.job_id"] != "job-http" {
		t.Errorf("graft.job_id = %v", vars["graft.job_id"])
	}
}

func TestMuxLivenessAndPprofGating(t *testing.T) {
	ts := httptest.NewServer(NewMux(seededRegistry(), MuxOptions{}))
	defer ts.Close()
	if code, _ := getBody(t, ts, "/"); code != http.StatusOK {
		t.Errorf("GET / = %d", code)
	}
	if code, _ := getBody(t, ts, "/debug/pprof/"); code == http.StatusOK {
		t.Error("pprof mounted without MuxOptions.Pprof")
	}

	tsP := httptest.NewServer(NewMux(seededRegistry(), MuxOptions{Pprof: true}))
	defer tsP.Close()
	if code, _ := getBody(t, tsP, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("GET /debug/pprof/ with Pprof on = %d", code)
	}
}
