package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"graft/internal/dfs"
)

// DFSBench is one workload's row of the DFS data-path experiment
// behind `graft-bench -dfs`. Two cells feed it:
//
//   - serial: the seed-era data path (dfs.Cluster.SetSerialDataPath),
//     where every replica put of every block happens sequentially
//     under the global namenode lock and Open copies whole files into
//     memory before returning,
//   - parallel: the pipelined path, where replica puts fan out
//     concurrently per block with the namenode lock held only for
//     allocation and commit, and reads stream block by block with
//     background read-ahead and replica selection rotating across
//     live nodes.
//
// Both cells run against clusters with the same simulated per-replica
// transfer cost (DFSBenchNodeDelay, charged under a per-node device
// mutex so transfers to one node queue while other nodes proceed) —
// without it the comparison degenerates into racing map inserts, when
// the data path's actual job is to keep replica round trips off each
// other's critical paths: the serial cell pays every transfer of every
// writer back to back behind one lock, the parallel cell overlaps
// them across nodes.
type DFSBench struct {
	Workload string `json:"workload"`
	Reps     int    `json:"reps"`
	// Cluster geometry of both cells.
	Nodes       int `json:"nodes"`
	Replication int `json:"replication"`
	BlockSize   int `json:"block_size"`
	// Workload shape: Writers goroutines each moving Files files of
	// BlocksPerFile blocks.
	Writers       int `json:"writers"`
	Files         int `json:"files"`
	BlocksPerFile int `json:"blocks_per_file"`
	// NodeDelayNanos is the simulated per-replica-operation transfer
	// cost both cells paid.
	NodeDelayNanos int64 `json:"node_delay_ns"`
	// SerialNanos / ParallelNanos are the fastest-repetition times of
	// the two cells.
	SerialNanos   int64 `json:"serial_ns"`
	ParallelNanos int64 `json:"parallel_ns"`
	// Speedup is SerialNanos/ParallelNanos: >1 means the pipelined
	// path beat the seed path.
	Speedup float64 `json:"speedup"`
	// Counters from the parallel cell's cluster.
	BytesWritten int64 `json:"bytes_written"`
	BytesRead    int64 `json:"bytes_read"`
	// Prefetches is how many streamed blocks the read-ahead had already
	// fetched when the consumer asked (parallel cell only; the serial
	// path has no read-ahead).
	Prefetches int64 `json:"prefetches"`
}

// DFS benchmark geometry. The delay is the order of an intra-rack
// round trip; the block count is small enough for CI but large enough
// that every file is multi-block and every writer places blocks
// concurrently with its siblings.
const (
	DFSBenchNodes         = 6
	DFSBenchReplication   = 3
	DFSBenchBlockSize     = 4 << 10
	DFSBenchWriters       = 4
	DFSBenchFilesPerPath  = 3 // files per writer
	DFSBenchBlocksPerFile = 4
	DFSBenchNodeDelay     = 200 * time.Microsecond
	// DFSBenchReplayCost models the per-block work a trace reader does
	// with the bytes it just streamed (decode, filter, replay). It is
	// what the read-ahead overlaps with: while the consumer chews on
	// block k, the fetcher's replica round trip for block k+1 is in
	// flight. The serial cell pays the same cost, but only after its
	// eager Open has already paid for every round trip back to back.
	DFSBenchReplayCost = 250 * time.Microsecond
)

// dfsBenchCluster builds one cell's cluster with the benchmark
// geometry and transfer cost.
func dfsBenchCluster(serial bool) *dfs.Cluster {
	c := dfs.NewCluster(DFSBenchNodes, DFSBenchReplication, DFSBenchBlockSize)
	c.SetSerialDataPath(serial)
	c.SetNodeDelay(DFSBenchNodeDelay)
	return c
}

// dfsBenchBody fills a deterministic pseudo-random file body: payload
// the block checksums actually have to chew on, unique per file so a
// misrouted read cannot pass the verification below.
func dfsBenchBody(seed int64, file int) []byte {
	body := make([]byte, DFSBenchBlocksPerFile*DFSBenchBlockSize)
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(file)
	for i := range body {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		body[i] = byte(x)
	}
	return body
}

// dfsWriteWorkload times Writers concurrent goroutines each writing
// its files through the cluster's write path — the shape of trace-sink
// drainers committing segments at a barrier.
func dfsWriteWorkload(c *dfs.Cluster, seed int64) (time.Duration, error) {
	runtime.GC()
	errs := make([]error, DFSBenchWriters)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < DFSBenchWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := 0; f < DFSBenchFilesPerPath; f++ {
				file := w*DFSBenchFilesPerPath + f
				path := fmt.Sprintf("bench/seg-%02d", file)
				if err := dfs.WriteFile(c, path, dfsBenchBody(seed, file)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// dfsReadWorkload times Writers concurrent goroutines each streaming
// back its files and verifying the payload — the shape of trace
// readers replaying a superstep range.
func dfsReadWorkload(c *dfs.Cluster, seed int64) (time.Duration, error) {
	runtime.GC()
	errs := make([]error, DFSBenchWriters)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < DFSBenchWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, DFSBenchBlockSize)
			for f := 0; f < DFSBenchFilesPerPath; f++ {
				file := w*DFSBenchFilesPerPath + f
				path := fmt.Sprintf("bench/seg-%02d", file)
				want := dfsBenchBody(seed, file)
				r, err := c.Open(path)
				if err != nil {
					errs[w] = err
					return
				}
				off := 0
				for {
					n, err := io.ReadFull(r, buf)
					if n > 0 {
						if off+n > len(want) || !bytes.Equal(buf[:n], want[off:off+n]) {
							errs[w] = fmt.Errorf("%s: wrong bytes at offset %d", path, off)
							r.Close()
							return
						}
						off += n
						time.Sleep(DFSBenchReplayCost) // replay the block
					}
					if err == io.EOF || err == io.ErrUnexpectedEOF {
						break
					}
					if err != nil {
						errs[w] = err
						r.Close()
						return
					}
				}
				r.Close()
				if off != len(want) {
					errs[w] = fmt.Errorf("%s: read %d of %d bytes", path, off, len(want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// dfsBenchWorkloads are the two measured shapes: the concurrent write
// fan-in and the concurrent streaming read-back. The read workload's
// setup (writing the files) is untimed.
var dfsBenchWorkloads = []struct {
	name  string
	setup func(c *dfs.Cluster, seed int64) error
	run   func(c *dfs.Cluster, seed int64) (time.Duration, error)
}{
	{
		name: "sink-drain",
		run:  dfsWriteWorkload,
	},
	{
		name: "trace-scan",
		setup: func(c *dfs.Cluster, seed int64) error {
			_, err := dfsWriteWorkload(c, seed)
			return err
		},
		run: dfsReadWorkload,
	},
}

// RunDFSBench measures the DFS data path: for each workload it
// compares the seed-era serial path against the pipelined streaming
// path on freshly built clusters with identical geometry and simulated
// transfer costs. Serial and parallel repetitions are interleaved so
// machine-load drift hits both cells equally, with the order inside
// each repetition alternating; each cell is summarized by its fastest
// repetition (noise on a shared host is strictly additive).
func RunDFSBench(opts Options) ([]DFSBench, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	var out []DFSBench
	for _, wl := range dfsBenchWorkloads {
		cell := func(serial bool, rep int) (time.Duration, dfs.ClusterStats, error) {
			c := dfsBenchCluster(serial)
			seed := opts.Seed + int64(rep)
			if wl.setup != nil {
				if err := wl.setup(c, seed); err != nil {
					return 0, dfs.ClusterStats{}, err
				}
			}
			elapsed, err := wl.run(c, seed)
			return elapsed, c.Stats(), err
		}
		var serialTimes, parallelTimes []time.Duration
		var parStats dfs.ClusterStats
		for rep := -1; rep < opts.Reps; rep++ {
			var sT, pT time.Duration
			var pS dfs.ClusterStats
			runSerial := func() (err error) {
				sT, _, err = cell(true, rep)
				return err
			}
			runParallel := func() (err error) {
				pT, pS, err = cell(false, rep)
				return err
			}
			first, second := runSerial, runParallel
			if rep%2 != 0 {
				first, second = runParallel, runSerial
			}
			if err := first(); err != nil {
				return nil, fmt.Errorf("harness: dfs %s: %w", wl.name, err)
			}
			if err := second(); err != nil {
				return nil, fmt.Errorf("harness: dfs %s: %w", wl.name, err)
			}
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "  %s rep %2d: serial=%v parallel=%v\n", wl.name, rep, sT, pT)
			}
			if rep < 0 {
				continue // warmup
			}
			serialTimes = append(serialTimes, sT)
			parallelTimes = append(parallelTimes, pT)
			parStats = pS
		}
		serialBest, parallelBest := fastest(serialTimes), fastest(parallelTimes)
		row := DFSBench{
			Workload:       wl.name,
			Reps:           opts.Reps,
			Nodes:          DFSBenchNodes,
			Replication:    DFSBenchReplication,
			BlockSize:      DFSBenchBlockSize,
			Writers:        DFSBenchWriters,
			Files:          DFSBenchWriters * DFSBenchFilesPerPath,
			BlocksPerFile:  DFSBenchBlocksPerFile,
			NodeDelayNanos: DFSBenchNodeDelay.Nanoseconds(),
			SerialNanos:    serialBest.Nanoseconds(),
			ParallelNanos:  parallelBest.Nanoseconds(),
			BytesWritten:   parStats.BytesWritten,
			BytesRead:      parStats.BytesRead,
			Prefetches:     parStats.Prefetches,
		}
		if parallelBest > 0 {
			row.Speedup = float64(serialBest) / float64(parallelBest)
		}
		out = append(out, row)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-10s serial=%8.2fms parallel=%8.2fms speedup=%.2fx\n",
				wl.name, float64(serialBest.Microseconds())/1000,
				float64(parallelBest.Microseconds())/1000, row.Speedup)
		}
	}
	return out, nil
}

// PrintDFSBench renders the DFS data-path rows as a table.
func PrintDFSBench(w io.Writer, rows []DFSBench) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tserial\tparallel\tspeedup\tfiles\tblocks/file\twritten\tread\tprefetches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\t%d\t%d\t%dB\t%dB\t%d\n",
			r.Workload,
			time.Duration(r.SerialNanos).Round(time.Microsecond),
			time.Duration(r.ParallelNanos).Round(time.Microsecond),
			r.Speedup, r.Files, r.BlocksPerFile,
			r.BytesWritten, r.BytesRead, r.Prefetches)
	}
	tw.Flush()
}

// WriteDFSBenchJSON writes the rows as indented JSON (the
// BENCH_dfs.json artifact).
func WriteDFSBenchJSON(w io.Writer, rows []DFSBench) error {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CheckDFSBench verifies the acceptance claim: the pipelined streaming
// path is strictly faster than the seed serial path on every workload,
// and the streaming read-back actually exercised the read-ahead.
func CheckDFSBench(rows []DFSBench) []string {
	var problems []string
	for _, r := range rows {
		if r.ParallelNanos >= r.SerialNanos {
			problems = append(problems, fmt.Sprintf(
				"%s: parallel path (%v) not faster than seed serial path (%v)",
				r.Workload, time.Duration(r.ParallelNanos), time.Duration(r.SerialNanos)))
		}
		if r.Workload == "trace-scan" && r.Prefetches == 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: streaming read-back never hit the read-ahead", r.Workload))
		}
	}
	return problems
}
