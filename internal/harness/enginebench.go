package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/pregel"
)

// EngineBench is one cell row of the message-plane experiment behind
// `graft-bench -engine`: the same workload run through the seed
// mutex-sharded message plane and through the lock-free lane plane
// (per-sender inbox lanes with sender-side combining). For skewed
// graphs a third cell layers the skew-driven rebalancer on top of the
// lane plane and reports its migration counters.
//
// The mutex and lane repetitions are interleaved with alternating
// order and summarized by the fastest repetition, the same
// methodology as the capture benchmark: noise on a shared host is
// strictly additive, so the minimum is the least contaminated
// estimate of each cell's true cost.
type EngineBench struct {
	Workload string `json:"workload"`
	// Algorithm and Shape name the grid cell: pagerank/cc over a
	// skewed (preferential-attachment web) or uniform (regular
	// bipartite) graph.
	Algorithm string `json:"algorithm"`
	Shape     string `json:"shape"`
	// Combiner reports whether the algorithm's combiner was active:
	// with it the lane plane also combines on the sender side; without
	// it the comparison isolates the lock-free delivery path.
	Combiner bool `json:"combiner"`
	Reps     int  `json:"reps"`
	Workers  int  `json:"workers"`
	// MutexNanos / LanesNanos are the fastest repetitions of each plane.
	MutexNanos int64 `json:"mutex_ns"`
	LanesNanos int64 `json:"lanes_ns"`
	// Speedup is MutexNanos/LanesNanos: >1 means the lane plane won.
	Speedup float64 `json:"speedup"`
	// Supersteps / MessagesSent / MessagesCombined come from the lane
	// run; the harness verifies supersteps and message totals match
	// across planes before trusting the timing comparison.
	Supersteps       int   `json:"supersteps"`
	MessagesSent     int64 `json:"messages_sent"`
	MessagesCombined int64 `json:"messages_combined"`
	// RebalanceNanos is the fastest lanes+rebalancer repetition on
	// skewed graphs (0 when the cell did not run), with the migration
	// counters the adaptive repartitioner reported.
	RebalanceNanos   int64 `json:"rebalance_ns,omitempty"`
	Rebalances       int   `json:"rebalances,omitempty"`
	VerticesMigrated int64 `json:"vertices_migrated,omitempty"`
}

// EngineWorkload is one (algorithm, graph) point of the engine grid.
type EngineWorkload struct {
	Label     string
	Algorithm string
	Shape     string
	Make      func() *algorithms.Algorithm
	Build     func() *pregel.Graph
	Workers   int
	// Skewed marks graphs with concentrated hot vertices, where the
	// rebalancer cell runs.
	Skewed bool
}

// EngineWorkloads returns the message-plane grid: PageRank and
// connected components over a skewed preferential-attachment web
// graph and a uniform regular bipartite graph.
func EngineWorkloads(scale float64, seed int64, workers int) []EngineWorkload {
	n := int(30_000_000 * scale)
	if n < 2000 {
		n = 2000
	}
	web := func() *pregel.Graph { return graphgen.WebGraph(n, 8, seed) }
	bp := func() *pregel.Graph { return graphgen.RegularBipartite(n, 8) }
	pr := func() *algorithms.Algorithm { return algorithms.NewPageRank(10, 0.85) }
	cc := algorithms.NewConnectedComponents
	return []EngineWorkload{
		{Label: "PR-web", Algorithm: "pagerank", Shape: "skewed", Make: pr, Build: web, Workers: workers, Skewed: true},
		{Label: "PR-bp", Algorithm: "pagerank", Shape: "uniform", Make: pr, Build: bp, Workers: workers},
		{Label: "CC-web", Algorithm: "cc", Shape: "skewed", Make: cc, Build: web, Workers: workers, Skewed: true},
		{Label: "CC-bp", Algorithm: "cc", Shape: "uniform", Make: cc, Build: bp, Workers: workers},
	}
}

// engineRun executes one undebugged repetition of a workload through
// the given message plane.
func engineRun(wl EngineWorkload, base *pregel.Graph, combine bool, cfg pregel.Config) (time.Duration, *pregel.Stats, error) {
	runtime.GC()
	g := base.Clone()
	alg := wl.Make()
	if !combine {
		alg.Combiner = nil
	}
	cfg.NumWorkers = wl.Workers
	job := alg.Configure(g, cfg)
	start := time.Now()
	stats, err := job.Run()
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), stats, nil
}

// RunEngineBench measures the lock-free message plane against the
// seed mutex plane across the workload grid, with and without
// combiners, plus a lanes+rebalancer cell on the skewed graphs.
func RunEngineBench(workloads []EngineWorkload, opts Options) ([]EngineBench, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	var out []EngineBench
	for _, wl := range workloads {
		base := wl.Build()
		for _, combine := range []bool{true, false} {
			label := fmt.Sprintf("%s/combiner=%v", wl.Label, combine)
			var mutexTimes, laneTimes []time.Duration
			var mutexStats, laneStats *pregel.Stats
			for rep := -1; rep < opts.Reps; rep++ {
				var mt, lt time.Duration
				runMutex := func() error {
					var err error
					mt, mutexStats, err = engineRun(wl, base, combine,
						pregel.Config{MessagePlane: pregel.PlaneMutex})
					if err != nil {
						return fmt.Errorf("harness: %s mutex: %w", label, err)
					}
					return nil
				}
				runLanes := func() error {
					var err error
					lt, laneStats, err = engineRun(wl, base, combine,
						pregel.Config{MessagePlane: pregel.PlaneLanes})
					if err != nil {
						return fmt.Errorf("harness: %s lanes: %w", label, err)
					}
					return nil
				}
				first, second := runMutex, runLanes
				if rep%2 != 0 {
					first, second = runLanes, runMutex
				}
				if err := first(); err != nil {
					return nil, err
				}
				if err := second(); err != nil {
					return nil, err
				}
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "  %s rep %2d: mutex=%v lanes=%v\n", label, rep, mt, lt)
				}
				if rep < 0 {
					continue // warmup
				}
				mutexTimes = append(mutexTimes, mt)
				laneTimes = append(laneTimes, lt)
			}
			// The timing comparison is only meaningful if both planes ran
			// the identical computation.
			if mutexStats.Supersteps != laneStats.Supersteps ||
				mutexStats.TotalMessages != laneStats.TotalMessages {
				return nil, fmt.Errorf("harness: %s: planes diverged (mutex %d steps/%d msgs, lanes %d steps/%d msgs)",
					label, mutexStats.Supersteps, mutexStats.TotalMessages,
					laneStats.Supersteps, laneStats.TotalMessages)
			}
			mutexBest, laneBest := fastest(mutexTimes), fastest(laneTimes)
			row := EngineBench{
				Workload:     wl.Label,
				Algorithm:    wl.Algorithm,
				Shape:        wl.Shape,
				Combiner:     combine,
				Reps:         opts.Reps,
				Workers:      wl.Workers,
				MutexNanos:   mutexBest.Nanoseconds(),
				LanesNanos:   laneBest.Nanoseconds(),
				Supersteps:   laneStats.Supersteps,
				MessagesSent: laneStats.TotalMessages,
			}
			for _, ss := range laneStats.PerSuperstep {
				row.MessagesCombined += ss.MessagesCombined
			}
			if laneBest > 0 {
				row.Speedup = float64(mutexBest) / float64(laneBest)
			}
			// The rebalancer cell: lanes plus adaptive repartitioning on
			// the skewed graphs, in the combiner-on configuration only (its
			// production shape).
			if wl.Skewed && combine {
				var rebTimes []time.Duration
				for rep := 0; rep < opts.Reps; rep++ {
					rt, rstats, err := engineRun(wl, base, combine, pregel.Config{
						MessagePlane:  pregel.PlaneLanes,
						RebalanceSkew: 1.2,
					})
					if err != nil {
						return nil, fmt.Errorf("harness: %s rebalance: %w", label, err)
					}
					rebTimes = append(rebTimes, rt)
					row.Rebalances = rstats.Rebalances
					row.VerticesMigrated = rstats.VerticesMigrated
				}
				row.RebalanceNanos = fastest(rebTimes).Nanoseconds()
			}
			out = append(out, row)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-22s mutex=%8.2fms lanes=%8.2fms speedup=%.2fx\n",
					label, float64(mutexBest.Microseconds())/1000,
					float64(laneBest.Microseconds())/1000, row.Speedup)
			}
		}
	}
	return out, nil
}

// PrintEngineBench renders the message-plane rows as a table.
func PrintEngineBench(w io.Writer, es []EngineBench) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tcombiner\tmutex\tlanes\tspeedup\tsteps\tsent\tcombined\trebalanced\tmigrated")
	for _, e := range es {
		reb := "—"
		if e.RebalanceNanos > 0 {
			reb = fmt.Sprintf("%v (%d moves)", time.Duration(e.RebalanceNanos).Round(time.Microsecond), e.Rebalances)
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\t%s\t%.2fx\t%d\t%d\t%d\t%s\t%d\n",
			e.Workload, e.Combiner,
			time.Duration(e.MutexNanos).Round(time.Microsecond),
			time.Duration(e.LanesNanos).Round(time.Microsecond),
			e.Speedup, e.Supersteps, e.MessagesSent, e.MessagesCombined,
			reb, e.VerticesMigrated)
	}
	tw.Flush()
}

// WriteEngineBenchJSON writes the rows as indented JSON (the
// BENCH_engine.json artifact).
func WriteEngineBenchJSON(w io.Writer, es []EngineBench) error {
	b, err := json.MarshalIndent(es, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CheckEngineBench verifies the acceptance claim: on the
// combiner-enabled PageRank cells — the configuration where
// sender-side combining collapses the fan-in before it ever reaches a
// shard — the lane plane must be strictly faster than the mutex plane.
func CheckEngineBench(es []EngineBench) []string {
	var problems []string
	for _, e := range es {
		if e.Algorithm == "pagerank" && e.Combiner && e.LanesNanos >= e.MutexNanos {
			problems = append(problems, fmt.Sprintf(
				"%s: lane plane (%v) not faster than mutex plane (%v)",
				e.Workload, time.Duration(e.LanesNanos), time.Duration(e.MutexNanos)))
		}
	}
	return problems
}
