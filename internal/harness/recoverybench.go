package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"graft/internal/algorithms"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/graphgen"
	"graft/internal/pregel"
)

// RecoveryBenchCheckpointEvery is the checkpoint interval of the
// recovery experiment. Eight supersteps between checkpoints makes the
// late-failure cells expensive for a full restart — up to seven
// supersteps of whole-cluster re-execution — which is exactly the
// regime confined recovery is for.
const RecoveryBenchCheckpointEvery = 8

// RecoveryBench is one cell of the recovery experiment behind
// `graft-bench -recovery`: the same workload crashed at the same
// barrier, recovered once by full checkpoint restart and once by
// log-based confined replay. Cost is Stats.RecoveryTime — for
// restarts that includes re-executing the rewound supersteps, for
// confined recovery the replay itself — so the two numbers measure
// the same thing: wall time from failure to caught-up.
type RecoveryBench struct {
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	// FailAt names the grid point: "early" (about a quarter into the
	// run) or "late" (just before the end, far from a checkpoint).
	FailAt        string `json:"fail_at"`
	FailSuperstep int    `json:"fail_superstep"`
	// Victim is the seed-picked partition that fails.
	Victim  int `json:"victim"`
	Reps    int `json:"reps"`
	Workers int `json:"workers"`
	// Supersteps is the failure-free superstep count; both recovered
	// runs must match it.
	Supersteps int `json:"supersteps"`
	// CheckpointRecoveryNanos / LogRecoveryNanos are the fastest
	// repetitions of each mode's RecoveryTime.
	CheckpointRecoveryNanos int64 `json:"checkpoint_recovery_ns"`
	LogRecoveryNanos        int64 `json:"log_recovery_ns"`
	// Speedup is checkpoint/log: >1 means confined recovery won.
	Speedup float64 `json:"speedup"`
	// PartitionsRecomputed is the confined run's rollback scope (the
	// checkpoint run always recomputes all Workers partitions).
	PartitionsRecomputed int `json:"partitions_recomputed"`
	// MessagesReplayed / BytesLogged report the log mode's traffic.
	MessagesReplayed int64 `json:"messages_replayed"`
	BytesLogged      int64 `json:"bytes_logged"`
	// CheckpointMatch / LogMatch report whether each recovered run's
	// final vertex values digest-matched the failure-free run.
	CheckpointMatch bool `json:"checkpoint_match"`
	LogMatch        bool `json:"log_match"`
}

// RecoveryWorkload is one algorithm/graph point of the recovery grid.
type RecoveryWorkload struct {
	Label     string
	Algorithm string
	Make      func() *algorithms.Algorithm
	Build     func() *pregel.Graph
	Workers   int
}

// RecoveryWorkloads returns the recovery grid: a long fixed-length
// PageRank (many supersteps, so failures can land far from a
// checkpoint) over the skewed preferential-attachment web graph, and
// connected components over a chained-communities graph whose
// diameter keeps label propagation running for ~25 supersteps.
func RecoveryWorkloads(scale float64, seed int64, workers int) []RecoveryWorkload {
	n := int(30_000_000 * scale)
	if n < 2000 {
		n = 2000
	}
	web := func() *pregel.Graph { return graphgen.WebGraph(n, 8, seed) }
	chain := func() *pregel.Graph { return graphgen.ChainedCommunities(n, 24, 6, seed) }
	pr := func() *algorithms.Algorithm { return algorithms.NewPageRank(24, 0.85) }
	cc := algorithms.NewConnectedComponents
	return []RecoveryWorkload{
		{Label: "PR-web", Algorithm: "pagerank", Make: pr, Build: web, Workers: workers},
		{Label: "CC-chain", Algorithm: "cc", Make: cc, Build: chain, Workers: workers},
	}
}

// valuesDigest hashes the final vertex values in canonical ID order:
// the cheap stand-in for the full trace digest at benchmark scale.
func valuesDigest(g *pregel.Graph) string {
	type kv struct {
		id  pregel.VertexID
		val []byte
	}
	var all []kv
	g.Each(func(v *pregel.Vertex) {
		all = append(all, kv{id: v.ID(), val: pregel.MarshalValue(v.Value())})
	})
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	h := sha256.New()
	e := pregel.NewEncoder()
	for _, x := range all {
		e.Reset()
		e.PutVarint(int64(x.id))
		e.PutBytes(x.val)
		h.Write(e.Bytes())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// recoveryRun executes one repetition: the workload crashed once at
// failAt (partition victim) and recovered in the given mode.
func recoveryRun(wl RecoveryWorkload, base *pregel.Graph, mode pregel.RecoveryMode, failAt, victim int) (*pregel.Stats, string, error) {
	runtime.GC()
	g := base.Clone()
	cfg := pregel.Config{
		NumWorkers:         wl.Workers,
		MessagePlane:       pregel.PlaneLanes,
		CheckpointEvery:    RecoveryBenchCheckpointEvery,
		CheckpointFS:       dfs.NewMemFS(),
		Recovery:           mode,
		PartitionFailureAt: faults.FailPartitionAt(failAt, victim),
	}
	if mode == pregel.RecoveryLog {
		cfg.MsgLogFS = dfs.NewMemFS()
	}
	stats, err := wl.Make().Configure(g, cfg).Run()
	if err != nil {
		return nil, "", err
	}
	if stats.Recoveries != 1 {
		return nil, "", fmt.Errorf("recoveries = %d, want 1", stats.Recoveries)
	}
	return stats, valuesDigest(g), nil
}

// RunRecoveryBench measures confined log recovery against full
// checkpoint restart across the workload grid, failing early and late
// in each run. A failure-free reference run per workload learns the
// superstep count (for placing the failures) and the canonical final
// values every recovered run must reproduce.
func RunRecoveryBench(workloads []RecoveryWorkload, opts Options) ([]RecoveryBench, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	var out []RecoveryBench
	for _, wl := range workloads {
		base := wl.Build()
		refGraph := base.Clone()
		refStats, err := wl.Make().Configure(refGraph, pregel.Config{
			NumWorkers:   wl.Workers,
			MessagePlane: pregel.PlaneLanes,
		}).Run()
		if err != nil {
			return nil, fmt.Errorf("harness: %s reference: %w", wl.Label, err)
		}
		refDigest := valuesDigest(refGraph)
		total := refStats.Supersteps
		if total < 4 {
			return nil, fmt.Errorf("harness: %s converged in %d supersteps, too short to crash meaningfully", wl.Label, total)
		}
		victim := faults.PickPartition(opts.Seed, wl.Workers)

		// "late" is the last barrier a full checkpoint interval away
		// from its checkpoint — the maximal rollback window, where a
		// restart re-executes up to CheckpointEvery supersteps across
		// the whole cluster. "early" fails right after a checkpoint,
		// where both modes have almost nothing to replay.
		late := -1
		for s := total - 1; s >= 1; s-- {
			if s%RecoveryBenchCheckpointEvery == RecoveryBenchCheckpointEvery-1 {
				late = s
				break
			}
		}
		if late < 1 {
			late = total - 1
		}
		early := RecoveryBenchCheckpointEvery + 1
		if early >= late {
			early = late / 2
		}
		if early < 1 {
			early = 1
		}
		cells := []struct {
			name   string
			failAt int
		}{
			{"early", early},
			{"late", late},
		}
		for _, cell := range cells {
			row := RecoveryBench{
				Workload:        wl.Label,
				Algorithm:       wl.Algorithm,
				FailAt:          cell.name,
				FailSuperstep:   cell.failAt,
				Victim:          victim,
				Reps:            opts.Reps,
				Workers:         wl.Workers,
				Supersteps:      total,
				CheckpointMatch: true,
				LogMatch:        true,
			}
			var ckptTimes, logTimes []time.Duration
			for rep := -1; rep < opts.Reps; rep++ {
				var ct, lt time.Duration
				runCkpt := func() error {
					stats, digest, err := recoveryRun(wl, base, pregel.RecoveryCheckpoint, cell.failAt, victim)
					if err != nil {
						return fmt.Errorf("harness: %s/%s checkpoint: %w", wl.Label, cell.name, err)
					}
					ct = stats.RecoveryTime
					if digest != refDigest {
						row.CheckpointMatch = false
					}
					return nil
				}
				runLog := func() error {
					stats, digest, err := recoveryRun(wl, base, pregel.RecoveryLog, cell.failAt, victim)
					if err != nil {
						return fmt.Errorf("harness: %s/%s log: %w", wl.Label, cell.name, err)
					}
					lt = stats.RecoveryTime
					if digest != refDigest {
						row.LogMatch = false
					}
					if len(stats.RecoveryEvents) == 1 {
						ev := stats.RecoveryEvents[0]
						if ev.Mode != "log" {
							return fmt.Errorf("harness: %s/%s: recovery degraded to %s", wl.Label, cell.name, ev.Mode)
						}
						row.PartitionsRecomputed = ev.PartitionsRecomputed
						row.MessagesReplayed = ev.MessagesReplayed
					}
					row.BytesLogged = stats.BytesLogged
					return nil
				}
				first, second := runCkpt, runLog
				if rep%2 != 0 {
					first, second = runLog, runCkpt
				}
				if err := first(); err != nil {
					return nil, err
				}
				if err := second(); err != nil {
					return nil, err
				}
				if rep < 0 {
					continue // warmup
				}
				ckptTimes = append(ckptTimes, ct)
				logTimes = append(logTimes, lt)
			}
			ckptBest, logBest := fastest(ckptTimes), fastest(logTimes)
			row.CheckpointRecoveryNanos = ckptBest.Nanoseconds()
			row.LogRecoveryNanos = logBest.Nanoseconds()
			if logBest > 0 {
				row.Speedup = float64(ckptBest) / float64(logBest)
			}
			out = append(out, row)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-10s fail=%-5s@%-3d ckpt=%8.2fms log=%8.2fms speedup=%.2fx confined=%d/%d\n",
					wl.Label, cell.name, cell.failAt,
					float64(ckptBest.Microseconds())/1000, float64(logBest.Microseconds())/1000,
					row.Speedup, row.PartitionsRecomputed, wl.Workers)
			}
		}
	}
	return out, nil
}

// PrintRecoveryBench renders the recovery rows as a table.
func PrintRecoveryBench(w io.Writer, rs []RecoveryBench) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tfail\tsuperstep\tcheckpoint\tlog\tspeedup\tconfined\treplayed\tmatch")
	for _, r := range rs {
		match := "both"
		if !r.CheckpointMatch || !r.LogMatch {
			match = fmt.Sprintf("ckpt=%v log=%v", r.CheckpointMatch, r.LogMatch)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%s\t%s\t%.2fx\t%d/%d\t%d\t%s\n",
			r.Workload, r.FailAt, r.FailSuperstep, r.Supersteps,
			time.Duration(r.CheckpointRecoveryNanos).Round(time.Microsecond),
			time.Duration(r.LogRecoveryNanos).Round(time.Microsecond),
			r.Speedup, r.PartitionsRecomputed, r.Workers, r.MessagesReplayed, match)
	}
	tw.Flush()
}

// WriteRecoveryBenchJSON writes the rows as indented JSON (the
// BENCH_recovery.json artifact).
func WriteRecoveryBenchJSON(w io.Writer, rs []RecoveryBench) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CheckRecoveryBench verifies the acceptance claims: every recovered
// run reproduced the failure-free values in both modes, confined
// recovery really was confined, and on the late-failure cells — where
// a restart re-executes most of a checkpoint interval across the whole
// cluster — confined log recovery is strictly faster.
func CheckRecoveryBench(rs []RecoveryBench) []string {
	var problems []string
	for _, r := range rs {
		cell := fmt.Sprintf("%s/%s", r.Workload, r.FailAt)
		if !r.CheckpointMatch {
			problems = append(problems, cell+": checkpoint-recovered values diverged from failure-free run")
		}
		if !r.LogMatch {
			problems = append(problems, cell+": log-recovered values diverged from failure-free run")
		}
		if r.PartitionsRecomputed >= r.Workers {
			problems = append(problems, fmt.Sprintf(
				"%s: log recovery recomputed %d/%d partitions — not confined", cell, r.PartitionsRecomputed, r.Workers))
		}
		if r.FailAt == "late" && r.LogRecoveryNanos >= r.CheckpointRecoveryNanos {
			problems = append(problems, fmt.Sprintf(
				"%s: confined log recovery (%v) not faster than checkpoint restart (%v)",
				cell, time.Duration(r.LogRecoveryNanos), time.Duration(r.CheckpointRecoveryNanos)))
		}
	}
	return problems
}
