// Package harness regenerates the paper's evaluation (Section 5): it
// runs the GC / RW / MWM algorithms over the Table 2 dataset stand-ins
// under each Table 3 DebugConfig plus a no-debug baseline, repeats and
// averages the timings, normalizes against no-debug, and reports the
// Figure 8 rows (relative runtime + capture counts). It plays the role
// of the 3X experiment manager the authors used.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"graft/internal/algorithms"
	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/graphgen"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// NamedConfig is one DebugConfig column of Figure 8. A nil Make means
// the no-debug baseline.
type NamedConfig struct {
	Name        string
	Description string
	Make        func() core.DebugConfig
}

// StandardConfigs returns Table 3 of the paper: the five DebugConfig
// configurations used in the overhead experiments, preceded by the
// no-debug baseline.
func StandardConfigs(seed int64) []NamedConfig {
	nonNegMsg := core.NonNegativeMessages
	nonNegVertex := func(val pregel.Value, id pregel.VertexID, superstep int) bool {
		switch v := val.(type) {
		case *pregel.LongValue:
			return v.Get() >= 0
		case *pregel.DoubleValue:
			return v.Get() >= 0
		}
		return true
	}
	return []NamedConfig{
		{Name: "no-debug", Description: "Baseline without Graft"},
		{
			Name:        "DC-sp",
			Description: "Captures 5 specified vertices",
			Make: func() core.DebugConfig {
				return core.DebugConfig{
					CaptureIDs:        []pregel.VertexID{1, 2, 3, 4, 5},
					CaptureExceptions: true,
				}
			},
		},
		{
			Name:        "DC-sp+nbr",
			Description: "Captures 5 specified vertices and their neighbors",
			Make: func() core.DebugConfig {
				return core.DebugConfig{
					CaptureIDs:        []pregel.VertexID{1, 2, 3, 4, 5},
					CaptureNeighbors:  true,
					CaptureExceptions: true,
				}
			},
		},
		{
			Name:        "DC-msg",
			Description: "Specifies constraint that message values are non-negative",
			Make: func() core.DebugConfig {
				return core.DebugConfig{
					MessageConstraint: nonNegMsg,
					CaptureExceptions: true,
				}
			},
		},
		{
			Name:        "DC-vv",
			Description: "Specifies constraint that vertex values are non-negative",
			Make: func() core.DebugConfig {
				return core.DebugConfig{
					VertexValueConstraint: nonNegVertex,
					CaptureExceptions:     true,
				}
			},
		},
		{
			Name: "DC-full",
			Description: "Captures 10 specified vertices and their neighbors, specifies " +
				"message and vertex constraints, and checks for exceptions",
			Make: func() core.DebugConfig {
				return core.DebugConfig{
					CaptureIDs:            []pregel.VertexID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
					CaptureNeighbors:      true,
					MessageConstraint:     nonNegMsg,
					VertexValueConstraint: nonNegVertex,
					CaptureExceptions:     true,
					RandomSeed:            seed,
				}
			},
		},
	}
}

// Workload is one (algorithm, dataset) cluster of Figure 8.
type Workload struct {
	// Label is the cluster label, e.g. "GC-bp".
	Label string
	// Algorithm builds a fresh algorithm instance.
	Algorithm func() *algorithms.Algorithm
	// Dataset generates the input graph.
	Dataset graphgen.Dataset
	// Workers for the run.
	Workers int
}

// StandardWorkloads returns the Figure 8 clusters: GC on the bipartite
// graph, RW on the web graphs, and MWM on the (weighted) social graph,
// using the Table 2 stand-ins at the given scale.
func StandardWorkloads(scale float64, seed int64, workers int) []Workload {
	t2 := graphgen.Table2Datasets(scale, seed)
	sk, twitter, bp := t2[0], t2[1], t2[2]
	// MWM needs weights; use the soc-Epinions-style generator sized
	// like the sk-2005 stand-in so its cluster is comparable.
	weighted := graphgen.Dataset{
		Name:        "soc-weighted",
		Description: "weighted social graph for MWM",
		Build: func() *pregel.Graph {
			n := int(float64(51_000_000) * scale)
			if n < 2000 {
				n = 2000
			}
			return graphgen.SocialGraph(n, 6, seed+9)
		},
	}
	return []Workload{
		{Label: "GC-bp", Algorithm: func() *algorithms.Algorithm { return algorithms.NewGraphColoring(seed) }, Dataset: bp, Workers: workers},
		{Label: "RW-sk", Algorithm: func() *algorithms.Algorithm { return algorithms.NewRandomWalk(seed, 10) }, Dataset: sk, Workers: workers},
		{Label: "RW-tw", Algorithm: func() *algorithms.Algorithm { return algorithms.NewRandomWalk(seed, 10) }, Dataset: twitter, Workers: workers},
		{Label: "MWM-soc", Algorithm: func() *algorithms.Algorithm { return algorithms.NewMaximumWeightMatching(400) }, Dataset: weighted, Workers: workers},
	}
}

// Measurement is one Figure 8 bar.
type Measurement struct {
	Workload  string
	Config    string
	MeanTime  time.Duration
	StdDev    time.Duration
	Relative  float64 // mean / no-debug mean
	Captures  int64
	TraceSize int64 // bytes of trace files written
	Reps      int
}

// Options tunes a sweep.
type Options struct {
	// Reps is the repetition count (the paper used 5).
	Reps int
	// Seed for configs needing randomness.
	Seed int64
	// Progress, if non-nil, receives one line per finished cell.
	Progress io.Writer
}

// RunFig8 executes the full overhead grid and returns measurements in
// workload-major order, each cluster led by its no-debug baseline.
func RunFig8(workloads []Workload, configs []NamedConfig, opts Options) ([]Measurement, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	var out []Measurement
	for _, wl := range workloads {
		base := wl.Dataset.Build()
		var baselineMean time.Duration
		for _, cfg := range configs {
			m, err := runCell(wl, base, cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%s: %w", wl.Label, cfg.Name, err)
			}
			if cfg.Make == nil {
				baselineMean = m.MeanTime
			}
			if baselineMean > 0 {
				m.Relative = float64(m.MeanTime) / float64(baselineMean)
			}
			out = append(out, m)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-10s %-10s %8.2fms  x%.3f  captures=%d\n",
					wl.Label, cfg.Name, float64(m.MeanTime.Microseconds())/1000, m.Relative, m.Captures)
			}
		}
	}
	return out, nil
}

// runCell measures one (workload, config) cell over opts.Reps
// repetitions, cloning the prepared graph each run. The first run is
// an unmeasured warmup, and the garbage collector runs between
// repetitions, so cells do not inherit each other's heap state.
func runCell(wl Workload, base *pregel.Graph, cfg NamedConfig, opts Options) (Measurement, error) {
	m := Measurement{Workload: wl.Label, Config: cfg.Name, Reps: opts.Reps, Relative: 1}
	times := make([]time.Duration, 0, opts.Reps)
	for rep := -1; rep < opts.Reps; rep++ {
		runtime.GC()
		g := base.Clone()
		alg := wl.Algorithm()
		engCfg := pregel.Config{
			NumWorkers:    wl.Workers,
			Combiner:      alg.Combiner,
			Master:        alg.Master,
			MaxSupersteps: alg.MaxSupersteps,
		}
		comp := alg.Compute

		var session *core.Graft
		var fs *dfs.MemFS
		if cfg.Make != nil {
			fs = dfs.NewMemFS()
			store := trace.NewStore(fs, "bench")
			dc := cfg.Make()
			var err error
			session, err = core.Attach(store, core.Options{
				JobID:      fmt.Sprintf("%s-%s-%d", wl.Label, cfg.Name, rep),
				Algorithm:  alg.Name,
				NumWorkers: wl.Workers,
			}, g, dc)
			if err != nil {
				return m, err
			}
			comp = session.Instrument(comp)
			engCfg.Master = session.InstrumentMaster(engCfg.Master)
			engCfg.Listener = session
		}

		job := pregel.NewJob(g, comp, engCfg)
		for _, spec := range alg.Aggregators {
			job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
		}
		start := time.Now()
		if _, err := job.Run(); err != nil {
			return m, err
		}
		if rep < 0 {
			continue // warmup run
		}
		times = append(times, time.Since(start))
		if session != nil {
			m.Captures = session.Captures()
			m.TraceSize = fs.TotalBytes()
		}
	}
	mean, std := meanStd(times)
	m.MeanTime, m.StdDev = mean, std
	return m, nil
}

func meanStd(times []time.Duration) (time.Duration, time.Duration) {
	if len(times) == 0 {
		return 0, 0
	}
	var sum float64
	for _, t := range times {
		sum += float64(t)
	}
	mean := sum / float64(len(times))
	var vs float64
	for _, t := range times {
		d := float64(t) - mean
		vs += d * d
	}
	std := math.Sqrt(vs / float64(len(times)))
	return time.Duration(mean), time.Duration(std)
}

// PrintFig8 renders measurements as the Figure 8 table: one row per
// bar with relative runtime (no-debug = 1.00) and capture counts.
func PrintFig8(w io.Writer, ms []Measurement) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tconfig\trelative\tmean\tstddev\tcaptures\ttrace-bytes")
	for _, m := range ms {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\t%s\t%d\t%d\n",
			m.Workload, m.Config, m.Relative,
			m.MeanTime.Round(time.Microsecond), m.StdDev.Round(time.Microsecond),
			m.Captures, m.TraceSize)
	}
	tw.Flush()
}

// CheckFig8Shape verifies the qualitative claims of the paper's
// Figure 8 against measurements, returning human-readable deviations:
//
//   - every debugged configuration is at least as slow as no-debug
//     (within noise), and
//   - DC-full is the most expensive configuration of its cluster
//     (within the tolerance), and
//   - capture counts are nonzero exactly for configs that select
//     anything.
//
// tolerance is the allowed relative noise (e.g. 0.05 = 5%).
func CheckFig8Shape(ms []Measurement, tolerance float64) []string {
	var problems []string
	byWorkload := map[string][]Measurement{}
	var order []string
	for _, m := range ms {
		if _, ok := byWorkload[m.Workload]; !ok {
			order = append(order, m.Workload)
		}
		byWorkload[m.Workload] = append(byWorkload[m.Workload], m)
	}
	sort.Strings(order)
	for _, wl := range order {
		cluster := byWorkload[wl]
		var full, maxRel float64
		for _, m := range cluster {
			if m.Config == "no-debug" {
				continue
			}
			if m.Relative < 1-tolerance {
				problems = append(problems,
					fmt.Sprintf("%s/%s: debugged run faster than baseline (%.3f)", wl, m.Config, m.Relative))
			}
			if m.Config == "DC-full" {
				full = m.Relative
			}
			if m.Relative > maxRel {
				maxRel = m.Relative
			}
			if m.Config == "DC-sp" && m.Captures == 0 {
				problems = append(problems, fmt.Sprintf("%s/DC-sp captured nothing", wl))
			}
		}
		if full+tolerance < maxRel {
			problems = append(problems,
				fmt.Sprintf("%s: DC-full (%.3f) is not the most expensive config (max %.3f)", wl, full, maxRel))
		}
	}
	return problems
}
