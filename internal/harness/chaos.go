package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"graft/internal/core"
	"graft/internal/dfs"
	"graft/internal/faults"
	"graft/internal/pregel"
	"graft/internal/trace"
)

// ChaosOptions tunes a RunChaos sweep: each workload runs once on
// healthy storage (the reference) and once with seeded faults injected
// into the checkpoint file system, the trace file system and one
// datanode, a worker crash forcing checkpoint recovery mid-job.
type ChaosOptions struct {
	// Seed drives the dataset, the injectors and the retry jitter.
	Seed int64
	// CheckpointEvery is the checkpoint interval (default 2).
	CheckpointEvery int
	// CrashAt is the superstep after which a worker crash is injected
	// once (default 3).
	CrashAt int
	// FaultP is the per-operation fault probability injected into
	// storage writes (default 0.3).
	FaultP float64
	// Recovery selects how the injected crash is recovered:
	// RecoveryCheckpoint (the zero value) restarts the whole job,
	// RecoveryLog confines the recomputation to the seed-picked victim
	// partition and replays its inbox from the outbox logs.
	Recovery pregel.RecoveryMode
	// WholeJobCrash reverts to the pre-confinement crash shape: the
	// whole job fails instead of one seed-picked victim partition.
	WholeJobCrash bool
	// Progress, if non-nil, receives one line per finished workload.
	Progress io.Writer
}

func (o *ChaosOptions) defaults() {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 2
	}
	if o.CrashAt <= 0 {
		o.CrashAt = 3
	}
	if o.FaultP <= 0 {
		o.FaultP = 0.3
	}
}

// ChaosMeasurement is one row of the chaos table: how much abuse one
// workload absorbed and whether its output still matched the
// fault-free reference run.
type ChaosMeasurement struct {
	Workload   string
	Supersteps int
	Recoveries int
	// Victim is the seed-picked partition the crash takes down, or -1
	// for a whole-job crash.
	Victim int
	// RecoveryMode is the mode the engine actually recovered in ("log",
	// "checkpoint", or "" when no recovery ran) — a broken log degrades
	// to "checkpoint", and the table makes that visible.
	RecoveryMode string
	Faults       pregel.FaultStats
	// NodeWriteRetries counts block placements retried on another
	// datanode inside the simulated DFS.
	NodeWriteRetries int64
	// Captures written by the debugged chaos run.
	Captures int64
	// Match reports whether every vertex value equals the fault-free
	// run's.
	Match   bool
	Runtime time.Duration
}

// chaosPlan builds the injection plan for one storage role. Faults per
// (path, op) are capped below the retry budget so a bounded retry loop
// always converges — the run is abused, not doomed.
func chaosPlan(seed int64, p float64) faults.Plan {
	return faults.Plan{
		Seed:         seed,
		P:            map[faults.Op]float64{faults.OpWrite: p, faults.OpCreate: p / 2, faults.OpClose: p / 2},
		MaxPerPathOp: 2,
		ShortWrites:  true,
	}
}

// RunChaos executes each workload under injected storage faults, a
// datanode kill/revive and one worker crash, comparing final vertex
// values against a fault-free run of the same seeded dataset.
func RunChaos(workloads []Workload, opts ChaosOptions) ([]ChaosMeasurement, error) {
	opts.defaults()
	var out []ChaosMeasurement
	for _, wl := range workloads {
		m, err := runChaosCell(wl, opts)
		if err != nil {
			return nil, fmt.Errorf("harness: chaos %s: %w", wl.Label, err)
		}
		out = append(out, m)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-10s recoveries=%d(%s victim=%d) %s node-write-retries=%d match=%v\n",
				m.Workload, m.Recoveries, m.RecoveryMode, m.Victim, m.Faults, m.NodeWriteRetries, m.Match)
		}
	}
	return out, nil
}

func runChaosCell(wl Workload, opts ChaosOptions) (ChaosMeasurement, error) {
	m := ChaosMeasurement{Workload: wl.Label}
	base := wl.Dataset.Build()

	// Reference: the same graph and algorithm on healthy storage.
	ref := base.Clone()
	refAlg := wl.Algorithm()
	refJob := pregel.NewJob(ref, refAlg.Compute, pregel.Config{
		NumWorkers:    wl.Workers,
		Combiner:      refAlg.Combiner,
		Master:        refAlg.Master,
		MaxSupersteps: refAlg.MaxSupersteps,
	})
	for _, spec := range refAlg.Aggregators {
		refJob.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	if _, err := refJob.Run(); err != nil {
		return m, err
	}

	// Chaos run: simulated DFS under the checkpoints and traces, a
	// fault injector and retry layer on each path, a memory fallback
	// for traces, one worker crash and one datanode kill/revive.
	cluster := dfs.NewCluster(4, 2, 8<<10)
	ckptFS := faults.NewRetryFS(faults.NewFaultFS(cluster, chaosPlan(opts.Seed, opts.FaultP)), opts.Seed)
	traceFS := faults.NewFallbackFS(
		faults.NewRetryFS(faults.NewFaultFS(cluster, chaosPlan(opts.Seed+1, opts.FaultP)), opts.Seed+1),
		dfs.NewMemFS(),
	)
	store := trace.NewStore(traceFS, "chaos")

	g := base.Clone()
	alg := wl.Algorithm()
	session, err := core.Attach(store, core.Options{
		JobID:      fmt.Sprintf("chaos-%s", wl.Label),
		Algorithm:  alg.Name,
		NumWorkers: wl.Workers,
	}, g, core.DebugConfig{
		CaptureIDs:        []pregel.VertexID{1, 2, 3, 4, 5},
		CaptureExceptions: true,
	})
	if err != nil {
		return m, err
	}

	crashed := false
	cfg := pregel.Config{
		NumWorkers:       wl.Workers,
		Combiner:         alg.Combiner,
		Master:           session.InstrumentMaster(alg.Master),
		MaxSupersteps:    alg.MaxSupersteps,
		Listener:         session,
		CheckpointEvery:  opts.CheckpointEvery,
		CheckpointFS:     ckptFS,
		CheckpointPrefix: "chaos-ckpt/",
		Recovery:         opts.Recovery,
	}
	if opts.Recovery == pregel.RecoveryLog {
		// The outbox logs live on their own healthy memory FS: the chaos
		// experiment abuses checkpoint and trace storage, and a log write
		// failure would (correctly, but uninterestingly) degrade every
		// run to checkpoint restart.
		cfg.MsgLogFS = dfs.NewMemFS()
	}
	// The default crash is confined to a seed-picked victim partition;
	// either way the crash takes datanode 0 down with it and the next
	// barrier revives it, triggering re-replication.
	m.Victim = faults.PickPartition(opts.Seed, wl.Workers)
	if opts.WholeJobCrash {
		m.Victim = -1
		cfg.FailureAt = func(superstep int) bool {
			if superstep == opts.CrashAt && !crashed {
				crashed = true
				cluster.Kill(0)
				return true
			}
			if crashed && superstep == opts.CrashAt+1 && !cluster.Node(0).Alive() {
				cluster.Revive(0)
			}
			return false
		}
	} else {
		victim := m.Victim
		cfg.PartitionFailureAt = func(superstep int) []int {
			if superstep == opts.CrashAt && !crashed {
				crashed = true
				cluster.Kill(0)
				return []int{victim}
			}
			if crashed && superstep == opts.CrashAt+1 && !cluster.Node(0).Alive() {
				cluster.Revive(0)
			}
			return nil
		}
	}
	job := pregel.NewJob(g, session.Instrument(alg.Compute), cfg)
	for _, spec := range alg.Aggregators {
		job.RegisterAggregator(spec.Name, spec.Agg, spec.Persistent)
	}
	start := time.Now()
	stats, err := job.Run()
	if err != nil {
		return m, err
	}
	m.Runtime = time.Since(start)
	m.Supersteps = stats.Supersteps
	m.Recoveries = stats.Recoveries
	if len(stats.RecoveryEvents) > 0 {
		m.RecoveryMode = stats.RecoveryEvents[len(stats.RecoveryEvents)-1].Mode
	}
	m.Faults = stats.Faults
	m.NodeWriteRetries = cluster.WriteRetries()
	m.Captures = session.Captures()

	m.Match = true
	ref.Each(func(v *pregel.Vertex) {
		got := g.Vertex(v.ID())
		if got == nil || !pregel.ValuesEqual(v.Value(), got.Value()) {
			m.Match = false
		}
	})
	return m, nil
}

// PrintChaos renders chaos measurements as a table.
func PrintChaos(w io.Writer, ms []ChaosMeasurement) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsupersteps\trecoveries\tmode\tvictim\tinjected\tretries\tbackoff\tfallbacks\tdropped\tcorrupt-ckpts\tnode-retries\tcaptures\tmatch")
	for _, m := range ms {
		mode := m.RecoveryMode
		if mode == "" {
			mode = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			m.Workload, m.Supersteps, m.Recoveries, mode, m.Victim,
			m.Faults.Injected, m.Faults.Retries, m.Faults.Backoff.Round(time.Microsecond),
			m.Faults.Fallbacks, m.Faults.DroppedRecords, m.Faults.CorruptCheckpoints,
			m.NodeWriteRetries, m.Captures, m.Match)
	}
	tw.Flush()
}
