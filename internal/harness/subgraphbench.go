package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"graft/internal/algorithms"
	"graft/internal/graphgen"
	"graft/internal/pregel"
)

// SubgraphBench is one cell of the compute-mode experiment behind
// `graft-bench -subgraph`: the same traversal workload run
// vertex-centric and subgraph-centric. The headline number is the
// superstep collapse — a subgraph computation propagates labels across
// a whole partition component per superstep, so traversal workloads
// shed the one-hop-per-superstep tax — with wall clock as the
// second gate and a final-values digest match as the correctness
// anchor.
type SubgraphBench struct {
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Vertices  int64  `json:"vertices"`
	Workers   int    `json:"workers"`
	Reps      int    `json:"reps"`
	// VertexSupersteps / SubgraphSupersteps are the superstep counts of
	// each mode (identical across reps; the engine is deterministic).
	VertexSupersteps   int `json:"vertex_supersteps"`
	SubgraphSupersteps int `json:"subgraph_supersteps"`
	// SuperstepRatio is subgraph/vertex: the collapse factor.
	SuperstepRatio float64 `json:"superstep_ratio"`
	// VertexNanos / SubgraphNanos are the fastest wall-clock runtimes.
	VertexNanos   int64 `json:"vertex_ns"`
	SubgraphNanos int64 `json:"subgraph_ns"`
	// Speedup is vertex/subgraph wall clock: >1 means subgraph won.
	Speedup float64 `json:"speedup"`
	// SubgraphsComputed / InternalIterations report how the collapsed
	// supersteps were paid for: sequential work inside components.
	SubgraphsComputed  int64 `json:"subgraphs_computed"`
	InternalIterations int64 `json:"internal_iterations"`
	// Match reports whether both modes' final vertex values digested
	// identically.
	Match bool `json:"match"`
}

// SubgraphWorkload is one algorithm/graph point of the compute-mode
// grid.
type SubgraphWorkload struct {
	Label     string
	Algorithm string
	Make      func() *algorithms.Algorithm
	Build     func() *pregel.Graph
	Workers   int
}

// SubgraphWorkloads returns the compute-mode grid. CC-bp is the
// paper's pathological scenario: connected components on a regular
// bipartite circulant whose diameter scales with size, so the
// vertex-centric run pays hundreds of one-hop supersteps while the
// subgraph-centric run needs a handful of boundary exchanges. BFS-bp
// runs the same topology under single-source traversal.
//
// CC-bp pins 4 partitions regardless of the -workers flag: with
// degree 8 and 4 hash partitions every partition keeps a
// supercritical share of its edges, so partition components percolate
// and a whole component's label collapses in one sequential pass —
// the scenario the ≤10% superstep gate is about. BFS-bp keeps the
// caller's worker count: BFS supersteps track partition-boundary
// crossings along shortest paths (which hash partitioning cannot
// shorten much), so its win comes from halving barrier count while
// finer partitions keep the per-superstep internal refinement cheap.
func SubgraphWorkloads(scale float64, seed int64, workers int) []SubgraphWorkload {
	n := int(30_000_000 * scale)
	if n < 2000 {
		n = 2000
	}
	bp := func() *pregel.Graph { return graphgen.RegularBipartite(n, 8) }
	ccWorkers := 4
	if workers < ccWorkers {
		ccWorkers = workers
	}
	return []SubgraphWorkload{
		{Label: "CC-bp", Algorithm: "cc", Make: algorithms.NewConnectedComponents, Build: bp, Workers: ccWorkers},
		{Label: "BFS-bp", Algorithm: "bfs", Make: func() *algorithms.Algorithm { return algorithms.NewBFS(0) }, Build: bp, Workers: workers},
	}
}

// subgraphModeRun executes one repetition in the given compute mode
// and returns the stats and the final-values digest.
func subgraphModeRun(wl SubgraphWorkload, base *pregel.Graph, mode pregel.ComputeMode) (*pregel.Stats, string, error) {
	runtime.GC()
	g := base.Clone()
	cfg := pregel.Config{
		NumWorkers:   wl.Workers,
		MessagePlane: pregel.PlaneLanes,
		ComputeMode:  mode,
	}
	stats, err := wl.Make().Configure(g, cfg).Run()
	if err != nil {
		return nil, "", err
	}
	return stats, valuesDigest(g), nil
}

// RunSubgraphBench measures the subgraph-centric mode against the
// vertex-centric baseline across the workload grid, interleaving
// repetitions (vertex/subgraph alternating first) so neither mode
// systematically benefits from a warm heap.
func RunSubgraphBench(workloads []SubgraphWorkload, opts Options) ([]SubgraphBench, error) {
	if opts.Reps <= 0 {
		opts.Reps = 5
	}
	var out []SubgraphBench
	for _, wl := range workloads {
		base := wl.Build()
		row := SubgraphBench{
			Workload:  wl.Label,
			Algorithm: wl.Algorithm,
			Vertices:  base.NumVertices(),
			Workers:   wl.Workers,
			Reps:      opts.Reps,
			Match:     true,
		}
		var vertexTimes, subgraphTimes []time.Duration
		var vertexDigest, subgraphDigest string
		for rep := -1; rep < opts.Reps; rep++ {
			var vt, st time.Duration
			runVertex := func() error {
				stats, digest, err := subgraphModeRun(wl, base, pregel.ModeVertex)
				if err != nil {
					return fmt.Errorf("harness: %s vertex: %w", wl.Label, err)
				}
				vt = stats.Runtime
				row.VertexSupersteps = stats.Supersteps
				vertexDigest = digest
				return nil
			}
			runSubgraph := func() error {
				stats, digest, err := subgraphModeRun(wl, base, pregel.ModeSubgraph)
				if err != nil {
					return fmt.Errorf("harness: %s subgraph: %w", wl.Label, err)
				}
				st = stats.Runtime
				row.SubgraphSupersteps = stats.Supersteps
				subgraphDigest = digest
				row.SubgraphsComputed, row.InternalIterations = 0, 0
				for _, ss := range stats.PerSuperstep {
					row.SubgraphsComputed += ss.SubgraphsComputed
					row.InternalIterations += ss.InternalIterations
				}
				return nil
			}
			first, second := runVertex, runSubgraph
			if rep%2 != 0 {
				first, second = runSubgraph, runVertex
			}
			if err := first(); err != nil {
				return nil, err
			}
			if err := second(); err != nil {
				return nil, err
			}
			if vertexDigest != subgraphDigest {
				row.Match = false
			}
			if rep < 0 {
				continue // warmup
			}
			vertexTimes = append(vertexTimes, vt)
			subgraphTimes = append(subgraphTimes, st)
		}
		vertexBest, subgraphBest := fastest(vertexTimes), fastest(subgraphTimes)
		row.VertexNanos = vertexBest.Nanoseconds()
		row.SubgraphNanos = subgraphBest.Nanoseconds()
		if subgraphBest > 0 {
			row.Speedup = float64(vertexBest) / float64(subgraphBest)
		}
		if row.VertexSupersteps > 0 {
			row.SuperstepRatio = float64(row.SubgraphSupersteps) / float64(row.VertexSupersteps)
		}
		out = append(out, row)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-8s supersteps %4d -> %-3d (%.1f%%)  wall %8.2fms -> %8.2fms (%.2fx)  match=%v\n",
				wl.Label, row.VertexSupersteps, row.SubgraphSupersteps, row.SuperstepRatio*100,
				float64(vertexBest.Microseconds())/1000, float64(subgraphBest.Microseconds())/1000,
				row.Speedup, row.Match)
		}
	}
	return out, nil
}

// PrintSubgraphBench renders the compute-mode rows as a table.
func PrintSubgraphBench(w io.Writer, rs []SubgraphBench) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tvertices\tsupersteps v->s\tratio\tvertex\tsubgraph\tspeedup\tsubgraphs\tinternal iters\tmatch")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%d\t%d -> %d\t%.1f%%\t%s\t%s\t%.2fx\t%d\t%d\t%v\n",
			r.Workload, r.Vertices, r.VertexSupersteps, r.SubgraphSupersteps, r.SuperstepRatio*100,
			time.Duration(r.VertexNanos).Round(time.Microsecond),
			time.Duration(r.SubgraphNanos).Round(time.Microsecond),
			r.Speedup, r.SubgraphsComputed, r.InternalIterations, r.Match)
	}
	tw.Flush()
}

// WriteSubgraphBenchJSON writes the rows as indented JSON (the
// BENCH_subgraph.json artifact).
func WriteSubgraphBenchJSON(w io.Writer, rs []SubgraphBench) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CheckSubgraphBench verifies the acceptance claims: both modes land
// on identical final values, subgraph mode finishes in strictly fewer
// supersteps and strictly less wall clock on every BFS/WCC cell, and
// on the CC-bp scenario the collapse reaches at least 10x.
func CheckSubgraphBench(rs []SubgraphBench) []string {
	var problems []string
	for _, r := range rs {
		if !r.Match {
			problems = append(problems, r.Workload+": subgraph-mode final values diverged from vertex mode")
		}
		if r.SubgraphSupersteps >= r.VertexSupersteps {
			problems = append(problems, fmt.Sprintf(
				"%s: subgraph mode took %d supersteps, vertex mode %d — no collapse",
				r.Workload, r.SubgraphSupersteps, r.VertexSupersteps))
		}
		if r.SubgraphNanos >= r.VertexNanos {
			problems = append(problems, fmt.Sprintf(
				"%s: subgraph mode (%v) not faster than vertex mode (%v)",
				r.Workload, time.Duration(r.SubgraphNanos), time.Duration(r.VertexNanos)))
		}
		if r.Workload == "CC-bp" && r.SubgraphSupersteps*10 > r.VertexSupersteps {
			problems = append(problems, fmt.Sprintf(
				"CC-bp: subgraph supersteps %d exceed 10%% of vertex supersteps %d",
				r.SubgraphSupersteps, r.VertexSupersteps))
		}
	}
	return problems
}
