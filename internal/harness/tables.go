package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"graft/internal/graphgen"
)

// PrintDatasetTable renders Table 1 or Table 2 of the paper: the
// original sizes alongside the synthetic stand-in actually generated
// at the current scale.
func PrintDatasetTable(w io.Writer, title string, ds []graphgen.Dataset) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tpaper-vertices\tpaper-edges(d)\tsynthetic-vertices\tsynthetic-edges(d)\tdescription")
	for i := range ds {
		v, e := ds[i].Stats()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			ds[i].Name, ds[i].PaperVertices, ds[i].PaperEdges, v, e, ds[i].Description)
	}
	tw.Flush()
}

// PrintConfigTable renders Table 3 of the paper: the DebugConfig
// configurations used in the overhead experiments.
func PrintConfigTable(w io.Writer, configs []NamedConfig) {
	fmt.Fprintln(w, "Table 3: DebugConfig configurations")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tdescription")
	for _, c := range configs {
		if c.Make == nil {
			continue // the baseline is not part of Table 3
		}
		fmt.Fprintf(tw, "%s\t%s\n", c.Name, c.Description)
	}
	tw.Flush()
}
