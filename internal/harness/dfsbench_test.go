package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDFSBenchShape runs one short repetition of the DFS data-path
// experiment end to end and checks the row shape, the JSON artifact,
// and the acceptance gate: the pipelined streaming path strictly beats
// the seed serial path. The margin is structural — the serial cell
// holds the namenode lock across every replica transfer while the
// parallel cell overlaps them across nodes — so one repetition decides
// it well clear of machine noise.
func TestDFSBenchShape(t *testing.T) {
	rows, err := RunDFSBench(Options{Reps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want sink-drain and trace-scan", len(rows))
	}
	byName := map[string]DFSBench{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.SerialNanos <= 0 || r.ParallelNanos <= 0 {
			t.Errorf("%s: missing timings: %+v", r.Workload, r)
		}
		if r.BytesWritten == 0 {
			t.Errorf("%s: parallel cell reports no bytes written", r.Workload)
		}
	}
	if byName["trace-scan"].BytesRead == 0 {
		t.Error("trace-scan read nothing")
	}
	if byName["trace-scan"].Prefetches == 0 {
		t.Error("trace-scan never hit the read-ahead")
	}
	if problems := CheckDFSBench(rows); len(problems) != 0 {
		t.Errorf("acceptance gate failed:\n  %s", strings.Join(problems, "\n  "))
	}

	var buf bytes.Buffer
	if err := WriteDFSBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []DFSBench
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(decoded) != len(rows) || decoded[0].Workload != rows[0].Workload {
		t.Fatalf("artifact round trip lost rows: %+v", decoded)
	}
	var tbl bytes.Buffer
	PrintDFSBench(&tbl, rows)
	if !strings.Contains(tbl.String(), "sink-drain") {
		t.Errorf("table output missing workload row:\n%s", tbl.String())
	}
}

// TestCheckDFSBenchFlagsRegression: the gate must actually fire when
// the parallel path is not faster.
func TestCheckDFSBenchFlagsRegression(t *testing.T) {
	rows := []DFSBench{{Workload: "sink-drain", SerialNanos: 100, ParallelNanos: 100}}
	if problems := CheckDFSBench(rows); len(problems) == 0 {
		t.Fatal("gate passed a parallel path that ties the serial path")
	}
	rows = []DFSBench{{Workload: "trace-scan", SerialNanos: 200, ParallelNanos: 100, Prefetches: 0}}
	if problems := CheckDFSBench(rows); len(problems) == 0 {
		t.Fatal("gate passed a streaming scan that never prefetched")
	}
}
