package harness

import (
	"strings"
	"testing"
	"time"

	"graft/internal/graphgen"
)

func TestStandardConfigsMatchTable3(t *testing.T) {
	configs := StandardConfigs(1)
	wantNames := []string{"no-debug", "DC-sp", "DC-sp+nbr", "DC-msg", "DC-vv", "DC-full"}
	if len(configs) != len(wantNames) {
		t.Fatalf("got %d configs", len(configs))
	}
	for i, c := range configs {
		if c.Name != wantNames[i] {
			t.Errorf("config %d = %q, want %q", i, c.Name, wantNames[i])
		}
	}
	if configs[0].Make != nil {
		t.Error("no-debug should have no DebugConfig")
	}
	dcFull := configs[5].Make()
	if len(dcFull.CaptureIDs) != 10 || !dcFull.CaptureNeighbors ||
		dcFull.MessageConstraint == nil || dcFull.VertexValueConstraint == nil ||
		!dcFull.CaptureExceptions {
		t.Errorf("DC-full shape wrong: %+v", dcFull)
	}
	dcSp := configs[1].Make()
	if len(dcSp.CaptureIDs) != 5 || dcSp.CaptureNeighbors {
		t.Errorf("DC-sp shape wrong: %+v", dcSp)
	}
}

func TestRunFig8SmallGrid(t *testing.T) {
	// A miniature version of the full sweep: every workload runs under
	// every config without error, baselines normalize to 1.0, and
	// capture counts appear where expected.
	workloads := StandardWorkloads(0.000002, 7, 4) // tiny graphs: the grid shape, not the timings
	ms, err := RunFig8(workloads, StandardConfigs(7), Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(workloads)*6 {
		t.Fatalf("got %d measurements, want %d", len(ms), len(workloads)*6)
	}
	for _, m := range ms {
		if m.MeanTime <= 0 {
			t.Errorf("%s/%s: zero mean time", m.Workload, m.Config)
		}
		switch m.Config {
		case "no-debug":
			if m.Relative != 1 {
				t.Errorf("%s baseline relative = %v", m.Workload, m.Relative)
			}
			if m.Captures != 0 {
				t.Errorf("%s baseline captured %d", m.Workload, m.Captures)
			}
		case "DC-sp", "DC-sp+nbr", "DC-full":
			if m.Captures == 0 {
				t.Errorf("%s/%s captured nothing", m.Workload, m.Config)
			}
			if m.TraceSize == 0 {
				t.Errorf("%s/%s wrote no trace bytes", m.Workload, m.Config)
			}
		}
	}
	// DC-sp+nbr captures at least as much as DC-sp.
	byKey := map[string]Measurement{}
	for _, m := range ms {
		byKey[m.Workload+"/"+m.Config] = m
	}
	for _, wl := range workloads {
		sp := byKey[wl.Label+"/DC-sp"]
		nbr := byKey[wl.Label+"/DC-sp+nbr"]
		if nbr.Captures < sp.Captures {
			t.Errorf("%s: DC-sp+nbr captures (%d) < DC-sp (%d)", wl.Label, nbr.Captures, sp.Captures)
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var b strings.Builder
	PrintDatasetTable(&b, "Table 1", graphgen.Table1Datasets(0.0005, 1))
	out := b.String()
	for _, want := range []string{"web-BS", "soc-Epinions", "bipartite-1M-3M", "685000", "A web graph from 2002"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	PrintDatasetTable(&b, "Table 2", graphgen.Table2Datasets(0.00005, 1))
	out = b.String()
	for _, want := range []string{"sk-2005", "twitter", "bipartite-2B-6B", "2000000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	PrintConfigTable(&b, StandardConfigs(1))
	out = b.String()
	for _, want := range []string{"DC-sp", "DC-full", "non-negative"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no-debug") {
		t.Error("table 3 should not list the baseline")
	}

	b.Reset()
	PrintFig8(&b, []Measurement{{Workload: "GC-bp", Config: "DC-sp", Relative: 1.16, MeanTime: time.Second, Captures: 42}})
	if !strings.Contains(b.String(), "1.160") || !strings.Contains(b.String(), "42") {
		t.Errorf("fig8 table:\n%s", b.String())
	}
}

func TestCheckFig8Shape(t *testing.T) {
	good := []Measurement{
		{Workload: "X", Config: "no-debug", Relative: 1},
		{Workload: "X", Config: "DC-sp", Relative: 1.1, Captures: 5},
		{Workload: "X", Config: "DC-full", Relative: 1.3, Captures: 10},
	}
	if problems := CheckFig8Shape(good, 0.05); len(problems) != 0 {
		t.Errorf("good shape flagged: %v", problems)
	}
	bad := []Measurement{
		{Workload: "X", Config: "no-debug", Relative: 1},
		{Workload: "X", Config: "DC-sp", Relative: 0.7, Captures: 5}, // impossibly fast
		{Workload: "X", Config: "DC-full", Relative: 1.1, Captures: 10},
		{Workload: "X", Config: "DC-msg", Relative: 1.9, Captures: 0}, // more than DC-full
	}
	problems := CheckFig8Shape(bad, 0.05)
	if len(problems) != 2 {
		t.Errorf("problems = %v", problems)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]time.Duration{2 * time.Second, 4 * time.Second})
	if mean != 3*time.Second {
		t.Errorf("mean = %v", mean)
	}
	if std != time.Second {
		t.Errorf("std = %v", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty input")
	}
}
